// Multitenant: a 4-GPU Punica cluster serving a skewed multi-tenant
// workload with consolidation. Demonstrates the §5.1 scheduling policy
// (route to the busiest GPU that fits, queue FCFS when saturated), §5.3
// migration, and the scale-down hint for idle GPUs.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"time"

	"punica"
)

func main() {
	engine := punica.EngineConfig{
		System: punica.PunicaSystem(),
		GPU:    punica.A100(),
		Model:  punica.Llama2_7B(),
		Rank:   punica.DefaultLoRARank,
	}
	// A small batch cap spreads the burst over all GPUs so the ebbing
	// tail exercises consolidation.
	engine.System.MaxBatch = 8
	cluster := punica.NewCluster(punica.ClusterConfig{
		NumGPUs: 4,
		Engine:  engine,
		// Consolidate lightly-loaded GPUs every 5 simulated seconds.
		MigrationInterval: 5 * time.Second,
	})

	// 120 requests across ~11 tenants with Zipf-1.5 popularity (the
	// paper's Skewed workload), arriving as a Poisson stream with long
	// chat-style responses, then ebbing away.
	gen := punica.NewGenerator(punica.Skewed, punica.ClusterLengths(), 7)
	reqs := gen.Poisson(func(time.Duration) float64 { return 4 }, 4, 30*time.Second, 11)
	res, err := cluster.Run(reqs)
	if err != nil {
		panic(err)
	}

	fmt.Printf("multi-tenant cluster run (4 GPUs, Skewed popularity, %d requests):\n", len(reqs))
	fmt.Printf("  makespan            : %v\n", res.Makespan.Round(time.Millisecond))
	fmt.Printf("  generation rate     : %.0f tok/s\n", res.Throughput)
	fmt.Printf("  prefill tokens      : %d (includes recomputation after migration)\n", res.PrefillTokens)
	fmt.Printf("  migrations          : %d (periodic consolidation, §5.3)\n", res.Migrations)
	fmt.Printf("  evictions (KV OOM)  : %d\n", res.Evictions)
	fmt.Printf("  peak scheduler queue: %d\n", res.QueuePeak)
	fmt.Printf("  time-to-first-token : p50 %.2fs  p99 %.2fs\n",
		res.TimeToFirstToken.Percentile(50), res.TimeToFirstToken.Percentile(99))
	fmt.Printf("  per-token latency   : p50 %.1fms  p99 %.1fms\n",
		res.PerTokenLatency.Percentile(50)*1000, res.PerTokenLatency.Percentile(99)*1000)
	fmt.Println("  per-GPU busy fraction:")
	for i, f := range res.GPUBusyFraction {
		fmt.Printf("    gpu-%02d: %5.1f%%\n", i, 100*f)
	}
	fmt.Println("\nnote the load pattern: the scheduler piles work onto the busiest")
	fmt.Println("GPUs first, so trailing GPUs stay idle and could be released (§5.1).")
}
