// Quickstart: serve three tenants' LoRA adapters on one simulated A100
// with Punica's cross-adapter batching, streaming tokens as they are
// generated.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"punica"
)

func main() {
	// Token stream: every generated token arrives here with its
	// simulated timestamp.
	perRequest := map[int64]int{}
	eng := punica.NewEngine(punica.EngineConfig{
		System: punica.PunicaSystem(), // SGMV batching, paged KvCache
		GPU:    punica.A100(),
		Model:  punica.Llama2_7B(),
		Rank:   punica.DefaultLoRARank,
		OnToken: func(tok punica.Token) {
			perRequest[tok.RequestID]++
			if tok.EOS {
				fmt.Printf("  request %d finished (%d tokens) at t=%v\n",
					tok.RequestID, tok.Index+1, tok.At.Round(time.Millisecond))
			}
		},
	})

	// Three tenants, three different LoRA adapters — one batch.
	requests := []*punica.Request{
		{ID: 1, Model: 101, PromptLen: 128, OutputLen: 24},
		{ID: 2, Model: 202, PromptLen: 64, OutputLen: 32},
		{ID: 3, Model: 303, PromptLen: 256, OutputLen: 16},
	}
	for _, r := range requests {
		if err := eng.Enqueue(r, 0); err != nil {
			panic(err)
		}
	}
	fmt.Println("serving 3 tenants (adapters 101, 202, 303) on one GPU:")

	// Drive the engine: each Step is one batched model invocation; the
	// returned latency is the simulated GPU time.
	now := time.Duration(0)
	steps := 0
	for eng.Busy() {
		res := eng.Step(now)
		if res.Idle {
			// Adapters still loading over PCIe (~2ms, §5.2).
			if at, ok := eng.EarliestPendingReady(); ok {
				now = at
				continue
			}
			break
		}
		steps++
		now = res.EndsAt
	}

	st := eng.Stats()
	fmt.Printf("\n%d invocations, %d tokens generated in %v of simulated GPU time\n",
		steps, st.TokensGenerated, st.BusyTime.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f tok/s (cross-adapter batching kept all three tenants in one batch)\n",
		float64(st.TokensGenerated)/st.BusyTime.Seconds())
	if len(perRequest) != 3 {
		panic("expected tokens from all three tenants")
	}
}
