// Distributed: the Fig. 2 deployment in miniature — two GPU runner
// processes behind the runner HTTP API, a frontend that schedules across
// them with the unmodified §5.1 policy, and tenants streaming tokens
// through the frontend. In production each piece runs on its own machine
// (see cmd/punica-runner and cmd/punica-serve -runners); here they share
// a process over loopback HTTP to stay self-contained.
//
//	go run ./examples/distributed
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"punica"
	"punica/internal/core"
	"punica/internal/remote"
	"punica/internal/serve"
)

func main() {
	cfg := core.Config{
		System: core.PunicaSystem(),
		GPU:    punica.A100(),
		Model:  punica.Llama2_7B(),
		Rank:   punica.DefaultLoRARank,
	}

	// Two "GPU servers".
	runnerA := remote.NewRunner("gpu-a", cfg, 500)
	defer runnerA.Close()
	srvA := httptest.NewServer(runnerA.Handler())
	defer srvA.Close()
	runnerB := remote.NewRunner("gpu-b", cfg, 500)
	defer runnerB.Close()
	srvB := httptest.NewServer(runnerB.Handler())
	defer srvB.Close()

	// The frontend + scheduler process.
	frontend := remote.NewFrontend([]string{srvA.URL, srvB.URL}, 10*time.Millisecond)
	defer frontend.Close()
	api := httptest.NewServer(frontend.Handler())
	defer api.Close()

	fmt.Println("runners :", srvA.URL, "(gpu-a),", srvB.URL, "(gpu-b)")
	fmt.Println("frontend:", api.URL)
	fmt.Println()

	// Five tenants stream concurrently through the frontend.
	var wg sync.WaitGroup
	var mu sync.Mutex
	for tenant := int64(1); tenant <= 5; tenant++ {
		wg.Add(1)
		go func(model int64) {
			defer wg.Done()
			body, _ := json.Marshal(serve.GenerateRequest{
				Model:     model,
				Prompt:    "draft a status update for the weekly multi tenant serving sync",
				MaxTokens: 8,
			})
			resp, err := http.Post(api.URL+"/v1/generate", "application/json",
				bytes.NewReader(body))
			if err != nil {
				panic(err)
			}
			defer resp.Body.Close()
			count := 0
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				count++
			}
			mu.Lock()
			fmt.Printf("tenant %d: %d tokens streamed (request %s)\n",
				model, count, resp.Header.Get("X-Request-ID"))
			mu.Unlock()
		}(tenant)
	}
	wg.Wait()

	// Where did the work land? The §5.1 policy consolidates onto the
	// busiest runner first.
	resp, err := http.Get(api.URL + "/v1/stats")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Runners  []remote.State `json:"runners"`
		QueueLen int            `json:"queue_len"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		panic(err)
	}
	fmt.Println("\ncluster state:")
	for _, st := range stats.Runners {
		fmt.Printf("  %s: %d steps, %d tokens generated, %d/%d KvCache pages free\n",
			st.UUID, st.Steps, st.Tokens, st.FreePages, st.TotalPages)
	}
}
