// Serving: end-to-end HTTP demo. Starts the Punica serving stack
// (frontend + scheduler + simulated GPU runners) on a local port, then
// acts as three tenants issuing concurrent streaming requests against it
// and prints the interleaved token stream and final cluster stats.
//
//	go run ./examples/serving
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"

	"punica"
	"punica/internal/core"
	"punica/internal/serve"
)

func main() {
	// Server side: 2 simulated A100s behind the Punica scheduler.
	// Speedup 200 → a ~30ms decode step takes ~0.15ms of wall time.
	server := serve.New(serve.Config{
		NumGPUs: 2,
		Engine: core.Config{
			System: core.PunicaSystem(),
			GPU:    punica.A100(),
			Model:  punica.Llama2_7B(),
			Rank:   punica.DefaultLoRARank,
		},
		Speedup: 200,
	})
	defer server.Close()
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()
	fmt.Println("punica serving stack listening at", ts.URL)

	// Client side: three tenants, each with its own adapter, streaming
	// concurrently.
	prompts := []struct {
		model  int64
		prompt string
		tokens int
	}{
		{101, "summarize the quarterly finance report for the board", 12},
		{202, "write a haiku about segmented gather matrix vector multiplication", 8},
		{303, "translate the following sentence into german please", 10},
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, p := range prompts {
		wg.Add(1)
		go func(model int64, prompt string, maxTokens int) {
			defer wg.Done()
			body, _ := json.Marshal(serve.GenerateRequest{
				Model: model, Prompt: prompt, MaxTokens: maxTokens,
			})
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json",
				bytes.NewReader(body))
			if err != nil {
				panic(err)
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			count := 0
			for sc.Scan() {
				var ev serve.TokenEvent
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					panic(err)
				}
				count++
				if ev.EOS {
					mu.Lock()
					fmt.Printf("tenant %d: %d tokens streamed (request %d done at sim t=%.2fs)\n",
						model, count, ev.RequestID, ev.SimTime)
					mu.Unlock()
				}
			}
		}(p.model, p.prompt, p.tokens)
	}
	wg.Wait()

	// Cluster state after serving.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		panic(err)
	}
	fmt.Printf("\ncluster stats: queue=%d open_streams=%d releasable_gpus=%d\n",
		st.QueueLen, st.Streams, st.Releasable)
	for _, g := range st.GPUs {
		fmt.Printf("  %s: steps=%d tokens=%d adapters=%d\n",
			g.UUID, g.Steps, g.Tokens, g.Adapters)
	}
}
