// Roofline: sweep the SGMV kernel across the paper's four LoRA
// popularity distributions and print the Fig. 7 roofline data — plus a
// numeric verification that the SGMV, Loop and Gather-BMM operators agree
// bit-for-bit on random batches.
//
//	go run ./examples/roofline
package main

import (
	"fmt"
	"math"

	"punica"
)

func main() {
	fmt.Println("SGMV roofline (hi=16, ho=4096, simulated A100):")
	fmt.Printf("%-10s %6s %12s %16s\n", "dist", "batch", "FLOP:I/O", "achieved FLOP/s")
	cm := punica.SGMVCostModel{GPU: punica.A100(), Standalone: true}
	for _, kind := range punica.Distributions {
		for _, batch := range []int{1, 4, 16, 64} {
			seg := segmentsFor(kind, batch)
			op := punica.SGMVOp{HIn: 16, HOut: 4096, Seg: seg}
			fmt.Printf("%-10s %6d %12.3f %16.3g\n",
				kind, batch, op.Intensity(), cm.AchievedFLOPS(op))
		}
	}

	// Numeric check: the three operator implementations are the same
	// function.
	fmt.Println("\nnumeric equivalence of SGMV / Loop / Gather-BMM:")
	seg := punica.NewSegments(3, 2, 5)
	x := punica.NewMatrix(10, 32)
	for i := range x.Data {
		x.Data[i] = float32(math.Sin(float64(i)))
	}
	pairs := make([]punica.LoRAPair, seg.N())
	for i := range pairs {
		a := punica.NewMatrix(32, 4)
		b := punica.NewMatrix(4, 32)
		for j := range a.Data {
			a.Data[j] = float32(math.Cos(float64(i*100 + j)))
		}
		for j := range b.Data {
			b.Data[j] = float32(math.Sin(float64(i*200 + j)))
		}
		pairs[i] = punica.LoRAPair{A: a, B: b}
	}
	y1, y2, y3 := punica.NewMatrix(10, 32), punica.NewMatrix(10, 32), punica.NewMatrix(10, 32)
	punica.SGMVApply(y1, x, pairs, seg)
	punica.LoopApply(y2, x, pairs, seg)
	punica.GatherBMMApply(y3, x, pairs, seg)
	maxDiff := 0.0
	for i := range y1.Data {
		d := math.Max(
			math.Abs(float64(y1.Data[i]-y2.Data[i])),
			math.Abs(float64(y1.Data[i]-y3.Data[i])))
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("  max elementwise deviation across implementations: %g\n", maxDiff)
	if maxDiff > 1e-4 {
		panic("implementations disagree")
	}
	fmt.Println("  all three implementations agree ✓")
}

// segmentsFor reproduces the microbenchmark segment layouts: Distinct =
// batch segments of 1, Uniform = ceil(sqrt(batch)) equal segments, Skewed
// = geometric Zipf-1.5 split, Identical = one segment.
func segmentsFor(kind punica.Distribution, batch int) punica.Segments {
	switch kind {
	case punica.Distinct:
		sizes := make([]int, batch)
		for i := range sizes {
			sizes[i] = 1
		}
		return punica.NewSegments(sizes...)
	case punica.Identical:
		return punica.NewSegments(batch)
	default:
		m := int(math.Ceil(math.Sqrt(float64(batch))))
		sizes := make([]int, 0, m)
		left := batch
		w := 1.0
		total := 0.0
		for i := 0; i < m; i++ {
			total += w
			if kind == punica.Skewed {
				w /= 1.5
			}
		}
		w = 1.0
		for i := 0; i < m && left > 0; i++ {
			n := int(float64(batch) * w / total)
			if n < 1 {
				n = 1
			}
			if n > left {
				n = left
			}
			sizes = append(sizes, n)
			left -= n
			if kind == punica.Skewed {
				w /= 1.5
			}
		}
		if left > 0 {
			sizes[0] += left
		}
		return punica.NewSegments(sizes...)
	}
}
