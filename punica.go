// Package punica is a Go reproduction of "Punica: Multi-Tenant LoRA
// Serving" (MLSys 2024): a system that serves many LoRA fine-tunes of one
// backbone LLM on a shared GPU cluster by batching requests for
// *different* adapters into a single model invocation with the SGMV
// (Segmented Gather Matrix-Vector multiplication) operator.
//
// Because Go has no CUDA path, the GPU is simulated: SGMV and its
// baselines have numerically exact implementations plus calibrated A100
// roofline cost models, and serving runs under a discrete-event clock.
// See DESIGN.md for the substitution table and EXPERIMENTS.md for
// paper-vs-measured results.
//
// The package is a facade over the internal subsystems:
//
//   - Engine: a single-GPU (or tensor-parallel group) continuous-batching
//     serving engine with paged KvCache and on-demand adapter loading.
//   - Cluster: the multi-GPU scheduler + discrete-event simulator.
//   - Workload: ShareGPT-like request generators with the paper's four
//     LoRA popularity distributions.
//   - SGMV: the operator itself (segments, numeric kernels, cost model).
//
// Quick start:
//
//	eng := punica.NewEngine(punica.EngineConfig{
//		System: punica.PunicaSystem(),
//		GPU:    punica.A100(),
//		Model:  punica.Llama2_7B(),
//		Rank:   16,
//	})
//	eng.Enqueue(&punica.Request{ID: 1, Model: 7, PromptLen: 128, OutputLen: 32}, 0)
//	for eng.Busy() {
//		res := eng.Step(now)
//		now = res.EndsAt
//	}
package punica

import (
	"punica/internal/core"
	"punica/internal/hw"
	"punica/internal/lora"
	"punica/internal/models"
)

// LoRAModelID identifies a LoRA adapter (tenant model).
type LoRAModelID = lora.ModelID

// Engine is the single-GPU serving engine (§5, §6 of the paper).
type Engine = core.Engine

// EngineConfig assembles an engine: system capabilities, hardware and
// model.
type EngineConfig = core.Config

// SystemConfig is a serving system's capability set; PunicaSystem and the
// baseline constructors return the §7 configurations.
type SystemConfig = core.SystemConfig

// Request is one text-generation request.
type Request = core.Request

// Token is one streamed generation event.
type Token = core.Token

// StepResult reports one batched model invocation.
type StepResult = core.StepResult

// EngineStats aggregates engine activity.
type EngineStats = core.Stats

// LoRAMode selects how a system computes the LoRA addon.
type LoRAMode = core.LoRAMode

// LoRA addon modes.
const (
	LoRANone = core.LoRANone
	LoRASGMV = core.LoRASGMV
	LoRALoop = core.LoRALoop
)

// DefaultMaxBatch is the §5.1 A100 batch-size sweet spot (32).
const DefaultMaxBatch = core.DefaultMaxBatch

// NewEngine builds a serving engine.
func NewEngine(cfg EngineConfig) *Engine { return core.NewEngine(cfg) }

// PunicaSystem returns Punica's capability set: continuous batching,
// cross-LoRA batching via SGMV, paged KvCache, one prefill per step.
func PunicaSystem() SystemConfig { return core.PunicaSystem() }

// GPUSpec describes a GPU model for the cost simulation.
type GPUSpec = hw.GPUSpec

// Link models a data-movement channel (PCIe, NvSwitch).
type Link = hw.Link

// A100 returns Testbed #1's GPU (A100-SXM4-80GB).
func A100() GPUSpec { return hw.A100() }

// A100_40G returns Testbed #2's GPU (HGX A100-SXM4-40GB).
func A100_40G() GPUSpec { return hw.A100_40G() }

// PCIeGen4x16 is the host-to-device link used for adapter loading.
func PCIeGen4x16() Link { return hw.PCIeGen4x16() }

// Precision is a storage data type for backbone weights or KvCache
// (quantization is the §8 extension; FP16 reproduces the paper).
type Precision = hw.Precision

// Storage precisions.
const (
	FP16 = hw.FP16
	INT8 = hw.INT8
	NF4  = hw.NF4
)

// NvSwitch is the intra-server interconnect used by tensor parallelism.
func NvSwitch() Link { return hw.NvSwitch() }

// ModelConfig is a transformer architecture.
type ModelConfig = models.Config

// Llama2_7B returns the Llama-2 7B architecture.
func Llama2_7B() ModelConfig { return models.Llama2_7B() }

// Llama2_13B returns the Llama-2 13B architecture.
func Llama2_13B() ModelConfig { return models.Llama2_13B() }

// Llama2_70B returns the Llama-2 70B architecture (GQA).
func Llama2_70B() ModelConfig { return models.Llama2_70B() }

// ModelByName resolves "7b", "13b", "70b" or full names.
func ModelByName(name string) (ModelConfig, error) { return models.ByName(name) }

// DefaultLoRARank is the adapter rank used throughout the evaluation.
const DefaultLoRARank = models.DefaultLoRARank
