// Command punica-bench regenerates every table and figure of the Punica
// paper's evaluation on the simulated substrate and prints them as text.
//
// Usage:
//
//	punica-bench [flags] <experiment>
//
// Experiments: fig1 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 headline
// loading ablation-norm ablation-maxbatch ablation-pagesize
// ablation-prefill ablation-migration ablation-quant autoscale policies
// faults disagg traffic coldstart soak scale all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"punica/internal/experiments"
	"punica/internal/hw"
	"punica/internal/models"
)

var (
	modelFlag = flag.String("model", "7b", "model for fig11: 7b or 13b")
	nFlag     = flag.Int("n", 1000, "requests for text-generation experiments")
	seedFlag  = flag.Int64("seed", 42, "workload seed")
	gpusFlag  = flag.Int("gpus", 16, "GPUs for fig13")
	peakFlag  = flag.Float64("peak", 11, "peak request rate (req/s) for fig13")
	hourFlag  = flag.Bool("full-hour", false, "run fig13 at the paper's full one-hour horizon")
	csvFlag   = flag.String("csv", "", "also write the figure's data as CSV to this file (fig1,7,8,9,10,11,12,13,scale)")
	jsonFlag  = flag.String("json", "", "write machine-readable results to this JSON file (fig11,fig12,fig13,policies,faults,disagg,scale)")

	scaleGPUs = flag.String("scale-gpus", "", "comma-separated GPU counts for the scale sweep (default 16,64,256)")
	scaleReqs = flag.String("scale-requests", "", "comma-separated request counts for the scale sweep (default 10000,100000,1000000)")

	cellsFlag    = flag.Int("cells", 0, "scale: simulation cells per fleet (0 auto: GPUs/32 in [1,16]; 1 forces the classic single-cluster path)")
	parallelFlag = flag.Int("parallel", 1, "scale: worker goroutines advancing cells between epoch barriers (results are identical for any value)")

	baselineFlag = flag.String("baseline", "", "scale: committed BENCH_scale.json to gate against; the run fails if events/sec regresses past -regress-threshold")
	regressFlag  = flag.Float64("regress-threshold", 0.20, "scale: fractional events/sec drop vs -baseline that fails the run")

	trafficBaselineFlag = flag.String("traffic-baseline", "", "traffic: committed BENCH_traffic.json to gate against; the run fails if throughput, the off/on stall-skew ratio, or the tail-p99 gain regresses past -regress-threshold")

	coldstartBaselineFlag = flag.String("coldstart-baseline", "", "coldstart: committed BENCH_coldstart.json to gate against; the run fails if throughput or the naive-vs-predist cold-start p99 gain regresses past -regress-threshold")

	overloadBaselineFlag = flag.String("overload-baseline", "", "overload: committed BENCH_overload.json to gate against; the run fails if the shedding-on vs -off goodput retention regresses past -regress-threshold")

	soakHorizonFlag = flag.Duration("soak-horizon", 0, "soak: override the simulated horizon (default 2h)")
)

// benchRecords accumulates -json output across the experiments run.
var benchRecords []experiments.BenchRecord

// writeCSV writes one figure's CSV when -csv is set.
func writeCSV(write func(io.Writer) error) error {
	if *csvFlag == "" {
		return nil
	}
	f, err := os.Create(*csvFlag)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", *csvFlag)
	return nil
}

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, exp := range allExperiments {
			if err := run(exp); err != nil {
				fatal(err)
			}
		}
	} else if err := run(name); err != nil {
		fatal(err)
	}
	if err := writeBenchJSON(); err != nil {
		fatal(err)
	}
}

// writeBenchJSON flushes accumulated machine-readable results when
// -json was given.
func writeBenchJSON() error {
	if *jsonFlag == "" {
		return nil
	}
	f, err := os.Create(*jsonFlag)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteBenchJSON(f, benchRecords); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", *jsonFlag)
	return nil
}

var allExperiments = []string{
	"fig1", "fig6", "fig7", "fig8", "fig9", "fig10",
	"fig11", "fig12", "fig13", "headline", "loading",
	"ablation-norm", "ablation-maxbatch", "ablation-pagesize",
	"ablation-prefill", "ablation-migration", "ablation-quant",
	"autoscale", "policies", "faults", "disagg",
}

func run(name string) error {
	opts := experiments.TextGenOptions{NumRequests: *nFlag, Seed: *seedFlag}
	switch name {
	case "fig1":
		model, err := models.ByName(*modelFlag)
		if err != nil {
			return err
		}
		points := experiments.Fig1(a100(), model)
		fmt.Println(experiments.FormatFig1(points))
		if err := writeCSV(func(w io.Writer) error { return experiments.Fig1CSV(w, points) }); err != nil {
			return err
		}
	case "fig6":
		res, err := experiments.Fig6(min(*nFlag, 256), *seedFlag)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig6(res))
	case "fig7":
		points := experiments.Fig7()
		fmt.Println(experiments.FormatFig7(points))
		if err := writeCSV(func(w io.Writer) error { return experiments.Fig7CSV(w, points) }); err != nil {
			return err
		}
	case "fig8":
		points := experiments.Fig8()
		fmt.Println(experiments.FormatFig8(points))
		if err := writeCSV(func(w io.Writer) error { return experiments.Fig8CSV(w, points) }); err != nil {
			return err
		}
	case "fig9":
		points := experiments.Fig9()
		fmt.Println(experiments.FormatFig9(points))
		if err := writeCSV(func(w io.Writer) error { return experiments.Fig9CSV(w, points) }); err != nil {
			return err
		}
	case "fig10":
		points := experiments.Fig10()
		fmt.Println(experiments.FormatFig10(points))
		if err := writeCSV(func(w io.Writer) error { return experiments.Fig10CSV(w, points) }); err != nil {
			return err
		}
	case "fig11":
		model, err := models.ByName(*modelFlag)
		if err != nil {
			return err
		}
		rows, err := experiments.Fig11(model, opts)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Figure 11 — single-GPU text generation (%s, %d requests):",
			model.Name, opts.NumRequests)
		fmt.Println(experiments.FormatFig11(title, rows))
		benchRecords = append(benchRecords, experiments.Fig11Records("fig11", rows)...)
		if err := writeCSV(func(w io.Writer) error { return experiments.Fig11CSV(w, rows) }); err != nil {
			return err
		}
	case "fig12":
		rows, err := experiments.Fig12(opts)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Figure 12 — 70B tensor parallel on 8xA100-40G (%d requests):",
			opts.NumRequests)
		fmt.Println(experiments.FormatFig11(title, rows))
		benchRecords = append(benchRecords, experiments.Fig11Records("fig12", rows)...)
		if err := writeCSV(func(w io.Writer) error { return experiments.Fig11CSV(w, rows) }); err != nil {
			return err
		}
	case "fig13":
		o := fig13Options()
		res, err := experiments.Fig13(o)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig13(res))
		benchRecords = append(benchRecords, experiments.Fig13Records(res)...)
		if err := writeCSV(func(w io.Writer) error { return experiments.Fig13CSV(w, res) }); err != nil {
			return err
		}
	case "headline":
		model, err := models.ByName(*modelFlag)
		if err != nil {
			return err
		}
		rows, err := experiments.Fig11(model, opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatHeadline(experiments.Headline(rows)))
	case "loading":
		fmt.Println(experiments.FormatLoading(experiments.Loading()))
	case "ablation-norm":
		fmt.Println(experiments.FormatAblationNorm(experiments.AblationNorm()))
	case "ablation-maxbatch":
		points, err := experiments.AblationMaxBatch(min(*nFlag, 400), *seedFlag, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAblationMaxBatch(points))
	case "ablation-pagesize":
		points, err := experiments.AblationPageSize(min(*nFlag, 300), *seedFlag, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAblationPageSize(points))
	case "ablation-prefill":
		points, err := experiments.AblationPrefillLimit(min(*nFlag, 400), *seedFlag, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAblationPrefillLimit(points))
	case "ablation-quant":
		points, err := experiments.AblationQuantization(min(*nFlag, 300), *seedFlag)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAblationQuantization(points))
	case "autoscale":
		o := fig13Options()
		if !*hourFlag {
			o.NumGPUs = 8
			o.Peak = 6
			o.RampUp, o.Hold, o.RampDown = 8*time.Minute, 4*time.Minute, 8*time.Minute
		}
		res, err := experiments.Autoscale(o)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAutoscale(res))
	case "policies":
		o := experiments.DefaultPolicyCompareOptions()
		o.Seed = *seedFlag
		points, err := experiments.ComparePolicies(o)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatPolicyCompare(points))
		benchRecords = append(benchRecords, experiments.PolicyRecords(points)...)
		if err := writeCSV(func(w io.Writer) error {
			return experiments.PolicyCompareCSV(w, points)
		}); err != nil {
			return err
		}
	case "faults":
		o := experiments.DefaultFaultsOptions()
		o.Seed = *seedFlag
		points, err := experiments.Faults(o)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFaults(points))
		benchRecords = append(benchRecords, experiments.FaultsRecords(points)...)
		if err := writeCSV(func(w io.Writer) error {
			return experiments.FaultsCSV(w, points)
		}); err != nil {
			return err
		}
	case "disagg":
		o := experiments.DefaultDisaggOptions()
		o.Seed = *seedFlag
		points, err := experiments.Disaggregation(o)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatDisaggregation(points))
		benchRecords = append(benchRecords, experiments.DisaggRecords(points)...)
		if err := writeCSV(func(w io.Writer) error {
			return experiments.DisaggregationCSV(w, points)
		}); err != nil {
			return err
		}
	case "scale":
		o := experiments.DefaultScaleOptions()
		o.Seed = *seedFlag
		if gpus, err := parseIntList(*scaleGPUs); err != nil {
			return fmt.Errorf("-scale-gpus: %w", err)
		} else if len(gpus) > 0 {
			o.GPUs = gpus
		}
		if reqs, err := parseIntList(*scaleReqs); err != nil {
			return fmt.Errorf("-scale-requests: %w", err)
		} else if len(reqs) > 0 {
			o.Requests = reqs
		}
		o.Cells = *cellsFlag
		o.Workers = *parallelFlag
		points, err := experiments.Scale(o)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatScale(points))
		benchRecords = append(benchRecords, experiments.ScaleRecords(points)...)
		if err := writeCSV(func(w io.Writer) error {
			return experiments.ScaleCSV(w, points)
		}); err != nil {
			return err
		}
		if err := checkScaleBaseline(experiments.ScaleRecords(points)); err != nil {
			return err
		}
	case "traffic":
		var topts experiments.TrafficOptions
		// The default sweep is pinned (seed and all) so the committed
		// BENCH_traffic.json baseline reproduces exactly; only an
		// explicit -seed overrides it.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				topts.Seed = *seedFlag
			}
		})
		points, err := experiments.Traffic(topts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTraffic(points))
		benchRecords = append(benchRecords, experiments.TrafficRecords(points)...)
		if err := writeCSV(func(w io.Writer) error {
			return experiments.TrafficCSV(w, points)
		}); err != nil {
			return err
		}
		if err := checkTrafficBaseline(experiments.TrafficRecords(points)); err != nil {
			return err
		}
	case "coldstart":
		// The default sweep is pinned (seed and all) so the committed
		// BENCH_coldstart.json baseline reproduces exactly; only an
		// explicit -seed overrides it.
		var copts experiments.ColdStartOptions
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				copts.Seed = *seedFlag
			}
		})
		points, err := experiments.ColdStart(copts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatColdStart(points))
		benchRecords = append(benchRecords, experiments.ColdStartRecords(points)...)
		if err := writeCSV(func(w io.Writer) error {
			return experiments.ColdStartCSV(w, points)
		}); err != nil {
			return err
		}
		if err := checkColdStartBaseline(experiments.ColdStartRecords(points)); err != nil {
			return err
		}
	case "overload":
		// The sweep replays open-loop traffic through the live HTTP
		// stack in wall time; the defaults are pinned so the committed
		// BENCH_overload.json baseline is comparable run-to-run. Only an
		// explicit -seed overrides them.
		var oopts experiments.OverloadOptions
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				oopts.Seed = *seedFlag
			}
		})
		points, err := experiments.Overload(oopts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatOverload(points))
		benchRecords = append(benchRecords, experiments.OverloadRecords(points)...)
		if err := writeCSV(func(w io.Writer) error {
			return experiments.OverloadCSV(w, points)
		}); err != nil {
			return err
		}
		if err := checkOverloadBaseline(experiments.OverloadRecords(points)); err != nil {
			return err
		}
	case "soak":
		res, err := experiments.Soak(experiments.SoakOptions{
			Horizon: *soakHorizonFlag, Seed: *seedFlag,
		})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatSoak(res))
		benchRecords = append(benchRecords, experiments.SoakRecords(res)...)
		if err := writeCSV(func(w io.Writer) error {
			return experiments.SoakCSV(w, res)
		}); err != nil {
			return err
		}
	case "ablation-migration":
		o := fig13Options()
		if !*hourFlag {
			o.NumGPUs = 8
			o.Peak = 6
			o.RampUp, o.Hold, o.RampDown = 6*time.Minute, 3*time.Minute, 6*time.Minute
		}
		res, err := experiments.AblationMigration(o)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAblationMigration(res))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// checkTrafficBaseline gates the traffic sweep against a committed
// baseline when -traffic-baseline is set. Three metrics gate: raw
// throughput on every run row, and the off/on stall-skew ratio and
// tail-p99 gain on the per-peak fairness-gain rows — the numbers the
// fairness layer is accountable for.
func checkTrafficBaseline(current []experiments.BenchRecord) error {
	if *trafficBaselineFlag == "" {
		return nil
	}
	f, err := os.Open(*trafficBaselineFlag)
	if err != nil {
		return fmt.Errorf("-traffic-baseline: %w", err)
	}
	defer f.Close()
	baseline, err := experiments.ReadBenchJSON(f)
	if err != nil {
		return fmt.Errorf("-traffic-baseline %s: %w", *trafficBaselineFlag, err)
	}
	var errs []error
	for _, metric := range []string{"throughput_tok_s", "skew_ratio", "tail_p99_gain"} {
		errs = append(errs, experiments.CompareBaseline(baseline, current, metric, *regressFlag)...)
	}
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "regression:", e)
	}
	if len(errs) > 0 {
		return fmt.Errorf("%d traffic metric(s) regressed past %.0f%% vs %s",
			len(errs), 100**regressFlag, *trafficBaselineFlag)
	}
	fmt.Fprintf(os.Stderr, "baseline check passed: no throughput/skew-ratio/tail-p99-gain regression past %.0f%% vs %s\n",
		100**regressFlag, *trafficBaselineFlag)
	return nil
}

// checkColdStartBaseline gates the cold-start sweep against a committed
// baseline when -coldstart-baseline is set. Two metrics gate: raw
// throughput on every run row, and the naive-vs-predist cold-start p99
// gain — the number pre-distribution + overlap are accountable for.
func checkColdStartBaseline(current []experiments.BenchRecord) error {
	if *coldstartBaselineFlag == "" {
		return nil
	}
	f, err := os.Open(*coldstartBaselineFlag)
	if err != nil {
		return fmt.Errorf("-coldstart-baseline: %w", err)
	}
	defer f.Close()
	baseline, err := experiments.ReadBenchJSON(f)
	if err != nil {
		return fmt.Errorf("-coldstart-baseline %s: %w", *coldstartBaselineFlag, err)
	}
	var errs []error
	for _, metric := range []string{"throughput_tok_s", "cold_p99_gain"} {
		errs = append(errs, experiments.CompareBaseline(baseline, current, metric, *regressFlag)...)
	}
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "regression:", e)
	}
	if len(errs) > 0 {
		return fmt.Errorf("%d coldstart metric(s) regressed past %.0f%% vs %s",
			len(errs), 100**regressFlag, *coldstartBaselineFlag)
	}
	fmt.Fprintf(os.Stderr, "baseline check passed: no throughput/cold-p99-gain regression past %.0f%% vs %s\n",
		100**regressFlag, *coldstartBaselineFlag)
	return nil
}

// checkOverloadBaseline gates the overload sweep against a committed
// baseline when -overload-baseline is set. One metric gates: the
// shedding-on vs -off goodput retention on the per-factor shedding-gain
// rows — the number the admission layer is accountable for. The
// per-run rows (latency percentiles, refusal counters) ride along as
// informational data; they are wall-clock sensitive, so they do not
// gate.
func checkOverloadBaseline(current []experiments.BenchRecord) error {
	if *overloadBaselineFlag == "" {
		return nil
	}
	f, err := os.Open(*overloadBaselineFlag)
	if err != nil {
		return fmt.Errorf("-overload-baseline: %w", err)
	}
	defer f.Close()
	baseline, err := experiments.ReadBenchJSON(f)
	if err != nil {
		return fmt.Errorf("-overload-baseline %s: %w", *overloadBaselineFlag, err)
	}
	errs := experiments.CompareBaseline(baseline, current, "goodput_retention", *regressFlag)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "regression:", e)
	}
	if len(errs) > 0 {
		return fmt.Errorf("%d overload metric(s) regressed past %.0f%% vs %s",
			len(errs), 100**regressFlag, *overloadBaselineFlag)
	}
	fmt.Fprintf(os.Stderr, "baseline check passed: no goodput-retention regression past %.0f%% vs %s\n",
		100**regressFlag, *overloadBaselineFlag)
	return nil
}

// checkScaleBaseline gates the scale run against a committed baseline
// when -baseline is set: any grid point whose events/sec fell more than
// -regress-threshold below the baseline fails the command.
func checkScaleBaseline(current []experiments.BenchRecord) error {
	if *baselineFlag == "" {
		return nil
	}
	f, err := os.Open(*baselineFlag)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	defer f.Close()
	baseline, err := experiments.ReadBenchJSON(f)
	if err != nil {
		return fmt.Errorf("-baseline %s: %w", *baselineFlag, err)
	}
	errs := experiments.CompareBaseline(baseline, current, "events_per_sec", *regressFlag)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "regression:", e)
	}
	if len(errs) > 0 {
		return fmt.Errorf("%d scale point(s) regressed past %.0f%% vs %s",
			len(errs), 100**regressFlag, *baselineFlag)
	}
	fmt.Fprintf(os.Stderr, "baseline check passed: no events/sec regression past %.0f%% vs %s\n",
		100**regressFlag, *baselineFlag)
	return nil
}

// parseIntList parses a comma-separated list of positive ints ("" → nil).
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("count must be positive, got %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func fig13Options() experiments.Fig13Options {
	o := experiments.DefaultFig13Options()
	o.NumGPUs = *gpusFlag
	o.Peak = *peakFlag
	o.Seed = *seedFlag
	if !*hourFlag {
		// Scaled horizon for interactive runs; -full-hour reproduces
		// the paper's 60 minutes.
		o.RampUp, o.Hold, o.RampDown = 10*time.Minute, 5*time.Minute, 10*time.Minute
	}
	return o
}

func a100() hw.GPUSpec { return hw.A100() }

func usage() {
	fmt.Fprintf(os.Stderr, "usage: punica-bench [flags] <experiment>\nexperiments: %v\n",
		allExperiments)
	fmt.Fprintf(os.Stderr, "plus: scale (control-plane scale sweep; excluded from 'all' — the full grid runs 1M-request traces)\n")
	fmt.Fprintf(os.Stderr, "plus: traffic (flash-crowd fairness sweep, gated by -traffic-baseline) and soak (hours-long everything-at-once run; -soak-horizon shortens it) — both excluded from 'all'\n")
	fmt.Fprintf(os.Stderr, "plus: coldstart (tiered adapter-cache mitigation sweep, gated by -coldstart-baseline) — excluded from 'all'\n")
	fmt.Fprintf(os.Stderr, "plus: overload (live-HTTP overload-protection sweep, gated by -overload-baseline) — excluded from 'all'\n")
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "punica-bench:", err)
	os.Exit(1)
}
