// Command punica-serve runs the multi-tenant LoRA serving stack over
// HTTP: frontends accept generation requests, the Punica scheduler
// consolidates them onto simulated GPU runners, and tokens stream back
// as NDJSON (Fig. 2's architecture; see internal/serve for the
// substitution notes).
//
//	punica-serve -addr :8080 -gpus 2 -model 7b -speedup 1
//
//	curl -N localhost:8080/v1/generate \
//	  -d '{"model": 7, "prompt": "hello world", "max_tokens": 16}'
//	curl localhost:8080/v1/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"punica/internal/core"
	"punica/internal/hw"
	"punica/internal/lora"
	"punica/internal/models"
	"punica/internal/remote"
	"punica/internal/sched"
	"punica/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	gpus := flag.Int("gpus", 2, "number of simulated GPUs (in-process mode)")
	modelName := flag.String("model", "7b", "backbone model: 7b, 13b or 70b")
	speedup := flag.Float64("speedup", 1, "simulated-time speedup (1 = realistic pacing)")
	rank := flag.Int("rank", models.DefaultLoRARank, "LoRA rank")
	policy := flag.String("policy", "paper",
		"placement policy: paper, affinity or rank")
	runners := flag.String("runners", "",
		"comma-separated punica-runner base URLs; enables distributed frontend mode")
	health := flag.Duration("health-interval", time.Second,
		"runner health-probe interval in frontend mode (0 disables fault tolerance)")
	prefillGPUs := flag.Int("prefill-gpus", 0,
		"disaggregate in-process serving: prefill-pool size (use with -decode-gpus)")
	decodeGPUs := flag.Int("decode-gpus", 0,
		"disaggregate in-process serving: decode-pool size (use with -prefill-gpus)")
	tiers := flag.String("tiers", "",
		"staged adapter tiers below HBM, bottom-up, e.g.\n\"ssd:64GiB@2GiB/s,ram:16GiB@8GiB/s+20us\" (empty = flat HBM store)")
	maxQueue := flag.Int("max-queue", 0,
		"admission cap on queued requests; arrivals past it answer HTTP 429 (0 = legacy unbounded queue)")
	maxTenantQueue := flag.Int("max-tenant-queue", 0,
		"admission cap on one tenant's queued requests (0 = unbounded)")
	shedPolicy := flag.String("shed-policy", "reject",
		"policy at the admission cap: reject (429 the arrival) or\nshed-best-effort (drop the lowest-priority queued request instead)")
	retryAttempts := flag.Int("retry-attempts", 1,
		"frontend mode: total tries per runner RPC with exponential backoff,\nhonoring Retry-After and idempotency keys (1 disables retries)")
	breakerThreshold := flag.Int("breaker-threshold", 0,
		"frontend mode: consecutive transport failures that open a runner's\ncircuit breaker (0 disables breakers)")
	breakerCooldown := flag.Duration("breaker-cooldown", 3*time.Second,
		"frontend mode: open-breaker cooldown before half-open probing")
	netFaults := flag.String("net-faults", "",
		"frontend mode: seeded fault plan injected on frontend-runner links\n(chaos testing), e.g. \"seed=1; lat=at:10s,hold:5s,add:200ms; part=at:30s,hold:10s,link:1\"")
	flag.Parse()

	model, err := models.ByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	tierSpecs, err := lora.ParseTierSpec(*tiers)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := sched.PolicyByName(*policy, sched.PolicyConfig{Base: model, DefaultRank: *rank})
	if err != nil {
		log.Fatal(err)
	}
	shed, err := sched.ParseShedPolicy(*shedPolicy)
	if err != nil {
		log.Fatal(err)
	}
	admission := sched.AdmissionConfig{
		MaxQueue:     *maxQueue,
		MaxPerTenant: *maxTenantQueue,
		Policy:       shed,
	}

	if *runners != "" {
		urls := strings.Split(*runners, ",")
		opts := remote.FrontendOptions{
			Policy:         pol,
			HealthInterval: *health,
			Admission:      admission,
			Retry:          remote.RetryPolicy{MaxAttempts: *retryAttempts},
			Breaker: remote.BreakerConfig{
				Threshold: *breakerThreshold,
				Cooldown:  *breakerCooldown,
			},
		}
		if *netFaults != "" {
			plan, err := remote.ParseNetFaultPlan(*netFaults)
			if err != nil {
				log.Fatal(err)
			}
			opts.NetFaults = remote.NewNetFaultInjector(plan)
		}
		f := remote.NewFrontendWithOptions(urls, opts)
		defer f.Close()
		fmt.Printf("punica-serve (frontend): scheduling across %d remote runners (%s policy, health probes every %v), listening on %s\n",
			len(urls), *policy, *health, *addr)
		log.Fatal(http.ListenAndServe(*addr, f.Handler()))
	}
	if *netFaults != "" {
		log.Fatal("punica-serve: -net-faults requires frontend mode (-runners)")
	}
	srv := serve.New(serve.Config{
		NumGPUs: *gpus,
		Engine: core.Config{
			System: core.PunicaSystem(),
			GPU:    hw.A100(),
			Model:  model,
			Rank:   *rank,
		},
		Speedup:     *speedup,
		Policy:      *policy,
		Admission:   admission,
		PrefillGPUs: *prefillGPUs,
		DecodeGPUs:  *decodeGPUs,
		Tiers:       tierSpecs,
	})
	defer srv.Close()

	mode := fmt.Sprintf("%d simulated A100s", *gpus)
	if *prefillGPUs > 0 && *decodeGPUs > 0 {
		mode = fmt.Sprintf("%d prefill + %d decode simulated A100s (disaggregated)",
			*prefillGPUs, *decodeGPUs)
	}
	fmt.Printf("punica-serve: %s on %s (%s policy), %gx speedup, listening on %s\n",
		model.Name, mode, *policy, *speedup, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
