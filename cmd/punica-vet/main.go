// Command punica-vet runs the repo's custom analyzer suite — the
// mechanical enforcement of the simulator's correctness contracts:
//
//	versionbump  snapshot-visible Engine writes bump the version counter
//	scratchlife  scratch-backed return values don't outlive the next call
//	detsim       deterministic packages stay seed-replayable
//	lockorder    mutex acquisition order is acyclic; scheduler locks are leaves
//	zeroalloc    //punica:zeroalloc functions contain no allocating constructs
//
// Usage:
//
//	punica-vet [-list] [packages]
//
// Packages default to ./... relative to the current directory.
// Diagnostics print as file:line:col: [analyzer] message; the exit
// status is 1 if any were reported.
package main

import (
	"flag"
	"fmt"
	"os"

	"punica/internal/analysis"
	"punica/internal/analysis/all"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: punica-vet [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range all.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "punica-vet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "punica-vet: load:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, all.Analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "punica-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "punica-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
