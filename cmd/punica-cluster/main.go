// Command punica-cluster runs the §7.3 cluster deployment experiment
// (Fig. 13): a 16-GPU Punica cluster under an hour of Poisson load whose
// rate ramps up and back down, with Zipf-1.5 LoRA popularity. It prints
// the figure's three panels (req/s, tok/s, per-GPU batch occupancy) as a
// text table plus summary statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"punica/internal/experiments"
)

func main() {
	gpus := flag.Int("gpus", 16, "number of GPUs")
	peak := flag.Float64("peak", 11, "peak request rate (req/s)")
	rampUp := flag.Duration("ramp-up", 25*time.Minute, "ramp-up duration")
	hold := flag.Duration("hold", 10*time.Minute, "plateau duration")
	rampDown := flag.Duration("ramp-down", 25*time.Minute, "ramp-down duration")
	bin := flag.Duration("bin", time.Minute, "series bin width")
	seed := flag.Int64("seed", 42, "workload seed")
	autoscale := flag.Bool("autoscale", false, "compare fixed vs elastic (§5.1) provisioning instead")
	flag.Parse()

	start := time.Now()
	opts := experiments.Fig13Options{
		NumGPUs:  *gpus,
		Peak:     *peak,
		RampUp:   *rampUp,
		Hold:     *hold,
		RampDown: *rampDown,
		BinWidth: *bin,
		Seed:     *seed,
	}
	if *autoscale {
		res, err := experiments.Autoscale(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatAutoscale(res))
		return
	}
	res, err := experiments.Fig13(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.FormatFig13(res))
	fmt.Printf("(simulated %v of cluster time in %v of wall time)\n",
		res.Horizon.Round(time.Second), time.Since(start).Round(time.Millisecond))
}
