// Command punica-cluster runs the §7.3 cluster deployment experiment
// (Fig. 13): a 16-GPU Punica cluster under an hour of Poisson load whose
// rate ramps up and back down, with Zipf-1.5 LoRA popularity. It prints
// the figure's three panels (req/s, tok/s, per-GPU batch occupancy) as a
// text table plus summary statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"punica/internal/cluster"
	"punica/internal/core"
	"punica/internal/dist"
	"punica/internal/experiments"
	"punica/internal/hw"
	"punica/internal/lora"
	"punica/internal/models"
	"punica/internal/sched"
	"punica/internal/workload"
)

func main() {
	gpus := flag.Int("gpus", 16, "number of GPUs")
	peak := flag.Float64("peak", 11, "peak request rate (req/s)")
	rampUp := flag.Duration("ramp-up", 25*time.Minute, "ramp-up duration")
	hold := flag.Duration("hold", 10*time.Minute, "plateau duration")
	rampDown := flag.Duration("ramp-down", 25*time.Minute, "ramp-down duration")
	bin := flag.Duration("bin", time.Minute, "series bin width")
	seed := flag.Int64("seed", 42, "workload seed")
	policy := flag.String("policy", "paper", "placement policy: paper, affinity or rank")
	autoscale := flag.Bool("autoscale", false, "compare fixed vs elastic (§5.1) provisioning instead")
	policies := flag.Bool("compare-policies", false,
		"run the policy head-to-head across workload distributions instead")
	policyCSV := flag.String("policy-csv", "", "write the policy comparison as CSV to this file")
	faults := flag.Bool("faults", false,
		"run the availability experiment instead: failure rate x policy, degradation vs fault-free")
	faultsCSV := flag.String("faults-csv", "", "write the availability sweep as CSV to this file")
	disagg := flag.Bool("disagg", false,
		"run the prefill/decode disaggregation experiment instead: unified vs split pools on a prefill-heavy mix")
	disaggRatio := flag.Float64("disagg-ratio", 0.25,
		"fraction of the fleet serving the prefill pool in -disagg mode")
	disaggCSV := flag.String("disagg-csv", "", "write the disaggregation sweep as CSV to this file")
	fairness := flag.Bool("fairness", false,
		"enable the VTC per-tenant fairness admission layer (off preserves the FCFS golden traces)")
	traffic := flag.String("traffic", "",
		"run an open-loop traffic spec instead of the Fig. 13 trapezoid, e.g.\n\"horizon=8m;base=5;spike=at:2m,peak:30,model:0,tenant:1;tenants=64/3;mix=Skewed/32;seed=7\"")
	storeAdapters := flag.Int("store-adapters", 0,
		"with -traffic: cap each GPU's adapter store to this many resident adapters (0 = HBM-derived default)")
	maxBatch := flag.Int("max-batch", 0, "with -traffic: batch-size cap (0 = paper default)")
	tiers := flag.String("tiers", "",
		"with -traffic: staged adapter tiers below HBM, bottom-up, e.g.\n\"ssd:64GiB@2GiB/s,ram:16GiB@8GiB/s+20us\" (empty = flat HBM store)")
	overlap := flag.Bool("overlap", false,
		"with -traffic: overlap a stalled queue head's adapter load with the running prefill")
	predistBudget := flag.String("predist-budget", "",
		"with -traffic and -tiers: enable predictive pre-distribution with this\nper-tick byte budget, e.g. \"1GiB\" (\"0B\" predicts but stages nothing)")
	predistInterval := flag.Duration("predist-interval", cluster.DefaultPreDistInterval,
		"pre-distribution tick interval")
	flag.Parse()

	if _, err := sched.PolicyByName(*policy, sched.PolicyConfig{}); err != nil {
		log.Fatal(err)
	}
	if *traffic == "" && (*tiers != "" || *overlap || *predistBudget != "") {
		log.Fatal("-tiers, -overlap and -predist-budget require -traffic")
	}
	start := time.Now()
	if *traffic != "" {
		topts := tierOptions{
			tiers:           *tiers,
			overlap:         *overlap,
			predistBudget:   *predistBudget,
			predistInterval: *predistInterval,
		}
		if err := runTraffic(*traffic, *gpus, *maxBatch, *storeAdapters, *fairness, *seed, topts); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(ran in %v of wall time)\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *disagg {
		dopts := experiments.DefaultDisaggOptions()
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "gpus" {
				dopts.NumGPUs = *gpus
			}
		})
		dopts.PrefillGPUs = experiments.DisaggPrefillGPUs(dopts.NumGPUs, *disaggRatio)
		dopts.Seed = *seed
		dopts.Policy = *policy
		points, err := experiments.Disaggregation(dopts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatDisaggregation(points))
		if *disaggCSV != "" {
			f, err := os.Create(*disaggCSV)
			if err != nil {
				log.Fatal(err)
			}
			if err := experiments.DisaggregationCSV(f, points); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *disaggCSV)
		}
		fmt.Printf("(ran in %v of wall time)\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *faults {
		fopts := experiments.DefaultFaultsOptions()
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "gpus" {
				fopts.NumGPUs = *gpus
			}
		})
		fopts.Seed = *seed
		points, err := experiments.Faults(fopts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatFaults(points))
		if *faultsCSV != "" {
			f, err := os.Create(*faultsCSV)
			if err != nil {
				log.Fatal(err)
			}
			if err := experiments.FaultsCSV(f, points); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *faultsCSV)
		}
		fmt.Printf("(ran in %v of wall time)\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *policies {
		popts := experiments.DefaultPolicyCompareOptions()
		// -gpus defaults to fig13's 16; only an explicit value overrides
		// the comparison's own fleet size.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "gpus" {
				popts.NumGPUs = *gpus
			}
		})
		popts.Seed = *seed
		rows, err := experiments.ComparePolicies(popts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatPolicyCompare(rows))
		if *policyCSV != "" {
			f, err := os.Create(*policyCSV)
			if err != nil {
				log.Fatal(err)
			}
			if err := experiments.PolicyCompareCSV(f, rows); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *policyCSV)
		}
		fmt.Printf("(ran in %v of wall time)\n", time.Since(start).Round(time.Millisecond))
		return
	}
	opts := experiments.Fig13Options{
		NumGPUs:  *gpus,
		Peak:     *peak,
		RampUp:   *rampUp,
		Hold:     *hold,
		RampDown: *rampDown,
		BinWidth: *bin,
		Seed:     *seed,
		Policy:   *policy,
	}
	if *autoscale {
		res, err := experiments.Autoscale(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatAutoscale(res))
		return
	}
	res, err := experiments.Fig13(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.FormatFig13(res))
	fmt.Printf("(simulated %v of cluster time in %v of wall time)\n",
		res.Horizon.Round(time.Second), time.Since(start).Round(time.Millisecond))
}

// tierOptions bundles the tiered-adapter-cache flags runTraffic wires
// into the cluster config.
type tierOptions struct {
	tiers           string
	overlap         bool
	predistBudget   string
	predistInterval time.Duration
}

// runTraffic replays an open-loop traffic spec (-traffic) against a
// fresh cluster and prints the run summary plus the per-tenant view the
// fairness layer (-fairness) is accountable for.
func runTraffic(specStr string, gpus, maxBatch, storeAdapters int, fairness bool, seed int64, topts tierOptions) error {
	spec, err := workload.ParseTrafficSpec(specStr)
	if err != nil {
		return err
	}
	if spec.Seed == 0 {
		spec.Seed = seed
	}
	gen := workload.NewGenerator(dist.Skewed, workload.ShareGPTLengths(), spec.Seed)
	trace := gen.Traffic(spec)
	if len(trace) == 0 {
		return fmt.Errorf("traffic spec %q generated no arrivals", specStr)
	}

	sys := core.PunicaSystem()
	if maxBatch > 0 {
		sys.MaxBatch = maxBatch
	}
	model := models.Llama2_7B()
	cfg := cluster.Config{
		NumGPUs: gpus,
		Engine: core.Config{
			System: sys,
			GPU:    hw.A100(),
			Model:  model,
			Rank:   models.DefaultLoRARank,
		},
		MigrationInterval: 10 * time.Second,
		Fairness:          fairness,
	}
	if storeAdapters > 0 {
		cfg.Engine.LoRAStoreBytes = int64(storeAdapters) * model.LoRABytes(models.DefaultLoRARank)
	}
	cfg.Tiers, err = lora.ParseTierSpec(topts.tiers)
	if err != nil {
		return err
	}
	cfg.Overlap = topts.overlap
	if topts.predistBudget != "" {
		if len(cfg.Tiers) == 0 {
			return fmt.Errorf("-predist-budget requires -tiers")
		}
		budget, err := lora.ParseBytes(topts.predistBudget)
		if err != nil {
			return fmt.Errorf("-predist-budget: %w", err)
		}
		cfg.PreDist = &cluster.PreDistConfig{
			Interval:    topts.predistInterval,
			BudgetBytes: budget,
			Mix:         spec.Mix,
			Spikes:      spec.Spikes,
		}
	}
	res, err := cluster.New(cfg).Run(trace)
	if err != nil {
		return err
	}

	fair := "off"
	if fairness {
		fair = "on"
	}
	fmt.Printf("Traffic replay — %d requests over %v on %d GPUs, fairness %s:\n",
		len(trace), spec.Horizon, gpus, fair)
	fmt.Printf("  finished %d  tok/s %.0f  makespan %.0fs  p50 %.2fs  p99 %.2fs\n",
		res.Finished, res.Throughput, res.Makespan.Seconds(),
		res.EndToEnd.Percentile(50), res.EndToEnd.Percentile(99))
	fmt.Printf("  adapter stalls %d  queue peak %d  migrations %d  evictions %d\n",
		res.AdapterStalls, res.QueuePeak, res.Migrations, res.Evictions)
	if len(res.TierStats) > 0 {
		fmt.Println("  adapter tiers (tier hits misses promo demo bytes-in):")
		for _, ts := range res.TierStats {
			fmt.Printf("    %-5s %-8d %-8d %-6d %-6d %d\n",
				ts.Tier, ts.Hits, ts.Misses, ts.Promotions, ts.Demotions, ts.BytesIn)
		}
		fmt.Printf("  cold starts %d  p50 %.1fms  p99 %.1fms",
			res.ColdStart.Count(), res.ColdStart.Percentile(50)*1e3,
			res.ColdStart.Percentile(99)*1e3)
		if cfg.PreDist != nil {
			fmt.Printf("  predist bytes %d  promotions %d",
				res.PreDistBytes, res.PreDistPromotions)
		}
		fmt.Println()
	}
	if len(res.Tenants) == 0 {
		return nil
	}
	whale := cluster.HottestTenant(res.Tenants)
	fmt.Printf("  tenants %d  stall skew %.1f  jain %.3f  hottest tenant %d  tail p99 %.2fs\n",
		len(res.Tenants), res.StallSkew, res.JainFairness,
		whale, cluster.TenantP99(res.Tenants, whale))

	// Top tenants by decode tokens — the whale plus the biggest tail.
	byTokens := append([]cluster.TenantOutcome(nil), res.Tenants...)
	sort.Slice(byTokens, func(i, j int) bool {
		if byTokens[i].DecodeTokens != byTokens[j].DecodeTokens {
			return byTokens[i].DecodeTokens > byTokens[j].DecodeTokens
		}
		return byTokens[i].Tenant < byTokens[j].Tenant
	})
	if len(byTokens) > 8 {
		byTokens = byTokens[:8]
	}
	fmt.Println("  top tenants (id finished decode-tokens stalls p99):")
	for _, to := range byTokens {
		fmt.Printf("    %-8d %-8d %-12d %-6d %.2fs\n",
			to.Tenant, to.Finished, to.DecodeTokens, to.AdapterStalls,
			to.EndToEnd.Percentile(99))
	}
	return nil
}
