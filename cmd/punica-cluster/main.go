// Command punica-cluster runs the §7.3 cluster deployment experiment
// (Fig. 13): a 16-GPU Punica cluster under an hour of Poisson load whose
// rate ramps up and back down, with Zipf-1.5 LoRA popularity. It prints
// the figure's three panels (req/s, tok/s, per-GPU batch occupancy) as a
// text table plus summary statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"punica/internal/experiments"
	"punica/internal/sched"
)

func main() {
	gpus := flag.Int("gpus", 16, "number of GPUs")
	peak := flag.Float64("peak", 11, "peak request rate (req/s)")
	rampUp := flag.Duration("ramp-up", 25*time.Minute, "ramp-up duration")
	hold := flag.Duration("hold", 10*time.Minute, "plateau duration")
	rampDown := flag.Duration("ramp-down", 25*time.Minute, "ramp-down duration")
	bin := flag.Duration("bin", time.Minute, "series bin width")
	seed := flag.Int64("seed", 42, "workload seed")
	policy := flag.String("policy", "paper", "placement policy: paper, affinity or rank")
	autoscale := flag.Bool("autoscale", false, "compare fixed vs elastic (§5.1) provisioning instead")
	policies := flag.Bool("compare-policies", false,
		"run the policy head-to-head across workload distributions instead")
	policyCSV := flag.String("policy-csv", "", "write the policy comparison as CSV to this file")
	faults := flag.Bool("faults", false,
		"run the availability experiment instead: failure rate x policy, degradation vs fault-free")
	faultsCSV := flag.String("faults-csv", "", "write the availability sweep as CSV to this file")
	disagg := flag.Bool("disagg", false,
		"run the prefill/decode disaggregation experiment instead: unified vs split pools on a prefill-heavy mix")
	disaggRatio := flag.Float64("disagg-ratio", 0.25,
		"fraction of the fleet serving the prefill pool in -disagg mode")
	disaggCSV := flag.String("disagg-csv", "", "write the disaggregation sweep as CSV to this file")
	flag.Parse()

	if _, err := sched.PolicyByName(*policy, sched.PolicyConfig{}); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if *disagg {
		dopts := experiments.DefaultDisaggOptions()
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "gpus" {
				dopts.NumGPUs = *gpus
			}
		})
		dopts.PrefillGPUs = experiments.DisaggPrefillGPUs(dopts.NumGPUs, *disaggRatio)
		dopts.Seed = *seed
		dopts.Policy = *policy
		points, err := experiments.Disaggregation(dopts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatDisaggregation(points))
		if *disaggCSV != "" {
			f, err := os.Create(*disaggCSV)
			if err != nil {
				log.Fatal(err)
			}
			if err := experiments.DisaggregationCSV(f, points); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *disaggCSV)
		}
		fmt.Printf("(ran in %v of wall time)\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *faults {
		fopts := experiments.DefaultFaultsOptions()
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "gpus" {
				fopts.NumGPUs = *gpus
			}
		})
		fopts.Seed = *seed
		points, err := experiments.Faults(fopts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatFaults(points))
		if *faultsCSV != "" {
			f, err := os.Create(*faultsCSV)
			if err != nil {
				log.Fatal(err)
			}
			if err := experiments.FaultsCSV(f, points); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *faultsCSV)
		}
		fmt.Printf("(ran in %v of wall time)\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *policies {
		popts := experiments.DefaultPolicyCompareOptions()
		// -gpus defaults to fig13's 16; only an explicit value overrides
		// the comparison's own fleet size.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "gpus" {
				popts.NumGPUs = *gpus
			}
		})
		popts.Seed = *seed
		rows, err := experiments.ComparePolicies(popts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatPolicyCompare(rows))
		if *policyCSV != "" {
			f, err := os.Create(*policyCSV)
			if err != nil {
				log.Fatal(err)
			}
			if err := experiments.PolicyCompareCSV(f, rows); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", *policyCSV)
		}
		fmt.Printf("(ran in %v of wall time)\n", time.Since(start).Round(time.Millisecond))
		return
	}
	opts := experiments.Fig13Options{
		NumGPUs:  *gpus,
		Peak:     *peak,
		RampUp:   *rampUp,
		Hold:     *hold,
		RampDown: *rampDown,
		BinWidth: *bin,
		Seed:     *seed,
		Policy:   *policy,
	}
	if *autoscale {
		res, err := experiments.Autoscale(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatAutoscale(res))
		return
	}
	res, err := experiments.Fig13(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.FormatFig13(res))
	fmt.Printf("(simulated %v of cluster time in %v of wall time)\n",
		res.Horizon.Round(time.Second), time.Since(start).Round(time.Millisecond))
}
