// Command punica-runner hosts one simulated GPU behind the runner HTTP
// API (Fig. 2: "Each GPU server starts a runner, which communicates with
// the scheduler"). Point one or more of these at punica-serve's
// -runners flag to form a distributed deployment:
//
//	punica-runner -addr :9001 -uuid gpu-a &
//	punica-runner -addr :9002 -uuid gpu-b &
//	punica-serve -runners http://localhost:9001,http://localhost:9002
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"punica/internal/core"
	"punica/internal/hw"
	"punica/internal/lora"
	"punica/internal/models"
	"punica/internal/remote"
)

func main() {
	addr := flag.String("addr", ":9001", "listen address")
	uuid := flag.String("uuid", "gpu-00", "runner identity (scheduler tie-break key)")
	modelName := flag.String("model", "7b", "backbone model: 7b, 13b or 70b")
	speedup := flag.Float64("speedup", 1, "simulated-time speedup")
	rank := flag.Int("rank", models.DefaultLoRARank, "LoRA rank")
	roleName := flag.String("role", "unified",
		"disaggregation role: unified, prefill or decode")
	tiers := flag.String("tiers", "",
		"staged adapter tiers below HBM, bottom-up, e.g.\n\"ssd:64GiB@2GiB/s,ram:16GiB@8GiB/s+20us\" (empty = flat HBM store)")
	flag.Parse()

	model, err := models.ByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	role, err := core.ParseRole(*roleName)
	if err != nil {
		log.Fatal(err)
	}
	tierSpecs, err := lora.ParseTierSpec(*tiers)
	if err != nil {
		log.Fatal(err)
	}
	r := remote.NewRunner(*uuid, core.Config{
		System: core.PunicaSystem(),
		GPU:    hw.A100(),
		Model:  model,
		Rank:   *rank,
		Role:   role,
		Tiers:  tierSpecs,
	}, *speedup)
	defer r.Close()

	fmt.Printf("punica-runner %s: %s on one simulated A100 (%s role), listening on %s\n",
		*uuid, model.Name, role, *addr)
	log.Fatal(http.ListenAndServe(*addr, r.Handler()))
}
