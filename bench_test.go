// Benchmarks: one testing.B benchmark per table/figure of the paper's
// evaluation, each running the corresponding harness end to end, plus
// numeric kernel benchmarks for the real (CPU) SGMV implementations.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// cmd/punica-bench prints the full paper-scale tables; these benchmarks
// exercise the same code paths at a size suitable for iteration.
package punica_test

import (
	"testing"
	"time"

	"punica"
	"punica/internal/experiments"
	"punica/internal/hw"
	"punica/internal/models"
	"punica/internal/sim"
	"punica/internal/tensor"
)

// BenchmarkFig1BatchingEffects regenerates Fig. 1 (prefill and decode
// latency vs batch size, 7B).
func BenchmarkFig1BatchingEffects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.Fig1(hw.A100(), models.Llama2_7B())
		if len(points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig6KvCacheWaste regenerates Fig. 6 (wasted decode steps under
// inseparable KvCache).
func BenchmarkFig6KvCacheWaste(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(32, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7SGMVRoofline regenerates Fig. 7 (SGMV roofline).
func BenchmarkFig7SGMVRoofline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig7()) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig8LoraOperator regenerates Fig. 8 (Loop vs Gather-BMM vs
// SGMV).
func BenchmarkFig8LoraOperator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig8()) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig9LoraRanks regenerates Fig. 9 (rank sweep).
func BenchmarkFig9LoraRanks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig9()) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig10TransformerLayer regenerates Fig. 10 (layer latency).
func BenchmarkFig10TransformerLayer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig10()) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig11TextGeneration runs the single-GPU serving comparison
// (all five systems, all four workloads) at a reduced request count.
func BenchmarkFig11TextGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(models.Llama2_7B(),
			experiments.TextGenOptions{NumRequests: 40, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 20 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkFig12TensorParallel70B runs the 70B TP-8 comparison at a
// reduced request count.
func BenchmarkFig12TensorParallel70B(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(experiments.TextGenOptions{NumRequests: 40, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkFig13ClusterDeployment runs a scaled-down cluster deployment
// (4 GPUs, 5 simulated minutes).
func BenchmarkFig13ClusterDeployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig13(experiments.Fig13Options{
			NumGPUs:  4,
			Peak:     3,
			RampUp:   2 * time.Minute,
			Hold:     time.Minute,
			RampDown: 2 * time.Minute,
			BinWidth: 30 * time.Second,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadlineClaims derives the 12x / +2ms headline from a reduced
// Fig. 11 run.
func BenchmarkHeadlineClaims(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(models.Llama2_7B(),
			experiments.TextGenOptions{NumRequests: 40, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		h := experiments.Headline(rows)
		if h.MultiLoRASpeedup <= 1 {
			b.Fatal("speedup should exceed 1")
		}
	}
}

// BenchmarkLoadingMicrobench runs the §5.2 on-demand loading analysis.
func BenchmarkLoadingMicrobench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Loading().PerModel <= 0 {
			b.Fatal("bad loading result")
		}
	}
}

// --- numeric kernel benchmarks (real CPU work, meaningful -benchmem) ---

func benchPairs(rng *sim.RNG, n, h, r int) []punica.LoRAPair {
	pairs := make([]punica.LoRAPair, n)
	for i := range pairs {
		pairs[i] = punica.LoRAPair{
			A: tensor.Random(rng, h, r, 0.1),
			B: tensor.Random(rng, r, h, 0.1),
		}
	}
	return pairs
}

// BenchmarkSGMVNumeric measures the real segmented matmul on a
// 32-request Distinct batch (h=256, r=16 — scaled dims; the full 4096
// would measure memcpy, not structure).
func BenchmarkSGMVNumeric(b *testing.B) {
	rng := sim.NewRNG(1)
	const h, r, batch = 256, 16, 32
	seg := distinctSegments(batch)
	pairs := benchPairs(rng, batch, h, r)
	x := tensor.Random(rng, batch, h, 1)
	y := tensor.New(batch, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y.Zero()
		punica.SGMVApply(y, x, pairs, seg)
	}
}

// BenchmarkLoopNumeric measures the per-model loop baseline on the same
// batch.
func BenchmarkLoopNumeric(b *testing.B) {
	rng := sim.NewRNG(2)
	const h, r, batch = 256, 16, 32
	seg := distinctSegments(batch)
	pairs := benchPairs(rng, batch, h, r)
	x := tensor.Random(rng, batch, h, 1)
	y := tensor.New(batch, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y.Zero()
		punica.LoopApply(y, x, pairs, seg)
	}
}

// BenchmarkGatherBMMNumeric measures the gather-then-bmm baseline,
// including its per-row weight materialisation (the extra I/O the paper
// charges it for shows up as allocations here).
func BenchmarkGatherBMMNumeric(b *testing.B) {
	rng := sim.NewRNG(3)
	const h, r, batch = 256, 16, 32
	seg := distinctSegments(batch)
	pairs := benchPairs(rng, batch, h, r)
	x := tensor.Random(rng, batch, h, 1)
	y := tensor.New(batch, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y.Zero()
		punica.GatherBMMApply(y, x, pairs, seg)
	}
}

// BenchmarkEngineDecodeStep measures the serving engine's host-side cost
// per batched invocation (32 decodes, distinct adapters), reseeding the
// batch whenever a generation wave completes so every iteration steps a
// full batch.
func BenchmarkEngineDecodeStep(b *testing.B) {
	eng := punica.NewEngine(punica.EngineConfig{
		System: punica.PunicaSystem(),
		GPU:    punica.A100(),
		Model:  punica.Llama2_7B(),
		Rank:   punica.DefaultLoRARank,
	})
	nextID := int64(0)
	now := time.Duration(0)
	reseed := func() {
		for i := 0; i < 32; i++ {
			nextID++
			if err := eng.Enqueue(&punica.Request{
				ID:        nextID,
				Model:     punica.LoRAModelID(nextID % 32),
				PromptLen: 64,
				OutputLen: 2048,
				Arrival:   now,
			}, now); err != nil {
				b.Fatal(err)
			}
		}
	}
	reseed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.Busy() {
			reseed()
		}
		res := eng.Step(now)
		if res.Idle {
			if at, ok := eng.EarliestPendingReady(); ok {
				now = at
				continue
			}
			b.Fatal("engine stuck")
		}
		now = res.EndsAt
	}
}

func distinctSegments(n int) punica.Segments {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 1
	}
	return punica.NewSegments(sizes...)
}
