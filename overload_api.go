package punica

import (
	"punica/internal/remote"
	"punica/internal/sched"
	"punica/internal/serve"
)

// Overload protection and degraded-mode serving: the admission layer
// that bounds the scheduler's queue, the backpressure envelope the HTTP
// surfaces answer with, and the frontend-side resilience machinery
// (seeded network fault injection, retry with idempotent resubmission,
// per-runner circuit breakers).

// AdmissionConfig bounds the scheduler's wait queue
// (ClusterConfig/ServeConfig admission): arrivals past MaxQueue or a
// tenant's MaxPerTenant are refused or, under ShedBestEffort, admitted
// by dropping the lowest-VTC-priority queued request. The zero value
// keeps the legacy unbounded queue.
type AdmissionConfig = sched.AdmissionConfig

// ShedPolicy selects what happens at the admission cap.
type ShedPolicy = sched.ShedPolicy

// Shed policies.
const (
	ShedReject     = sched.ShedReject
	ShedBestEffort = sched.ShedBestEffort
)

// ParseShedPolicy maps a CLI string ("", "reject", "shed-best-effort")
// to a ShedPolicy.
func ParseShedPolicy(s string) (ShedPolicy, error) { return sched.ParseShedPolicy(s) }

// AdmissionStats counts admission outcomes (rejections, tenant-cap
// rejections, sheds) after a run.
type AdmissionStats = sched.AdmissionStats

// Errors the admission layer refuses arrivals with; the serve layer
// maps both to HTTP 429 with a drain-rate-derived Retry-After.
var (
	ErrQueueFull       = sched.ErrQueueFull
	ErrTenantQueueFull = sched.ErrTenantQueueFull
)

// Backpressure is the unified JSON envelope every overload-shaped HTTP
// refusal wears (429 admission rejections and sheds, 503 capacity
// refusals); clients key off Code and honor Retry-After.
type Backpressure = serve.Backpressure

// Backpressure envelope codes.
const (
	BackpressureQueueFull       = serve.CodeQueueFull
	BackpressureTenantQueueFull = serve.CodeTenantQueueFull
	BackpressureShed            = serve.CodeShed
	BackpressureStoreFull       = serve.CodeStoreFull
	BackpressureUnavailable     = serve.CodeUnavailable
)

// NetFaultPlan is a deterministic, seeded schedule of injected network
// faults for frontend-runner links: latency adds, request/response
// drops and partitions, each with a ramp/hold/heal window. The network
// counterpart of FaultPlan's GPU crashes.
type NetFaultPlan = remote.NetFaultPlan

// NetFaultEvent is one fault window in a NetFaultPlan.
type NetFaultEvent = remote.NetFaultEvent

// NetFaultKind selects a network failure mode.
type NetFaultKind = remote.NetFaultKind

// Network failure modes a NetFaultEvent can inject.
const (
	NetFaultLatency      = remote.FaultLatency
	NetFaultDropRequest  = remote.FaultDropRequest
	NetFaultDropResponse = remote.FaultDropResponse
	NetFaultPartition    = remote.FaultPartition
)

// ParseNetFaultPlan parses the fault-plan mini-language, e.g.
// "seed=1; lat=at:10s,hold:5s,add:200ms; part=at:30s,hold:10s,link:1".
func ParseNetFaultPlan(s string) (NetFaultPlan, error) { return remote.ParseNetFaultPlan(s) }

// NetFaultInjector realizes a plan as per-link http.RoundTripper
// wrappers with pure-hash (seed, link, event, call) fault draws — the
// same plan and call sequence always injects the same faults.
type NetFaultInjector = remote.NetFaultInjector

// NewNetFaultInjector builds an injector whose clock starts now.
func NewNetFaultInjector(plan NetFaultPlan) *NetFaultInjector {
	return remote.NewNetFaultInjector(plan)
}

// NetFaultStats counts the faults an injector actually delivered.
type NetFaultStats = remote.NetFaultStats

// RetryPolicy configures the frontend client's retry loop: exponential
// backoff with deterministic jitter, Retry-After hints win outright,
// and idempotency keys make resubmission exactly-once on the runner.
type RetryPolicy = remote.RetryPolicy

// BreakerConfig configures per-runner circuit breakers in the frontend:
// Threshold consecutive transport failures open the breaker (placements
// stop), Cooldown later it half-opens, and health probes walk it back
// to closed. The zero value disables breakers.
type BreakerConfig = remote.BreakerConfig

// BreakerState is a circuit breaker's position.
type BreakerState = remote.BreakerState

// Circuit-breaker states.
const (
	BreakerClosed   = remote.BreakerClosed
	BreakerOpen     = remote.BreakerOpen
	BreakerHalfOpen = remote.BreakerHalfOpen
)
