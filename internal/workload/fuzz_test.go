package workload

import (
	"math"
	"testing"
	"time"

	"punica/internal/dist"
	"punica/internal/sim"
)

// FuzzTrafficSpec throws arbitrary spec strings at the parser and, when
// one parses, checks the invariants the rest of the stack relies on:
// rates are finite and non-negative everywhere, MaxRate bounds Rate,
// and generated arrivals are sorted, in-horizon, and tenant-tagged
// in-range.
func FuzzTrafficSpec(f *testing.F) {
	f.Add("horizon=8m;base=5;diurnal=0.4/4m;spike=at:2m,peak:30,ramp:15s,hold:45s,decay:30s,model:0,tenant:1;tenants=1000000/4/20s;mix=Skewed/32;seed=7")
	f.Add("horizon=2m;base=6;ramp=8/1m/30s/20s;rand-spikes=3/5/10;seed=3")
	f.Add("horizon=1m;base=0;spike=peak:4,hold:10s")
	f.Add("horizon=90s;base=1;diurnal=1/10s/0.5;tenants=3/1/1s")
	f.Add("horizon=;base=nan;spike=peak:-1")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 512 {
			return // parser is O(len); cap the corpus
		}
		spec, err := ParseTrafficSpec(s)
		if err != nil {
			return // rejected specs are fine; panics are not
		}
		if spec.Horizon <= 0 {
			t.Fatalf("accepted spec with horizon %v", spec.Horizon)
		}
		spikes := spec.expandSpikes()
		max := spec.maxRateOver(spikes)
		if max <= 0 || math.IsNaN(max) || math.IsInf(max, 0) {
			t.Fatalf("accepted spec with MaxRate %v", max)
		}
		step := spec.Horizon / 97
		if step <= 0 {
			step = 1
		}
		for at := time.Duration(0); at < spec.Horizon; at += step {
			r := spec.rateOver(at, spikes)
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				t.Fatalf("rate(%v) = %v", at, r)
			}
			if r > max+1e-9 {
				t.Fatalf("rate(%v) = %v exceeds MaxRate %v", at, r, max)
			}
		}
		// Generate from a trimmed spec so fuzz iterations stay fast:
		// cap the expected arrival count, keeping the shape logic.
		if max*spec.Horizon.Seconds() > 5000 {
			return
		}
		g := NewGenerator(dist.Skewed, Constant(64, 16), 11)
		reqs := g.Traffic(spec)
		pop := spec.Tenants.withDefaults().Population
		prev := time.Duration(-1)
		for _, r := range reqs {
			if r.Arrival < 0 || r.Arrival >= spec.Horizon {
				t.Fatalf("arrival %v out of horizon %v", r.Arrival, spec.Horizon)
			}
			if r.Arrival < prev {
				t.Fatal("arrivals not sorted")
			}
			prev = r.Arrival
			if r.Tenant < 1 || r.Tenant > pop {
				// Spike whale tags may exceed the population by design.
				if !spikeTenant(spikes, r.Tenant) {
					t.Fatalf("tenant %d outside [1,%d]", r.Tenant, pop)
				}
			}
		}
	})
}

func spikeTenant(spikes []Spike, id int64) bool {
	for _, sp := range spikes {
		if sp.Tenant == id {
			return true
		}
	}
	return false
}

// FuzzTenantChurn drives the assigner with arbitrary spec parameters
// and query points: ids must stay in [1, Population] (after
// normalisation) no matter how degenerate the spec.
func FuzzTenantChurn(f *testing.F) {
	f.Add(int64(1_000_000), 4, int64(20*time.Second), int64(5), int64(30*time.Second), int64(3))
	f.Add(int64(1), 1, int64(0), int64(0), int64(0), int64(0))
	f.Add(int64(-7), -2, int64(-time.Hour), int64(99), int64(math.MaxInt64), int64(1))
	f.Add(int64(math.MaxInt64), 1000, int64(math.MaxInt64), int64(-1), int64(-5), int64(2))
	f.Fuzz(func(t *testing.T, pop int64, per int, churn, model, at, seed int64) {
		a := NewTenantAssigner(TenantSpec{Population: pop, PerModel: per, Churn: time.Duration(churn)}, sim.NewRNG(seed))
		wantPop := a.spec.Population
		if wantPop < 1 {
			t.Fatalf("normalised population %d < 1", wantPop)
		}
		for i := 0; i < 16; i++ {
			id := a.TenantFor(model, time.Duration(at)+time.Duration(i)*time.Second)
			if id < 1 || id > wantPop {
				t.Fatalf("tenant %d outside [1,%d] (pop=%d per=%d churn=%d at=%d)",
					id, wantPop, pop, per, churn, at)
			}
		}
	})
}
