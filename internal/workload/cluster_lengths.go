package workload

// ClusterLengths returns the length distribution for the §7.3 cluster
// deployment experiment. The Fig. 13 panels are only mutually consistent
// if responses are long: the request-rate panel peaks near 10 req/s while
// the token-rate panel peaks near 10k tok/s, implying ≈1k tokens per
// request — long chat turns rather than the short-response mix of §7.2.
// Prompts stay moderate (mean ≈ 250 tokens) and prompt+response fits the
// 4096-token context.
func ClusterLengths() Lengths {
	return Lengths{
		PromptMu: 5.2, PromptSigma: 0.8, PromptMin: 16, PromptMax: 1024,
		OutMu: 6.7, OutSigma: 0.6, OutMin: 64, OutMax: 2048,
	}
}
