package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"strings"
	"testing"
	"time"

	"punica/internal/dist"
	"punica/internal/sim"
)

// trafficDigest hashes a trace byte-for-byte: any drift in arrival
// times, models, lengths or tenant tags changes the digest.
func trafficDigest(reqs []Request) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, r := range reqs {
		put(r.ID)
		put(r.Model)
		put(int64(r.PromptLen))
		put(int64(r.OutputLen))
		put(int64(r.Arrival))
		put(r.Tenant)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func flashCrowdSpec() TrafficSpec {
	return TrafficSpec{
		Horizon:       8 * time.Minute,
		Base:          4,
		DiurnalAmp:    0.5,
		DiurnalPeriod: 4 * time.Minute,
		Spikes: []Spike{{
			At: 2 * time.Minute, Peak: 30,
			Ramp: 15 * time.Second, Hold: 45 * time.Second, Decay: 30 * time.Second,
			Model: 0, Tenant: 1,
		}},
		RandomSpikes: RandomSpikes{N: 2, PeakMin: 5, PeakMax: 10,
			Ramp: 10 * time.Second, Hold: 20 * time.Second, Decay: 20 * time.Second},
		Tenants: TenantSpec{Population: 1 << 20, PerModel: 4, Churn: 20 * time.Second},
		Mix:     dist.Mix{Phases: []dist.Phase{{Kind: dist.Skewed, NumModels: 32}}},
		Seed:    7,
	}
}

// TestTrafficGolden pins the full flash-crowd trace to a digest: the
// traffic engine's arrival process is part of the repo's determinism
// contract, like consolidate_golden.txt for the engine. Regenerate
// deliberately (and note it in CHANGES.md) if the generator changes.
const trafficGoldenDigest = "5cf8353e1944cbec3a7b8bde173b77d4fbc5491e084f3c59e7215d7a44329973"

func genFlashCrowd(t *testing.T) []Request {
	t.Helper()
	g := NewGenerator(dist.Skewed, ShareGPTLengths(), 7)
	reqs := g.Traffic(flashCrowdSpec())
	if len(reqs) == 0 {
		t.Fatal("flash-crowd spec produced no requests")
	}
	return reqs
}

func TestTrafficGolden(t *testing.T) {
	got := trafficDigest(genFlashCrowd(t))
	if got != trafficGoldenDigest {
		t.Errorf("traffic golden digest drifted:\n got  %s\n want %s", got, trafficGoldenDigest)
	}
}

func TestTrafficDeterministic(t *testing.T) {
	a, b := genFlashCrowd(t), genFlashCrowd(t)
	if len(a) != len(b) {
		t.Fatalf("lengths diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTrafficArrivalsWellFormed(t *testing.T) {
	spec := flashCrowdSpec()
	reqs := genFlashCrowd(t)
	for i, r := range reqs {
		if r.Arrival < 0 || r.Arrival >= spec.Horizon {
			t.Fatalf("arrival %v out of horizon", r.Arrival)
		}
		if i > 0 && r.Arrival < reqs[i-1].Arrival {
			t.Fatal("arrivals not sorted")
		}
		if r.Tenant <= 0 || r.Tenant > spec.Tenants.Population {
			t.Fatalf("tenant %d out of [1, %d]", r.Tenant, spec.Tenants.Population)
		}
	}
}

func TestTrafficRateShapes(t *testing.T) {
	spec := flashCrowdSpec()
	spec.RandomSpikes = RandomSpikes{} // explicit shapes only
	// Diurnal trough and peak around the sinusoid (7m is past the
	// spike's decay, which runs until 3m30s).
	trough := spec.Rate(7 * time.Minute) // sin(2π·1.75) = -1
	peak := spec.Rate(1 * time.Minute)   // sin(2π·0.25) = +1
	if math.Abs(trough-2) > 1e-9 {
		t.Errorf("diurnal trough rate = %g, want 2", trough)
	}
	// The spike holds from 2m15s to 3m; at 1m only the diurnal peak.
	if math.Abs(peak-6) > 1e-9 {
		t.Errorf("diurnal peak rate = %g, want 6", peak)
	}
	hold := spec.Rate(2*time.Minute + 30*time.Second) // sin(2π·0.625)
	wantHold := 4*(1+0.5*math.Sin(2*math.Pi*0.625)) + 30
	if math.Abs(hold-wantHold) > 1e-9 {
		t.Errorf("spike-hold rate = %g, want %g", hold, wantHold)
	}
	if max := spec.MaxRate(); max < hold || max < peak {
		t.Errorf("MaxRate %g below realized rate", max)
	}
	// Rate never negative even with amp > 1.
	spec.DiurnalAmp = 3
	for s := 0; s < 480; s++ {
		if r := spec.Rate(time.Duration(s) * time.Second); r < 0 || math.IsNaN(r) {
			t.Fatalf("rate(%ds) = %g", s, r)
		}
	}
}

func TestTrafficSpikeTargeting(t *testing.T) {
	// A pure spike (no background) with model+tenant targeting: every
	// arrival must carry the whale's tags.
	spec := TrafficSpec{
		Horizon: 2 * time.Minute,
		Spikes: []Spike{{
			At: 10 * time.Second, Peak: 20,
			Ramp: 5 * time.Second, Hold: 30 * time.Second, Decay: 10 * time.Second,
			Model: 3, Tenant: 42,
		}},
		Seed: 1,
	}
	g := NewGenerator(dist.Skewed, ShareGPTLengths(), 1)
	reqs := g.Traffic(spec)
	if len(reqs) == 0 {
		t.Fatal("spike produced no arrivals")
	}
	for _, r := range reqs {
		if r.Model != 3 || r.Tenant != 42 {
			t.Fatalf("spike arrival not targeted: model=%d tenant=%d", r.Model, r.Tenant)
		}
	}
}

func TestTrafficTenantChurn(t *testing.T) {
	// With churn on, the tenant set behind one model must rotate over
	// the horizon; with churn off it stays fixed at PerModel ids.
	gather := func(churn time.Duration) map[int64]bool {
		a := NewTenantAssigner(TenantSpec{Population: 1 << 30, PerModel: 4, Churn: churn}, sim.NewRNG(3))
		seen := map[int64]bool{}
		for s := 0; s < 600; s++ {
			seen[a.TenantFor(5, time.Duration(s)*time.Second)] = true
		}
		return seen
	}
	static := gather(0)
	if len(static) != 4 {
		t.Errorf("churn off: %d distinct tenants, want 4", len(static))
	}
	churned := gather(20 * time.Second)
	if len(churned) <= 8 {
		t.Errorf("churn on: only %d distinct tenants over 10 min, want rotation", len(churned))
	}
}

func TestTenantAssignerInRange(t *testing.T) {
	a := NewTenantAssigner(TenantSpec{Population: 100, PerModel: 3, Churn: time.Second}, sim.NewRNG(4))
	for s := 0; s < 1000; s++ {
		id := a.TenantFor(int64(s%7), time.Duration(s)*33*time.Millisecond)
		if id < 1 || id > 100 {
			t.Fatalf("tenant %d out of [1,100]", id)
		}
	}
}

func TestTrafficDefaultsAndEmpty(t *testing.T) {
	g := NewGenerator(dist.Skewed, ShareGPTLengths(), 5)
	if got := g.Traffic(TrafficSpec{}); got != nil {
		t.Fatal("zero spec should produce no requests")
	}
	if got := g.Traffic(TrafficSpec{Horizon: time.Minute}); got != nil {
		t.Fatal("zero-rate spec should produce no requests")
	}
	// Default mix: models come from the generator's kind.
	reqs := g.Traffic(TrafficSpec{Horizon: time.Minute, Base: 5, Seed: 2})
	if len(reqs) == 0 {
		t.Fatal("base-only spec produced no requests")
	}
	for _, r := range reqs {
		if r.Tenant < 1 || r.Tenant > DefaultTenantPopulation {
			t.Fatalf("default-population tenant %d out of range", r.Tenant)
		}
	}
}

func TestParseTrafficSpec(t *testing.T) {
	spec, err := ParseTrafficSpec("horizon=8m;base=5;diurnal=0.4/4m;ramp=8/1m/2m/1m;" +
		"spike=at:2m,peak:30,ramp:15s,hold:45s,decay:30s,model:0,tenant:1;" +
		"rand-spikes=3/5/10;tenants=1000000/4/20s;mix=Skewed/32;seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Horizon != 8*time.Minute || spec.Base != 5 || spec.DiurnalAmp != 0.4 ||
		spec.DiurnalPeriod != 4*time.Minute {
		t.Fatalf("background misparsed: %+v", spec)
	}
	if spec.Ramp == nil || spec.Ramp.Peak != 8 || spec.Ramp.Hold != 2*time.Minute {
		t.Fatalf("ramp misparsed: %+v", spec.Ramp)
	}
	if len(spec.Spikes) != 1 || spec.Spikes[0].Model != 0 || spec.Spikes[0].Tenant != 1 ||
		spec.Spikes[0].Peak != 30 {
		t.Fatalf("spike misparsed: %+v", spec.Spikes)
	}
	if spec.RandomSpikes.N != 3 || spec.RandomSpikes.PeakMax != 10 {
		t.Fatalf("rand-spikes misparsed: %+v", spec.RandomSpikes)
	}
	if spec.Tenants.Population != 1_000_000 || spec.Tenants.PerModel != 4 ||
		spec.Tenants.Churn != 20*time.Second {
		t.Fatalf("tenants misparsed: %+v", spec.Tenants)
	}
	if len(spec.Mix.Phases) != 1 || spec.Mix.Phases[0].Kind != dist.Skewed ||
		spec.Mix.Phases[0].NumModels != 32 {
		t.Fatalf("mix misparsed: %+v", spec.Mix)
	}
	if spec.Seed != 7 {
		t.Fatalf("seed misparsed: %d", spec.Seed)
	}
}

func TestParseTrafficSpecErrors(t *testing.T) {
	bad := []string{
		"",                               // no horizon
		"horizon=8m",                     // zero rate
		"horizon=-1m;base=5",             // negative horizon
		"horizon=8m;base=-3",             // negative rate
		"horizon=8m;base=NaN",            // non-finite
		"base",                           // not key=value
		"horizon=8m;frob=1",              // unknown key
		"horizon=8m;diurnal=2/4m;base=1", // amp > 1
		"horizon=8m;base=1;spike=peak:0", // zero-peak spike
		"horizon=8m;base=1;spike=tenant:-2,peak:5", // negative tenant
		"horizon=8m;base=1;rand-spikes=0/1/2",      // zero count
		"horizon=8m;base=1;rand-spikes=2/9/3",      // max < min
		"horizon=8m;base=1;tenants=0",              // zero population
		"horizon=8m;base=1;mix=Bogus/4",            // unknown kind
	}
	for _, s := range bad {
		if _, err := ParseTrafficSpec(s); err == nil {
			t.Errorf("ParseTrafficSpec(%q) should fail", s)
		}
	}
}

func TestParseTrafficSpecRoundTrips(t *testing.T) {
	// A parsed spec must generate: parse → Traffic is the CLI path.
	spec, err := ParseTrafficSpec("horizon=2m;base=6;tenants=1000/2/10s;mix=Uniform/8;seed=3")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(dist.Skewed, ShareGPTLengths(), 3)
	reqs := g.Traffic(spec)
	if len(reqs) == 0 {
		t.Fatal("parsed spec generated no traffic")
	}
	for _, r := range reqs {
		if r.Model < 0 || r.Model >= 8 {
			t.Fatalf("model %d outside Uniform/8 population", r.Model)
		}
		if r.Tenant < 1 || r.Tenant > 1000 {
			t.Fatalf("tenant %d outside population", r.Tenant)
		}
	}
}

func TestTrafficPoissonMixUntouched(t *testing.T) {
	// The traffic engine must not perturb the PoissonMix rng stream:
	// legacy golden traces replay byte-identically whether or not
	// traffic.go exists. Guard by checking PoissonMix consumes the same
	// draws as a hand-rolled thinning loop.
	mkMix := func() dist.Mix {
		return dist.Mix{Phases: []dist.Phase{{Length: time.Minute, Kind: dist.Skewed, NumModels: 8}}}
	}
	g := NewGenerator(dist.Skewed, ShareGPTLengths(), 21)
	got := g.PoissonMix(func(time.Duration) float64 { return 4 }, 4, time.Minute, mkMix())

	rng := sim.NewRNG(21)
	assigner := dist.NewMixAssigner(mkMix(), rng)
	var want []Request
	var id int64
	t0 := time.Duration(0)
	for {
		t0 += hwSeconds(rng.Exponential(1.0 / 4))
		if t0 >= time.Minute {
			break
		}
		if rng.Float64() <= 1 {
			id++
			l := ShareGPTLengths()
			want = append(want, Request{
				ID: id, Model: int64(assigner.AssignAt(t0)),
				PromptLen: l.SamplePrompt(rng), OutputLen: l.SampleOutput(rng),
				Arrival: t0,
			})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("PoissonMix stream drifted: %d vs %d arrivals", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("PoissonMix stream drifted at %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestTrafficSpecStringless(t *testing.T) {
	// Clause order must not matter for whitespace/empty clauses.
	a, err := ParseTrafficSpec("horizon=2m; base=3 ;;seed=1")
	if err != nil {
		t.Fatal(err)
	}
	if a.Horizon != 2*time.Minute || a.Base != 3 || a.Seed != 1 {
		t.Fatalf("whitespace handling broke parse: %+v", a)
	}
	if !strings.Contains(mustErr(t, "horizon=2m;base=x").Error(), "base") {
		t.Error("error should name the offending clause")
	}
}

func mustErr(t *testing.T, s string) error {
	t.Helper()
	_, err := ParseTrafficSpec(s)
	if err == nil {
		t.Fatalf("ParseTrafficSpec(%q) should fail", s)
	}
	return err
}
