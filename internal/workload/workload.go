// Package workload generates the request streams the Punica evaluation
// uses (§7): prompt and response lengths following a ShareGPT-like
// heavy-tailed distribution, LoRA model popularity under the four
// distributions (Distinct/Uniform/Skewed/Identical), and Poisson arrival
// processes with a time-varying rate for the cluster experiment (§7.3).
//
// Substitution note (DESIGN.md): the real ShareGPT trace is not
// redistributable; lengths are drawn from log-normal fits calibrated so
// 1000 requests generate ≈101k tokens, matching §7.2.
package workload

import (
	"time"

	"punica/internal/dist"
	"punica/internal/sim"
)

// Request is one serving request: its LoRA model, the prompt length, and
// the predetermined response length (the simulation's stand-in for the
// stopping condition — the paper replays trace lengths the same way).
type Request struct {
	ID        int64
	Model     int64 // LoRA model id
	PromptLen int
	OutputLen int
	Arrival   time.Duration

	// Tenant identifies the user the request belongs to. Zero means
	// untagged — the paper's workloads, which predate the multi-tenant
	// traffic engine, leave it unset. Traffic-engine traces tag every
	// request so per-tenant fairness and skew metrics can attribute it.
	Tenant int64
}

// TotalTokens returns prompt plus response tokens.
func (r Request) TotalTokens() int { return r.PromptLen + r.OutputLen }

// Lengths samples prompt and response token counts. Zero values are not
// useful; use ShareGPTLengths or fixed lengths via Constant.
type Lengths struct {
	PromptMu, PromptSigma float64
	PromptMin, PromptMax  int
	OutMu, OutSigma       float64
	OutMin, OutMax        int
}

// ShareGPTLengths returns the synthetic stand-in for the ShareGPT trace:
// log-normal prompts (conversation contexts, mean ≈ 450 tokens, capped at
// 2048) and log-normal responses (mean ≈ 101 tokens, capped at 1024).
// 1000 sampled requests generate ≈101k tokens, matching §7.2's "1000
// requests (generating around 101k tokens)".
func ShareGPTLengths() Lengths {
	return Lengths{
		PromptMu: 5.7, PromptSigma: 0.9, PromptMin: 8, PromptMax: 2048,
		OutMu: 4.3, OutSigma: 0.8, OutMin: 4, OutMax: 1024,
	}
}

// Constant returns a degenerate sampler with fixed lengths, used by the
// microbenchmark figures.
func Constant(prompt, out int) Lengths {
	return Lengths{
		PromptMu: 0, PromptSigma: 0, PromptMin: prompt, PromptMax: prompt,
		OutMu: 0, OutSigma: 0, OutMin: out, OutMax: out,
	}
}

// SamplePrompt draws a prompt length.
func (l Lengths) SamplePrompt(rng *sim.RNG) int {
	return clampSample(rng, l.PromptMu, l.PromptSigma, l.PromptMin, l.PromptMax)
}

// SampleOutput draws a response length.
func (l Lengths) SampleOutput(rng *sim.RNG) int {
	return clampSample(rng, l.OutMu, l.OutSigma, l.OutMin, l.OutMax)
}

func clampSample(rng *sim.RNG, mu, sigma float64, min, max int) int {
	if sigma == 0 {
		return min
	}
	v := int(rng.LogNormal(mu, sigma))
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	return v
}

// Generator produces request streams.
type Generator struct {
	Kind    dist.Kind
	Lengths Lengths
	rng     *sim.RNG
	nextID  int64
}

// NewGenerator builds a deterministic generator for the given popularity
// distribution and length sampler.
func NewGenerator(kind dist.Kind, lengths Lengths, seed int64) *Generator {
	return &Generator{Kind: kind, Lengths: lengths, rng: sim.NewRNG(seed)}
}

// Batch produces n requests all arriving at t=0, the §7.2 text-generation
// setup ("We generate 1000 requests ... batch in a first-come-first-serve
// manner"). Model assignment follows the generator's distribution with a
// population of NumModels(kind, n).
func (g *Generator) Batch(n int) []Request {
	assigner := dist.NewAssigner(g.Kind, dist.NumModels(g.Kind, n), g.rng)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = g.sample(assigner, 0)
	}
	return reqs
}

// Poisson produces requests over [0, horizon) with inhomogeneous Poisson
// arrivals at rate rate(t) requests/second ("gaps between request arrival
// time follow an exponential distribution", §7.3), using thinning against
// maxRate (an upper bound of rate over the horizon). numModels sizes the
// popularity population.
func (g *Generator) Poisson(rate func(time.Duration) float64, maxRate float64, horizon time.Duration, numModels int) []Request {
	// A static distribution is a one-phase mix; the rng consumption is
	// identical, so static and drifting traces share arrival processes.
	return g.PoissonMix(rate, maxRate, horizon, dist.Mix{Phases: []dist.Phase{
		{Length: horizon, Kind: g.Kind, NumModels: numModels},
	}})
}

// PoissonMix is Poisson with a time-varying popularity mix: each
// arrival's model is drawn from the mix phase covering its arrival time,
// so the hot set can drift over the horizon (the Fig. 13 / autoscale
// extension scenario). The generator's own Kind is ignored.
func (g *Generator) PoissonMix(rate func(time.Duration) float64, maxRate float64, horizon time.Duration, mix dist.Mix) []Request {
	if maxRate <= 0 {
		return nil
	}
	assigner := dist.NewMixAssigner(mix, g.rng)
	var reqs []Request
	t := time.Duration(0)
	for {
		gap := g.rng.Exponential(1 / maxRate)
		t += hwSeconds(gap)
		if t >= horizon {
			break
		}
		if g.rng.Float64() <= rate(t)/maxRate {
			reqs = append(reqs, g.sampleModel(int64(assigner.AssignAt(t)), t))
		}
	}
	return reqs
}

func (g *Generator) sample(assigner *dist.Assigner, at time.Duration) Request {
	return g.sampleModel(int64(assigner.Assign()), at)
}

func (g *Generator) sampleModel(model int64, at time.Duration) Request {
	g.nextID++
	return Request{
		ID:        g.nextID,
		Model:     model,
		PromptLen: g.Lengths.SamplePrompt(g.rng),
		OutputLen: g.Lengths.SampleOutput(g.rng),
		Arrival:   at,
	}
}

func hwSeconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Trapezoid is the Fig. 13 load shape: "the request rate of the workload
// gradually increases and then gradually decreases". Rate ramps linearly
// from 0 to Peak over RampUp, holds for Hold, and ramps back to 0 over
// RampDown.
type Trapezoid struct {
	Peak     float64 // requests/second at the plateau
	RampUp   time.Duration
	Hold     time.Duration
	RampDown time.Duration
}

// Horizon returns the total profile duration.
func (p Trapezoid) Horizon() time.Duration { return p.RampUp + p.Hold + p.RampDown }

// Rate returns the request rate at time t.
func (p Trapezoid) Rate(t time.Duration) float64 {
	switch {
	case t < 0 || t >= p.Horizon():
		return 0
	case t < p.RampUp:
		return p.Peak * float64(t) / float64(p.RampUp)
	case t < p.RampUp+p.Hold:
		return p.Peak
	default:
		left := p.Horizon() - t
		return p.Peak * float64(left) / float64(p.RampDown)
	}
}
