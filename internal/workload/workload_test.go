package workload

import (
	"math"
	"testing"
	"time"

	"punica/internal/dist"
)

func TestShareGPTCalibration(t *testing.T) {
	// §7.2: "We generate 1000 requests (generating around 101k tokens)".
	g := NewGenerator(dist.Uniform, ShareGPTLengths(), 1)
	reqs := g.Batch(1000)
	var out int
	for _, r := range reqs {
		out += r.OutputLen
	}
	if out < 80_000 || out > 125_000 {
		t.Errorf("1000 requests generated %d tokens, want ~101k", out)
	}
}

func TestLengthBounds(t *testing.T) {
	g := NewGenerator(dist.Skewed, ShareGPTLengths(), 2)
	for _, r := range g.Batch(2000) {
		if r.PromptLen < 8 || r.PromptLen > 2048 {
			t.Fatalf("prompt length %d out of bounds", r.PromptLen)
		}
		if r.OutputLen < 4 || r.OutputLen > 1024 {
			t.Fatalf("output length %d out of bounds", r.OutputLen)
		}
		if r.TotalTokens() != r.PromptLen+r.OutputLen {
			t.Fatal("TotalTokens arithmetic wrong")
		}
	}
}

func TestConstantLengths(t *testing.T) {
	g := NewGenerator(dist.Identical, Constant(512, 64), 3)
	for _, r := range g.Batch(10) {
		if r.PromptLen != 512 || r.OutputLen != 64 {
			t.Fatalf("constant lengths violated: %+v", r)
		}
	}
}

func TestBatchModelPopulations(t *testing.T) {
	for _, k := range dist.Kinds {
		g := NewGenerator(k, ShareGPTLengths(), 4)
		reqs := g.Batch(100)
		seen := map[int64]bool{}
		for _, r := range reqs {
			seen[r.Model] = true
		}
		max := dist.NumModels(k, 100)
		if len(seen) > max {
			t.Errorf("%v: %d distinct models, want <= %d", k, len(seen), max)
		}
		if k == dist.Distinct && len(seen) != 100 {
			t.Errorf("Distinct: %d distinct models, want 100", len(seen))
		}
		if k == dist.Identical && len(seen) != 1 {
			t.Errorf("Identical: %d distinct models, want 1", len(seen))
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(dist.Skewed, ShareGPTLengths(), 7).Batch(50)
	b := NewGenerator(dist.Skewed, ShareGPTLengths(), 7).Batch(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRequestIDsUnique(t *testing.T) {
	g := NewGenerator(dist.Uniform, ShareGPTLengths(), 8)
	seen := map[int64]bool{}
	for _, r := range append(g.Batch(50), g.Batch(50)...) {
		if seen[r.ID] {
			t.Fatalf("duplicate request id %d", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestPoissonRateMatches(t *testing.T) {
	g := NewGenerator(dist.Uniform, ShareGPTLengths(), 9)
	const rate = 5.0 // req/s
	horizon := 2000 * time.Second
	reqs := g.Poisson(func(time.Duration) float64 { return rate }, rate, horizon, 16)
	got := float64(len(reqs)) / horizon.Seconds()
	if math.Abs(got-rate)/rate > 0.1 {
		t.Errorf("Poisson rate = %.2f req/s, want ~%.1f", got, rate)
	}
	// Arrivals sorted and within horizon.
	for i, r := range reqs {
		if r.Arrival < 0 || r.Arrival >= horizon {
			t.Fatalf("arrival %v out of horizon", r.Arrival)
		}
		if i > 0 && r.Arrival < reqs[i-1].Arrival {
			t.Fatal("arrivals not sorted")
		}
	}
}

func TestPoissonInterarrivalsExponential(t *testing.T) {
	g := NewGenerator(dist.Uniform, ShareGPTLengths(), 10)
	const rate = 10.0
	reqs := g.Poisson(func(time.Duration) float64 { return rate }, rate, 5000*time.Second, 16)
	var gaps []float64
	for i := 1; i < len(reqs); i++ {
		gaps = append(gaps, (reqs[i].Arrival - reqs[i-1].Arrival).Seconds())
	}
	mean := 0.0
	for _, gap := range gaps {
		mean += gap
	}
	mean /= float64(len(gaps))
	if math.Abs(mean-1/rate)/(1/rate) > 0.1 {
		t.Errorf("mean gap = %.4f, want ~%.4f", mean, 1/rate)
	}
	// CV of an exponential is 1.
	varsum := 0.0
	for _, gap := range gaps {
		varsum += (gap - mean) * (gap - mean)
	}
	cv := math.Sqrt(varsum/float64(len(gaps))) / mean
	if math.Abs(cv-1) > 0.15 {
		t.Errorf("interarrival CV = %.2f, want ~1 (exponential)", cv)
	}
}

func TestTrapezoidProfile(t *testing.T) {
	p := Trapezoid{Peak: 10, RampUp: 10 * time.Minute, Hold: 5 * time.Minute, RampDown: 10 * time.Minute}
	if p.Horizon() != 25*time.Minute {
		t.Fatalf("horizon = %v", p.Horizon())
	}
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 0},
		{5 * time.Minute, 5},
		{10 * time.Minute, 10},
		{12 * time.Minute, 10},
		{20 * time.Minute, 5},
		{25 * time.Minute, 0},
		{-time.Second, 0},
	}
	for _, c := range cases {
		if got := p.Rate(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Rate(%v) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestPoissonTrapezoidShape(t *testing.T) {
	p := Trapezoid{Peak: 8, RampUp: 400 * time.Second, Hold: 200 * time.Second, RampDown: 400 * time.Second}
	g := NewGenerator(dist.Skewed, ShareGPTLengths(), 11)
	reqs := g.Poisson(p.Rate, p.Peak, p.Horizon(), 32)
	// Count arrivals in the middle (plateau) vs the first ramp tenth.
	early, mid := 0, 0
	for _, r := range reqs {
		if r.Arrival < 40*time.Second {
			early++
		}
		if r.Arrival >= 400*time.Second && r.Arrival < 440*time.Second {
			mid++
		}
	}
	if mid <= early*3 {
		t.Errorf("plateau arrivals (%d) should dwarf early ramp arrivals (%d)", mid, early)
	}
}

func TestPoissonZeroMaxRate(t *testing.T) {
	g := NewGenerator(dist.Uniform, ShareGPTLengths(), 12)
	if got := g.Poisson(func(time.Duration) float64 { return 0 }, 0, time.Minute, 4); got != nil {
		t.Fatal("zero max rate should produce no requests")
	}
}

func TestPoissonMixRotatesModels(t *testing.T) {
	g := NewGenerator(dist.Skewed, ShareGPTLengths(), 14)
	const rate = 5.0
	horizon := 1000 * time.Second
	mix := dist.Mix{Phases: []dist.Phase{
		{Length: horizon / 2, Kind: dist.Skewed, NumModels: 8, Offset: 0},
		{Length: horizon / 2, Kind: dist.Skewed, NumModels: 8, Offset: 8},
	}}
	reqs := g.PoissonMix(func(time.Duration) float64 { return rate }, rate, horizon, mix)
	got := float64(len(reqs)) / horizon.Seconds()
	if math.Abs(got-rate)/rate > 0.1 {
		t.Errorf("PoissonMix rate = %.2f req/s, want ~%.1f", got, rate)
	}
	for _, r := range reqs {
		early := r.Arrival < horizon/2
		if early && (r.Model < 0 || r.Model >= 8) {
			t.Fatalf("first-phase request at %v uses model %d, want [0,8)", r.Arrival, r.Model)
		}
		if !early && (r.Model < 8 || r.Model >= 16) {
			t.Fatalf("second-phase request at %v uses model %d, want [8,16)", r.Arrival, r.Model)
		}
	}
}

func TestPoissonMixDeterministic(t *testing.T) {
	mix := dist.Mix{Phases: []dist.Phase{
		{Length: time.Minute, Kind: dist.Uniform, NumModels: 4},
		{Length: time.Minute, Kind: dist.Zipf, Alpha: 2, NumModels: 4, Offset: 4},
	}}
	run := func() []Request {
		g := NewGenerator(dist.Skewed, ShareGPTLengths(), 15)
		return g.PoissonMix(func(time.Duration) float64 { return 3 }, 3, 2*time.Minute, mix)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
}
