// Open-loop traffic engine: the live-traffic realism layer over the
// paper's smooth Poisson arrivals. A TrafficSpec composes rate shapes —
// a base rate, a diurnal sinusoid, a trapezoid overlay, and flash-crowd
// spikes with ramp/hold/decay (explicit or seeded-random) — into one
// inhomogeneous arrival process, and maps every arrival onto a seeded
// tenant population with churn: millions of distinct tenant ids layered
// over the dist.Mix adapter popularity, with the active tenants behind
// each adapter rotating over the horizon.
//
// The engine is open-loop: arrival times are a pure function of the
// spec and seed, independent of how fast the cluster serves them —
// exactly the regime where one hot tenant's flash crowd can starve the
// long tail, and what the scheduler's fairness layer exists to absorb.
package workload

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"punica/internal/dist"
	"punica/internal/sim"
)

// Spike is one flash-crowd event: an additive rate bump that ramps up
// linearly over Ramp, holds at Peak for Hold, and decays linearly over
// Decay — CaraServe's "load spike" shape with explicit edges.
type Spike struct {
	// At is the ramp start.
	At time.Duration
	// Peak is the added request rate (req/s) at the top.
	Peak float64
	// Ramp, Hold and Decay shape the bump.
	Ramp  time.Duration
	Hold  time.Duration
	Decay time.Duration

	// Model, when >= 0, targets every spike arrival at that adapter id
	// (a crowd hitting one model). -1 draws from the background mix.
	Model int
	// Tenant, when > 0, tags every spike arrival with that tenant id —
	// a single whale causing the crowd. 0 draws from the tenant
	// population like background traffic.
	Tenant int64
}

// Rate returns the spike's added request rate at time t.
func (s Spike) Rate(t time.Duration) float64 {
	dt := t - s.At
	width := s.Ramp + s.Hold + s.Decay
	switch {
	case dt < 0 || dt >= width || s.Peak <= 0:
		return 0
	case dt < s.Ramp:
		return s.Peak * float64(dt) / float64(s.Ramp)
	case dt < s.Ramp+s.Hold:
		return s.Peak
	default:
		return s.Peak * float64(width-dt) / float64(s.Decay)
	}
}

// RandomSpikes seeds a batch of flash crowds with spec-chosen shape and
// seeded-random onsets and magnitudes — the "you don't know when the
// crowd comes" scenario. Expanded into concrete Spikes by TrafficSpec
// from its Seed.
type RandomSpikes struct {
	// N is how many spikes to scatter over the middle 80% of the
	// horizon.
	N int
	// PeakMin and PeakMax bound the uniform peak-rate draw (req/s).
	PeakMin, PeakMax float64
	// Ramp, Hold and Decay shape every seeded spike.
	Ramp, Hold, Decay time.Duration
}

// TenantSpec describes the tenant population layered over the adapter
// popularity distribution.
type TenantSpec struct {
	// Population is the distinct tenant-id space the horizon can
	// realize (production fleets: millions). Ids are 1-based; 0 means
	// untagged. Non-positive values fall back to DefaultTenantPopulation.
	Population int64
	// PerModel is the number of concurrently active tenants behind each
	// adapter (default DefaultTenantsPerModel).
	PerModel int
	// Churn is the tenant-rotation cadence: every Churn of simulated
	// time, one of a model's PerModel active slots is replaced by a
	// fresh tenant id (staggered per slot, so each active tenant lives
	// ~PerModel×Churn). 0 freezes the population.
	Churn time.Duration
}

// Tenant population defaults: a million-tenant id space with four
// concurrently active tenants per adapter.
const (
	DefaultTenantPopulation = 1 << 20
	DefaultTenantsPerModel  = 4
)

func (ts TenantSpec) withDefaults() TenantSpec {
	if ts.Population <= 0 {
		ts.Population = DefaultTenantPopulation
	}
	if ts.PerModel <= 0 {
		ts.PerModel = DefaultTenantsPerModel
	}
	if ts.Churn < 0 {
		ts.Churn = 0
	}
	return ts
}

// TenantAssigner maps (model, time) pairs onto tenant ids under a
// TenantSpec. Deterministic given its RNG: the slot draw consumes the
// RNG, the slot→tenant mapping is a pure hash of (model, slot,
// generation), and the generation advances with churn.
type TenantAssigner struct {
	spec TenantSpec
	rng  *sim.RNG
}

// NewTenantAssigner builds an assigner; the spec is normalised so
// arbitrary (fuzzed) values cannot escape the id range.
func NewTenantAssigner(spec TenantSpec, rng *sim.RNG) *TenantAssigner {
	return &TenantAssigner{spec: spec.withDefaults(), rng: rng}
}

// TenantFor draws the tenant behind a request for model arriving at t.
// The result is always in [1, Population].
func (a *TenantAssigner) TenantFor(model int64, t time.Duration) int64 {
	slot := a.rng.Intn(a.spec.PerModel)
	var gen int64
	if a.spec.Churn > 0 {
		// Each slot rotates every PerModel×Churn, phase-staggered by a
		// hash of (model, slot) so the population turns over smoothly
		// (~one slot per model per Churn) rather than in lockstep.
		period := int64(a.spec.Churn) * int64(a.spec.PerModel)
		if period > 0 { // overflow-guarded: huge Churn values wrap negative
			phase := int64(tenantHash(model, int64(slot), 0) % uint64(period))
			gen = (int64(t) + phase) / period
		}
	}
	h := tenantHash(model, int64(slot), gen)
	return 1 + int64(h%uint64(a.spec.Population))
}

// tenantHash mixes (model, slot, generation) into a uniform 64-bit id
// with the splitmix64 finalizer — the same avalanche the cell ring uses.
func tenantHash(model, slot, gen int64) uint64 {
	x := uint64(model)*0x9E3779B97F4A7C15 ^ uint64(slot)*0xBF58476D1CE4E5B9 ^ uint64(gen)*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// TrafficSpec is one open-loop traffic scenario: composable rate shapes
// plus a tenant population over a popularity mix. The zero spec is
// invalid; Horizon and Base (or a Trapezoid) are the minimum.
type TrafficSpec struct {
	// Horizon is the arrival window [0, Horizon).
	Horizon time.Duration
	// Base is the background request rate floor (req/s).
	Base float64

	// DiurnalAmp modulates Base sinusoidally: rate(t) = Base × (1 +
	// DiurnalAmp·sin(2π(t/DiurnalPeriod + DiurnalPhase))), clamped at
	// zero. Amp in [0, 1] keeps the background non-negative by
	// construction; larger values are legal and clamp.
	DiurnalAmp    float64
	DiurnalPeriod time.Duration
	DiurnalPhase  float64 // fraction of a period, [0, 1)

	// Ramp optionally overlays the Fig. 13 trapezoid on the background.
	Ramp *Trapezoid

	// Spikes are explicit flash crowds; RandomSpikes seeds more from
	// Seed.
	Spikes       []Spike
	RandomSpikes RandomSpikes

	// Tenants is the tenant population; Mix the adapter popularity
	// schedule (empty: single Skewed phase sized for the expected
	// arrival count).
	Tenants TenantSpec
	Mix     dist.Mix

	// Seed drives the seeded-random parts owned by the spec itself —
	// random spike placement and the tenant slot stream. The arrival
	// process uses the Generator's own seed, so one spec replayed under
	// two generator seeds yields different arrivals over the same
	// shapes and population.
	Seed int64
}

// backgroundRate is the non-spike rate at t: diurnal-modulated base
// plus the trapezoid overlay, clamped non-negative.
func (s TrafficSpec) backgroundRate(t time.Duration) float64 {
	r := s.Base
	if s.DiurnalAmp != 0 && s.DiurnalPeriod > 0 {
		x := float64(t)/float64(s.DiurnalPeriod) + s.DiurnalPhase
		r = s.Base * (1 + s.DiurnalAmp*math.Sin(2*math.Pi*x))
	}
	if r < 0 {
		r = 0
	}
	if s.Ramp != nil {
		r += s.Ramp.Rate(t)
	}
	return r
}

// Rate returns the total arrival rate at t over the given concrete
// spike set (the spec's explicit spikes plus any expanded random ones).
func (s TrafficSpec) rateOver(t time.Duration, spikes []Spike) float64 {
	r := s.backgroundRate(t)
	for i := range spikes {
		r += spikes[i].Rate(t)
	}
	return r
}

// Rate returns the total arrival rate at time t (explicit spikes only;
// use Generator.Traffic for the seeded-random expansion).
func (s TrafficSpec) Rate(t time.Duration) float64 { return s.rateOver(t, s.Spikes) }

// maxRateOver upper-bounds the rate for Poisson thinning.
func (s TrafficSpec) maxRateOver(spikes []Spike) float64 {
	amp := math.Abs(s.DiurnalAmp)
	max := s.Base * (1 + amp)
	if max < 0 {
		max = 0
	}
	if s.Ramp != nil && s.Ramp.Peak > 0 {
		max += s.Ramp.Peak
	}
	for _, sp := range spikes {
		if sp.Peak > 0 {
			max += sp.Peak
		}
	}
	return max
}

// MaxRate upper-bounds Rate over the horizon (explicit spikes only).
func (s TrafficSpec) MaxRate() float64 { return s.maxRateOver(s.Spikes) }

// expandSpikes concatenates the explicit spikes with the seeded-random
// batch. Random onsets land in the middle 80% of the horizon so ramps
// fit; the draw order (time, then peak, per spike) is part of the
// spec's determinism contract.
func (s TrafficSpec) expandSpikes() []Spike {
	spikes := append([]Spike(nil), s.Spikes...)
	rs := s.RandomSpikes
	if rs.N <= 0 || s.Horizon <= 0 {
		return spikes
	}
	if rs.PeakMax < rs.PeakMin {
		rs.PeakMax = rs.PeakMin
	}
	rng := sim.NewRNG(s.Seed ^ 0x7261_6e64_7370_6b21) // "randspk!"
	window := float64(s.Horizon) * 0.8
	for i := 0; i < rs.N; i++ {
		at := time.Duration(float64(s.Horizon)*0.1 + rng.Float64()*window)
		peak := rs.PeakMin + rng.Float64()*(rs.PeakMax-rs.PeakMin)
		spikes = append(spikes, Spike{
			At: at, Peak: peak,
			Ramp: rs.Ramp, Hold: rs.Hold, Decay: rs.Decay,
			Model: -1,
		})
	}
	// Seeded spikes sort by onset so the trace reads chronologically;
	// ties keep insertion order (sort.SliceStable).
	sort.SliceStable(spikes, func(i, j int) bool { return spikes[i].At < spikes[j].At })
	return spikes
}

// withMixDefault fills an empty popularity mix: one Skewed phase sized
// like the paper's workloads for the expected arrival count.
func (s TrafficSpec) withMixDefault(kind dist.Kind) TrafficSpec {
	if len(s.Mix.Phases) > 0 {
		return s
	}
	expected := int(s.MaxRate() * s.Horizon.Seconds())
	if expected < 1 {
		expected = 1
	}
	s.Mix = dist.Mix{Phases: []dist.Phase{{
		Length: s.Horizon, Kind: kind, NumModels: dist.NumModels(kind, expected),
	}}}
	return s
}

// Traffic generates the spec's full open-loop trace: inhomogeneous
// Poisson arrivals by thinning (the same process PoissonMix runs, with
// the rate function composed from the spec's shapes), each arrival
// attributed to the shape component that produced it — spike arrivals
// can target a hot model and a single whale tenant — and every request
// tagged with a tenant drawn from the churning population.
func (g *Generator) Traffic(spec TrafficSpec) []Request {
	spec = spec.withMixDefault(g.Kind)
	spikes := spec.expandSpikes()
	maxRate := spec.maxRateOver(spikes)
	if maxRate <= 0 || spec.Horizon <= 0 {
		return nil
	}
	assigner := dist.NewMixAssigner(spec.Mix, g.rng)
	tenants := NewTenantAssigner(spec.Tenants, sim.NewRNG(spec.Seed^0x74_65_6e_61_6e_74)) // "tenant"
	var reqs []Request
	t := time.Duration(0)
	for {
		gap := g.rng.Exponential(1 / maxRate)
		t += hwSeconds(gap)
		if t >= spec.Horizon {
			break
		}
		total := spec.rateOver(t, spikes)
		if g.rng.Float64() > total/maxRate {
			continue
		}
		// Attribute the arrival to background or one spike,
		// proportionally to their instantaneous rates.
		var sp *Spike
		u := g.rng.Float64() * total
		acc := spec.backgroundRate(t)
		if u >= acc {
			for i := range spikes {
				acc += spikes[i].Rate(t)
				if u < acc {
					sp = &spikes[i]
					break
				}
			}
		}
		var model int64
		if sp != nil && sp.Model >= 0 {
			model = int64(sp.Model)
		} else {
			model = int64(assigner.AssignAt(t))
		}
		var tenant int64
		if sp != nil && sp.Tenant > 0 {
			tenant = sp.Tenant
		} else {
			tenant = tenants.TenantFor(model, t)
		}
		r := g.sampleModel(model, t)
		r.Tenant = tenant
		reqs = append(reqs, r)
	}
	return reqs
}

// ParseTrafficSpec parses the punica-cluster -traffic format: clauses
// separated by ';', each `key=value`, durations in Go syntax.
//
//	horizon=10m            arrival window (required)
//	base=4                 background rate, req/s
//	diurnal=0.5/30m        amplitude fraction / period [/ phase 0..1]
//	ramp=8/2m/1m/2m        trapezoid overlay: peak/rampup/hold/rampdown
//	spike=at:2m,peak:40,ramp:20s,hold:30s,decay:40s[,model:0][,tenant:1]
//	rand-spikes=3/10/40    N seeded spikes with peaks in [10,40] req/s
//	                       (optionally /ramp/hold/decay durations)
//	tenants=1000000/4/30s  population / active-per-model / churn
//	mix=Skewed/64          popularity kind / model population
//	seed=7
//
// Example:
//
//	horizon=8m;base=5;diurnal=0.4/4m;spike=at:2m,peak:30,ramp:15s,hold:45s,decay:30s,model:0,tenant:1;tenants=1000000/4/20s;mix=Skewed/32;seed=7
func ParseTrafficSpec(s string) (TrafficSpec, error) {
	spec := TrafficSpec{}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return spec, fmt.Errorf("traffic spec: clause %q is not key=value", clause)
		}
		var err error
		switch key {
		case "horizon":
			spec.Horizon, err = parsePositiveDuration(val)
		case "base":
			spec.Base, err = parseNonNegRate(val)
		case "diurnal":
			err = parseDiurnal(&spec, val)
		case "ramp":
			err = parseRampClause(&spec, val)
		case "spike":
			err = parseSpikeClause(&spec, val)
		case "rand-spikes":
			err = parseRandSpikes(&spec, val)
		case "tenants":
			err = parseTenants(&spec, val)
		case "mix":
			err = parseMixClause(&spec, val)
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return spec, fmt.Errorf("traffic spec: unknown key %q", key)
		}
		if err != nil {
			return spec, fmt.Errorf("traffic spec: %s=%s: %w", key, val, err)
		}
	}
	if spec.Horizon <= 0 {
		return spec, fmt.Errorf("traffic spec: horizon is required and must be positive")
	}
	if spec.MaxRate() <= 0 {
		return spec, fmt.Errorf("traffic spec: rate shapes sum to zero (set base, ramp or a spike)")
	}
	return spec, nil
}

func parsePositiveDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d <= 0 {
		return 0, fmt.Errorf("must be positive, got %v", d)
	}
	return d, nil
}

func parseNonNegDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("must be non-negative, got %v", d)
	}
	return d, nil
}

func parseNonNegRate(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("must be a finite non-negative rate, got %v", v)
	}
	return v, nil
}

func parseDiurnal(spec *TrafficSpec, val string) error {
	parts := strings.Split(val, "/")
	if len(parts) < 2 || len(parts) > 3 {
		return fmt.Errorf("want amp/period[/phase]")
	}
	amp, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return err
	}
	if amp < 0 || amp > 1 || math.IsNaN(amp) {
		return fmt.Errorf("amplitude must be in [0,1], got %v", amp)
	}
	period, err := parsePositiveDuration(parts[1])
	if err != nil {
		return err
	}
	phase := 0.0
	if len(parts) == 3 {
		phase, err = strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return err
		}
		if phase < 0 || phase >= 1 || math.IsNaN(phase) {
			return fmt.Errorf("phase must be in [0,1), got %v", phase)
		}
	}
	spec.DiurnalAmp, spec.DiurnalPeriod, spec.DiurnalPhase = amp, period, phase
	return nil
}

func parseRampClause(spec *TrafficSpec, val string) error {
	parts := strings.Split(val, "/")
	if len(parts) != 4 {
		return fmt.Errorf("want peak/rampup/hold/rampdown")
	}
	peak, err := parseNonNegRate(parts[0])
	if err != nil {
		return err
	}
	up, err := parseNonNegDuration(parts[1])
	if err != nil {
		return err
	}
	hold, err := parseNonNegDuration(parts[2])
	if err != nil {
		return err
	}
	down, err := parseNonNegDuration(parts[3])
	if err != nil {
		return err
	}
	spec.Ramp = &Trapezoid{Peak: peak, RampUp: up, Hold: hold, RampDown: down}
	return nil
}

func parseSpikeClause(spec *TrafficSpec, val string) error {
	sp := Spike{Model: -1}
	for _, field := range strings.Split(val, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), ":")
		if !ok {
			return fmt.Errorf("spike field %q is not key:value", field)
		}
		var err error
		switch k {
		case "at":
			sp.At, err = parseNonNegDuration(v)
		case "peak":
			sp.Peak, err = parseNonNegRate(v)
		case "ramp":
			sp.Ramp, err = parseNonNegDuration(v)
		case "hold":
			sp.Hold, err = parseNonNegDuration(v)
		case "decay":
			sp.Decay, err = parseNonNegDuration(v)
		case "model":
			var m int
			m, err = strconv.Atoi(v)
			if err == nil && m < 0 {
				err = fmt.Errorf("model must be >= 0")
			}
			sp.Model = m
		case "tenant":
			sp.Tenant, err = strconv.ParseInt(v, 10, 64)
			if err == nil && sp.Tenant <= 0 {
				err = fmt.Errorf("tenant must be > 0")
			}
		default:
			err = fmt.Errorf("unknown spike field %q", k)
		}
		if err != nil {
			return err
		}
	}
	if sp.Peak <= 0 {
		return fmt.Errorf("spike needs peak > 0")
	}
	spec.Spikes = append(spec.Spikes, sp)
	return nil
}

func parseRandSpikes(spec *TrafficSpec, val string) error {
	parts := strings.Split(val, "/")
	if len(parts) != 3 && len(parts) != 6 {
		return fmt.Errorf("want n/peakmin/peakmax[/ramp/hold/decay]")
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("n must be positive")
	}
	lo, err := parseNonNegRate(parts[1])
	if err != nil {
		return err
	}
	hi, err := parseNonNegRate(parts[2])
	if err != nil {
		return err
	}
	if hi < lo {
		return fmt.Errorf("peakmax %v < peakmin %v", hi, lo)
	}
	rs := RandomSpikes{N: n, PeakMin: lo, PeakMax: hi,
		Ramp: 15 * time.Second, Hold: 30 * time.Second, Decay: 30 * time.Second}
	if len(parts) == 6 {
		if rs.Ramp, err = parseNonNegDuration(parts[3]); err != nil {
			return err
		}
		if rs.Hold, err = parseNonNegDuration(parts[4]); err != nil {
			return err
		}
		if rs.Decay, err = parseNonNegDuration(parts[5]); err != nil {
			return err
		}
	}
	spec.RandomSpikes = rs
	return nil
}

func parseTenants(spec *TrafficSpec, val string) error {
	parts := strings.Split(val, "/")
	if len(parts) < 1 || len(parts) > 3 {
		return fmt.Errorf("want population[/per-model[/churn]]")
	}
	pop, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return err
	}
	if pop <= 0 {
		return fmt.Errorf("population must be positive")
	}
	ts := TenantSpec{Population: pop}
	if len(parts) >= 2 {
		per, err := strconv.Atoi(parts[1])
		if err != nil {
			return err
		}
		if per <= 0 {
			return fmt.Errorf("per-model must be positive")
		}
		ts.PerModel = per
	}
	if len(parts) == 3 {
		if ts.Churn, err = parseNonNegDuration(parts[2]); err != nil {
			return err
		}
	}
	spec.Tenants = ts
	return nil
}

func parseMixClause(spec *TrafficSpec, val string) error {
	parts := strings.Split(val, "/")
	if len(parts) != 2 {
		return fmt.Errorf("want kind/nummodels")
	}
	kind, err := dist.ParseKind(parts[0])
	if err != nil {
		return err
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("nummodels must be positive")
	}
	spec.Mix = dist.Mix{Phases: []dist.Phase{{Kind: kind, NumModels: n}}}
	return nil
}
