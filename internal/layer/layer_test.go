package layer

import (
	"testing"
	"time"

	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/models"
	"punica/internal/sgmv"
)

func punica7B() Costs { return New(hw.A100(), models.Llama2_7B()) }

func decodeInv(batch, ctx int) Invocation {
	contexts := make([]int, batch)
	for i := range contexts {
		contexts[i] = ctx
	}
	return Invocation{DecodeContexts: contexts}
}

func loraDecodeInv(batch, ctx int, kind dist.Kind) Invocation {
	inv := decodeInv(batch, ctx)
	inv.LoRASegments = sgmv.NewSegments(dist.SegmentSizes(kind, batch)...)
	inv.LoRARank = models.DefaultLoRARank
	return inv
}

func TestInvocationAccounting(t *testing.T) {
	inv := Invocation{PrefillLens: []int{100}, DecodeContexts: []int{5, 7}}
	if inv.TotalTokens() != 102 {
		t.Fatalf("TotalTokens = %d, want 102", inv.TotalTokens())
	}
	if inv.BatchSize() != 3 {
		t.Fatalf("BatchSize = %d, want 3", inv.BatchSize())
	}
	if inv.HasLoRA() {
		t.Fatal("no segments should mean no LoRA")
	}
}

func TestDecodeStepMatchesFig1(t *testing.T) {
	// Fig. 1 (right): batch 1 → 32 moves decode latency from ~11ms to
	// ~13ms for short sequences and ~17ms to ~34ms for long ones (7B).
	c := punica7B()
	short1 := c.InvokeTime(decodeInv(1, 128))
	short32 := c.InvokeTime(decodeInv(32, 128))
	long32 := c.InvokeTime(decodeInv(32, 2048))

	if short1 < 8*time.Millisecond || short1 > 14*time.Millisecond {
		t.Errorf("batch-1 short decode = %v, want ~11ms", short1)
	}
	if short32 < 10*time.Millisecond || short32 > 17*time.Millisecond {
		t.Errorf("batch-32 short decode = %v, want ~13ms", short32)
	}
	if long32 < 25*time.Millisecond || long32 > 45*time.Millisecond {
		t.Errorf("batch-32 long decode = %v, want ~34ms", long32)
	}
	// Batching must be strongly sublinear: 32x the work for <2x the time
	// (short sequences).
	if ratio := float64(short32) / float64(short1); ratio > 2.0 {
		t.Errorf("short decode batch ratio = %.2f, want < 2", ratio)
	}
}

func TestPrefillProportionalToBatch(t *testing.T) {
	// Fig. 1 (left): prefill latency is proportional to batch size.
	c := punica7B()
	b1 := c.InvokeTime(Invocation{PrefillLens: []int{512}})
	b8 := c.InvokeTime(Invocation{PrefillLens: []int{512, 512, 512, 512, 512, 512, 512, 512}})
	ratio := float64(b8) / float64(b1)
	if ratio < 5 || ratio > 9 {
		t.Errorf("prefill batch-8/batch-1 = %.2f, want ~8 (proportional)", ratio)
	}
	// Prefill at len 2048 batch 32 is seconds-scale (Fig. 1 y-axis).
	lens := make([]int, 32)
	for i := range lens {
		lens[i] = 2048
	}
	big := c.InvokeTime(Invocation{PrefillLens: lens})
	if big < 2*time.Second || big > 8*time.Second {
		t.Errorf("batch-32 len-2048 prefill = %v, want seconds-scale", big)
	}
}

func TestLayerBatchingEffectMatchesFig10(t *testing.T) {
	// Fig. 10: "The latency only increases by 72% when batch size
	// increases from 1 to 32 when the sequence length is 512."
	c := punica7B()
	l1 := c.LayerTime(loraDecodeInv(1, 512, dist.Distinct))
	l32 := c.LayerTime(loraDecodeInv(32, 512, dist.Distinct))
	ratio := float64(l32) / float64(l1)
	if ratio < 1.3 || ratio > 2.3 {
		t.Errorf("layer batch-32/batch-1 at len 512 = %.2f, want ~1.72", ratio)
	}
	// Longer sequences weaken the batching effect.
	l1l := c.LayerTime(loraDecodeInv(1, 2048, dist.Distinct))
	l32l := c.LayerTime(loraDecodeInv(32, 2048, dist.Distinct))
	if float64(l32l)/float64(l1l) <= ratio {
		t.Error("batching effect should weaken at longer sequence length")
	}
}

func TestLayerLatencyLoRAAgnostic(t *testing.T) {
	// Fig. 10: "the layer latency is roughly the same across different
	// workloads" — the LoRA addon is small next to dense+attention. The
	// worst spread (Distinct vs Identical) must stay within ~35%.
	c := punica7B()
	for _, ctx := range []int{512, 2048} {
		base := c.LayerTime(loraDecodeInv(32, ctx, dist.Identical))
		worst := c.LayerTime(loraDecodeInv(32, ctx, dist.Distinct))
		if spread := float64(worst)/float64(base) - 1; spread > 0.35 {
			t.Errorf("ctx %d: Distinct/Identical layer spread = %.2f, want small", ctx, spread)
		}
	}
}

func TestLoRAAddonSmallVsBackbone(t *testing.T) {
	// The headline: the addon costs ~2ms per token at the model level.
	c := punica7B()
	withLoRA := c.InvokeTime(loraDecodeInv(32, 512, dist.Distinct))
	backbone := c.InvokeTime(decodeInv(32, 512))
	addon := withLoRA - backbone
	if addon < 500*time.Microsecond || addon > 8*time.Millisecond {
		t.Errorf("LoRA addon per step = %v, want milliseconds-scale (~2ms)", addon)
	}
	if float64(addon)/float64(backbone) > 0.6 {
		t.Errorf("addon %v too large vs backbone %v", addon, backbone)
	}
}

func Test13BSlowerThan7B(t *testing.T) {
	c7 := punica7B()
	c13 := New(hw.A100(), models.Llama2_13B())
	t7 := c7.InvokeTime(decodeInv(32, 512))
	t13 := c13.InvokeTime(decodeInv(32, 512))
	ratio := float64(t13) / float64(t7)
	// 13B/7B params ≈ 1.9, but fixed overheads dilute it.
	if ratio < 1.25 || ratio > 2.2 {
		t.Errorf("13B/7B step ratio = %.2f, want ~1.5-1.9", ratio)
	}
}

func TestUnfusedNormCost(t *testing.T) {
	// §6: fusing LayerNorm saves (110-4)µs × 2 per layer.
	c := punica7B()
	unfused := c
	unfused.FusedNorm = false
	diff := unfused.LayerTime(decodeInv(8, 128)) - c.LayerTime(decodeInv(8, 128))
	want := 2 * (hw.LayerNormUnfused - hw.LayerNormFused)
	if diff != want {
		t.Errorf("norm fusion delta = %v, want %v", diff, want)
	}
}

func TestKVConcatCost(t *testing.T) {
	// §5.4: HuggingFace re-copies the whole KvCache each step; the cost
	// grows with context length.
	c := punica7B()
	hf := c
	hf.KVConcat = true
	short := hf.LayerTime(decodeInv(8, 128)) - c.LayerTime(decodeInv(8, 128))
	long := hf.LayerTime(decodeInv(8, 2048)) - c.LayerTime(decodeInv(8, 2048))
	if short <= 0 || long <= short {
		t.Errorf("concat cost should grow with context: short=%v long=%v", short, long)
	}
}

func TestNoFlashAttentionSlower(t *testing.T) {
	c := punica7B()
	hf := c
	hf.FlashAttention = false
	fast := c.InvokeTime(Invocation{PrefillLens: []int{1024}})
	slow := hf.InvokeTime(Invocation{PrefillLens: []int{1024}})
	if slow <= fast {
		t.Error("disabling flash attention must cost time")
	}
}

func TestTensorParallelShardsWeights(t *testing.T) {
	// TP-8 on a 70B: per-step time must be far below single-GPU, but
	// all-reduce latency keeps it well above weights/8.
	c := New(hw.A100_40G(), models.Llama2_70B())
	single := c.InvokeTime(decodeInv(32, 512))
	tp8 := c.WithTP(8).InvokeTime(decodeInv(32, 512))
	if tp8 >= single {
		t.Fatalf("TP-8 (%v) not faster than TP-1 (%v)", tp8, single)
	}
	if float64(single)/float64(tp8) > 8 {
		t.Fatalf("TP-8 speedup super-linear: %v vs %v", single, tp8)
	}
	// Fig. 12 calibration: vLLM 70B TP-8 backbone at batch 32 delivers
	// ~457 tok/s → ~70ms per step. Allow a broad band.
	if tp8 < 40*time.Millisecond || tp8 > 110*time.Millisecond {
		t.Errorf("70B TP-8 batch-32 step = %v, want ~70ms", tp8)
	}
}

func TestEmptyInvocationFree(t *testing.T) {
	c := punica7B()
	if c.InvokeTime(Invocation{}) != 0 || c.LayerTime(Invocation{}) != 0 {
		t.Error("empty invocation should cost nothing")
	}
}

func TestMixedBatchCheaperThanSequential(t *testing.T) {
	// §5: running the single prefill and the decode batch in one
	// invocation shares the dense-projection weight pass; it must beat
	// two separate invocations.
	c := punica7B()
	mixed := c.InvokeTime(Invocation{PrefillLens: []int{256}, DecodeContexts: []int{512, 512, 512}})
	separate := c.InvokeTime(Invocation{PrefillLens: []int{256}}) +
		c.InvokeTime(decodeInv(3, 512))
	if mixed >= separate {
		t.Errorf("mixed batch %v should beat sequential %v", mixed, separate)
	}
}

func TestWithTPValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithTP(0) should panic")
		}
	}()
	punica7B().WithTP(0)
}

func TestQuantizedWeightsSpeedDecode(t *testing.T) {
	// §8 extension: decode is weight-streaming-bound, so int8 weights
	// should cut the step time by nearly half at small batch.
	fp := punica7B()
	q := fp
	q.WeightPrecision = hw.INT8
	tFP := fp.InvokeTime(decodeInv(1, 512))
	tQ := q.InvokeTime(decodeInv(1, 512))
	ratio := float64(tQ) / float64(tFP)
	if ratio > 0.75 {
		t.Errorf("int8 weights step ratio = %.2f, want well below 1", ratio)
	}
	// Prefill is compute-bound: quantization should NOT speed it up
	// (and may slightly slow it through dequant overhead).
	pFP := fp.InvokeTime(Invocation{PrefillLens: []int{1024}})
	pQ := q.InvokeTime(Invocation{PrefillLens: []int{1024}})
	if pQ < pFP {
		t.Errorf("compute-bound prefill should not improve with int8 weights: %v vs %v", pQ, pFP)
	}
}

func TestQuantizedKVCutsAttention(t *testing.T) {
	fp := punica7B()
	q := fp
	q.KVPrecision = hw.INT8
	// Long-context, big-batch decode is attention-bound.
	tFP := fp.LayerTime(decodeInv(32, 2048))
	tQ := q.LayerTime(decodeInv(32, 2048))
	if tQ >= tFP {
		t.Errorf("int8 KvCache should cut layer time: %v vs %v", tQ, tFP)
	}
	saved := tFP - tQ
	if float64(saved)/float64(tFP) < 0.2 {
		t.Errorf("int8 KvCache saved only %.1f%%, want a large cut on long contexts",
			100*float64(saved)/float64(tFP))
	}
}
