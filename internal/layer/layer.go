// Package layer models the latency of transformer model invocations on
// the simulated GPU: dense projections, self-attention in prefill and
// decode form, LayerNorms, the LoRA addon via SGMV, Megatron-style tensor
// parallelism, and the host-side driver overhead.
//
// It reproduces the measured behaviours the paper builds on:
//
//   - Decode is memory-bound on weight streaming, so batching is nearly
//     free until the KvCache traffic catches up (Fig. 1 right).
//   - Prefill is compute-bound, so latency is proportional to batch size
//     (Fig. 1 left).
//   - The LoRA addon is small relative to the backbone, so layer latency
//     is LoRA-popularity-agnostic (Fig. 10).
package layer

import (
	"time"

	"punica/internal/hw"
	"punica/internal/models"
	"punica/internal/sgmv"
)

// Invocation describes one batched model invocation: Punica runs "batch
// requests of prefill and decode stages in a single model invocation"
// (§5). PrefillLens are the prompt lengths entering prefill;
// DecodeContexts are the current context lengths of decode requests (each
// contributes one new token).
type Invocation struct {
	PrefillLens    []int
	DecodeContexts []int

	// LoRASegments groups the invocation's tokens by LoRA model for the
	// SGMV addon; a zero value means backbone-only (no LoRA).
	LoRASegments sgmv.Segments
	// LoRARank is the adapter rank (ignored when LoRASegments is empty).
	LoRARank int
}

// TotalTokens returns the number of token positions the dense projections
// process: all prefill tokens plus one per decode request.
func (inv Invocation) TotalTokens() int {
	n := len(inv.DecodeContexts)
	for _, l := range inv.PrefillLens {
		n += l
	}
	return n
}

// BatchSize returns the number of requests in the invocation.
func (inv Invocation) BatchSize() int {
	return len(inv.PrefillLens) + len(inv.DecodeContexts)
}

// HasLoRA reports whether the invocation carries a LoRA addon.
func (inv Invocation) HasLoRA() bool { return inv.LoRASegments.N() > 0 }

// Costs converts invocations into simulated latencies for one model on
// one GPU (or a tensor-parallel group). The feature flags encode what
// distinguishes the baseline systems in §7:
//
//   - FlashAttention: fused attention (Punica via FlashInfer, DeepSpeed,
//     FasterTransformer, vLLM). Off for HuggingFace Transformers, which
//     materialises attention scores.
//   - FusedNorm: the §6 fused LayerNorm (110 µs → 4 µs).
//   - KVConcat: HuggingFace's layout concatenates the whole KvCache every
//     decode step (reads it all and writes a new copy, §5.4).
type Costs struct {
	GPU   hw.GPUSpec
	Model models.Config

	// TP is the tensor-parallel world size (1 = single GPU). Weights,
	// attention heads and LoRA weights are sharded TP ways; each layer
	// pays two all-reduces over Interconnect (Megatron scheme, §7.2).
	TP           int
	Interconnect hw.Link

	FlashAttention bool
	FusedNorm      bool
	KVConcat       bool

	// LoRAImpl selects how the LoRA addon is computed when an
	// invocation carries segments: Punica's SGMV kernel or the eager
	// per-model loop that PEFT-style stacks use.
	LoRAImpl LoRAImpl

	// WeightPrecision quantizes the backbone weights (§8: orthogonal
	// optimisation; smaller weights stream faster and free HBM for
	// KvCache). LoRA adapter weights stay FP16, following QLoRA's
	// design of high-precision adapters over a quantized backbone.
	WeightPrecision hw.Precision
	// KVPrecision quantizes the KvCache, reducing the attention
	// memory traffic that bounds decode (§8).
	KVPrecision hw.Precision

	// HostOverhead is the per-invocation host cost (batch assembly,
	// sampling, detokenisation). hw.HostInvokeOverhead by default.
	HostOverhead time.Duration

	lora sgmv.CostModel
}

// LoRAImpl selects the LoRA addon implementation for cost purposes.
type LoRAImpl int

const (
	// LoRASGMV is Punica's batched kernel (default).
	LoRASGMV LoRAImpl = iota
	// LoRALoop is the eager per-model loop (HuggingFace PEFT layered on
	// Transformers or DeepSpeed, §7: baselines add LoRA via PEFT).
	LoRALoop
)

// New returns Punica-style costs for the model on the GPU: flash
// attention, fused norms, paged KvCache, single GPU.
func New(gpu hw.GPUSpec, model models.Config) Costs {
	return Costs{
		GPU:            gpu,
		Model:          model,
		TP:             1,
		Interconnect:   hw.NvSwitch(),
		FlashAttention: true,
		FusedNorm:      true,
		HostOverhead:   hw.HostInvokeOverhead,
		lora:           sgmv.NewCostModel(gpu),
	}
}

// WithTP returns a copy of c sharded over world GPUs.
func (c Costs) WithTP(world int) Costs {
	if world < 1 {
		panic("layer: TP world must be >= 1")
	}
	c.TP = world
	return c
}

func (c Costs) tp() float64 {
	if c.TP < 1 {
		return 1
	}
	return float64(c.TP)
}

func (c Costs) loraModel() sgmv.CostModel {
	if c.lora.GPU.PeakFP16 == 0 {
		return sgmv.NewCostModel(c.GPU)
	}
	return c.lora
}

// denseTime is the latency of the seven dense projections of one layer:
// one weight-streaming pass plus activation traffic, roofed against
// Tensor-Core compute.
func (c Costs) denseTime(tokens int) time.Duration {
	params := float64(c.Model.LayerParams()) / c.tp()
	flop := 2 * float64(tokens) * params
	actElems := 0.0
	for _, p := range models.Projections {
		in, out := c.Model.Dims(p)
		actElems += float64(tokens) * float64(in+out) / c.tp()
	}
	bytes := params*c.WeightPrecision.BytesPerParam() + actElems*hw.FP16Bytes
	t := c.GPU.StepTime(flop, bytes,
		hw.EffGEMMCompute*c.WeightPrecision.DequantOverhead(), hw.EffGEMMMem)
	// Seven kernel launches; StepTime already charged one.
	return t + 6*c.GPU.KernelLaunch
}

// kvBytesPerTokenLayer is the per-layer, per-token KvCache footprint on
// one shard.
func (c Costs) kvBytesPerTokenLayer() float64 {
	return 2 * float64(c.Model.KVDim()) * c.KVPrecision.BytesPerParam() / c.tp()
}

// attentionPrefillTime is one BatchPrefill launch over the prefill
// sequences: compute is the quadratic score/value matmuls, memory is the
// KvCache written and read.
func (c Costs) attentionPrefillTime(lens []int) time.Duration {
	if len(lens) == 0 {
		return 0
	}
	var flop, bytes float64
	h := float64(c.Model.HiddenSize) / c.tp()
	for _, s := range lens {
		fs := float64(s)
		flop += 4 * fs * fs * h // QK^T and PV across all local heads
		bytes += fs * c.kvBytesPerTokenLayer()
		bytes += fs * 2 * h * hw.FP16Bytes // Q in, O out
		if !c.FlashAttention {
			// Materialised scores: write + read s×s per local head.
			heads := float64(c.Model.Heads) / c.tp()
			bytes += 2 * heads * fs * fs * hw.FP16Bytes
		}
	}
	t := c.GPU.StepTime(flop, bytes, hw.EffGEMMCompute, hw.EffAttention)
	if !c.FlashAttention {
		t += 3 * c.GPU.KernelLaunch // separate QK^T, softmax, PV kernels
	}
	return t
}

// attentionDecodeTime is one BatchDecode launch over the decode requests:
// IO-bound on reading each sequence's KvCache (§2.1: the decode stage has
// low utilisation; §8: self-attention is bounded by memory bandwidth).
func (c Costs) attentionDecodeTime(contexts []int) time.Duration {
	if len(contexts) == 0 {
		return 0
	}
	var kvBytes float64
	for _, s := range contexts {
		kvBytes += float64(s+1) * c.kvBytesPerTokenLayer()
	}
	h := float64(c.Model.HiddenSize) / c.tp()
	actBytes := float64(len(contexts)) * 2 * h * hw.FP16Bytes
	flop := 0.0
	for _, s := range contexts {
		flop += 4 * float64(s+1) * h
	}
	bytes := kvBytes + actBytes
	if !c.FlashAttention {
		bytes += kvBytes * 0.5 // extra passes over scores
	}
	t := c.GPU.StepTime(flop, bytes, hw.EffGEMMCompute, hw.EffAttention)
	if !c.FlashAttention {
		t += 3 * c.GPU.KernelLaunch
	}
	return t
}

// kvConcatTime is HuggingFace's per-layer KvCache concatenation: "it
// needs to read the whole KvCache and write a new copy" every step
// (§5.4).
func (c Costs) kvConcatTime(contexts []int) time.Duration {
	if !c.KVConcat || len(contexts) == 0 {
		return 0
	}
	var kvBytes float64
	for _, s := range contexts {
		kvBytes += float64(s+1) * c.kvBytesPerTokenLayer()
	}
	return c.GPU.StepTime(0, 2*kvBytes, 1, hw.EffGEMMMem)
}

// loraTime is the per-layer LoRA addon: seven SGMV operator invocations,
// one per dense projection (§6: segment indices are used 7L times).
func (c Costs) loraTime(inv Invocation) time.Duration {
	if !inv.HasLoRA() {
		return 0
	}
	cm := c.loraModel()
	var t time.Duration
	for _, p := range models.Projections {
		in, out := c.Model.Dims(p)
		// Column-parallel shards split the output dim; row-parallel
		// (o_proj, down_proj) split the input dim. Either way the
		// per-shard weight volume is 1/TP.
		switch p {
		case models.ProjO, models.ProjDown:
			in = shard(in, c.TP)
		default:
			out = shard(out, c.TP)
		}
		if c.LoRAImpl == LoRALoop {
			t += cm.LoopTime(in, inv.LoRARank, out, inv.LoRASegments)
		} else {
			t += cm.OperatorTime(in, inv.LoRARank, out, inv.LoRASegments)
		}
	}
	return t
}

func shard(dim, tp int) int {
	if tp <= 1 {
		return dim
	}
	d := dim / tp
	if d < 1 {
		d = 1
	}
	return d
}

// normTime is the two RMSNorm/LayerNorm applications per layer.
func (c Costs) normTime() time.Duration {
	if c.FusedNorm {
		return 2 * hw.LayerNormFused
	}
	return 2 * hw.LayerNormUnfused
}

// allReduceTime is the Megatron cost: two all-reduces per layer over the
// activations of every token.
func (c Costs) allReduceTime(tokens int) time.Duration {
	if c.TP <= 1 {
		return 0
	}
	payload := int64(tokens) * int64(c.Model.HiddenSize) * hw.FP16Bytes
	return 2 * hw.AllReduceTime(c.Interconnect, payload, c.TP)
}

// LayerTime returns the latency of one transformer block for the
// invocation. This is what Fig. 10 plots.
func (c Costs) LayerTime(inv Invocation) time.Duration {
	tokens := inv.TotalTokens()
	if tokens == 0 {
		return 0
	}
	return c.denseTime(tokens) +
		c.attentionPrefillTime(inv.PrefillLens) +
		c.attentionDecodeTime(inv.DecodeContexts) +
		c.kvConcatTime(inv.DecodeContexts) +
		c.loraTime(inv) +
		c.normTime() +
		c.allReduceTime(tokens)
}

// lmHeadTime is the output projection over one sampled position per
// request plus the embedding lookups.
func (c Costs) lmHeadTime(inv Invocation) time.Duration {
	batch := inv.BatchSize()
	if batch == 0 {
		return 0
	}
	vocab := float64(c.Model.VocabSize)
	h := float64(c.Model.HiddenSize)
	weightBytes := vocab * h * c.WeightPrecision.BytesPerParam() / c.tp()
	flop := 2 * float64(batch) * vocab * h / c.tp()
	embedBytes := float64(inv.TotalTokens()) * h * hw.FP16Bytes
	return c.GPU.StepTime(flop, weightBytes+embedBytes,
		hw.EffGEMMCompute*c.WeightPrecision.DequantOverhead(), hw.EffGEMMMem)
}

// InvokeTime returns the latency of one full model invocation: all layers
// plus the LM head and the host driver overhead. This is the decode-step
// (or mixed-batch) latency the serving engine advances time by.
func (c Costs) InvokeTime(inv Invocation) time.Duration {
	if inv.TotalTokens() == 0 {
		return 0
	}
	return time.Duration(c.Model.Layers)*c.LayerTime(inv) +
		c.lmHeadTime(inv) +
		c.HostOverhead
}
