package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"punica/internal/sched"
)

// testFaultsOptions shrinks the sweep so the test runs in well under a
// second while still injecting real failures.
func testFaultsOptions() FaultsOptions {
	return FaultsOptions{
		NumGPUs:    4,
		Rate:       6,
		Horizon:    30 * time.Second,
		Seed:       42,
		Policies:   []string{sched.PolicyPaper},
		FaultRates: []float64{0, 240},
	}
}

// TestFaultsSweep: the availability experiment completes every request
// in every cell, injects real failures at nonzero rates, anchors the
// baseline at frac 1.0, and degrades throughput no more than
// catastrophically (sanity bounds, not golden values).
func TestFaultsSweep(t *testing.T) {
	points, err := Faults(testFaultsOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	base, chaos := points[0], points[1]
	if base.FaultRate != 0 || base.ThroughputFrac != 1.0 || base.Failures != 0 {
		t.Fatalf("baseline malformed: %+v", base)
	}
	if chaos.Failures+chaos.Stalls == 0 {
		t.Fatalf("nonzero fault rate injected nothing: %+v", chaos)
	}
	if chaos.Finished != base.Finished {
		t.Fatalf("chaos cell finished %d, baseline %d — requests were lost",
			chaos.Finished, base.Finished)
	}
	if chaos.ThroughputFrac <= 0 || chaos.ThroughputFrac > 1.5 {
		t.Fatalf("throughput frac %v out of sanity bounds", chaos.ThroughputFrac)
	}
	if chaos.Recovered > 0 && chaos.RecoveryP99 < 0 {
		t.Fatalf("negative recovery latency: %+v", chaos)
	}

	// Determinism: the sweep is a pure function of its options.
	again, err := Faults(testFaultsOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if points[i] != again[i] {
			t.Fatalf("sweep nondeterministic at %d:\n%+v\n%+v", i, points[i], again[i])
		}
	}

	// Render paths.
	text := FormatFaults(points)
	if !strings.Contains(text, "paper") || !strings.Contains(text, "vs base") {
		t.Fatalf("format output malformed:\n%s", text)
	}
	var buf bytes.Buffer
	if err := FaultsCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "policy,faults_per_gpu_hour") {
		t.Fatalf("CSV header malformed: %s", lines[0])
	}
}
