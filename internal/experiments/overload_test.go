package experiments

import (
	"bytes"
	"testing"
	"time"
)

// smokeOverloadOptions is a deliberately tiny sweep — one GPU, one 4x
// factor, short horizon, fast clock — so the full HTTP round trip runs
// in a few seconds of wall time.
func smokeOverloadOptions() OverloadOptions {
	return OverloadOptions{
		NumGPUs:             1,
		MaxBatch:            4,
		Speedup:             2000,
		Horizon:             10 * time.Second,
		LoadFactors:         []float64{4},
		MaxQueue:            8,
		SLO:                 15 * time.Second,
		RetryAttempts:       2,
		RetryWaitCap:        100 * time.Millisecond,
		Grace:               1500 * time.Millisecond,
		CalibrationRequests: 120,
		Seed:                5,
	}
}

// TestOverloadSmoke drives the full capstone path — calibration, live
// HTTP serving, 429 envelopes, client retries — and checks the
// structural outcomes that do not depend on wall-clock timing: the
// bounded queue holds its cap and rejects, the unbounded queue does
// neither, and the records carry the gateable retention metric.
func TestOverloadSmoke(t *testing.T) {
	points, err := Overload(smokeOverloadOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2 (off/on at one factor)", len(points))
	}
	off, on := points[0], points[1]
	if off.Shedding || !on.Shedding {
		t.Fatalf("point order wrong: %+v / %+v", off, on)
	}
	if off.Offered != on.Offered {
		t.Fatalf("off/on replayed different traces: %d vs %d offered", off.Offered, on.Offered)
	}
	if off.Completed == 0 || on.Completed == 0 {
		t.Fatalf("no completions: off %d, on %d", off.Completed, on.Completed)
	}
	// The unbounded legacy queue never refuses; at 4x it must outgrow
	// the cap the shedding run is held to.
	if off.HTTP429 != 0 {
		t.Fatalf("shedding-off answered %d 429s, want 0", off.HTTP429)
	}
	if off.QueuePeak <= on.QueuePeak {
		t.Fatalf("queue peaks: off %d must exceed on %d at 4x load", off.QueuePeak, on.QueuePeak)
	}
	// The bounded queue holds its cap (Overload errors otherwise, but
	// keep the witness visible here) and sheds load as 429s that the
	// clients retried.
	if on.QueuePeak > on.QueueCap {
		t.Fatalf("queue peak %d exceeds cap %d", on.QueuePeak, on.QueueCap)
	}
	if on.HTTP429 == 0 {
		t.Fatal("shedding-on at 4x answered no 429s")
	}
	if on.Retries == 0 {
		t.Fatal("clients never retried a 429")
	}
	if on.Rejected == 0 {
		t.Fatal("server admission counters never moved")
	}

	recs := OverloadRecords(points)
	var gain map[string]float64
	for _, r := range recs {
		if r.Name == "x4/shedding-gain" {
			gain = r.Metrics
		}
	}
	if gain == nil {
		t.Fatalf("no shedding-gain record in %d records", len(recs))
	}
	if gain["goodput_retention"] <= 0 {
		t.Fatalf("goodput_retention = %v, want > 0", gain["goodput_retention"])
	}

	if s := FormatOverload(points); s == "" {
		t.Fatal("empty table")
	}
	var buf bytes.Buffer
	if err := OverloadCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty CSV")
	}
}
