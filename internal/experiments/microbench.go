package experiments

import (
	"fmt"
	"time"

	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/sgmv"
)

// microSegments builds the deterministic segment layout the SGMV
// microbenchmarks use for a popularity distribution at a batch size.
func microSegments(k dist.Kind, batch int) sgmv.Segments {
	return sgmv.NewSegments(dist.SegmentSizes(k, batch)...)
}

// Fig7Point is one roofline observation: arithmetic intensity vs achieved
// FLOP/s of the SGMV kernel (hi=16, ho=4096 — the §7.1 case study).
type Fig7Point struct {
	Dist          dist.Kind
	Batch         int
	Intensity     float64
	AchievedFLOPS float64
	Latency       time.Duration
}

// Fig7 reproduces the SGMV roofline study on Testbed #1 (A100-80G):
// batch sizes 1–64 under the four popularity distributions, measured as
// a standalone kernel.
func Fig7() []Fig7Point {
	cm := sgmv.CostModel{GPU: hw.A100(), Standalone: true}
	var points []Fig7Point
	for _, k := range dist.Kinds {
		for _, b := range Batches1to64 {
			op := sgmv.Op{HIn: 16, HOut: 4096, Seg: microSegments(k, b)}
			points = append(points, Fig7Point{
				Dist:          k,
				Batch:         b,
				Intensity:     op.Intensity(),
				AchievedFLOPS: cm.AchievedFLOPS(op),
				Latency:       cm.KernelTime(op),
			})
		}
	}
	return points
}

// FormatFig7 renders the roofline points with the two A100 ceilings.
func FormatFig7(points []Fig7Point) string {
	t := newTable("dist", "batch", "FLOP:I/O", "achieved FLOP/s", "latency")
	for _, p := range points {
		t.add(p.Dist.String(), fmt.Sprint(p.Batch),
			fmt.Sprintf("%.3f", p.Intensity),
			fmt.Sprintf("%.3g", p.AchievedFLOPS),
			us(p.Latency))
	}
	return "Figure 7 — SGMV roofline (hi=16, ho=4096, A100: 1.935 TB/s, 312 TFLOP/s):\n" +
		t.String()
}

// Fig8Point compares LoRA operator implementations at one (distribution,
// batch) cell: rank 16, h=4096 (§7.1).
type Fig8Point struct {
	Dist      dist.Kind
	Batch     int
	Loop      time.Duration
	GatherBMM time.Duration
	Gather    time.Duration
	BMM       time.Duration
	SGMV      time.Duration
}

// Fig8 reproduces the LoRA operator microbenchmark.
func Fig8() []Fig8Point {
	cm := sgmv.CostModel{GPU: hw.A100(), Standalone: true}
	const h, r = 4096, 16
	var points []Fig8Point
	for _, k := range dist.Kinds {
		for _, b := range Batches1to64 {
			seg := microSegments(k, b)
			points = append(points, Fig8Point{
				Dist:      k,
				Batch:     b,
				Loop:      cm.LoopTime(h, r, h, seg),
				GatherBMM: cm.GatherBMMTime(h, r, h, seg),
				Gather:    cm.GatherTime(h, r, h, seg),
				BMM:       cm.BMMTime(h, r, h, seg),
				SGMV:      cm.OperatorTime(h, r, h, seg),
			})
		}
	}
	return points
}

// FormatFig8 renders the comparison table.
func FormatFig8(points []Fig8Point) string {
	t := newTable("dist", "batch", "Loop", "Gather-BMM", "Gather", "BMM", "SGMV")
	for _, p := range points {
		t.add(p.Dist.String(), fmt.Sprint(p.Batch),
			us(p.Loop), us(p.GatherBMM), us(p.Gather), us(p.BMM), us(p.SGMV))
	}
	return "Figure 8 — LoRA operator implementations (rank 16, h=4096):\n" + t.String()
}

// Fig9Point is the SGMV operator latency at one (rank, distribution,
// batch) cell.
type Fig9Point struct {
	Rank    int
	Dist    dist.Kind
	Batch   int
	Latency time.Duration
}

// Fig9Ranks are the LoRA ranks the figure sweeps.
var Fig9Ranks = []int{8, 16, 32, 64}

// Fig9 reproduces the rank sweep of the SGMV operator.
func Fig9() []Fig9Point {
	cm := sgmv.CostModel{GPU: hw.A100(), Standalone: true}
	const h = 4096
	var points []Fig9Point
	for _, r := range Fig9Ranks {
		for _, k := range dist.Kinds {
			for _, b := range Batches1to64 {
				points = append(points, Fig9Point{
					Rank:    r,
					Dist:    k,
					Batch:   b,
					Latency: cm.OperatorTime(h, r, h, microSegments(k, b)),
				})
			}
		}
	}
	return points
}

// FormatFig9 renders one table per rank.
func FormatFig9(points []Fig9Point) string {
	out := "Figure 9 — SGMV operator across LoRA ranks (h=4096):\n"
	for _, rank := range Fig9Ranks {
		t := newTable(append([]string{fmt.Sprintf("r=%d dist\\batch", rank)}, batch64Headers()...)...)
		for _, k := range dist.Kinds {
			row := []string{k.String()}
			for _, p := range points {
				if p.Rank == rank && p.Dist == k {
					row = append(row, us(p.Latency))
				}
			}
			t.add(row...)
		}
		out += t.String() + "\n"
	}
	return out
}

func batch64Headers() []string {
	var h []string
	for _, b := range Batches1to64 {
		h = append(h, fmt.Sprintf("b=%d", b))
	}
	return h
}
