package experiments

import (
	"fmt"
	"time"

	"punica/internal/cluster"
	"punica/internal/core"
	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/lora"
	"punica/internal/models"
	"punica/internal/sched"
	"punica/internal/workload"
)

// PolicyCompareOptions parameterises the scheduling-policy head-to-head:
// every built-in policy (paper §5.1, adapter affinity, rank-aware) runs
// the same traces on the same fleet, so differences in throughput,
// adapter stalls and adapter evictions are attributable to placement
// alone. Arrivals are Poisson at a constant Rate over Horizon — the
// scheduler's §7.3 operating regime, where adapter warmth persists
// between placements and locality has something to exploit.
type PolicyCompareOptions struct {
	NumGPUs int
	// Rate is the arrival rate (req/s); Rate×Horizon sizes each trace.
	Rate    float64
	Horizon time.Duration
	Seed    int64

	MaxBatch int
	// StoreAdapters sizes each GPU's adapter store in default-rank
	// adapters — small values create the §5.2 contention the affinity
	// policy exploits.
	StoreAdapters int

	// DriftRotations splits the ZipfDrift workload's horizon into that
	// many phases with disjoint hot sets (popularity drift).
	DriftRotations int

	// Ranks is the adapter-rank palette of the RankMix workload
	// (adapter id i serves rank Ranks[i mod len]); heterogeneous ranks
	// make SGMV pad to the batch maximum, the overhead the rank-aware
	// policy avoids.
	Ranks []int
}

// DefaultPolicyCompareOptions returns a store-pressured 4-GPU setup
// that finishes in seconds of wall time.
func DefaultPolicyCompareOptions() PolicyCompareOptions {
	return PolicyCompareOptions{
		NumGPUs:        4,
		Rate:           8,
		Horizon:        time.Minute,
		Seed:           42,
		MaxBatch:       16,
		StoreAdapters:  4,
		DriftRotations: 3,
		Ranks:          []int{8, 16, 32, 64},
	}
}

func (o PolicyCompareOptions) withDefaults() PolicyCompareOptions {
	d := DefaultPolicyCompareOptions()
	if o.NumGPUs <= 0 {
		o.NumGPUs = d.NumGPUs
	}
	if o.Rate <= 0 {
		o.Rate = d.Rate
	}
	if o.Horizon <= 0 {
		o.Horizon = d.Horizon
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = d.MaxBatch
	}
	if o.StoreAdapters <= 0 {
		o.StoreAdapters = d.StoreAdapters
	}
	if o.DriftRotations <= 0 {
		o.DriftRotations = d.DriftRotations
	}
	if len(o.Ranks) == 0 {
		o.Ranks = d.Ranks
	}
	return o
}

// PolicyComparePoint is one (workload, policy) cell of the comparison.
type PolicyComparePoint struct {
	Workload string
	Policy   string

	Throughput float64
	Finished   int64
	// BusyFrac is the mean per-GPU busy fraction: the same tokens at a
	// higher busy fraction means wasted invocation time (e.g. SGMV rank
	// padding in mixed-rank batches). UtilSpread is max−min per-GPU busy
	// fraction (derived from core.Stats.BusyTime): load imbalance a mean
	// alone hides.
	BusyFrac         float64
	UtilSpread       float64
	AdapterStalls    int64
	AdapterEvictions int64
	Migrations       int64
	QueuePeak        int
}

// policyWorkload is one trace the comparison replays under each policy.
type policyWorkload struct {
	name string
	// trace regenerates the identical request stream for every policy.
	trace func() []workload.Request
	// adapterRank is non-nil only for the heterogeneous-rank scenario.
	adapterRank func(lora.ModelID) int
}

// poisson builds a constant-rate arrival trace with the given
// popularity distribution.
func (o PolicyCompareOptions) poisson(kind dist.Kind) []workload.Request {
	gen := workload.NewGenerator(kind, workload.ShareGPTLengths(), o.Seed)
	n := int(o.Rate * o.Horizon.Seconds())
	rate := func(time.Duration) float64 { return o.Rate }
	return gen.Poisson(rate, o.Rate, o.Horizon, dist.NumModels(kind, n))
}

func (o PolicyCompareOptions) workloads() []policyWorkload {
	var wls []policyWorkload
	for _, kind := range dist.Kinds {
		k := kind
		wls = append(wls, policyWorkload{
			name:  k.String(),
			trace: func() []workload.Request { return o.poisson(k) },
		})
	}
	wls = append(wls, policyWorkload{
		name: "ZipfDrift",
		trace: func() []workload.Request {
			gen := workload.NewGenerator(dist.Zipf, workload.ShareGPTLengths(), o.Seed)
			n := int(o.Rate * o.Horizon.Seconds())
			numModels := dist.NumModels(dist.Zipf, n)
			phases := make([]dist.Phase, o.DriftRotations)
			for i := range phases {
				phases[i] = dist.Phase{
					Length:    o.Horizon / time.Duration(o.DriftRotations),
					Kind:      dist.Zipf,
					Alpha:     dist.DefaultZipfAlpha,
					NumModels: numModels,
					Offset:    i * numModels,
				}
			}
			rate := func(time.Duration) float64 { return o.Rate }
			return gen.PoissonMix(rate, o.Rate, o.Horizon, dist.Mix{Phases: phases})
		},
	})
	ranks := o.Ranks
	wls = append(wls, policyWorkload{
		name:  "RankMix",
		trace: func() []workload.Request { return o.poisson(dist.Uniform) },
		adapterRank: func(id lora.ModelID) int {
			return ranks[int(id)%len(ranks)]
		},
	})
	return wls
}

// ComparePolicies runs every built-in policy over the four paper
// popularity distributions plus the Zipf hot-set-drift and
// heterogeneous-rank workloads, on an adapter-store-pressured fleet.
func ComparePolicies(opts PolicyCompareOptions) ([]PolicyComparePoint, error) {
	o := opts.withDefaults()
	model := models.Llama2_7B()
	var points []PolicyComparePoint
	for _, wl := range o.workloads() {
		// StoreAdapters counts adapters, so the store budget tracks the
		// workload's mean adapter size: a rank-mix palette averages
		// bigger weights than the default rank, and sizing in
		// default-rank units would silently tighten its store.
		adapterBytes := model.LoRABytes(models.DefaultLoRARank)
		if wl.adapterRank != nil {
			var sum int64
			for _, r := range o.Ranks {
				sum += model.LoRABytes(r)
			}
			adapterBytes = sum / int64(len(o.Ranks))
		}
		storeBytes := int64(o.StoreAdapters) * adapterBytes
		for _, policy := range sched.PolicyNames {
			sys := core.PunicaSystem()
			sys.MaxBatch = o.MaxBatch
			c := cluster.New(cluster.Config{
				NumGPUs: o.NumGPUs,
				Engine: core.Config{
					System:         sys,
					GPU:            hw.A100(),
					Model:          model,
					Rank:           models.DefaultLoRARank,
					LoRAStoreBytes: storeBytes,
				},
				MigrationInterval: 10 * time.Second,
				Policy:            policy,
				AdapterRank:       wl.adapterRank,
			})
			res, err := c.Run(wl.trace())
			if err != nil {
				return nil, fmt.Errorf("policy %s on %s: %w", policy, wl.name, err)
			}
			busy := 0.0
			minBusy, maxBusy := 0.0, 0.0
			for i, f := range res.GPUBusyFraction {
				busy += f
				if i == 0 || f < minBusy {
					minBusy = f
				}
				if f > maxBusy {
					maxBusy = f
				}
			}
			if len(res.GPUBusyFraction) > 0 {
				busy /= float64(len(res.GPUBusyFraction))
			}
			points = append(points, PolicyComparePoint{
				Workload:         wl.name,
				Policy:           policy,
				Throughput:       res.Throughput,
				Finished:         res.Finished,
				BusyFrac:         busy,
				UtilSpread:       maxBusy - minBusy,
				AdapterStalls:    res.AdapterStalls,
				AdapterEvictions: res.AdapterEvictions,
				Migrations:       res.Migrations,
				QueuePeak:        res.QueuePeak,
			})
		}
	}
	return points, nil
}

// FormatPolicyCompare renders the head-to-head as an aligned table.
func FormatPolicyCompare(points []PolicyComparePoint) string {
	t := newTable("workload", "policy", "throughput", "busy", "spread", "stalls", "adapter evictions", "migrations", "queue peak")
	for _, p := range points {
		t.add(p.Workload, p.Policy,
			fmt.Sprintf("%.0f tok/s", p.Throughput),
			fmt.Sprintf("%.1f%%", 100*p.BusyFrac),
			fmt.Sprintf("%.1f%%", 100*p.UtilSpread),
			fmt.Sprint(p.AdapterStalls),
			fmt.Sprint(p.AdapterEvictions),
			fmt.Sprint(p.Migrations),
			fmt.Sprint(p.QueuePeak))
	}
	return "Scheduling-policy comparison (store-pressured fleet, Poisson arrivals):\n" + t.String()
}
