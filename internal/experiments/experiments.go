// Package experiments contains one harness per table/figure in the
// Punica paper's evaluation (§7). Each harness runs the corresponding
// workload on the simulated substrate and returns typed rows plus a
// paper-style text rendering; cmd/punica-bench and the repository-root
// benchmarks call into it, and EXPERIMENTS.md records paper-vs-measured
// values produced by these functions.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Batches1to32 is the batch-size sweep of Fig. 1 and Fig. 10.
var Batches1to32 = []int{1, 2, 4, 8, 16, 32}

// Batches1to64 is the batch-size sweep of the microbenchmarks
// (Fig. 7–9).
var Batches1to64 = []int{1, 2, 4, 8, 16, 32, 48, 64}

// table is a small text-table builder used by the Format helpers.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
}
