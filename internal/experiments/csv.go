package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV writers: machine-readable forms of each figure's data for plot
// regeneration. Columns mirror the paper's axes.

func writeAll(w *csv.Writer, rows [][]string) error {
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func usCell(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Nanoseconds())/1e3, 'f', 3, 64)
}

// Fig1CSV writes seq_len,batch,prefill_us,decode_us.
func Fig1CSV(out io.Writer, points []Fig1Point) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"seq_len", "batch", "prefill_us", "decode_us"}}
	for _, p := range points {
		rows = append(rows, []string{
			strconv.Itoa(p.SeqLen), strconv.Itoa(p.Batch),
			usCell(p.Prefill), usCell(p.Decode),
		})
	}
	return writeAll(w, rows)
}

// Fig7CSV writes dist,batch,intensity,achieved_flops,latency_us.
func Fig7CSV(out io.Writer, points []Fig7Point) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"dist", "batch", "intensity", "achieved_flops", "latency_us"}}
	for _, p := range points {
		rows = append(rows, []string{
			p.Dist.String(), strconv.Itoa(p.Batch),
			strconv.FormatFloat(p.Intensity, 'f', 6, 64),
			strconv.FormatFloat(p.AchievedFLOPS, 'g', 6, 64),
			usCell(p.Latency),
		})
	}
	return writeAll(w, rows)
}

// Fig8CSV writes dist,batch,loop_us,gather_bmm_us,gather_us,bmm_us,sgmv_us.
func Fig8CSV(out io.Writer, points []Fig8Point) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"dist", "batch", "loop_us", "gather_bmm_us", "gather_us", "bmm_us", "sgmv_us"}}
	for _, p := range points {
		rows = append(rows, []string{
			p.Dist.String(), strconv.Itoa(p.Batch),
			usCell(p.Loop), usCell(p.GatherBMM), usCell(p.Gather),
			usCell(p.BMM), usCell(p.SGMV),
		})
	}
	return writeAll(w, rows)
}

// Fig9CSV writes rank,dist,batch,latency_us.
func Fig9CSV(out io.Writer, points []Fig9Point) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"rank", "dist", "batch", "latency_us"}}
	for _, p := range points {
		rows = append(rows, []string{
			strconv.Itoa(p.Rank), p.Dist.String(), strconv.Itoa(p.Batch),
			usCell(p.Latency),
		})
	}
	return writeAll(w, rows)
}

// Fig10CSV writes model,seq_len,dist,batch,latency_us.
func Fig10CSV(out io.Writer, points []Fig10Point) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"model", "seq_len", "dist", "batch", "latency_us"}}
	for _, p := range points {
		rows = append(rows, []string{
			p.Model, strconv.Itoa(p.SeqLen), p.Dist.String(),
			strconv.Itoa(p.Batch), usCell(p.Latency),
		})
	}
	return writeAll(w, rows)
}

// Fig11CSV writes model,dist,system,throughput_tok_s.
func Fig11CSV(out io.Writer, rows11 []Fig11Row) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"model", "dist", "system", "throughput_tok_s"}}
	for _, r := range rows11 {
		rows = append(rows, []string{
			r.Model, r.Dist.String(), r.System,
			strconv.FormatFloat(r.Throughput, 'f', 1, 64),
		})
	}
	return writeAll(w, rows)
}

// PolicyCompareCSV writes workload,policy,throughput_tok_s,busy_frac,
// util_spread,adapter_stalls,adapter_evictions,migrations,queue_peak.
func PolicyCompareCSV(out io.Writer, points []PolicyComparePoint) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"workload", "policy", "throughput_tok_s", "busy_frac",
		"util_spread", "adapter_stalls", "adapter_evictions", "migrations", "queue_peak"}}
	for _, p := range points {
		rows = append(rows, []string{
			p.Workload, p.Policy,
			strconv.FormatFloat(p.Throughput, 'f', 1, 64),
			strconv.FormatFloat(p.BusyFrac, 'f', 4, 64),
			strconv.FormatFloat(p.UtilSpread, 'f', 4, 64),
			strconv.FormatInt(p.AdapterStalls, 10),
			strconv.FormatInt(p.AdapterEvictions, 10),
			strconv.FormatInt(p.Migrations, 10),
			strconv.Itoa(p.QueuePeak),
		})
	}
	return writeAll(w, rows)
}

// Fig13CSV writes minute,req_per_s,tok_per_s,busy_gpus,then one batch
// column per GPU.
func Fig13CSV(out io.Writer, r *Fig13Result) error {
	w := csv.NewWriter(out)
	header := []string{"minute", "req_per_s", "tok_per_s", "busy_gpus"}
	for i := range r.BatchPerGPU {
		header = append(header, fmt.Sprintf("gpu%02d_batch", i))
	}
	rows := [][]string{header}
	for i := range r.ReqRate {
		busy := 0
		for _, g := range r.BatchPerGPU {
			if i < len(g) && g[i] > 0 {
				busy++
			}
		}
		row := []string{
			strconv.FormatFloat((time.Duration(i) * r.Opts.BinWidth).Minutes(), 'f', 2, 64),
			strconv.FormatFloat(r.ReqRate[i], 'f', 3, 64),
			strconv.FormatFloat(r.TokRate[i], 'f', 1, 64),
			strconv.Itoa(busy),
		}
		for _, g := range r.BatchPerGPU {
			v := 0.0
			if i < len(g) {
				v = g[i]
			}
			row = append(row, strconv.FormatFloat(v, 'f', 2, 64))
		}
		rows = append(rows, row)
	}
	return writeAll(w, rows)
}
