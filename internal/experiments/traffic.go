// Traffic experiment: flash-crowd sweep with the fairness layer off and
// on. Each sweep point replays the SAME open-loop trace twice — a
// Skewed background population plus one whale tenant's spike on the hot
// adapter — against a cluster whose adapter store is deliberately tight
// (StoreAdapters slots per GPU), so the crowd forces adapter stalls.
// Fairness off, the stalls concentrate on whichever tail tenant sits
// behind the whale's backlog; fairness on, the VTC layer interleaves
// tenants and the stall skew collapses. The committed
// bench/BENCH_traffic.json baseline gates both throughput and the
// off/on skew ratio.

package experiments

import (
	"encoding/csv"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"time"

	"punica/internal/cluster"
	"punica/internal/core"
	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/models"
	"punica/internal/workload"
)

// TrafficOptions configures the flash-crowd fairness sweep.
type TrafficOptions struct {
	// NumGPUs and MaxBatch size the cluster (defaults 2 GPUs × batch 8).
	NumGPUs  int
	MaxBatch int
	// StoreAdapters caps each GPU's adapter store to that many resident
	// adapters (default 4). The default geometry is deliberate: the
	// background working set (NumModels adapters) exactly fits the
	// store, and the whale's private adapter is the +1 that overflows
	// it — so every adapter stall in the sweep is whale-induced.
	StoreAdapters int
	// NumModels is the Skewed background adapter population (default 4).
	NumModels int
	// Base and Horizon shape the background: Base req/s with a gentle
	// diurnal swell over Horizon (defaults 2 req/s over 4m).
	Base    float64
	Horizon time.Duration
	// SpikePeaks is the sweep: one flash crowd per peak rate (req/s,
	// 0 = no spike), each run fairness-off then fairness-on over the
	// identical trace. Default {0, 32, 40}.
	SpikePeaks []float64
	// SpikeModel and WhaleTenant target the crowd: every spike arrival
	// hits that adapter tagged with that tenant. SpikeModel defaults to
	// NumModels — the first id past the background set, the whale's
	// private fine-tune.
	SpikeModel  int
	WhaleTenant int64
	// Tenants is the background tenant population (default 64 tenants,
	// 3 active per adapter, no churn — small enough that per-tenant
	// outcomes are statistically meaningful over the horizon).
	Tenants workload.TenantSpec
	// Lengths samples request sizes (default ShareGPT log-normals).
	Lengths workload.Lengths
	// Seed drives both the arrival process and the spec's seeded parts.
	Seed int64
}

func (o TrafficOptions) withDefaults() TrafficOptions {
	if o.NumGPUs <= 0 {
		o.NumGPUs = 2
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.StoreAdapters <= 0 {
		o.StoreAdapters = 4
	}
	if o.NumModels <= 0 {
		o.NumModels = 4
	}
	if o.Base <= 0 {
		o.Base = 2
	}
	if o.Horizon <= 0 {
		o.Horizon = 4 * time.Minute
	}
	if len(o.SpikePeaks) == 0 {
		o.SpikePeaks = []float64{0, 32, 40}
	}
	if o.SpikeModel <= 0 {
		o.SpikeModel = o.NumModels
	}
	if o.WhaleTenant <= 0 {
		o.WhaleTenant = 1
	}
	if o.Tenants.Population <= 0 {
		o.Tenants = workload.TenantSpec{Population: 64, PerModel: 3}
	}
	if o.Lengths.PromptMax <= 0 {
		o.Lengths = workload.ShareGPTLengths()
	}
	if o.Seed == 0 {
		o.Seed = 2
	}
	return o
}

// Spec builds the sweep point's traffic spec: diurnal background over a
// Skewed mix, plus (peak > 0) one whale flash crowd on the hot adapter.
func (o TrafficOptions) Spec(peak float64) workload.TrafficSpec {
	spec := workload.TrafficSpec{
		Horizon:       o.Horizon,
		Base:          o.Base,
		DiurnalAmp:    0.3,
		DiurnalPeriod: o.Horizon,
		Tenants:       o.Tenants,
		Mix: dist.Mix{Phases: []dist.Phase{{
			Kind: dist.Skewed, NumModels: o.NumModels,
		}}},
		Seed: o.Seed,
	}
	if peak > 0 {
		spec.Spikes = []workload.Spike{{
			At:     o.Horizon / 4,
			Peak:   peak,
			Ramp:   15 * time.Second,
			Hold:   o.Horizon / 2,
			Decay:  20 * time.Second,
			Model:  o.SpikeModel,
			Tenant: o.WhaleTenant,
		}}
	}
	return spec
}

// TrafficPoint is one (spike peak, fairness) run over the shared trace.
type TrafficPoint struct {
	SpikePeak float64
	Fairness  bool

	Requests   int
	Finished   int64
	Throughput float64 // decode tokens/s over the makespan
	Makespan   time.Duration

	// End-to-end latency (seconds): overall, and the tail tenants' p99
	// with the whale excluded — the number the whale's crowd inflates.
	P50     float64
	P99     float64
	TailP99 float64

	// Fairness indices from Result: max/median per-tenant adapter
	// stalls, and Jain's index over per-tenant decode tokens.
	StallSkew    float64
	JainFairness float64

	AdapterStalls int64
	QueuePeak     int
	TenantCount   int
	Digest        string
}

// trafficCell replays one trace against one cluster configuration.
func trafficCell(o TrafficOptions, trace []workload.Request, peak float64, fair bool) (TrafficPoint, error) {
	sys := core.PunicaSystem()
	sys.MaxBatch = o.MaxBatch
	model := models.Llama2_7B()
	cfg := cluster.Config{
		NumGPUs: o.NumGPUs,
		Engine: core.Config{
			System:         sys,
			GPU:            hw.A100(),
			Model:          model,
			Rank:           models.DefaultLoRARank,
			LoRAStoreBytes: int64(o.StoreAdapters) * model.LoRABytes(models.DefaultLoRARank),
		},
		MigrationInterval: 10 * time.Second,
		Fairness:          fair,
	}
	c := cluster.New(cfg)
	res, err := c.Run(trace)
	if err != nil {
		return TrafficPoint{}, fmt.Errorf("traffic peak%g/fair=%v: %w", peak, fair, err)
	}
	if res.Finished != int64(len(trace)) {
		return TrafficPoint{}, fmt.Errorf("traffic peak%g/fair=%v: finished %d of %d trace requests",
			peak, fair, res.Finished, len(trace))
	}
	p := TrafficPoint{
		SpikePeak:     peak,
		Fairness:      fair,
		Requests:      len(trace),
		Finished:      res.Finished,
		Throughput:    res.Throughput,
		Makespan:      res.Makespan,
		P50:           res.EndToEnd.Percentile(50),
		P99:           res.EndToEnd.Percentile(99),
		TailP99:       cluster.TenantP99(res.Tenants, o.WhaleTenant),
		StallSkew:     res.StallSkew,
		JainFairness:  res.JainFairness,
		AdapterStalls: res.AdapterStalls,
		QueuePeak:     res.QueuePeak,
		TenantCount:   len(res.Tenants),
		Digest:        trafficDigest(res),
	}
	return p, nil
}

// trafficDigest fingerprints the run's simulated outcomes — the
// determinism witness that fairness toggling is the only variable
// between a sweep pair's two runs.
func trafficDigest(res *cluster.Result) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "finished=%d decode=%d makespan=%d stalls=%d peak=%d tenants=%d e2e{%s}",
		res.Finished, res.DecodeTokens, int64(res.Makespan),
		res.AdapterStalls, res.QueuePeak, len(res.Tenants), res.EndToEnd.Summary())
	for _, to := range res.Tenants {
		fmt.Fprintf(h, " t%d:%d/%d/%d", to.Tenant, to.Finished, to.DecodeTokens, to.AdapterStalls)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Traffic runs the flash-crowd sweep: for each spike peak, fairness off
// then fairness on over the identical trace.
func Traffic(opts TrafficOptions) ([]TrafficPoint, error) {
	o := opts.withDefaults()
	var points []TrafficPoint
	for _, peak := range o.SpikePeaks {
		// One generator per peak: the off/on pair must replay the same
		// arrivals, so the trace is drawn once and shared.
		gen := workload.NewGenerator(dist.Skewed, o.Lengths, o.Seed)
		trace := gen.Traffic(o.Spec(peak))
		for _, fair := range []bool{false, true} {
			p, err := trafficCell(o, trace, peak, fair)
			if err != nil {
				return nil, err
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// FormatTraffic renders the sweep as an aligned table, pairing each
// peak's fairness-off and fairness-on rows.
func FormatTraffic(points []TrafficPoint) string {
	t := newTable("peak", "fairness", "requests", "tok/s", "p50", "p99", "tail p99", "stall skew", "jain", "stalls", "queue peak", "tenants", "digest")
	for _, p := range points {
		t.add(
			fmt.Sprintf("%g", p.SpikePeak),
			onOff(p.Fairness),
			strconv.Itoa(p.Requests),
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%.2fs", p.P50),
			fmt.Sprintf("%.2fs", p.P99),
			fmt.Sprintf("%.2fs", p.TailP99),
			fmt.Sprintf("%.1f", p.StallSkew),
			fmt.Sprintf("%.3f", p.JainFairness),
			strconv.FormatInt(p.AdapterStalls, 10),
			strconv.Itoa(p.QueuePeak),
			strconv.Itoa(p.TenantCount),
			p.Digest)
	}
	return "Traffic — flash-crowd sweep, fairness off vs on over identical traces:\n" + t.String()
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// TrafficCSV writes the sweep as CSV, one row per run.
func TrafficCSV(out io.Writer, points []TrafficPoint) error {
	w := csv.NewWriter(out)
	if err := w.Write([]string{"spike_peak", "fairness", "requests", "finished",
		"throughput_tok_s", "makespan_s", "p50_s", "p99_s", "tail_p99_s",
		"stall_skew", "jain", "adapter_stalls", "queue_peak", "tenants",
		"digest"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := w.Write([]string{
			fmt.Sprintf("%g", p.SpikePeak),
			onOff(p.Fairness),
			strconv.Itoa(p.Requests),
			strconv.FormatInt(p.Finished, 10),
			fmt.Sprintf("%.1f", p.Throughput),
			fmt.Sprintf("%.1f", p.Makespan.Seconds()),
			fmt.Sprintf("%.3f", p.P50),
			fmt.Sprintf("%.3f", p.P99),
			fmt.Sprintf("%.3f", p.TailP99),
			fmt.Sprintf("%.2f", p.StallSkew),
			fmt.Sprintf("%.4f", p.JainFairness),
			strconv.FormatInt(p.AdapterStalls, 10),
			strconv.Itoa(p.QueuePeak),
			strconv.Itoa(p.TenantCount),
			p.Digest,
		}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// TrafficRecords flattens the sweep into bench records: one per run,
// plus one off/on comparison record per spike peak carrying the skew
// ratio and tail-p99 gain the fairness layer is accountable for.
func TrafficRecords(points []TrafficPoint) []BenchRecord {
	var recs []BenchRecord
	byPeak := map[float64][2]*TrafficPoint{}
	for i := range points {
		p := &points[i]
		recs = append(recs, BenchRecord{
			Experiment: "traffic",
			Name:       fmt.Sprintf("peak%g/fair=%s", p.SpikePeak, onOff(p.Fairness)),
			Metrics: map[string]float64{
				"throughput_tok_s": p.Throughput,
				"p50_s":            p.P50,
				"p99_s":            p.P99,
				"tail_p99_s":       p.TailP99,
				"stall_skew":       p.StallSkew,
				"jain":             p.JainFairness,
				"adapter_stalls":   float64(p.AdapterStalls),
				"queue_peak":       float64(p.QueuePeak),
				"tenants":          float64(p.TenantCount),
			},
		})
		pair := byPeak[p.SpikePeak]
		if p.Fairness {
			pair[1] = p
		} else {
			pair[0] = p
		}
		byPeak[p.SpikePeak] = pair
	}
	for _, p := range points {
		pair := byPeak[p.SpikePeak]
		if p.Fairness || pair[0] == nil || pair[1] == nil {
			continue // emit once per peak, from the off row
		}
		off, on := pair[0], pair[1]
		m := map[string]float64{
			"jain_gain": on.JainFairness - off.JainFairness,
		}
		if on.StallSkew > 0 {
			m["skew_ratio"] = off.StallSkew / on.StallSkew
		}
		if on.TailP99 > 0 {
			m["tail_p99_gain"] = off.TailP99 / on.TailP99
		}
		recs = append(recs, BenchRecord{
			Experiment: "traffic",
			Name:       fmt.Sprintf("peak%g/fairness-gain", p.SpikePeak),
			Metrics:    m,
		})
	}
	return recs
}
