// Cold-start experiment: tiered adapter cache with and without the two
// mitigations this repo adds on top of the paper's on-demand loading —
// load/compute overlap (a stalled queue head's adapter load runs under
// the current prefill) and predictive pre-distribution (a daemon stages
// the adapters the workload spec says are about to get hot into host
// RAM ahead of demand). Every row replays the SAME seeded trace — a
// rotating hot set plus one model-targeted spike — against the same
// tiered fleet; only the mitigation knobs differ. The committed
// bench/BENCH_coldstart.json baseline gates throughput and the naive
// vs pre-distributed cold-start p99 ratio.

package experiments

import (
	"encoding/csv"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"time"

	"punica/internal/cluster"
	"punica/internal/core"
	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/lora"
	"punica/internal/models"
	"punica/internal/workload"
)

// ColdStartOptions configures the cold-start mitigation sweep.
type ColdStartOptions struct {
	// NumGPUs and MaxBatch size the cluster (defaults 2 GPUs × batch 4
	// — small enough that the spike stalls the queue, which is what the
	// overlap path needs to act on).
	NumGPUs  int
	MaxBatch int
	// HBMAdapters caps each GPU's HBM store, in adapters (default 16 —
	// a whole phase's hot set, so cold starts are genuine first touches
	// rather than capacity thrash).
	HBMAdapters int
	// NumModels is each phase's hot-set size (default 16). The trace
	// rotates to a disjoint second hot set mid-run — the popularity
	// drift the pre-distribution daemon predicts.
	NumModels int
	// Base and Horizon shape the open-loop arrivals (defaults 6 req/s
	// over 60s).
	Base    float64
	Horizon time.Duration
	// Budgets is the pre-distribution sweep: one run per per-tick byte
	// budget (default 256MiB, 1GiB, 8GiB — from "stages a few adapters
	// per tick" to "stages the whole predicted set").
	Budgets []int64
	// Tiers is the staging hierarchy below HBM (default a 64-adapter
	// node SSD at 2GB/s+1ms under a 24-adapter host RAM at 8GB/s+100µs).
	Tiers []lora.TierSpec
	// Seed drives the arrival process.
	Seed int64
}

func (o ColdStartOptions) withDefaults() ColdStartOptions {
	if o.NumGPUs <= 0 {
		o.NumGPUs = 2
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4
	}
	if o.HBMAdapters <= 0 {
		o.HBMAdapters = 16
	}
	if o.NumModels <= 0 {
		o.NumModels = 16
	}
	if o.Base <= 0 {
		o.Base = 6
	}
	if o.Horizon <= 0 {
		o.Horizon = 60 * time.Second
	}
	if len(o.Budgets) == 0 {
		o.Budgets = []int64{256 << 20, 1 << 30, 8 << 30}
	}
	if len(o.Tiers) == 0 {
		bytes := models.Llama2_7B().LoRABytes(models.DefaultLoRARank)
		o.Tiers = []lora.TierSpec{
			{Name: "ssd", CapacityBytes: 64 * bytes,
				Link: hw.Link{Name: "ssd", Bandwidth: 2e9, Latency: time.Millisecond}},
			{Name: "ram", CapacityBytes: 24 * bytes,
				Link: hw.Link{Name: "ram", Bandwidth: 8e9, Latency: 100 * time.Microsecond}},
		}
	}
	if o.Seed == 0 {
		o.Seed = 5
	}
	return o
}

// Spec builds the shared trace's spec: a two-phase popularity rotation
// (disjoint hot sets) plus one model-targeted spike mid-run.
func (o ColdStartOptions) Spec() workload.TrafficSpec {
	return workload.TrafficSpec{
		Horizon: o.Horizon,
		Base:    o.Base,
		Spikes: []workload.Spike{{
			At:     o.Horizon / 2,
			Peak:   2.5 * o.Base,
			Ramp:   o.Horizon / 20,
			Hold:   o.Horizon / 6,
			Decay:  o.Horizon / 12,
			Model:  2*o.NumModels + 8,
			Tenant: 1,
		}},
		Mix: dist.Mix{Phases: []dist.Phase{
			{Length: o.Horizon / 2, Kind: dist.Skewed, NumModels: o.NumModels},
			{Kind: dist.Skewed, NumModels: o.NumModels, Offset: o.NumModels},
		}},
		Tenants: workload.TenantSpec{Population: 16, PerModel: 2},
		Seed:    o.Seed,
	}
}

// ColdStartPoint is one run of the shared trace under one mitigation
// configuration.
type ColdStartPoint struct {
	Name    string
	Overlap bool
	// Budget is the pre-distribution per-tick byte budget; < 0 means
	// the daemon is off entirely.
	Budget int64

	Requests   int
	Finished   int64
	Throughput float64
	Makespan   time.Duration

	// Cold-start latency (seconds): staged HBM-miss load times.
	ColdStarts int
	ColdP50    float64
	ColdP99    float64
	// RAMHitRate is the fraction of host-RAM lookups that hit — how
	// often an HBM miss was served one PCIe hop away.
	RAMHitRate float64

	PreDistBytes      int64
	PreDistPromotions int64
	Digest            string
}

// coldStartCell replays the shared trace under one configuration.
func coldStartCell(o ColdStartOptions, trace []workload.Request, spec workload.TrafficSpec,
	name string, overlap bool, budget int64) (ColdStartPoint, error) {
	sys := core.PunicaSystem()
	sys.MaxBatch = o.MaxBatch
	model := models.Llama2_7B()
	cfg := cluster.Config{
		NumGPUs: o.NumGPUs,
		Engine: core.Config{
			System:         sys,
			GPU:            hw.A100(),
			Model:          model,
			Rank:           models.DefaultLoRARank,
			LoRAStoreBytes: int64(o.HBMAdapters) * model.LoRABytes(models.DefaultLoRARank),
		},
		MigrationInterval: 10 * time.Second,
		Tiers:             o.Tiers,
		Overlap:           overlap,
	}
	if budget >= 0 {
		cfg.PreDist = &cluster.PreDistConfig{
			Interval:    500 * time.Millisecond,
			Lead:        2 * time.Second,
			BudgetBytes: budget,
			TopK:        o.NumModels,
			Mix:         spec.Mix,
			Spikes:      spec.Spikes,
		}
	}
	res, err := cluster.New(cfg).Run(trace)
	if err != nil {
		return ColdStartPoint{}, fmt.Errorf("coldstart %s: %w", name, err)
	}
	if res.Finished != int64(len(trace)) {
		return ColdStartPoint{}, fmt.Errorf("coldstart %s: finished %d of %d trace requests",
			name, res.Finished, len(trace))
	}
	p := ColdStartPoint{
		Name:              name,
		Overlap:           overlap,
		Budget:            budget,
		Requests:          len(trace),
		Finished:          res.Finished,
		Throughput:        res.Throughput,
		Makespan:          res.Makespan,
		ColdStarts:        res.ColdStart.Count(),
		ColdP50:           res.ColdStart.Percentile(50),
		ColdP99:           res.ColdStart.Percentile(99),
		PreDistBytes:      res.PreDistBytes,
		PreDistPromotions: res.PreDistPromotions,
		Digest:            coldStartDigest(res),
	}
	for _, ts := range res.TierStats {
		if ts.Tier == "ram" && ts.Hits+ts.Misses > 0 {
			p.RAMHitRate = float64(ts.Hits) / float64(ts.Hits+ts.Misses)
		}
	}
	return p, nil
}

// coldStartDigest fingerprints a run's simulated outcomes including the
// tier counters — the determinism witness that the mitigation knobs are
// the only variable across the sweep's rows.
func coldStartDigest(res *cluster.Result) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "finished=%d decode=%d makespan=%d stalls=%d cold{%s} predist=%d/%d",
		res.Finished, res.DecodeTokens, int64(res.Makespan),
		res.AdapterStalls, res.ColdStart.Summary(), res.PreDistBytes, res.PreDistPromotions)
	for _, ts := range res.TierStats {
		fmt.Fprintf(h, " %s:%d/%d/%d/%d/%d",
			ts.Tier, ts.Hits, ts.Misses, ts.Promotions, ts.Demotions, ts.BytesIn)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ColdStart runs the mitigation sweep over one shared trace: the naive
// tiered baseline, overlap alone, then overlap + pre-distribution at
// each byte budget.
func ColdStart(opts ColdStartOptions) ([]ColdStartPoint, error) {
	o := opts.withDefaults()
	spec := o.Spec()
	gen := workload.NewGenerator(dist.Skewed, workload.ShareGPTLengths(), o.Seed)
	trace := gen.Traffic(spec)
	if len(trace) == 0 {
		return nil, fmt.Errorf("coldstart: spec generated no arrivals")
	}
	var points []ColdStartPoint
	run := func(name string, overlap bool, budget int64) error {
		p, err := coldStartCell(o, trace, spec, name, overlap, budget)
		if err != nil {
			return err
		}
		points = append(points, p)
		return nil
	}
	if err := run("naive", false, -1); err != nil {
		return nil, err
	}
	if err := run("overlap", true, -1); err != nil {
		return nil, err
	}
	for _, budget := range o.Budgets {
		name := fmt.Sprintf("predist/%s", formatBudget(budget))
		if err := run(name, true, budget); err != nil {
			return nil, err
		}
	}
	return points, nil
}

// formatBudget renders a byte budget compactly for row names.
func formatBudget(b int64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dGiB", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", b>>20)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// ColdStartGain returns the headline ratio: the naive tiered baseline's
// cold-start p99 over the best pre-distributed row's (0 if the sweep
// lacks either row).
func ColdStartGain(points []ColdStartPoint) float64 {
	var naive, best float64
	for _, p := range points {
		if p.Name == "naive" {
			naive = p.ColdP99
		}
		if p.Budget > 0 && (best == 0 || p.ColdP99 < best) {
			best = p.ColdP99
		}
	}
	if naive == 0 || best == 0 {
		return 0
	}
	return naive / best
}

// FormatColdStart renders the sweep as an aligned table.
func FormatColdStart(points []ColdStartPoint) string {
	t := newTable("config", "requests", "tok/s", "cold starts", "cold p50", "cold p99", "ram hit", "predist MiB", "digest")
	for _, p := range points {
		t.add(
			p.Name,
			strconv.Itoa(p.Requests),
			fmt.Sprintf("%.0f", p.Throughput),
			strconv.Itoa(p.ColdStarts),
			fmt.Sprintf("%.1fms", p.ColdP50*1e3),
			fmt.Sprintf("%.1fms", p.ColdP99*1e3),
			fmt.Sprintf("%.0f%%", p.RAMHitRate*100),
			fmt.Sprintf("%.0f", float64(p.PreDistBytes)/float64(1<<20)),
			p.Digest)
	}
	out := "ColdStart — tiered adapter cache: naive vs overlap vs pre-distribution over one trace:\n" + t.String()
	if gain := ColdStartGain(points); gain > 0 {
		out += fmt.Sprintf("\ncold-start p99 gain (naive / best pre-distributed): %.1fx", gain)
	}
	return out
}

// ColdStartCSV writes the sweep as CSV, one row per run.
func ColdStartCSV(out io.Writer, points []ColdStartPoint) error {
	w := csv.NewWriter(out)
	if err := w.Write([]string{"config", "overlap", "budget_bytes", "requests",
		"finished", "throughput_tok_s", "makespan_s", "cold_starts",
		"cold_p50_ms", "cold_p99_ms", "ram_hit_rate", "predist_bytes",
		"predist_promotions", "digest"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := w.Write([]string{
			p.Name,
			onOff(p.Overlap),
			strconv.FormatInt(p.Budget, 10),
			strconv.Itoa(p.Requests),
			strconv.FormatInt(p.Finished, 10),
			fmt.Sprintf("%.1f", p.Throughput),
			fmt.Sprintf("%.1f", p.Makespan.Seconds()),
			strconv.Itoa(p.ColdStarts),
			fmt.Sprintf("%.3f", p.ColdP50*1e3),
			fmt.Sprintf("%.3f", p.ColdP99*1e3),
			fmt.Sprintf("%.4f", p.RAMHitRate),
			strconv.FormatInt(p.PreDistBytes, 10),
			strconv.FormatInt(p.PreDistPromotions, 10),
			p.Digest,
		}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// ColdStartRecords flattens the sweep into bench records: one per run
// plus the headline naive-vs-predist p99 gain the baseline gates.
func ColdStartRecords(points []ColdStartPoint) []BenchRecord {
	var recs []BenchRecord
	for _, p := range points {
		recs = append(recs, BenchRecord{
			Experiment: "coldstart",
			Name:       p.Name,
			Metrics: map[string]float64{
				"throughput_tok_s":   p.Throughput,
				"cold_starts":        float64(p.ColdStarts),
				"cold_p50_ms":        p.ColdP50 * 1e3,
				"cold_p99_ms":        p.ColdP99 * 1e3,
				"ram_hit_rate":       p.RAMHitRate,
				"predist_bytes":      float64(p.PreDistBytes),
				"predist_promotions": float64(p.PreDistPromotions),
			},
		})
	}
	if gain := ColdStartGain(points); gain > 0 {
		recs = append(recs, BenchRecord{
			Experiment: "coldstart",
			Name:       "predist-gain",
			Metrics:    map[string]float64{"cold_p99_gain": gain},
		})
	}
	return recs
}
