package experiments

import (
	"fmt"
	"time"

	"punica/internal/cluster"
	"punica/internal/core"
	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/layer"
	"punica/internal/models"
	"punica/internal/workload"
)

// Fig6Result quantifies the wasted decode steps of an inseparable
// (static-batch) KvCache versus Punica's separable layout on the same
// trace (§5.4, Fig. 6).
type Fig6Result struct {
	Requests     int
	UsefulTokens int64
	StaticWasted int64
	PagedWasted  int64
	WasteFrac    float64 // wasted / (useful+wasted) for the static system
}

// Fig6 runs the same Identical-popularity trace through a static-batch
// system and through Punica and reports the waste.
func Fig6(numRequests int, seed int64) (*Fig6Result, error) {
	if numRequests <= 0 {
		numRequests = 64
	}
	trace := func() []workload.Request {
		return workload.NewGenerator(dist.Identical, workload.ShareGPTLengths(), seed).Batch(numRequests)
	}
	static := core.PunicaSystem()
	static.Name = "static-batching"
	static.ContinuousBatching = false
	static.PagedKV = false
	static.MaxPrefillPerStep = static.MaxBatch

	staticRes, err := run1GPU(static, trace())
	if err != nil {
		return nil, err
	}
	punicaRes, err := run1GPU(core.PunicaSystem(), trace())
	if err != nil {
		return nil, err
	}
	out := &Fig6Result{
		Requests:     numRequests,
		UsefulTokens: staticRes.DecodeTokens,
		StaticWasted: staticRes.WastedDecodes,
		PagedWasted:  punicaRes.WastedDecodes,
	}
	if total := out.UsefulTokens + out.StaticWasted; total > 0 {
		out.WasteFrac = float64(out.StaticWasted) / float64(total)
	}
	return out, nil
}

func run1GPU(sys core.SystemConfig, reqs []workload.Request) (*cluster.Result, error) {
	c := cluster.New(cluster.Config{
		NumGPUs: 1,
		Engine: core.Config{
			System: sys,
			GPU:    hw.A100(),
			Model:  models.Llama2_7B(),
			Rank:   models.DefaultLoRARank,
		},
	})
	return c.Run(reqs)
}

// FormatFig6 renders the waste comparison.
func FormatFig6(r *Fig6Result) string {
	return fmt.Sprintf(
		"Figure 6 — wasted decode steps (%d requests, Identical):\n"+
			"  static batching : %d wasted / %d useful (%.1f%% waste)\n"+
			"  Punica (paged)  : %d wasted\n",
		r.Requests, r.StaticWasted, r.UsefulTokens, 100*r.WasteFrac, r.PagedWasted)
}

// LoadingResult is the §5.2 on-demand model loading microbenchmark.
type LoadingResult struct {
	LayerBytes int64
	ModelBytes int64
	PerLayer   time.Duration
	PerModel   time.Duration
	DecodeStep time.Duration // for comparison: one batch-32 decode step
}

// Loading measures LoRA weight loading over PCIe Gen4 x16 for the 7B
// rank-16 adapters ("around 50µs to load a layer and 2ms to load the
// entire model", §5.2).
func Loading() LoadingResult {
	cfg := models.Llama2_7B()
	link := hw.PCIeGen4x16()
	layerBytes := cfg.LoRALayerParams(models.DefaultLoRARank) * hw.FP16Bytes
	modelBytes := cfg.LoRABytes(models.DefaultLoRARank)
	costs := layer.New(hw.A100(), cfg)
	contexts := make([]int, 32)
	for i := range contexts {
		contexts[i] = 512
	}
	return LoadingResult{
		LayerBytes: layerBytes,
		ModelBytes: modelBytes,
		PerLayer:   link.TransferTime(layerBytes),
		PerModel:   link.TransferTime(modelBytes),
		DecodeStep: costs.InvokeTime(layer.Invocation{DecodeContexts: contexts}),
	}
}

// FormatLoading renders the loading microbenchmark.
func FormatLoading(r LoadingResult) string {
	return fmt.Sprintf(
		"§5.2 — On-demand LoRA loading over %s:\n"+
			"  per layer : %d bytes in %v\n"+
			"  per model : %d bytes in %v\n"+
			"  (one batch-32 decode step: %v — loading hides behind one step)\n",
		hw.PCIeGen4x16().Name, r.LayerBytes, r.PerLayer, r.ModelBytes, r.PerModel, r.DecodeStep)
}

// NormAblation is the §6 fused-LayerNorm ablation.
type NormAblation struct {
	Fused, Unfused   time.Duration // per-invocation (batch 32, 7B)
	PerNorm          time.Duration
	PerNormUnfused   time.Duration
	StepSavingsTotal time.Duration
}

// AblationNorm quantifies what LayerNorm fusion saves per step.
func AblationNorm() NormAblation {
	cfg := models.Llama2_7B()
	fused := layer.New(hw.A100(), cfg)
	unfused := fused
	unfused.FusedNorm = false
	contexts := make([]int, 32)
	for i := range contexts {
		contexts[i] = 512
	}
	inv := layer.Invocation{DecodeContexts: contexts}
	f, u := fused.InvokeTime(inv), unfused.InvokeTime(inv)
	return NormAblation{
		Fused:            f,
		Unfused:          u,
		PerNorm:          hw.LayerNormFused,
		PerNormUnfused:   hw.LayerNormUnfused,
		StepSavingsTotal: u - f,
	}
}

// FormatAblationNorm renders the norm ablation.
func FormatAblationNorm(r NormAblation) string {
	return fmt.Sprintf(
		"§6 — LayerNorm fusion (7B, batch 32): %v → %v per norm; step %v → %v (saves %v)\n",
		r.PerNormUnfused, r.PerNorm, r.Unfused, r.Fused, r.StepSavingsTotal)
}

// MaxBatchPoint is one row of the max-batch-size ablation behind §5.1's
// "oversized batches greatly slow down latency while providing marginal
// throughput gains".
type MaxBatchPoint struct {
	MaxBatch   int
	Throughput float64
	P50TokenMs float64
	P99TokenMs float64
}

// AblationMaxBatch sweeps the engine's batch cap on a Uniform trace.
func AblationMaxBatch(numRequests int, seed int64, caps []int) ([]MaxBatchPoint, error) {
	if numRequests <= 0 {
		numRequests = 200
	}
	if len(caps) == 0 {
		caps = []int{1, 4, 8, 16, 32, 64, 128}
	}
	var points []MaxBatchPoint
	for _, cap := range caps {
		sys := core.PunicaSystem()
		sys.MaxBatch = cap
		reqs := workload.NewGenerator(dist.Uniform, workload.ShareGPTLengths(), seed).Batch(numRequests)
		res, err := run1GPU(sys, reqs)
		if err != nil {
			return nil, err
		}
		points = append(points, MaxBatchPoint{
			MaxBatch:   cap,
			Throughput: res.Throughput,
			P50TokenMs: res.PerTokenLatency.Percentile(50) * 1000,
			P99TokenMs: res.PerTokenLatency.Percentile(99) * 1000,
		})
	}
	return points, nil
}

// FormatAblationMaxBatch renders the sweep.
func FormatAblationMaxBatch(points []MaxBatchPoint) string {
	t := newTable("max batch", "throughput", "p50 ms/token", "p99 ms/token")
	for _, p := range points {
		t.add(fmt.Sprint(p.MaxBatch),
			fmt.Sprintf("%.0f tok/s", p.Throughput),
			fmt.Sprintf("%.1f", p.P50TokenMs),
			fmt.Sprintf("%.1f", p.P99TokenMs))
	}
	return "Ablation — max batch size (§5.1 sweet spot):\n" + t.String()
}

// PageSizePoint is one row of the KvCache page-size ablation.
type PageSizePoint struct {
	PageSize   int
	Throughput float64
	Evictions  int64
}

// AblationPageSize sweeps the paged-KvCache page size under memory
// pressure (small pool, long chat-style responses), trading internal
// fragmentation against allocator granularity: oversized pages waste
// slots and force evictions/recomputation.
func AblationPageSize(numRequests int, seed int64, sizes []int) ([]PageSizePoint, error) {
	if numRequests <= 0 {
		numRequests = 150
	}
	if len(sizes) == 0 {
		sizes = []int{8, 16, 32, 64, 128, 256, 512}
	}
	model := models.Llama2_7B()
	var points []PageSizePoint
	for _, ps := range sizes {
		reqs := workload.NewGenerator(dist.Uniform, workload.ClusterLengths(), seed).Batch(numRequests)
		c := cluster.New(cluster.Config{
			NumGPUs: 1,
			Engine: core.Config{
				System:          core.PunicaSystem(),
				GPU:             hw.A100(),
				Model:           model,
				Rank:            models.DefaultLoRARank,
				PageSize:        ps,
				KVCapacityBytes: 10 << 30, // heavy pressure vs ~19 GB of demand
			},
		})
		res, err := c.Run(reqs)
		if err != nil {
			return nil, err
		}
		points = append(points, PageSizePoint{
			PageSize:   ps,
			Throughput: res.Throughput,
			Evictions:  res.Evictions,
		})
	}
	return points, nil
}

// FormatAblationPageSize renders the sweep.
func FormatAblationPageSize(points []PageSizePoint) string {
	t := newTable("page size", "throughput", "evictions")
	for _, p := range points {
		t.add(fmt.Sprint(p.PageSize),
			fmt.Sprintf("%.0f tok/s", p.Throughput),
			fmt.Sprint(p.Evictions))
	}
	return "Ablation — KvCache page size under memory pressure:\n" + t.String()
}

// PrefillLimitPoint is one row of the prefill-batch-limit ablation
// (§5: "we limit the prefill batch size to 1 ... to minimize latency
// penalty").
type PrefillLimitPoint struct {
	Limit      int
	Throughput float64
	P99TokenMs float64
}

// AblationPrefillLimit sweeps MaxPrefillPerStep.
func AblationPrefillLimit(numRequests int, seed int64, limits []int) ([]PrefillLimitPoint, error) {
	if numRequests <= 0 {
		numRequests = 200
	}
	if len(limits) == 0 {
		limits = []int{1, 2, 4, 8, 32}
	}
	var points []PrefillLimitPoint
	for _, lim := range limits {
		sys := core.PunicaSystem()
		sys.MaxPrefillPerStep = lim
		reqs := workload.NewGenerator(dist.Uniform, workload.ShareGPTLengths(), seed).Batch(numRequests)
		res, err := run1GPU(sys, reqs)
		if err != nil {
			return nil, err
		}
		points = append(points, PrefillLimitPoint{
			Limit:      lim,
			Throughput: res.Throughput,
			P99TokenMs: res.PerTokenLatency.Percentile(99) * 1000,
		})
	}
	return points, nil
}

// FormatAblationPrefillLimit renders the sweep.
func FormatAblationPrefillLimit(points []PrefillLimitPoint) string {
	t := newTable("prefill/step", "throughput", "p99 ms/token")
	for _, p := range points {
		t.add(fmt.Sprint(p.Limit),
			fmt.Sprintf("%.0f tok/s", p.Throughput),
			fmt.Sprintf("%.1f", p.P99TokenMs))
	}
	return "Ablation — prefill batch limit (§5):\n" + t.String()
}

// MigrationAblation compares the cluster experiment with and without
// periodic consolidation.
type MigrationAblation struct {
	WithMigrations    int64
	WithTailIdle      int
	WithoutTailIdle   int
	WithThroughput    float64
	WithoutThroughput float64
}

// AblationMigration runs a scaled-down Fig. 13 with and without
// consolidation and compares how many GPUs are idle (releasable) at the
// end of the ramp-down.
func AblationMigration(opts Fig13Options) (*MigrationAblation, error) {
	withRes, err := Fig13(opts)
	if err != nil {
		return nil, err
	}
	// Re-run without migration by driving the cluster directly.
	profile := opts.trapezoid()
	reqs := fig13Trace(opts)
	c := cluster.New(cluster.Config{
		NumGPUs: opts.NumGPUs,
		Engine: core.Config{
			System: core.PunicaSystem(),
			GPU:    hw.A100(),
			Model:  models.Llama2_7B(),
			Rank:   models.DefaultLoRARank,
		},
	})
	res, err := c.Run(reqs)
	if err != nil {
		return nil, err
	}
	span := res.Makespan
	if profile.Horizon() > span {
		span = profile.Horizon()
	}
	withoutIdle := 0
	lastBin := int(span/opts.BinWidth) - 1
	for i := range res.BatchSeries {
		bins := res.BatchSeries[i].Bin(span, opts.BinWidth)
		if lastBin >= 0 && lastBin < len(bins) && bins[lastBin] == 0 {
			withoutIdle++
		}
	}
	return &MigrationAblation{
		WithMigrations:    withRes.Migrations,
		WithTailIdle:      withRes.TailIdleGPUs,
		WithoutTailIdle:   withoutIdle,
		WithThroughput:    withRes.Throughput,
		WithoutThroughput: res.Throughput,
	}, nil
}

// FormatAblationMigration renders the comparison.
func FormatAblationMigration(r *MigrationAblation) string {
	return fmt.Sprintf(
		"Ablation — migration/consolidation:\n"+
			"  with    : %d migrations, %d idle GPUs at tail, %.0f tok/s\n"+
			"  without : %d idle GPUs at tail, %.0f tok/s\n",
		r.WithMigrations, r.WithTailIdle, r.WithThroughput,
		r.WithoutTailIdle, r.WithoutThroughput)
}
