package experiments

import (
	"fmt"
	"strings"
	"time"

	"punica/internal/cluster"
	"punica/internal/core"
	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/models"
	"punica/internal/workload"
)

// Fig13Options parameterises the cluster-deployment experiment. The
// defaults reproduce §7.3: 16 GPUs, one hour, Zipf-1.5 popularity, 7B
// model, Poisson arrivals whose rate ramps up and back down.
type Fig13Options struct {
	NumGPUs  int
	Peak     float64 // req/s at the plateau
	RampUp   time.Duration
	Hold     time.Duration
	RampDown time.Duration
	BinWidth time.Duration
	Seed     int64

	// ZipfAlpha overrides the Skewed popularity decay when > 1 (the
	// paper uses 1.5).
	ZipfAlpha float64
	// HotSetRotations > 1 splits the horizon into that many popularity
	// phases with disjoint hot sets (popularity drift): adapters go
	// cold mid-run and a fresh set heats up, stressing the adapter
	// stores and the autoscaler. 0 or 1 keeps the paper's static
	// population.
	HotSetRotations int

	// Policy selects the placement policy ("" = the paper's §5.1 rule).
	Policy string
}

// trapezoid returns the load profile the options describe.
func (o Fig13Options) trapezoid() workload.Trapezoid {
	return workload.Trapezoid{
		Peak: o.Peak, RampUp: o.RampUp, Hold: o.Hold, RampDown: o.RampDown,
	}
}

// fig13Trace builds the §7.3 request trace: Poisson arrivals over the
// trapezoidal profile with Zipf popularity — static by default, or a
// rotating hot set when HotSetRotations asks for drift.
func fig13Trace(opts Fig13Options) []workload.Request {
	profile := opts.trapezoid()
	horizon := profile.Horizon()
	gen := workload.NewGenerator(dist.Skewed, workload.ClusterLengths(), opts.Seed)
	numModels := dist.NumModels(dist.Skewed, int(opts.Peak*horizon.Seconds()/2))
	alpha := opts.ZipfAlpha
	if alpha <= 1 {
		alpha = dist.DefaultZipfAlpha
	}
	rotations := opts.HotSetRotations
	if rotations <= 1 {
		if alpha == dist.DefaultZipfAlpha {
			return gen.Poisson(profile.Rate, opts.Peak, horizon, numModels)
		}
		rotations = 1
	}
	phases := make([]dist.Phase, rotations)
	for i := range phases {
		phases[i] = dist.Phase{
			Length:    horizon / time.Duration(rotations),
			Kind:      dist.Zipf,
			Alpha:     alpha,
			NumModels: numModels,
			Offset:    i * numModels,
		}
	}
	return gen.PoissonMix(profile.Rate, opts.Peak, horizon, dist.Mix{Phases: phases})
}

// DefaultFig13Options returns the paper-scale configuration.
func DefaultFig13Options() Fig13Options {
	return Fig13Options{
		NumGPUs:  16,
		Peak:     11,
		RampUp:   25 * time.Minute,
		Hold:     10 * time.Minute,
		RampDown: 25 * time.Minute,
		BinWidth: time.Minute,
		Seed:     42,
	}
}

// Fig13Result carries the three panels of the figure plus summary
// statistics.
type Fig13Result struct {
	Opts    Fig13Options
	Horizon time.Duration

	// ReqRate, TokRate and BatchPerGPU are binned series: requests/s,
	// processed tokens/s, and per-GPU mean invocation batch size.
	ReqRate     []float64
	TokRate     []float64
	BatchPerGPU [][]float64

	Requests   int
	Finished   int64
	Migrations int64
	Evictions  int64
	Throughput float64
	// Latency and backpressure summaries (seconds / counts), carried for
	// the machine-readable bench output.
	P50TTFT       float64
	P99TTFT       float64
	AdapterStalls int64
	// PeakIdleGPUs counts GPUs that stayed idle during the plateau bin
	// with the highest load, and TailIdleGPUs during the final bin —
	// consolidation should free GPUs as load recedes.
	TailIdleGPUs int
}

// Fig13 runs the cluster deployment experiment.
func Fig13(opts Fig13Options) (*Fig13Result, error) {
	horizon := opts.trapezoid().Horizon()
	reqs := fig13Trace(opts)

	c := cluster.New(cluster.Config{
		NumGPUs: opts.NumGPUs,
		Engine: core.Config{
			System: core.PunicaSystem(),
			GPU:    hw.A100(),
			Model:  models.Llama2_7B(),
			Rank:   models.DefaultLoRARank,
		},
		MigrationInterval: 10 * time.Second,
		Policy:            opts.Policy,
	})
	res, err := c.Run(reqs)
	if err != nil {
		return nil, err
	}

	span := res.Makespan
	if horizon > span {
		span = horizon
	}
	out := &Fig13Result{
		Opts:       opts,
		Horizon:    span,
		ReqRate:    res.ArrivalSeries.RateBin(span, opts.BinWidth),
		TokRate:    res.ProcessedSeries.RateBin(span, opts.BinWidth),
		Requests:   len(reqs),
		Finished:   res.Finished,
		Migrations: res.Migrations,
		Evictions:  res.Evictions,
		Throughput: res.Throughput,

		P50TTFT:       res.TimeToFirstToken.Percentile(50),
		P99TTFT:       res.TimeToFirstToken.Percentile(99),
		AdapterStalls: res.AdapterStalls,
	}
	for i := range res.BatchSeries {
		out.BatchPerGPU = append(out.BatchPerGPU, res.BatchSeries[i].Bin(span, opts.BinWidth))
	}
	// Idle GPUs in the final bin: batch size 0.
	lastBin := len(out.ReqRate) - 1
	for _, series := range out.BatchPerGPU {
		if lastBin < len(series) && series[lastBin] == 0 {
			out.TailIdleGPUs++
		}
	}
	return out, nil
}

// FormatFig13 renders the three panels as aligned text columns, one row
// per bin.
func FormatFig13(r *Fig13Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13 — Cluster deployment: %d GPUs, %v horizon, Zipf-1.5, 7B\n",
		r.Opts.NumGPUs, r.Horizon.Round(time.Second))
	fmt.Fprintf(&b, "requests=%d finished=%d migrations=%d evictions=%d throughput=%.0f tok/s\n\n",
		r.Requests, r.Finished, r.Migrations, r.Evictions, r.Throughput)
	t := newTable("t(min)", "req/s", "tok/s", "busy GPUs", "mean batch (busy)")
	for i := range r.ReqRate {
		busy := 0
		sum := 0.0
		for _, g := range r.BatchPerGPU {
			if i < len(g) && g[i] > 0 {
				busy++
				sum += g[i]
			}
		}
		mean := 0.0
		if busy > 0 {
			mean = sum / float64(busy)
		}
		t.add(
			fmt.Sprintf("%.0f", (time.Duration(i)*r.Opts.BinWidth).Minutes()),
			fmt.Sprintf("%.1f", r.ReqRate[i]),
			fmt.Sprintf("%.0f", r.TokRate[i]),
			fmt.Sprint(busy),
			fmt.Sprintf("%.1f", mean),
		)
	}
	b.WriteString(t.String())
	return b.String()
}
