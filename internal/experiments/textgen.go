package experiments

import (
	"fmt"

	"punica/internal/baselines"
	"punica/internal/cluster"
	"punica/internal/core"
	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/models"
	"punica/internal/workload"
)

// TextGenOptions parameterises the §7.2 text-generation comparison.
type TextGenOptions struct {
	// NumRequests defaults to the paper's 1000.
	NumRequests int
	// Seed makes runs reproducible.
	Seed int64
}

func (o TextGenOptions) n() int {
	if o.NumRequests > 0 {
		return o.NumRequests
	}
	return 1000
}

// Fig11Row is one bar of Fig. 11: a system's generation throughput on one
// workload.
type Fig11Row struct {
	Model      string
	Dist       dist.Kind
	System     string
	Throughput float64 // generated tokens per second
	Wasted     int64
}

// Fig11 reproduces the single-GPU text-generation comparison: 1000
// ShareGPT-like requests, FCFS, max batch 32, five systems, four
// popularity distributions, on the 7B or 13B model (Testbed #1).
func Fig11(model models.Config, opts TextGenOptions) ([]Fig11Row, error) {
	var rows []Fig11Row
	for _, k := range dist.Kinds {
		for _, sys := range baselines.All() {
			res, err := runTextGen(model, sys, k, 1, opts)
			if err != nil {
				return nil, fmt.Errorf("fig11 %s/%s: %w", sys.Name, k, err)
			}
			rows = append(rows, Fig11Row{
				Model:      model.Name,
				Dist:       k,
				System:     sys.Name,
				Throughput: res.Throughput,
				Wasted:     res.WastedDecodes,
			})
		}
	}
	return rows, nil
}

// Fig12 reproduces the 70B tensor-parallel comparison on Testbed #2
// (8×A100-40G, NvSwitch): vLLM backbone-only vs Punica.
func Fig12(opts TextGenOptions) ([]Fig11Row, error) {
	model := models.Llama2_70B()
	systems := []core.SystemConfig{baselines.VLLM(), core.PunicaSystem()}
	var rows []Fig11Row
	for _, k := range dist.Kinds {
		for _, sys := range systems {
			res, err := runTextGen70B(model, sys, k, opts)
			if err != nil {
				return nil, fmt.Errorf("fig12 %s/%s: %w", sys.Name, k, err)
			}
			rows = append(rows, Fig11Row{
				Model:      model.Name,
				Dist:       k,
				System:     sys.Name,
				Throughput: res.Throughput,
			})
		}
	}
	return rows, nil
}

func runTextGen(model models.Config, sys core.SystemConfig, k dist.Kind, numGPUs int, opts TextGenOptions) (*cluster.Result, error) {
	gen := workload.NewGenerator(k, workload.ShareGPTLengths(), opts.Seed+int64(k)*1000+1)
	reqs := gen.Batch(opts.n())
	c := cluster.New(cluster.Config{
		NumGPUs: numGPUs,
		Engine: core.Config{
			System: sys,
			GPU:    hw.A100(),
			Model:  model,
			Rank:   models.DefaultLoRARank,
		},
	})
	return c.Run(reqs)
}

func runTextGen70B(model models.Config, sys core.SystemConfig, k dist.Kind, opts TextGenOptions) (*cluster.Result, error) {
	gen := workload.NewGenerator(k, workload.ShareGPTLengths(), opts.Seed+int64(k)*1000+1)
	reqs := gen.Batch(opts.n())
	c := cluster.New(cluster.Config{
		NumGPUs: 1, // one TP-8 group
		Engine: core.Config{
			System: sys,
			GPU:    hw.A100_40G(),
			Model:  model,
			Rank:   models.DefaultLoRARank,
			TP:     8,
		},
	})
	return c.Run(reqs)
}

// FormatFig11 renders the throughput comparison as a table with systems
// as rows and distributions as columns.
func FormatFig11(title string, rows []Fig11Row) string {
	t := newTable("system", "Distinct", "Uniform", "Skewed", "Identical")
	systems := []string{}
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.System] {
			seen[r.System] = true
			systems = append(systems, r.System)
		}
	}
	for _, sys := range systems {
		row := []string{sys}
		for _, k := range dist.Kinds {
			for _, r := range rows {
				if r.System == sys && r.Dist == k {
					row = append(row, fmt.Sprintf("%.0f tok/s", r.Throughput))
				}
			}
		}
		t.add(row...)
	}
	return title + "\n" + t.String()
}

// HeadlineResult captures the paper's abstract-level claims: "Punica
// achieves 12x higher throughput ... while only adding 2ms latency per
// token".
type HeadlineResult struct {
	// MultiLoRASpeedup is Punica's worst-case multi-LoRA throughput
	// over the best baseline's on the same workloads (Distinct,
	// Uniform, Skewed).
	MultiLoRASpeedup float64
	// PunicaMinThroughput is Punica's lowest multi-LoRA throughput.
	PunicaMinThroughput float64
	// BestBaselineThroughput is the strongest baseline multi-LoRA
	// number.
	BestBaselineThroughput float64
	// AddedMsPerToken is the per-token latency Punica adds over the
	// backbone-only vLLM on the Identical workload.
	AddedMsPerToken float64
}

// Headline derives the abstract's claims from Fig. 11 rows (7B).
func Headline(rows []Fig11Row) HeadlineResult {
	var res HeadlineResult
	var vllmIdentical, punicaIdentical float64
	for _, r := range rows {
		multi := r.Dist != dist.Identical
		switch {
		case r.System == "Punica" && multi:
			if res.PunicaMinThroughput == 0 || r.Throughput < res.PunicaMinThroughput {
				res.PunicaMinThroughput = r.Throughput
			}
		case r.System != "Punica" && multi:
			if r.Throughput > res.BestBaselineThroughput {
				res.BestBaselineThroughput = r.Throughput
			}
		case r.System == "Punica" && !multi:
			punicaIdentical = r.Throughput
		case r.System == "vLLM (backbone-only)" && !multi:
			vllmIdentical = r.Throughput
		}
	}
	if res.BestBaselineThroughput > 0 {
		res.MultiLoRASpeedup = res.PunicaMinThroughput / res.BestBaselineThroughput
	}
	if punicaIdentical > 0 && vllmIdentical > 0 {
		// Per-token step time difference at max batch: batch/throughput.
		batch := float64(core.DefaultMaxBatch)
		res.AddedMsPerToken = (batch/punicaIdentical - batch/vllmIdentical) * 1000
	}
	return res
}

// FormatHeadline renders the headline claims.
func FormatHeadline(h HeadlineResult) string {
	return fmt.Sprintf(
		"Headline — multi-LoRA speedup: %.1fx (Punica %.0f tok/s vs best baseline %.0f tok/s)\n"+
			"Headline — added latency vs backbone-only serving: %.2f ms per token per step\n",
		h.MultiLoRASpeedup, h.PunicaMinThroughput, h.BestBaselineThroughput, h.AddedMsPerToken)
}
