package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"punica/internal/hw"
	"punica/internal/models"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return rows
}

func TestFig1CSV(t *testing.T) {
	points := Fig1(hw.A100(), models.Llama2_7B())
	var b strings.Builder
	if err := Fig1CSV(&b, points); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, b.String())
	if len(rows) != len(points)+1 {
		t.Fatalf("%d rows, want %d", len(rows), len(points)+1)
	}
	if rows[0][0] != "seq_len" || len(rows[1]) != 4 {
		t.Fatalf("header/shape wrong: %v", rows[0])
	}
}

func TestMicrobenchCSVs(t *testing.T) {
	var b strings.Builder
	if err := Fig7CSV(&b, Fig7()); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, b.String()); rows[0][2] != "intensity" {
		t.Fatal("fig7 header wrong")
	}
	b.Reset()
	if err := Fig8CSV(&b, Fig8()); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, b.String()); len(rows[0]) != 7 {
		t.Fatal("fig8 header wrong")
	}
	b.Reset()
	if err := Fig9CSV(&b, Fig9()); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, b.String()); rows[0][0] != "rank" {
		t.Fatal("fig9 header wrong")
	}
	b.Reset()
	if err := Fig10CSV(&b, Fig10()); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, b.String()); rows[0][0] != "model" {
		t.Fatal("fig10 header wrong")
	}
}

func TestFig11CSV(t *testing.T) {
	rows11, err := Fig11(models.Llama2_7B(), TextGenOptions{NumRequests: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Fig11CSV(&b, rows11); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, b.String())
	if len(rows) != 21 { // header + 5 systems x 4 dists
		t.Fatalf("%d rows", len(rows))
	}
}

func TestFig13CSV(t *testing.T) {
	res, err := Fig13(Fig13Options{
		NumGPUs: 2, Peak: 2,
		RampUp: time.Minute, Hold: 30 * time.Second, RampDown: time.Minute,
		BinWidth: 30 * time.Second, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Fig13CSV(&b, res); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, b.String())
	if len(rows) < 3 {
		t.Fatalf("too few rows: %d", len(rows))
	}
	// header: minute,req_per_s,tok_per_s,busy_gpus + 2 GPU columns.
	if len(rows[0]) != 6 {
		t.Fatalf("header has %d cols, want 6: %v", len(rows[0]), rows[0])
	}
}
