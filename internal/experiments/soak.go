// Soak scenario: hours of simulated live traffic against one elastic,
// faulty cluster — diurnal background with seeded flash crowds, a
// churning tenant population, popularity drift across rotating hot
// sets, autoscaling between half and full capacity, and random GPU
// faults — with the fairness layer on. It is the everything-at-once
// stress the individual experiments isolate; the CI smoke runs a
// minutes-long horizon under -race and punica_invariants.

package experiments

import (
	"fmt"
	"io"
	"time"

	"punica/internal/cluster"
	"punica/internal/core"
	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/models"
	"punica/internal/workload"
)

// SoakOptions configures the soak run.
type SoakOptions struct {
	// Horizon is the simulated arrival window (default 2h).
	Horizon time.Duration
	// NumGPUs is the provisioned capacity ceiling (default 8); the
	// autoscaler floats the fleet between half of it and all of it.
	NumGPUs  int
	MaxBatch int
	// Base is the background request rate (default 6 req/s), swelling
	// ±40% over a 1h diurnal period.
	Base float64
	// NumModels sizes each popularity phase (default 24); the hot set
	// rotates by NumModels/2 each quarter of the horizon.
	NumModels int
	// StoreAdapters caps each GPU's adapter store (default 8).
	StoreAdapters int
	// FaultRate is GPU faults per GPU-hour (default 0.5).
	FaultRate float64
	// Fairness toggles the VTC admission layer (default on — use
	// NoFairness to disable).
	NoFairness bool
	Seed       int64
}

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Horizon <= 0 {
		o.Horizon = 2 * time.Hour
	}
	if o.NumGPUs <= 0 {
		o.NumGPUs = 8
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.Base <= 0 {
		o.Base = 6
	}
	if o.NumModels <= 0 {
		o.NumModels = 24
	}
	if o.StoreAdapters <= 0 {
		o.StoreAdapters = 8
	}
	if o.FaultRate <= 0 {
		o.FaultRate = 0.5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Spec composes the soak's traffic: diurnal base, seeded flash crowds
// (one per 20 minutes of horizon, at least two), a churning tenant
// population, and a four-phase popularity drift whose hot set rotates.
func (o SoakOptions) Spec() workload.TrafficSpec {
	quarter := o.Horizon / 4
	shift := o.NumModels / 2
	var phases []dist.Phase
	for i := 0; i < 4; i++ {
		phases = append(phases, dist.Phase{
			Length: quarter, Kind: dist.Skewed,
			NumModels: o.NumModels, Offset: i * shift,
		})
	}
	spikes := int(o.Horizon / (20 * time.Minute))
	if spikes < 2 {
		spikes = 2
	}
	return workload.TrafficSpec{
		Horizon:       o.Horizon,
		Base:          o.Base,
		DiurnalAmp:    0.4,
		DiurnalPeriod: time.Hour,
		RandomSpikes: workload.RandomSpikes{
			N: spikes, PeakMin: o.Base, PeakMax: 4 * o.Base,
			Ramp: 30 * time.Second, Hold: 2 * time.Minute, Decay: time.Minute,
		},
		Tenants: workload.TenantSpec{
			Population: 1 << 20, PerModel: 4, Churn: o.Horizon / 16,
		},
		Mix:  dist.Mix{Phases: phases},
		Seed: o.Seed,
	}
}

// SoakResult summarizes the run.
type SoakResult struct {
	Opts     SoakOptions
	Requests int
	Finished int64

	Throughput float64
	Makespan   time.Duration
	P50        float64
	P99        float64

	Migrations    int64
	Evictions     int64
	AdapterStalls int64
	QueuePeak     int

	TenantCount  int
	StallSkew    float64
	JainFairness float64

	Digest string
}

// Soak runs the scenario.
func Soak(opts SoakOptions) (*SoakResult, error) {
	o := opts.withDefaults()
	gen := workload.NewGenerator(dist.Skewed, workload.ShareGPTLengths(), o.Seed)
	trace := gen.Traffic(o.Spec())

	sys := core.PunicaSystem()
	sys.MaxBatch = o.MaxBatch
	model := models.Llama2_7B()
	faults := cluster.RandomFaultPlan(o.Seed, o.NumGPUs, o.Horizon, o.FaultRate)
	cfg := cluster.Config{
		NumGPUs: o.NumGPUs,
		Engine: core.Config{
			System:         sys,
			GPU:            hw.A100(),
			Model:          model,
			Rank:           models.DefaultLoRARank,
			LoRAStoreBytes: int64(o.StoreAdapters) * model.LoRABytes(models.DefaultLoRARank),
		},
		MigrationInterval: 30 * time.Second,
		Autoscale: &cluster.AutoscaleConfig{
			MinGPUs: (o.NumGPUs + 1) / 2, MaxGPUs: o.NumGPUs,
			ProvisionDelay: 30 * time.Second, CheckInterval: 30 * time.Second,
		},
		Faults:   &faults,
		Fairness: !o.NoFairness,
	}
	c := cluster.New(cfg)
	res, err := c.Run(trace)
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	if res.Finished != int64(len(trace)) {
		return nil, fmt.Errorf("soak: finished %d of %d trace requests", res.Finished, len(trace))
	}
	return &SoakResult{
		Opts:          o,
		Requests:      len(trace),
		Finished:      res.Finished,
		Throughput:    res.Throughput,
		Makespan:      res.Makespan,
		P50:           res.EndToEnd.Percentile(50),
		P99:           res.EndToEnd.Percentile(99),
		Migrations:    res.Migrations,
		Evictions:     res.Evictions,
		AdapterStalls: res.AdapterStalls,
		QueuePeak:     res.QueuePeak,
		TenantCount:   len(res.Tenants),
		StallSkew:     res.StallSkew,
		JainFairness:  res.JainFairness,
		Digest:        trafficDigest(res),
	}, nil
}

// FormatSoak renders the result.
func FormatSoak(r *SoakResult) string {
	out := fmt.Sprintf("Soak — %s of live traffic, %d GPUs (autoscaled ≥%d), %.1f faults/GPU-hour, fairness %s:\n",
		r.Opts.Horizon, r.Opts.NumGPUs, (r.Opts.NumGPUs+1)/2, r.Opts.FaultRate, onOff(!r.Opts.NoFairness))
	t := newTable("requests", "finished", "tok/s", "makespan", "p50", "p99", "migrations", "evictions", "stalls", "queue peak", "tenants", "stall skew", "jain", "digest")
	t.add(
		fmt.Sprint(r.Requests),
		fmt.Sprint(r.Finished),
		fmt.Sprintf("%.0f", r.Throughput),
		fmt.Sprintf("%.0fs", r.Makespan.Seconds()),
		fmt.Sprintf("%.2fs", r.P50),
		fmt.Sprintf("%.2fs", r.P99),
		fmt.Sprint(r.Migrations),
		fmt.Sprint(r.Evictions),
		fmt.Sprint(r.AdapterStalls),
		fmt.Sprint(r.QueuePeak),
		fmt.Sprint(r.TenantCount),
		fmt.Sprintf("%.1f", r.StallSkew),
		fmt.Sprintf("%.3f", r.JainFairness),
		r.Digest)
	return out + t.String()
}

// SoakCSV writes the single-row summary as CSV.
func SoakCSV(out io.Writer, r *SoakResult) error {
	_, err := fmt.Fprintf(out,
		"requests,finished,throughput_tok_s,makespan_s,p50_s,p99_s,migrations,evictions,adapter_stalls,queue_peak,tenants,stall_skew,jain,digest\n"+
			"%d,%d,%.1f,%.1f,%.3f,%.3f,%d,%d,%d,%d,%d,%.2f,%.4f,%s\n",
		r.Requests, r.Finished, r.Throughput, r.Makespan.Seconds(), r.P50, r.P99,
		r.Migrations, r.Evictions, r.AdapterStalls, r.QueuePeak, r.TenantCount,
		r.StallSkew, r.JainFairness, r.Digest)
	return err
}

// SoakRecords flattens the result into bench records.
func SoakRecords(r *SoakResult) []BenchRecord {
	return []BenchRecord{{
		Experiment: "soak",
		Name:       fmt.Sprintf("%s/%dgpus", r.Opts.Horizon, r.Opts.NumGPUs),
		Metrics: map[string]float64{
			"throughput_tok_s": r.Throughput,
			"p50_s":            r.P50,
			"p99_s":            r.P99,
			"adapter_stalls":   float64(r.AdapterStalls),
			"queue_peak":       float64(r.QueuePeak),
			"tenants":          float64(r.TenantCount),
			"stall_skew":       r.StallSkew,
			"jain":             r.JainFairness,
			"migrations":       float64(r.Migrations),
			"evictions":        float64(r.Evictions),
		},
	}}
}
