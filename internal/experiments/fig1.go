package experiments

import (
	"fmt"
	"time"

	"punica/internal/hw"
	"punica/internal/layer"
	"punica/internal/models"
)

// Fig1Point is one cell of Fig. 1: prefill and decode latency of the 7B
// model at a given sequence length and batch size.
type Fig1Point struct {
	SeqLen  int
	Batch   int
	Prefill time.Duration
	Decode  time.Duration
}

// Fig1SeqLens are the sequence lengths the figure sweeps.
var Fig1SeqLens = []int{128, 512, 1024, 1536, 2048}

// Fig1 reproduces "Batching effects in Prefill stage and in Decode
// stage": for each (sequence length, batch size), the latency of a
// batched prefill invocation over batch prompts of that length, and of a
// decode invocation over batch sequences at that context length.
func Fig1(gpu hw.GPUSpec, model models.Config) []Fig1Point {
	costs := layer.New(gpu, model)
	var points []Fig1Point
	for _, seqLen := range Fig1SeqLens {
		for _, batch := range Batches1to32 {
			prefillLens := make([]int, batch)
			contexts := make([]int, batch)
			for i := 0; i < batch; i++ {
				prefillLens[i] = seqLen
				contexts[i] = seqLen
			}
			points = append(points, Fig1Point{
				SeqLen:  seqLen,
				Batch:   batch,
				Prefill: costs.InvokeTime(layer.Invocation{PrefillLens: prefillLens}),
				Decode:  costs.InvokeTime(layer.Invocation{DecodeContexts: contexts}),
			})
		}
	}
	return points
}

// FormatFig1 renders the sweep as two text tables.
func FormatFig1(points []Fig1Point) string {
	prefill := newTable(append([]string{"len\\batch"}, batchHeaders()...)...)
	decode := newTable(append([]string{"len\\batch"}, batchHeaders()...)...)
	for _, seqLen := range Fig1SeqLens {
		prow := []string{fmt.Sprint(seqLen)}
		drow := []string{fmt.Sprint(seqLen)}
		for _, p := range points {
			if p.SeqLen != seqLen {
				continue
			}
			prow = append(prow, ms(p.Prefill))
			drow = append(drow, ms(p.Decode))
		}
		prefill.add(prow...)
		decode.add(drow...)
	}
	return "Figure 1 — Prefill latency (7B):\n" + prefill.String() +
		"\nFigure 1 — Decode latency (7B):\n" + decode.String()
}

func batchHeaders() []string {
	var h []string
	for _, b := range Batches1to32 {
		h = append(h, fmt.Sprintf("b=%d", b))
	}
	return h
}
