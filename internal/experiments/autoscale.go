package experiments

import (
	"fmt"
	"time"

	"punica/internal/cluster"
	"punica/internal/core"
	"punica/internal/hw"
	"punica/internal/models"
	"punica/internal/workload"
)

// AutoscaleResult compares a fixed-size deployment against §5.1 elastic
// provisioning on the same trapezoidal load.
type AutoscaleResult struct {
	FixedGPUSeconds   float64
	ElasticGPUSeconds float64
	Savings           float64 // fraction of GPU-time saved
	Provisions        int64
	Releases          int64
	FixedP99TTFT      float64 // seconds
	ElasticP99TTFT    float64
	FixedThroughput   float64
	ElasticThroughput float64
}

// Autoscale runs the Fig. 13 workload twice: once on a fixed cluster of
// opts.NumGPUs, once with elastic provisioning between 1 and
// opts.NumGPUs GPUs (40 s provision delay). The §5.1 design intent —
// "easier decisions to scale up/down the GPU cluster" — becomes
// measurable as GPU-seconds saved at bounded latency cost.
func Autoscale(opts Fig13Options) (*AutoscaleResult, error) {
	trace := func() []workload.Request { return fig13Trace(opts) }
	engine := core.Config{
		System: core.PunicaSystem(),
		GPU:    hw.A100(),
		Model:  models.Llama2_7B(),
		Rank:   models.DefaultLoRARank,
	}

	fixed := cluster.New(cluster.Config{
		NumGPUs:           opts.NumGPUs,
		Engine:            engine,
		MigrationInterval: 10 * time.Second,
		Policy:            opts.Policy,
	})
	fixedRes, err := fixed.Run(trace())
	if err != nil {
		return nil, fmt.Errorf("fixed run: %w", err)
	}

	elastic := cluster.New(cluster.Config{
		NumGPUs:           opts.NumGPUs,
		Engine:            engine,
		MigrationInterval: 10 * time.Second,
		Policy:            opts.Policy,
		Autoscale: &cluster.AutoscaleConfig{
			MinGPUs:        1,
			MaxGPUs:        opts.NumGPUs,
			ProvisionDelay: 40 * time.Second,
			CheckInterval:  10 * time.Second,
		},
	})
	elasticRes, err := elastic.Run(trace())
	if err != nil {
		return nil, fmt.Errorf("elastic run: %w", err)
	}
	as := elastic.AutoscaleStats()

	fixedSecs := float64(opts.NumGPUs) * fixedRes.Makespan.Seconds()
	out := &AutoscaleResult{
		FixedGPUSeconds:   fixedSecs,
		ElasticGPUSeconds: as.GPUSeconds,
		Provisions:        as.Provisions,
		Releases:          as.Releases,
		FixedP99TTFT:      fixedRes.TimeToFirstToken.Percentile(99),
		ElasticP99TTFT:    elasticRes.TimeToFirstToken.Percentile(99),
		FixedThroughput:   fixedRes.Throughput,
		ElasticThroughput: elasticRes.Throughput,
	}
	if fixedSecs > 0 {
		out.Savings = 1 - out.ElasticGPUSeconds/fixedSecs
	}
	return out, nil
}

// FormatAutoscale renders the comparison.
func FormatAutoscale(r *AutoscaleResult) string {
	return fmt.Sprintf(
		"Extension — §5.1 cloud autoscaling (trapezoidal load):\n"+
			"  fixed   : %.0f GPU-seconds, p99 TTFT %.2fs, %.0f tok/s\n"+
			"  elastic : %.0f GPU-seconds (%.0f%% saved), p99 TTFT %.2fs, %.0f tok/s\n"+
			"  scaling : %d provisions, %d releases\n",
		r.FixedGPUSeconds, r.FixedP99TTFT, r.FixedThroughput,
		r.ElasticGPUSeconds, 100*r.Savings, r.ElasticP99TTFT, r.ElasticThroughput,
		r.Provisions, r.Releases)
}
