package experiments

import "testing"

// TestColdStartGain pins the headline acceptance claim: on the default
// sweep, pre-distribution + overlap cut the long-tail cold-start p99 at
// least 3x versus the naive tiered baseline over the same seeded trace.
func TestColdStartGain(t *testing.T) {
	points, err := ColdStart(ColdStartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("sweep rows = %d, want naive + overlap + 3 budgets", len(points))
	}
	if points[0].Name != "naive" || points[1].Name != "overlap" {
		t.Fatalf("row order: %s, %s", points[0].Name, points[1].Name)
	}
	for _, p := range points {
		if p.ColdStarts == 0 {
			t.Fatalf("%s: no cold starts on a cold tiered fleet", p.Name)
		}
	}
	naive := points[0]
	for _, p := range points[2:] {
		if p.PreDistBytes == 0 {
			t.Fatalf("%s: daemon moved nothing", p.Name)
		}
		if p.RAMHitRate <= naive.RAMHitRate {
			t.Fatalf("%s: RAM hit rate %.2f did not beat naive %.2f",
				p.Name, p.RAMHitRate, naive.RAMHitRate)
		}
	}
	if gain := ColdStartGain(points); gain < 3 {
		t.Fatalf("cold-start p99 gain %.2fx, want >= 3x (naive p99 %.1fms)",
			gain, naive.ColdP99*1e3)
	}
	// Determinism: identical knobs replay to identical digests.
	again, err := ColdStart(ColdStartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if points[i].Digest != again[i].Digest {
			t.Fatalf("%s: digest drifted across identical runs", points[i].Name)
		}
	}
}
