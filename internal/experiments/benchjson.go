package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// BenchRecord is one machine-readable benchmark result row: experiment
// identifier, a row label, and a flat metric map. punica-bench -json
// emits these so BENCH_*.json files can accumulate across runs and be
// diffed or plotted without scraping text tables.
type BenchRecord struct {
	Experiment string             `json:"experiment"`
	Name       string             `json:"name"`
	Metrics    map[string]float64 `json:"metrics"`
}

// WriteBenchJSON writes records as indented JSON.
func WriteBenchJSON(w io.Writer, recs []BenchRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Results []BenchRecord `json:"results"`
	}{Results: recs})
}

// ReadBenchJSON parses a file WriteBenchJSON produced.
func ReadBenchJSON(r io.Reader) ([]BenchRecord, error) {
	var doc struct {
		Results []BenchRecord `json:"results"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("bench json: %w", err)
	}
	return doc.Results, nil
}

// CompareBaseline checks current records against a committed baseline:
// for every (experiment, name) pair present in both, the named metric
// must not have dropped by more than threshold (a fraction: 0.20 = 20%).
// Baseline rows with no current counterpart are ignored — sweep grids
// may shrink in quick runs; a baseline metric of zero never gates.
// Returns one error line per regression, nil when everything holds.
func CompareBaseline(baseline, current []BenchRecord, metric string, threshold float64) []error {
	base := make(map[string]float64, len(baseline))
	for _, r := range baseline {
		if v, ok := r.Metrics[metric]; ok && v > 0 {
			base[r.Experiment+"/"+r.Name] = v
		}
	}
	var errs []error
	for _, r := range current {
		key := r.Experiment + "/" + r.Name
		want, ok := base[key]
		if !ok {
			continue
		}
		got, ok := r.Metrics[metric]
		if !ok {
			errs = append(errs, fmt.Errorf("%s: baseline has %s but current run lacks it", key, metric))
			continue
		}
		if got < want*(1-threshold) {
			errs = append(errs, fmt.Errorf("%s: %s regressed %.0f%%: baseline %.0f, current %.0f (threshold %.0f%%)",
				key, metric, 100*(1-got/want), want, got, 100*threshold))
		}
	}
	return errs
}

// Fig11Records flattens a system-comparison table (fig11/fig12) into
// bench records, one per (distribution, system) bar.
func Fig11Records(experiment string, rows []Fig11Row) []BenchRecord {
	var recs []BenchRecord
	for _, r := range rows {
		recs = append(recs, BenchRecord{
			Experiment: experiment,
			Name:       fmt.Sprintf("%s/%s/%s", r.Model, r.Dist, r.System),
			Metrics: map[string]float64{
				"throughput_tok_s": r.Throughput,
				"wasted_decodes":   float64(r.Wasted),
			},
		})
	}
	return recs
}

// Fig13Records summarises the cluster-deployment run as one record.
func Fig13Records(r *Fig13Result) []BenchRecord {
	return []BenchRecord{{
		Experiment: "fig13",
		Name:       fmt.Sprintf("%dgpus/peak%.0f", r.Opts.NumGPUs, r.Opts.Peak),
		Metrics: map[string]float64{
			"throughput_tok_s": r.Throughput,
			"p50_ttft_s":       r.P50TTFT,
			"p99_ttft_s":       r.P99TTFT,
			"adapter_stalls":   float64(r.AdapterStalls),
			"evictions":        float64(r.Evictions),
			"migrations":       float64(r.Migrations),
			"finished":         float64(r.Finished),
			"requests":         float64(r.Requests),
		},
	}}
}

// PolicyRecords flattens the policy comparison, one record per
// (workload, policy) cell.
func PolicyRecords(points []PolicyComparePoint) []BenchRecord {
	var recs []BenchRecord
	for _, p := range points {
		recs = append(recs, BenchRecord{
			Experiment: "policies",
			Name:       fmt.Sprintf("%s/%s", p.Workload, p.Policy),
			Metrics: map[string]float64{
				"throughput_tok_s": p.Throughput,
				"busy_frac":        p.BusyFrac,
				"util_spread":      p.UtilSpread,
				"adapter_stalls":   float64(p.AdapterStalls),
				"adapter_evict":    float64(p.AdapterEvictions),
				"migrations":       float64(p.Migrations),
				"queue_peak":       float64(p.QueuePeak),
			},
		})
	}
	return recs
}

// FaultsRecords flattens the availability sweep, one record per
// (policy, fault-rate) cell.
func FaultsRecords(points []FaultsPoint) []BenchRecord {
	var recs []BenchRecord
	for _, p := range points {
		recs = append(recs, BenchRecord{
			Experiment: "faults",
			Name:       fmt.Sprintf("%s/%.0f-per-gpu-hour", p.Policy, p.FaultRate),
			Metrics: map[string]float64{
				"throughput_tok_s":          p.Throughput,
				"throughput_frac":           p.ThroughputFrac,
				"p50_ttft_s":                p.P50TTFT,
				"p99_ttft_s":                p.P99TTFT,
				"p99_ttft_delta_s":          p.P99TTFTDelta,
				"gpu_failures":              float64(p.Failures),
				"gpu_replacements":          float64(p.Replacements),
				"gpu_stalls":                float64(p.Stalls),
				"recovered_requests":        float64(p.Recovered),
				"recomputed_prefill_tokens": float64(p.RecomputedPrefillTokens),
				"recovery_p99_s":            p.RecoveryP99,
			},
		})
	}
	return recs
}
