package experiments

import (
	"encoding/csv"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"strconv"
	"time"

	"punica/internal/cluster"
	"punica/internal/core"
	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/models"
	"punica/internal/workload"
)

// ScaleOptions parameterises the control-plane scale harness: a sweep of
// fleet sizes × trace lengths measuring the simulator's own cost — wall
// clock, events per second, allocations per event — rather than any
// serving metric. The motivation is CaraServe's observation that
// CPU-side scheduling only wins if the control plane is cheap: this
// harness is the regression meter that keeps it cheap as the codebase
// grows.
//
// Requests are deliberately short (small prompt/output) so the sweep
// stresses scheduling, admission, event dispatch and metrics — the
// per-request fixed costs — instead of simulated token arithmetic.
type ScaleOptions struct {
	// GPUs and Requests define the sweep grid (every pair runs).
	GPUs     []int
	Requests []int
	// Kind is the adapter-popularity distribution (Skewed by default —
	// the paper's hardest placement case).
	Kind dist.Kind
	Seed int64

	// PromptLen/OutputLen fix each request's shape (defaults 32/8).
	PromptLen int
	OutputLen int
	// RatePerGPU is the Poisson arrival rate per fleet GPU (req/s);
	// total rate scales with the fleet so every cell operates near the
	// same per-GPU load.
	RatePerGPU float64
	// MaxBatch caps the invocation batch (§5.1 default 32).
	MaxBatch int

	// Cells shards the fleet for the epoch-barrier parallel engine:
	// 0 auto-derives from the fleet size alone (GPUs/32, clamped to
	// [1,16]) — never from Workers, so sweeping -parallel cannot change
	// the simulation; 1 forces the classic single-cluster path.
	Cells int
	// Workers is the goroutine budget for advancing cells (≤1 runs the
	// sequential reference interleaving). Ignored when the point runs
	// single-cell.
	Workers int
	// EpochDelta overrides the barrier interval Δ (0 = sim.DefaultEpoch).
	EpochDelta time.Duration
}

// autoCells derives the shard count from fleet size only: one cell per
// 32 GPUs, clamped to [1,16]. 16 GPUs → 1 cell (classic path);
// 256 GPUs → 8 cells.
func autoCells(gpus int) int {
	c := gpus / 32
	if c < 1 {
		c = 1
	}
	if c > 16 {
		c = 16
	}
	return c
}

// DefaultScaleOptions returns the standard grid: 16→256 GPUs crossed
// with 10k→1M requests. The full grid is minutes of wall time on a
// laptop after the hot-path work this harness exists to guard; use
// punica-bench -scale-gpus/-scale-requests to run single cells.
func DefaultScaleOptions() ScaleOptions {
	return ScaleOptions{
		GPUs:       []int{16, 64, 256},
		Requests:   []int{10_000, 100_000, 1_000_000},
		Kind:       dist.Skewed,
		Seed:       42,
		PromptLen:  32,
		OutputLen:  8,
		RatePerGPU: 25,
		MaxBatch:   core.DefaultMaxBatch,
	}
}

func (o ScaleOptions) withDefaults() ScaleOptions {
	d := DefaultScaleOptions()
	if len(o.GPUs) == 0 {
		o.GPUs = d.GPUs
	}
	if len(o.Requests) == 0 {
		o.Requests = d.Requests
	}
	if o.PromptLen <= 0 {
		o.PromptLen = d.PromptLen
	}
	if o.OutputLen <= 0 {
		o.OutputLen = d.OutputLen
	}
	if o.RatePerGPU <= 0 {
		o.RatePerGPU = d.RatePerGPU
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = d.MaxBatch
	}
	return o
}

// ScalePoint is one (GPUs, requests) cell of the sweep.
type ScalePoint struct {
	GPUs     int
	Requests int

	// WallSeconds is real elapsed time for the cluster run (trace
	// generation excluded); Events the discrete-event count executed;
	// EventsPerSec their ratio.
	WallSeconds  float64
	Events       int64
	EventsPerSec float64

	// AllocsPerEvent and BytesPerEvent are heap allocations (count and
	// bytes) per executed event, measured via runtime.MemStats deltas
	// around the run — the allocation-flatness headline.
	AllocsPerEvent float64
	BytesPerEvent  float64

	// Simulated outcomes, to pin that the run did real work.
	SimMakespan time.Duration
	Finished    int64
	Throughput  float64
	QueuePeak   int

	// Cells/Workers record the sharding this point ran with (1/1 for
	// the classic path); Epochs, BarrierStalls and Spills come from the
	// epoch-barrier executor. Digest hashes the simulated outcomes only
	// (never wall time), so any two runs of the same point must agree
	// byte-for-byte whatever the worker count.
	Cells         int
	Workers       int
	Epochs        int64
	BarrierStalls int64
	Spills        int64
	Digest        string

	// PerCell breaks the run down by simulation cell (nil for the
	// classic path).
	PerCell []ScaleCellDetail
}

// ScaleCellDetail is one cell's share of a sharded scale point.
type ScaleCellDetail struct {
	Cell          int
	GPUs          int
	Requests      int
	Events        int64
	EventsPerSec  float64 // cell events over the point's wall time
	SpillsIn      int64
	SpillsOut     int64
	BarrierStalls int64
}

// scaleDigest fingerprints a run's simulated outcomes. Wall-clock and
// allocation figures are deliberately excluded: the digest is the
// determinism witness that -parallel changes speed and nothing else.
func scaleDigest(events int64, res *cluster.Result) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "events=%d finished=%d decode=%d prefill=%d makespan=%d peak=%d spills=%d ttft{%s} e2e{%s}",
		events, res.Finished, res.DecodeTokens, res.PrefillTokens,
		int64(res.Makespan), res.QueuePeak, res.Spills,
		res.TimeToFirstToken.Summary(), res.EndToEnd.Summary())
	return fmt.Sprintf("%016x", h.Sum64())
}

// scaleTrace builds the cell's deterministic short-request trace.
func (o ScaleOptions) scaleTrace(gpus, n int) []workload.Request {
	gen := workload.NewGenerator(o.Kind, workload.Constant(o.PromptLen, o.OutputLen), o.Seed)
	rate := o.RatePerGPU * float64(gpus)
	horizon := time.Duration(float64(n) / rate * float64(time.Second))
	return gen.Poisson(func(time.Duration) float64 { return rate }, rate, horizon,
		dist.NumModels(o.Kind, n))
}

// ScaleCell runs one cell of the sweep and measures it.
func ScaleCell(o ScaleOptions, gpus, requests int) (ScalePoint, error) {
	return scaleCell(o.withDefaults(), gpus, requests)
}

// scaleCell runs one cell; o must already carry defaults.
func scaleCell(o ScaleOptions, gpus, requests int) (ScalePoint, error) {
	sys := core.PunicaSystem()
	sys.MaxBatch = o.MaxBatch
	trace := o.scaleTrace(gpus, requests)
	base := cluster.Config{
		NumGPUs: gpus,
		Engine: core.Config{
			System: sys,
			GPU:    hw.A100(),
			Model:  models.Llama2_7B(),
			Rank:   models.DefaultLoRARank,
		},
		MigrationInterval: 10 * time.Second,
	}
	cells := o.Cells
	if cells == 0 {
		cells = autoCells(gpus)
	}
	workers := o.Workers
	if workers < 1 {
		workers = 1
	}

	var (
		single *cluster.Cluster
		multi  *cluster.MultiCluster
	)
	if cells > 1 {
		multi = cluster.NewMulti(cluster.CellsConfig{
			Base:       base,
			Cells:      cells,
			Workers:    workers,
			EpochDelta: o.EpochDelta,
		})
	} else {
		single = cluster.New(base)
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var (
		res *cluster.Result
		err error
	)
	if multi != nil {
		res, err = multi.Run(trace)
	} else {
		res, err = single.Run(trace)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("scale %dgpus/%dreqs: %w", gpus, requests, err)
	}

	var events int64
	if multi != nil {
		events = multi.Executed()
	} else {
		events = single.Clock().Executed()
	}
	p := ScalePoint{
		GPUs:        gpus,
		Requests:    requests,
		WallSeconds: wall.Seconds(),
		Events:      events,
		SimMakespan: res.Makespan,
		Finished:    res.Finished,
		Throughput:  res.Throughput,
		QueuePeak:   res.QueuePeak,
		Cells:       cells,
		Workers:     workers,
		Digest:      scaleDigest(events, res),
	}
	if multi != nil {
		p.Epochs = res.Epochs
		p.BarrierStalls = res.BarrierStalls
		p.Spills = res.Spills
		for i, st := range multi.CellStats() {
			d := ScaleCellDetail{
				Cell:          i,
				GPUs:          st.GPUs,
				Requests:      st.Requests,
				Events:        st.Events,
				SpillsIn:      st.SpillsIn,
				SpillsOut:     st.SpillsOut,
				BarrierStalls: st.BarrierStalls,
			}
			if wall > 0 {
				d.EventsPerSec = float64(st.Events) / wall.Seconds()
			}
			p.PerCell = append(p.PerCell, d)
		}
	} else {
		p.Workers = 1
	}
	if wall > 0 {
		p.EventsPerSec = float64(events) / wall.Seconds()
	}
	if events > 0 {
		p.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		p.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(events)
	}
	// Poisson thinning draws a random count near the nominal cell size;
	// every drawn request must finish.
	if p.Finished != int64(len(trace)) {
		return ScalePoint{}, fmt.Errorf("scale %dgpus/%dreqs: finished %d of %d trace requests",
			gpus, requests, p.Finished, len(trace))
	}
	return p, nil
}

// Scale runs the full GPUs × requests sweep.
func Scale(opts ScaleOptions) ([]ScalePoint, error) {
	o := opts.withDefaults()
	var points []ScalePoint
	for _, g := range o.GPUs {
		for _, n := range o.Requests {
			p, err := scaleCell(o, g, n)
			if err != nil {
				return nil, err
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// FormatScale renders the sweep as an aligned table.
func FormatScale(points []ScalePoint) string {
	t := newTable("gpus", "requests", "cells", "workers", "wall", "events", "events/s", "allocs/event", "bytes/event", "spills", "stalls", "sim makespan", "tok/s", "digest")
	for _, p := range points {
		t.add(
			strconv.Itoa(p.GPUs),
			strconv.Itoa(p.Requests),
			strconv.Itoa(p.Cells),
			strconv.Itoa(p.Workers),
			fmt.Sprintf("%.2fs", p.WallSeconds),
			strconv.FormatInt(p.Events, 10),
			fmt.Sprintf("%.0f", p.EventsPerSec),
			fmt.Sprintf("%.1f", p.AllocsPerEvent),
			fmt.Sprintf("%.0f", p.BytesPerEvent),
			strconv.FormatInt(p.Spills, 10),
			strconv.FormatInt(p.BarrierStalls, 10),
			fmt.Sprintf("%.0fs", p.SimMakespan.Seconds()),
			fmt.Sprintf("%.0f", p.Throughput),
			p.Digest)
	}
	return "Scale harness — simulator control-plane cost (short-request Skewed trace):\n" + t.String()
}

// ScaleCSV writes the sweep as CSV, one row per sweep point plus one
// `cell` row per simulation cell of sharded points (cell = -1 marks
// the fleet-level row; per-cell rows carry that cell's events/sec,
// spill counts and barrier stalls).
func ScaleCSV(out io.Writer, points []ScalePoint) error {
	w := csv.NewWriter(out)
	if err := w.Write([]string{"gpus", "requests", "cells", "workers", "cell",
		"wall_seconds", "events", "events_per_sec", "allocs_per_event",
		"bytes_per_event", "sim_makespan_s", "finished", "throughput_tok_s",
		"queue_peak", "epochs", "barrier_stalls", "spills_in", "spills_out",
		"digest"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := w.Write([]string{
			strconv.Itoa(p.GPUs),
			strconv.Itoa(p.Requests),
			strconv.Itoa(p.Cells),
			strconv.Itoa(p.Workers),
			"-1",
			fmt.Sprintf("%.3f", p.WallSeconds),
			strconv.FormatInt(p.Events, 10),
			fmt.Sprintf("%.0f", p.EventsPerSec),
			fmt.Sprintf("%.2f", p.AllocsPerEvent),
			fmt.Sprintf("%.0f", p.BytesPerEvent),
			fmt.Sprintf("%.1f", p.SimMakespan.Seconds()),
			strconv.FormatInt(p.Finished, 10),
			fmt.Sprintf("%.0f", p.Throughput),
			strconv.Itoa(p.QueuePeak),
			strconv.FormatInt(p.Epochs, 10),
			strconv.FormatInt(p.BarrierStalls, 10),
			strconv.FormatInt(p.Spills, 10),
			strconv.FormatInt(p.Spills, 10),
			p.Digest,
		}); err != nil {
			return err
		}
		for _, d := range p.PerCell {
			if err := w.Write([]string{
				strconv.Itoa(d.GPUs),
				strconv.Itoa(d.Requests),
				strconv.Itoa(p.Cells),
				strconv.Itoa(p.Workers),
				strconv.Itoa(d.Cell),
				"",
				strconv.FormatInt(d.Events, 10),
				fmt.Sprintf("%.0f", d.EventsPerSec),
				"", "", "", "", "", "",
				strconv.FormatInt(p.Epochs, 10),
				strconv.FormatInt(d.BarrierStalls, 10),
				strconv.FormatInt(d.SpillsIn, 10),
				strconv.FormatInt(d.SpillsOut, 10),
				"",
			}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

// ScaleRecords flattens the sweep into bench records, one per sweep
// point.
func ScaleRecords(points []ScalePoint) []BenchRecord {
	var recs []BenchRecord
	for _, p := range points {
		recs = append(recs, BenchRecord{
			Experiment: "scale",
			Name:       fmt.Sprintf("%dgpus/%dreqs", p.GPUs, p.Requests),
			Metrics: map[string]float64{
				"wall_seconds":     p.WallSeconds,
				"events":           float64(p.Events),
				"events_per_sec":   p.EventsPerSec,
				"allocs_per_event": p.AllocsPerEvent,
				"bytes_per_event":  p.BytesPerEvent,
				"sim_makespan_s":   p.SimMakespan.Seconds(),
				"throughput_tok_s": p.Throughput,
				"queue_peak":       float64(p.QueuePeak),
				"cells":            float64(p.Cells),
				"workers":          float64(p.Workers),
				"epochs":           float64(p.Epochs),
				"barrier_stalls":   float64(p.BarrierStalls),
				"spills":           float64(p.Spills),
			},
		})
	}
	return recs
}
