package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestTrafficFairnessRegression pins the flash-crowd acceptance story to
// the default (seeded, fully deterministic) sweep:
//
//   - with no spike the fairness layer is inert: the off and on runs
//     produce byte-identical outcome digests;
//   - under the whale's flash crowd, turning fairness on collapses the
//     stall skew by at least 2x and the tail tenants' p99 (whale
//     excluded) by at least 2x — the regression satellite for the
//     "skewed hot tenant inflates tail-tenant AdapterStalls" bug.
func TestTrafficFairnessRegression(t *testing.T) {
	points, err := Traffic(TrafficOptions{SpikePeaks: []float64{0, 32}})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("expected 4 points (2 peaks x off/on), got %d", len(points))
	}
	for i := range points {
		p := &points[i]
		if p.Finished != int64(p.Requests) {
			t.Fatalf("peak%g/fair=%v: finished %d of %d", p.SpikePeak, p.Fairness, p.Finished, p.Requests)
		}
	}
	quiet0 := mustPoint(t, points, 0, false)
	quiet1 := mustPoint(t, points, 0, true)
	if quiet0.Digest != quiet1.Digest {
		t.Fatalf("no-spike control diverged: fairness off digest %s, on %s — the VTC layer must be inert without contention",
			quiet0.Digest, quiet1.Digest)
	}
	off := mustPoint(t, points, 32, false)
	on := mustPoint(t, points, 32, true)
	if off.AdapterStalls == 0 {
		t.Fatal("flash crowd produced no adapter stalls fairness-off; the scenario no longer exercises store contention")
	}
	if on.StallSkew <= 0 {
		t.Fatalf("fairness-on stall skew %v; want > 0", on.StallSkew)
	}
	if off.StallSkew < 2*on.StallSkew {
		t.Fatalf("stall skew off %.2f vs on %.2f: fairness must improve the skew >= 2x (got %.2fx)",
			off.StallSkew, on.StallSkew, off.StallSkew/on.StallSkew)
	}
	if on.TailP99 <= 0 || off.TailP99 < 2*on.TailP99 {
		t.Fatalf("tail p99 off %.2fs vs on %.2fs: fairness must improve the non-whale p99 >= 2x",
			off.TailP99, on.TailP99)
	}
}

func mustPoint(t *testing.T, points []TrafficPoint, peak float64, fair bool) *TrafficPoint {
	t.Helper()
	for i := range points {
		if points[i].SpikePeak == peak && points[i].Fairness == fair {
			return &points[i]
		}
	}
	t.Fatalf("sweep has no point peak=%g fairness=%v", peak, fair)
	return nil
}

// TestTrafficDeterministic: the sweep is a pure function of its options —
// two full runs must agree digest-for-digest, which is what lets the
// committed BENCH_traffic.json act as an exact baseline.
func TestTrafficDeterministic(t *testing.T) {
	opts := TrafficOptions{SpikePeaks: []float64{32}}
	a, err := Traffic(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Traffic(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Digest != b[i].Digest {
			t.Fatalf("point %d digest diverged across identical runs: %s vs %s", i, a[i].Digest, b[i].Digest)
		}
	}
}

// TestTrafficCSVAndRecords: the CSV has one row per run plus a header,
// and the bench records carry the fairness-gain metrics the baseline
// gate reads.
func TestTrafficCSVAndRecords(t *testing.T) {
	points, err := Traffic(TrafficOptions{SpikePeaks: []float64{32}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := TrafficCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(buf.String()), "\n") + 1; lines != len(points)+1 {
		t.Fatalf("CSV has %d lines, want %d", lines, len(points)+1)
	}
	recs := TrafficRecords(points)
	var gain *BenchRecord
	for i := range recs {
		if recs[i].Name == "peak32/fairness-gain" {
			gain = &recs[i]
		}
	}
	if gain == nil {
		t.Fatalf("records lack the peak32/fairness-gain row: %+v", recs)
	}
	if gain.Metrics["skew_ratio"] < 2 {
		t.Fatalf("fairness-gain skew_ratio %.2f < 2", gain.Metrics["skew_ratio"])
	}
	if gain.Metrics["tail_p99_gain"] < 2 {
		t.Fatalf("fairness-gain tail_p99_gain %.2f < 2", gain.Metrics["tail_p99_gain"])
	}
}

// TestSoakSmoke: a shortened everything-at-once soak — popularity drift,
// autoscaling, random faults, churn, fairness on — must finish every
// request and be deterministic run-to-run. CI runs this under -race and
// -tags punica_invariants.
func TestSoakSmoke(t *testing.T) {
	opts := SoakOptions{Horizon: 4 * time.Minute}
	a, err := Soak(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Finished != int64(a.Requests) {
		t.Fatalf("finished %d of %d", a.Finished, a.Requests)
	}
	if a.Requests == 0 || a.TenantCount == 0 {
		t.Fatalf("degenerate soak: %d requests, %d tenants", a.Requests, a.TenantCount)
	}
	b, err := Soak(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("soak digest diverged across identical runs: %s vs %s", a.Digest, b.Digest)
	}
	var buf bytes.Buffer
	if err := SoakCSV(&buf, a); err != nil {
		t.Fatal(err)
	}
	if recs := SoakRecords(a); len(recs) != 1 || recs[0].Experiment != "soak" {
		t.Fatalf("unexpected soak records: %+v", recs)
	}
}
