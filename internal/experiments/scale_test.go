package experiments

import (
	"strings"
	"testing"
)

// TestScaleCellRunsAndMeasures runs one small cell end to end and checks
// the harness's accounting: events counted, every drawn request finished,
// and the measurement fields populated.
func TestScaleCellRunsAndMeasures(t *testing.T) {
	o := DefaultScaleOptions()
	o.Seed = 7
	p, err := ScaleCell(o, 4, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if p.GPUs != 4 || p.Requests != 2000 {
		t.Fatalf("cell identity %d/%d", p.GPUs, p.Requests)
	}
	if p.Events <= 0 || p.EventsPerSec <= 0 {
		t.Fatalf("no events measured: %+v", p)
	}
	if p.Finished <= 0 || p.Throughput <= 0 || p.SimMakespan <= 0 {
		t.Fatalf("run did no simulated work: %+v", p)
	}
	var csvOut, jsonName strings.Builder
	if err := ScaleCSV(&csvOut, []ScalePoint{p}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvOut.String(), "gpus,requests,wall_seconds") {
		t.Fatalf("csv header: %q", csvOut.String()[:40])
	}
	recs := ScaleRecords([]ScalePoint{p})
	if len(recs) != 1 || recs[0].Experiment != "scale" {
		t.Fatalf("records: %+v", recs)
	}
	jsonName.WriteString(recs[0].Name)
	if jsonName.String() != "4gpus/2000reqs" {
		t.Fatalf("record name %q", jsonName.String())
	}
	if _, ok := recs[0].Metrics["allocs_per_event"]; !ok {
		t.Fatal("record missing allocs_per_event")
	}
}

// TestScaleDeterministicSimulation pins that the simulated outcome of a
// cell is independent of wall-clock measurement: two runs of the same
// cell produce identical event counts and simulated results.
func TestScaleDeterministicSimulation(t *testing.T) {
	o := DefaultScaleOptions()
	o.Seed = 11
	a, err := ScaleCell(o, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaleCell(o, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.Finished != b.Finished ||
		a.SimMakespan != b.SimMakespan || a.Throughput != b.Throughput ||
		a.QueuePeak != b.QueuePeak {
		t.Fatalf("nondeterministic cell:\n  a=%+v\n  b=%+v", a, b)
	}
}
