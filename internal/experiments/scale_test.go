package experiments

import (
	"runtime"
	"strings"
	"testing"
)

// TestScaleCellRunsAndMeasures runs one small cell end to end and checks
// the harness's accounting: events counted, every drawn request finished,
// and the measurement fields populated.
func TestScaleCellRunsAndMeasures(t *testing.T) {
	o := DefaultScaleOptions()
	o.Seed = 7
	p, err := ScaleCell(o, 4, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if p.GPUs != 4 || p.Requests != 2000 {
		t.Fatalf("cell identity %d/%d", p.GPUs, p.Requests)
	}
	if p.Events <= 0 || p.EventsPerSec <= 0 {
		t.Fatalf("no events measured: %+v", p)
	}
	if p.Finished <= 0 || p.Throughput <= 0 || p.SimMakespan <= 0 {
		t.Fatalf("run did no simulated work: %+v", p)
	}
	var csvOut, jsonName strings.Builder
	if err := ScaleCSV(&csvOut, []ScalePoint{p}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvOut.String(), "gpus,requests,cells,workers,cell,wall_seconds") {
		t.Fatalf("csv header: %q", csvOut.String()[:40])
	}
	recs := ScaleRecords([]ScalePoint{p})
	if len(recs) != 1 || recs[0].Experiment != "scale" {
		t.Fatalf("records: %+v", recs)
	}
	jsonName.WriteString(recs[0].Name)
	if jsonName.String() != "4gpus/2000reqs" {
		t.Fatalf("record name %q", jsonName.String())
	}
	if _, ok := recs[0].Metrics["allocs_per_event"]; !ok {
		t.Fatal("record missing allocs_per_event")
	}
}

// TestScaleDeterministicSimulation pins that the simulated outcome of a
// cell is independent of wall-clock measurement: two runs of the same
// cell produce identical event counts and simulated results.
func TestScaleDeterministicSimulation(t *testing.T) {
	o := DefaultScaleOptions()
	o.Seed = 11
	a, err := ScaleCell(o, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaleCell(o, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.Finished != b.Finished ||
		a.SimMakespan != b.SimMakespan || a.Throughput != b.Throughput ||
		a.QueuePeak != b.QueuePeak {
		t.Fatalf("nondeterministic cell:\n  a=%+v\n  b=%+v", a, b)
	}
	if a.Digest == "" || a.Digest != b.Digest {
		t.Fatalf("digest mismatch: %q vs %q", a.Digest, b.Digest)
	}
}

// TestAutoCells: shard count derives from fleet size alone.
func TestAutoCells(t *testing.T) {
	for _, tc := range []struct{ gpus, want int }{
		{1, 1}, {16, 1}, {31, 1}, {32, 1}, {64, 2}, {256, 8}, {1024, 16}, {4096, 16},
	} {
		if got := autoCells(tc.gpus); got != tc.want {
			t.Fatalf("autoCells(%d) = %d, want %d", tc.gpus, got, tc.want)
		}
	}
}

// TestScaleShardedDigestInvariantAcrossWorkers is the harness-level
// determinism gate: the same sharded grid point run with 1 and 8
// workers must report identical event counts, digests and simulated
// metrics — -parallel may only change wall-clock time.
func TestScaleShardedDigestInvariantAcrossWorkers(t *testing.T) {
	o := DefaultScaleOptions()
	o.Seed = 5
	o.Cells = 4
	run := func(workers int) ScalePoint {
		o.Workers = workers
		p, err := ScaleCell(o, 8, 2000)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	seq := run(1)
	if seq.Cells != 4 || len(seq.PerCell) != 4 {
		t.Fatalf("sharded point lost its cells: %+v", seq)
	}
	var cellEvents int64
	for _, d := range seq.PerCell {
		cellEvents += d.Events
	}
	if cellEvents != seq.Events {
		t.Fatalf("per-cell events %d don't sum to fleet events %d", cellEvents, seq.Events)
	}
	for _, workers := range []int{2, 8} {
		par := run(workers)
		if par.Events != seq.Events || par.Digest != seq.Digest {
			t.Fatalf("workers=%d changed the simulation: events %d vs %d, digest %s vs %s",
				workers, par.Events, seq.Events, par.Digest, seq.Digest)
		}
		if par.Finished != seq.Finished || par.SimMakespan != seq.SimMakespan ||
			par.QueuePeak != seq.QueuePeak || par.Spills != seq.Spills {
			t.Fatalf("workers=%d changed metrics:\n  seq=%+v\n  par=%+v", workers, seq, par)
		}
	}
	// Per-cell rows land in the CSV with their own spill/stall columns.
	var out strings.Builder
	if err := ScaleCSV(&out, []ScalePoint{seq}); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(out.String()), "\n") + 1; lines != 1+1+4 {
		t.Fatalf("CSV rows = %d, want header + fleet + 4 cells:\n%s", lines, out.String())
	}
}

// TestScaleParallelSpeedup measures the acceptance ratio — 8 workers vs
// the sequential reference on a sharded fleet — and requires ≥4× only
// where the hardware can physically deliver it.
func TestScaleParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement is long")
	}
	o := DefaultScaleOptions()
	o.Seed = 42
	o.Cells = 8
	run := func(workers int) ScalePoint {
		o.Workers = workers
		p, err := ScaleCell(o, 64, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	seq := run(1)
	par := run(8)
	if par.Digest != seq.Digest || par.Events != seq.Events {
		t.Fatalf("parallel run changed the simulation: %s/%d vs %s/%d",
			par.Digest, par.Events, seq.Digest, seq.Events)
	}
	speedup := seq.WallSeconds / par.WallSeconds
	t.Logf("speedup with 8 workers on %d CPUs: %.2fx (seq %.2fs, par %.2fs)",
		runtime.NumCPU(), speedup, seq.WallSeconds, par.WallSeconds)
	if runtime.NumCPU() < 8 {
		t.Skipf("need ≥8 CPUs to assert the 4x speedup target, have %d", runtime.NumCPU())
	}
	if speedup < 4 {
		t.Fatalf("speedup %.2fx < 4x with 8 workers on %d CPUs", speedup, runtime.NumCPU())
	}
}

// TestCompareBaseline: the regression gate flags only drops past the
// threshold and ignores baseline rows the current run didn't produce.
func TestCompareBaseline(t *testing.T) {
	rec := func(name string, eps float64) BenchRecord {
		return BenchRecord{Experiment: "scale", Name: name,
			Metrics: map[string]float64{"events_per_sec": eps}}
	}
	baseline := []BenchRecord{rec("a", 1000), rec("b", 1000), rec("gone", 1000)}
	current := []BenchRecord{rec("a", 850), rec("b", 700), rec("new", 10)}
	errs := CompareBaseline(baseline, current, "events_per_sec", 0.20)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "scale/b") {
		t.Fatalf("want exactly one regression on scale/b, got %v", errs)
	}
	if errs := CompareBaseline(baseline, current, "events_per_sec", 0.50); len(errs) != 0 {
		t.Fatalf("50%% threshold should pass, got %v", errs)
	}
}

// TestReadBenchJSONRoundTrip: the baseline file format reads back what
// the bench writer produced.
func TestReadBenchJSONRoundTrip(t *testing.T) {
	recs := []BenchRecord{{Experiment: "scale", Name: "16gpus/1000reqs",
		Metrics: map[string]float64{"events_per_sec": 123456}}}
	var buf strings.Builder
	if err := WriteBenchJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != recs[0].Name ||
		got[0].Metrics["events_per_sec"] != 123456 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}
