package experiments

import (
	"strings"
	"testing"
	"time"

	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/models"
	"punica/internal/workload"
)

func TestFig1Shapes(t *testing.T) {
	points := Fig1(hw.A100(), models.Llama2_7B())
	if len(points) != len(Fig1SeqLens)*len(Batches1to32) {
		t.Fatalf("got %d points", len(points))
	}
	byCell := map[[2]int]Fig1Point{}
	for _, p := range points {
		byCell[[2]int{p.SeqLen, p.Batch}] = p
	}
	// Prefill proportional to batch: b32/b1 ≈ 30x at len 512.
	pr := float64(byCell[[2]int{512, 32}].Prefill) / float64(byCell[[2]int{512, 1}].Prefill)
	if pr < 10 {
		t.Errorf("prefill batch scaling %.1fx, want near-proportional", pr)
	}
	// Decode sublinear: b32/b1 < 2 at len 128.
	de := float64(byCell[[2]int{128, 32}].Decode) / float64(byCell[[2]int{128, 1}].Decode)
	if de > 2 {
		t.Errorf("decode batch scaling %.2fx, want < 2", de)
	}
	// Fig. 1 absolute anchors: ~11→13ms short, ~17→34ms long.
	if d := byCell[[2]int{128, 32}].Decode; d < 10*time.Millisecond || d > 17*time.Millisecond {
		t.Errorf("decode b32 len128 = %v, want ~13ms", d)
	}
	if d := byCell[[2]int{2048, 32}].Decode; d < 25*time.Millisecond || d > 45*time.Millisecond {
		t.Errorf("decode b32 len2048 = %v, want ~34ms", d)
	}
	out := FormatFig1(points)
	if !strings.Contains(out, "Prefill latency") || !strings.Contains(out, "2048") {
		t.Error("FormatFig1 output malformed")
	}
}

func TestFig7Shapes(t *testing.T) {
	points := Fig7()
	// Distinct: intensity constant, achieved increasing with batch.
	var distinct []Fig7Point
	for _, p := range points {
		if p.Dist == dist.Distinct {
			distinct = append(distinct, p)
		}
	}
	for i := 1; i < len(distinct); i++ {
		if distinct[i].Intensity != distinct[0].Intensity {
			t.Error("Distinct intensity should not vary with batch")
		}
		if distinct[i].AchievedFLOPS <= distinct[i-1].AchievedFLOPS {
			t.Error("Distinct achieved FLOP/s should increase with batch")
		}
	}
	// Identical: intensity increases; achieved stays under both roofs.
	var prevIntensity float64
	for _, p := range points {
		if p.Dist != dist.Identical {
			continue
		}
		if p.Intensity <= prevIntensity {
			t.Error("Identical intensity should increase with batch")
		}
		prevIntensity = p.Intensity
		if p.AchievedFLOPS > 312e12 || p.AchievedFLOPS > p.Intensity*1.935e12 {
			t.Error("roofline ceiling violated")
		}
	}
	if !strings.Contains(FormatFig7(points), "roofline") {
		t.Error("FormatFig7 malformed")
	}
}

func TestFig8Shapes(t *testing.T) {
	points := Fig8()
	for _, p := range points {
		if p.Batch >= 8 && p.SGMV >= p.GatherBMM {
			t.Errorf("%v b=%d: SGMV %v not faster than Gather-BMM %v",
				p.Dist, p.Batch, p.SGMV, p.GatherBMM)
		}
		if p.Dist == dist.Distinct && p.Batch == 64 {
			if p.Loop < time.Millisecond {
				t.Error("Loop should be terrible on Distinct b=64")
			}
			// Paper: 37µs → 116µs band for SGMV (we allow 60-130µs).
			if p.SGMV < 60*time.Microsecond || p.SGMV > 130*time.Microsecond {
				t.Errorf("SGMV Distinct b=64 = %v, want ~75-116µs", p.SGMV)
			}
		}
		if p.Dist == dist.Identical && p.Batch == 64 {
			// Paper: "SGMV latency remains almost constant, 37µs→40µs".
			if p.SGMV > 55*time.Microsecond {
				t.Errorf("SGMV Identical b=64 = %v, want ~40µs", p.SGMV)
			}
		}
	}
	if !strings.Contains(FormatFig8(points), "Gather-BMM") {
		t.Error("FormatFig8 malformed")
	}
}

func TestFig9Shapes(t *testing.T) {
	points := Fig9()
	byCell := map[[3]int]time.Duration{}
	for _, p := range points {
		byCell[[3]int{p.Rank, int(p.Dist), p.Batch}] = p.Latency
	}
	// Latency grows with rank in the Distinct case at batch 64.
	prev := time.Duration(0)
	for _, r := range Fig9Ranks {
		l := byCell[[3]int{r, int(dist.Distinct), 64}]
		if l <= prev {
			t.Errorf("Distinct b=64 latency should grow with rank")
		}
		prev = l
	}
	// Weight-sharing workloads stay flat: b=64 within 1.5x of b=1.
	for _, r := range Fig9Ranks {
		for _, k := range []dist.Kind{dist.Uniform, dist.Skewed, dist.Identical} {
			b1 := byCell[[3]int{r, int(k), 1}]
			b64 := byCell[[3]int{r, int(k), 64}]
			if float64(b64)/float64(b1) > 1.5 {
				t.Errorf("rank %d %v not flat: %v → %v", r, k, b1, b64)
			}
		}
	}
	if !strings.Contains(FormatFig9(points), "r=64") {
		t.Error("FormatFig9 malformed")
	}
}

func TestFig10Shapes(t *testing.T) {
	points := Fig10()
	byCell := map[string]time.Duration{}
	for _, p := range points {
		byCell[p.Model+p.Dist.String()+string(rune(p.SeqLen))+string(rune(p.Batch))] = p.Latency
	}
	// Layer latency is LoRA-popularity-agnostic: for every (model, len,
	// batch), max/min across distributions ≤ 1.4.
	type key struct {
		model  string
		length int
		batch  int
	}
	minMax := map[key][2]time.Duration{}
	for _, p := range points {
		k := key{p.Model, p.SeqLen, p.Batch}
		mm, ok := minMax[k]
		if !ok {
			minMax[k] = [2]time.Duration{p.Latency, p.Latency}
			continue
		}
		if p.Latency < mm[0] {
			mm[0] = p.Latency
		}
		if p.Latency > mm[1] {
			mm[1] = p.Latency
		}
		minMax[k] = mm
	}
	for k, mm := range minMax {
		if ratio := float64(mm[1]) / float64(mm[0]); ratio > 1.4 {
			t.Errorf("%v: distribution spread %.2f, want < 1.4", k, ratio)
		}
	}
	if !strings.Contains(FormatFig10(points), "llama-2-13b") {
		t.Error("FormatFig10 malformed")
	}
}

func smallOpts() TextGenOptions { return TextGenOptions{NumRequests: 120, Seed: 3} }

func TestFig11Shapes(t *testing.T) {
	rows, err := Fig11(models.Llama2_7B(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	get := func(system string, k dist.Kind) float64 {
		for _, r := range rows {
			if r.System == system && r.Dist == k {
				return r.Throughput
			}
		}
		t.Fatalf("missing row %s/%v", system, k)
		return 0
	}
	// Punica consistently high regardless of workload (spread < 1.4x).
	pMin, pMax := 1e18, 0.0
	for _, k := range dist.Kinds {
		v := get("Punica", k)
		if v < pMin {
			pMin = v
		}
		if v > pMax {
			pMax = v
		}
	}
	if pMax/pMin > 1.4 {
		t.Errorf("Punica throughput spread %.2f across workloads, want flat", pMax/pMin)
	}
	// Every baseline collapses on Distinct: Punica ≥ 4x.
	for _, sys := range []string{"HuggingFace Transformers", "DeepSpeed",
		"FasterTransformer (backbone-only)", "vLLM (backbone-only)"} {
		if get("Punica", dist.Distinct) < 4*get(sys, dist.Distinct) {
			t.Errorf("Punica should be ≥4x %s on Distinct", sys)
		}
	}
	// Identical: vLLM ties or slightly beats Punica (backbone-only).
	v, p := get("vLLM (backbone-only)", dist.Identical), get("Punica", dist.Identical)
	if v < p*0.95 {
		t.Errorf("vLLM Identical %.0f should be >= Punica %.0f (backbone-only advantage)", v, p)
	}
	if v > p*1.35 {
		t.Errorf("vLLM Identical %.0f should be close to Punica %.0f", v, p)
	}
	// HuggingFace is the weakest system on Identical (§7.2).
	for _, sys := range []string{"DeepSpeed", "FasterTransformer (backbone-only)",
		"vLLM (backbone-only)", "Punica"} {
		if get("HuggingFace Transformers", dist.Identical) >= get(sys, dist.Identical) {
			t.Errorf("HuggingFace should be slowest on Identical, beat %s", sys)
		}
	}
}

func TestHeadlineClaims(t *testing.T) {
	rows, err := Fig11(models.Llama2_7B(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	h := Headline(rows)
	if h.MultiLoRASpeedup < 4 {
		t.Errorf("multi-LoRA speedup %.1fx, want large (paper: 12x)", h.MultiLoRASpeedup)
	}
	// "only adding 2ms latency per token": between 0.5 and 4 ms.
	if h.AddedMsPerToken < 0.2 || h.AddedMsPerToken > 4 {
		t.Errorf("added latency %.2f ms/token, want ~2ms", h.AddedMsPerToken)
	}
	if !strings.Contains(FormatHeadline(h), "speedup") {
		t.Error("FormatHeadline malformed")
	}
}

func TestFig12Shapes(t *testing.T) {
	rows, err := Fig12(TextGenOptions{NumRequests: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	get := func(system string, k dist.Kind) float64 {
		for _, r := range rows {
			if r.System == system && r.Dist == k {
				return r.Throughput
			}
		}
		t.Fatalf("missing row %s/%v", system, k)
		return 0
	}
	// Punica flat across workloads; vLLM collapses on multi-LoRA.
	for _, k := range []dist.Kind{dist.Distinct, dist.Uniform, dist.Skewed} {
		if get("Punica", k) < 6*get("vLLM (backbone-only)", k) {
			t.Errorf("%v: Punica should dominate vLLM by ~10-20x on 70B multi-LoRA", k)
		}
	}
	// Identical: same parallel scheme → near parity (§7.2).
	v, p := get("vLLM (backbone-only)", dist.Identical), get("Punica", dist.Identical)
	if ratio := v / p; ratio < 0.9 || ratio > 1.35 {
		t.Errorf("70B Identical vLLM/Punica = %.2f, want ~1", ratio)
	}
}

func TestFig13SmallScale(t *testing.T) {
	opts := Fig13Options{
		NumGPUs:  4,
		Peak:     3,
		RampUp:   3 * time.Minute,
		Hold:     time.Minute,
		RampDown: 3 * time.Minute,
		BinWidth: 30 * time.Second,
		Seed:     9,
	}
	res, err := Fig13(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != int64(res.Requests) {
		t.Fatalf("finished %d/%d", res.Finished, res.Requests)
	}
	// Request-rate panel follows the trapezoid: middle bin > first bin.
	mid := len(res.ReqRate) / 2
	if res.ReqRate[mid] <= res.ReqRate[0] {
		t.Error("request rate should peak mid-run")
	}
	// Token panel tracks load.
	if res.TokRate[mid] <= res.TokRate[0] {
		t.Error("token rate should peak mid-run")
	}
	if len(res.BatchPerGPU) != opts.NumGPUs {
		t.Fatalf("batch series for %d GPUs", len(res.BatchPerGPU))
	}
	out := FormatFig13(res)
	if !strings.Contains(out, "req/s") || !strings.Contains(out, "busy GPUs") {
		t.Error("FormatFig13 malformed")
	}
}

func TestFig6Waste(t *testing.T) {
	res, err := Fig6(48, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.StaticWasted == 0 {
		t.Error("static batching should waste decode steps")
	}
	if res.PagedWasted != 0 {
		t.Error("Punica's separable KvCache should waste nothing")
	}
	if res.WasteFrac <= 0 || res.WasteFrac >= 1 {
		t.Errorf("waste fraction %.2f out of range", res.WasteFrac)
	}
	if !strings.Contains(FormatFig6(res), "wasted") {
		t.Error("FormatFig6 malformed")
	}
}

func TestLoadingMicrobenchmark(t *testing.T) {
	res := Loading()
	// §5.2: ~50µs/layer (we land ~100µs with copy-issue overhead),
	// ~2ms/model; loading must hide behind one decode step.
	if res.PerLayer > 200*time.Microsecond {
		t.Errorf("per-layer load %v too slow", res.PerLayer)
	}
	if res.PerModel < time.Millisecond || res.PerModel > 5*time.Millisecond {
		t.Errorf("per-model load %v, want ~2-4ms", res.PerModel)
	}
	if res.PerModel >= res.DecodeStep {
		t.Error("adapter load should hide behind one decode step")
	}
	if !strings.Contains(FormatLoading(res), "PCIe") {
		t.Error("FormatLoading malformed")
	}
}

func TestAblationNorm(t *testing.T) {
	res := AblationNorm()
	want := time.Duration(models.Llama2_7B().Layers) * 2 * (hw.LayerNormUnfused - hw.LayerNormFused)
	if res.StepSavingsTotal != want {
		t.Errorf("norm fusion saves %v, want %v", res.StepSavingsTotal, want)
	}
	if !strings.Contains(FormatAblationNorm(res), "LayerNorm") {
		t.Error("FormatAblationNorm malformed")
	}
}

func TestAblationMaxBatch(t *testing.T) {
	points, err := AblationMaxBatch(60, 11, []int{1, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// Throughput grows with batch cap; per-token latency grows too.
	if points[2].Throughput <= points[0].Throughput {
		t.Error("larger batch cap should raise throughput")
	}
	if points[2].P50TokenMs <= points[0].P50TokenMs {
		t.Error("larger batches should cost per-token latency")
	}
	if !strings.Contains(FormatAblationMaxBatch(points), "max batch") {
		t.Error("format malformed")
	}
}

func TestAblationPrefillLimit(t *testing.T) {
	points, err := AblationPrefillLimit(60, 13, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Larger prefill bursts hurt tail per-token latency (the §5 design
	// rationale for limiting prefill to 1).
	if points[1].P99TokenMs < points[0].P99TokenMs {
		t.Errorf("prefill burst should raise p99: limit1=%.1f limit8=%.1f",
			points[0].P99TokenMs, points[1].P99TokenMs)
	}
	if !strings.Contains(FormatAblationPrefillLimit(points), "prefill") {
		t.Error("format malformed")
	}
}

func TestAblationPageSize(t *testing.T) {
	points, err := AblationPageSize(40, 17, []int{16, 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Throughput <= 0 {
			t.Errorf("page size %d produced no throughput", p.PageSize)
		}
	}
	if !strings.Contains(FormatAblationPageSize(points), "page size") {
		t.Error("format malformed")
	}
}

func TestAblationMigration(t *testing.T) {
	res, err := AblationMigration(Fig13Options{
		NumGPUs:  4,
		Peak:     3,
		RampUp:   2 * time.Minute,
		Hold:     time.Minute,
		RampDown: 2 * time.Minute,
		BinWidth: 30 * time.Second,
		Seed:     21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WithMigrations == 0 {
		t.Error("expected some consolidation migrations")
	}
	if res.WithTailIdle < res.WithoutTailIdle {
		t.Errorf("consolidation should free at least as many GPUs at tail: with=%d without=%d",
			res.WithTailIdle, res.WithoutTailIdle)
	}
	if !strings.Contains(FormatAblationMigration(res), "migrations") {
		t.Error("format malformed")
	}
}

func TestAblationQuantization(t *testing.T) {
	points, err := AblationQuantization(60, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("%d points", len(points))
	}
	get := func(w, kv hw.Precision) QuantPoint {
		for _, p := range points {
			if p.Weights == w && p.KV == kv {
				return p
			}
		}
		t.Fatalf("missing point %v/%v", w, kv)
		return QuantPoint{}
	}
	fp := get(hw.FP16, hw.FP16)
	w8 := get(hw.INT8, hw.FP16)
	kv8 := get(hw.FP16, hw.INT8)
	// Quantized weights must raise throughput (decode is weight-bound)
	// and never increase evictions (more KV headroom).
	if w8.Throughput <= fp.Throughput {
		t.Errorf("int8 weights %.0f should beat fp16 %.0f", w8.Throughput, fp.Throughput)
	}
	if w8.Evictions > fp.Evictions {
		t.Errorf("int8 weights should not evict more (%d vs %d)", w8.Evictions, fp.Evictions)
	}
	// Quantized KvCache cuts attention traffic: throughput up too.
	if kv8.Throughput <= fp.Throughput {
		t.Errorf("int8 KvCache %.0f should beat fp16 %.0f", kv8.Throughput, fp.Throughput)
	}
	if !strings.Contains(FormatAblationQuantization(points), "nf4") {
		t.Error("format malformed")
	}
}

func TestAutoscaleExperiment(t *testing.T) {
	res, err := Autoscale(Fig13Options{
		NumGPUs:  4,
		Peak:     4,
		RampUp:   3 * time.Minute,
		Hold:     time.Minute,
		RampDown: 3 * time.Minute,
		BinWidth: 30 * time.Second,
		Seed:     31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Savings <= 0 {
		t.Errorf("elastic provisioning should save GPU time, got %.2f", res.Savings)
	}
	if res.Provisions == 0 || res.Releases == 0 {
		t.Errorf("expected scaling activity: %+v", res)
	}
	// Elasticity trades some time-to-first-token; it must not be free.
	if res.ElasticP99TTFT < res.FixedP99TTFT {
		t.Errorf("elastic p99 TTFT %.2f should not beat fixed %.2f",
			res.ElasticP99TTFT, res.FixedP99TTFT)
	}
	if !strings.Contains(FormatAutoscale(res), "GPU-seconds") {
		t.Error("format malformed")
	}
}

func TestFig13PopularityDrift(t *testing.T) {
	opts := Fig13Options{
		NumGPUs:  4,
		Peak:     3,
		RampUp:   3 * time.Minute,
		Hold:     time.Minute,
		RampDown: 3 * time.Minute,
		BinWidth: 30 * time.Second,
		Seed:     9,

		HotSetRotations: 3,
		ZipfAlpha:       2,
	}
	res, err := Fig13(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != int64(res.Requests) || res.Requests == 0 {
		t.Fatalf("finished %d/%d under popularity drift", res.Finished, res.Requests)
	}
	// Drift must actually change the trace relative to the static run:
	// same arrival process (identical rng consumption), but later
	// phases assign model ids beyond the static population.
	static := opts
	static.HotSetRotations = 0
	static.ZipfAlpha = 0
	driftTrace, staticTrace := fig13Trace(opts), fig13Trace(static)
	if len(driftTrace) != len(staticTrace) {
		t.Fatalf("drift changed arrival count: %d vs %d", len(driftTrace), len(staticTrace))
	}
	maxModel := func(reqs []workload.Request) int64 {
		var m int64
		for _, r := range reqs {
			if r.Model > m {
				m = r.Model
			}
		}
		return m
	}
	if maxModel(driftTrace) <= maxModel(staticTrace) {
		t.Fatalf("hot-set rotation assigned no offset models: drift max %d, static max %d",
			maxModel(driftTrace), maxModel(staticTrace))
	}
	sres, err := Fig13(static)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Requests != res.Requests {
		t.Fatalf("drift changed arrival count: %d vs %d", res.Requests, sres.Requests)
	}
}
