package experiments

import (
	"fmt"
	"time"

	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/layer"
	"punica/internal/models"
	"punica/internal/sgmv"
)

// Fig10Point is the latency of one transformer layer with the LoRA addon
// for one (model, sequence length, distribution, batch) cell.
type Fig10Point struct {
	Model   string
	SeqLen  int
	Dist    dist.Kind
	Batch   int
	Latency time.Duration
}

// Fig10SeqLens are the context lengths the figure sweeps.
var Fig10SeqLens = []int{512, 2048}

// Fig10 reproduces the transformer-layer benchmark: a decode batch at the
// given context length with the batched LoRA addon, on the 7B and 13B
// configurations (Testbed #1).
func Fig10() []Fig10Point {
	var points []Fig10Point
	for _, cfg := range []models.Config{models.Llama2_7B(), models.Llama2_13B()} {
		costs := layer.New(hw.A100(), cfg)
		for _, seqLen := range Fig10SeqLens {
			for _, k := range dist.Kinds {
				for _, batch := range Batches1to32 {
					contexts := make([]int, batch)
					for i := range contexts {
						contexts[i] = seqLen
					}
					inv := layer.Invocation{
						DecodeContexts: contexts,
						LoRASegments:   sgmv.NewSegments(dist.SegmentSizes(k, batch)...),
						LoRARank:       models.DefaultLoRARank,
					}
					points = append(points, Fig10Point{
						Model:   cfg.Name,
						SeqLen:  seqLen,
						Dist:    k,
						Batch:   batch,
						Latency: costs.LayerTime(inv),
					})
				}
			}
		}
	}
	return points
}

// FormatFig10 renders one table per (model, length) panel.
func FormatFig10(points []Fig10Point) string {
	out := "Figure 10 — Transformer layer latency (decode, LoRA rank 16):\n"
	for _, cfg := range []string{"llama-2-7b", "llama-2-13b"} {
		for _, seqLen := range Fig10SeqLens {
			t := newTable(append([]string{fmt.Sprintf("%s len=%d", cfg, seqLen)}, batchHeaders()...)...)
			for _, k := range dist.Kinds {
				row := []string{k.String()}
				for _, p := range points {
					if p.Model == cfg && p.SeqLen == seqLen && p.Dist == k {
						row = append(row, us(p.Latency))
					}
				}
				t.add(row...)
			}
			out += t.String() + "\n"
		}
	}
	return out
}
