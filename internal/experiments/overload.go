// Overload experiment: the degraded-mode serving capstone. A calibration
// sim measures the deployment's sustainable request rate, then open-loop
// traffic is replayed through the REAL HTTP serving stack (serve.Server
// behind an httptest listener — streaming NDJSON, 429 envelopes,
// Retry-After headers, the lot) at 1x, 2x and 4x that capacity, once
// with the admission layer off (legacy unbounded queue) and once with it
// on. Clients honor Retry-After and resubmit rejected requests with
// bounded retries. The sweep reports goodput (SLO-meeting completions
// over offered load), tail latency in simulated seconds, queue peaks and
// the shed/429/retry counters; the committed bench/BENCH_overload.json
// baseline gates the shedding-on vs -off goodput retention at the
// highest overload factor.

package experiments

import (
	"bufio"
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"time"

	"punica/internal/cluster"
	"punica/internal/core"
	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/metrics"
	"punica/internal/models"
	"punica/internal/sched"
	"punica/internal/serve"
	"punica/internal/workload"
)

// OverloadOptions configures the overload-protection sweep.
type OverloadOptions struct {
	// NumGPUs and MaxBatch size the deployment (defaults 2 GPUs x batch 8).
	NumGPUs  int
	MaxBatch int
	// Speedup converts simulated latency to wall pacing for the serving
	// runs (default 50). Higher is faster wall time, but past ~100 the
	// per-step pacing sleeps shrink toward the OS timer granularity and
	// the live stack falls behind the calibrated capacity — the sweep
	// would then measure sleep quantization, not overload behaviour.
	// Latencies are measured on the server's simulated clock, so the
	// reported numbers are otherwise speedup-independent.
	Speedup float64
	// Horizon is the arrival window in simulated time (default 1m).
	Horizon time.Duration
	// LoadFactors multiply the calibrated capacity into offered rates
	// (default {1, 2, 4}).
	LoadFactors []float64
	// MaxQueue is the admission cap for the shedding-on runs (default
	// 2 x NumGPUs x MaxBatch). The shedding-off runs keep the legacy
	// unbounded queue.
	MaxQueue int
	// SLO is the end-to-end latency budget, in simulated time, that a
	// completion must meet to count toward goodput (default 20s).
	SLO time.Duration
	// RetryAttempts bounds each client's total tries per request,
	// honoring Retry-After between them (default 2; 1 disables retries).
	RetryAttempts int
	// RetryWaitCap caps the honored Retry-After wall wait so a sweep
	// cell cannot be parked on the serving stack's 1s floor (default 2s).
	RetryWaitCap time.Duration
	// Grace is extra wall time after the last arrival for in-flight
	// generations and retries to land before the cell is frozen
	// (default 3s).
	Grace time.Duration
	// NumModels is the Skewed adapter population (default 4).
	NumModels int
	// CalibrationRequests sizes the capacity-measurement batch (default 300).
	CalibrationRequests int
	// Lengths samples request sizes (default ShareGPT log-normals).
	Lengths workload.Lengths
	// Seed drives the arrival process and length draws.
	Seed int64
}

func (o OverloadOptions) withDefaults() OverloadOptions {
	if o.NumGPUs <= 0 {
		o.NumGPUs = 2
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.Speedup <= 0 {
		o.Speedup = 50
	}
	if o.Horizon <= 0 {
		o.Horizon = time.Minute
	}
	if len(o.LoadFactors) == 0 {
		o.LoadFactors = []float64{1, 2, 4}
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 2 * o.NumGPUs * o.MaxBatch
	}
	if o.SLO <= 0 {
		o.SLO = 20 * time.Second
	}
	if o.RetryAttempts <= 0 {
		o.RetryAttempts = 2
	}
	if o.RetryWaitCap <= 0 {
		o.RetryWaitCap = 2 * time.Second
	}
	if o.Grace <= 0 {
		o.Grace = 3 * time.Second
	}
	if o.NumModels <= 0 {
		o.NumModels = 4
	}
	if o.CalibrationRequests <= 0 {
		o.CalibrationRequests = 300
	}
	if o.Lengths.PromptMax <= 0 {
		o.Lengths = workload.ShareGPTLengths()
	}
	if o.Seed == 0 {
		o.Seed = 11
	}
	return o
}

// engineConfig is the per-GPU engine shared by the calibration sim and
// the serving runs — capacity is only meaningful if both see the same
// hardware.
func (o OverloadOptions) engineConfig() core.Config {
	sys := core.PunicaSystem()
	sys.MaxBatch = o.MaxBatch
	return core.Config{
		System: sys,
		GPU:    hw.A100(),
		Model:  models.Llama2_7B(),
		Rank:   models.DefaultLoRARank,
	}
}

// OverloadPoint is one (load factor, shedding) serving run.
type OverloadPoint struct {
	Factor   float64
	Shedding bool

	// OfferedRate is the open-loop arrival rate (req/s, simulated time);
	// Offered the trace size it realized over the horizon.
	OfferedRate float64
	Offered     int

	// Completed counts streams that delivered EOS inside the measurement
	// window; SLOMet those whose end-to-end simulated latency (EOS sim
	// time minus scheduled arrival) met the SLO. Goodput = SLOMet/Offered.
	Completed int
	SLOMet    int
	Goodput   float64

	// P50/P99 are end-to-end latencies over completions, in simulated
	// seconds.
	P50 float64
	P99 float64

	// QueuePeak is the deepest the scheduler's wait queue got; QueueCap
	// the admission bound (0 = unbounded).
	QueuePeak int
	QueueCap  int

	// Refusals and recoveries: HTTP 429s observed by clients, requests
	// the server counted as admission-rejected or shed, client retry
	// attempts, and retries that ultimately completed.
	HTTP429        int64
	Rejected       int64
	Shed           int64
	Retries        int64
	RetrySucceeded int64
}

// overloadOutcome is one client goroutine's bookkeeping, merged under a
// mutex into the cell's accumulators.
type overloadOutcome struct {
	completed bool
	latency   float64 // sim seconds, valid when completed
	http429   int64
	retries   int64
	retrySucc bool
}

// Overload runs the sweep: for each load factor, shedding off then on
// over the identical arrival trace.
func Overload(opts OverloadOptions) ([]OverloadPoint, error) {
	o := opts.withDefaults()
	capacity, err := o.calibrate()
	if err != nil {
		return nil, err
	}
	var points []OverloadPoint
	for _, factor := range o.LoadFactors {
		rate := capacity * factor
		// One trace per factor: the off/on pair must replay the same
		// arrivals.
		gen := workload.NewGenerator(dist.Skewed, o.Lengths, o.Seed)
		trace := gen.Traffic(workload.TrafficSpec{
			Horizon: o.Horizon,
			Base:    rate,
			Mix: dist.Mix{Phases: []dist.Phase{{
				Kind: dist.Skewed, NumModels: o.NumModels,
			}}},
			Seed: o.Seed,
		})
		if len(trace) == 0 {
			return nil, fmt.Errorf("overload x%g: empty trace at %.2f req/s", factor, rate)
		}
		for _, shedding := range []bool{false, true} {
			p, err := o.cell(trace, factor, rate, shedding)
			if err != nil {
				return nil, err
			}
			// The admission cap is a hard bound, not a target: a
			// shedding-on run whose queue outgrew it means the admission
			// layer is broken, not slow.
			if shedding && p.QueuePeak > o.MaxQueue {
				return nil, fmt.Errorf("overload x%g: queue peaked at %d past the admission cap %d",
					factor, p.QueuePeak, o.MaxQueue)
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// calibrate measures the deployment's sustainable request rate: a
// saturating batch through the offline cluster sim, capacity =
// finished / makespan.
func (o OverloadOptions) calibrate() (float64, error) {
	gen := workload.NewGenerator(dist.Skewed, o.Lengths, o.Seed)
	trace := gen.Batch(o.CalibrationRequests)
	c := cluster.New(cluster.Config{
		NumGPUs: o.NumGPUs,
		Engine:  o.engineConfig(),
	})
	res, err := c.Run(trace)
	if err != nil {
		return 0, fmt.Errorf("overload calibration: %w", err)
	}
	if res.Finished == 0 || res.Makespan <= 0 {
		return 0, fmt.Errorf("overload calibration: degenerate result (%d finished over %v)",
			res.Finished, res.Makespan)
	}
	return float64(res.Finished) / res.Makespan.Seconds(), nil
}

// cell replays one trace against one live serving deployment.
func (o OverloadOptions) cell(trace []workload.Request, factor, rate float64, shedding bool) (OverloadPoint, error) {
	cfg := serve.Config{
		NumGPUs: o.NumGPUs,
		Engine:  o.engineConfig(),
		Speedup: o.Speedup,
	}
	if shedding {
		cfg.Admission = sched.AdmissionConfig{MaxQueue: o.MaxQueue}
	}
	srv := serve.New(cfg)
	ts := httptest.NewServer(srv.Handler())

	ctx, cancel := context.WithCancel(context.Background())
	client := &http.Client{}
	start := time.Now()

	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		lat metrics.Histogram
		p   = OverloadPoint{Factor: factor, Shedding: shedding,
			OfferedRate: rate, Offered: len(trace), QueueCap: cfg.Admission.MaxQueue}
	)
	for i := range trace {
		wg.Add(1)
		go func(req workload.Request) {
			defer wg.Done()
			select {
			case <-time.After(time.Until(start.Add(time.Duration(float64(req.Arrival) / o.Speedup)))):
			case <-ctx.Done():
				return
			}
			out := o.drive(ctx, client, ts.URL, req)
			mu.Lock()
			defer mu.Unlock()
			p.HTTP429 += out.http429
			p.Retries += out.retries
			if out.completed {
				p.Completed++
				lat.Add(out.latency)
				if out.latency <= o.SLO.Seconds() {
					p.SLOMet++
				}
				if out.retrySucc {
					p.RetrySucceeded++
				}
			}
		}(trace[i])
	}

	// Freeze the cell after the arrival window plus a grace period —
	// stragglers (a backlog the unbounded queue may never drain in
	// bounded wall time) count as not completed.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	horizonWall := time.Duration(float64(o.Horizon) / o.Speedup)
	select {
	case <-done:
	case <-time.After(horizonWall + o.Grace):
	}
	cancel()
	<-done

	stats, err := fetchServeStats(ts.URL)
	ts.Close()
	srv.Close()
	if err != nil {
		return OverloadPoint{}, fmt.Errorf("overload x%g/shed=%v: %w", factor, shedding, err)
	}
	p.QueuePeak = stats.QueuePeak
	p.Rejected = stats.Rejected + stats.TenantRejected
	p.Shed = stats.Shed
	p.Goodput = float64(p.SLOMet) / float64(p.Offered)
	p.P50 = lat.Percentile(50)
	p.P99 = lat.Percentile(99)
	return p, nil
}

// drive submits one request over HTTP, honoring Retry-After on 429 up to
// the retry budget, and reads the NDJSON stream to EOS.
func (o OverloadOptions) drive(ctx context.Context, client *http.Client, base string, req workload.Request) overloadOutcome {
	var out overloadOutcome
	body, _ := json.Marshal(serve.GenerateRequest{
		Model:     req.Model,
		PromptLen: req.PromptLen,
		MaxTokens: req.OutputLen,
		Tenant:    req.Tenant,
	})
	for attempt := 1; ; attempt++ {
		status, eosSim, retryAfter, err := postGenerate(ctx, client, base, body)
		if err != nil {
			return out // cancelled or transport failure: not completed
		}
		if status == http.StatusOK {
			out.completed = true
			out.latency = eosSim - req.Arrival.Seconds()
			out.retrySucc = attempt > 1
			return out
		}
		if status != http.StatusTooManyRequests {
			return out
		}
		out.http429++
		if attempt >= o.RetryAttempts {
			return out
		}
		if retryAfter > o.RetryWaitCap {
			retryAfter = o.RetryWaitCap
		}
		out.retries++
		select {
		case <-time.After(retryAfter):
		case <-ctx.Done():
			return out
		}
	}
}

// postGenerate performs one generate attempt. On 200 it consumes the
// stream and returns the EOS token's simulated timestamp; a stream that
// ends without EOS (shed mid-flight, server close, cancellation) is
// reported as a non-OK status.
func postGenerate(ctx context.Context, client *http.Client, base string, body []byte) (status int, eosSim float64, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/generate", bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return resp.StatusCode, 0, parseRetryAfterHeader(resp), nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	sawEOS := false
	for sc.Scan() {
		var ev serve.TokenEvent
		if json.Unmarshal(sc.Bytes(), &ev) != nil {
			continue
		}
		if ev.EOS {
			sawEOS = true
			eosSim = ev.SimTime
		}
	}
	if !sawEOS {
		// Truncated 200: the window closed (or the request was dropped)
		// before EOS. Report as a refusal-shaped non-status so the caller
		// neither counts a completion nor retries.
		return http.StatusGone, 0, 0, nil
	}
	return http.StatusOK, eosSim, 0, nil
}

func parseRetryAfterHeader(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		secs = 1
	}
	return time.Duration(secs) * time.Second
}

// fetchServeStats reads the /v1/stats snapshot.
func fetchServeStats(base string) (*serve.Stats, error) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// FormatOverload renders the sweep as an aligned table, pairing each
// factor's shedding-off and shedding-on rows.
func FormatOverload(points []OverloadPoint) string {
	t := newTable("load", "shedding", "offered", "rate", "completed", "slo met", "goodput",
		"p50", "p99", "queue peak", "cap", "429s", "shed", "retries")
	for _, p := range points {
		cap := "inf"
		if p.QueueCap > 0 {
			cap = strconv.Itoa(p.QueueCap)
		}
		t.add(
			fmt.Sprintf("%gx", p.Factor),
			onOff(p.Shedding),
			strconv.Itoa(p.Offered),
			fmt.Sprintf("%.1f/s", p.OfferedRate),
			strconv.Itoa(p.Completed),
			strconv.Itoa(p.SLOMet),
			fmt.Sprintf("%.1f%%", 100*p.Goodput),
			fmt.Sprintf("%.1fs", p.P50),
			fmt.Sprintf("%.1fs", p.P99),
			strconv.Itoa(p.QueuePeak),
			cap,
			strconv.FormatInt(p.HTTP429, 10),
			strconv.FormatInt(p.Shed, 10),
			strconv.FormatInt(p.Retries, 10))
	}
	return "Overload — open-loop traffic through the live HTTP stack, shedding off vs on:\n" + t.String()
}

// OverloadCSV writes the sweep as CSV, one row per run.
func OverloadCSV(out io.Writer, points []OverloadPoint) error {
	w := csv.NewWriter(out)
	if err := w.Write([]string{"load_factor", "shedding", "offered", "offered_rate_rps",
		"completed", "slo_met", "goodput", "p50_s", "p99_s", "queue_peak", "queue_cap",
		"http_429", "rejected", "shed", "retries", "retry_succeeded"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := w.Write([]string{
			fmt.Sprintf("%g", p.Factor),
			onOff(p.Shedding),
			strconv.Itoa(p.Offered),
			fmt.Sprintf("%.2f", p.OfferedRate),
			strconv.Itoa(p.Completed),
			strconv.Itoa(p.SLOMet),
			fmt.Sprintf("%.4f", p.Goodput),
			fmt.Sprintf("%.3f", p.P50),
			fmt.Sprintf("%.3f", p.P99),
			strconv.Itoa(p.QueuePeak),
			strconv.Itoa(p.QueueCap),
			strconv.FormatInt(p.HTTP429, 10),
			strconv.FormatInt(p.Rejected, 10),
			strconv.FormatInt(p.Shed, 10),
			strconv.FormatInt(p.Retries, 10),
			strconv.FormatInt(p.RetrySucceeded, 10),
		}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// OverloadRecords flattens the sweep into bench records: one per run,
// plus one off/on comparison record per load factor carrying the
// goodput retention the admission layer is accountable for. Retention is
// computed on +1-smoothed SLO-met counts so a zero-goodput shedding-off
// cell (total congestive collapse) still yields a finite, gateable
// ratio.
func OverloadRecords(points []OverloadPoint) []BenchRecord {
	var recs []BenchRecord
	byFactor := map[float64][2]*OverloadPoint{}
	for i := range points {
		p := &points[i]
		recs = append(recs, BenchRecord{
			Experiment: "overload",
			Name:       fmt.Sprintf("x%g/shed=%s", p.Factor, onOff(p.Shedding)),
			Metrics: map[string]float64{
				"goodput":    p.Goodput,
				"slo_met":    float64(p.SLOMet),
				"completed":  float64(p.Completed),
				"p99_s":      p.P99,
				"queue_peak": float64(p.QueuePeak),
				"http_429":   float64(p.HTTP429),
				"shed":       float64(p.Shed),
				"retries":    float64(p.Retries),
			},
		})
		pair := byFactor[p.Factor]
		if p.Shedding {
			pair[1] = p
		} else {
			pair[0] = p
		}
		byFactor[p.Factor] = pair
	}
	for _, p := range points {
		pair := byFactor[p.Factor]
		if p.Shedding || pair[0] == nil || pair[1] == nil {
			continue // emit once per factor, from the off row
		}
		off, on := pair[0], pair[1]
		m := map[string]float64{
			"goodput_retention": float64(on.SLOMet+1) / float64(off.SLOMet+1),
		}
		if on.QueuePeak > 0 {
			m["queue_compression"] = float64(off.QueuePeak) / float64(on.QueuePeak)
		}
		recs = append(recs, BenchRecord{
			Experiment: "overload",
			Name:       fmt.Sprintf("x%g/shedding-gain", p.Factor),
			Metrics:    m,
		})
	}
	return recs
}
