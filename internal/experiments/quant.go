package experiments

import (
	"fmt"

	"punica/internal/cluster"
	"punica/internal/core"
	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/models"
	"punica/internal/workload"
)

// QuantPoint is one row of the §8-motivated quantization extension:
// Punica with a quantized backbone and/or KvCache.
type QuantPoint struct {
	Weights    hw.Precision
	KV         hw.Precision
	Throughput float64
	Evictions  int64
	P99TokenMs float64
}

// AblationQuantization runs Punica on a long-context Skewed workload
// with a deliberately tight memory budget and sweeps weight and KvCache
// precision. Expected shape (per §8's discussion): quantized weights
// stream faster (decode is weight-bound) and free HBM for KvCache
// (fewer evictions/migrations); quantized KvCache cuts attention traffic
// and doubles resident tokens again.
//
// The adapter store is sized below the Skewed model population so the
// run also exercises §5.2 store pressure: warm adapters are LRU-evicted
// and placements stall (and requeue) when every resident adapter is
// pinned.
func AblationQuantization(numRequests int, seed int64) ([]QuantPoint, error) {
	if numRequests <= 0 {
		numRequests = 150
	}
	combos := []struct{ w, kv hw.Precision }{
		{hw.FP16, hw.FP16},
		{hw.INT8, hw.FP16},
		{hw.NF4, hw.FP16},
		{hw.FP16, hw.INT8},
		{hw.INT8, hw.INT8},
		{hw.NF4, hw.INT8},
	}
	var points []QuantPoint
	for _, combo := range combos {
		reqs := workload.NewGenerator(dist.Skewed, workload.ClusterLengths(), seed).Batch(numRequests)
		c := cluster.New(cluster.Config{
			NumGPUs: 1,
			Engine: core.Config{
				System:          core.PunicaSystem(),
				GPU:             constrainedA100(),
				Model:           models.Llama2_7B(),
				Rank:            models.DefaultLoRARank,
				WeightPrecision: combo.w,
				KVPrecision:     combo.kv,
				LoRAStoreBytes:  400 << 20, // ~5 of the 8 Skewed adapters fit
			},
		})
		res, err := c.Run(reqs)
		if err != nil {
			return nil, err
		}
		points = append(points, QuantPoint{
			Weights:    combo.w,
			KV:         combo.kv,
			Throughput: res.Throughput,
			Evictions:  res.Evictions,
			P99TokenMs: res.PerTokenLatency.Percentile(99) * 1000,
		})
	}
	return points, nil
}

// constrainedA100 is an A100 with 26 GiB visible memory: the fp16 7B
// backbone (13.5 GiB) leaves only ~6.5 GiB of KvCache, so precision
// choices move both the step time and the eviction rate.
func constrainedA100() hw.GPUSpec {
	g := hw.A100()
	g.MemBytes = 26 << 30
	return g
}

// FormatAblationQuantization renders the sweep.
func FormatAblationQuantization(points []QuantPoint) string {
	t := newTable("weights", "kvcache", "throughput", "evictions", "p99 ms/token")
	for _, p := range points {
		t.add(p.Weights.String(), p.KV.String(),
			fmt.Sprintf("%.0f tok/s", p.Throughput),
			fmt.Sprint(p.Evictions),
			fmt.Sprintf("%.1f", p.P99TokenMs))
	}
	return "Ablation — backbone/KvCache quantization (§8 extension, 26 GiB budget):\n" +
		t.String()
}
