package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// smallDisaggOptions shrinks the sweep to seconds of test time while
// keeping the prefill-heavy regime.
func smallDisaggOptions() DisaggOptions {
	o := DefaultDisaggOptions()
	o.NumGPUs = 4
	o.PrefillGPUs = 1
	o.Rate = 10
	o.Horizon = 40 * time.Second
	o.Seed = 42
	return o
}

// TestDisaggregationReducesDecodeTail is the experiment's acceptance
// check: at equal GPU count under the prefill-heavy mix, disaggregated
// mode strictly reduces decode p99 (inter-token tail latency) on at
// least one paper distribution — in practice all four — without
// collapsing throughput.
func TestDisaggregationReducesDecodeTail(t *testing.T) {
	points, err := Disaggregation(smallDisaggOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("got %d points, want 4 distributions x 2 modes", len(points))
	}
	wins := 0
	for i := 0; i < len(points); i += 2 {
		uni, dis := points[i], points[i+1]
		if uni.Workload != dis.Workload || uni.Mode != "unified" || dis.Mode == "unified" {
			t.Fatalf("pairing broken: %+v / %+v", uni, dis)
		}
		if dis.DecodeP99 < uni.DecodeP99 {
			wins++
		}
		if dis.Throughput < 0.8*uni.Throughput {
			t.Fatalf("%s: disaggregation collapsed throughput %.0f -> %.0f",
				uni.Workload, uni.Throughput, dis.Throughput)
		}
		if dis.KVMigrations == 0 {
			t.Fatalf("%s: split mode performed no KV migrations", dis.Workload)
		}
		if uni.KVMigrations != 0 {
			t.Fatalf("%s: unified mode migrated KV", uni.Workload)
		}
		if dis.PrefillUtil == 0 || dis.DecodeUtil == 0 {
			t.Fatalf("%s: pool utilization missing: %+v", dis.Workload, dis)
		}
	}
	if wins == 0 {
		t.Fatal("disaggregation reduced decode p99 on no distribution")
	}
}

func TestDisaggregationCSVAndFormat(t *testing.T) {
	points := []DisaggPoint{{
		Workload: "Skewed", Mode: "2p+6d",
		Throughput: 500, Finished: 100,
		DecodeP50: 0.015, DecodeP99: 0.034,
		P50TTFT: 0.1, P99TTFT: 0.4,
		PrefillUtil: 0.5, DecodeUtil: 0.3,
		KVMigrations: 99, KVMigratedMB: 1234.5, Fallbacks: 1,
		AdapterPrefetches: 98, QueuePeak: 7,
	}}
	var buf bytes.Buffer
	if err := DisaggregationCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{"prefill_util", "decode_util", "decode_p99_s", "kv_migrations", "Skewed,2p+6d"} {
		if !strings.Contains(got, want) {
			t.Fatalf("CSV missing %q:\n%s", want, got)
		}
	}
	text := FormatDisaggregation(points)
	if !strings.Contains(text, "2p+6d") || !strings.Contains(text, "decode p99") {
		t.Fatalf("format output unexpected:\n%s", text)
	}
	recs := DisaggRecords(points)
	if len(recs) != 1 || recs[0].Experiment != "disagg" || recs[0].Metrics["decode_p99_s"] != 0.034 {
		t.Fatalf("records = %+v", recs)
	}
}
