package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"punica/internal/cluster"
	"punica/internal/core"
	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/metrics"
	"punica/internal/models"
	"punica/internal/sched"
	"punica/internal/workload"
)

// FaultsOptions parameterises the availability experiment: the same
// Poisson trace replays under every (placement policy × failure rate)
// cell, with failures drawn as a seeded Poisson process of crash,
// crash-and-replace, and transient-stall events. Rate 0 is the
// fault-free baseline each policy's degradation is measured against.
type FaultsOptions struct {
	NumGPUs int
	// Rate is the arrival rate (req/s); Rate×Horizon sizes the trace.
	Rate    float64
	Horizon time.Duration
	Seed    int64

	// Policies to compare (default: all built-ins).
	Policies []string
	// FaultRates are the injected failure rates in faults per GPU-hour.
	// 0 must be present (or is prepended) to anchor the baseline.
	FaultRates []float64
}

// DefaultFaultsOptions returns an 8-GPU sweep that finishes in seconds
// of wall time while still injecting several failures per cell.
func DefaultFaultsOptions() FaultsOptions {
	return FaultsOptions{
		NumGPUs:    8,
		Rate:       12,
		Horizon:    3 * time.Minute,
		Seed:       42,
		Policies:   append([]string(nil), sched.PolicyNames...),
		FaultRates: []float64{0, 30, 90},
	}
}

func (o FaultsOptions) withDefaults() FaultsOptions {
	d := DefaultFaultsOptions()
	if o.NumGPUs <= 0 {
		o.NumGPUs = d.NumGPUs
	}
	if o.Rate <= 0 {
		o.Rate = d.Rate
	}
	if o.Horizon <= 0 {
		o.Horizon = d.Horizon
	}
	if len(o.Policies) == 0 {
		o.Policies = d.Policies
	}
	if len(o.FaultRates) == 0 {
		o.FaultRates = d.FaultRates
	}
	hasZero := false
	for _, r := range o.FaultRates {
		if r == 0 {
			hasZero = true
		}
	}
	if !hasZero {
		o.FaultRates = append([]float64{0}, o.FaultRates...)
	}
	// The fault-free baseline must run before the cells measured
	// against it: sort ascending so rate 0 is always first.
	sort.Float64s(o.FaultRates)
	return o
}

// FaultsPoint is one (policy, failure-rate) cell.
type FaultsPoint struct {
	Policy    string
	FaultRate float64 // faults per GPU-hour

	Failures     int64
	Replacements int64
	Stalls       int64
	Recovered    int64
	// RecomputedPrefillTokens is the KvCache context destroyed by
	// crashes — the recomputation bill recovery pays.
	RecomputedPrefillTokens int64

	Finished   int64
	Throughput float64
	// ThroughputFrac is Throughput over the same policy's fault-free
	// baseline (1.0 at rate 0).
	ThroughputFrac float64
	P50TTFT        float64 // seconds
	P99TTFT        float64
	// P99TTFTDelta is P99TTFT minus the fault-free baseline's (seconds).
	P99TTFTDelta float64
	// RecoveryP50/P99 are failure→re-placement latencies (seconds).
	RecoveryP50 float64
	RecoveryP99 float64
}

// faultsTrace builds the shared request stream: constant-rate Poisson
// arrivals with the paper's Skewed popularity.
func faultsTrace(o FaultsOptions) []workload.Request {
	gen := workload.NewGenerator(dist.Skewed, workload.ShareGPTLengths(), o.Seed)
	n := int(o.Rate * o.Horizon.Seconds())
	rate := func(time.Duration) float64 { return o.Rate }
	return gen.Poisson(rate, o.Rate, o.Horizon, dist.NumModels(dist.Skewed, n))
}

// Faults runs the availability sweep: for each policy, the identical
// trace under each failure rate, reporting throughput and p99-TTFT
// degradation versus that policy's fault-free run. Every cell asserts
// the recovery contract — all requests finish, recovered or not.
func Faults(opts FaultsOptions) ([]FaultsPoint, error) {
	o := opts.withDefaults()
	var out []FaultsPoint
	for _, policy := range o.Policies {
		var baseThroughput, baseP99 float64
		for _, rate := range o.FaultRates {
			reqs := faultsTrace(o)
			var plan *cluster.FaultPlan
			if rate > 0 {
				p := cluster.RandomFaultPlan(o.Seed+int64(rate*1000), o.NumGPUs, o.Horizon, rate)
				plan = &p
			}
			c := cluster.New(cluster.Config{
				NumGPUs: o.NumGPUs,
				Engine: core.Config{
					System: core.PunicaSystem(),
					GPU:    hw.A100(),
					Model:  models.Llama2_7B(),
					Rank:   models.DefaultLoRARank,
				},
				MigrationInterval: 10 * time.Second,
				Policy:            policy,
				Faults:            plan,
			})
			res, err := c.Run(reqs)
			if err != nil {
				return nil, fmt.Errorf("faults %s@%.0f: %w", policy, rate, err)
			}
			if res.Finished != int64(len(reqs)) {
				return nil, fmt.Errorf("faults %s@%.0f: finished %d/%d — recovery lost requests",
					policy, rate, res.Finished, len(reqs))
			}
			p := FaultsPoint{
				Policy:                  policyLabel(policy),
				FaultRate:               rate,
				Failures:                res.GPUFailures,
				Replacements:            res.GPUReplacements,
				Stalls:                  res.GPUStalls,
				Recovered:               res.RecoveredRequests,
				RecomputedPrefillTokens: res.RecomputedPrefillTokens,
				Finished:                res.Finished,
				Throughput:              res.Throughput,
				P50TTFT:                 res.TimeToFirstToken.Percentile(50),
				P99TTFT:                 res.TimeToFirstToken.Percentile(99),
				RecoveryP50:             res.RecoveryLatency.Percentile(50),
				RecoveryP99:             res.RecoveryLatency.Percentile(99),
			}
			if rate == 0 {
				baseThroughput, baseP99 = p.Throughput, p.P99TTFT
			}
			if baseThroughput > 0 {
				p.ThroughputFrac = p.Throughput / baseThroughput
			}
			p.P99TTFTDelta = p.P99TTFT - baseP99
			out = append(out, p)
		}
	}
	return out, nil
}

func policyLabel(name string) string {
	if name == "" {
		return "paper"
	}
	return name
}

// MergedRecoveryLatency folds per-cell recovery histograms into one
// distribution — a convenience for summarising a sweep.
func MergedRecoveryLatency(results []*cluster.Result) metrics.Histogram {
	var h metrics.Histogram
	for _, r := range results {
		if r != nil {
			h.Merge(&r.RecoveryLatency)
		}
	}
	return h
}

// FormatFaults renders the sweep as a table.
func FormatFaults(points []FaultsPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — availability under GPU failures (crash / crash+replace / stall):\n")
	fmt.Fprintf(&b, "degradation is vs. the same policy at fault rate 0\n\n")
	t := newTable("policy", "faults/GPU-h", "fail", "repl", "stall", "recov",
		"recompute-tok", "tok/s", "vs base", "p99 TTFT(s)", "Δp99(s)", "recov p99(s)")
	for _, p := range points {
		t.add(
			p.Policy,
			fmt.Sprintf("%.0f", p.FaultRate),
			fmt.Sprint(p.Failures),
			fmt.Sprint(p.Replacements),
			fmt.Sprint(p.Stalls),
			fmt.Sprint(p.Recovered),
			fmt.Sprint(p.RecomputedPrefillTokens),
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%.2f", p.ThroughputFrac),
			fmt.Sprintf("%.2f", p.P99TTFT),
			fmt.Sprintf("%+.2f", p.P99TTFTDelta),
			fmt.Sprintf("%.3f", p.RecoveryP99),
		)
	}
	b.WriteString(t.String())
	return b.String()
}

// FaultsCSV writes the sweep as CSV.
func FaultsCSV(out io.Writer, points []FaultsPoint) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"policy", "faults_per_gpu_hour", "failures", "replacements",
		"stalls", "recovered", "recomputed_prefill_tokens", "finished",
		"throughput_tok_s", "throughput_frac", "p50_ttft_s", "p99_ttft_s",
		"p99_ttft_delta_s", "recovery_p50_s", "recovery_p99_s"}}
	for _, p := range points {
		rows = append(rows, []string{
			p.Policy,
			strconv.FormatFloat(p.FaultRate, 'f', 1, 64),
			strconv.FormatInt(p.Failures, 10),
			strconv.FormatInt(p.Replacements, 10),
			strconv.FormatInt(p.Stalls, 10),
			strconv.FormatInt(p.Recovered, 10),
			strconv.FormatInt(p.RecomputedPrefillTokens, 10),
			strconv.FormatInt(p.Finished, 10),
			strconv.FormatFloat(p.Throughput, 'f', 1, 64),
			strconv.FormatFloat(p.ThroughputFrac, 'f', 4, 64),
			strconv.FormatFloat(p.P50TTFT, 'f', 4, 64),
			strconv.FormatFloat(p.P99TTFT, 'f', 4, 64),
			strconv.FormatFloat(p.P99TTFTDelta, 'f', 4, 64),
			strconv.FormatFloat(p.RecoveryP50, 'f', 4, 64),
			strconv.FormatFloat(p.RecoveryP99, 'f', 4, 64),
		})
	}
	return writeAll(w, rows)
}
