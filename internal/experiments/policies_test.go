package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"punica/internal/sched"
)

// comparePoints runs the 18-cluster-run head-to-head once per test
// binary; the tests that share it assert different cells.
var comparePointsOnce = sync.OnceValues(func() ([]PolicyComparePoint, error) {
	opts := DefaultPolicyCompareOptions()
	opts.Horizon = 45 * time.Second
	return ComparePolicies(opts)
})

func comparePoints(t *testing.T) []PolicyComparePoint {
	t.Helper()
	points, err := comparePointsOnce()
	if err != nil {
		t.Fatal(err)
	}
	return points
}

func pointFor(t *testing.T, points []PolicyComparePoint, workload, policy string) PolicyComparePoint {
	t.Helper()
	for _, p := range points {
		if p.Workload == workload && p.Policy == policy {
			return p
		}
	}
	t.Fatalf("no point for %s/%s", workload, policy)
	return PolicyComparePoint{}
}

// TestPolicyComparisonAffinityWinsOnSkewed is the PR's acceptance
// criterion: under adapter-store pressure on the Skewed distribution,
// AdapterAffinity strictly reduces AdapterStalls + AdapterEvictions
// versus the paper's §5.1 placement.
func TestPolicyComparisonAffinityWinsOnSkewed(t *testing.T) {
	points := comparePoints(t)
	if want := 6 * len(sched.PolicyNames); len(points) != want {
		t.Fatalf("got %d points, want %d (6 workloads × %d policies)", len(points), want, len(sched.PolicyNames))
	}
	paper := pointFor(t, points, "Skewed", sched.PolicyPaper)
	affinity := pointFor(t, points, "Skewed", sched.PolicyAdapterAffinity)
	if paper.AdapterStalls+paper.AdapterEvictions == 0 {
		t.Fatal("scenario has no adapter-store pressure; the comparison is vacuous")
	}
	p := paper.AdapterStalls + paper.AdapterEvictions
	a := affinity.AdapterStalls + affinity.AdapterEvictions
	if a >= p {
		t.Fatalf("affinity stalls+evictions = %d, want strictly below paper's %d", a, p)
	}
	// Locality must not cost completed work.
	if affinity.Finished != paper.Finished {
		t.Fatalf("affinity finished %d of the trace, paper %d", affinity.Finished, paper.Finished)
	}
}

// TestPolicyComparisonDriftFavorsAffinity checks the rotating-hot-set
// extension workload: when the popular adapters change mid-run, warm
// routing sheds most of the §5.2 eviction churn.
func TestPolicyComparisonDriftFavorsAffinity(t *testing.T) {
	points := comparePoints(t)
	paper := pointFor(t, points, "ZipfDrift", sched.PolicyPaper)
	affinity := pointFor(t, points, "ZipfDrift", sched.PolicyAdapterAffinity)
	if affinity.AdapterEvictions >= paper.AdapterEvictions {
		t.Fatalf("drift evictions: affinity %d, want below paper's %d",
			affinity.AdapterEvictions, paper.AdapterEvictions)
	}
}

func TestPolicyCompareCSVAndFormat(t *testing.T) {
	points := []PolicyComparePoint{{
		Workload: "Skewed", Policy: "affinity",
		Throughput: 123.4, BusyFrac: 0.25, UtilSpread: 0.1,
		AdapterStalls: 2, AdapterEvictions: 3, Migrations: 4, QueuePeak: 5,
	}}
	var buf bytes.Buffer
	if err := PolicyCompareCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "workload,policy,throughput_tok_s,busy_frac,util_spread,adapter_stalls,adapter_evictions,migrations,queue_peak") {
		t.Fatalf("missing header: %q", got)
	}
	if !strings.Contains(got, "Skewed,affinity,123.4,0.2500,0.1000,2,3,4,5") {
		t.Fatalf("missing row: %q", got)
	}
	if text := FormatPolicyCompare(points); !strings.Contains(text, "Skewed") || !strings.Contains(text, "affinity") {
		t.Fatalf("format output missing cells: %q", text)
	}
}
