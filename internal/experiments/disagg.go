package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"punica/internal/cluster"
	"punica/internal/core"
	"punica/internal/dist"
	"punica/internal/hw"
	"punica/internal/models"
	"punica/internal/workload"
)

// DisaggOptions parameterises the prefill/decode disaggregation
// experiment: the same prefill-heavy trace replays on the same GPU
// count in unified mode (every GPU runs "Prefill steps and Decode steps
// continuously", §5) and in disaggregated mode (a prefill pool feeds a
// decode pool by KV migration), so any difference in decode-side tail
// latency is attributable to removing prefill head-of-line blocking.
type DisaggOptions struct {
	NumGPUs int
	// PrefillGPUs sizes the disaggregated prefill pool; the remaining
	// NumGPUs − PrefillGPUs serve decode.
	PrefillGPUs int
	// Rate is the arrival rate (req/s); Rate×Horizon sizes each trace.
	Rate    float64
	Horizon time.Duration
	Seed    int64

	// Lengths samples the prefill-heavy mix: long prompts (the blocking
	// work) with moderate outputs (the blocked work).
	Lengths workload.Lengths

	// Policy selects the placement policy for both modes.
	Policy string
}

// PrefillHeavyLengths is the disaggregation experiment's mix: prompts
// averaging ≈700 tokens (capped near the engine's single-step prefill
// ceiling) against ShareGPT-like outputs. One such prefill occupies a
// unified GPU for tens of milliseconds — several decode steps' worth of
// stall for every other tenant in the batch.
func PrefillHeavyLengths() workload.Lengths {
	return workload.Lengths{
		PromptMu: 6.4, PromptSigma: 0.5, PromptMin: 256, PromptMax: 1536,
		OutMu: 4.0, OutSigma: 0.7, OutMin: 8, OutMax: 256,
	}
}

// DefaultDisaggOptions returns an 8-GPU sweep (2 prefill + 6 decode in
// disaggregated mode) that finishes in seconds of wall time.
func DefaultDisaggOptions() DisaggOptions {
	return DisaggOptions{
		NumGPUs:     8,
		PrefillGPUs: 2,
		Rate:        24,
		Horizon:     2 * time.Minute,
		Seed:        42,
		Lengths:     PrefillHeavyLengths(),
	}
}

func (o DisaggOptions) withDefaults() DisaggOptions {
	d := DefaultDisaggOptions()
	if o.NumGPUs <= 0 {
		o.NumGPUs = d.NumGPUs
	}
	if o.PrefillGPUs <= 0 || o.PrefillGPUs >= o.NumGPUs {
		o.PrefillGPUs = cluster.DisaggFromRatio(o.NumGPUs, 0.25).PrefillGPUs
	}
	if o.Rate <= 0 {
		o.Rate = d.Rate
	}
	if o.Horizon <= 0 {
		o.Horizon = d.Horizon
	}
	if o.Lengths == (workload.Lengths{}) {
		o.Lengths = d.Lengths
	}
	return o
}

// DisaggPrefillGPUs translates a -disagg-ratio CLI knob into a prefill
// pool size for numGPUs.
func DisaggPrefillGPUs(numGPUs int, ratio float64) int {
	return cluster.DisaggFromRatio(numGPUs, ratio).PrefillGPUs
}

// DisaggPoint is one (distribution, mode) cell of the comparison.
type DisaggPoint struct {
	Workload string
	Mode     string // "unified" or "P+D" (e.g. "2p+6d")

	Throughput float64
	Finished   int64
	// DecodeP50/P99 are inter-token latency percentiles (seconds) — the
	// §5 head-of-line metric disaggregation attacks.
	DecodeP50 float64
	DecodeP99 float64
	P50TTFT   float64
	P99TTFT   float64

	// Pool utilization (derived from core.Stats.BusyTime): in unified
	// mode both report the fleet mean; split, they expose imbalance.
	PrefillUtil float64
	DecodeUtil  float64

	KVMigrations      int64
	KVMigratedMB      float64
	Fallbacks         int64
	AdapterPrefetches int64
	QueuePeak         int
}

// disaggTrace builds one distribution's prefill-heavy Poisson trace.
func (o DisaggOptions) disaggTrace(kind dist.Kind) []workload.Request {
	gen := workload.NewGenerator(kind, o.Lengths, o.Seed)
	n := int(o.Rate * o.Horizon.Seconds())
	rate := func(time.Duration) float64 { return o.Rate }
	return gen.Poisson(rate, o.Rate, o.Horizon, dist.NumModels(kind, n))
}

func (o DisaggOptions) run(reqs []workload.Request, disagg *cluster.DisaggConfig) (*cluster.Result, error) {
	c := cluster.New(cluster.Config{
		NumGPUs: o.NumGPUs,
		Engine: core.Config{
			System: core.PunicaSystem(),
			GPU:    hw.A100(),
			Model:  models.Llama2_7B(),
			Rank:   models.DefaultLoRARank,
		},
		MigrationInterval: 10 * time.Second,
		Policy:            o.Policy,
		Disagg:            disagg,
	})
	return c.Run(reqs)
}

func disaggPoint(workloadName, mode string, res *cluster.Result) DisaggPoint {
	return DisaggPoint{
		Workload:          workloadName,
		Mode:              mode,
		Throughput:        res.Throughput,
		Finished:          res.Finished,
		DecodeP50:         res.InterTokenLatency.Percentile(50),
		DecodeP99:         res.InterTokenLatency.Percentile(99),
		P50TTFT:           res.TimeToFirstToken.Percentile(50),
		P99TTFT:           res.TimeToFirstToken.Percentile(99),
		PrefillUtil:       res.PrefillUtil,
		DecodeUtil:        res.DecodeUtil,
		KVMigrations:      res.KVMigrations,
		KVMigratedMB:      float64(res.KVMigratedBytes) / (1 << 20),
		Fallbacks:         res.KVMigrationFallbacks,
		AdapterPrefetches: res.AdapterPrefetches,
		QueuePeak:         res.QueuePeak,
	}
}

// Disaggregation runs the unified-vs-disaggregated head-to-head over
// the four paper popularity distributions under the prefill-heavy mix:
// each distribution's identical trace replays on NumGPUs unified GPUs
// and on a PrefillGPUs/(NumGPUs−PrefillGPUs) split fleet. Every cell
// asserts the recovery and leak contracts (all requests finish; KV and
// pin accounting checked inside cluster.Run).
func Disaggregation(opts DisaggOptions) ([]DisaggPoint, error) {
	o := opts.withDefaults()
	split := cluster.DisaggConfig{
		PrefillGPUs: o.PrefillGPUs,
		DecodeGPUs:  o.NumGPUs - o.PrefillGPUs,
	}
	splitName := fmt.Sprintf("%dp+%dd", split.PrefillGPUs, split.DecodeGPUs)
	var points []DisaggPoint
	for _, kind := range dist.Kinds {
		// One trace per distribution, shared by both modes: cluster.Run
		// copies request state into its own core.Requests, so the slice
		// is read-only across runs and the equal-trace property is
		// structural.
		reqs := o.disaggTrace(kind)
		n := int64(len(reqs))
		uni, err := o.run(reqs, nil)
		if err != nil {
			return nil, fmt.Errorf("disagg %s unified: %w", kind, err)
		}
		if uni.Finished != n {
			return nil, fmt.Errorf("disagg %s unified finished %d/%d", kind, uni.Finished, n)
		}
		dis, err := o.run(reqs, &split)
		if err != nil {
			return nil, fmt.Errorf("disagg %s split: %w", kind, err)
		}
		if dis.Finished != n {
			return nil, fmt.Errorf("disagg %s split finished %d/%d", kind, dis.Finished, n)
		}
		points = append(points,
			disaggPoint(kind.String(), "unified", uni),
			disaggPoint(kind.String(), splitName, dis))
	}
	return points, nil
}

// FormatDisaggregation renders the head-to-head as a table.
func FormatDisaggregation(points []DisaggPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — prefill/decode disaggregation (prefill-heavy mix, equal GPU count):\n")
	fmt.Fprintf(&b, "decode p50/p99 are inter-token latencies; util columns are per-pool busy fractions\n\n")
	t := newTable("workload", "mode", "tok/s", "decode p50(ms)", "decode p99(ms)",
		"p99 TTFT(s)", "prefill util", "decode util", "kv moves", "moved MB", "fallbacks")
	for _, p := range points {
		t.add(
			p.Workload, p.Mode,
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%.1f", 1000*p.DecodeP50),
			fmt.Sprintf("%.1f", 1000*p.DecodeP99),
			fmt.Sprintf("%.2f", p.P99TTFT),
			fmt.Sprintf("%.1f%%", 100*p.PrefillUtil),
			fmt.Sprintf("%.1f%%", 100*p.DecodeUtil),
			fmt.Sprint(p.KVMigrations),
			fmt.Sprintf("%.0f", p.KVMigratedMB),
			fmt.Sprint(p.Fallbacks),
		)
	}
	b.WriteString(t.String())
	return b.String()
}

// DisaggregationCSV writes the sweep as CSV, including the per-pool
// utilization columns.
func DisaggregationCSV(out io.Writer, points []DisaggPoint) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"workload", "mode", "throughput_tok_s", "finished",
		"decode_p50_s", "decode_p99_s", "p50_ttft_s", "p99_ttft_s",
		"prefill_util", "decode_util", "kv_migrations", "kv_migrated_mb",
		"kv_fallbacks", "adapter_prefetches", "queue_peak"}}
	for _, p := range points {
		rows = append(rows, []string{
			p.Workload, p.Mode,
			strconv.FormatFloat(p.Throughput, 'f', 1, 64),
			strconv.FormatInt(p.Finished, 10),
			strconv.FormatFloat(p.DecodeP50, 'f', 5, 64),
			strconv.FormatFloat(p.DecodeP99, 'f', 5, 64),
			strconv.FormatFloat(p.P50TTFT, 'f', 4, 64),
			strconv.FormatFloat(p.P99TTFT, 'f', 4, 64),
			strconv.FormatFloat(p.PrefillUtil, 'f', 4, 64),
			strconv.FormatFloat(p.DecodeUtil, 'f', 4, 64),
			strconv.FormatInt(p.KVMigrations, 10),
			strconv.FormatFloat(p.KVMigratedMB, 'f', 1, 64),
			strconv.FormatInt(p.Fallbacks, 10),
			strconv.FormatInt(p.AdapterPrefetches, 10),
			strconv.Itoa(p.QueuePeak),
		})
	}
	return writeAll(w, rows)
}

// DisaggRecords flattens the sweep for punica-bench -json.
func DisaggRecords(points []DisaggPoint) []BenchRecord {
	var recs []BenchRecord
	for _, p := range points {
		recs = append(recs, BenchRecord{
			Experiment: "disagg",
			Name:       fmt.Sprintf("%s/%s", p.Workload, p.Mode),
			Metrics: map[string]float64{
				"throughput_tok_s":   p.Throughput,
				"decode_p50_s":       p.DecodeP50,
				"decode_p99_s":       p.DecodeP99,
				"p50_ttft_s":         p.P50TTFT,
				"p99_ttft_s":         p.P99TTFT,
				"prefill_util":       p.PrefillUtil,
				"decode_util":        p.DecodeUtil,
				"kv_migrations":      float64(p.KVMigrations),
				"kv_migrated_mb":     p.KVMigratedMB,
				"kv_fallbacks":       float64(p.Fallbacks),
				"adapter_prefetches": float64(p.AdapterPrefetches),
				"queue_peak":         float64(p.QueuePeak),
			},
		})
	}
	return recs
}
