//go:build punica_invariants

package invariant

import (
	"strings"
	"testing"
)

// TestFailfPanics pins the tagged contract: Enabled is true and Failf
// panics with the formatted violation.
func TestFailfPanics(t *testing.T) {
	if !Enabled {
		t.Fatal("invariant.Enabled must be true under the punica_invariants tag")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Failf did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "punica invariant violation: kv: 3 pages") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	Failf("kv: %d pages", 3)
}
