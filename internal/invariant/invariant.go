// Package invariant is the runtime half of the punica-vet contract
// suite: checks too dynamic for static analysis (accounting balances,
// queue ordering, version monotonicity, leak detection at quiescence)
// compile to nothing in normal builds and to loud panics under the
// `punica_invariants` build tag.
//
// Usage is always the guarded form
//
//	if invariant.Enabled {
//		if bad {
//			invariant.Failf("kvcache: %d pages leaked", n)
//		}
//	}
//
// Enabled is an untyped constant, so the default build dead-code
// eliminates the whole block — no branch, no boxing of Failf's
// arguments, nothing for the zeroalloc analyzer to object to in hot
// paths. CI runs the chaos and disaggregation suites with
// `-tags punica_invariants -race` so every contract is exercised under
// the heaviest schedules we can generate.
package invariant
