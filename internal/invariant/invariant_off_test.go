//go:build !punica_invariants

package invariant

import "testing"

// TestDisabledByDefault pins the zero-cost contract: Enabled is false
// and Failf is inert, so guarded blocks are dead code in normal builds.
func TestDisabledByDefault(t *testing.T) {
	if Enabled {
		t.Fatal("invariant.Enabled must be false without the punica_invariants tag")
	}
	Failf("must not panic in untagged builds: %d", 42)
}
