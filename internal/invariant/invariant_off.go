//go:build !punica_invariants

package invariant

// Enabled reports whether invariant checking is compiled in. As a false
// constant it makes every `if invariant.Enabled { ... }` block dead
// code: the checks cost nothing unless the build asks for them.
const Enabled = false

// Failf is unreachable in untagged builds (callers guard on Enabled);
// the no-op body keeps call sites compiling identically in both modes.
func Failf(format string, args ...any) {}
