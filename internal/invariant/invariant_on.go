//go:build punica_invariants

package invariant

import "fmt"

// Enabled reports whether invariant checking is compiled in.
const Enabled = true

// Failf panics with the formatted violation. Panicking (rather than
// returning an error) is deliberate: an invariant violation means the
// simulator's state is already corrupt, and the stack at the violating
// mutation is the diagnostic that matters.
func Failf(format string, args ...any) {
	panic("punica invariant violation: " + fmt.Sprintf(format, args...))
}
