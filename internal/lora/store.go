package lora

import (
	"container/list"
	"errors"
	"fmt"
	"time"

	"punica/internal/hw"
	"punica/internal/invariant"
)

// ErrStoreFull reports that an adapter could not be loaded because every
// resident adapter is pinned by a running or queued request. It is
// transient backpressure, not a fatal condition: schedulers match it
// with errors.Is and requeue the request until pins release.
var ErrStoreFull = errors.New("store full and all adapters pinned")

// Store is a per-GPU LoRA weight cache implementing §5.2's on-demand
// loading: "When a request is newly added to a GPU, if its LoRA model is
// not already loaded, we issue an asynchronous memory copy to load the
// LoRA weight, and let the GPU continue running other inputs in the
// batch. By the end of the model execution, the weight already finished
// loading."
//
// Acquire returns the simulated time at which the adapter becomes usable;
// the engine keeps the request out of the batch until then. Resident
// adapters are evicted LRU when capacity is exceeded, but never while a
// request still references them.
type Store struct {
	reg      *Registry
	link     hw.Link
	capacity int64

	used    int64
	pinned  int64 // bytes held by entries with refs > 0
	entries map[ModelID]*entry
	lru     *list.List // front = most recently used

	// adaptersCache is the reusable AdapterState view Adapters returns;
	// adaptersDirty marks it stale after any mutation. The cache makes
	// per-decision snapshots copy-free on the (common) no-mutation path.
	adaptersCache []AdapterState
	adaptersDirty bool

	// OnEvict, when set, observes every capacity eviction after the
	// victim has been removed: its id, rank and byte size. The tiered
	// store registers a hook here to demote evicted adapters into host
	// RAM instead of discarding them; nil (the default) discards
	// silently — the flat §5.3 behaviour, byte-identical to before the
	// hook existed.
	OnEvict func(id ModelID, rank int, bytes int64)

	// Stats observed since creation.
	Hits      int64
	Misses    int64
	Evictions int64
	BytesIn   int64
	// Prefetches counts Prefetch calls that started a load (warm
	// prefetches are free and not counted).
	Prefetches int64
}

type entry struct {
	id      ModelID
	rank    int
	bytes   int64
	readyAt time.Duration
	refs    int
	elem    *list.Element
}

// NewStore builds a weight cache of capacityBytes fed over link (PCIe in
// the paper's deployment).
func NewStore(reg *Registry, link hw.Link, capacityBytes int64) *Store {
	if capacityBytes <= 0 {
		panic("lora: store capacity must be positive")
	}
	return &Store{
		reg:      reg,
		link:     link,
		capacity: capacityBytes,
		entries:  make(map[ModelID]*entry),
		lru:      list.New(),
	}
}

// Acquire pins adapter id for a request at simulation time now and
// returns when the adapter's weights are usable. A resident adapter is
// usable at max(now, its load completion); a missing one starts an
// asynchronous host-to-device copy that completes after the link transfer
// time. Acquire fails only when the cache cannot hold the adapter even
// after evicting every unpinned entry.
func (s *Store) Acquire(id ModelID, now time.Duration) (time.Duration, error) {
	s.adaptersDirty = true // LRU order, pin flags or residency change below
	if e, ok := s.entries[id]; ok {
		s.Hits++
		if e.refs == 0 {
			s.pinned += e.bytes
		}
		e.refs++
		s.lru.MoveToFront(e.elem)
		if e.readyAt > now {
			return e.readyAt, nil
		}
		return now, nil
	}
	s.Misses++
	m := s.reg.Ensure(id)
	bytes := m.Bytes()
	if err := s.makeRoom(bytes, now); err != nil {
		return 0, err
	}
	readyAt := now + s.link.TransferTime(bytes)
	e := &entry{id: id, rank: m.Rank, bytes: bytes, readyAt: readyAt, refs: 1}
	e.elem = s.lru.PushFront(e)
	s.entries[id] = e
	s.used += bytes
	s.pinned += bytes
	s.BytesIn += bytes
	s.checkAccounting("Acquire")
	return readyAt, nil
}

// Prefetch starts loading adapter id without pinning it: the entry is
// resident (and evictable — it holds no reference) once the copy
// completes. The disaggregation router calls it on a request's intended
// decode GPU while the prefill pool computes the prompt, so the adapter
// is warm by the time the KV migration lands — cold-start work overlaps
// prefill instead of stalling decode. A store too full to take the
// weights ignores the hint: prefetch is best-effort and never applies
// backpressure. It returns the time the adapter becomes usable and
// whether the hint was accepted.
func (s *Store) Prefetch(id ModelID, now time.Duration) (time.Duration, bool) {
	s.adaptersDirty = true
	if e, ok := s.entries[id]; ok {
		s.lru.MoveToFront(e.elem)
		if e.readyAt > now {
			return e.readyAt, true
		}
		return now, true
	}
	m := s.reg.Ensure(id)
	bytes := m.Bytes()
	if err := s.makeRoom(bytes, now); err != nil {
		return 0, false
	}
	readyAt := now + s.link.TransferTime(bytes)
	e := &entry{id: id, rank: m.Rank, bytes: bytes, readyAt: readyAt}
	e.elem = s.lru.PushFront(e)
	s.entries[id] = e
	s.used += bytes
	s.BytesIn += bytes
	s.Prefetches++
	s.checkAccounting("Prefetch")
	return readyAt, true
}

// CanAcquire reports whether Acquire would succeed for adapter id right
// now: the adapter is resident, or enough unpinned bytes can be evicted
// to make room. The scheduler itself learns this by attempting Enqueue
// and matching ErrStoreFull; CanAcquire is for drivers and diagnostics
// that want the answer without committing a pin.
func (s *Store) CanAcquire(id ModelID) bool {
	if _, ok := s.entries[id]; ok {
		return true
	}
	need := s.reg.Ensure(id).Bytes()
	return need <= s.capacity && s.pinned+need <= s.capacity
}

// Release unpins one reference on adapter id. The adapter stays resident
// (warm) until capacity pressure evicts it.
func (s *Store) Release(id ModelID) {
	e, ok := s.entries[id]
	if !ok {
		return
	}
	if e.refs > 0 {
		e.refs--
		if e.refs == 0 {
			s.pinned -= e.bytes
			s.adaptersDirty = true // pin flag flipped
		}
	}
	s.checkAccounting("Release")
}

// Resident reports whether adapter id is currently in GPU memory.
func (s *Store) Resident(id ModelID) bool {
	_, ok := s.entries[id]
	return ok
}

// AdapterState describes one resident adapter for scheduler snapshots.
type AdapterState struct {
	ID     ModelID `json:"id"`
	Rank   int     `json:"rank"`
	Bytes  int64   `json:"bytes"`
	Pinned bool    `json:"pinned"`
}

// Adapters returns the resident adapters, most recently used first —
// the deterministic view placement policies rank on. The returned slice
// is owned by the store and reused: it is valid (and stable) until the
// next store mutation, after which its contents are rewritten in place.
// Callers that need the view to outlive further store activity must
// copy it. On the no-mutation path a call is copy-free — the scheduler's
// version-cached snapshots hit this constantly.
func (s *Store) Adapters() []AdapterState {
	if len(s.entries) == 0 {
		return nil
	}
	if !s.adaptersDirty && s.adaptersCache != nil {
		return s.adaptersCache
	}
	out := s.adaptersCache[:0]
	for el := s.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, AdapterState{
			ID:     e.id,
			Rank:   e.rank,
			Bytes:  e.bytes,
			Pinned: e.refs > 0,
		})
	}
	s.adaptersCache = out
	s.adaptersDirty = false
	return out
}

// CapacityBytes returns the store's total weight budget.
func (s *Store) CapacityBytes() int64 { return s.capacity }

// UsedBytes returns the bytes held by resident adapters.
func (s *Store) UsedBytes() int64 { return s.used }

// PinnedBytes returns the bytes held by adapters pinned by at least one
// request. It must return to zero once every request has completed; a
// nonzero value at quiescence is a pin leak.
func (s *Store) PinnedBytes() int64 { return s.pinned }

// Len returns the number of resident adapters.
func (s *Store) Len() int { return len(s.entries) }

func (s *Store) makeRoom(need int64, now time.Duration) error {
	if need > s.capacity {
		return fmt.Errorf("lora: adapter of %d bytes exceeds store capacity %d", need, s.capacity)
	}
	for s.used+need > s.capacity {
		victim := s.oldestEvictable(now)
		if victim == nil {
			return fmt.Errorf("lora: %w (%d/%d bytes resident, %d pinned)",
				ErrStoreFull, s.used, s.capacity, s.pinned)
		}
		s.lru.Remove(victim.elem)
		delete(s.entries, victim.id)
		s.used -= victim.bytes
		s.Evictions++
		s.adaptersDirty = true
		if s.OnEvict != nil {
			s.OnEvict(victim.id, victim.rank, victim.bytes)
		}
	}
	s.checkAccounting("makeRoom")
	return nil
}

// checkAccounting verifies the byte ledger under the punica_invariants
// build: pinned bytes are a subset of used bytes, which never exceed
// capacity, and the entry map agrees with the running totals. Compiled
// out otherwise (invariant.Enabled is a false constant).
func (s *Store) checkAccounting(op string) {
	if !invariant.Enabled {
		return
	}
	if s.pinned < 0 || s.pinned > s.used || s.used > s.capacity {
		invariant.Failf("lora: byte accounting out of bounds after %s: pinned=%d used=%d capacity=%d",
			op, s.pinned, s.used, s.capacity)
	}
	var used, pinned int64
	for _, e := range s.entries {
		used += e.bytes
		if e.refs > 0 {
			pinned += e.bytes
		}
	}
	if used != s.used || pinned != s.pinned {
		invariant.Failf("lora: ledger drift after %s: entries say used=%d pinned=%d, totals say used=%d pinned=%d",
			op, used, pinned, s.used, s.pinned)
	}
}

// oldestEvictable returns the least recently used entry that is neither
// pinned nor still loading. An in-flight copy cannot be cancelled, and
// discarding it mid-transfer double-charges the link: a Prefetch
// immediately followed by an Acquire of the same id must pay the
// remaining load time, never a restarted full transfer — so entries with
// readyAt in the future are not eviction victims.
func (s *Store) oldestEvictable(now time.Duration) *entry {
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e.refs == 0 && e.readyAt <= now {
			return e
		}
	}
	return nil
}
