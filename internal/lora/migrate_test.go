package lora

import (
	"errors"
	"testing"
	"time"

	"punica/internal/hw"
)

// TestMigrationPinHandoff is the regression test for the migration pin
// protocol: while a request migrates, the destination acquires its
// adapter while the source still holds the pin, and the accounting must
// show each store's own pin exactly — never a double count on either
// store, and both return to zero at quiescence.
func TestMigrationPinHandoff(t *testing.T) {
	reg := NewRegistry(smallBase(), 4)
	bytes := reg.Ensure(0).Bytes()
	link := hw.PCIeGen4x16()
	src := NewStore(reg, link, 2*bytes)
	dst := NewStore(reg, link, 2*bytes)

	// Request running on the prefill source: one pin there.
	if _, err := src.Acquire(1, 0); err != nil {
		t.Fatal(err)
	}
	if src.PinnedBytes() != bytes || dst.PinnedBytes() != 0 {
		t.Fatalf("after source acquire: src pinned %d dst pinned %d", src.PinnedBytes(), dst.PinnedBytes())
	}

	// Migration overlap: the decode target acquires while the source
	// still holds its pin. Each store counts only its own pin.
	if _, err := dst.Acquire(1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if src.PinnedBytes() != bytes {
		t.Fatalf("target acquire changed the source's pinned bytes: %d", src.PinnedBytes())
	}
	if dst.PinnedBytes() != bytes {
		t.Fatalf("target pinned %d, want %d", dst.PinnedBytes(), bytes)
	}

	// Export completes: the source releases. The adapter stays warm
	// (evictable) there; the pin lives on the destination only.
	src.Release(1)
	if src.PinnedBytes() != 0 || !src.Resident(1) {
		t.Fatalf("after source release: pinned %d resident %v", src.PinnedBytes(), src.Resident(1))
	}
	if dst.PinnedBytes() != bytes {
		t.Fatalf("source release disturbed the target pin: %d", dst.PinnedBytes())
	}

	// Request finishes on the destination: cluster-wide pins at zero.
	dst.Release(1)
	if src.PinnedBytes() != 0 || dst.PinnedBytes() != 0 {
		t.Fatalf("pin leak at quiescence: src %d dst %d", src.PinnedBytes(), dst.PinnedBytes())
	}
}

// TestCanAcquireAgreesWithAcquireDuringMigration pins the
// CanAcquire/ErrStoreFull interplay the router relies on: a target whose
// store is pinned full reports false and Acquire fails with
// ErrStoreFull; releasing the migrating request's source pin must not
// change the target's answer (the stores are independent).
func TestCanAcquireAgreesWithAcquireDuringMigration(t *testing.T) {
	reg := NewRegistry(smallBase(), 4)
	link := hw.PCIeGen4x16()
	bytes := reg.Ensure(0).Bytes()
	src := NewStore(reg, link, 2*bytes)
	dst := NewStore(reg, link, 2*bytes)

	// Source pins adapter 1 (the migrating request's); target is pinned
	// full with two other adapters.
	if _, err := src.Acquire(1, 0); err != nil {
		t.Fatal(err)
	}
	for _, id := range []ModelID{2, 3} {
		if _, err := dst.Acquire(id, 0); err != nil {
			t.Fatal(err)
		}
	}
	if dst.CanAcquire(1) {
		t.Fatal("CanAcquire said true on a pinned-full target")
	}
	if _, err := dst.Acquire(1, 0); err == nil {
		t.Fatal("Acquire succeeded on a pinned-full target")
	} else if !errors.Is(err, ErrStoreFull) {
		t.Fatalf("want ErrStoreFull, got %v", err)
	}
	// Prefetch must also refuse rather than evict pinned residents.
	if _, ok := dst.Prefetch(1, 0); ok {
		t.Fatal("Prefetch evicted pinned residents")
	}

	// The source releasing its pin is irrelevant to the target's
	// capacity question.
	src.Release(1)
	if dst.CanAcquire(1) {
		t.Fatal("CanAcquire flipped after an unrelated store's release")
	}

	// Target pressure releases: now both paths agree it fits.
	dst.Release(2)
	if !dst.CanAcquire(1) {
		t.Fatal("CanAcquire false with an evictable resident")
	}
	// Evaluate after resident loads have completed: an in-flight entry
	// is not evictable, and CanAcquire does not model transfer timing.
	if _, err := dst.Acquire(1, time.Second); err != nil {
		t.Fatalf("Acquire failed where CanAcquire said true: %v", err)
	}
	dst.Release(1)
	dst.Release(3)
	if src.PinnedBytes() != 0 || dst.PinnedBytes() != 0 {
		t.Fatalf("pin leak at quiescence: src %d dst %d", src.PinnedBytes(), dst.PinnedBytes())
	}
}

// TestPrefetchLoadsWithoutPinning covers the prefetch contract: a cold
// prefetch starts a load, leaves the entry unpinned (evictable), and a
// later Acquire hits warm with no second transfer.
func TestPrefetchLoadsWithoutPinning(t *testing.T) {
	reg := NewRegistry(smallBase(), 4)
	link := hw.PCIeGen4x16()
	bytes := reg.Ensure(0).Bytes()
	s := NewStore(reg, link, 2*bytes)

	ready, ok := s.Prefetch(5, 0)
	if !ok || ready <= 0 {
		t.Fatalf("cold prefetch = (%v, %v), want accepted with a transfer delay", ready, ok)
	}
	if s.PinnedBytes() != 0 {
		t.Fatalf("prefetch pinned %d bytes", s.PinnedBytes())
	}
	if s.Prefetches != 1 || s.BytesIn != bytes {
		t.Fatalf("prefetch stats = %d loads / %d bytes, want 1 / %d", s.Prefetches, s.BytesIn, bytes)
	}
	// Warm prefetch: free, uncounted.
	if _, ok := s.Prefetch(5, time.Millisecond); !ok {
		t.Fatal("warm prefetch refused")
	}
	if s.Prefetches != 1 || s.BytesIn != bytes {
		t.Fatal("warm prefetch started a second load")
	}
	// The later acquire is a warm hit: the prefetch's transfer already
	// completed, so the adapter is usable immediately.
	at, err := s.Acquire(5, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if at != time.Millisecond {
		t.Fatalf("acquire after completed prefetch usable at %v, want now", at)
	}
	if s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("acquire after prefetch was not a hit (hits=%d misses=%d)", s.Hits, s.Misses)
	}
	if s.PinnedBytes() != bytes {
		t.Fatalf("acquire did not pin: %d", s.PinnedBytes())
	}
	s.Release(5)

	// Unpinned prefetched entries are evictable under pressure once
	// their transfer has completed.
	if _, err := s.Acquire(6, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire(7, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if s.Resident(5) {
		t.Fatal("prefetched entry survived eviction pressure while unpinned")
	}
}
