package lora

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"punica/internal/hw"
)

// DefaultTierLatency is the per-hop issue latency assumed when a tier
// clause does not specify one — a DMA setup / request dispatch cost on
// the order of an NVMe read issue.
const DefaultTierLatency = 100 * time.Microsecond

// maxTiers bounds the hierarchy depth ParseTierSpec accepts; real
// deployments have two to three staging tiers below HBM.
const maxTiers = 8

// ParseTierSpec parses the tier mini-language shared by punica-cluster
// and punica-serve: comma-separated tiers listed bottom (nearest the
// registry) to top (adjacent to HBM), each
//
//	name:capacity@bandwidth[+latency]
//
// e.g. "ssd:64GiB@2GiB/s,ram:16GiB@8GiB/s+20us". Sizes take B / KB /
// KiB / MB / MiB / GB / GiB / TB / TiB suffixes (decimal = powers of
// 1000, binary = powers of 1024; fractional values allowed), bandwidth
// is a size per second, and latency is a Go duration (default
// DefaultTierLatency). Tier names must be unique, lowercase
// [a-z0-9_-]. An empty string yields nil, nil: tiers disabled.
func ParseTierSpec(s string) ([]TierSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var specs []TierSpec
	seen := map[string]bool{}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			return nil, fmt.Errorf("tierspec: empty tier clause in %q", s)
		}
		if len(specs) == maxTiers {
			return nil, fmt.Errorf("tierspec: more than %d tiers", maxTiers)
		}
		name, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("tierspec: tier %q needs name:capacity@bandwidth", clause)
		}
		if !validTierName(name) {
			return nil, fmt.Errorf("tierspec: invalid tier name %q (want lowercase [a-z0-9_-])", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("tierspec: duplicate tier name %q", name)
		}
		seen[name] = true
		capStr, linkStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("tierspec: tier %q needs capacity@bandwidth", clause)
		}
		capacity, err := parseBytes(capStr)
		if err != nil {
			return nil, fmt.Errorf("tierspec: tier %q capacity: %w", name, err)
		}
		if capacity <= 0 {
			return nil, fmt.Errorf("tierspec: tier %q capacity must be positive", name)
		}
		bwStr, latStr, hasLat := strings.Cut(linkStr, "+")
		bw, err := parseBandwidth(bwStr)
		if err != nil {
			return nil, fmt.Errorf("tierspec: tier %q bandwidth: %w", name, err)
		}
		lat := DefaultTierLatency
		if hasLat {
			lat, err = time.ParseDuration(latStr)
			if err != nil {
				return nil, fmt.Errorf("tierspec: tier %q latency: %w", name, err)
			}
			if lat < 0 {
				return nil, fmt.Errorf("tierspec: tier %q latency must be non-negative", name)
			}
		}
		specs = append(specs, TierSpec{
			Name:          name,
			CapacityBytes: capacity,
			Link:          hw.Link{Name: name, Bandwidth: bw, Latency: lat},
		})
	}
	return specs, nil
}

// FormatTierSpecs renders specs back into the ParseTierSpec language,
// with ParseTierSpec(FormatTierSpecs(x)) equal to x.
func FormatTierSpecs(specs []TierSpec) string {
	var b strings.Builder
	for i, sp := range specs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%s@%s/s+%s",
			sp.Name, formatBytes(sp.CapacityBytes), formatFloatBytes(sp.Link.Bandwidth), sp.Link.Latency)
	}
	return b.String()
}

func validTierName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

var byteUnits = []struct {
	suffix string
	scale  float64
}{
	// Longest suffixes first so "GiB" is not cut as "B".
	{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}, {"TiB", 1 << 40},
	{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"TB", 1e12},
	{"B", 1},
}

func splitByteValue(s string) (float64, error) {
	s = strings.TrimSpace(s)
	for _, u := range byteUnits {
		if num, ok := strings.CutSuffix(s, u.suffix); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
			if err != nil {
				return 0, fmt.Errorf("bad size %q", s)
			}
			v *= u.scale
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return 0, fmt.Errorf("bad size %q", s)
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("size %q needs a unit suffix (B, KiB, MiB, GiB, TiB, KB, MB, GB, TB)", s)
}

// ParseBytes parses a byte size with an optional binary or decimal unit
// suffix ("64GiB", "500MB", "1024B") — the size syntax tier clauses use,
// exposed for CLI flags such as the pre-distribution byte budget.
func ParseBytes(s string) (int64, error) { return parseBytes(s) }

func parseBytes(s string) (int64, error) {
	v, err := splitByteValue(s)
	if err != nil {
		return 0, err
	}
	if v >= math.MaxInt64 {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return int64(v), nil
}

func parseBandwidth(s string) (float64, error) {
	num, ok := strings.CutSuffix(strings.TrimSpace(s), "/s")
	if !ok {
		return 0, fmt.Errorf("bandwidth %q needs a /s suffix", s)
	}
	v, err := splitByteValue(num)
	if err != nil {
		return 0, err
	}
	if v <= 0 {
		return 0, fmt.Errorf("bandwidth %q must be positive", s)
	}
	return v, nil
}

// formatBytes renders n with the largest binary unit that divides it
// exactly, so FormatTierSpecs round-trips through ParseTierSpec.
func formatBytes(n int64) string {
	units := []struct {
		suffix string
		scale  int64
	}{{"TiB", 1 << 40}, {"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10}}
	for _, u := range units {
		if n >= u.scale && n%u.scale == 0 {
			return strconv.FormatInt(n/u.scale, 10) + u.suffix
		}
	}
	return strconv.FormatInt(n, 10) + "B"
}

// formatFloatBytes renders a float byte count (bandwidth) losslessly:
// scaled to a binary unit when exact, raw bytes otherwise.
func formatFloatBytes(v float64) string {
	units := []struct {
		suffix string
		scale  float64
	}{{"TiB", 1 << 40}, {"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10}}
	for _, u := range units {
		scaled := v / u.scale
		if scaled >= 1 && scaled == math.Trunc(scaled) && scaled*u.scale == v {
			return strconv.FormatFloat(scaled, 'f', -1, 64) + u.suffix
		}
	}
	// 'f' (never scientific notation): an exponent's '+' would collide
	// with the latency separator on re-parse.
	return strconv.FormatFloat(v, 'f', -1, 64) + "B"
}
