package lora

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"punica/internal/hw"
	"punica/internal/models"
)

// testTiers builds an ssd+ram hierarchy with round-number links so the
// staging arithmetic in assertions is exact.
func testTiers(adapterBytes int64, ssdSlots, ramSlots int64) []TierSpec {
	return []TierSpec{
		{Name: "ssd", CapacityBytes: ssdSlots * adapterBytes,
			Link: hw.Link{Name: "ssd", Bandwidth: 2e9, Latency: time.Millisecond}},
		{Name: "ram", CapacityBytes: ramSlots * adapterBytes,
			Link: hw.Link{Name: "ram", Bandwidth: 8e9, Latency: 100 * time.Microsecond}},
	}
}

func newTieredForTest(t *testing.T, hbmSlots, ssdSlots, ramSlots int64) (*TieredStore, int64) {
	t.Helper()
	reg := NewRegistry(models.Llama2_7B(), 16)
	bytes := reg.Ensure(0).Bytes()
	hbm := NewStore(reg, hw.PCIeGen4x16(), hbmSlots*bytes)
	return NewTieredStore(hbm, testTiers(bytes, ssdSlots, ramSlots)), bytes
}

// Satellite regression: a Prefetch immediately followed by an Acquire
// of the same id before the load completes must return the remaining
// load time, never restart the full transfer — even when capacity
// pressure from other adapters would otherwise have evicted the
// in-flight entry mid-copy.
func TestPrefetchAcquireOverlapNotDoubleCharged(t *testing.T) {
	reg := NewRegistry(models.Llama2_7B(), 16)
	bytes := reg.Ensure(0).Bytes()
	s := NewStore(reg, hw.PCIeGen4x16(), 2*bytes)

	// Adapter 2 loads first and finishes.
	r2, err := s.Acquire(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Release(2)

	// Adapter 1 is prefetched after 2's load completes and is still in
	// flight below.
	start := r2
	r1, ok := s.Prefetch(1, start)
	if !ok {
		t.Fatal("prefetch refused")
	}
	// Touch 2 so the in-flight adapter 1 sits at the LRU tail — the
	// position the old code would have evicted from.
	mid := start + (r1-start)/2
	if _, err := s.Acquire(2, mid); err != nil {
		t.Fatal(err)
	}
	s.Release(2)

	// Adapter 3 needs room mid-flight: the victim must be the idle
	// adapter 2, not the loading adapter 1.
	if _, err := s.Acquire(3, mid); err != nil {
		t.Fatal(err)
	}
	if !s.Resident(1) {
		t.Fatal("in-flight prefetched adapter was evicted mid-transfer")
	}
	if s.Resident(2) {
		t.Fatal("expected the idle adapter to be the eviction victim")
	}

	// The Acquire overlapping the prefetch pays only the remainder.
	got, err := s.Acquire(1, mid)
	if err != nil {
		t.Fatal(err)
	}
	if got != r1 {
		t.Fatalf("overlapped acquire ready at %v, want prefetch completion %v", got, r1)
	}
	if want := 3 * bytes; s.BytesIn != want {
		t.Fatalf("BytesIn = %d, want %d (adapter 1 charged once)", s.BytesIn, want)
	}
}

// When every potential victim is still loading, the store reports
// transient backpressure instead of cancelling an in-flight copy.
func TestInFlightEntriesNotEvictable(t *testing.T) {
	reg := NewRegistry(models.Llama2_7B(), 16)
	bytes := reg.Ensure(0).Bytes()
	s := NewStore(reg, hw.PCIeGen4x16(), bytes)

	if _, ok := s.Prefetch(1, 0); !ok {
		t.Fatal("prefetch refused")
	}
	ready, _ := s.Prefetch(1, 0)
	if _, err := s.Acquire(2, ready/2); !errors.Is(err, ErrStoreFull) {
		t.Fatalf("acquire during sole in-flight load: err = %v, want ErrStoreFull", err)
	}
	// Once the load completes the entry is evictable again.
	if _, err := s.Acquire(2, ready); err != nil {
		t.Fatal(err)
	}
}

func TestTieredColdStartStagesThroughHierarchy(t *testing.T) {
	ts, bytes := newTieredForTest(t, 4, 8, 4)

	ready, err := ts.Acquire(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Registry-cold: ssd hop + ram hop + PCIe hop, each latency+size/bw.
	ssd := time.Millisecond + hw.Seconds(float64(bytes)/2e9)
	ram := 100*time.Microsecond + hw.Seconds(float64(bytes)/8e9)
	pcie := hw.PCIeGen4x16().TransferTime(bytes)
	want := ssd + ram + pcie
	if ready != want {
		t.Fatalf("cold acquire ready at %v, want %v (ssd %v + ram %v + pcie %v)",
			ready, want, ssd, ram, pcie)
	}

	// The adapter left an inclusive copy on SSD, moved out of RAM into
	// HBM, and the cold start was recorded.
	if got := ts.TierOf(1); got != "hbm" {
		t.Fatalf("TierOf = %q, want hbm", got)
	}
	stats := ts.Stats()
	if stats[0].Tier != "ssd" || stats[1].Tier != "ram" || stats[2].Tier != "hbm" {
		t.Fatalf("stats order = %q,%q,%q", stats[0].Tier, stats[1].Tier, stats[2].Tier)
	}
	if stats[0].Misses != 1 || stats[0].BytesIn != bytes {
		t.Fatalf("ssd stats = %+v", stats[0])
	}
	if stats[1].Promotions != 1 || stats[1].UsedBytes != 0 {
		t.Fatalf("ram stats = %+v (adapter should have moved into hbm)", stats[1])
	}
	if ts.ColdStarts().Count() != 1 {
		t.Fatalf("cold starts = %d, want 1", ts.ColdStarts().Count())
	}

	// Warm acquire: straight from HBM, no staging, no new cold sample.
	ts.Release(1)
	ready2, err := ts.Acquire(1, ready)
	if err != nil {
		t.Fatal(err)
	}
	if ready2 != ready {
		t.Fatalf("warm acquire ready at %v, want %v", ready2, ready)
	}
	if ts.ColdStarts().Count() != 1 {
		t.Fatal("warm acquire must not record a cold start")
	}
}

func TestTieredEvictionDemotesToRAM(t *testing.T) {
	ts, _ := newTieredForTest(t, 1, 8, 4)

	if _, err := ts.Acquire(1, 0); err != nil {
		t.Fatal(err)
	}
	ts.Release(1)
	// Adapter 2 forces adapter 1 out of the single-slot HBM: it must
	// land in RAM, not evaporate.
	if _, err := ts.Acquire(2, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := ts.TierOf(1); got != "ram" {
		t.Fatalf("evicted adapter in %q, want ram", got)
	}
	stats := ts.Stats()
	if hbm := stats[len(stats)-1]; hbm.Demotions != 1 {
		t.Fatalf("hbm demotions = %d, want 1", hbm.Demotions)
	}

	// Re-acquiring 1 pays only the PCIe hop — the RAM copy is warm.
	ts.Release(2)
	now := 2 * time.Second
	ready, err := ts.Acquire(1, now)
	if err != nil {
		t.Fatal(err)
	}
	bytes := ts.HBM().reg.Ensure(1).Bytes()
	if want := now + hw.PCIeGen4x16().TransferTime(bytes); ready != want {
		t.Fatalf("demoted re-acquire ready at %v, want %v (one PCIe hop)", ready, want)
	}
	if ram := ts.Stats()[1]; ram.Hits != 1 {
		t.Fatalf("ram hits = %d, want 1", ram.Hits)
	}
}

func TestTieredPrewarm(t *testing.T) {
	ts, bytes := newTieredForTest(t, 4, 8, 4)

	// Registry-cold prewarm moves bytes into ssd and ram.
	moved, ok := ts.Prewarm(7, 0)
	if !ok || moved != 2*bytes {
		t.Fatalf("prewarm moved %d ok=%v, want %d", moved, ok, 2*bytes)
	}
	if got := ts.TierOf(7); got != "ram" {
		t.Fatalf("prewarmed adapter in %q, want ram", got)
	}
	// Idempotent: already staged.
	if moved, ok := ts.Prewarm(7, 0); ok || moved != 0 {
		t.Fatalf("second prewarm moved %d ok=%v, want 0 false", moved, ok)
	}

	// An acquire after the prewarm completes pays only PCIe.
	now := 10 * time.Second
	ready, err := ts.Acquire(7, now)
	if err != nil {
		t.Fatal(err)
	}
	if want := now + hw.PCIeGen4x16().TransferTime(bytes); ready != want {
		t.Fatalf("prewarmed acquire ready at %v, want %v", ready, want)
	}
}

func TestTieredPrefetchStagesAndPromotes(t *testing.T) {
	ts, bytes := newTieredForTest(t, 4, 8, 4)

	ready, ok := ts.Prefetch(3, 0)
	if !ok {
		t.Fatal("prefetch refused")
	}
	if got := ts.TierOf(3); got != "hbm" {
		t.Fatalf("prefetched adapter in %q, want hbm", got)
	}
	// Acquire overlapping the staged prefetch pays the remainder only.
	got, err := ts.Acquire(3, ready/2)
	if err != nil {
		t.Fatal(err)
	}
	if got != ready {
		t.Fatalf("overlapped tiered acquire ready at %v, want %v", got, ready)
	}
	if ts.HBM().BytesIn != bytes {
		t.Fatalf("hbm BytesIn = %d, want one adapter %d", ts.HBM().BytesIn, bytes)
	}
}

func TestTieredStoreFullBackpressureKeepsStaging(t *testing.T) {
	ts, _ := newTieredForTest(t, 1, 8, 4)

	if _, err := ts.Acquire(1, 0); err != nil {
		t.Fatal(err)
	}
	// HBM pin-saturated: acquire fails with backpressure but the
	// staging work is retained, so the retry is RAM-warm.
	if _, err := ts.Acquire(2, time.Second); !errors.Is(err, ErrStoreFull) {
		t.Fatalf("err = %v, want ErrStoreFull", err)
	}
	if got := ts.TierOf(2); got != "ram" {
		t.Fatalf("backpressured adapter in %q, want ram", got)
	}
	ts.Release(1)
	if _, err := ts.Acquire(2, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if ram := ts.Stats()[1]; ram.Hits != 1 {
		t.Fatalf("retry should hit ram, stats = %+v", ram)
	}
}

// Review regression: a victim demoted from tier idx into a smaller tier
// idx-1 (capacity-inverted hierarchy, e.g. ssd:1MiB under ram:16GiB)
// used to drain the receiving tier's LRU in insert's eviction loop and
// dereference its nil tail. The oversized victim must be dropped
// instead — the registry keeps the authoritative copy.
func TestTieredCascadeOversizedVictimDropped(t *testing.T) {
	reg := NewRegistry(models.Llama2_7B(), 16)
	bytes := reg.Ensure(0).Bytes()
	hbm := NewStore(reg, hw.PCIeGen4x16(), 4*bytes)
	ts := NewTieredStore(hbm, []TierSpec{
		{Name: "ssd", CapacityBytes: 1 << 20, // smaller than one adapter
			Link: hw.Link{Name: "ssd", Bandwidth: 2e9, Latency: time.Millisecond}},
		{Name: "ram", CapacityBytes: 2 * bytes,
			Link: hw.Link{Name: "ram", Bandwidth: 8e9, Latency: 100 * time.Microsecond}},
	})

	// Three prewarms overflow the two-slot RAM tier; the LRU victim
	// cascades toward the 1MiB SSD, which cannot hold it.
	for id := ModelID(1); id <= 3; id++ {
		if _, ok := ts.Prewarm(id, 0); !ok {
			t.Fatalf("prewarm %d refused", id)
		}
	}
	if got := ts.TierOf(1); got != "" {
		t.Fatalf("oversized demotion victim in %q, want dropped (registry only)", got)
	}
	if got := ts.TierOf(3); got != "ram" {
		t.Fatalf("TierOf(3) = %q, want ram", got)
	}
	if ram := ts.Stats()[1]; ram.Demotions != 1 {
		t.Fatalf("ram demotions = %d, want 1", ram.Demotions)
	}
}

func TestMergeTierStats(t *testing.T) {
	a := []TierStats{{Tier: "ssd", Hits: 1, BytesIn: 10}, {Tier: "ram", Misses: 2}}
	b := []TierStats{{Tier: "ssd", Hits: 2, Demotions: 1}, {Tier: "ram", Promotions: 3}, {Tier: "hbm", Hits: 5}}
	got := MergeTierStats(a, b)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Hits != 3 || got[0].BytesIn != 10 || got[0].Demotions != 1 {
		t.Fatalf("ssd merge = %+v", got[0])
	}
	if got[1].Misses != 2 || got[1].Promotions != 3 {
		t.Fatalf("ram merge = %+v", got[1])
	}
	if got[2].Hits != 5 {
		t.Fatalf("hbm merge = %+v", got[2])
	}
}

// Tier conservation property: under seeded random acquire / release /
// prefetch / prewarm churn, an adapter is resident in at most one of
// RAM (top tier) and HBM, per-tier bytes never exceed capacity, and
// pinned adapters are never demoted out of HBM. Run with -race and
// -tags punica_invariants for the full checking (checkTiers fires on
// every operation there).
func TestTierConservationProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		ts, bytes := newTieredForTest(t, 3, 12, 5)
		const adapters = 24
		pins := map[ModelID]int{}
		now := time.Duration(0)
		for step := 0; step < 4000; step++ {
			now += time.Duration(rng.Intn(3_000)) * time.Microsecond
			id := ModelID(rng.Intn(adapters))
			switch rng.Intn(4) {
			case 0:
				if _, err := ts.Acquire(id, now); err == nil {
					pins[id]++
				} else if !errors.Is(err, ErrStoreFull) {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			case 1:
				if pins[id] > 0 {
					ts.Release(id)
					pins[id]--
				}
			case 2:
				ts.Prefetch(id, now)
			case 3:
				ts.Prewarm(id, now)
			}

			// Pinned adapters stay in HBM: pinning is HBM-only and the
			// store never evicts pinned entries, so a demotion of a
			// pinned adapter is impossible.
			for id, n := range pins {
				if n > 0 && ts.TierOf(id) != "hbm" {
					t.Fatalf("seed %d step %d: pinned adapter %d demoted to %q",
						seed, step, id, ts.TierOf(id))
				}
			}
			// Byte ledgers within capacity, exclusivity between top
			// tier and HBM.
			stats := ts.Stats()
			for _, s := range stats {
				if s.UsedBytes < 0 || s.UsedBytes > s.CapacityBytes {
					t.Fatalf("seed %d step %d: tier %s used %d outside [0,%d]",
						seed, step, s.Tier, s.UsedBytes, s.CapacityBytes)
				}
				if s.UsedBytes%bytes != 0 {
					t.Fatalf("seed %d step %d: tier %s used %d not a multiple of adapter size",
						seed, step, s.Tier, s.UsedBytes)
				}
			}
			for id := ModelID(0); id < adapters; id++ {
				inTop := ts.tiers[len(ts.tiers)-1].entries[id] != nil
				if inTop && ts.HBM().Resident(id) {
					t.Fatalf("seed %d step %d: adapter %d in both ram and hbm", seed, step, id)
				}
			}
		}
		// Drain pins; the hierarchy must quiesce with nothing pinned.
		for id, n := range pins {
			for ; n > 0; n-- {
				ts.Release(id)
			}
		}
		if ts.HBM().PinnedBytes() != 0 {
			t.Fatalf("seed %d: pin leak: %d bytes", seed, ts.HBM().PinnedBytes())
		}
	}
}
