package lora

import (
	"errors"
	"testing"
	"time"

	"punica/internal/hw"
	"punica/internal/models"
	"punica/internal/tensor"
)

func smallBase() models.Config {
	// A miniature config so numeric weight tests stay fast.
	return models.Config{
		Name: "tiny", HiddenSize: 32, Intermediate: 64, Layers: 2,
		Heads: 4, KVHeads: 4, VocabSize: 100, MaxSeqLen: 128,
	}
}

func TestRegistryEnsureIdempotent(t *testing.T) {
	r := NewRegistry(smallBase(), 4)
	a := r.Ensure(7)
	b := r.Ensure(7)
	if a != b {
		t.Fatal("Ensure must return the same model")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if _, err := r.Get(7); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(8); err == nil {
		t.Fatal("Get of unknown id should fail")
	}
}

func TestPairDeterministicAndShaped(t *testing.T) {
	r := NewRegistry(smallBase(), 4)
	m := r.Ensure(1)
	p1 := m.Pair(0, models.ProjQ)
	p2 := m.Pair(0, models.ProjQ)
	if p1.A != p2.A || p1.B != p2.B {
		t.Fatal("Pair must be cached")
	}
	if p1.A.Rows != 32 || p1.A.Cols != 4 || p1.B.Rows != 4 || p1.B.Cols != 32 {
		t.Fatalf("q_proj pair shapes wrong: A %dx%d B %dx%d",
			p1.A.Rows, p1.A.Cols, p1.B.Rows, p1.B.Cols)
	}
	// Same id in a fresh registry regenerates identical weights.
	m2 := NewRegistry(smallBase(), 4).Ensure(1)
	if !tensor.Equal(m2.Pair(0, models.ProjQ).A, p1.A, 0) {
		t.Fatal("weights not deterministic across registries")
	}
	// Different layers/projections differ.
	if tensor.Equal(m.Pair(1, models.ProjQ).A, p1.A, 0) {
		t.Fatal("different layers should have different weights")
	}
	// down_proj has transposed dims.
	pd := m.Pair(0, models.ProjDown)
	if pd.A.Rows != 64 || pd.B.Cols != 32 {
		t.Fatalf("down_proj pair shapes wrong")
	}
}

func TestStoreLoadLatencyMatchesPaper(t *testing.T) {
	// §5.2: loading one whole 7B rank-16 adapter over PCIe Gen4 takes
	// ~2-4 ms (the paper quotes ~2 ms).
	reg := NewRegistry(models.Llama2_7B(), 16)
	s := NewStore(reg, hw.PCIeGen4x16(), 10<<30)
	ready, err := s.Acquire(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ready < 2*time.Millisecond || ready > 5*time.Millisecond {
		t.Fatalf("cold load ready at %v, want ~2-4ms", ready)
	}
	// Warm hit: immediately usable.
	ready2, err := s.Acquire(1, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ready2 != 10*time.Millisecond {
		t.Fatalf("warm acquire ready at %v, want now", ready2)
	}
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", s.Hits, s.Misses)
	}
}

func TestStoreAcquireBeforeLoadCompletes(t *testing.T) {
	reg := NewRegistry(models.Llama2_7B(), 16)
	s := NewStore(reg, hw.PCIeGen4x16(), 10<<30)
	first, _ := s.Acquire(1, 0)
	// A second request arrives mid-transfer: it must wait for the same
	// completion, not restart the copy.
	second, _ := s.Acquire(1, first/2)
	if second != first {
		t.Fatalf("mid-flight acquire ready at %v, want %v", second, first)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	reg := NewRegistry(models.Llama2_7B(), 16)
	adapterBytes := reg.Ensure(0).Bytes()
	s := NewStore(reg, hw.PCIeGen4x16(), 2*adapterBytes)

	if _, err := s.Acquire(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire(2, 0); err != nil {
		t.Fatal(err)
	}
	s.Release(1)
	s.Release(2)
	// Touch 1 so 2 becomes LRU.
	if _, err := s.Acquire(1, time.Second); err != nil {
		t.Fatal(err)
	}
	s.Release(1)
	if _, err := s.Acquire(3, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if s.Resident(2) {
		t.Fatal("LRU adapter 2 should have been evicted")
	}
	if !s.Resident(1) || !s.Resident(3) {
		t.Fatal("wrong adapter evicted")
	}
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d", s.Evictions)
	}
}

func TestStorePinnedAdaptersSurvive(t *testing.T) {
	reg := NewRegistry(models.Llama2_7B(), 16)
	adapterBytes := reg.Ensure(0).Bytes()
	s := NewStore(reg, hw.PCIeGen4x16(), 2*adapterBytes)
	if _, err := s.Acquire(1, 0); err != nil { // pinned (no Release)
		t.Fatal(err)
	}
	if _, err := s.Acquire(2, 0); err != nil { // pinned
		t.Fatal(err)
	}
	if _, err := s.Acquire(3, 0); err == nil {
		t.Fatal("acquire should fail when all residents are pinned")
	}
	s.Release(1)
	// Once adapter 1's load has completed it is evictable; mid-transfer
	// it would not be (in-flight copies cannot be cancelled).
	if _, err := s.Acquire(3, time.Second); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if s.Resident(1) {
		t.Fatal("released adapter 1 should have been evicted for 3")
	}
}

func TestStoreFullErrorIsSentinel(t *testing.T) {
	reg := NewRegistry(models.Llama2_7B(), 16)
	s := NewStore(reg, hw.PCIeGen4x16(), reg.Ensure(0).Bytes())
	if _, err := s.Acquire(1, 0); err != nil {
		t.Fatal(err)
	}
	_, err := s.Acquire(2, 0)
	if !errors.Is(err, ErrStoreFull) {
		t.Fatalf("pinned-full acquire = %v, want ErrStoreFull", err)
	}
	// An adapter that can never fit is a configuration error, not
	// transient backpressure.
	tiny := NewStore(reg, hw.PCIeGen4x16(), 100)
	if _, err := tiny.Acquire(1, 0); errors.Is(err, ErrStoreFull) {
		t.Fatal("oversized adapter must not report ErrStoreFull")
	}
}

func TestStorePinAccounting(t *testing.T) {
	reg := NewRegistry(models.Llama2_7B(), 16)
	bytes := reg.Ensure(0).Bytes()
	s := NewStore(reg, hw.PCIeGen4x16(), 3*bytes)

	if _, err := s.Acquire(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire(2, 0); err != nil {
		t.Fatal(err)
	}
	if s.PinnedBytes() != 2*bytes {
		t.Fatalf("pinned = %d, want %d", s.PinnedBytes(), 2*bytes)
	}
	// A second pin on the same adapter adds a reference, not bytes.
	if _, err := s.Acquire(1, 0); err != nil {
		t.Fatal(err)
	}
	if s.PinnedBytes() != 2*bytes {
		t.Fatalf("double pin changed pinned bytes: %d", s.PinnedBytes())
	}
	s.Release(1)
	if s.PinnedBytes() != 2*bytes {
		t.Fatal("adapter 1 still referenced; pinned bytes must not drop")
	}
	s.Release(1)
	s.Release(2)
	if s.PinnedBytes() != 0 {
		t.Fatalf("pins leaked after releases: %d bytes", s.PinnedBytes())
	}
	// Over-release must not drive the accounting negative.
	s.Release(1)
	if s.PinnedBytes() != 0 {
		t.Fatalf("over-release corrupted pinned bytes: %d", s.PinnedBytes())
	}
	// Both adapters stay warm and evictable.
	if s.UsedBytes() != 2*bytes {
		t.Fatalf("used = %d, want warm residents kept", s.UsedBytes())
	}
}

func TestStoreCanAcquire(t *testing.T) {
	reg := NewRegistry(models.Llama2_7B(), 16)
	bytes := reg.Ensure(0).Bytes()
	s := NewStore(reg, hw.PCIeGen4x16(), 2*bytes)

	if !s.CanAcquire(1) {
		t.Fatal("empty store must accept any fitting adapter")
	}
	if _, err := s.Acquire(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire(2, 0); err != nil {
		t.Fatal(err)
	}
	if s.CanAcquire(3) {
		t.Fatal("all pinned: a third adapter cannot be acquired")
	}
	if !s.CanAcquire(1) {
		t.Fatal("resident adapters are always acquirable")
	}
	s.Release(2)
	if !s.CanAcquire(3) {
		t.Fatal("unpinned adapter 2 should be evictable for 3")
	}
}

func TestStoreOversizedAdapter(t *testing.T) {
	reg := NewRegistry(models.Llama2_7B(), 16)
	s := NewStore(reg, hw.PCIeGen4x16(), 100) // tiny
	if _, err := s.Acquire(1, 0); err == nil {
		t.Fatal("oversized adapter should fail")
	}
}

func TestStoreAccounting(t *testing.T) {
	reg := NewRegistry(models.Llama2_7B(), 16)
	s := NewStore(reg, hw.PCIeGen4x16(), 10<<30)
	if _, err := s.Acquire(1, 0); err != nil {
		t.Fatal(err)
	}
	want := reg.Ensure(1).Bytes()
	if s.UsedBytes() != want || s.BytesIn != want || s.Len() != 1 {
		t.Fatalf("accounting wrong: used=%d in=%d len=%d want=%d",
			s.UsedBytes(), s.BytesIn, s.Len(), want)
	}
	s.Release(1)
	if s.UsedBytes() != want {
		t.Fatal("release must keep adapter warm (resident)")
	}
}
