package lora

import (
	"container/list"
	"time"

	"punica/internal/hw"
	"punica/internal/invariant"
	"punica/internal/metrics"
)

// TierSpec describes one staging tier between the adapter registry and
// GPU HBM — node SSD and host RAM in the canonical deployment. Tiers
// are listed bottom (nearest the registry) to top (adjacent to HBM).
// Link models the cost of copying an adapter INTO this tier from the
// tier below it; the registry itself is infinite and always warm, and
// the final hop into HBM uses the wrapped Store's own (PCIe) link. So
// `ssd:64GiB@2GiB/s,ram:16GiB@8GiB/s` prices a full registry pull at
// ssd.Link + ram.Link + PCIe.
type TierSpec struct {
	Name          string
	CapacityBytes int64
	Link          hw.Link
}

// TierStats is the observable counter set for one tier, reported
// bottom-to-top with a final synthetic "hbm" row for the wrapped Store.
//
//   - Hits/Misses: staging lookups resolved at this tier vs cascaded
//     past it toward the registry.
//   - Promotions: adapters copied up OUT of this tier because a lookup
//     found them here (for the top tier this includes promotion into
//     HBM).
//   - Demotions: adapters pushed down OUT of this tier by capacity
//     pressure (for the bottom tier the destination is the registry,
//     i.e. the bytes are dropped; for the "hbm" row these are the
//     Store evictions the tiered path caught and demoted).
//   - BytesIn: bytes transferred into this tier from below (registry
//     pulls and promotions; demotions from above are not charged — the
//     copy already lives on the node).
type TierStats struct {
	Tier          string `json:"tier"`
	Hits          int64  `json:"hits"`
	Misses        int64  `json:"misses"`
	Promotions    int64  `json:"promotions"`
	Demotions     int64  `json:"demotions"`
	BytesIn       int64  `json:"bytes_in"`
	UsedBytes     int64  `json:"used_bytes"`
	CapacityBytes int64  `json:"capacity_bytes"`
}

// Accumulate adds o's counters into s. Usage/capacity sum too: in a
// fleet-wide aggregate they read as total fleet bytes per tier.
func (s *TierStats) Accumulate(o TierStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Promotions += o.Promotions
	s.Demotions += o.Demotions
	s.BytesIn += o.BytesIn
	s.UsedBytes += o.UsedBytes
	s.CapacityBytes += o.CapacityBytes
}

// MergeTierStats accumulates b into a by tier position, growing a as
// needed. Counter addition is exact (int64), so cell-sharded runs merge
// to the same totals for any worker count.
func MergeTierStats(a, b []TierStats) []TierStats {
	for i, ts := range b {
		if i < len(a) {
			a[i].Accumulate(ts)
		} else {
			a = append(a, ts)
		}
	}
	return a
}

type tierEntry struct {
	id      ModelID
	bytes   int64
	readyAt time.Duration
	elem    *list.Element
}

type tier struct {
	spec    TierSpec
	used    int64
	entries map[ModelID]*tierEntry
	lru     *list.List // front = most recently used
	stats   TierStats
}

// TieredStore implements the full adapter path the paper's single-link
// model elides: registry → node SSD → host RAM → GPU HBM. The wrapped
// Store is the HBM tier and keeps sole authority over pinning; the
// staging tiers below it hold unpinned copies with their own LRU
// eviction. A miss cascades down the hierarchy, paying each tier's link
// in sequence, so cold starts are priced honestly; an HBM eviction is
// demoted into the top staging tier (free — the copy already crossed
// PCIe once) instead of discarded, so the next touch pays one PCIe hop,
// not a registry pull.
//
// Residency discipline: the top staging tier and HBM are exclusive (an
// adapter promoted into HBM is removed from host RAM, matching a
// move-based cudaMemcpy staging buffer), while lower tiers are
// inclusive (the SSD keeps its copy when RAM is populated). Pinning
// exists only in HBM, and the Store never evicts pinned entries, so
// pinned adapters are structurally never demoted.
type TieredStore struct {
	hbm   *Store
	reg   *Registry
	tiers []*tier // bottom (index 0) → top (adjacent to HBM)

	// hbmDemotions counts Store evictions caught by the demotion hook;
	// it feeds the synthetic "hbm" row of Stats.
	hbmDemotions int64

	// coldStarts records (ready − now) in seconds for every Acquire
	// that missed HBM — the cold-start latency distribution, staged
	// cost included.
	coldStarts metrics.Histogram
}

// NewTieredStore wraps hbm with the staging hierarchy specs, bottom to
// top, and installs the demote-on-evict hook. Specs must be non-empty
// with positive capacities.
func NewTieredStore(hbm *Store, specs []TierSpec) *TieredStore {
	if len(specs) == 0 {
		panic("lora: tiered store needs at least one staging tier")
	}
	t := &TieredStore{hbm: hbm, reg: hbm.reg}
	for _, sp := range specs {
		if sp.CapacityBytes <= 0 {
			panic("lora: tier capacity must be positive: " + sp.Name)
		}
		t.tiers = append(t.tiers, &tier{
			spec:    sp,
			entries: make(map[ModelID]*tierEntry),
			lru:     list.New(),
			stats:   TierStats{Tier: sp.Name, CapacityBytes: sp.CapacityBytes},
		})
	}
	hbm.OnEvict = t.demoteFromHBM
	return t
}

// HBM returns the wrapped GPU-resident Store.
func (t *TieredStore) HBM() *Store { return t.hbm }

// Acquire pins adapter id at simulation time now, staging it through
// the hierarchy first if it is not already in HBM, and returns the time
// the weights are usable on the GPU. The returned time includes every
// tier hop the adapter had to cross, so a registry-cold long-tail
// adapter reports its full multi-second cold start.
func (t *TieredStore) Acquire(id ModelID, now time.Duration) (time.Duration, error) {
	if t.hbm.Resident(id) {
		return t.hbm.Acquire(id, now)
	}
	avail := t.stage(id, now)
	ready, err := t.hbm.Acquire(id, avail)
	if err != nil {
		// HBM is pin-saturated; the adapter stays staged in the top
		// tier, so the retry after backpressure clears is warm.
		return 0, err
	}
	t.promoteOutOfTop(id)
	t.coldStarts.Add((ready - now).Seconds())
	t.checkTiers("Acquire")
	return ready, nil
}

// Prefetch stages adapter id and starts its HBM load without pinning,
// mirroring Store.Prefetch semantics: best-effort, no backpressure. It
// reports acceptance only if the HBM tier took the weights; a refusal
// still leaves the adapter staged in host RAM, which is harmless
// warmth.
func (t *TieredStore) Prefetch(id ModelID, now time.Duration) (time.Duration, bool) {
	if t.hbm.Resident(id) {
		return t.hbm.Prefetch(id, now)
	}
	avail := t.stage(id, now)
	ready, ok := t.hbm.Prefetch(id, avail)
	if ok {
		t.promoteOutOfTop(id)
	}
	t.checkTiers("Prefetch")
	return ready, ok
}

// Release unpins one HBM reference on adapter id.
func (t *TieredStore) Release(id ModelID) { t.hbm.Release(id) }

// Prewarm stages adapter id into the top tier (host RAM) without
// touching HBM — the pre-distribution daemon's primitive. It returns
// the total bytes transferred across tier hops (the daemon's budget
// currency) and whether any staging happened; an adapter already warm
// in the top tier or HBM costs nothing.
func (t *TieredStore) Prewarm(id ModelID, now time.Duration) (int64, bool) {
	if t.hbm.Resident(id) {
		return 0, false
	}
	top := t.tiers[len(t.tiers)-1]
	if _, ok := top.entries[id]; ok {
		return 0, false
	}
	moved := t.stageBytes(id, now)
	t.checkTiers("Prewarm")
	return moved, moved > 0
}

// TierOf reports where adapter id currently resides: "hbm", a staging
// tier's name (highest tier wins — lower inclusive copies are not
// reported), or "" when only the registry holds it.
func (t *TieredStore) TierOf(id ModelID) string {
	if t.hbm.Resident(id) {
		return "hbm"
	}
	for i := len(t.tiers) - 1; i >= 0; i-- {
		if _, ok := t.tiers[i].entries[id]; ok {
			return t.tiers[i].spec.Name
		}
	}
	return ""
}

// Stats returns per-tier counters bottom-to-top, with a final synthetic
// "hbm" row built from the wrapped Store's own counters.
func (t *TieredStore) Stats() []TierStats {
	out := make([]TierStats, 0, len(t.tiers)+1)
	for _, ti := range t.tiers {
		ts := ti.stats
		ts.UsedBytes = ti.used
		out = append(out, ts)
	}
	out = append(out, TierStats{
		Tier:          "hbm",
		Hits:          t.hbm.Hits,
		Misses:        t.hbm.Misses,
		Demotions:     t.hbmDemotions,
		BytesIn:       t.hbm.BytesIn,
		UsedBytes:     t.hbm.UsedBytes(),
		CapacityBytes: t.hbm.CapacityBytes(),
	})
	return out
}

// ColdStarts returns the cold-start latency histogram: one sample, in
// seconds, per Acquire that missed HBM.
func (t *TieredStore) ColdStarts() *metrics.Histogram { return &t.coldStarts }

// stage ensures adapter id is present in the top tier and returns the
// time its bytes are available there (now if already staged and ready).
func (t *TieredStore) stage(id ModelID, now time.Duration) time.Duration {
	avail, _ := t.stageFrom(id, now)
	return avail
}

// stageBytes is stage reporting transferred bytes instead of time.
func (t *TieredStore) stageBytes(id ModelID, now time.Duration) int64 {
	_, moved := t.stageFrom(id, now)
	return moved
}

func (t *TieredStore) stageFrom(id ModelID, now time.Duration) (time.Duration, int64) {
	bytes := t.reg.Ensure(id).Bytes()
	// Find the highest tier already holding the adapter.
	src := -1
	avail := now // the registry is always warm
	for i := len(t.tiers) - 1; i >= 0; i-- {
		ti := t.tiers[i]
		if e, ok := ti.entries[id]; ok {
			ti.stats.Hits++
			ti.lru.MoveToFront(e.elem)
			if e.readyAt > avail {
				avail = e.readyAt
			}
			src = i
			break
		}
		ti.stats.Misses++
	}
	if src >= 0 && src < len(t.tiers)-1 {
		// Found below the top: the copy is about to move up.
		t.tiers[src].stats.Promotions++
	}
	var moved int64
	for j := src + 1; j < len(t.tiers); j++ {
		ti := t.tiers[j]
		avail += ti.spec.Link.TransferTime(bytes)
		if bytes > ti.spec.CapacityBytes {
			// Oversized for this tier: streamed through, never resident.
			continue
		}
		ti.insert(t, j, id, bytes, avail, true)
		moved += bytes
	}
	return avail, moved
}

// promoteOutOfTop removes adapter id from the top staging tier after a
// successful HBM load, keeping top-tier/HBM residency exclusive. A
// missing entry is fine: the adapter may have been squeezed out by a
// concurrent demotion cascade while its HBM copy was being admitted.
func (t *TieredStore) promoteOutOfTop(id ModelID) {
	top := t.tiers[len(t.tiers)-1]
	e, ok := top.entries[id]
	if !ok {
		return
	}
	top.lru.Remove(e.elem)
	delete(top.entries, id)
	top.used -= e.bytes
	top.stats.Promotions++
}

// demoteFromHBM is the Store.OnEvict hook: an HBM eviction lands in the
// top staging tier instead of vanishing. The copy already exists on the
// host side of PCIe, so the demotion is immediate (readyAt 0) and free
// (no BytesIn charge).
func (t *TieredStore) demoteFromHBM(id ModelID, _ int, bytes int64) {
	t.hbmDemotions++
	top := len(t.tiers) - 1
	if bytes > t.tiers[top].spec.CapacityBytes {
		return
	}
	t.tiers[top].insert(t, top, id, bytes, 0, false)
}

// insert places (or refreshes) id in tier idx, evicting LRU victims
// down the hierarchy as needed. fromBelow marks an upward transfer
// (charged to BytesIn); demotions from above are free.
func (ti *tier) insert(t *TieredStore, idx int, id ModelID, bytes int64, readyAt time.Duration, fromBelow bool) {
	if bytes > ti.spec.CapacityBytes {
		// Oversized for this tier: streamed through, never resident —
		// the registry keeps the authoritative copy. Capacity-inverted
		// hierarchies (a lower tier smaller than the one above) demote
		// victims bigger than the receiving tier; without this guard the
		// eviction loop below would drain the tier and dereference a nil
		// LRU tail.
		return
	}
	if e, ok := ti.entries[id]; ok {
		// Inclusive lower-tier copy already present: refresh recency,
		// keep the earlier availability.
		ti.lru.MoveToFront(e.elem)
		if readyAt < e.readyAt {
			e.readyAt = readyAt
		}
		return
	}
	for ti.used+bytes > ti.spec.CapacityBytes {
		victim := ti.lru.Back().Value.(*tierEntry)
		ti.lru.Remove(victim.elem)
		delete(ti.entries, victim.id)
		ti.used -= victim.bytes
		ti.stats.Demotions++
		if idx > 0 {
			t.tiers[idx-1].insert(t, idx-1, victim.id, victim.bytes, victim.readyAt, false)
		}
	}
	e := &tierEntry{id: id, bytes: bytes, readyAt: readyAt}
	e.elem = ti.lru.PushFront(e)
	ti.entries[id] = e
	ti.used += bytes
	if fromBelow {
		ti.stats.BytesIn += bytes
	}
}

// checkTiers verifies the tier conservation invariants under the
// punica_invariants build: per-tier byte ledgers match the entry maps
// and respect capacity, and the top tier never shares an adapter with
// HBM. Compiled out otherwise.
func (t *TieredStore) checkTiers(op string) {
	if !invariant.Enabled {
		return
	}
	for i, ti := range t.tiers {
		var used int64
		for _, e := range ti.entries {
			used += e.bytes
		}
		if used != ti.used || ti.used > ti.spec.CapacityBytes || ti.used < 0 {
			invariant.Failf("lora: tier %q ledger drift after %s: entries=%d used=%d capacity=%d",
				ti.spec.Name, op, used, ti.used, ti.spec.CapacityBytes)
		}
		if i == len(t.tiers)-1 {
			for id := range ti.entries {
				if t.hbm.Resident(id) {
					invariant.Failf("lora: adapter %d resident in both %q and hbm after %s",
						id, ti.spec.Name, op)
				}
			}
		}
	}
}
