// Package lora manages the LoRA models Punica serves: their metadata and
// weights (a rank decomposition per dense projection per layer, §2.2), and
// the per-GPU weight store that implements on-demand loading (§5.2).
//
// Weight values are generated deterministically from (model, layer,
// projection) seeds, mirroring the paper's use of random weights ("the
// weight does not affect latency performance", §7) while keeping every run
// reproducible.
package lora

import (
	"fmt"

	"punica/internal/models"
	"punica/internal/sgmv"
	"punica/internal/sim"
	"punica/internal/tensor"
)

// ModelID identifies a LoRA model (tenant adapter).
type ModelID int64

// Model is one registered LoRA adapter for a base model.
type Model struct {
	ID   ModelID
	Rank int
	Base models.Config

	pairs map[pairKey]sgmv.Pair
}

type pairKey struct {
	layer int
	proj  models.Projection
}

// Bytes returns the adapter's fp16 footprint (matrices A and B for every
// projection of every layer).
func (m *Model) Bytes() int64 { return m.Base.LoRABytes(m.Rank) }

// Pair returns the (A, B) weight pair for one layer and projection,
// generating it deterministically on first use. The same (id, layer,
// proj) always yields the same weights.
func (m *Model) Pair(layer int, proj models.Projection) sgmv.Pair {
	key := pairKey{layer, proj}
	if p, ok := m.pairs[key]; ok {
		return p
	}
	in, out := m.Base.Dims(proj)
	seed := int64(m.ID)*1_000_003 + int64(layer)*7919 + int64(proj)
	rng := sim.NewRNG(seed)
	// LoRA initialises A ~ N(0, σ) and B = 0 before training; trained
	// adapters have small dense values. Scale keeps addon magnitudes
	// comparable to unit-scale activations.
	scale := 1.0 / float64(m.Rank)
	p := sgmv.Pair{
		A: tensor.Random(rng, in, m.Rank, scale),
		B: tensor.Random(rng, m.Rank, out, scale),
	}
	if m.pairs == nil {
		m.pairs = make(map[pairKey]sgmv.Pair)
	}
	m.pairs[key] = p
	return p
}

// Registry is the catalogue of LoRA adapters for one base model. All
// adapters in a registry share the base and, by default, the rank,
// matching the paper's evaluation setup (rank 16 everywhere); RankFor
// opts into heterogeneous per-adapter ranks.
type Registry struct {
	Base models.Config
	Rank int

	// RankFor optionally assigns per-adapter ranks (mixed-tenant
	// fleets). It is consulted once, on first registration; nil or a
	// non-positive return falls back to Rank.
	RankFor func(ModelID) int

	modelsByID map[ModelID]*Model
}

// NewRegistry returns an empty registry for the base model at the given
// LoRA rank.
func NewRegistry(base models.Config, rank int) *Registry {
	if rank <= 0 {
		panic("lora: rank must be positive")
	}
	return &Registry{Base: base, Rank: rank, modelsByID: make(map[ModelID]*Model)}
}

// Ensure returns the adapter with the given id, registering it on first
// reference. Multi-tenant serving sees adapter ids arrive with requests;
// registration is implicit.
func (r *Registry) Ensure(id ModelID) *Model {
	if m, ok := r.modelsByID[id]; ok {
		return m
	}
	rank := r.Rank
	if r.RankFor != nil {
		if rr := r.RankFor(id); rr > 0 {
			rank = rr
		}
	}
	m := &Model{ID: id, Rank: rank, Base: r.Base}
	r.modelsByID[id] = m
	return m
}

// Get returns the adapter with the given id, or an error if unknown.
func (r *Registry) Get(id ModelID) (*Model, error) {
	if m, ok := r.modelsByID[id]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("lora: unknown model %d", id)
}

// Len returns the number of registered adapters.
func (r *Registry) Len() int { return len(r.modelsByID) }
