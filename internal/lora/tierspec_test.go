package lora

import (
	"reflect"
	"testing"
	"time"
)

func TestParseTierSpec(t *testing.T) {
	specs, err := ParseTierSpec("ssd:64GiB@2GiB/s,ram:16GiB@8GiB/s+20us")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("len = %d", len(specs))
	}
	ssd, ram := specs[0], specs[1]
	if ssd.Name != "ssd" || ssd.CapacityBytes != 64<<30 {
		t.Fatalf("ssd = %+v", ssd)
	}
	if ssd.Link.Bandwidth != float64(int64(2)<<30) || ssd.Link.Latency != DefaultTierLatency {
		t.Fatalf("ssd link = %+v", ssd.Link)
	}
	if ram.Name != "ram" || ram.CapacityBytes != 16<<30 {
		t.Fatalf("ram = %+v", ram)
	}
	if ram.Link.Latency != 20*time.Microsecond {
		t.Fatalf("ram latency = %v", ram.Link.Latency)
	}
}

func TestParseTierSpecEmpty(t *testing.T) {
	specs, err := ParseTierSpec("")
	if err != nil || specs != nil {
		t.Fatalf("empty spec: %v, %v (want nil, nil)", specs, err)
	}
}

func TestParseTierSpecDecimalAndFractional(t *testing.T) {
	specs, err := ParseTierSpec("ssd:1.5GiB@500MB/s")
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].CapacityBytes != 3<<29 {
		t.Fatalf("capacity = %d, want %d", specs[0].CapacityBytes, int64(3)<<29)
	}
	if specs[0].Link.Bandwidth != 500e6 {
		t.Fatalf("bandwidth = %g", specs[0].Link.Bandwidth)
	}
}

func TestParseTierSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"ssd",                              // no capacity
		"ssd:64GiB",                        // no bandwidth
		"ssd:64GiB@2GiB",                   // bandwidth missing /s
		"ssd:0B@2GiB/s",                    // zero capacity
		"ssd:64GiB@0B/s",                   // zero bandwidth
		"ssd:64GiB@2GiB/s+-1ms",            // negative latency
		"ssd:64@2GiB/s",                    // size without unit
		"SSD:64GiB@2GiB/s",                 // uppercase name
		"ssd:64GiB@2GiB/s,ssd:1GiB@1GiB/s", // duplicate
		"ssd:64GiB@2GiB/s,,ram:1GiB@1GiB/s",
		"ssd:NaNGiB@2GiB/s",
		"a:1B@1B/s,b:1B@1B/s,c:1B@1B/s,d:1B@1B/s,e:1B@1B/s,f:1B@1B/s,g:1B@1B/s,h:1B@1B/s,i:1B@1B/s", // too deep
	} {
		if _, err := ParseTierSpec(bad); err == nil {
			t.Errorf("ParseTierSpec(%q) accepted, want error", bad)
		}
	}
}

func TestFormatTierSpecsRoundTrip(t *testing.T) {
	for _, in := range []string{
		"ssd:64GiB@2GiB/s,ram:16GiB@8GiB/s",
		"ssd:1.5GiB@500MB/s+250us",
		"l0:123B@7B/s+0s",
	} {
		specs, err := ParseTierSpec(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		again, err := ParseTierSpec(FormatTierSpecs(specs))
		if err != nil {
			t.Fatalf("re-parse of %q (%q): %v", in, FormatTierSpecs(specs), err)
		}
		if !reflect.DeepEqual(specs, again) {
			t.Fatalf("round trip of %q: %+v != %+v", in, specs, again)
		}
	}
}

func FuzzTierSpec(f *testing.F) {
	f.Add("ssd:64GiB@2GiB/s,ram:16GiB@8GiB/s")
	f.Add("ssd:1.5GiB@500MB/s+250us")
	f.Add("a:1B@1B/s")
	f.Add("x:9TiB@3KB/s+1h")
	f.Add(",,")
	f.Add("ssd:64GiB@")
	f.Fuzz(func(t *testing.T, s string) {
		specs, err := ParseTierSpec(s)
		if err != nil {
			return
		}
		// Accepted specs must survive a format/parse round trip
		// unchanged — the two CLIs echo specs back through this path.
		out := FormatTierSpecs(specs)
		again, err := ParseTierSpec(out)
		if err != nil {
			t.Fatalf("format of accepted spec %q re-parses with error: %q: %v", s, out, err)
		}
		if !reflect.DeepEqual(specs, again) {
			t.Fatalf("round trip drift for %q: %+v != %+v", s, specs, again)
		}
	})
}
