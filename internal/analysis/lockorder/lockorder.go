// Package lockorder derives the package's mutex acquisition graph and
// rejects deadlock-shaped code before it runs. Two functions that take
// the same pair of locks in opposite orders deadlock only under the
// right interleaving — the kind of bug the race detector misses when
// the schedule never materialises in CI.
//
// The analyzer walks each function in statement order tracking which
// mutexes are held (a deferred Unlock holds to function end). Each
// acquisition while another lock is held adds an ordering edge
// held→acquired. It reports:
//
//   - any cycle in the package-wide acquisition graph, at the edge
//     that closes it;
//   - a call to an exported core.Engine method while a lock belonging
//     to a scheduler type is held — Engine methods take engine-internal
//     steps that may re-enter scheduling, and the simulator's contract
//     is that scheduler locks are leaf locks.
//
// Audited exceptions carry `//punica:lock-ok` on the acquiring line or
// the enclosing function's doc comment.
//
// Lock identity is structural: `x.mu.Lock()` keys on the named type of
// x plus the field name (`Server.mu`), a package-level mutex keys on
// its variable name, and a local mutex on its identifier. Distinct
// instances of a type share a key — ordering between instances of the
// same lock field is out of scope (and the repo has none).
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"

	"punica/internal/analysis"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisition order must be acyclic; scheduler locks are leaf locks w.r.t. Engine calls",
	Run:  run,
}

const marker = "lock-ok"

type edge struct{ from, to string }

type graph struct {
	edges map[edge]token.Pos // first occurrence of each ordering edge
	succ  map[string][]string
}

func run(pass *analysis.Pass) error {
	g := &graph{edges: map[edge]token.Pos{}, succ: map[string][]string{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sc := &scanner{pass: pass, fn: fn, g: g}
			sc.stmts(fn.Body.List)
		}
	}
	reportCycles(pass, g)
	return nil
}

// scanner walks one function in statement order, maintaining the set of
// held locks.
type scanner struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
	g    *graph
	held []string // acquisition order
}

func (s *scanner) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *scanner) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		s.expr(st.X)
	case *ast.DeferStmt:
		if key, op, ok := s.lockCall(st.Call); ok && isUnlock(op) {
			// Deferred Unlock: the lock stays held for the remainder
			// of the scan — exactly the conservative reading we want.
			_ = key
			return
		}
		s.expr(st.Call)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			s.expr(r)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.expr(r)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.expr(st.Cond)
		before := append([]string(nil), s.held...)
		s.stmts(st.Body.List)
		s.held = append(s.held[:0], before...)
		if st.Else != nil {
			s.stmt(st.Else)
			s.held = append(s.held[:0], before...)
		}
	case *ast.BlockStmt:
		s.stmts(st.List)
	case *ast.ForStmt:
		before := append([]string(nil), s.held...)
		s.stmts(st.Body.List)
		s.held = append(s.held[:0], before...)
	case *ast.RangeStmt:
		before := append([]string(nil), s.held...)
		s.stmts(st.Body.List)
		s.held = append(s.held[:0], before...)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				before := append([]string(nil), s.held...)
				s.stmts(cc.Body)
				s.held = append(s.held[:0], before...)
			}
		}
	case *ast.GoStmt:
		// The goroutine starts with no locks held in this frame.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			saved := s.held
			s.held = nil
			s.stmts(lit.Body.List)
			s.held = saved
		}
	}
}

// expr handles lock operations and Engine-call checks inside an
// expression evaluated at the current held-set.
func (s *scanner) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			// A closure body runs at an unknown time; scan it with an
			// empty held-set for its own lock pairs.
			saved := s.held
			s.held = nil
			s.stmts(lit.Body.List)
			s.held = saved
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, op, ok := s.lockCall(call); ok {
			switch {
			case isUnlock(op):
				s.release(key)
			default:
				s.acquire(key, call.Pos())
			}
			return false
		}
		s.checkEngineCall(call)
		return true
	})
}

func (s *scanner) acquire(key string, pos token.Pos) {
	for _, h := range s.held {
		if h == key {
			continue // re-entrant same-key: not an ordering edge
		}
		e := edge{from: h, to: key}
		if _, seen := s.g.edges[e]; !seen && !s.suppressed(pos) {
			s.g.edges[e] = pos
			s.g.succ[h] = append(s.g.succ[h], key)
		}
	}
	s.held = append(s.held, key)
}

func (s *scanner) release(key string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i] == key {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

// checkEngineCall reports exported core.Engine method calls made while
// a scheduler lock is held.
func (s *scanner) checkEngineCall(call *ast.CallExpr) {
	holder := ""
	for _, h := range s.held {
		if i := strings.IndexByte(h, '.'); i > 0 && strings.Contains(h[:i], "Scheduler") {
			holder = h
			break
		}
	}
	if holder == "" {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := s.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !fn.Exported() || path.Base(fn.Pkg().Path()) != "core" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Engine" {
		return
	}
	if s.suppressed(call.Pos()) {
		return
	}
	s.pass.Reportf(call.Pos(),
		"Engine.%s called while holding %s: scheduler locks are leaf locks and must be released before entering the engine",
		fn.Name(), holder)
}

// lockCall matches sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock calls
// and derives the structural lock key.
func (s *scanner) lockCall(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := s.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	return s.lockKey(sel.X), fn.Name(), true
}

// lockKey names the mutex: `x.mu` → "<TypeOfX>.mu", package-level `mu`
// → "pkg.mu", local `mu` → "mu".
func (s *scanner) lockKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if tv, ok := s.pass.TypesInfo.Types[e.X]; ok {
			t := tv.Type
			if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = p.Elem()
			} else if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + e.Sel.Name
			}
		}
		return "?." + e.Sel.Name
	case *ast.Ident:
		if obj := s.pass.TypesInfo.Uses[e]; obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + e.Name
		}
		return e.Name
	default:
		return fmt.Sprintf("%T", e)
	}
}

func (s *scanner) suppressed(pos token.Pos) bool {
	return s.pass.Annotated(pos, marker) || s.pass.FuncAnnotated(s.fn, marker)
}

func isUnlock(op string) bool { return op == "Unlock" || op == "RUnlock" }

// reportCycles DFSes the acquisition graph and reports each back edge
// with the cycle path it closes.
func reportCycles(pass *analysis.Pass, g *graph) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	var nodes []string
	for e := range g.edges {
		nodes = append(nodes, e.from, e.to)
	}
	sort.Strings(nodes)
	var visit func(n string)
	visit = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		succs := append([]string(nil), g.succ[n]...)
		sort.Strings(succs)
		for _, m := range succs {
			switch color[m] {
			case white:
				visit(m)
			case gray:
				// Back edge n→m closes a cycle m ... n.
				i := 0
				for j, v := range stack {
					if v == m {
						i = j
						break
					}
				}
				cycle := append(append([]string(nil), stack[i:]...), m)
				pass.Reportf(g.edges[edge{from: n, to: m}],
					"lock acquisition cycle: %s — a concurrent interleaving of these orders deadlocks",
					strings.Join(cycle, " -> "))
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			visit(n)
		}
	}
}
