package lockorder_test

import (
	"testing"

	"punica/internal/analysis/analysistest"
	"punica/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer)
}
