// Package serve exercises the acquisition-order graph: AcquireAB and
// AcquireBA take the same pair of locks in opposite orders, which is a
// deadlock under the right interleaving.
package serve

import "sync"

// LockA owns the first mutex.
type LockA struct {
	mu sync.Mutex
	n  int
}

// LockB owns the second mutex.
type LockB struct {
	mu sync.Mutex
	n  int
}

// LockC owns the third mutex.
type LockC struct {
	mu sync.Mutex
	n  int
}

// AcquireAB establishes the order LockA.mu -> LockB.mu.
func AcquireAB(a *LockA, b *LockB) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	a.n++
	b.n++
}

// AcquireBA takes the same pair in the opposite order, closing a cycle.
func AcquireBA(a *LockA, b *LockB) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock acquisition cycle: LockA\.mu -> LockB\.mu -> LockA\.mu`
	defer a.mu.Unlock()
	a.n++
	b.n++
}

// ChainBC extends the order LockB.mu -> LockC.mu: still acyclic with
// AcquireAB, so no diagnostic.
func ChainBC(b *LockB, c *LockC) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	b.n++
	c.n++
}

// HandoffCA releases C before taking A: no ordering edge, no cycle.
func HandoffCA(a *LockA, c *LockC) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}
