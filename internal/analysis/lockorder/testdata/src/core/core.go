// Package core is a fixture mirror of punica/internal/core: the
// lockorder analyzer keys its Engine-call rule on this base name.
package core

// Engine is the fixture engine.
type Engine struct{ steps int }

// Step is an exported engine entry point.
func (e *Engine) Step(now float64) int {
	e.steps++
	return e.steps
}

// Drain is another exported entry point.
func (e *Engine) Drain() {}
