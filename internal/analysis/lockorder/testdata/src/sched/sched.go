// Package sched exercises the leaf-lock rule: exported Engine methods
// must not be called while a scheduler lock is held.
package sched

import (
	"sync"

	"fixture/core"
)

// Scheduler guards its queue with mu; the analyzer treats any lock on
// a *Scheduler-named type as a scheduler lock.
type Scheduler struct {
	mu    sync.Mutex
	queue []int
}

// BadStepUnderLock enters the engine while holding the scheduler lock.
func (s *Scheduler) BadStepUnderLock(e *core.Engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue = s.queue[:0]
	e.Step(1) // want `Engine\.Step called while holding Scheduler\.mu`
}

// GoodStepAfterUnlock releases the lock before entering the engine.
func (s *Scheduler) GoodStepAfterUnlock(e *core.Engine) {
	s.mu.Lock()
	s.queue = s.queue[:0]
	s.mu.Unlock()
	e.Step(1)
}

// GoodAnnotated is an audited exception.
func (s *Scheduler) GoodAnnotated(e *core.Engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.Drain() //punica:lock-ok Drain never re-enters scheduling
}
