// Package analysistest runs an analyzer against fixture packages under
// testdata/src and checks its diagnostics against `// want "regex"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on
// top of the stdlib-only framework in internal/analysis.
//
// Fixtures live at testdata/src/<pkg>/*.go relative to the calling
// test's package directory. They are copied into a throwaway module
// named "fixture" (so fixtures import each other as "fixture/<pkg>")
// and must compile — the loader type-checks them exactly like the real
// tree. A line expecting diagnostics carries one want per diagnostic:
//
//	e.pending = nil // want `mutates snapshot-visible`
//
// The quoted text is a regular expression matched against the
// diagnostic message. Unmatched diagnostics and unsatisfied wants both
// fail the test.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"punica/internal/analysis"
)

// Run loads every fixture package under testdata/src, applies the
// analyzer, and checks diagnostics against the fixtures' want comments.
func Run(t *testing.T, analyzer *analysis.Analyzer) {
	t.Helper()
	RunDir(t, "testdata", analyzer)
}

// RunDir is Run with an explicit testdata directory.
func RunDir(t *testing.T, testdata string, analyzer *analysis.Analyzer) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("analysistest: no fixtures: %v", err)
	}
	root := t.TempDir()
	if err := copyTree(src, root); err != nil {
		t.Fatalf("analysistest: copying fixtures: %v", err)
	}
	gomod := "module fixture\n\ngo 1.24\n"
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}

	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("analysistest: loading fixtures: %v", err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", analyzer.Name, err)
	}

	wants, err := collectWants(root)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	check(t, analyzer.Name, diags, wants)
}

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// collectWants scans every fixture file for want comments.
func collectWants(root string) ([]*want, error) {
	var wants []*want
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			patterns, err := parseWant(line[idx+len("// want "):])
			if err != nil {
				return fmt.Errorf("%s:%d: %v", path, i+1, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %v", path, i+1, p, err)
				}
				wants = append(wants, &want{file: path, line: i + 1, pattern: re})
			}
		}
		return nil
	})
	return wants, err
}

// parseWant reads the quoted or backquoted patterns after "// want".
func parseWant(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			return nil, fmt.Errorf("want patterns must be quoted, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		lit := s[:end+2]
		var p string
		if quote == '"' {
			unq, err := strconv.Unquote(lit)
			if err != nil {
				return nil, err
			}
			p = unq
		} else {
			p = lit[1 : len(lit)-1]
		}
		out = append(out, p)
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}

func check(t *testing.T, name string, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", name, d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", name, w.file, w.line, w.pattern)
		}
	}
}

func copyTree(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}
