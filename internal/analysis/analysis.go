// Package analysis is a self-contained static-analysis framework for
// the punica-vet analyzer suite. It mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — but is
// built entirely on the standard library (go/parser, go/types, and the
// go command's export data), so the repository carries zero module
// dependencies.
//
// The framework exists because PR 5's hot-path overhaul introduced
// correctness contracts that were only enforced by comments: version
// bumps on snapshot-visible engine mutations, valid-until-next-call
// scratch slices, wall-clock-free deterministic simulation, lock
// ordering, and zero-allocation stepping. The analyzers under
// internal/analysis/... turn each of those contracts into a
// machine-checked property; cmd/punica-vet is the multichecker driver.
//
// # Annotation escape hatches
//
// Analyzers honour `//punica:<marker>` comments placed on (or on the
// line above) a flagged construct, or in the enclosing function's doc
// comment:
//
//   - //punica:retains-copy — a scratch-backed slice retention that has
//     been audited (the holder provably does not outlive the next call,
//     or copies before it does).
//   - //punica:nondet-ok — a wall-clock or randomness use that is
//     deliberately outside the deterministic envelope.
//   - //punica:zeroalloc — tags a function for the zeroalloc analyzer.
//   - //punica:alloc-ok — an allocation inside a zeroalloc function that
//     is amortised or off the steady-state path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// Analyzer describes one static check. Run is called once per loaded
// package; it reports findings through the Pass and returns an error
// only for internal failures (not for diagnostics).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, anchored at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	annotations map[string]map[int][]string // filename → line → markers
	report      func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PkgBase returns the last element of the package's import path
// ("punica/internal/core" → "core"), the name analyzers gate on so the
// same check runs against both the real tree and test fixtures.
func (p *Pass) PkgBase() string { return path.Base(p.Pkg.Path()) }

// Annotated reports whether marker (without the "//punica:" prefix)
// annotates the source line of pos: on the same line, on the line
// directly above (the tail of a doc comment block counts), or anywhere
// in the enclosing function's doc comment — the caller passes the
// function's Pos for that case.
func (p *Pass) Annotated(pos token.Pos, marker string) bool {
	position := p.Fset.Position(pos)
	lines := p.annotations[position.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{position.Line, position.Line - 1} {
		for _, m := range lines[l] {
			if m == marker {
				return true
			}
		}
	}
	return false
}

// FuncAnnotated reports whether the function declaration carries marker
// in its doc comment (any line) or on the line above its declaration.
func (p *Pass) FuncAnnotated(fn *ast.FuncDecl, marker string) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if annotationMarker(c.Text) == marker {
				return true
			}
		}
	}
	return p.Annotated(fn.Pos(), marker)
}

// annotationMarker extracts the marker from a "//punica:<marker>"
// comment line, returning "" for ordinary comments. Trailing prose
// after the marker is permitted: "//punica:alloc-ok pool growth".
func annotationMarker(text string) string {
	const prefix = "//punica:"
	if !strings.HasPrefix(text, prefix) {
		return ""
	}
	marker := strings.TrimPrefix(text, prefix)
	if i := strings.IndexAny(marker, " \t"); i >= 0 {
		marker = marker[:i]
	}
	return marker
}

// buildAnnotations indexes every //punica: comment by file and line.
func buildAnnotations(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				marker := annotationMarker(c.Text)
				if marker == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					out[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], marker)
			}
		}
	}
	return out
}

// Run applies each analyzer to each package and returns the collected
// diagnostics, sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ann := buildAnnotations(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.TypesInfo,
				annotations: ann,
				report:      func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(ds []Diagnostic) {
	less := func(a, b Diagnostic) bool {
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	}
	// Insertion sort keeps this dependency-free and the diagnostic
	// counts are tiny.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && less(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
