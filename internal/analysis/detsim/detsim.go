// Package detsim enforces the deterministic-simulation envelope: every
// package reachable from internal/sim's discrete-event paths must be
// replayable bit-for-bit from a seed. Wall-clock reads, the unseeded
// math/rand global source, and map-iteration-order-dependent writes all
// break that property — the last one silently, since Go randomises map
// order per process.
//
// Within the deterministic package set the analyzer reports:
//
//   - calls (or method-value references) to time.Now, time.Since,
//     time.Until;
//   - uses of math/rand (and math/rand/v2) package-level functions,
//     which draw from the unseeded global source — constructors
//     (rand.New, rand.NewSource, rand.NewZipf) for explicitly seeded
//     generators remain legal;
//   - `for ... range m` over a map whose body performs an
//     order-dependent write: appending to a variable declared outside
//     the loop (suppressed when the same function later hands that
//     variable to package sort — the collect-then-sort idiom is
//     order-independent), sending on a channel, or compound
//     floating-point accumulation (`x += f`, whose result depends on
//     summation order).
//
// Wall-clock use outside the envelope (internal/remote, internal/serve,
// the experiment harnesses) is not analyzed. Deliberate exceptions
// inside it — e.g. sim.WallClock, the explicit bridge to real time for
// the HTTP demo — carry a `//punica:nondet-ok` annotation.
package detsim

import (
	"go/ast"
	"go/token"
	"go/types"

	"punica/internal/analysis"
)

// Analyzer is the detsim pass.
var Analyzer = &analysis.Analyzer{
	Name: "detsim",
	Doc:  "deterministic-simulation packages must not read wall clocks, unseeded randomness, or map order",
	Run:  run,
}

// DeterministicPkgs is the envelope, by package-path base name: the
// packages the discrete-event simulator executes. remote/serve (wall
// pacing) and the experiment harnesses are deliberately outside.
var DeterministicPkgs = map[string]bool{
	"core":     true,
	"sched":    true,
	"dist":     true,
	"kvcache":  true,
	"sim":      true,
	"sgmv":     true,
	"lora":     true,
	"layer":    true,
	"hw":       true,
	"workload": true,
	"cluster":  true,
	"metrics":  true,
}

const marker = "nondet-ok"

// bannedTimeFuncs draw from the wall clock.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	if !DeterministicPkgs[pass.PkgBase()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	sorted := sortedVars(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkStdlibUse(pass, fn, n)
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					checkMapRange(pass, fn, n, sorted)
				}
			}
		}
		return true
	})
}

// checkStdlibUse flags wall-clock and global-source randomness.
func checkStdlibUse(pass *analysis.Pass, fn *ast.FuncDecl, sel *ast.SelectorExpr) {
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. Time.Sub) are pure given their inputs
	}
	switch obj.Pkg().Path() {
	case "time":
		if bannedTimeFuncs[obj.Name()] && !suppressed(pass, fn, sel.Pos()) {
			pass.Reportf(sel.Pos(),
				"deterministic package calls time.%s: wall-clock reads break seeded replay (inject a sim.Clock instead)",
				obj.Name())
		}
	case "math/rand", "math/rand/v2":
		if len(obj.Name()) >= 3 && obj.Name()[:3] == "New" {
			return // seeded-generator constructors
		}
		if !suppressed(pass, fn, sel.Pos()) {
			pass.Reportf(sel.Pos(),
				"deterministic package uses %s.%s: the global source is unseeded; draw from a seeded sim.RNG",
				obj.Pkg().Name(), obj.Name())
		}
	}
}

// checkMapRange flags order-dependent writes inside a map iteration.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if !suppressed(pass, fn, n.Pos()) {
				pass.Reportf(n.Pos(), "channel send inside map iteration publishes values in randomized map order")
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, fn, rng, n, sorted)
		}
		return true
	})
}

func checkMapRangeAssign(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, n *ast.AssignStmt, sorted map[types.Object]bool) {
	// Compound float accumulation: order-dependent rounding.
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(n.Lhs) == 1 {
			if tv, ok := pass.TypesInfo.Types[n.Lhs[0]]; ok {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
					if !suppressed(pass, fn, n.Pos()) {
						pass.Reportf(n.Pos(),
							"floating-point accumulation inside map iteration depends on randomized map order; accumulate an exact integer (or sort keys) first")
					}
				}
			}
		}
	}
	// append into a variable declared outside the loop, not later sorted.
	for i, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj == nil || sorted[obj] || insideRange(obj, rng) {
			continue
		}
		rhsIdx := i
		if len(n.Rhs) != len(n.Lhs) {
			rhsIdx = 0
		}
		call, ok := n.Rhs[rhsIdx].(*ast.CallExpr)
		if !ok {
			continue
		}
		if fnID, ok := call.Fun.(*ast.Ident); ok {
			if b, isBuiltin := pass.TypesInfo.Uses[fnID].(*types.Builtin); isBuiltin && b.Name() == "append" {
				if !suppressed(pass, fn, n.Pos()) {
					pass.Reportf(n.Pos(),
						"append to %s inside map iteration records randomized map order; sort afterwards or iterate sorted keys", obj.Name())
				}
			}
		}
	}
}

// insideRange reports whether obj is declared within the range
// statement (loop variables and body locals are per-iteration state).
func insideRange(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

// sortedVars collects objects that the function passes to package sort
// — appends gathered into them are order-independent after sorting.
func sortedVars(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sort" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if o := pass.TypesInfo.Uses[id]; o != nil {
						out[o] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

func suppressed(pass *analysis.Pass, fn *ast.FuncDecl, pos token.Pos) bool {
	return pass.Annotated(pos, marker) || pass.FuncAnnotated(fn, marker)
}
