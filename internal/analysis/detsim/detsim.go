// Package detsim enforces the deterministic-simulation envelope: every
// package reachable from internal/sim's discrete-event paths must be
// replayable bit-for-bit from a seed. Wall-clock reads, the unseeded
// math/rand global source, and map-iteration-order-dependent writes all
// break that property — the last one silently, since Go randomises map
// order per process.
//
// Within the deterministic package set the analyzer reports:
//
//   - calls (or method-value references) to time.Now, time.Since,
//     time.Until;
//   - uses of math/rand (and math/rand/v2) package-level functions,
//     which draw from the unseeded global source — constructors
//     (rand.New, rand.NewSource, rand.NewZipf) for explicitly seeded
//     generators remain legal;
//   - `for ... range m` over a map whose body performs an
//     order-dependent write: appending to a variable declared outside
//     the loop (suppressed when the same function later hands that
//     variable to package sort — the collect-then-sort idiom is
//     order-independent), sending on a channel, or compound
//     floating-point accumulation (`x += f`, whose result depends on
//     summation order).
//
// Wall-clock use outside the envelope (internal/remote, internal/serve,
// the experiment harnesses) is not analyzed. Deliberate exceptions
// inside it — e.g. sim.WallClock, the explicit bridge to real time for
// the HTTP demo — carry a `//punica:nondet-ok` annotation.
package detsim

import (
	"go/ast"
	"go/token"
	"go/types"

	"punica/internal/analysis"
)

// Analyzer is the detsim pass.
var Analyzer = &analysis.Analyzer{
	Name: "detsim",
	Doc:  "deterministic-simulation packages must not read wall clocks, unseeded randomness, or map order",
	Run:  run,
}

// DeterministicPkgs is the envelope, by package-path base name: the
// packages the discrete-event simulator executes. remote/serve (wall
// pacing) and the experiment harnesses are deliberately outside.
var DeterministicPkgs = map[string]bool{
	"core":     true,
	"sched":    true,
	"dist":     true,
	"kvcache":  true,
	"sim":      true,
	"sgmv":     true,
	"lora":     true,
	"layer":    true,
	"hw":       true,
	"workload": true,
	"cluster":  true,
	"metrics":  true,
}

const marker = "nondet-ok"

// barrierMarker suppresses the goroutine shared-state check for the one
// legal pattern: epoch workers advancing disjoint shards under a
// WaitGroup barrier (sim.ParallelExecutor.runEpoch).
const barrierMarker = "barrier-ok"

// sharedSimTypes are cell-exclusive structures: each simulation cell
// owns its VirtualClock and Scheduler outright, and a goroutine calling
// into one it did not receive exclusive ownership of races the epoch.
var sharedSimTypes = map[string]bool{"VirtualClock": true, "Scheduler": true}

// bannedTimeFuncs draw from the wall clock.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	if !DeterministicPkgs[pass.PkgBase()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	sorted := sortedVars(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkStdlibUse(pass, fn, n)
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					checkMapRange(pass, fn, n, sorted)
				}
			}
		case *ast.GoStmt:
			checkGoStmt(pass, fn, n)
		}
		return true
	})
}

// checkGoStmt enforces the epoch-barrier concurrency contract inside
// the deterministic envelope: a spawned goroutine must not write
// variables captured from the enclosing scope, and must not call into a
// clock or scheduler it captured — cross-cell state moves only in the
// single-threaded barrier exchange. The `//punica:barrier-ok`
// annotation marks the audited exception (workers that provably own
// disjoint shards, published by a WaitGroup barrier).
func checkGoStmt(pass *analysis.Pass, fn *ast.FuncDecl, g *ast.GoStmt) {
	if pass.Annotated(g.Pos(), barrierMarker) || pass.FuncAnnotated(fn, barrierMarker) {
		return
	}
	// Direct spawn of a method on a shared structure: go clock.Run(t).
	if sel, ok := g.Call.Fun.(*ast.SelectorExpr); ok {
		if name := sharedSimTypeName(pass, sel.X); name != "" {
			pass.Reportf(g.Pos(),
				"goroutine calls (*%s).%s outside the barrier exchange: cell state is single-owner; synchronize at the epoch barrier or annotate //punica:barrier-ok",
				name, sel.Sel.Name)
		}
		return
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportCapturedWrite(pass, lit, lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			reportCapturedWrite(pass, lit, n.X, n.Pos())
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				break
			}
			name := sharedSimTypeName(pass, sel.X)
			if name == "" {
				break
			}
			if id := rootIdent(sel.X); id != nil && declaredOutside(pass, lit, id) {
				pass.Reportf(n.Pos(),
					"goroutine calls (*%s).%s on captured %s outside the barrier exchange: cell state is single-owner; synchronize at the epoch barrier or annotate //punica:barrier-ok",
					name, sel.Sel.Name, id.Name)
			}
		}
		return true
	})
}

// reportCapturedWrite flags an assignment target rooted in a variable
// declared outside the goroutine's function literal — an
// unsynchronized write to shared state.
func reportCapturedWrite(pass *analysis.Pass, lit *ast.FuncLit, lhs ast.Expr, pos token.Pos) {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return
	}
	if !declaredOutside(pass, lit, id) {
		return
	}
	pass.Reportf(pos,
		"goroutine writes captured variable %s: unsynchronized cross-goroutine writes break deterministic replay; exchange state at the epoch barrier or annotate //punica:barrier-ok",
		id.Name)
}

// sharedSimTypeName returns the shared structure's type name when
// expr's (possibly pointer) type is one of sharedSimTypes, else "".
func sharedSimTypeName(pass *analysis.Pass, expr ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !sharedSimTypes[named.Obj().Name()] {
		return ""
	}
	return named.Obj().Name()
}

// rootIdent unwraps selectors, indexing, derefs and parens down to the
// base identifier of an lvalue or receiver chain (nil when the root is
// not an identifier, e.g. a call result).
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether id resolves to a variable declared
// outside the function literal — captured state rather than a local or
// parameter of the goroutine itself.
func declaredOutside(pass *analysis.Pass, lit *ast.FuncLit, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}

// checkStdlibUse flags wall-clock and global-source randomness.
func checkStdlibUse(pass *analysis.Pass, fn *ast.FuncDecl, sel *ast.SelectorExpr) {
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. Time.Sub) are pure given their inputs
	}
	switch obj.Pkg().Path() {
	case "time":
		if bannedTimeFuncs[obj.Name()] && !suppressed(pass, fn, sel.Pos()) {
			pass.Reportf(sel.Pos(),
				"deterministic package calls time.%s: wall-clock reads break seeded replay (inject a sim.Clock instead)",
				obj.Name())
		}
	case "math/rand", "math/rand/v2":
		if len(obj.Name()) >= 3 && obj.Name()[:3] == "New" {
			return // seeded-generator constructors
		}
		if !suppressed(pass, fn, sel.Pos()) {
			pass.Reportf(sel.Pos(),
				"deterministic package uses %s.%s: the global source is unseeded; draw from a seeded sim.RNG",
				obj.Pkg().Name(), obj.Name())
		}
	}
}

// checkMapRange flags order-dependent writes inside a map iteration.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if !suppressed(pass, fn, n.Pos()) {
				pass.Reportf(n.Pos(), "channel send inside map iteration publishes values in randomized map order")
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, fn, rng, n, sorted)
		}
		return true
	})
}

func checkMapRangeAssign(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, n *ast.AssignStmt, sorted map[types.Object]bool) {
	// Compound float accumulation: order-dependent rounding.
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(n.Lhs) == 1 {
			if tv, ok := pass.TypesInfo.Types[n.Lhs[0]]; ok {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
					if !suppressed(pass, fn, n.Pos()) {
						pass.Reportf(n.Pos(),
							"floating-point accumulation inside map iteration depends on randomized map order; accumulate an exact integer (or sort keys) first")
					}
				}
			}
		}
	}
	// append into a variable declared outside the loop, not later sorted.
	for i, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj == nil || sorted[obj] || insideRange(obj, rng) {
			continue
		}
		rhsIdx := i
		if len(n.Rhs) != len(n.Lhs) {
			rhsIdx = 0
		}
		call, ok := n.Rhs[rhsIdx].(*ast.CallExpr)
		if !ok {
			continue
		}
		if fnID, ok := call.Fun.(*ast.Ident); ok {
			if b, isBuiltin := pass.TypesInfo.Uses[fnID].(*types.Builtin); isBuiltin && b.Name() == "append" {
				if !suppressed(pass, fn, n.Pos()) {
					pass.Reportf(n.Pos(),
						"append to %s inside map iteration records randomized map order; sort afterwards or iterate sorted keys", obj.Name())
				}
			}
		}
	}
}

// insideRange reports whether obj is declared within the range
// statement (loop variables and body locals are per-iteration state).
func insideRange(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

// sortedVars collects objects that the function passes to package sort
// — appends gathered into them are order-independent after sorting.
func sortedVars(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sort" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if o := pass.TypesInfo.Uses[id]; o != nil {
						out[o] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

func suppressed(pass *analysis.Pass, fn *ast.FuncDecl, pos token.Pos) bool {
	return pass.Annotated(pos, marker) || pass.FuncAnnotated(fn, marker)
}
