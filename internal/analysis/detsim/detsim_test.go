package detsim_test

import (
	"testing"

	"punica/internal/analysis/analysistest"
	"punica/internal/analysis/detsim"
)

func TestDetSim(t *testing.T) {
	analysistest.Run(t, detsim.Analyzer)
}
