// Package sim is a fixture for the goroutine shared-state rule: its
// base name is in detsim.DeterministicPkgs, and it declares the shared
// structure types (VirtualClock, Scheduler) the rule guards by name.
package sim

// VirtualClock mimics the real single-owner event clock.
type VirtualClock struct{ now int64 }

func (c *VirtualClock) Run(until int64)   { c.now = until }
func (c *VirtualClock) Schedule(at int64) {}

// Scheduler mimics the real per-cell scheduler.
type Scheduler struct{ depth int }

func (s *Scheduler) Dispatch()     { s.depth++ }
func (s *Scheduler) QueueLen() int { return s.depth }

// BadCapturedWrite: the goroutine mutates enclosing-scope state with no
// barrier.
func BadCapturedWrite() int {
	total := 0
	done := make(chan struct{})
	go func() {
		total++ // want `goroutine writes captured variable total`
		close(done)
	}()
	<-done
	return total
}

// BadCapturedSliceWrite: writes through a captured slice are shared
// too.
func BadCapturedSliceWrite(out []int, done chan struct{}) {
	go func() {
		out[0] = 1 // want `goroutine writes captured variable out`
		close(done)
	}()
	<-done
}

// BadCapturedClock: the goroutine drives a clock another owner may be
// stepping.
func BadCapturedClock(c *VirtualClock, done chan struct{}) {
	go func() {
		c.Run(10) // want `goroutine calls \(\*VirtualClock\)\.Run on captured c`
		close(done)
	}()
	<-done
}

// BadCapturedSchedulerField: reaching a scheduler through a captured
// struct is still a capture.
func BadCapturedSchedulerField(cells []*Scheduler, done chan struct{}) {
	go func() {
		cells[1].Dispatch() // want `goroutine calls \(\*Scheduler\)\.Dispatch on captured cells`
		close(done)
	}()
	<-done
}

// BadDirectSpawn: spawning the method itself is the same race.
func BadDirectSpawn(c *VirtualClock) {
	go c.Run(10) // want `goroutine calls \(\*VirtualClock\)\.Run outside the barrier exchange`
}

// GoodBarrierAnnotated is the audited epoch-worker pattern: disjoint
// shards, WaitGroup barrier.
func GoodBarrierAnnotated(clocks []*VirtualClock, done chan struct{}) {
	//punica:barrier-ok workers own disjoint shards; the barrier publishes their effects
	go func() {
		clocks[0].Run(5)
		close(done)
	}()
	<-done
}

// GoodGoroutineLocals: locals and channel communication are fine.
func GoodGoroutineLocals(ch chan int) {
	go func() {
		local := 0
		local++
		c := &VirtualClock{}
		c.Run(3) // goroutine-local clock: it owns what it made
		ch <- local
	}()
}

// GoodOwnershipTransfer: a clock handed in as the literal's own
// parameter was transferred, not captured.
func GoodOwnershipTransfer(c *VirtualClock, done chan struct{}) {
	go func(mine *VirtualClock) {
		mine.Schedule(1)
		close(done)
	}(c)
	<-done
}
