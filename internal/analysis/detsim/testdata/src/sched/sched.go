// Package sched is a fixture inside the deterministic envelope: its
// base name is in detsim.DeterministicPkgs, so every rule applies.
package sched

import (
	"math/rand"
	"sort"
	"time"
)

// Clock is the injected simulated clock.
type Clock interface{ Now() float64 }

// BadWallClock reads the wall clock directly.
func BadWallClock() time.Time {
	return time.Now() // want `deterministic package calls time\.Now`
}

// BadSince derives a duration from the wall clock.
func BadSince(start time.Time) time.Duration {
	return time.Since(start) // want `deterministic package calls time\.Since`
}

// GoodInjectedClock consumes the simulated clock: legal.
func GoodInjectedClock(c Clock) float64 { return c.Now() }

// GoodTimeArithmetic uses pure time methods on provided values.
func GoodTimeArithmetic(a, b time.Time) time.Duration { return b.Sub(a) }

// BadGlobalRand draws from the unseeded global source.
func BadGlobalRand() int {
	return rand.Intn(10) // want `deterministic package uses rand\.Intn`
}

// GoodSeededRand constructs an explicitly seeded generator.
func GoodSeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// AnnotatedWallClock is an audited exception.
func AnnotatedWallClock() time.Time {
	return time.Now() //punica:nondet-ok boot banner only, never reaches sim state
}

// BadMapAppend records map iteration order.
func BadMapAppend(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `append to out inside map iteration`
	}
	return out
}

// GoodMapAppendSorted gathers then sorts — order-independent.
func GoodMapAppendSorted(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// BadMapSend publishes values in map order.
func BadMapSend(m map[int]string, ch chan string) {
	for _, v := range m {
		ch <- v // want `channel send inside map iteration`
	}
}

// BadFloatAccum sums floats in map order: rounding depends on order.
func BadFloatAccum(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation inside map iteration`
	}
	return total
}

// GoodIntAccum: integer addition is exact and commutative.
func GoodIntAccum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodSliceAppend ranges over a slice, not a map: ordered.
func GoodSliceAppend(xs []string) []string {
	var out []string
	for _, v := range xs {
		out = append(out, v)
	}
	return out
}
