// Package cluster is a fixture inside the deterministic envelope
// modeled on the pre-distribution daemon: the tick predicts a set of
// adapters and stages them fleet-wide, and every part of that cycle
// must replay bit-for-bit from a seed — prediction sets may not be
// materialised in map order, budgets may not accumulate in float map
// order, and the tick's notion of "now" comes from the virtual clock,
// never the wall clock.
package cluster

import (
	"sort"
	"time"
)

// VClock is the injected virtual clock the tick reads.
type VClock interface{ Now() time.Duration }

// GPU is one runner the daemon stages adapters onto.
type GPU struct{ Moved int64 }

// Prewarm models engine.PrewarmAdapter.
func (g *GPU) Prewarm(id int) int64 {
	g.Moved++
	return int64(id)
}

// BadPredictedFromMap materialises the predicted adapter set by
// iterating a popularity map: staging order — and therefore which
// adapters fit the byte budget — would vary per process.
func BadPredictedFromMap(hot map[int]float64) []int {
	var out []int
	for id := range hot {
		out = append(out, id) // want `append to out inside map iteration`
	}
	return out
}

// GoodPredictedSorted gathers then sorts: the staging order is fixed
// regardless of map iteration order.
func GoodPredictedSorted(hot map[int]float64) []int {
	var out []int
	for id := range hot {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// BadBudgetAccum charges a float byte budget in map order: rounding
// differs run to run.
func BadBudgetAccum(moved map[int]float64) float64 {
	var spent float64
	for _, m := range moved {
		spent += m // want `floating-point accumulation inside map iteration`
	}
	return spent
}

// GoodTick is the deterministic tick shape: virtual clock for "now",
// predictions as an ordered slice, GPUs walked in index order, and an
// integer budget cut off at the same byte on every run.
func GoodTick(clock VClock, predicted []int, gpus []*GPU, budget int64) int64 {
	_ = clock.Now()
	var staged int64
	for _, id := range predicted {
		if budget <= 0 {
			break
		}
		for _, g := range gpus {
			moved := g.Prewarm(id)
			budget -= moved
			staged += moved
			if budget <= 0 {
				break
			}
		}
	}
	return staged
}

// BadTickWallClock paces the daemon off the wall clock.
func BadTickWallClock() time.Time {
	return time.Now() // want `deterministic package calls time\.Now`
}
