// Package serve is a fixture outside the deterministic envelope:
// wall-clock pacing and map-order iteration are its business.
package serve

import (
	"math/rand"
	"time"
)

// Deadline may read the wall clock: serve is allowlisted.
func Deadline(budget time.Duration) time.Time {
	return time.Now().Add(budget)
}

// Jitter may use the global source: serve is allowlisted.
func Jitter() int { return rand.Intn(50) }

// Broadcast may publish in map order: serve is allowlisted.
func Broadcast(conns map[int]chan string, msg string) {
	for _, ch := range conns {
		ch <- msg
	}
}
