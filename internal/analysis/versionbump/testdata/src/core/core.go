// Package core is a fixture mirroring the shape of punica/internal/core
// for the versionbump analyzer: an Engine with a version counter,
// snapshot-visible fields, exempt scratch/stats fields, and owned
// subsystems with mutating methods.
package core

// Pool stands in for the KvCache pool.
type Pool struct{ free int }

func (p *Pool) Allocate(n int) error { p.free -= n; return nil }
func (p *Pool) Release(n int)        { p.free += n }
func (p *Pool) FreePages() int       { return p.free }

// Stats is accumulated counters (not snapshot-visible).
type Stats struct{ Steps int64 }

// Engine mirrors core.Engine: version guards the snapshot cache.
type Engine struct {
	version uint64

	pending       []int
	active        []int
	reservedPages int

	kv *Pool

	finishedScratch []int
	stats           Stats
}

// Version returns the counter (read-only: no bump required).
func (e *Engine) Version() uint64 { return e.version }

// WorkingSet is read-only: no bump required.
func (e *Engine) WorkingSet() int { return len(e.active) + len(e.pending) }

// GoodEnqueue bumps before its first mutation, like the real Enqueue:
// an early error return before the bump is fine because nothing mutated.
func (e *Engine) GoodEnqueue(id int) error {
	if id < 0 {
		return nil
	}
	e.version++
	e.pending = append(e.pending, id)
	e.reservedPages++
	return nil
}

// GoodStats mutates only exempt state: no bump required.
func (e *Engine) GoodStats() {
	e.stats.Steps++
	e.finishedScratch = e.finishedScratch[:0]
}

// GoodDelegate calls an exported method, which bumps for itself.
func (e *Engine) GoodDelegate(id int) {
	_ = e.GoodEnqueue(id)
	e.stats.Steps++
}

// GoodHelperCaller bumps before calling a mutating unexported helper.
func (e *Engine) GoodHelperCaller(id int) {
	e.version++
	e.admit(id)
}

func (e *Engine) admit(id int) {
	e.active = append(e.active, id)
}

func (e *Engine) BadDrop(id int) { // want `Engine\.BadDrop mutates snapshot-visible state \(write to pending\) without bumping version`
	e.pending = e.pending[:0]
}

func (e *Engine) BadLate(id int) {
	e.pending = append(e.pending, id) // want `Engine\.BadLate mutates snapshot-visible state \(write to pending\) before bumping version`
	e.version++
}

func (e *Engine) BadHelper(id int) { // want `Engine\.BadHelper mutates snapshot-visible state \(call to mutating helper admit\) without bumping version`
	e.admit(id)
}

func (e *Engine) BadPool(n int) { // want `Engine\.BadPool mutates snapshot-visible state \(mutating call kv\.Allocate\) without bumping version`
	_ = e.kv.Allocate(n)
}

// BadConditionalBump only bumps on one path: the bump is not a
// top-level statement, so it does not dominate the mutation.
func (e *Engine) BadConditionalBump(id int) { // want `Engine\.BadConditionalBump mutates snapshot-visible state \(write to active\) but its version bump does not dominate the mutation`
	if id > 0 {
		e.version++
	}
	e.active = append(e.active, id)
}
