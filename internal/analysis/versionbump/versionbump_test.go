package versionbump_test

import (
	"testing"

	"punica/internal/analysis/analysistest"
	"punica/internal/analysis/versionbump"
)

func TestVersionBump(t *testing.T) {
	analysistest.Run(t, versionbump.Analyzer)
}
