// Package versionbump enforces the engine snapshot-cache contract from
// PR 5: every exported *Engine method that mutates snapshot-visible
// state must bump the `version` counter before the first mutation, so a
// scheduler revalidating a cached core.Snapshot by StateVersion can
// never observe changed state behind an unchanged version.
//
// Snapshot-visible state is:
//
//   - direct writes to Engine fields other than the exempt set
//     (`version` itself, `stats`, and the Step scratch buffers), and
//   - calls to mutating methods of the owned kv pool / adapter store
//     (Acquire, Release, Prefetch, Allocate, Extend, Import, Export).
//
// Unexported helper methods may mutate freely; the analyzer walks the
// unexported call graph so an exported entry point is charged with its
// helpers' writes. Calls to *other exported* Engine methods are trusted
// to bump for themselves (e.g. EvictNewest delegating to Cancel).
//
// The check is deliberately conservative in the same direction as the
// code: the engine over-bumps (a failed Enqueue still bumps because it
// may have evicted adapters while making room), so the analyzer demands
// the bump dominate every mutation — in practice, appear as a top-level
// statement of the method body before the first mutating statement.
package versionbump

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"punica/internal/analysis"
)

// Analyzer is the versionbump pass.
var Analyzer = &analysis.Analyzer{
	Name: "versionbump",
	Doc:  "exported Engine methods that mutate snapshot-visible state must bump version first",
	Run:  run,
}

// EngineType names the guarded type; packages that do not declare it
// are skipped, which scopes the analyzer to core (and fixtures).
const EngineType = "Engine"

// VersionField is the monotonic mutation counter.
const VersionField = "version"

// exemptFields are Engine fields whose mutation is not snapshot-visible:
// the counter itself, accumulated statistics, and the reusable scratch
// buffers behind Step's valid-until-next-call results.
var exemptFields = map[string]bool{
	VersionField:  true,
	"stats":       true,
	"prefillLens": true,
	"decodeCtxs":  true,
	"segModels":   true,
	"segCounts":   true,
	"segBounds":   true,
}

var scratchName = regexp.MustCompile(`(?i)scratch`)

// mutatorMethods are methods on owned subsystems (kv pool, adapter
// store) that change snapshot-visible engine state when called.
var mutatorMethods = map[string]bool{
	"Acquire":  true,
	"Release":  true,
	"Prefetch": true,
	"Allocate": true,
	"Extend":   true,
	"Import":   true,
	"Export":   true,
}

type methodFacts struct {
	decl *ast.FuncDecl
	// firstWrite is the position of the earliest snapshot-visible
	// mutation in the body (direct write or mutator call); NoPos if none.
	firstWrite token.Pos
	what       string // description of that first mutation
	// callees are same-package unexported Engine methods invoked.
	callees map[string]token.Pos
	// bumpEnd is the End position of the first top-level `version++`
	// (or `version += n`) statement; NoPos if absent.
	bumpEnd token.Pos
	// anyBump records a bump anywhere in the body, including inside
	// conditionals where it cannot dominate every mutation.
	anyBump bool
}

func run(pass *analysis.Pass) error {
	engine := lookupEngine(pass.Pkg)
	if engine == nil {
		return nil // package does not declare the guarded type
	}

	methods := map[string]*methodFacts{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if recvNamed(pass, fn) != engine {
				continue
			}
			methods[fn.Name.Name] = collect(pass, fn)
		}
	}

	// Propagate writes through unexported helpers to a fixpoint: a
	// method "writes" if it writes directly or calls an unexported
	// Engine method that writes.
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			if m.firstWrite != token.NoPos {
				continue
			}
			for name, pos := range m.callees {
				callee := methods[name]
				if callee != nil && callee.firstWrite != token.NoPos {
					m.firstWrite = pos
					m.what = "call to mutating helper " + name
					changed = true
					break
				}
			}
		}
	}

	for name, m := range methods {
		if !ast.IsExported(name) || m.firstWrite == token.NoPos {
			continue
		}
		// Re-derive the earliest mutation now that helper knowledge is
		// complete: the direct write may come later than a helper call.
		first, what := m.firstWrite, m.what
		for callee, pos := range m.callees {
			cf := methods[callee]
			if cf != nil && cf.firstWrite != token.NoPos && pos < first {
				first, what = pos, "call to mutating helper "+callee
			}
		}
		switch {
		case m.bumpEnd == token.NoPos && m.anyBump:
			pass.Reportf(m.decl.Pos(),
				"%s.%s mutates snapshot-visible state (%s) but its %s bump does not dominate the mutation",
				EngineType, name, what, VersionField)
		case m.bumpEnd == token.NoPos:
			pass.Reportf(m.decl.Pos(),
				"%s.%s mutates snapshot-visible state (%s) without bumping %s",
				EngineType, name, what, VersionField)
		case m.bumpEnd > first:
			pass.Reportf(first,
				"%s.%s mutates snapshot-visible state (%s) before bumping %s",
				EngineType, name, what, VersionField)
		}
	}
	return nil
}

// lookupEngine finds the guarded named type: a struct named Engine with
// an unsigned-integer field named version.
func lookupEngine(pkg *types.Package) *types.Named {
	obj := pkg.Scope().Lookup(EngineType)
	if obj == nil {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != VersionField {
			continue
		}
		if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsUnsigned != 0 {
			return named
		}
	}
	return nil
}

// recvNamed resolves the named type of a method's receiver (through one
// pointer), or nil.
func recvNamed(pass *analysis.Pass, fn *ast.FuncDecl) *types.Named {
	if len(fn.Recv.List) != 1 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[fn.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// recvIdent returns the receiver identifier object, or nil for a
// blank/anonymous receiver.
func recvIdent(pass *analysis.Pass, fn *ast.FuncDecl) types.Object {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil
	}
	return pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]
}

func collect(pass *analysis.Pass, fn *ast.FuncDecl) *methodFacts {
	recv := recvIdent(pass, fn)
	m := &methodFacts{decl: fn, callees: map[string]token.Pos{}}

	note := func(pos token.Pos, what string) {
		if m.firstWrite == token.NoPos || pos < m.firstWrite {
			m.firstWrite, m.what = pos, what
		}
	}

	// Top-level bump: `recv.version++` (or +=) as a direct child of the
	// body, so it dominates every later statement.
	for _, stmt := range fn.Body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if s.Tok == token.INC && isRecvField(pass, recv, s.X, VersionField) {
				m.bumpEnd = s.End()
			}
		case *ast.AssignStmt:
			if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 &&
				isRecvField(pass, recv, s.Lhs[0], VersionField) {
				m.bumpEnd = s.End()
			}
		}
		if m.bumpEnd != token.NoPos {
			break
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures (sort comparators) do not mutate engine state here
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if f, ok := visibleFieldWrite(pass, recv, lhs); ok {
					note(lhs.Pos(), "write to "+f)
				}
			}
		case *ast.IncDecStmt:
			if n.Tok == token.INC && isRecvField(pass, recv, n.X, VersionField) {
				m.anyBump = true
			}
			if f, ok := visibleFieldWrite(pass, recv, n.X); ok {
				note(n.Pos(), "write to "+f)
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// recv.helper(...) — same-type method call.
			if base, ok := sel.X.(*ast.Ident); ok && recv != nil &&
				pass.TypesInfo.Uses[base] == recv {
				name := sel.Sel.Name
				if !ast.IsExported(name) {
					if _, seen := m.callees[name]; !seen {
						m.callees[name] = n.Pos()
					}
				}
				return true
			}
			// recv.field.Mutator(...) — owned-subsystem mutation.
			if inner, ok := sel.X.(*ast.SelectorExpr); ok &&
				mutatorMethods[sel.Sel.Name] {
				if base, ok := inner.X.(*ast.Ident); ok && recv != nil &&
					pass.TypesInfo.Uses[base] == recv {
					note(n.Pos(), "mutating call "+inner.Sel.Name+"."+sel.Sel.Name)
				}
			}
		}
		return true
	})
	return m
}

// isRecvField reports whether expr is exactly `recv.field`.
func isRecvField(pass *analysis.Pass, recv types.Object, expr ast.Expr, field string) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || recv == nil || sel.Sel.Name != field {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[base] == recv
}

// visibleFieldWrite reports whether expr is a snapshot-visible field of
// the receiver (recv.field with field outside the exempt set).
func visibleFieldWrite(pass *analysis.Pass, recv types.Object, expr ast.Expr) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || recv == nil {
		return "", false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[base] != recv {
		return "", false
	}
	name := sel.Sel.Name
	if exemptFields[name] || scratchName.MatchString(name) {
		return "", false
	}
	return name, true
}
