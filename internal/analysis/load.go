package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path"
	"path/filepath"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	Path      string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// PathBase returns the last element of the import path.
func (p *Package) PathBase() string { return path.Base(p.Path) }

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir, parses the
// matched packages' non-test sources with comments, and type-checks
// them. Imports — including other matched packages — are satisfied from
// compiler export data produced by `go list -export`, so the loader
// never needs to topologically order source type-checking and never
// re-checks the standard library.
//
// Load requires the packages to compile: a vet suite checks invariants
// of working code, and export data does not exist for broken packages.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:      lp.ImportPath,
			Name:      lp.Name,
			Dir:       lp.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var listed []*listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		listed = append(listed, &lp)
	}
	return listed, nil
}
