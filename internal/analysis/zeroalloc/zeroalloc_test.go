package zeroalloc_test

import (
	"testing"

	"punica/internal/analysis/analysistest"
	"punica/internal/analysis/zeroalloc"
)

func TestZeroAlloc(t *testing.T) {
	analysistest.Run(t, zeroalloc.Analyzer)
}
