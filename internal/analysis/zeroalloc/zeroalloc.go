// Package zeroalloc keeps the simulator's hot paths allocation-free by
// construction. Functions whose doc comment carries `//punica:zeroalloc`
// (Engine.Step, Scheduler.Dispatch, VirtualClock.Schedule) are covered
// by testing.AllocsPerRun guards, but those only fail after the
// regression ships; this pass rejects the allocating construct at vet
// time, in the function's direct body:
//
//   - function literals and `go` statements (closure + goroutine
//     allocation);
//   - `defer` (disallowed in hot paths by contract — even heap-free
//     defers cost a frame record);
//   - make, new;
//   - slice/map composite literals, and &T{...} (heap-escaping
//     composite);
//   - append whose destination is a fresh literal (append([]T(nil),…),
//     append([]T{},…)) rather than a reused buffer;
//   - string concatenation (`+` on strings builds a new string);
//   - any call into fmt (formatting boxes its operands).
//
// Only the tagged function's own body is checked — callees carry their
// own tag or their own AllocsPerRun guard. A deliberate slow-path
// allocation (e.g. the event pool miss in VirtualClock.Schedule) is
// waived line-by-line with `//punica:alloc-ok <why>`.
package zeroalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"punica/internal/analysis"
)

// Analyzer is the zeroalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "zeroalloc",
	Doc:  "functions tagged //punica:zeroalloc must not contain allocating constructs",
	Run:  run,
}

const (
	tag    = "zeroalloc"
	waiver = "alloc-ok"
)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.FuncAnnotated(fn, tag) {
				continue
			}
			check(pass, fn)
		}
	}
	return nil
}

func check(pass *analysis.Pass, fn *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...any) {
		if !pass.Annotated(pos, waiver) {
			pass.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "zeroalloc function contains a function literal, which allocates a closure")
			return false // the literal's body is the closure's problem
		case *ast.GoStmt:
			report(n.Pos(), "zeroalloc function starts a goroutine, which allocates")
			return false
		case *ast.DeferStmt:
			report(n.Pos(), "zeroalloc function uses defer, which is disallowed in hot paths")
			return false
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n.Pos(), "zeroalloc function builds a %s literal, which allocates", kindName(tv.Type))
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := n.X.(*ast.CompositeLit); isLit {
					report(n.Pos(), "zeroalloc function takes the address of a composite literal, which escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[n]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), "zeroalloc function concatenates strings, which allocates")
					}
				}
			}
		case *ast.CallExpr:
			checkCall(pass, report, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, report func(token.Pos, string, ...any), call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "zeroalloc function calls make, which allocates")
			case "new":
				report(call.Pos(), "zeroalloc function calls new, which allocates")
			case "append":
				if len(call.Args) > 0 && freshDest(pass, call.Args[0]) {
					report(call.Pos(), "zeroalloc function appends into a fresh slice rather than a reused buffer")
				}
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			report(call.Pos(), "zeroalloc function calls fmt.%s, which boxes its operands", obj.Name())
		}
	}
}

// freshDest reports whether an append destination is a freshly built
// empty slice — `[]T(nil)`, `[]T{}` — i.e. the append must allocate.
func freshDest(pass *analysis.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		// Conversion like []T(nil): Fun is a type expression.
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return true
		}
	}
	return false
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
