// Package hot exercises the zeroalloc pass: only functions tagged
// //punica:zeroalloc are checked, and each allocating construct has a
// positive case here.
package hot

import "fmt"

// Engine reuses scratch buffers across steps.
type Engine struct {
	scratch []int
	names   map[int]string
}

// Step is the tagged hot path done right: truncate-and-reuse only.
//
//punica:zeroalloc
func (e *Engine) Step(xs []int) int {
	e.scratch = e.scratch[:0]
	for _, x := range xs {
		e.scratch = append(e.scratch, x)
	}
	return len(e.scratch)
}

// SlowPath is tagged but waives one deliberate pool-miss allocation.
//
//punica:zeroalloc
func (e *Engine) SlowPath(miss bool) *Engine {
	if miss {
		return new(Engine) //punica:alloc-ok pool miss: amortised, measured by AllocsPerRun guard
	}
	return e
}

// Untagged may allocate freely: no tag, no checks.
func Untagged() []int {
	out := make([]int, 8)
	return append(out, 1)
}

// BadConstructs is tagged and trips every rule.
//
//punica:zeroalloc
func (e *Engine) BadConstructs(n int, s string) string {
	f := func() int { return n }    // want `function literal, which allocates a closure`
	go e.Step(nil)                  // want `starts a goroutine`
	defer e.Step(nil)               // want `uses defer`
	buf := make([]int, n)           // want `calls make, which allocates`
	p := new(int)                   // want `calls new, which allocates`
	xs := []int{1, 2}               // want `builds a slice literal`
	m := map[int]string{}           // want `builds a map literal`
	ptr := &Engine{}                // want `address of a composite literal`
	ys := append([]int(nil), xs...) // want `appends into a fresh slice`
	msg := "x" + s                  // want `concatenates strings`
	fmt.Println(msg)                // want `calls fmt\.Println, which boxes`
	_ = f
	_ = buf
	_ = p
	_ = m
	_ = ptr
	_ = ys
	return msg
}
