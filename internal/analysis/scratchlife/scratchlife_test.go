package scratchlife_test

import (
	"testing"

	"punica/internal/analysis/analysistest"
	"punica/internal/analysis/scratchlife"
)

func TestScratchLife(t *testing.T) {
	analysistest.Run(t, scratchlife.Analyzer)
}
