// Package scratchlife enforces the valid-until-next-call contract on
// scratch-backed return values. Engine.Step results (Finished/Evicted),
// lora.Store.Adapters views and sgmv.SegmentsOver segment vectors all
// alias buffers their producer reuses on the next call; a caller that
// stores one beyond the current call frame has a latent aliasing bug
// that only manifests when the producer runs again — exactly the
// cross-cell heisenbug class a sharded control plane would turn silent.
//
// The analyzer taints locals assigned (directly or transitively) from a
// tracked call and reports when a tainted value is:
//
//   - assigned to a field reachable from a pointer or package-level
//     variable (it now outlives the frame),
//   - assigned to a field of a local struct that the function returns,
//   - assigned to a package-level variable,
//   - sent on a channel, or
//   - captured by a function literal (the closure may run after the
//     producer's next call).
//
// Passing a tainted value as an ordinary call argument is allowed — the
// callee's frame is inside the current call — and re-assigning a local
// from clean data (e.g. `evicted = append([]*core.Request(nil),
// evicted...)`) clears its taint: that is the idiomatic audited copy.
//
// Audited retentions are annotated `//punica:retains-copy` on the
// flagged line (or the enclosing function's doc comment) with prose
// justifying why the holder cannot outlive the next producer call.
package scratchlife

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"

	"punica/internal/analysis"
)

// Analyzer is the scratchlife pass.
var Analyzer = &analysis.Analyzer{
	Name: "scratchlife",
	Doc:  "scratch-backed slices (Engine.Step, Store.Adapters, sgmv.SegmentsOver) must not outlive the next call",
	Run:  run,
}

// tracked identifies the producers whose results are scratch-backed.
// Receiver "" means a package-level function.
type tracked struct{ pkgBase, recv, name string }

var trackedCalls = map[tracked]bool{
	{"core", "Engine", "Step"}:    true,
	{"lora", "Store", "Adapters"}: true,
	{"sgmv", "", "SegmentsOver"}:  true,
}

const marker = "retains-copy"

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	fn      *ast.FuncDecl
	tainted map[types.Object]bool
	// localStructStores defers judgment on `local.Field = tainted`
	// until we know whether the local is returned.
	localStructStores []deferredStore
	returned          map[types.Object]bool
}

type deferredStore struct {
	obj  types.Object
	pos  token.Pos
	what string
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	c := &checker{
		pass:     pass,
		fn:       fn,
		tainted:  map[types.Object]bool{},
		returned: map[types.Object]bool{},
	}
	// Named results are implicitly returned.
	if fn.Type.Results != nil {
		for _, f := range fn.Type.Results.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					c.returned[obj] = true
				}
			}
		}
	}
	c.walk(fn.Body)
	for _, st := range c.localStructStores {
		if c.returned[st.obj] {
			c.report(st.pos, "%s is stored in a field of %s, which this function returns — the scratch-backed value escapes the call frame",
				st.what, st.obj.Name())
		}
	}
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.pass.Annotated(pos, marker) || c.pass.FuncAnnotated(c.fn, marker) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkCapture(n)
			return false // inner bodies are not this frame
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.SendStmt:
			if name, bad := c.taintedExpr(n.Value); bad {
				c.report(n.Pos(), "scratch-backed value from %s is sent on a channel and may outlive the producer's next call", name)
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, ok := r.(*ast.Ident); ok {
					if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
						c.returned[obj] = true
					}
				}
			}
		}
		return true
	})
}

// assign processes taint propagation and retention sinks for one
// assignment statement.
func (c *checker) assign(n *ast.AssignStmt) {
	rhs := func(i int) ast.Expr {
		if len(n.Rhs) == len(n.Lhs) {
			return n.Rhs[i]
		}
		return n.Rhs[0] // tuple assignment from one call
	}
	for i, lhs := range n.Lhs {
		name, bad := c.taintedExpr(rhs(i))
		if !bad {
			// Clean RHS: a plain re-assignment launders the local
			// (the idiomatic copy), but += style keeps prior taint.
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				if obj := c.lhsObject(lhs); obj != nil {
					delete(c.tainted, obj)
				}
			}
			continue
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			obj := c.lhsObject(l)
			if obj == nil {
				continue
			}
			if isPackageLevel(obj) {
				c.report(lhs.Pos(), "scratch-backed value from %s is stored in package-level variable %s", name, obj.Name())
				continue
			}
			c.tainted[obj] = true
		case *ast.SelectorExpr, *ast.IndexExpr:
			root, pointerish := rootOf(c.pass, lhs)
			switch {
			case root == nil || pointerish || isPackageLevel(root):
				c.report(lhs.Pos(), "scratch-backed value from %s is stored in a struct field or element that outlives the call frame", name)
			default:
				// Field of a local value struct: only a violation if
				// the struct is returned. Defer until the walk ends.
				c.localStructStores = append(c.localStructStores, deferredStore{
					obj:  root,
					pos:  lhs.Pos(),
					what: "scratch-backed value from " + name,
				})
			}
		}
	}
}

// checkCapture reports tainted locals referenced inside a func literal.
func (c *checker) checkCapture(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.tainted[obj] {
			c.report(lit.Pos(), "closure captures %s, which holds a scratch-backed value valid only until the producer's next call", id.Name)
			return false
		}
		return true
	})
}

// taintedExpr reports whether expr evaluates to a scratch-backed value,
// naming the source. Taint is structural, mirroring what actually
// aliases the producer's buffers:
//
//   - a tracked call, a tainted local, a field or sub-slice of a
//     tainted value, or a composite literal embedding one is tainted;
//   - an element read (xs[i]) is not — elements are requests/states
//     that live on the heap independently of the scratch array;
//   - append(first, ...) carries only the first argument's taint, so
//     `append([]T(nil), tainted...)` is recognised as the audited copy
//     idiom (fresh backing array, clean result);
//   - results of other calls are assumed fresh.
func (c *checker) taintedExpr(expr ast.Expr) (string, bool) {
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil && c.tainted[obj] {
			return e.Name, true
		}
	case *ast.SelectorExpr:
		if name, ok := c.taintedExpr(e.X); ok {
			return name, ok
		}
	case *ast.SliceExpr:
		return c.taintedExpr(e.X)
	case *ast.ParenExpr:
		return c.taintedExpr(e.X)
	case *ast.StarExpr:
		return c.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return c.taintedExpr(e.X)
	case *ast.TypeAssertExpr:
		return c.taintedExpr(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if name, ok := c.taintedExpr(elt); ok {
				return name, ok
			}
		}
	case *ast.CallExpr:
		if t, ok := trackedCall(c.pass, e); ok {
			return t, true
		}
		if id, ok := e.Fun.(*ast.Ident); ok && len(e.Args) > 0 {
			if obj, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && obj.Name() == "append" {
				return c.taintedExpr(e.Args[0])
			}
		}
	}
	return "", false
}

func (c *checker) lhsObject(expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// rootOf walks to the base identifier of a selector/index chain. It
// reports the root object and whether any link in the chain goes
// through a pointer (meaning the store escapes the local frame).
func rootOf(pass *analysis.Pass, expr ast.Expr) (types.Object, bool) {
	pointerish := false
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			if tv, ok := pass.TypesInfo.Types[e.X]; ok {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					pointerish = true
				}
			}
			expr = e.X
		case *ast.IndexExpr:
			// Slice/map backing arrays are heap-reachable: treat any
			// element store as escaping unless the base is a local
			// array value.
			if tv, ok := pass.TypesInfo.Types[e.X]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					pointerish = true
				}
			}
			expr = e.X
		case *ast.StarExpr:
			pointerish = true
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			return obj, pointerish
		default:
			return nil, pointerish
		}
	}
}

func isPackageLevel(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// trackedCall reports whether the call invokes one of the scratch
// producers, returning a human-readable name.
func trackedCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	default:
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	recvName := ""
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "", false
		}
		recvName = named.Obj().Name()
	}
	key := tracked{path.Base(fn.Pkg().Path()), recvName, fn.Name()}
	if !trackedCalls[key] {
		return "", false
	}
	if recvName != "" {
		return recvName + "." + fn.Name(), true
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}
