// Package driver consumes the scratch-backed producers in every legal
// and illegal way the scratchlife analyzer distinguishes.
package driver

import (
	"fixture/core"
	"fixture/lora"
	"fixture/sgmv"
)

// Sched retains state across scheduling decisions.
type Sched struct {
	finished []int
	adapters []lora.AdapterState
	segs     sgmv.Segments
}

var globalFinished []int

// GoodConsume uses the result inside the call frame only.
func GoodConsume(e *core.Engine) int {
	res := e.Step(1)
	n := 0
	for range res.Finished {
		n++
	}
	return n
}

// GoodCopy launders the scratch slice through an explicit copy before
// retaining it — the idiomatic audited copy.
func (s *Sched) GoodCopy(e *core.Engine) {
	res := e.Step(1)
	finished := res.Finished
	finished = append([]int(nil), finished...)
	s.finished = finished
}

// GoodPass hands the tainted slice to a callee: the callee's frame is
// inside ours, so the contract holds.
func (s *Sched) GoodPass(e *core.Engine) int {
	res := e.Step(1)
	return consume(res.Finished)
}

func consume(xs []int) int { return len(xs) }

// GoodAnnotated retains the view but is audited: the holder is
// invalidated before the store's next mutation.
func (s *Sched) GoodAnnotated(st *lora.Store) {
	s.adapters = st.Adapters() //punica:retains-copy view revalidated by version before reuse
}

func (s *Sched) BadFieldStore(e *core.Engine) {
	res := e.Step(1)
	s.finished = res.Finished // want `scratch-backed value from res is stored in a struct field`
}

func (s *Sched) BadDirectFieldStore(st *lora.Store) {
	s.adapters = st.Adapters() // want `scratch-backed value from Store\.Adapters is stored in a struct field`
}

func (s *Sched) BadSegments(bounds []int) {
	s.segs = sgmv.SegmentsOver(bounds) // want `scratch-backed value from sgmv\.SegmentsOver is stored in a struct field`
}

func BadGlobal(e *core.Engine) {
	res := e.Step(1)
	globalFinished = res.Finished // want `scratch-backed value from res is stored in package-level variable globalFinished`
}

func BadSend(e *core.Engine, ch chan []int) {
	res := e.Step(1)
	ch <- res.Finished // want `sent on a channel`
}

func BadCapture(e *core.Engine, defer_ func(func())) {
	res := e.Step(1)
	defer_(func() { // want `closure captures res`
		consume(res.Finished)
	})
}

// BadTransitive propagates taint through an intermediate local.
func (s *Sched) BadTransitive(e *core.Engine) {
	res := e.Step(1)
	evicted := res.Evicted
	s.finished = evicted // want `scratch-backed value from evicted is stored in a struct field`
}
