// Package core is a fixture producer: Engine.Step returns scratch-backed
// slices, mirroring punica/internal/core.
package core

// StepResult aliases engine scratch; valid until the next Step.
type StepResult struct {
	Finished []int
	Evicted  []int
}

// Engine mirrors the real engine's reused scratch buffers.
type Engine struct {
	finishedScratch []int
}

// Step returns a result whose slices alias engine scratch.
func (e *Engine) Step(now int) StepResult {
	return StepResult{Finished: e.finishedScratch[:0]}
}

// View is a snapshot-like struct a producer method may populate.
type View struct {
	Finished []int
}

// BadView stores a scratch-backed slice into a struct it returns.
func (e *Engine) BadView(now int) View {
	v := View{}
	res := e.Step(now)
	v.Finished = res.Finished // want `stored in a field of v, which this function returns`
	return v
}

// GoodLocalView stores into a local struct that never escapes.
func (e *Engine) GoodLocalView(now int) int {
	v := View{}
	res := e.Step(now)
	v.Finished = res.Finished
	return len(v.Finished)
}
