// Package sgmv is a fixture producer: SegmentsOver wraps a caller
// bounds buffer without copying, mirroring punica/internal/sgmv.
package sgmv

// Segments wraps a segment-boundary vector.
type Segments struct {
	Bounds []int
}

// SegmentsOver wraps bounds without copying.
func SegmentsOver(bounds []int) Segments { return Segments{Bounds: bounds} }
