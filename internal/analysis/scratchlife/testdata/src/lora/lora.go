// Package lora is a fixture producer: Store.Adapters returns a reused
// view slice, mirroring punica/internal/lora.
package lora

// AdapterState describes one resident adapter.
type AdapterState struct {
	ID   int
	Rank int
}

// Store owns the reusable adapters view.
type Store struct {
	cache []AdapterState
}

// Adapters returns the store-owned view, rewritten on mutation.
func (s *Store) Adapters() []AdapterState { return s.cache }
