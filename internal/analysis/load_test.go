package analysis

import (
	"go/types"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot locates the repository root so tests can load real
// packages regardless of the test binary's working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not in a module")
	}
	return filepath.Dir(gomod)
}

// TestLoadRealPackage type-checks a real package of this repository
// through the export-data loader and spot-checks the type information
// analyzers depend on (method sets, selections, cross-package imports).
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "punica/internal/core")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	core := pkgs[0]
	if core.Name != "core" || core.PathBase() != "core" {
		t.Fatalf("unexpected identity %q %q", core.Name, core.Path)
	}
	obj := core.Types.Scope().Lookup("Engine")
	if obj == nil {
		t.Fatal("core.Engine not found")
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		t.Fatalf("Engine underlying is %T, want struct", obj.Type().Underlying())
	}
	found := false
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "version" {
			found = true
		}
	}
	if !found {
		t.Fatal("Engine.version field not found")
	}
	if len(core.TypesInfo.Selections) == 0 {
		t.Fatal("no selection info recorded")
	}
}
