// Package all registers the complete punica-vet analyzer suite in one
// place so the multichecker binary and the repo self-check test cannot
// drift apart.
package all

import (
	"punica/internal/analysis"
	"punica/internal/analysis/detsim"
	"punica/internal/analysis/lockorder"
	"punica/internal/analysis/scratchlife"
	"punica/internal/analysis/versionbump"
	"punica/internal/analysis/zeroalloc"
)

// Analyzers is every pass punica-vet runs, in report order.
var Analyzers = []*analysis.Analyzer{
	versionbump.Analyzer,
	scratchlife.Analyzer,
	detsim.Analyzer,
	lockorder.Analyzer,
	zeroalloc.Analyzer,
}
