package all_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"punica/internal/analysis"
	"punica/internal/analysis/all"
)

// moduleRoot locates the repo root via the go tool so the test works
// from any package directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

// TestRepoIsVetClean runs the full punica-vet suite over the real tree:
// the contracts the analyzers enforce hold everywhere, with deviations
// carrying their audit annotations. A failure here means either a new
// contract violation or an analyzer regression — both block merge.
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := moduleRoot(t)
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.Run(pkgs, all.Analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	}
}
