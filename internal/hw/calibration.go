package hw

import "time"

// Calibrated efficiency derates. A roofline with raw peaks predicts the
// asymptotes of Fig. 7 but not the measured points; real kernels achieve a
// fraction of peak that depends on access pattern. These constants were
// fitted once against the latencies the paper reports (Fig. 1, 8, 9, 10 and
// the §5.2/§6 microbenchmarks) and are referenced from the cost models in
// internal/sgmv and internal/layer. DESIGN.md §4 records the fit targets.
const (
	// EffGEMMMem: streaming large dense weight matrices during decode
	// GEMMs is the friendliest HBM pattern.
	EffGEMMMem = 0.88

	// EffGEMMCompute: sustained Tensor-Core utilisation of prefill-sized
	// GEMMs (cuBLAS on non-huge shapes).
	EffGEMMCompute = 0.62

	// EffAttention: paged BatchPrefill/BatchDecode attention bandwidth
	// (FlashInfer-style kernels chase KvCache pages, slightly worse
	// than pure streaming).
	EffAttention = 0.80

	// EffSGMVGather: SGMV streaming per-model LoRA weight segments.
	// Fitted to the Fig. 9 rank sweep: solving the Distinct batch-64
	// latencies for rank 8 and rank 64 simultaneously gives an
	// effective gather bandwidth of ~1.27 TB/s (0.66 of peak) plus a
	// fixed per-segment scheduling cost (SGMVSegmentOverhead below).
	EffSGMVGather = 0.66

	// EffSGMVCompute: Tensor-Core utilisation of SGMV's skinny
	// matmuls (rank-sized K or N dimensions can't fill the MMA tiles).
	EffSGMVCompute = 0.35

	// EffTorchGather: effective bandwidth of PyTorch's gather op used by
	// the Gather-BMM baseline in Fig. 8 (uncoalesced indexed copies).
	EffTorchGather = 0.25

	// EffTorchBMM: effective bandwidth of torch.bmm on the LoRA shapes.
	EffTorchBMM = 0.55
)

// SGMVSegmentOverhead is the per-segment, per-kernel scheduling cost of
// SGMV (threadblock dispatch for one LoRA index). Fitted alongside
// EffSGMVGather; it is what separates the Distinct line from the Identical
// line at equal byte counts in Fig. 8/9.
const SGMVSegmentOverhead = 180 * time.Nanosecond

// TorchOpOverhead is the per-operator dispatch overhead of eager PyTorch
// (kernel launch + framework bookkeeping). The Loop baseline pays this per
// LoRA model per matmul, which is why it "behaves terribly" (Fig. 8a).
const TorchOpOverhead = 12 * time.Microsecond

// HostInvokeOverhead is the host-side cost of one batched model invocation
// (Python driver, batch assembly, sampling, detokenisation). Fig. 1's
// decode latencies include it; it is why batch-1 decode is ~11 ms when the
// pure weight-streaming time is ~8 ms.
const HostInvokeOverhead = 2500 * time.Microsecond

// LayerNorm latencies from §6: "We also fuse LayerNorm, which reduces
// latency from 110µs to 4µs." Punica and the optimised baselines use the
// fused kernel; HuggingFace Transformers pays the unfused cost.
const (
	LayerNormFused   = 4 * time.Microsecond
	LayerNormUnfused = 110 * time.Microsecond
)
