package hw

import "fmt"

// Precision is a storage data type for weights or KvCache. The paper's
// evaluation is entirely FP16; §8 discusses quantization as an orthogonal
// optimisation ("Model quantization saves more headroom for KvCache,
// hence enabling Punica to serve requests of longer sequences without
// migration" and "KvCache quantization ... further reduces the memory I/O
// of the KvCache"). The zero value is FP16, so existing configurations
// are unchanged.
type Precision int

const (
	// FP16 is the paper's baseline 16-bit floating point.
	FP16 Precision = iota
	// INT8 halves weight/cache bytes (SmoothQuant/GPTQ-class).
	INT8
	// NF4 packs ~4 bits per parameter (QLoRA-class storage).
	NF4
)

// BytesPerParam returns the storage cost of one parameter or cache
// element.
func (p Precision) BytesPerParam() float64 {
	switch p {
	case FP16:
		return 2
	case INT8:
		return 1
	case NF4:
		return 0.5
	default:
		panic(fmt.Sprintf("hw: unknown precision %d", int(p)))
	}
}

// String names the precision.
func (p Precision) String() string {
	switch p {
	case FP16:
		return "fp16"
	case INT8:
		return "int8"
	case NF4:
		return "nf4"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// DequantOverhead is the compute-efficiency penalty of fused
// dequantisation inside quantized GEMM kernels: the memory-bound decode
// path keeps its full bandwidth win, but Tensor-Core efficiency drops a
// little. Applied as a multiplier on compute efficiency.
func (p Precision) DequantOverhead() float64 {
	switch p {
	case FP16:
		return 1
	case INT8:
		return 0.92
	case NF4:
		return 0.85
	default:
		panic("hw: unknown precision")
	}
}
