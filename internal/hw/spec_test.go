package hw

import (
	"testing"
	"time"
)

func TestA100Specs(t *testing.T) {
	g := A100()
	if g.PeakFP16 != 312e12 {
		t.Errorf("A100 peak = %g, want 312 TFLOP/s", g.PeakFP16)
	}
	if g.MemBandwidth != 1.935e12 {
		t.Errorf("A100 bandwidth = %g, want 1.935 TB/s", g.MemBandwidth)
	}
	if g.MemBytes != 80<<30 {
		t.Errorf("A100 memory = %d, want 80 GiB", g.MemBytes)
	}
	g40 := A100_40G()
	if g40.MemBandwidth != 1.555e12 || g40.MemBytes != 40<<30 {
		t.Errorf("A100-40G spec wrong: %+v", g40)
	}
}

func TestStepTimeRoofline(t *testing.T) {
	g := A100()
	// Compute-bound: huge FLOPs, tiny bytes.
	tc := g.StepTime(312e12, 1, 1, 1) // one second of peak compute
	if d := tc - g.KernelLaunch; d < 990*time.Millisecond || d > 1010*time.Millisecond {
		t.Errorf("compute-bound time = %v, want ~1s", d)
	}
	// Memory-bound: tiny FLOPs, a full second of bytes.
	tm := g.StepTime(1, 1.935e12, 1, 1)
	if d := tm - g.KernelLaunch; d < 990*time.Millisecond || d > 1010*time.Millisecond {
		t.Errorf("memory-bound time = %v, want ~1s", d)
	}
	// Roofline takes the max, not the sum.
	both := g.StepTime(312e12, 1.935e12, 1, 1)
	if both > tc+tm {
		t.Errorf("roofline exceeded sum: %v > %v", both, tc+tm)
	}
	if both < tc-g.KernelLaunch {
		t.Errorf("roofline below max term")
	}
}

func TestStepTimeEfficiencyPanics(t *testing.T) {
	g := A100()
	for _, eff := range [][2]float64{{0, 1}, {1, 0}, {1.5, 1}, {1, -0.2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("StepTime(eff=%v) should panic", eff)
				}
			}()
			g.StepTime(1, 1, eff[0], eff[1])
		}()
	}
}

func TestPCIeLoadLatencyMatchesPaper(t *testing.T) {
	// §5.2: "it takes around 50µs to load a layer and 2ms to load the
	// entire model" for a 7B rank-16 LoRA over PCIe Gen4 x16.
	link := PCIeGen4x16()
	layerBytes := int64(2_400_000) // ~2.4 MB of A/B pairs per layer
	perLayer := link.TransferTime(layerBytes)
	if perLayer < 40*time.Microsecond || perLayer > 150*time.Microsecond {
		t.Errorf("per-layer load = %v, want ~50-110µs", perLayer)
	}
	model := link.TransferTime(32 * layerBytes)
	if model < 2*time.Millisecond || model > 4*time.Millisecond {
		t.Errorf("full model load = %v, want ~2-4ms", model)
	}
}

func TestAllReduce(t *testing.T) {
	l := NvSwitch()
	if AllReduceTime(l, 1<<20, 1) != 0 {
		t.Error("world=1 all-reduce should be free")
	}
	t2 := AllReduceTime(l, 1<<20, 2)
	t8 := AllReduceTime(l, 1<<20, 8)
	if t8 <= t2 {
		t.Errorf("8-way all-reduce (%v) should exceed 2-way (%v)", t8, t2)
	}
	// Small messages are latency-dominated.
	small := AllReduceTime(l, 1024, 8)
	if small < l.Latency {
		t.Errorf("all-reduce %v below link latency %v", small, l.Latency)
	}
}

func TestSeconds(t *testing.T) {
	if Seconds(1.5) != 1500*time.Millisecond {
		t.Errorf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if Seconds(0) != 0 {
		t.Errorf("Seconds(0) = %v", Seconds(0))
	}
}
