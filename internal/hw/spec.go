// Package hw catalogues the hardware the Punica paper evaluates on and
// provides the roofline arithmetic that converts FLOP and byte counts into
// simulated kernel latencies.
//
// The paper's two testbeds are (#1) a single NVIDIA A100 80GB and (#2) two
// HGX A100 40GB servers with NvSwitch (§7). Every figure in the evaluation
// is a function of compute-bound versus memory-bound behaviour on these
// parts, so faithful peak numbers plus calibrated efficiency derates are
// sufficient to reproduce the shapes.
package hw

import "time"

// GPUSpec describes one GPU model. All rates are in base SI units
// (FLOP/s, bytes/s, bytes).
type GPUSpec struct {
	// Name identifies the part, e.g. "NVIDIA A100-SXM4-80GB".
	Name string

	// PeakFP16 is the Tensor-Core FP16 peak in FLOP/s. The A100 white
	// paper and Fig. 7's top roofline both use 312 TFLOP/s.
	PeakFP16 float64

	// MemBandwidth is the peak HBM bandwidth in bytes/s. Fig. 7's
	// diagonal is 1.935 TB/s for the 80 GB part; the 40 GB SXM part is
	// 1.555 TB/s.
	MemBandwidth float64

	// MemBytes is the device memory capacity.
	MemBytes int64

	// KernelLaunch is the per-kernel launch overhead when the kernel is
	// enqueued inside a running model invocation (stream already hot).
	KernelLaunch time.Duration

	// MeasureSync is the extra per-kernel overhead observed in a
	// standalone microbenchmark (stream synchronisation, timing). This
	// is what puts the batch-1 floor of the Fig. 8 LoRA operator at
	// 37–42 µs even though its data movement is microseconds.
	MeasureSync time.Duration
}

// StepTime returns how long a kernel with the given work takes on the GPU:
// the larger of compute time and memory time (roofline), plus launch
// overhead. Efficiencies derate the respective peaks and must be in (0, 1].
func (g GPUSpec) StepTime(flop, bytes float64, computeEff, memEff float64) time.Duration {
	if computeEff <= 0 || computeEff > 1 || memEff <= 0 || memEff > 1 {
		panic("hw: efficiency out of (0,1]")
	}
	tc := flop / (g.PeakFP16 * computeEff)
	tm := bytes / (g.MemBandwidth * memEff)
	t := tc
	if tm > t {
		t = tm
	}
	return g.KernelLaunch + Seconds(t)
}

// A100 returns Testbed #1's GPU: A100-SXM4-80GB.
func A100() GPUSpec {
	return GPUSpec{
		Name:         "NVIDIA A100-SXM4-80GB",
		PeakFP16:     312e12,
		MemBandwidth: 1.935e12,
		MemBytes:     80 << 30,
		KernelLaunch: 1500 * time.Nanosecond,
		MeasureSync:  16 * time.Microsecond,
	}
}

// A100_40G returns Testbed #2's GPU: A100-SXM4-40GB (HGX).
func A100_40G() GPUSpec {
	return GPUSpec{
		Name:         "NVIDIA A100-SXM4-40GB",
		PeakFP16:     312e12,
		MemBandwidth: 1.555e12,
		MemBytes:     40 << 30,
		KernelLaunch: 1500 * time.Nanosecond,
		MeasureSync:  16 * time.Microsecond,
	}
}

// Link models a data-movement channel with a fixed per-transfer latency
// and a sustained bandwidth.
type Link struct {
	Name      string
	Bandwidth float64       // bytes/s sustained
	Latency   time.Duration // per-transfer fixed cost
}

// TransferTime returns the time to move n bytes across the link.
func (l Link) TransferTime(n int64) time.Duration {
	return l.Latency + Seconds(float64(n)/l.Bandwidth)
}

// PCIeGen4x16 is the host-to-device path used for on-demand LoRA weight
// loading (§5.2: "On PCIe Gen4 x16, it takes around 50µs to load a layer
// and 2ms to load the entire model"). 25 GB/s effective with a ~10 µs
// cudaMemcpyAsync issue latency lands a 7B rank-16 LoRA layer (~1 MB per
// projection group, ~2.4 MB per layer) at tens of microseconds and the
// 32-layer model at ~2 ms, matching the paper.
func PCIeGen4x16() Link {
	return Link{Name: "PCIe Gen4 x16", Bandwidth: 25e9, Latency: 10 * time.Microsecond}
}

// NvSwitch is the intra-server GPU interconnect on Testbed #2, used by the
// Megatron tensor-parallel all-reduce. 600 GB/s is the A100 NVLink3
// aggregate. The latency constant folds in the full per-collective cost at
// decode-sized payloads (NCCL launch, cross-rank synchronisation, and the
// kernel-gap stalls TP inference pays twice per layer); it is calibrated
// so a TP-8 70B decode step lands near vLLM's measured 457 tok/s at batch
// 32 (Fig. 12), i.e. ~70 ms per step, of which ~2/3 is collective time —
// consistent with profiles of Megatron-style decode.
func NvSwitch() Link {
	return Link{Name: "NVLink3/NvSwitch", Bandwidth: 600e9, Latency: 220 * time.Microsecond}
}

// AllReduceTime models a ring all-reduce of n bytes across world GPUs
// connected by l: each rank moves 2(world-1)/world of the payload, plus
// the link's fixed latency (NCCL small-message overhead dominates decode
// steps, where payloads are tens of kilobytes).
func AllReduceTime(l Link, n int64, world int) time.Duration {
	if world <= 1 {
		return 0
	}
	moved := 2 * float64(n) * float64(world-1) / float64(world)
	return l.Latency + Seconds(moved/l.Bandwidth)
}

// Seconds converts a floating-point second count into a time.Duration.
func Seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// FP16Bytes is the byte size of the 16-bit floating point data type used
// for all weights and activations in the paper's evaluation.
const FP16Bytes = 2
