package hw

import "testing"

func TestPrecisionBytes(t *testing.T) {
	cases := []struct {
		p    Precision
		want float64
	}{
		{FP16, 2},
		{INT8, 1},
		{NF4, 0.5},
	}
	for _, c := range cases {
		if got := c.p.BytesPerParam(); got != c.want {
			t.Errorf("%v bytes = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPrecisionZeroValueIsFP16(t *testing.T) {
	var p Precision
	if p != FP16 || p.BytesPerParam() != 2 {
		t.Fatal("zero-value precision must be FP16 (paper's setup)")
	}
}

func TestPrecisionStrings(t *testing.T) {
	if FP16.String() != "fp16" || INT8.String() != "int8" || NF4.String() != "nf4" {
		t.Fatal("precision names wrong")
	}
}

func TestDequantOverheadOrdering(t *testing.T) {
	// More aggressive quantization costs more compute efficiency, and
	// FP16 costs nothing.
	if FP16.DequantOverhead() != 1 {
		t.Fatal("fp16 must have no dequant overhead")
	}
	if !(NF4.DequantOverhead() < INT8.DequantOverhead() &&
		INT8.DequantOverhead() < FP16.DequantOverhead()) {
		t.Fatal("dequant overhead must grow with quantization aggressiveness")
	}
}

func TestPrecisionPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown precision should panic")
		}
	}()
	Precision(99).BytesPerParam()
}
