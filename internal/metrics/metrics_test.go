package metrics

import (
	"math"
	"testing"
	"time"
)

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for _, v := range []float64{1, 2, 3} {
		a.Add(v)
	}
	for _, v := range []float64{4, 5} {
		b.Add(v)
	}
	_ = a.Percentile(50) // force a sort; Merge must invalidate it
	a.Merge(&b)
	if a.Count() != 5 {
		t.Fatalf("merged count = %d, want 5", a.Count())
	}
	if got := a.Mean(); got != 3 {
		t.Fatalf("merged mean = %v, want 3", got)
	}
	if got := a.Max(); got != 5 {
		t.Fatalf("merged max = %v, want 5", got)
	}
	if b.Count() != 2 {
		t.Fatal("merge mutated the source histogram")
	}
	a.Merge(nil) // no-op
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 5 {
		t.Fatal("merging nil/empty changed the histogram")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should answer zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Add(v)
	}
	if h.Count() != 5 || h.Mean() != 3 {
		t.Fatalf("count=%d mean=%g", h.Count(), h.Mean())
	}
	if h.Percentile(50) != 3 {
		t.Fatalf("p50 = %g", h.Percentile(50))
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min/max = %g/%g", h.Min(), h.Max())
	}
	// Adding after a percentile query must still work (re-sort).
	h.Add(0)
	if h.Min() != 0 {
		t.Fatal("histogram did not resort after Add")
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if p := h.Percentile(99); p != 99 {
		t.Fatalf("p99 = %g, want 99", p)
	}
	if p := h.Percentile(1); p != 1 {
		t.Fatalf("p1 = %g, want 1", p)
	}
	if p := h.Percentile(-5); p != 1 {
		t.Fatalf("p<0 should clamp to min, got %g", p)
	}
	if p := h.Percentile(200); p != 100 {
		t.Fatalf("p>100 should clamp to max, got %g", p)
	}
}

func TestAddDuration(t *testing.T) {
	var h Histogram
	h.AddDuration(1500 * time.Millisecond)
	if math.Abs(h.Mean()-1.5) > 1e-12 {
		t.Fatalf("duration sample = %g, want 1.5s", h.Mean())
	}
}

func TestTimeSeriesBin(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 2)
	ts.Add(500*time.Millisecond, 4)
	ts.Add(1500*time.Millisecond, 6)
	// Bin 0 holds {2,4} → 3; bin 1 holds {6}; bin 2 empty → carries 6.
	got := ts.Bin(3*time.Second, time.Second)
	want := []float64{3, 6, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bin = %v, want %v", got, want)
		}
	}
}

func TestTimeSeriesBinIgnoresOutOfRange(t *testing.T) {
	var ts TimeSeries
	ts.Add(-time.Second, 100)
	ts.Add(10*time.Second, 100)
	got := ts.Bin(2*time.Second, time.Second)
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("out-of-range points leaked: %v", got)
	}
}

func TestRateBin(t *testing.T) {
	var ts TimeSeries
	// 3 events of weight 2 in the first second → 6/s.
	ts.Add(100*time.Millisecond, 2)
	ts.Add(200*time.Millisecond, 2)
	ts.Add(900*time.Millisecond, 2)
	ts.Add(1100*time.Millisecond, 5)
	got := ts.RateBin(2*time.Second, time.Second)
	if got[0] != 6 || got[1] != 5 {
		t.Fatalf("RateBin = %v, want [6 5]", got)
	}
}

func TestBinValidation(t *testing.T) {
	var ts TimeSeries
	defer func() {
		if recover() == nil {
			t.Fatal("zero width should panic")
		}
	}()
	ts.Bin(time.Second, 0)
}

func TestThroughput(t *testing.T) {
	var tp Throughput
	tp.Add(500)
	tp.Add(500)
	if tp.Total() != 1000 {
		t.Fatalf("total = %d", tp.Total())
	}
	if got := tp.PerSecond(2 * time.Second); got != 500 {
		t.Fatalf("rate = %g, want 500", got)
	}
	if tp.PerSecond(0) != 0 {
		t.Fatal("zero elapsed should be 0 rate")
	}
}
