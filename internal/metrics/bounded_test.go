package metrics

import (
	"math"
	"testing"
	"time"
)

// TestHistogramSpillStaysAccurate drives the histogram past the spill
// threshold and checks the contract: count/mean/min/max stay exact,
// quantiles stay within the log-bucket relative error, and memory is the
// fixed bucket array rather than the sample vector.
func TestHistogramSpillStaysAccurate(t *testing.T) {
	var h Histogram
	n := 50_000
	sum := 0.0
	for i := 1; i <= n; i++ {
		v := float64(i) / 1000 // 0.001 .. 50.0 — latency-like range
		h.Add(v)
		sum += v
	}
	if !h.Spilled() {
		t.Fatalf("histogram did not spill after %d samples", n)
	}
	if h.Count() != n {
		t.Fatalf("count %d, want %d", h.Count(), n)
	}
	if math.Abs(h.Mean()-sum/float64(n)) > 1e-9 {
		t.Fatalf("mean %g, want %g", h.Mean(), sum/float64(n))
	}
	if h.Min() != 0.001 || h.Max() != 50 {
		t.Fatalf("min/max %g/%g, want exact 0.001/50", h.Min(), h.Max())
	}
	for _, p := range []float64{1, 25, 50, 90, 99, 99.9} {
		exact := math.Ceil(p/100*float64(n)) / 1000
		got := h.Percentile(p)
		if rel := math.Abs(got-exact) / exact; rel > 0.04 {
			t.Fatalf("p%g = %g, exact %g: relative error %.3f exceeds bucket bound", p, got, exact, rel)
		}
	}
}

// TestHistogramExactBelowSpill pins that short runs keep the historical
// exact nearest-rank behaviour.
func TestHistogramExactBelowSpill(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	if h.Spilled() {
		t.Fatal("histogram spilled below the threshold")
	}
	if h.Percentile(50) != 500 || h.Percentile(99) != 990 {
		t.Fatalf("exact percentiles wrong: p50=%g p99=%g", h.Percentile(50), h.Percentile(99))
	}
}

// TestHistogramMergeExactInBucketDomain checks the merge contract: two
// spilled histograms merged equal one histogram fed every sample.
func TestHistogramMergeExactInBucketDomain(t *testing.T) {
	var a, b, all Histogram
	for i := 1; i <= 10_000; i++ {
		v := float64(i) * 0.0007
		a.Add(v)
		all.Add(v)
	}
	for i := 1; i <= 10_000; i++ {
		v := float64(i) * 0.0031
		b.Add(v)
		all.Add(v)
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean %g, want %g", a.Mean(), all.Mean())
	}
	for _, p := range []float64{0, 10, 50, 95, 100} {
		if got, want := a.Percentile(p), all.Percentile(p); got != want {
			t.Fatalf("p%g: merged %g != streamed %g", p, got, want)
		}
	}
	if b.Count() != 10_000 {
		t.Fatal("merge mutated the source")
	}
}

// TestHistogramMergeUnspilledIntoSpilled covers the mixed-form merge.
func TestHistogramMergeUnspilledIntoSpilled(t *testing.T) {
	var big, small Histogram
	for i := 1; i <= 20_000; i++ {
		big.Add(float64(i))
	}
	small.Add(5)
	small.Add(25_000)
	big.Merge(&small)
	if big.Count() != 20_002 {
		t.Fatalf("count %d", big.Count())
	}
	if big.Max() != 25_000 || big.Min() != 1 {
		t.Fatalf("min/max %g/%g", big.Min(), big.Max())
	}
}

// TestHistogramSpilledNonPositive pins the spilled form's handling of
// zeros and negatives: ranks landing on a zero answer exactly 0; only
// ranks landing on a negative collapse to the exact minimum.
func TestHistogramSpilledNonPositive(t *testing.T) {
	var h Histogram
	h.Add(-1)
	for i := 0; i < 5000; i++ {
		h.Add(0)
	}
	for i := 0; i < 5000; i++ {
		h.Add(10)
	}
	if !h.Spilled() {
		t.Fatal("expected spill")
	}
	if got := h.Percentile(0.001); got != -1 {
		t.Fatalf("lowest rank = %g, want the exact min -1", got)
	}
	if got := h.Percentile(40); got != 0 {
		t.Fatalf("p40 = %g, want 0 (rank lands on a zero sample)", got)
	}
	if got := h.Percentile(90); math.Abs(got-10)/10 > 0.04 {
		t.Fatalf("p90 = %g, want ≈10", got)
	}
}

// TestTimeSeriesDecimationBounds pins the memory bound and the exactness
// of the aggregates the harnesses read: total weight (RateBin mass) is
// preserved exactly, and the point count never exceeds the bound.
func TestTimeSeriesDecimationBounds(t *testing.T) {
	var ts TimeSeries
	n := 100_000
	horizon := time.Hour
	total := 0.0
	for i := 0; i < n; i++ {
		at := time.Duration(i) * horizon / time.Duration(n)
		w := float64(1 + i%3)
		ts.Add(at, w)
		total += w
	}
	if ts.Len() > DefaultTimeSeriesPoints {
		t.Fatalf("series holds %d points, bound %d", ts.Len(), DefaultTimeSeriesPoints)
	}
	rates := ts.RateBin(horizon, time.Minute)
	got := 0.0
	for _, r := range rates {
		got += r * 60
	}
	if math.Abs(got-total) > total*1e-9 {
		t.Fatalf("RateBin mass %g, want exactly %g", got, total)
	}
	// Bin means stay near the true per-bin mean (weights cycle 1,2,3 →
	// mean 2 everywhere; decimation must not distort a uniform series).
	for i, m := range ts.Bin(horizon, time.Minute) {
		if math.Abs(m-2) > 0.05 {
			t.Fatalf("bin %d mean %g, want ≈2", i, m)
		}
	}
}

// TestTimeSeriesLateBirthKeepsResolution pins that decimation width
// derives from the observed span, not the absolute clock: a series
// born late in a long run (a replacement GPU's batch series) keeps the
// designed point budget over its own lifetime.
func TestTimeSeriesLateBirthKeepsResolution(t *testing.T) {
	var ts TimeSeries
	base := 10 * time.Hour // born ten hours into the run
	for i := 0; i < 100_000; i++ {
		ts.Add(base+time.Duration(i)*time.Millisecond, 1) // 100s of data
	}
	if ts.Len() > DefaultTimeSeriesPoints {
		t.Fatalf("series holds %d points, bound %d", ts.Len(), DefaultTimeSeriesPoints)
	}
	// Span/points ≈ per-point width; it must track the 100 s span, not
	// the 10 h clock (which would leave ~57 points at ≥1.7 s each).
	if ts.Len() < DefaultTimeSeriesPoints/8 {
		t.Fatalf("late-born series decimated to %d points — width derived from absolute time?", ts.Len())
	}
}

// TestTimeSeriesSmallExact pins that an un-decimated series behaves
// exactly as the historical implementation (the metrics_test.go cases
// cover values; this covers Points round-tripping).
func TestTimeSeriesSmallExact(t *testing.T) {
	var ts TimeSeries
	ts.Add(time.Second, 3)
	ts.Add(2*time.Second, 5)
	pts := ts.Points()
	if len(pts) != 2 || pts[0] != (Point{T: time.Second, V: 3}) || pts[1] != (Point{T: 2 * time.Second, V: 5}) {
		t.Fatalf("points %v", pts)
	}
}

// TestTimeSeriesCustomBound checks the override knob.
func TestTimeSeriesCustomBound(t *testing.T) {
	ts := TimeSeries{MaxPoints: 16}
	for i := 0; i < 10_000; i++ {
		ts.Add(time.Duration(i)*time.Millisecond, 1)
	}
	if ts.Len() > 16 {
		t.Fatalf("series holds %d points, bound 16", ts.Len())
	}
}

// tsMass sums a series' total mass and count through its points.
func tsMass(ts *TimeSeries) (mass float64, count int64) {
	for _, p := range ts.points {
		mass += p.sum
		count += p.count
	}
	return mass, count
}

// TestTimeSeriesMergeExactMass: merging preserves total mass and count
// exactly, interleaves by timestamp, and is deterministic across merge
// order of disjoint shards.
func TestTimeSeriesMergeExactMass(t *testing.T) {
	var a, b TimeSeries
	for i := 0; i < 100; i++ {
		a.Add(time.Duration(2*i)*time.Millisecond, float64(i))
		b.Add(time.Duration(2*i+1)*time.Millisecond, float64(10*i))
	}
	am, ac := tsMass(&a)
	bm, bc := tsMass(&b)
	a.Merge(&b)
	gm, gc := tsMass(&a)
	if gm != am+bm || gc != ac+bc {
		t.Fatalf("merge lost mass: got (%v,%d), want (%v,%d)", gm, gc, am+bm, ac+bc)
	}
	pts := a.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].T < pts[i-1].T {
			t.Fatalf("merged series out of order at %d: %v after %v", i, pts[i].T, pts[i-1].T)
		}
	}
}

// TestTimeSeriesMergeRespectsBound: merging two full series re-decimates
// into the bound instead of growing without limit, still mass-exact.
func TestTimeSeriesMergeRespectsBound(t *testing.T) {
	a := TimeSeries{MaxPoints: 64}
	b := TimeSeries{MaxPoints: 64}
	for i := 0; i < 500; i++ {
		a.Add(time.Duration(i)*time.Millisecond, 1)
		b.Add(time.Duration(i)*time.Millisecond+500*time.Microsecond, 2)
	}
	am, ac := tsMass(&a)
	bm, bc := tsMass(&b)
	a.Merge(&b)
	if a.Len() >= 64 {
		t.Fatalf("merged series holds %d points, bound is 64", a.Len())
	}
	gm, gc := tsMass(&a)
	if gm != am+bm || gc != ac+bc {
		t.Fatalf("bounded merge lost mass: got (%v,%d), want (%v,%d)", gm, gc, am+bm, ac+bc)
	}
}

// TestTimeSeriesMergeEmpty: merging nil or empty series is a no-op.
func TestTimeSeriesMergeEmpty(t *testing.T) {
	var a, empty TimeSeries
	a.Add(time.Millisecond, 3)
	a.Merge(nil)
	a.Merge(&empty)
	if m, c := tsMass(&a); m != 3 || c != 1 {
		t.Fatalf("no-op merge changed series: (%v,%d)", m, c)
	}
}
