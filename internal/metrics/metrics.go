// Package metrics provides the measurement primitives the experiment
// harnesses use: histograms with percentiles, time series for the Fig. 13
// panels, and a throughput accumulator.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram accumulates float64 samples and answers mean/percentile
// queries. The zero value is ready to use.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
}

// AddDuration records a duration sample in seconds.
func (h *Histogram) AddDuration(d time.Duration) { h.Add(d.Seconds()) }

// Merge folds other's samples into h (other is unchanged). Sweep
// harnesses use it to aggregate per-run distributions — e.g. recovery
// latencies across the cells of an availability sweep.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || len(other.samples) == 0 {
		return
	}
	h.samples = append(h.samples, other.samples...)
	h.sum += other.sum
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Percentile returns the p-th percentile (p in [0,100]) by
// nearest-rank; 0 with no samples.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.samples[rank]
}

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() float64 { return h.Percentile(100) }

// Min returns the smallest sample (0 with no samples).
func (h *Histogram) Min() float64 { return h.Percentile(0) }

// Summary formats count/mean/p50/p99 on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Point is one time-series observation.
type Point struct {
	T time.Duration
	V float64
}

// TimeSeries records timestamped values, e.g. per-GPU batch size over the
// course of the cluster experiment (Fig. 13's lower panel).
type TimeSeries struct {
	points []Point
}

// Add appends an observation. Timestamps should be non-decreasing.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	ts.points = append(ts.points, Point{T: t, V: v})
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Points returns the raw observations.
func (ts *TimeSeries) Points() []Point { return ts.points }

// Bin aggregates the series into fixed-width bins over [0, horizon),
// returning each bin's mean (NaN-free: empty bins carry the previous
// bin's value, starting from 0). Used to downsample hour-long runs into
// plottable rows.
func (ts *TimeSeries) Bin(horizon, width time.Duration) []float64 {
	if width <= 0 {
		panic("metrics: bin width must be positive")
	}
	n := int((horizon + width - 1) / width)
	if n <= 0 {
		return nil
	}
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, p := range ts.points {
		if p.T < 0 || p.T >= horizon {
			continue
		}
		i := int(p.T / width)
		sums[i] += p.V
		counts[i]++
	}
	out := make([]float64, n)
	prev := 0.0
	for i := range out {
		if counts[i] > 0 {
			out[i] = sums[i] / float64(counts[i])
		} else {
			out[i] = prev
		}
		prev = out[i]
	}
	return out
}

// RateBin counts events per second in fixed-width bins: used for the
// req/s and tok/s panels where each point is an event with a weight.
func (ts *TimeSeries) RateBin(horizon, width time.Duration) []float64 {
	if width <= 0 {
		panic("metrics: bin width must be positive")
	}
	n := int((horizon + width - 1) / width)
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for _, p := range ts.points {
		if p.T < 0 || p.T >= horizon {
			continue
		}
		out[int(p.T/width)] += p.V
	}
	for i := range out {
		out[i] /= width.Seconds()
	}
	return out
}

// Throughput accumulates a count over a window and reports the rate.
type Throughput struct {
	total int64
}

// Add increments the accumulated count.
func (t *Throughput) Add(n int64) { t.total += n }

// Total returns the accumulated count.
func (t *Throughput) Total() int64 { return t.total }

// PerSecond returns total / elapsed.
func (t *Throughput) PerSecond(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(t.total) / elapsed.Seconds()
}
