// Package metrics provides the measurement primitives the experiment
// harnesses use: histograms with percentiles, time series for the Fig. 13
// panels, and a throughput accumulator.
//
// Both Histogram and TimeSeries are bounded: short runs keep exact
// samples (bit-identical to the historical implementations), and long
// runs — the million-request scale traces — switch to fixed-memory
// streaming forms (log-bucketed counts, pair-merged series) instead of
// growing without limit and becoming GC ballast.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram spill/bucket geometry. Up to histSpillAt samples are stored
// exactly; beyond that the histogram folds into log-spaced buckets:
// histSubBuckets linear sub-buckets per power of two bounds the relative
// quantile error at 1/(2·histSubBuckets) ≈ 3%. Exponents outside
// [histMinExp, histMaxExp) clamp to the edge buckets — seconds-scale
// latencies live many orders of magnitude inside the range.
const (
	histSpillAt    = 4096
	histSubBuckets = 16
	histMinExp     = -64
	histMaxExp     = 64
	histBuckets    = (histMaxExp - histMinExp) * histSubBuckets
)

// Histogram accumulates float64 samples and answers mean/percentile
// queries. The zero value is ready to use. Until histSpillAt samples it
// is exact (nearest-rank on the sorted sample vector); past that it
// spills into fixed-memory log buckets and quantiles carry ≈3% relative
// error, while Count, Mean, Min and Max stay exact. Memory is bounded at
// histBuckets counters regardless of sample count.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
	count   int64
	min     float64
	max     float64

	// Spilled form: buckets counts positive samples log-spaced; zeros
	// and negs count the non-positive samples separately, so quantile
	// ranks landing on a zero answer exactly 0 and only ranks landing on
	// a negative collapse to the (exact) minimum — negatives sort first,
	// but their distribution is not retained.
	buckets []int64
	zeros   int64
	negs    int64
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.buckets == nil {
		h.samples = append(h.samples, v)
		h.sorted = false
		if len(h.samples) > histSpillAt {
			h.spill()
		}
		return
	}
	h.bucketAdd(v)
}

// AddDuration records a duration sample in seconds.
func (h *Histogram) AddDuration(d time.Duration) { h.Add(d.Seconds()) }

// spill converts the exact sample vector into the bounded bucket form.
func (h *Histogram) spill() {
	h.buckets = make([]int64, histBuckets)
	for _, v := range h.samples {
		h.bucketAdd(v)
	}
	h.samples = nil
	h.sorted = false
}

// Spilled reports whether the histogram has switched to the bounded
// (approximate-quantile) form.
func (h *Histogram) Spilled() bool { return h.buckets != nil }

func (h *Histogram) bucketAdd(v float64) {
	if v == 0 {
		h.zeros++
		return
	}
	if v < 0 {
		h.negs++
		return
	}
	h.buckets[bucketIndex(v)]++
}

// bucketIndex maps a positive value to its log bucket: v = frac·2^exp
// with frac ∈ [0.5, 1), the exponent selects the power-of-two band and
// the mantissa the linear sub-bucket within it.
func bucketIndex(v float64) int {
	frac, exp := math.Frexp(v)
	if exp < histMinExp {
		return 0
	}
	if exp >= histMaxExp {
		return histBuckets - 1
	}
	sub := int((frac - 0.5) * 2 * histSubBuckets)
	if sub >= histSubBuckets {
		sub = histSubBuckets - 1
	}
	return (exp-histMinExp)*histSubBuckets + sub
}

// bucketValue returns the bucket's representative value (its midpoint).
func bucketValue(idx int) float64 {
	exp := histMinExp + idx/histSubBuckets
	sub := idx % histSubBuckets
	frac := 0.5 + (float64(sub)+0.5)/(2*histSubBuckets)
	return math.Ldexp(frac, exp)
}

// Merge folds other's samples into h (other is unchanged). Sweep
// harnesses use it to aggregate per-run distributions — e.g. recovery
// latencies across the cells of an availability sweep. Merging two
// spilled histograms is exact in the bucket domain: the result's buckets
// equal those of one histogram fed every sample.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	if h.buckets == nil && other.buckets == nil && len(h.samples)+len(other.samples) <= histSpillAt {
		h.samples = append(h.samples, other.samples...)
		h.sorted = false
		return
	}
	if h.buckets == nil {
		h.spill()
	}
	if other.buckets != nil {
		for i, n := range other.buckets {
			h.buckets[i] += n
		}
		h.zeros += other.zeros
		h.negs += other.negs
		return
	}
	for _, v := range other.samples {
		h.bucketAdd(v)
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return int(h.count) }

// Mean returns the sample mean (0 with no samples). Exact in both forms.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Percentile returns the p-th percentile (p in [0,100]) by
// nearest-rank; 0 with no samples. Exact until the histogram spills,
// then accurate to the bucket width (≈3% relative).
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(math.Ceil(p/100*float64(h.count))) - 1
	if rank < 0 {
		rank = 0
	}
	if h.buckets == nil {
		if !h.sorted {
			sort.Float64s(h.samples)
			h.sorted = true
		}
		return h.samples[rank]
	}
	if rank < h.negs {
		return h.min // negatives sort first; only min is retained exactly
	}
	if rank < h.negs+h.zeros {
		return 0
	}
	cum := h.negs + h.zeros
	for i, n := range h.buckets {
		cum += n
		if rank < cum {
			v := bucketValue(i)
			// The exact extrema are tracked scalar-side; never answer
			// outside them.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Max returns the largest sample (0 with no samples). Always exact.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest sample (0 with no samples). Always exact.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Summary formats count/mean/p50/p99 on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Point is one time-series observation as reported by Points. For a
// series that has decimated, V is the mean of the merged observations.
type Point struct {
	T time.Duration
	V float64
}

// tsPoint is the internal aggregated observation: merged points carry
// their total weight and observation count so Bin means and RateBin
// sums stay exact in value (time is quantized to the merged timestamp).
type tsPoint struct {
	t     time.Duration
	sum   float64
	count int64
}

// DefaultTimeSeriesPoints bounds a TimeSeries at zero value: once
// reached, the series decimates into time buckets of a doubling width,
// trading time resolution for flat memory. 4096 points comfortably
// out-resolve the widest Fig. 13 binning while keeping a 256-GPU
// fleet's per-GPU batch series under ~25 MB total.
const DefaultTimeSeriesPoints = 4096

// TimeSeries records timestamped values, e.g. per-GPU batch size over the
// course of the cluster experiment (Fig. 13's lower panel). Memory is
// bounded: when the series reaches MaxPoints entries it decimates by
// merging points into fixed-width time buckets (summing weights,
// weight-averaging timestamps) and doubling the bucket width until it
// fits in half the bound. Resolution degrades uniformly across the whole
// series — every retained point spans the same wall-clock width — so a
// ten-hour run is as readable at the start as at the end.
type TimeSeries struct {
	// MaxPoints overrides the decimation bound when > 0 (min 2);
	// the zero value uses DefaultTimeSeriesPoints.
	MaxPoints int

	points []tsPoint
	// width is the current decimation bucket (0 until the series first
	// overflows; observations are exact until then).
	width time.Duration
}

func (ts *TimeSeries) bound() int {
	if ts.MaxPoints > 1 {
		return ts.MaxPoints
	}
	if ts.MaxPoints == 1 {
		return 2
	}
	return DefaultTimeSeriesPoints
}

// Add appends an observation. Timestamps should be non-decreasing.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	if ts.width > 0 && len(ts.points) > 0 {
		last := &ts.points[len(ts.points)-1]
		if t/ts.width == last.t/ts.width {
			// Same decimation bucket as the newest point: fold in.
			last.count++
			last.t += (t - last.t) / time.Duration(last.count)
			last.sum += v
			return
		}
	}
	ts.points = append(ts.points, tsPoint{t: t, sum: v, count: 1})
	if len(ts.points) >= ts.bound() {
		ts.decimate()
	}
}

// decimate merges points into time buckets, doubling the bucket width
// until the series fits in half its bound. Merged timestamps are the
// count-weighted mean, so each point's mass stays near the bins it came
// from; sums and counts are preserved exactly.
func (ts *TimeSeries) decimate() {
	target := ts.bound() / 2
	for len(ts.points) > target {
		if ts.width == 0 {
			// Width derives from the observed span, not the absolute end
			// time: a series born mid-run (e.g. a replacement GPU's batch
			// series) must not decimate to the coarseness of the whole
			// run's clock.
			span := ts.points[len(ts.points)-1].t - ts.points[0].t
			ts.width = span/time.Duration(target) + 1
		} else {
			ts.width *= 2
		}
		if ts.width <= 0 {
			ts.width = 1 // degenerate span (all-equal or negative timestamps)
		}
		out := ts.points[:0]
		for _, p := range ts.points {
			if len(out) > 0 {
				last := &out[len(out)-1]
				if p.t/ts.width == last.t/ts.width {
					n := last.count + p.count
					last.t += time.Duration(float64(p.t-last.t) * float64(p.count) / float64(n))
					last.sum += p.sum
					last.count = n
					continue
				}
			}
			out = append(out, p)
		}
		ts.points = out
	}
}

// Merge folds other's observations into ts (other is unchanged). The
// merge is exact in mass and count: every retained point's sum and
// count carry over, interleaved by timestamp (ts's points first on
// ties, so merging in a fixed shard order is deterministic). The result
// adopts the coarser of the two decimation widths and re-decimates if
// the combined series exceeds the bound — cell-sharded runs use this to
// fold per-cell arrival/processed series into one fleet series.
func (ts *TimeSeries) Merge(other *TimeSeries) {
	if other == nil || len(other.points) == 0 {
		return
	}
	merged := make([]tsPoint, 0, len(ts.points)+len(other.points))
	i, j := 0, 0
	for i < len(ts.points) && j < len(other.points) {
		if other.points[j].t < ts.points[i].t {
			merged = append(merged, other.points[j])
			j++
		} else {
			merged = append(merged, ts.points[i])
			i++
		}
	}
	merged = append(merged, ts.points[i:]...)
	merged = append(merged, other.points[j:]...)
	ts.points = merged
	if other.width > ts.width {
		ts.width = other.width
	}
	if len(ts.points) >= ts.bound() {
		ts.decimate()
	}
}

// Len returns the number of retained (possibly merged) points.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Points returns the observations; merged points report their mean
// value at their weighted timestamp.
func (ts *TimeSeries) Points() []Point {
	out := make([]Point, len(ts.points))
	for i, p := range ts.points {
		out[i] = Point{T: p.t, V: p.sum / float64(p.count)}
	}
	return out
}

// Bin aggregates the series into fixed-width bins over [0, horizon),
// returning each bin's mean (NaN-free: empty bins carry the previous
// bin's value, starting from 0). Used to downsample hour-long runs into
// plottable rows. Merged points contribute their full weight and count
// at their merged timestamp.
func (ts *TimeSeries) Bin(horizon, width time.Duration) []float64 {
	if width <= 0 {
		panic("metrics: bin width must be positive")
	}
	n := int((horizon + width - 1) / width)
	if n <= 0 {
		return nil
	}
	sums := make([]float64, n)
	counts := make([]int64, n)
	for _, p := range ts.points {
		if p.t < 0 || p.t >= horizon {
			continue
		}
		i := int(p.t / width)
		sums[i] += p.sum
		counts[i] += p.count
	}
	out := make([]float64, n)
	prev := 0.0
	for i := range out {
		if counts[i] > 0 {
			out[i] = sums[i] / float64(counts[i])
		} else {
			out[i] = prev
		}
		prev = out[i]
	}
	return out
}

// RateBin counts events per second in fixed-width bins: used for the
// req/s and tok/s panels where each point is an event with a weight.
func (ts *TimeSeries) RateBin(horizon, width time.Duration) []float64 {
	if width <= 0 {
		panic("metrics: bin width must be positive")
	}
	n := int((horizon + width - 1) / width)
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for _, p := range ts.points {
		if p.t < 0 || p.t >= horizon {
			continue
		}
		out[int(p.t/width)] += p.sum
	}
	for i := range out {
		out[i] /= width.Seconds()
	}
	return out
}

// Throughput accumulates a count over a window and reports the rate.
type Throughput struct {
	total int64
}

// Add increments the accumulated count.
func (t *Throughput) Add(n int64) { t.total += n }

// Total returns the accumulated count.
func (t *Throughput) Total() int64 { return t.total }

// PerSecond returns total / elapsed.
func (t *Throughput) PerSecond(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(t.total) / elapsed.Seconds()
}
