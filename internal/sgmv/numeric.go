package sgmv

import (
	"fmt"

	"punica/internal/tensor"
)

// Pair is one LoRA weight pair for a single projection: A shrinks the
// input feature to the LoRA rank, B expands it back (§2.2: W + AB is the
// fine-tuned weight, A ∈ R^{h1×r}, B ∈ R^{r×h2}).
type Pair struct {
	A *tensor.Matrix // hIn × r
	B *tensor.Matrix // r × hOut
}

// Rank returns the LoRA rank r of the pair.
func (p Pair) Rank() int { return p.A.Cols }

// Shrink computes v[s[i]:s[i+1]] += x[s[i]:s[i+1]] @ as[i] for every
// segment: the SGMV-shrink kernel (§4, "it shrinks a high-dimensional
// input feature to low-rank output"). v must be totalRows × r, x must be
// totalRows × hIn, and as[i] must be hIn × r.
func Shrink(v, x *tensor.Matrix, as []*tensor.Matrix, seg Segments) {
	applySegmented(v, x, as, seg)
}

// Expand computes y[s[i]:s[i+1]] += v[s[i]:s[i+1]] @ bs[i] for every
// segment: the SGMV-expand kernel ("expands the low-rank input feature to
// a high-dimensional output feature").
func Expand(y, v *tensor.Matrix, bs []*tensor.Matrix, seg Segments) {
	applySegmented(y, v, bs, seg)
}

func applySegmented(dst, src *tensor.Matrix, ws []*tensor.Matrix, seg Segments) {
	if len(ws) != seg.N() {
		panic(fmt.Sprintf("sgmv: %d weights for %d segments", len(ws), seg.N()))
	}
	if src.Rows != seg.Total() || dst.Rows != seg.Total() {
		panic(fmt.Sprintf("sgmv: batch rows %d/%d do not match segment total %d",
			src.Rows, dst.Rows, seg.Total()))
	}
	for i := 0; i < seg.N(); i++ {
		xs := src.RowSlice(seg.Start(i), seg.End(i))
		ys := dst.RowSlice(seg.Start(i), seg.End(i))
		tensor.MatmulAcc(ys, xs, ws[i])
	}
}

// Apply computes the full batched LoRA addon y += x @ A_i @ B_i per
// segment as two SGMV launches (§4: "operator y += x A B can be separated
// as two launches of the same kernel: v := 0; v += x A; y += v B").
func Apply(y, x *tensor.Matrix, pairs []Pair, seg Segments) {
	if len(pairs) != seg.N() {
		panic(fmt.Sprintf("sgmv: %d pairs for %d segments", len(pairs), seg.N()))
	}
	if seg.N() == 0 {
		return
	}
	r := pairs[0].Rank()
	for _, p := range pairs {
		if p.Rank() != r {
			panic("sgmv: mixed ranks in one batch are not supported by the kernel")
		}
	}
	v := tensor.New(seg.Total(), r)
	as := make([]*tensor.Matrix, len(pairs))
	bs := make([]*tensor.Matrix, len(pairs))
	for i, p := range pairs {
		as[i], bs[i] = p.A, p.B
	}
	Shrink(v, x, as, seg)
	Expand(y, v, bs, seg)
}
