// Package sgmv implements Punica's core contribution: Segmented Gather
// Matrix-Vector multiplication (§4). The operator's semantics are
//
//	Y[s[i]:s[i+1]] += X[s[i]:s[i+1]] @ W[i]      (Fig. 3)
//
// where consecutive rows of the batch belonging to the same LoRA model
// form a segment and W[i] is that model's weight.
//
// The package provides three things:
//
//  1. Numerically exact implementations of the operator and of the paper's
//     two PyTorch baselines (Loop and Gather-BMM), all verified to agree.
//  2. The FLOP and I/O accounting from §7.1 used for the roofline study.
//  3. A calibrated latency model for each implementation on the simulated
//     A100, which feeds the layer, engine and cluster simulations.
package sgmv

import (
	"fmt"
	"sort"
)

// Segments is the segment-boundary vector s of the SGMV operator:
// s[0] = 0, s[n] = batch size, and rows [s[i], s[i+1]) belong to the i-th
// LoRA model in the batch (§4: "Denote sequence s_i as the last element
// index for i-th model within the batch").
type Segments struct {
	bounds []int
}

// NewSegments builds Segments from per-segment row counts.
func NewSegments(sizes ...int) Segments {
	bounds := make([]int, len(sizes)+1)
	for i, sz := range sizes {
		if sz <= 0 {
			panic(fmt.Sprintf("sgmv: segment %d has non-positive size %d", i, sz))
		}
		bounds[i+1] = bounds[i] + sz
	}
	return Segments{bounds: bounds}
}

// SegmentsOver wraps an existing boundary vector without copying — the
// zero-allocation constructor for hot paths (the engine's per-step
// invocation assembly) that reuse a bounds buffer across calls. The
// caller must satisfy the FromBounds invariants (bounds[0] == 0,
// strictly increasing) and must not mutate bounds while the Segments
// value is in use; for retained or untrusted vectors use FromBounds.
func SegmentsOver(bounds []int) Segments { return Segments{bounds: bounds} }

// FromBounds builds Segments from an explicit boundary vector. The vector
// must start at 0 and be strictly increasing.
func FromBounds(bounds []int) (Segments, error) {
	if len(bounds) == 0 || bounds[0] != 0 {
		return Segments{}, fmt.Errorf("sgmv: bounds must start at 0, got %v", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return Segments{}, fmt.Errorf("sgmv: bounds not strictly increasing at %d: %v", i, bounds)
		}
	}
	b := make([]int, len(bounds))
	copy(b, bounds)
	return Segments{bounds: b}, nil
}

// N returns the number of segments (distinct LoRA models in the batch).
func (s Segments) N() int {
	if len(s.bounds) == 0 {
		return 0
	}
	return len(s.bounds) - 1
}

// Total returns s_n, the total number of rows (batch size in tokens).
func (s Segments) Total() int {
	if len(s.bounds) == 0 {
		return 0
	}
	return s.bounds[len(s.bounds)-1]
}

// Start returns s[i], the first row of segment i.
func (s Segments) Start(i int) int { return s.bounds[i] }

// End returns s[i+1], one past the last row of segment i.
func (s Segments) End(i int) int { return s.bounds[i+1] }

// Len returns the number of rows in segment i.
func (s Segments) Len(i int) int { return s.bounds[i+1] - s.bounds[i] }

// Bounds returns a copy of the boundary vector.
func (s Segments) Bounds() []int {
	b := make([]int, len(s.bounds))
	copy(b, s.bounds)
	return b
}

// String renders the boundary vector, e.g. "[0 3 4 8]".
func (s Segments) String() string { return fmt.Sprint(s.bounds) }

// GroupByModel sorts a batch of per-row model identifiers into the
// consecutive-segment order SGMV requires ("Within a batch, we further
// organize the batch input order such that requests that share the same
// LoRA model are consecutive", §6). It returns the row permutation (order
// maps new position -> original row), the segment boundaries, and the
// model id owning each segment.
//
// The sort is stable in arrival order within a model and orders segments
// by first appearance, which preserves the prefill-head/decode-tail layout
// the engine constructs.
func GroupByModel(ids []int) (order []int, segs Segments, segModels []int) {
	order = make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	first := make(map[int]int, len(ids))
	for i, id := range ids {
		if _, ok := first[id]; !ok {
			first[id] = i
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := ids[order[a]], ids[order[b]]
		if ia == ib {
			return false
		}
		return first[ia] < first[ib]
	})
	bounds := []int{0}
	for i := 0; i < len(order); {
		id := ids[order[i]]
		j := i
		for j < len(order) && ids[order[j]] == id {
			j++
		}
		segModels = append(segModels, id)
		bounds = append(bounds, j)
		i = j
	}
	if len(ids) == 0 {
		return order, Segments{bounds: []int{0}}, nil
	}
	return order, Segments{bounds: bounds}, segModels
}
