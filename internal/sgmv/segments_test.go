package sgmv

import (
	"reflect"
	"testing"
	"testing/quick"

	"punica/internal/sim"
)

func TestNewSegments(t *testing.T) {
	s := NewSegments(3, 1, 4)
	if s.N() != 3 || s.Total() != 8 {
		t.Fatalf("N=%d Total=%d, want 3/8", s.N(), s.Total())
	}
	if s.Start(1) != 3 || s.End(1) != 4 || s.Len(2) != 4 {
		t.Fatalf("bad bounds: %v", s.Bounds())
	}
	if got := s.String(); got != "[0 3 4 8]" {
		t.Fatalf("String = %q", got)
	}
}

func TestNewSegmentsPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size segment should panic")
		}
	}()
	NewSegments(2, 0, 1)
}

func TestFromBounds(t *testing.T) {
	s, err := FromBounds([]int{0, 2, 5})
	if err != nil || s.N() != 2 || s.Total() != 5 {
		t.Fatalf("FromBounds: %v %v", s, err)
	}
	for _, bad := range [][]int{nil, {1, 2}, {0, 2, 2}, {0, 3, 1}} {
		if _, err := FromBounds(bad); err == nil {
			t.Errorf("FromBounds(%v) should error", bad)
		}
	}
}

func TestEmptySegments(t *testing.T) {
	var s Segments
	if s.N() != 0 || s.Total() != 0 {
		t.Fatal("zero Segments should be empty")
	}
}

func TestGroupByModelBasic(t *testing.T) {
	ids := []int{7, 3, 7, 3, 9}
	order, segs, models := GroupByModel(ids)
	if !reflect.DeepEqual(models, []int{7, 3, 9}) {
		t.Fatalf("segment models = %v", models)
	}
	if !reflect.DeepEqual(segs.Bounds(), []int{0, 2, 4, 5}) {
		t.Fatalf("bounds = %v", segs.Bounds())
	}
	// Rows of the same model must be consecutive and stable in original
	// order.
	if !reflect.DeepEqual(order, []int{0, 2, 1, 3, 4}) {
		t.Fatalf("order = %v", order)
	}
}

func TestGroupByModelEmpty(t *testing.T) {
	order, segs, models := GroupByModel(nil)
	if len(order) != 0 || segs.N() != 0 || len(models) != 0 {
		t.Fatal("empty input should produce empty grouping")
	}
}

func TestGroupByModelProperty(t *testing.T) {
	rng := sim.NewRNG(11)
	f := func(raw []uint8) bool {
		ids := make([]int, len(raw))
		for i, v := range raw {
			ids[i] = int(v % 5)
		}
		order, segs, models := GroupByModel(ids)
		if len(order) != len(ids) {
			return false
		}
		// order is a permutation.
		seen := make([]bool, len(ids))
		for _, o := range order {
			if o < 0 || o >= len(ids) || seen[o] {
				return false
			}
			seen[o] = true
		}
		if len(ids) == 0 {
			return true
		}
		if segs.Total() != len(ids) || segs.N() != len(models) {
			return false
		}
		// Every segment holds exactly one model id; adjacent segments
		// differ.
		for i := 0; i < segs.N(); i++ {
			for row := segs.Start(i); row < segs.End(i); row++ {
				if ids[order[row]] != models[i] {
					return false
				}
			}
			if i > 0 && models[i] == models[i-1] {
				return false
			}
		}
		// Model ids are unique across segments (one segment per model).
		uniq := map[int]bool{}
		for _, m := range models {
			if uniq[m] {
				return false
			}
			uniq[m] = true
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
