package sgmv

import (
	"testing"
)

// FuzzSegmentSizes drives NewSegments/FromBounds with arbitrary segment
// shapes and checks the boundary-vector invariants the SGMV kernels
// rely on: s[0] = 0, strictly increasing bounds, Total equals the size
// sum, per-segment Len round-trips, and FromBounds(Bounds()) is the
// identity.
func FuzzSegmentSizes(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{3, 1, 4, 1, 5})
	f.Add([]byte{255, 0, 17})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		sizes := make([]int, len(raw))
		total := 0
		for i, b := range raw {
			sizes[i] = int(b)%512 + 1 // NewSegments requires positive sizes
			total += sizes[i]
		}
		s := NewSegments(sizes...)
		if s.N() != len(sizes) {
			t.Fatalf("N = %d, want %d", s.N(), len(sizes))
		}
		if s.Total() != total {
			t.Fatalf("Total = %d, want sum %d", s.Total(), total)
		}
		prev := -1
		for i := 0; i < s.N(); i++ {
			if s.Len(i) != sizes[i] {
				t.Fatalf("Len(%d) = %d, want %d", i, s.Len(i), sizes[i])
			}
			if s.Start(i) <= prev {
				t.Fatalf("bounds not strictly increasing at %d", i)
			}
			if s.End(i)-s.Start(i) != sizes[i] {
				t.Fatalf("segment %d spans %d rows, want %d", i, s.End(i)-s.Start(i), sizes[i])
			}
			prev = s.Start(i)
		}
		back, err := FromBounds(s.Bounds())
		if err != nil {
			t.Fatalf("FromBounds(Bounds()) rejected a valid vector: %v", err)
		}
		if back.String() != s.String() {
			t.Fatalf("round-trip changed bounds: %s vs %s", back, s)
		}
	})
}

// FuzzGroupByModel checks the batch-reordering invariants for arbitrary
// per-row model assignments: the permutation is a bijection, segments
// tile the batch, and every row of segment i carries that segment's
// model.
func FuzzGroupByModel(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 1, 2, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 128 {
			raw = raw[:128]
		}
		ids := make([]int, len(raw))
		for i, b := range raw {
			ids[i] = int(b % 7)
		}
		order, segs, segModels := GroupByModel(ids)
		if len(order) != len(ids) || segs.Total() != len(ids) {
			t.Fatalf("order/segments sized %d/%d for %d rows", len(order), segs.Total(), len(ids))
		}
		seen := make(map[int]bool, len(order))
		for _, o := range order {
			if o < 0 || o >= len(ids) || seen[o] {
				t.Fatalf("order is not a permutation: %v", order)
			}
			seen[o] = true
		}
		if segs.N() != len(segModels) {
			t.Fatalf("%d segments but %d models", segs.N(), len(segModels))
		}
		for i := 0; i < segs.N(); i++ {
			for row := segs.Start(i); row < segs.End(i); row++ {
				if ids[order[row]] != segModels[i] {
					t.Fatalf("row %d of segment %d has model %d, want %d",
						row, i, ids[order[row]], segModels[i])
				}
			}
		}
	})
}
