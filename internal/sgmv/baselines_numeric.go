package sgmv

import (
	"fmt"

	"punica/internal/tensor"
)

// LoopApply is the first PyTorch baseline from §7.1: "a for-loop over each
// LoRA model". It computes the same y += x A B addon one segment at a
// time, with each segment paying a full (simulated) operator dispatch.
// Numerically it must agree with Apply exactly.
func LoopApply(y, x *tensor.Matrix, pairs []Pair, seg Segments) {
	if len(pairs) != seg.N() {
		panic(fmt.Sprintf("sgmv: %d pairs for %d segments", len(pairs), seg.N()))
	}
	for i := 0; i < seg.N(); i++ {
		xs := x.RowSlice(seg.Start(i), seg.End(i))
		ys := y.RowSlice(seg.Start(i), seg.End(i))
		v := tensor.Matmul(xs, pairs[i].A)
		tensor.MatmulAcc(ys, v, pairs[i].B)
	}
}

// GatherBMMApply is the second PyTorch baseline from §7.1: "In the gather
// step, we stack the weight matrices that each input needs into a single
// matrix. Then, we use torch.bmm()". Gather materialises one weight copy
// per input row (that is the extra sn×hi×ho I/O the paper charges it
// for); BMM then does a per-row matmul. Numerically identical to Apply.
func GatherBMMApply(y, x *tensor.Matrix, pairs []Pair, seg Segments) {
	if len(pairs) != seg.N() {
		panic(fmt.Sprintf("sgmv: %d pairs for %d segments", len(pairs), seg.N()))
	}
	if seg.N() == 0 {
		return
	}
	// Gather: stackedA[row] / stackedB[row] reference the row's model.
	stackedA := make([]*tensor.Matrix, seg.Total())
	stackedB := make([]*tensor.Matrix, seg.Total())
	for i := 0; i < seg.N(); i++ {
		for row := seg.Start(i); row < seg.End(i); row++ {
			stackedA[row] = pairs[i].A.Clone() // gather writes a copy per row
			stackedB[row] = pairs[i].B.Clone()
		}
	}
	// BMM twice: v = x @ stackedA, y += v @ stackedB, row by row.
	for row := 0; row < seg.Total(); row++ {
		xr := x.RowSlice(row, row+1)
		yr := y.RowSlice(row, row+1)
		v := tensor.Matmul(xr, stackedA[row])
		tensor.MatmulAcc(yr, v, stackedB[row])
	}
}

// DenseReference computes y += x @ (A_i B_i) per segment by materialising
// the full-rank delta weight. It is the ground-truth oracle used by tests:
// every operator implementation must match it within float tolerance.
func DenseReference(y, x *tensor.Matrix, pairs []Pair, seg Segments) {
	for i := 0; i < seg.N(); i++ {
		delta := tensor.Matmul(pairs[i].A, pairs[i].B)
		xs := x.RowSlice(seg.Start(i), seg.End(i))
		ys := y.RowSlice(seg.Start(i), seg.End(i))
		tensor.MatmulAcc(ys, xs, delta)
	}
}
