package sgmv

import (
	"time"

	"punica/internal/hw"
)

// Op describes one SGMV kernel launch for cost purposes: a segmented
// matmul from hIn features to hOut features over the given segments.
// Shrink kernels have hOut = rank; expand kernels have hIn = rank.
type Op struct {
	HIn, HOut int
	Seg       Segments
}

// FLOP returns the floating-point operation count from §7.1:
// FLOP = sn × hi × ho × 2.
func (op Op) FLOP() float64 {
	return float64(op.Seg.Total()) * float64(op.HIn) * float64(op.HOut) * 2
}

// IOBytes returns the memory traffic from §7.1:
// I/O = [sn × (hi + ho) + n × hi × ho] × 2 bytes,
// i.e. activations in and out plus one read of each distinct model's
// weight, in 16-bit floats.
func (op Op) IOBytes() float64 {
	sn := float64(op.Seg.Total())
	n := float64(op.Seg.N())
	hi, ho := float64(op.HIn), float64(op.HOut)
	return (sn*(hi+ho) + n*hi*ho) * hw.FP16Bytes
}

// Intensity returns the arithmetic intensity FLOP : I/O, the x-axis of
// the Fig. 7 roofline.
func (op Op) Intensity() float64 { return op.FLOP() / op.IOBytes() }

// CostModel converts SGMV and baseline operator invocations into simulated
// latencies on a GPU. Standalone selects the microbenchmark setting of
// Fig. 7–9, where every kernel additionally pays a stream-synchronisation
// cost; inside a model invocation (Fig. 10 onwards) kernels are enqueued
// back to back and only pay the launch overhead.
type CostModel struct {
	GPU        hw.GPUSpec
	Standalone bool
}

// NewCostModel returns a cost model for the given GPU in in-model (non
// standalone) mode.
func NewCostModel(gpu hw.GPUSpec) CostModel { return CostModel{GPU: gpu} }

func (c CostModel) perKernelOverhead() time.Duration {
	o := c.GPU.KernelLaunch
	if c.Standalone {
		o += c.GPU.MeasureSync
	}
	return o
}

// KernelTime returns the latency of one SGMV kernel launch. The model is
// a roofline over the §7.1 FLOP/IO counts with calibrated derates, plus a
// per-segment scheduling cost: weights are gathered at hw.EffSGMVGather of
// peak bandwidth, activations stream at hw.EffGEMMMem, and each distinct
// LoRA index pays hw.SGMVSegmentOverhead (threadblock dispatch on
// blockIdx.y, Fig. 4).
func (c CostModel) KernelTime(op Op) time.Duration {
	if op.Seg.N() == 0 {
		return 0
	}
	sn := float64(op.Seg.Total())
	n := float64(op.Seg.N())
	hi, ho := float64(op.HIn), float64(op.HOut)

	compute := op.FLOP() / (c.GPU.PeakFP16 * hw.EffSGMVCompute)
	weightBytes := n * hi * ho * hw.FP16Bytes
	actBytes := sn * (hi + ho) * hw.FP16Bytes
	mem := weightBytes/(c.GPU.MemBandwidth*hw.EffSGMVGather) +
		actBytes/(c.GPU.MemBandwidth*hw.EffGEMMMem)

	work := compute
	if mem > work {
		work = mem
	}
	segCost := time.Duration(op.Seg.N()) * hw.SGMVSegmentOverhead
	return c.perKernelOverhead() + segCost + hw.Seconds(work)
}

// OperatorTime returns the latency of the full batched LoRA addon for one
// projection (hIn → rank → hOut): two SGMV launches (shrink then expand).
func (c CostModel) OperatorTime(hIn, rank, hOut int, seg Segments) time.Duration {
	shrink := c.KernelTime(Op{HIn: hIn, HOut: rank, Seg: seg})
	expand := c.KernelTime(Op{HIn: rank, HOut: hOut, Seg: seg})
	return shrink + expand
}

// LoopTime models the for-loop PyTorch baseline: each segment issues two
// eager matmuls, each paying the framework's per-op dispatch overhead.
// With n distinct models this is n × 2 dispatches — the cost that makes
// Loop "behave terribly" in the Distinct workload (Fig. 8a).
func (c CostModel) LoopTime(hIn, rank, hOut int, seg Segments) time.Duration {
	var total time.Duration
	for i := 0; i < seg.N(); i++ {
		rows := float64(seg.Len(i))
		// x@A: read x rows + A, write v rows.
		b1 := (rows*float64(hIn) + float64(hIn*rank) + rows*float64(rank)) * hw.FP16Bytes
		// v@B: read v rows + B, write y rows.
		b2 := (rows*float64(rank) + float64(rank*hOut) + rows*float64(hOut)) * hw.FP16Bytes
		total += 2*hw.TorchOpOverhead +
			hw.Seconds((b1+b2)/(c.GPU.MemBandwidth*hw.EffTorchBMM))
	}
	return total
}

// GatherTime models the two torch gather launches that stack per-row
// copies of A and B: reading n distinct weights and writing sn copies
// ("Gather reads in n×hi×ho elements and writes to sn×hi×ho", §7.1).
func (c CostModel) GatherTime(hIn, rank, hOut int, seg Segments) time.Duration {
	sn := float64(seg.Total())
	n := float64(seg.N())
	aBytes := (n + sn) * float64(hIn*rank) * hw.FP16Bytes
	bBytes := (n + sn) * float64(rank*hOut) * hw.FP16Bytes
	t := 2 * hw.TorchOpOverhead
	t += hw.Seconds((aBytes + bBytes) / (c.GPU.MemBandwidth * hw.EffTorchGather))
	return t
}

// BMMTime models the two torch.bmm launches over the gathered stacks:
// each must re-read the sn per-row weight copies Gather just wrote —
// the sn×hi×ho×2 extra traffic §7.1 charges Gather-BMM with.
func (c CostModel) BMMTime(hIn, rank, hOut int, seg Segments) time.Duration {
	sn := float64(seg.Total())
	b1 := sn * (float64(hIn*rank) + float64(hIn) + float64(rank)) * hw.FP16Bytes
	b2 := sn * (float64(rank*hOut) + float64(rank) + float64(hOut)) * hw.FP16Bytes
	t := 2 * hw.TorchOpOverhead
	t += hw.Seconds((b1 + b2) / (c.GPU.MemBandwidth * hw.EffTorchBMM))
	return t
}

// GatherBMMTime is the full Gather-BMM baseline: Gather twice plus BMM
// twice (§7.1).
func (c CostModel) GatherBMMTime(hIn, rank, hOut int, seg Segments) time.Duration {
	return c.GatherTime(hIn, rank, hOut, seg) + c.BMMTime(hIn, rank, hOut, seg)
}

// AchievedFLOPS returns the throughput (FLOP/s) the cost model predicts
// for one kernel: the y-axis of the Fig. 7 roofline plot.
func (c CostModel) AchievedFLOPS(op Op) float64 {
	t := c.KernelTime(op).Seconds()
	if t == 0 {
		return 0
	}
	return op.FLOP() / t
}
