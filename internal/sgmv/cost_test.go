package sgmv

import (
	"testing"
	"time"

	"punica/internal/dist"
	"punica/internal/hw"
)

func microModel() CostModel {
	return CostModel{GPU: hw.A100(), Standalone: true}
}

func segsFor(k dist.Kind, batch int) Segments {
	return NewSegments(dist.SegmentSizes(k, batch)...)
}

func TestFLOPIOFormulas(t *testing.T) {
	// §7.1: FLOP = sn·hi·ho·2, I/O = [sn(hi+ho) + n·hi·ho]·2.
	op := Op{HIn: 16, HOut: 4096, Seg: NewSegments(3, 5)}
	sn, n := 8.0, 2.0
	wantFLOP := sn * 16 * 4096 * 2
	wantIO := (sn*(16+4096) + n*16*4096) * 2
	if op.FLOP() != wantFLOP {
		t.Errorf("FLOP = %g, want %g", op.FLOP(), wantFLOP)
	}
	if op.IOBytes() != wantIO {
		t.Errorf("IO = %g, want %g", op.IOBytes(), wantIO)
	}
	if got := op.Intensity(); got != wantFLOP/wantIO {
		t.Errorf("intensity = %g", got)
	}
}

func TestDistinctIntensityConstant(t *testing.T) {
	// Fig. 7: "In the Distinct case, the arithmetic intensity does not
	// change because FLOP and I/O grow at the same rate."
	base := Op{HIn: 16, HOut: 4096, Seg: segsFor(dist.Distinct, 1)}.Intensity()
	for _, b := range []int{2, 8, 32, 64} {
		got := Op{HIn: 16, HOut: 4096, Seg: segsFor(dist.Distinct, b)}.Intensity()
		if diff := got/base - 1; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("Distinct intensity changed at batch %d: %g vs %g", b, got, base)
		}
	}
}

func TestIdenticalIntensityGrows(t *testing.T) {
	// Fig. 7: the Identical line climbs the memory-bandwidth diagonal:
	// intensity grows with batch size.
	prev := 0.0
	for _, b := range []int{1, 4, 16, 64} {
		got := Op{HIn: 16, HOut: 4096, Seg: segsFor(dist.Identical, b)}.Intensity()
		if got <= prev {
			t.Errorf("Identical intensity not increasing at batch %d", b)
		}
		prev = got
	}
}

func TestBatch1LatencyFloor(t *testing.T) {
	// Fig. 8/9: the standalone LoRA operator floor is ~37-42µs at batch 1
	// regardless of rank.
	c := microModel()
	for _, r := range []int{8, 16, 32, 64} {
		lat := c.OperatorTime(4096, r, 4096, segsFor(dist.Identical, 1))
		if lat < 30*time.Microsecond || lat > 50*time.Microsecond {
			t.Errorf("rank %d batch-1 operator = %v, want ~37-42µs", r, lat)
		}
	}
}

func TestDistinctRankSweepMatchesFig9(t *testing.T) {
	// Fig. 9: Distinct batch 64 → ~72µs, 75µs, 89µs, 118µs for ranks
	// 8, 16, 32, 64. Allow ±25%.
	c := microModel()
	want := map[int]time.Duration{
		8:  72 * time.Microsecond,
		16: 75 * time.Microsecond,
		32: 89 * time.Microsecond,
		64: 118 * time.Microsecond,
	}
	seg := segsFor(dist.Distinct, 64)
	for r, w := range want {
		got := c.OperatorTime(4096, r, 4096, seg)
		lo := time.Duration(float64(w) * 0.75)
		hi := time.Duration(float64(w) * 1.25)
		if got < lo || got > hi {
			t.Errorf("rank %d Distinct batch 64 = %v, want %v ±25%%", r, got, w)
		}
	}
}

func TestSharedWorkloadsFlatAcrossBatch(t *testing.T) {
	// Fig. 9: "When the workload exists weight sharing (Uniform, Skewed,
	// and Identical), the latency remains almost the same across batch
	// size 1 to 64, at around 42µs to 45µs" (rank 16).
	c := microModel()
	for _, k := range []dist.Kind{dist.Uniform, dist.Skewed, dist.Identical} {
		b1 := c.OperatorTime(4096, 16, 4096, segsFor(k, 1))
		b64 := c.OperatorTime(4096, 16, 4096, segsFor(k, 64))
		if ratio := float64(b64) / float64(b1); ratio > 1.45 {
			t.Errorf("%v batch-64/batch-1 = %.2f, want nearly flat", k, ratio)
		}
	}
}

func TestSGMVBeatsBaselines(t *testing.T) {
	// Fig. 8: "SGMV significantly outperforms baseline implementations
	// regardless of workloads" (batch > 1).
	c := microModel()
	for _, k := range dist.Kinds {
		for _, b := range []int{8, 32, 64} {
			seg := segsFor(k, b)
			sg := c.OperatorTime(4096, 16, 4096, seg)
			loop := c.LoopTime(4096, 16, 4096, seg)
			gbmm := c.GatherBMMTime(4096, 16, 4096, seg)
			if k != dist.Identical && sg >= loop {
				t.Errorf("%v batch %d: SGMV %v not faster than Loop %v", k, b, sg, loop)
			}
			if sg >= gbmm {
				t.Errorf("%v batch %d: SGMV %v not faster than Gather-BMM %v", k, b, sg, gbmm)
			}
		}
	}
}

func TestLoopTerribleOnDistinct(t *testing.T) {
	// Fig. 8a: Loop runs batch-size-1 matmuls per model; at batch 64 it
	// should be well beyond the 300µs chart limit.
	c := microModel()
	loop := c.LoopTime(4096, 16, 4096, segsFor(dist.Distinct, 64))
	if loop < 1*time.Millisecond {
		t.Errorf("Loop Distinct batch 64 = %v, want > 1ms", loop)
	}
	// On Identical it degenerates to a single pair of matmuls: cheap.
	loopId := c.LoopTime(4096, 16, 4096, segsFor(dist.Identical, 64))
	if loopId > 60*time.Microsecond {
		t.Errorf("Loop Identical batch 64 = %v, want cheap", loopId)
	}
}

func TestGatherBMMExtraIO(t *testing.T) {
	// §7.1: "Gather-BMM incurs sn×hi×ho×2 more elements memory I/O than
	// SGMV" — so its latency must grow faster with batch than SGMV's in
	// every workload.
	c := microModel()
	for _, k := range dist.Kinds {
		sgGrowth := c.OperatorTime(4096, 16, 4096, segsFor(k, 64)) -
			c.OperatorTime(4096, 16, 4096, segsFor(k, 1))
		gbGrowth := c.GatherBMMTime(4096, 16, 4096, segsFor(k, 64)) -
			c.GatherBMMTime(4096, 16, 4096, segsFor(k, 1))
		if gbGrowth <= sgGrowth {
			t.Errorf("%v: Gather-BMM growth %v not above SGMV growth %v", k, gbGrowth, sgGrowth)
		}
	}
}

func TestGatherBMMIdenticalFasterThanDistinct(t *testing.T) {
	// Fig. 8: "Gather-BMM performs slightly better than the Distinct case
	// since there are fewer matrices to read."
	c := microModel()
	d := c.GatherBMMTime(4096, 16, 4096, segsFor(dist.Distinct, 64))
	id := c.GatherBMMTime(4096, 16, 4096, segsFor(dist.Identical, 64))
	if id >= d {
		t.Errorf("Gather-BMM Identical %v should beat Distinct %v", id, d)
	}
}

func TestInModelCheaperThanStandalone(t *testing.T) {
	in := NewCostModel(hw.A100())
	micro := microModel()
	seg := segsFor(dist.Uniform, 32)
	if in.OperatorTime(4096, 16, 4096, seg) >= micro.OperatorTime(4096, 16, 4096, seg) {
		t.Error("in-model SGMV should be cheaper than standalone (no sync)")
	}
}

func TestRooflineBounds(t *testing.T) {
	// Achieved FLOP/s must never exceed either roofline ceiling.
	c := microModel()
	for _, k := range dist.Kinds {
		for _, b := range []int{1, 4, 16, 64} {
			op := Op{HIn: 16, HOut: 4096, Seg: segsFor(k, b)}
			ach := c.AchievedFLOPS(op)
			if ach > c.GPU.PeakFP16 {
				t.Errorf("%v batch %d: achieved %.3g above compute peak", k, b, ach)
			}
			if ach > op.Intensity()*c.GPU.MemBandwidth {
				t.Errorf("%v batch %d: achieved %.3g above bandwidth roof", k, b, ach)
			}
		}
	}
}

func TestAchievedGrowsWithBatchDistinct(t *testing.T) {
	// Fig. 7: "Since each input only utilizes a small amount of GPU
	// compute units, increasing the batch size increases performance."
	c := microModel()
	prev := 0.0
	for _, b := range []int{1, 4, 16, 64} {
		ach := c.AchievedFLOPS(Op{HIn: 16, HOut: 4096, Seg: segsFor(dist.Distinct, b)})
		if ach <= prev {
			t.Errorf("Distinct achieved FLOP/s not increasing at batch %d", b)
		}
		prev = ach
	}
}

func TestKernelTimeEmptySegments(t *testing.T) {
	c := microModel()
	if c.KernelTime(Op{HIn: 16, HOut: 16}) != 0 {
		t.Error("empty op should cost nothing")
	}
}
