package sgmv

import (
	"testing"
	"testing/quick"

	"punica/internal/sim"
	"punica/internal/tensor"
)

func randomPairs(rng *sim.RNG, n, hIn, r, hOut int) []Pair {
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{
			A: tensor.Random(rng, hIn, r, 0.5),
			B: tensor.Random(rng, r, hOut, 0.5),
		}
	}
	return pairs
}

func TestApplyMatchesDenseReference(t *testing.T) {
	rng := sim.NewRNG(20)
	seg := NewSegments(2, 3, 1)
	hIn, r, hOut := 16, 4, 12
	pairs := randomPairs(rng, seg.N(), hIn, r, hOut)
	x := tensor.Random(rng, seg.Total(), hIn, 1)

	got := tensor.Random(rng, seg.Total(), hOut, 1) // non-zero initial y
	want := got.Clone()
	Apply(got, x, pairs, seg)
	DenseReference(want, x, pairs, seg)
	if !tensor.Equal(got, want, 1e-4) {
		t.Fatalf("SGMV != dense reference, max diff %g", tensor.MaxAbsDiff(got, want))
	}
}

func TestAllImplementationsAgree(t *testing.T) {
	rng := sim.NewRNG(21)
	f := func(sizes []uint8, dims [3]uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 6 {
			sizes = sizes[:6]
		}
		segSizes := make([]int, len(sizes))
		for i, s := range sizes {
			segSizes[i] = int(s%4) + 1
		}
		seg := NewSegments(segSizes...)
		hIn := int(dims[0]%12) + 2
		r := int(dims[1]%4) + 1
		hOut := int(dims[2]%12) + 2
		pairs := randomPairs(rng, seg.N(), hIn, r, hOut)
		x := tensor.Random(rng, seg.Total(), hIn, 1)
		init := tensor.Random(rng, seg.Total(), hOut, 1)

		ySGMV := init.Clone()
		yLoop := init.Clone()
		yGB := init.Clone()
		yRef := init.Clone()
		Apply(ySGMV, x, pairs, seg)
		LoopApply(yLoop, x, pairs, seg)
		GatherBMMApply(yGB, x, pairs, seg)
		DenseReference(yRef, x, pairs, seg)

		const tol = 1e-3
		return tensor.Equal(ySGMV, yRef, tol) &&
			tensor.Equal(yLoop, yRef, tol) &&
			tensor.Equal(yGB, yRef, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkExpandComposition(t *testing.T) {
	// Two SGMV launches must equal the one-shot addon (§4's decomposition).
	rng := sim.NewRNG(22)
	seg := NewSegments(1, 4, 2)
	hIn, r, hOut := 8, 3, 10
	pairs := randomPairs(rng, seg.N(), hIn, r, hOut)
	x := tensor.Random(rng, seg.Total(), hIn, 1)

	v := tensor.New(seg.Total(), r)
	as := make([]*tensor.Matrix, seg.N())
	bs := make([]*tensor.Matrix, seg.N())
	for i, p := range pairs {
		as[i], bs[i] = p.A, p.B
	}
	Shrink(v, x, as, seg)
	yTwo := tensor.New(seg.Total(), hOut)
	Expand(yTwo, v, bs, seg)

	yOne := tensor.New(seg.Total(), hOut)
	Apply(yOne, x, pairs, seg)
	if !tensor.Equal(yTwo, yOne, 1e-4) {
		t.Fatal("shrink∘expand != Apply")
	}
}

func TestSegmentIsolation(t *testing.T) {
	// Rows of one segment must never be touched by another segment's
	// weights: zero out segment 1's weights and check segment 0 output
	// is unchanged.
	rng := sim.NewRNG(23)
	seg := NewSegments(2, 2)
	pairs := randomPairs(rng, 2, 6, 2, 6)
	x := tensor.Random(rng, 4, 6, 1)

	y1 := tensor.New(4, 6)
	Apply(y1, x, pairs, seg)

	zeroed := []Pair{pairs[0], {A: tensor.New(6, 2), B: tensor.New(2, 6)}}
	y2 := tensor.New(4, 6)
	Apply(y2, x, zeroed, seg)

	if !tensor.Equal(y1.RowSlice(0, 2), y2.RowSlice(0, 2), 0) {
		t.Fatal("segment 0 affected by segment 1's weights")
	}
	for row := 2; row < 4; row++ {
		for col := 0; col < 6; col++ {
			if y2.At(row, col) != 0 {
				t.Fatal("zero weights must produce zero addon")
			}
		}
	}
}

func TestApplyPanicsOnMismatch(t *testing.T) {
	rng := sim.NewRNG(24)
	seg := NewSegments(2, 2)
	pairs := randomPairs(rng, 1, 4, 2, 4) // too few pairs
	x := tensor.Random(rng, 4, 4, 1)
	y := tensor.New(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("pair/segment mismatch should panic")
		}
	}()
	Apply(y, x, pairs, seg)
}

func TestApplyMixedRankPanics(t *testing.T) {
	rng := sim.NewRNG(25)
	seg := NewSegments(1, 1)
	pairs := []Pair{
		{A: tensor.Random(rng, 4, 2, 1), B: tensor.Random(rng, 2, 4, 1)},
		{A: tensor.Random(rng, 4, 3, 1), B: tensor.Random(rng, 3, 4, 1)},
	}
	x := tensor.Random(rng, 2, 4, 1)
	y := tensor.New(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("mixed ranks should panic")
		}
	}()
	Apply(y, x, pairs, seg)
}

func TestApplyEmptyBatch(t *testing.T) {
	var seg Segments
	Apply(tensor.New(0, 4), tensor.New(0, 4), nil, seg) // must not panic
}
