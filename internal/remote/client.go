package remote

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"punica/internal/core"
	"punica/internal/lora"
)

// idemHeader carries the idempotency key on resubmittable calls.
const idemHeader = "X-Idempotency-Key"

// RetryPolicy configures the client's retry loop. The zero value (and
// any MaxAttempts <= 1) disables retrying — one attempt, byte-identical
// to the pre-retry client.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per call (1 = no retry).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// Jitter is the fraction of the backoff randomized around the
	// midpoint (default 0.2). Draws are a pure hash of the client nonce
	// and a retry counter — deterministic under a pinned BootEntropy.
	Jitter float64
}

// Enabled reports whether the policy ever retries.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// Client drives one remote runner over HTTP and satisfies sched.Worker,
// so the unmodified §5.1 scheduler routes across machines. Transport
// failures degrade safely: CanAdmit answers false, so a dead runner
// simply attracts no work while it is unreachable. With a RetryPolicy
// set, transient failures (transport errors, 429, 502/503) are retried
// with exponential backoff honoring Retry-After; mutating calls carry
// idempotency keys so a dropped *response* cannot double-apply work.
// With a Breaker attached, transport outcomes feed it and an open
// breaker zeroes Snapshot so the scheduler places nothing here.
type Client struct {
	base      string
	transport http.RoundTripper // nil = http.DefaultTransport
	http      *http.Client
	stream    *http.Client // no overall timeout: token streams are long-lived

	retry   RetryPolicy
	breaker *Breaker

	// idemBase/idemNonce derive per-call idempotency keys; retries is
	// the count of re-attempts (not first attempts) issued.
	idemBase   string
	idemNonce  uint64
	idemSeq    atomic.Uint64
	backoffSeq atomic.Uint64
	retries    atomic.Int64
	sleep      func(time.Duration) // injectable for tests

	mu       sync.Mutex
	maxBatch int
	lastErr  error

	// Conditional-GET cache for /runner/state: stateETag is the last
	// ETag seen (the runner's state version) and cachedState the body it
	// tagged. FetchState revalidates with If-None-Match; a 304 reuses
	// cachedState without decoding a byte.
	stateETag   string
	cachedState State
	haveState   bool
}

// NewClient connects to a runner's base URL (e.g. "http://gpu-host:9000").
func NewClient(base string) *Client {
	return NewClientWithTransport(base, nil)
}

// NewClientWithTransport is NewClient over an explicit transport — the
// seam the net-fault injector wraps. Every path the client opens
// (calls, probes, drains, token streams) shares it, so an injected
// partition cuts the whole link, exactly like a real one.
func NewClientWithTransport(base string, rt http.RoundTripper) *Client {
	var nonce [8]byte
	BootEntropy(nonce[:])
	return &Client{
		base:      base,
		transport: rt,
		http:      &http.Client{Timeout: 10 * time.Second, Transport: rt},
		stream:    &http.Client{Transport: rt},
		idemBase:  hex.EncodeToString(nonce[:]),
		idemNonce: binary.LittleEndian.Uint64(nonce[:]),
		sleep:     time.Sleep,
	}
}

// SetRetry installs the retry policy (call before use; not synchronized
// against in-flight calls).
func (c *Client) SetRetry(p RetryPolicy) { c.retry = p }

// SetBreaker attaches a circuit breaker fed by this client's transport
// outcomes (call before use).
func (c *Client) SetBreaker(b *Breaker) { c.breaker = b }

// Breaker returns the attached breaker (nil when none).
func (c *Client) Breaker() *Breaker { return c.breaker }

// Retries counts re-attempts issued by the retry loop.
func (c *Client) Retries() int64 { return c.retries.Load() }

// LastErr returns the most recent transport error (nil when healthy).
func (c *Client) LastErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

func (c *Client) setErr(err error) {
	c.mu.Lock()
	c.lastErr = err
	c.mu.Unlock()
}

// noteTransport feeds the breaker with a transport-level outcome. Only
// connection-level failures count against the link: an HTTP error
// status arrived over a working link.
func (c *Client) noteTransport(err error) {
	if c.breaker == nil {
		return
	}
	if err != nil {
		c.breaker.Failure()
	} else {
		c.breaker.Success()
	}
}

// nextIdemKey mints one idempotency key per logical call; the key is
// shared by every retry attempt of that call, which is what lets the
// runner deduplicate a resubmission after a dropped response.
func (c *Client) nextIdemKey() string {
	return c.idemBase + "-" + strconv.FormatUint(c.idemSeq.Add(1), 36)
}

func (c *Client) postJSON(path string, in, out any) error {
	return c.call(path, in, out, "")
}

// postJSONIdem is postJSON with an idempotency key: for calls that
// mutate runner state and may be resubmitted by the retry loop.
func (c *Client) postJSONIdem(path string, in, out any) error {
	return c.call(path, in, out, c.nextIdemKey())
}

type callResult struct {
	err        error
	retryable  bool
	retryAfter time.Duration
}

func (c *Client) call(path string, in, out any, idemKey string) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var hint time.Duration
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			c.sleep(c.backoff(attempt-1, hint))
		}
		res := c.doOnce(path, body, out, idemKey)
		if res.err == nil {
			return nil
		}
		lastErr = res.err
		if !res.retryable {
			return res.err
		}
		hint = res.retryAfter
	}
	return lastErr
}

func (c *Client) doOnce(path string, body []byte, out any, idemKey string) callResult {
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return callResult{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set(idemHeader, idemKey)
	}
	resp, err := c.http.Do(req)
	c.noteTransport(err)
	if err != nil {
		c.setErr(err)
		return callResult{err: err, retryable: true}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("remote: %s -> %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
		// Re-materialise adapter-store backpressure so errors.Is works
		// across the wire and the scheduler requeues. Never blind-retried
		// here: requeue-and-replace is the scheduler's recovery, and a
		// tight client retry loop would just hammer a full store.
		if resp.StatusCode == http.StatusServiceUnavailable &&
			bytes.Contains(msg, []byte(lora.ErrStoreFull.Error())) {
			err = fmt.Errorf("remote: %s: %w", path, lora.ErrStoreFull)
			c.setErr(err)
			return callResult{err: err}
		}
		c.setErr(err)
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode == http.StatusBadGateway
		return callResult{err: err, retryable: retryable, retryAfter: parseRetryAfter(resp)}
	}
	c.setErr(nil)
	if out == nil {
		return callResult{}
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return callResult{err: err}
	}
	return callResult{}
}

// parseRetryAfter reads a delta-seconds Retry-After, capped at 30s so a
// confused server cannot park the client.
func parseRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// backoff returns the wait before retry number retryIdx (1-based). A
// server-provided Retry-After hint wins outright; otherwise exponential
// from BaseDelay capped at MaxDelay, with deterministic jitter.
func (c *Client) backoff(retryIdx int, hint time.Duration) time.Duration {
	if hint > 0 {
		return hint
	}
	base := c.retry.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := c.retry.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	d := base
	for i := 1; i < retryIdx && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	jf := c.retry.Jitter
	if jf <= 0 {
		jf = 0.2
	}
	if jf > 1 {
		jf = 1
	}
	u := float64(faultMix64(c.idemNonce^c.backoffSeq.Add(1))>>11) / (1 << 53)
	return d + time.Duration(float64(d)*jf*(u-0.5))
}

// Probe checks the runner's health with a bounded deadline: one GET
// /runner/state that must answer within timeout. The frontend's health
// monitor calls this instead of FetchState so a hung (not just dead)
// runner cannot stall the probe loop for the transport client's full
// 10 s timeout. It deliberately probes the scheduling endpoint rather
// than the cheaper /healthz: a runner that can serve its snapshot is
// provably schedulable, which is the liveness the scheduler cares
// about. The per-call client shares the link transport's connection
// pool; only the deadline is per-probe. Probe outcomes feed the
// breaker: in half-open they are the traffic that re-closes it.
func (c *Client) Probe(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = time.Second
	}
	probe := &http.Client{Timeout: timeout, Transport: c.transport}
	resp, err := probe.Get(c.base + "/runner/state")
	c.noteTransport(err)
	if err != nil {
		c.setErr(err)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("remote: probe -> %d", resp.StatusCode)
		c.setErr(err)
		return err
	}
	c.setErr(nil)
	return nil
}

// Crash implements sched.Crasher over the wire: POST /runner/drain
// salvages the runner's working set for re-dispatch. A dead runner
// returns nothing — the frontend then recovers from its own placement
// records. The call uses a short deadline: it runs while a runner is
// being declared failed, so it must not hang on a wedged machine.
func (c *Client) Crash(_ time.Duration) ([]*core.Request, int) {
	drain := &http.Client{Timeout: 2 * time.Second, Transport: c.transport}
	resp, err := drain.Post(c.base+"/runner/drain", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		c.setErr(err)
		return nil, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0
	}
	var reply DrainReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, 0
	}
	lost := make([]*core.Request, 0, len(reply.Requests))
	for _, ws := range reply.Requests {
		lost = append(lost, ws.toCore())
	}
	return lost, reply.LostKVTokens
}

// StreamDo issues a long-lived request (the token stream proxy) over
// the link's transport — unlike the call client it has no overall
// timeout, but it still sees injected faults and feeds the breaker.
func (c *Client) StreamDo(req *http.Request) (*http.Response, error) {
	resp, err := c.stream.Do(req)
	c.noteTransport(err)
	return resp, err
}

// FetchState retrieves the runner's scheduling snapshot, revalidating
// the cached copy with If-None-Match: when the runner's state version
// is unchanged it answers 304 and the cached State is returned without
// decoding a response body.
func (c *Client) FetchState() (State, error) {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodGet, c.base+"/runner/state", nil)
		if err != nil {
			return State{}, err
		}
		c.mu.Lock()
		if c.haveState && c.stateETag != "" {
			req.Header.Set("If-None-Match", c.stateETag)
		}
		c.mu.Unlock()
		resp, err := c.http.Do(req)
		c.noteTransport(err)
		if err != nil {
			c.setErr(err)
			return State{}, err
		}
		if resp.StatusCode == http.StatusNotModified {
			resp.Body.Close()
			c.mu.Lock()
			st, ok := c.cachedState, c.haveState
			if !ok {
				c.stateETag = ""
			}
			c.mu.Unlock()
			if ok {
				c.setErr(nil)
				return st, nil
			}
			// 304 without a cached body should not happen (we only send
			// If-None-Match when we hold one). Retry once without the
			// validator; a server that keeps answering 304 to an
			// unconditional GET is broken — surface it, don't recurse.
			if attempt == 0 {
				continue
			}
			err := fmt.Errorf("remote: /runner/state answered 304 to an unconditional GET")
			c.setErr(err)
			return State{}, err
		}
		var st State
		decodeErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if decodeErr != nil {
			c.setErr(decodeErr)
			return State{}, decodeErr
		}
		c.setErr(nil)
		c.mu.Lock()
		c.maxBatch = st.MaxBatch
		c.stateETag = resp.Header.Get("ETag")
		c.cachedState = st
		c.haveState = true
		c.mu.Unlock()
		return st, nil
	}
}

// Snapshot implements sched.Worker with a single GET /runner/state: the
// batched view that replaces per-decision CanAdmit + WorkingSet round
// trips. Transport failures — and an open circuit breaker — return the
// zero snapshot, whose CanAdmit is always false: a dead or quarantined
// runner simply attracts no work.
func (c *Client) Snapshot() core.Snapshot {
	if c.breaker != nil && !c.breaker.PlacementAllowed() {
		return core.Snapshot{}
	}
	st, err := c.FetchState()
	if err != nil {
		return core.Snapshot{}
	}
	return st.toSnapshot()
}

// CanAdmit asks the runner directly (one round-trip); the scheduler
// evaluates admission from Snapshot instead, but the endpoint stays for
// diagnostics and external pollers.
func (c *Client) CanAdmit(r *core.Request) bool {
	var reply AdmitReply
	err := c.postJSON("/runner/can_admit", AdmitQuery{
		PromptLen: r.PromptLen,
		OutputLen: r.OutputLen,
		Generated: r.Generated,
	}, &reply)
	return err == nil && reply.CanAdmit
}

// Enqueue implements sched.Worker. The call carries an idempotency key:
// a retry after a dropped response must not double-admit the request.
func (c *Client) Enqueue(r *core.Request, _ time.Duration) error {
	return c.postJSONIdem("/runner/enqueue", fromCore(r), nil)
}

// WorkingSet implements sched.Worker.
func (c *Client) WorkingSet() int {
	st, err := c.FetchState()
	if err != nil {
		return 0
	}
	return st.WorkingSet
}

// MaxBatch implements sched.Worker.
func (c *Client) MaxBatch() int {
	c.mu.Lock()
	mb := c.maxBatch
	c.mu.Unlock()
	if mb > 0 {
		return mb
	}
	st, err := c.FetchState()
	if err != nil {
		return core.DefaultMaxBatch
	}
	return st.MaxBatch
}

// Cancel implements sched.Worker.
func (c *Client) Cancel(id int64, _ time.Duration) *core.Request {
	var reply CancelReply
	if err := c.postJSON("/runner/cancel", CancelRequest{ID: id}, &reply); err != nil {
		return nil
	}
	if !reply.Found || reply.Request == nil {
		return nil
	}
	return reply.Request.toCore()
}

// EvictNewest implements sched.Worker.
func (c *Client) EvictNewest(_ time.Duration) *core.Request {
	var reply CancelReply
	if err := c.postJSON("/runner/evict", struct{}{}, &reply); err != nil {
		return nil
	}
	if !reply.Found || reply.Request == nil {
		return nil
	}
	return reply.Request.toCore()
}

// StreamURL returns the NDJSON token stream endpoint for a request.
func (c *Client) StreamURL(id int64) string {
	return fmt.Sprintf("%s/runner/stream?id=%d", c.base, id)
}

// ExportKV implements sched.KVMover over the wire: POST
// /runner/kv/export detaches the request from the remote runner and
// returns its migration handle.
func (c *Client) ExportKV(id int64, _ time.Duration) (core.KVHandle, error) {
	var reply KVHandleWire
	if err := c.postJSON("/runner/kv/export", ExportRequest{ID: id}, &reply); err != nil {
		return core.KVHandle{}, err
	}
	return reply.toCore(), nil
}

// ImportKV implements sched.KVMover over the wire: POST /runner/kv
// lands the handle on the remote runner, which charges the sized link
// transfer before the request joins a batch. Adapter-store backpressure
// surfaces as lora.ErrStoreFull (via the 503 mapping) so the router
// tries the next decode candidate. Idempotent: a retried import after a
// dropped response must not double-charge the transfer.
func (c *Client) ImportKV(h core.KVHandle, _ time.Duration) error {
	return c.postJSONIdem("/runner/kv", handleFromCore(h), nil)
}

// Migratable implements the router's migratable-listing hook with one
// GET /runner/state: the ids of prefill-complete requests awaiting
// handoff. A transport failure reports none — a dead prefill runner's
// requests recover through the health-check path instead.
func (c *Client) Migratable() []int64 {
	st, err := c.FetchState()
	if err != nil {
		return nil
	}
	return st.Migratable
}

// PrefetchAdapter implements sched.Prefetcher over the wire (POST
// /runner/prefetch): warm the adapter on the intended decode target
// while the prefill runs. Best-effort; transport failures report false.
// Idempotent so a resubmitted hint stays one hint.
func (c *Client) PrefetchAdapter(id lora.ModelID, _ time.Duration) bool {
	var reply PrefetchReply
	if err := c.postJSONIdem("/runner/prefetch", PrefetchRequest{Model: int64(id)}, &reply); err != nil {
		return false
	}
	return reply.Accepted
}
