package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"punica/internal/core"
	"punica/internal/lora"
)

// Client drives one remote runner over HTTP and satisfies sched.Worker,
// so the unmodified §5.1 scheduler routes across machines. Transport
// failures degrade safely: CanAdmit answers false, so a dead runner
// simply attracts no work while it is unreachable.
type Client struct {
	base string
	http *http.Client

	mu       sync.Mutex
	maxBatch int
	lastErr  error

	// Conditional-GET cache for /runner/state: stateETag is the last
	// ETag seen (the runner's state version) and cachedState the body it
	// tagged. FetchState revalidates with If-None-Match; a 304 reuses
	// cachedState without decoding a byte.
	stateETag   string
	cachedState State
	haveState   bool
}

// NewClient connects to a runner's base URL (e.g. "http://gpu-host:9000").
func NewClient(base string) *Client {
	return &Client{
		base: base,
		http: &http.Client{Timeout: 10 * time.Second},
	}
}

// LastErr returns the most recent transport error (nil when healthy).
func (c *Client) LastErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

func (c *Client) setErr(err error) {
	c.mu.Lock()
	c.lastErr = err
	c.mu.Unlock()
}

func (c *Client) postJSON(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		c.setErr(err)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("remote: %s -> %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
		// Re-materialise adapter-store backpressure so errors.Is works
		// across the wire and the scheduler requeues.
		if resp.StatusCode == http.StatusServiceUnavailable &&
			bytes.Contains(msg, []byte(lora.ErrStoreFull.Error())) {
			err = fmt.Errorf("remote: %s: %w", path, lora.ErrStoreFull)
		}
		c.setErr(err)
		return err
	}
	c.setErr(nil)
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Probe checks the runner's health with a bounded deadline: one GET
// /runner/state that must answer within timeout. The frontend's health
// monitor calls this instead of FetchState so a hung (not just dead)
// runner cannot stall the probe loop for the transport client's full
// 10 s timeout. It deliberately probes the scheduling endpoint rather
// than the cheaper /healthz: a runner that can serve its snapshot is
// provably schedulable, which is the liveness the scheduler cares
// about. The per-call client shares http.DefaultTransport's connection
// pool; only the deadline is per-probe.
func (c *Client) Probe(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = time.Second
	}
	probe := &http.Client{Timeout: timeout}
	resp, err := probe.Get(c.base + "/runner/state")
	if err != nil {
		c.setErr(err)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("remote: probe -> %d", resp.StatusCode)
		c.setErr(err)
		return err
	}
	c.setErr(nil)
	return nil
}

// Crash implements sched.Crasher over the wire: POST /runner/drain
// salvages the runner's working set for re-dispatch. A dead runner
// returns nothing — the frontend then recovers from its own placement
// records. The call uses a short deadline: it runs while a runner is
// being declared failed, so it must not hang on a wedged machine.
func (c *Client) Crash(_ time.Duration) ([]*core.Request, int) {
	drain := &http.Client{Timeout: 2 * time.Second}
	resp, err := drain.Post(c.base+"/runner/drain", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		c.setErr(err)
		return nil, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0
	}
	var reply DrainReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, 0
	}
	lost := make([]*core.Request, 0, len(reply.Requests))
	for _, ws := range reply.Requests {
		lost = append(lost, ws.toCore())
	}
	return lost, reply.LostKVTokens
}

// FetchState retrieves the runner's scheduling snapshot, revalidating
// the cached copy with If-None-Match: when the runner's state version
// is unchanged it answers 304 and the cached State is returned without
// decoding a response body.
func (c *Client) FetchState() (State, error) {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodGet, c.base+"/runner/state", nil)
		if err != nil {
			return State{}, err
		}
		c.mu.Lock()
		if c.haveState && c.stateETag != "" {
			req.Header.Set("If-None-Match", c.stateETag)
		}
		c.mu.Unlock()
		resp, err := c.http.Do(req)
		if err != nil {
			c.setErr(err)
			return State{}, err
		}
		if resp.StatusCode == http.StatusNotModified {
			resp.Body.Close()
			c.mu.Lock()
			st, ok := c.cachedState, c.haveState
			if !ok {
				c.stateETag = ""
			}
			c.mu.Unlock()
			if ok {
				c.setErr(nil)
				return st, nil
			}
			// 304 without a cached body should not happen (we only send
			// If-None-Match when we hold one). Retry once without the
			// validator; a server that keeps answering 304 to an
			// unconditional GET is broken — surface it, don't recurse.
			if attempt == 0 {
				continue
			}
			err := fmt.Errorf("remote: /runner/state answered 304 to an unconditional GET")
			c.setErr(err)
			return State{}, err
		}
		var st State
		decodeErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if decodeErr != nil {
			c.setErr(decodeErr)
			return State{}, decodeErr
		}
		c.setErr(nil)
		c.mu.Lock()
		c.maxBatch = st.MaxBatch
		c.stateETag = resp.Header.Get("ETag")
		c.cachedState = st
		c.haveState = true
		c.mu.Unlock()
		return st, nil
	}
}

// Snapshot implements sched.Worker with a single GET /runner/state: the
// batched view that replaces per-decision CanAdmit + WorkingSet round
// trips. Transport failures return the zero snapshot, whose CanAdmit is
// always false — a dead runner simply attracts no work.
func (c *Client) Snapshot() core.Snapshot {
	st, err := c.FetchState()
	if err != nil {
		return core.Snapshot{}
	}
	return st.toSnapshot()
}

// CanAdmit asks the runner directly (one round-trip); the scheduler
// evaluates admission from Snapshot instead, but the endpoint stays for
// diagnostics and external pollers.
func (c *Client) CanAdmit(r *core.Request) bool {
	var reply AdmitReply
	err := c.postJSON("/runner/can_admit", AdmitQuery{
		PromptLen: r.PromptLen,
		OutputLen: r.OutputLen,
		Generated: r.Generated,
	}, &reply)
	return err == nil && reply.CanAdmit
}

// Enqueue implements sched.Worker.
func (c *Client) Enqueue(r *core.Request, _ time.Duration) error {
	return c.postJSON("/runner/enqueue", fromCore(r), nil)
}

// WorkingSet implements sched.Worker.
func (c *Client) WorkingSet() int {
	st, err := c.FetchState()
	if err != nil {
		return 0
	}
	return st.WorkingSet
}

// MaxBatch implements sched.Worker.
func (c *Client) MaxBatch() int {
	c.mu.Lock()
	mb := c.maxBatch
	c.mu.Unlock()
	if mb > 0 {
		return mb
	}
	st, err := c.FetchState()
	if err != nil {
		return core.DefaultMaxBatch
	}
	return st.MaxBatch
}

// Cancel implements sched.Worker.
func (c *Client) Cancel(id int64, _ time.Duration) *core.Request {
	var reply CancelReply
	if err := c.postJSON("/runner/cancel", CancelRequest{ID: id}, &reply); err != nil {
		return nil
	}
	if !reply.Found || reply.Request == nil {
		return nil
	}
	return reply.Request.toCore()
}

// EvictNewest implements sched.Worker.
func (c *Client) EvictNewest(_ time.Duration) *core.Request {
	var reply CancelReply
	if err := c.postJSON("/runner/evict", struct{}{}, &reply); err != nil {
		return nil
	}
	if !reply.Found || reply.Request == nil {
		return nil
	}
	return reply.Request.toCore()
}

// StreamURL returns the NDJSON token stream endpoint for a request.
func (c *Client) StreamURL(id int64) string {
	return fmt.Sprintf("%s/runner/stream?id=%d", c.base, id)
}

// ExportKV implements sched.KVMover over the wire: POST
// /runner/kv/export detaches the request from the remote runner and
// returns its migration handle.
func (c *Client) ExportKV(id int64, _ time.Duration) (core.KVHandle, error) {
	var reply KVHandleWire
	if err := c.postJSON("/runner/kv/export", ExportRequest{ID: id}, &reply); err != nil {
		return core.KVHandle{}, err
	}
	return reply.toCore(), nil
}

// ImportKV implements sched.KVMover over the wire: POST /runner/kv
// lands the handle on the remote runner, which charges the sized link
// transfer before the request joins a batch. Adapter-store backpressure
// surfaces as lora.ErrStoreFull (via postJSON's 503 mapping) so the
// router tries the next decode candidate.
func (c *Client) ImportKV(h core.KVHandle, _ time.Duration) error {
	return c.postJSON("/runner/kv", handleFromCore(h), nil)
}

// Migratable implements the router's migratable-listing hook with one
// GET /runner/state: the ids of prefill-complete requests awaiting
// handoff. A transport failure reports none — a dead prefill runner's
// requests recover through the health-check path instead.
func (c *Client) Migratable() []int64 {
	st, err := c.FetchState()
	if err != nil {
		return nil
	}
	return st.Migratable
}

// PrefetchAdapter implements sched.Prefetcher over the wire (POST
// /runner/prefetch): warm the adapter on the intended decode target
// while the prefill runs. Best-effort; transport failures report false.
func (c *Client) PrefetchAdapter(id lora.ModelID, _ time.Duration) bool {
	var reply PrefetchReply
	if err := c.postJSON("/runner/prefetch", PrefetchRequest{Model: int64(id)}, &reply); err != nil {
		return false
	}
	return reply.Accepted
}
