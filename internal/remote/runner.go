package remote

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"punica/internal/core"
	"punica/internal/lora"
)

// Runner hosts one GPU engine behind the runner HTTP API. It paces
// simulated invocation latencies in wall time (Speedup 1 = realistic)
// and streams tokens per request.
type Runner struct {
	uuid    string
	speedup float64
	// bootID is a per-process nonce mixed into the /runner/state ETag:
	// a restarted runner's engine recounts versions from zero, and
	// without the nonce a client that cached "v42" from the previous
	// incarnation would get a false 304 when the new engine reaches 42.
	bootID string

	// idem replays responses for retried idempotent calls (enqueue, KV
	// import, prefetch) so a resubmission after a dropped response does
	// not double-apply.
	idem *idemTable

	mu      sync.Mutex
	cond    *sync.Cond
	eng     *core.Engine
	streams map[int64]chan core.Token
	// streamDone marks channels already closed (finished or exported)
	// but kept resident so a late or lagging reader can still drain the
	// buffered tokens; guards against double close.
	streamDone map[int64]bool
	start      time.Time
	closed     bool
	wg         sync.WaitGroup
	// lastFinishAt/finishGap track the EWMA inter-finish gap (sim
	// seconds): the drain-rate estimate behind Retry-After on 503s.
	lastFinishAt time.Duration
	finishGap    float64
}

// BootEntropy fills b with the randomness behind the per-process boot
// nonce. The default draws from crypto/rand with a wall-clock fallback
// — uniqueness across restarts is all the nonce provides, not secrecy.
// It is a package variable so tests can pin the nonce and assert exact
// /runner/state ETag values across a simulated restart.
var BootEntropy func(b []byte) = defaultBootEntropy

func defaultBootEntropy(b []byte) {
	if _, err := rand.Read(b); err != nil {
		binary.LittleEndian.PutUint64(b, uint64(time.Now().UnixNano()))
	}
}

// NewRunner starts a runner around an engine built from cfg.
func NewRunner(uuid string, cfg core.Config, speedup float64) *Runner {
	if speedup <= 0 {
		speedup = 1
	}
	var nonce [8]byte
	BootEntropy(nonce[:])
	r := &Runner{
		uuid:       uuid,
		speedup:    speedup,
		bootID:     hex.EncodeToString(nonce[:]),
		idem:       newIdemTable(idemTableCapacity),
		streams:    make(map[int64]chan core.Token),
		streamDone: make(map[int64]bool),
		start:      time.Now(),
	}
	r.cond = sync.NewCond(&r.mu)
	cfg.OnToken = r.onToken
	cfg.OnFinish = r.onFinish
	r.eng = core.NewEngine(cfg)
	r.wg.Add(1)
	go r.drive()
	return r
}

// UUID returns the runner's identity.
func (r *Runner) UUID() string { return r.uuid }

// Close stops the driver and closes open streams.
func (r *Runner) Close() {
	r.mu.Lock()
	r.closed = true
	for id := range r.streams {
		r.closeStream(id)
		delete(r.streams, id)
		delete(r.streamDone, id)
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	r.wg.Wait()
}

// closeStream closes a stream channel exactly once, keeping the entry
// resident so buffered tokens stay drainable. Callers hold r.mu.
func (r *Runner) closeStream(id int64) {
	if ch, ok := r.streams[id]; ok && !r.streamDone[id] {
		close(ch)
		r.streamDone[id] = true
	}
}

func (r *Runner) simNow() time.Duration {
	return time.Duration(float64(time.Since(r.start)) * r.speedup)
}

func (r *Runner) onToken(tok core.Token) {
	if ch, ok := r.streams[tok.RequestID]; ok {
		select {
		case ch <- tok:
		default:
		}
	}
}

// onFinish closes the stream but keeps it resident: a frontend that
// connects after a fast generation completed must still be able to drain
// the buffered tokens. handleStream removes the entry once served. It
// also folds the inter-finish gap into the drain-rate EWMA that prices
// Retry-After on 503 refusals. Runs with r.mu held (engine callback).
func (r *Runner) onFinish(req *core.Request) {
	r.closeStream(req.ID)
	now := r.simNow()
	if r.lastFinishAt > 0 {
		if gap := (now - r.lastFinishAt).Seconds(); gap > 0 {
			const alpha = 0.2
			if r.finishGap == 0 {
				r.finishGap = gap
			} else {
				r.finishGap = (1-alpha)*r.finishGap + alpha*gap
			}
		}
	}
	r.lastFinishAt = now
}

// retryAfterSecs converts the EWMA inter-finish gap to wall seconds —
// "one batch slot should free up in about this long" — clamped to
// [1, 30]. Callers hold r.mu.
func (r *Runner) retryAfterSecs() int {
	if r.finishGap <= 0 {
		return 1
	}
	secs := int(math.Ceil(r.finishGap / r.speedup))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// drive runs invocations back-to-back, pacing simulated latency into
// wall time. Requests evicted under memory pressure are re-enqueued
// locally (the scheduler can additionally migrate via /runner/evict).
func (r *Runner) drive() {
	defer r.wg.Done()
	r.mu.Lock()
	defer r.mu.Unlock()
	for !r.closed {
		if !r.eng.Busy() {
			r.cond.Wait()
			continue
		}
		now := r.simNow()
		res := r.eng.Step(now)
		for _, ev := range res.Evicted {
			if err := r.eng.Enqueue(ev, now); err != nil {
				r.dropStream(ev.ID)
			}
		}
		if res.Idle {
			wake, ok := r.eng.EarliestPendingReady()
			if !ok {
				r.cond.Wait()
				continue
			}
			r.sleepLocked(r.wallDelay(wake - now))
			continue
		}
		r.sleepLocked(r.wallDelay(res.Latency))
	}
}

func (r *Runner) wallDelay(d time.Duration) time.Duration {
	w := time.Duration(float64(d) / r.speedup)
	if w < 0 {
		return 0
	}
	return w
}

func (r *Runner) sleepLocked(d time.Duration) {
	r.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	r.mu.Lock()
}

func (r *Runner) dropStream(id int64) {
	r.closeStream(id)
	delete(r.streams, id)
	delete(r.streamDone, id)
}

// Handler returns the runner HTTP API consumed by remote.Client and the
// frontend's stream proxy.
func (r *Runner) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runner/enqueue", r.idem.wrap(r.handleEnqueue))
	mux.HandleFunc("POST /runner/can_admit", r.handleCanAdmit)
	mux.HandleFunc("POST /runner/cancel", r.handleCancel)
	mux.HandleFunc("POST /runner/evict", r.handleEvict)
	mux.HandleFunc("POST /runner/drain", r.handleDrain)
	mux.HandleFunc("POST /runner/kv", r.idem.wrap(r.handleKVImport))
	mux.HandleFunc("POST /runner/kv/export", r.handleKVExport)
	mux.HandleFunc("POST /runner/prefetch", r.idem.wrap(r.handlePrefetch))
	mux.HandleFunc("GET /runner/state", r.handleState)
	mux.HandleFunc("GET /runner/stream", r.handleStream)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (r *Runner) handleEnqueue(w http.ResponseWriter, req *http.Request) {
	var ws RequestState
	if err := json.NewDecoder(req.Body).Decode(&ws); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		http.Error(w, "runner closed", http.StatusServiceUnavailable)
		return
	}
	cr := ws.toCore()
	if _, ok := r.streams[cr.ID]; !ok {
		r.streams[cr.ID] = make(chan core.Token, cr.OutputLen+1)
	}
	if err := r.eng.Enqueue(cr, r.simNow()); err != nil {
		r.dropStream(cr.ID)
		// Adapter-store backpressure is transient: report 503 so the
		// remote scheduler requeues instead of failing the request, with
		// a drain-rate-derived Retry-After for clients that back off.
		status := http.StatusConflict
		if errors.Is(err, lora.ErrStoreFull) {
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", strconv.Itoa(r.retryAfterSecs()))
		}
		http.Error(w, err.Error(), status)
		return
	}
	r.cond.Broadcast()
	w.WriteHeader(http.StatusOK)
}

func (r *Runner) handleCanAdmit(w http.ResponseWriter, req *http.Request) {
	var q AdmitQuery
	if err := json.NewDecoder(req.Body).Decode(&q); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.mu.Lock()
	can := r.eng.CanAdmit(&core.Request{
		PromptLen: q.PromptLen,
		OutputLen: q.OutputLen,
		Generated: q.Generated,
	})
	r.mu.Unlock()
	writeJSON(w, AdmitReply{CanAdmit: can})
}

func (r *Runner) handleCancel(w http.ResponseWriter, req *http.Request) {
	var c CancelRequest
	if err := json.NewDecoder(req.Body).Decode(&c); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.mu.Lock()
	cr := r.eng.Cancel(c.ID, r.simNow())
	r.dropStream(c.ID)
	r.mu.Unlock()
	reply := CancelReply{Found: cr != nil}
	if cr != nil {
		ws := fromCore(cr)
		reply.Request = &ws
	}
	writeJSON(w, reply)
}

func (r *Runner) handleEvict(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	cr := r.eng.EvictNewest(r.simNow())
	if cr != nil {
		r.dropStream(cr.ID)
	}
	r.mu.Unlock()
	reply := CancelReply{Found: cr != nil}
	if cr != nil {
		ws := fromCore(cr)
		reply.Request = &ws
	}
	writeJSON(w, reply)
}

// handleDrain force-drains the engine: every resident request is
// returned for re-dispatch elsewhere (KvCache and adapter pins release
// with exact accounting) and its local token stream closes. The
// frontend uses it both for planned decommission and to salvage state
// from a runner it is about to declare failed.
func (r *Runner) handleDrain(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	lost, lostKV := r.eng.Crash(r.simNow())
	for _, req := range lost {
		r.dropStream(req.ID)
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	reply := DrainReply{LostKVTokens: lostKV}
	for _, req := range lost {
		reply.Requests = append(reply.Requests, fromCore(req))
	}
	writeJSON(w, reply)
}

// handleState serves the runner's scheduling snapshot with version
// validation: the response carries ETag "<boot-nonce>-v<version>" (the
// engine's mutation counter under this process's boot nonce), and a
// request presenting the current tag via If-None-Match gets 304 Not
// Modified — no JSON assembly, no adapter list on the wire. Remote
// fleets thereby get the same win as the in-process scheduler's
// version-cached snapshots.
func (r *Runner) handleState(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	etag := fmt.Sprintf("%q", r.bootID+"-v"+strconv.FormatUint(r.eng.StateVersion(), 10))
	if req.Header.Get("If-None-Match") == etag {
		r.mu.Unlock()
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	st := stateOf(r.uuid, r.eng.Snapshot(), r.eng.Stats(), r.eng.Migratable(), r.eng.Tiers())
	r.mu.Unlock()
	w.Header().Set("ETag", etag)
	writeJSON(w, st)
}

// handleKVExport detaches a prefilled request as a migration handle
// (the wire form of Engine.ExportKV). The request's local token stream
// closes but stays readable: a frontend proxy that lags behind drains
// the buffered tokens, hits EOF, and re-attaches to the request's new
// owner with index dedup — no token is lost or duplicated across the
// handoff.
func (r *Runner) handleKVExport(w http.ResponseWriter, req *http.Request) {
	var er ExportRequest
	if err := json.NewDecoder(req.Body).Decode(&er); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.mu.Lock()
	h, err := r.eng.ExportKV(er.ID, r.simNow())
	if err == nil {
		// Close-but-keep, like onFinish: buffered tokens stay drainable.
		r.closeStream(er.ID)
	}
	r.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, handleFromCore(h))
}

// handleKVImport lands a migration handle (the wire form of
// Engine.ImportKV): adapter pinned, pages allocated page-exactly, and
// the request batch-eligible once the sized link transfer elapses. A
// fresh token stream is registered so the frontend can re-attach.
func (r *Runner) handleKVImport(w http.ResponseWriter, req *http.Request) {
	var wireHandle KVHandleWire
	if err := json.NewDecoder(req.Body).Decode(&wireHandle); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		http.Error(w, "runner closed", http.StatusServiceUnavailable)
		return
	}
	h := wireHandle.toCore()
	id := h.Request.ID
	if _, ok := r.streams[id]; !ok || r.streamDone[id] {
		// Fresh channel — also when a previous incarnation (an export
		// bounced back to this runner) left a closed one behind.
		r.streams[id] = make(chan core.Token, h.Request.OutputLen+1)
		delete(r.streamDone, id)
	}
	if err := r.eng.ImportKV(h, r.simNow()); err != nil {
		r.dropStream(id)
		status := http.StatusConflict
		if errors.Is(err, lora.ErrStoreFull) {
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", strconv.Itoa(r.retryAfterSecs()))
		}
		http.Error(w, err.Error(), status)
		return
	}
	// Seed the stream with the tokens the exporting runner already
	// emitted (they are deterministic, so no payload crosses the wire):
	// a proxy that attaches only after the migration still sees every
	// index from zero, and one that already delivered the prefix drops
	// the duplicates by index.
	vocab := r.eng.Config().Model.VocabSize
	for i := 0; i < h.Request.Generated; i++ {
		r.onToken(core.Token{
			RequestID: id,
			Index:     i,
			TokenID:   core.TokenIDFor(id, i, vocab),
		})
	}
	r.cond.Broadcast()
	w.WriteHeader(http.StatusOK)
}

// handlePrefetch warms an adapter without pinning it — the decode-
// target hint issued while a request's prefill runs elsewhere.
func (r *Runner) handlePrefetch(w http.ResponseWriter, req *http.Request) {
	var pr PrefetchRequest
	if err := json.NewDecoder(req.Body).Decode(&pr); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.mu.Lock()
	ok := r.eng.PrefetchAdapter(lora.ModelID(pr.Model), r.simNow())
	r.mu.Unlock()
	writeJSON(w, PrefetchReply{Accepted: ok})
}

// handleStream pipes a request's tokens as NDJSON until EOS, cancel, or
// client disconnect.
func (r *Runner) handleStream(w http.ResponseWriter, req *http.Request) {
	id, err := strconv.ParseInt(req.URL.Query().Get("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad id", http.StatusBadRequest)
		return
	}
	r.mu.Lock()
	ch, ok := r.streams[id]
	r.mu.Unlock()
	if !ok {
		http.Error(w, "unknown request", http.StatusNotFound)
		return
	}
	defer func() {
		r.mu.Lock()
		if cur, still := r.streams[id]; still && cur == ch {
			delete(r.streams, id)
			delete(r.streamDone, id)
		}
		r.mu.Unlock()
	}()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case tok, open := <-ch:
			if !open {
				return
			}
			ev := TokenEvent{
				RequestID: tok.RequestID,
				Index:     tok.Index,
				TokenID:   tok.TokenID,
				EOS:       tok.EOS,
			}
			if err := enc.Encode(&ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-req.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
