package remote

import (
	"bytes"
	"net/http"
	"sync"
)

// idemTableCapacity bounds the runner's replay table. Keys are evicted
// FIFO; a retry arriving after its key fell out simply re-executes,
// which is the pre-idempotency behavior — the table narrows the
// double-apply window, correctness under normal retry spacing needs far
// fewer than this many in-flight keys.
const idemTableCapacity = 4096

// idemEntry records one idempotent call's response for replay. done
// closes when the first execution finishes; duplicates that arrive
// while it is still running wait instead of re-executing.
type idemEntry struct {
	done   chan struct{}
	status int
	header http.Header
	body   []byte
}

// idemTable deduplicates calls by X-Idempotency-Key: the first request
// with a key executes the handler against a recorder, every duplicate —
// concurrent or later — replays the recorded status and body
// byte-for-byte. This is what makes client resubmission after a dropped
// *response* safe: the runner-side effect happened once, and the retry
// just fetches the answer it never received.
type idemTable struct {
	mu      sync.Mutex
	entries map[string]*idemEntry
	order   []string
	limit   int
}

func newIdemTable(limit int) *idemTable {
	return &idemTable{entries: make(map[string]*idemEntry), limit: limit}
}

// wrap makes a handler idempotent. Requests without a key pass through
// untouched.
func (t *idemTable) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		key := req.Header.Get(idemHeader)
		if key == "" {
			h(w, req)
			return
		}
		t.mu.Lock()
		if e, ok := t.entries[key]; ok {
			t.mu.Unlock()
			<-e.done
			replayIdem(w, e)
			return
		}
		e := &idemEntry{done: make(chan struct{})}
		t.entries[key] = e
		t.order = append(t.order, key)
		// FIFO eviction; waiters hold the entry pointer, so evicting an
		// in-flight key cannot strand them — its executor still closes
		// done.
		for len(t.order) > t.limit {
			delete(t.entries, t.order[0])
			t.order = t.order[1:]
		}
		t.mu.Unlock()

		rec := &idemRecorder{header: make(http.Header)}
		h(rec, req)
		e.status = rec.status()
		e.header = rec.header
		e.body = rec.body.Bytes()
		close(e.done)
		replayIdem(w, e)
	}
}

func replayIdem(w http.ResponseWriter, e *idemEntry) {
	for k, vs := range e.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(e.status)
	_, _ = w.Write(e.body)
}

// idemRecorder captures a handler's response. The wrapped handlers
// write small JSON bodies; streaming/flushing handlers must not be
// wrapped.
type idemRecorder struct {
	header http.Header
	body   bytes.Buffer
	code   int
}

func (r *idemRecorder) Header() http.Header { return r.header }

func (r *idemRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *idemRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(b)
}

func (r *idemRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}
