package remote

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseNetFaultPlan(t *testing.T) {
	plan, err := ParseNetFaultPlan(
		"seed=42; lat=at:10s,ramp:2s,hold:5s,heal:2s,add:200ms; " +
			"drop=at:0s,hold:5s,p:0.3; rsp-drop=at:1s,hold:2s,p:0.2,link:1; " +
			"part=at:20s,hold:10s,link:0")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 42 || len(plan.Events) != 4 {
		t.Fatalf("plan = %+v", plan)
	}
	lat := plan.Events[0]
	if lat.Kind != FaultLatency || lat.At != 10*time.Second || lat.Ramp != 2*time.Second ||
		lat.Hold != 5*time.Second || lat.Heal != 2*time.Second || lat.Add != 200*time.Millisecond ||
		lat.Link != -1 {
		t.Fatalf("lat event = %+v", lat)
	}
	if d := plan.Events[1]; d.Kind != FaultDropRequest || d.P != 0.3 {
		t.Fatalf("drop event = %+v", d)
	}
	if rd := plan.Events[2]; rd.Kind != FaultDropResponse || rd.Link != 1 {
		t.Fatalf("rsp-drop event = %+v", rd)
	}
	if pt := plan.Events[3]; pt.Kind != FaultPartition || pt.P != 1 || pt.Link != 0 {
		t.Fatalf("part event = %+v", pt)
	}

	for _, bad := range []string{
		"nope=1",                          // unknown key
		"lat=at:1s,hold:1s",               // lat without add
		"lat=at:1s,hold:1s,add:0s",        // non-positive add
		"drop=p:0.5",                      // zero-width window
		"drop=at:1s,hold:1s,p:1.5",        // p out of range
		"drop=at:1s,hold:1s,p:0.5,add:1s", // add on non-lat
		"lat=at:1s,hold:1s,add:1s,p:0.5",  // p on lat
		"part=at:-1s,hold:1s",             // negative duration
		"part=at:1s,hold:1s,link:-2",      // negative link
		"drop=at:1s,hold:1s,bogus:3",      // unknown field
		"drop at:1s",                      // not key=value
	} {
		if _, err := ParseNetFaultPlan(bad); err == nil {
			t.Errorf("ParseNetFaultPlan(%q) accepted", bad)
		}
	}
}

func TestNetFaultPlanStringRoundTrip(t *testing.T) {
	in := "seed=7; lat=at:1s,ramp:500ms,hold:2s,heal:500ms,add:100ms; part=at:5s,hold:3s,link:2"
	plan, err := ParseNetFaultPlan(in)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseNetFaultPlan(plan.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", plan.String(), err)
	}
	if !reflect.DeepEqual(plan, again) {
		t.Fatalf("round trip changed the plan:\n  %+v\n  %+v", plan, again)
	}
}

func TestNetFaultScaleTrapezoid(t *testing.T) {
	e := NetFaultEvent{At: 10 * time.Second, Ramp: 2 * time.Second,
		Hold: 4 * time.Second, Heal: 2 * time.Second}
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{9 * time.Second, 0},
		{11 * time.Second, 0.5}, // mid-ramp
		{13 * time.Second, 1},   // hold
		{17 * time.Second, 0.5}, // mid-heal
		{19 * time.Second, 0},   // healed
	}
	for _, c := range cases {
		if got := e.scale(c.t); got != c.want {
			t.Errorf("scale(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// Instant on/off: no ramp/heal.
	sq := NetFaultEvent{At: time.Second, Hold: time.Second}
	if sq.scale(999*time.Millisecond) != 0 || sq.scale(1500*time.Millisecond) != 1 ||
		sq.scale(2001*time.Millisecond) != 0 {
		t.Fatal("square window wrong")
	}
}

func TestNetFaultTransportPartitionWindow(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(srv.Close)

	plan, err := ParseNetFaultPlan("part=at:1s,hold:1s,link:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewNetFaultInjector(plan)
	var now atomic.Int64
	inj.now = func() time.Duration { return time.Duration(now.Load()) }
	client := &http.Client{Transport: inj.Transport(0, nil)}
	other := &http.Client{Transport: inj.Transport(1, nil)}

	get := func(c *http.Client) error {
		resp, err := c.Get(srv.URL)
		if err == nil {
			resp.Body.Close()
		}
		return err
	}

	now.Store(int64(500 * time.Millisecond))
	if err := get(client); err != nil {
		t.Fatalf("before window: %v", err)
	}
	now.Store(int64(1500 * time.Millisecond))
	if err := get(client); err == nil {
		t.Fatal("inside window: call must fail")
	}
	if err := get(other); err != nil {
		t.Fatalf("other link inside window: %v", err)
	}
	now.Store(int64(2500 * time.Millisecond))
	if err := get(client); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	st := inj.Stats()
	if st.PartitionRefusals != 1 {
		t.Fatalf("stats = %+v, want 1 partition refusal", st)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (partitioned call never arrives)", hits.Load())
	}
}

func TestNetFaultResponseDropExecutesServerSide(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(srv.Close)

	plan, _ := ParseNetFaultPlan("rsp-drop=at:0s,hold:10s")
	inj := NewNetFaultInjector(plan)
	inj.now = func() time.Duration { return time.Second }
	client := &http.Client{Transport: inj.Transport(0, nil)}
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("dropped response must surface as an error")
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1: the request side must deliver", hits.Load())
	}
	if st := inj.Stats(); st.DroppedResponses != 1 {
		t.Fatalf("stats = %+v, want 1 dropped response", st)
	}
}

// TestNetFaultDeterministicDraws: the same seed and call sequence yield
// byte-identical fault decisions and counters; a different seed diverges.
func TestNetFaultDeterministicDraws(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(srv.Close)

	run := func(seed int64) ([]bool, NetFaultStats) {
		plan, err := ParseNetFaultPlan("drop=at:0s,hold:1h,p:0.35; rsp-drop=at:0s,hold:1h,p:0.2")
		if err != nil {
			t.Fatal(err)
		}
		plan.Seed = seed
		inj := NewNetFaultInjector(plan)
		inj.now = func() time.Duration { return time.Minute }
		client := &http.Client{Transport: inj.Transport(3, nil)}
		outcomes := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			resp, err := client.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes, inj.Stats()
	}

	o1, s1 := run(12345)
	o2, s2 := run(12345)
	if !reflect.DeepEqual(o1, o2) {
		t.Fatal("same seed produced different fault sequences")
	}
	if s1 != s2 {
		t.Fatalf("same seed produced different counters: %+v vs %+v", s1, s2)
	}
	if s1.DroppedRequests == 0 || s1.DroppedResponses == 0 {
		t.Fatalf("faults never fired: %+v", s1)
	}
	o3, _ := run(54321)
	if reflect.DeepEqual(o1, o3) {
		t.Fatal("different seeds produced identical 200-call fault sequences")
	}
}

func FuzzNetFaultPlan(f *testing.F) {
	f.Add("seed=42; lat=at:10s,ramp:2s,hold:5s,heal:2s,add:200ms")
	f.Add("drop=at:0s,hold:5s,p:0.3; rsp-drop=at:1s,hold:2s,p:0.2,link:1")
	f.Add("part=at:20s,hold:10s,link:0")
	f.Add("seed=-9223372036854775808")
	f.Add("lat=at:1ns,ramp:1ns,add:1ns")
	f.Add(";;;")
	f.Fuzz(func(t *testing.T, s string) {
		plan, err := ParseNetFaultPlan(s)
		if err != nil {
			return
		}
		// A parsed plan must round-trip through its String form.
		again, err := ParseNetFaultPlan(plan.String())
		if err != nil {
			t.Fatalf("String %q of parsed plan does not reparse: %v", plan.String(), err)
		}
		if !reflect.DeepEqual(plan, again) {
			t.Fatalf("round trip changed plan: %+v vs %+v", plan, again)
		}
		// Scales stay within [0, 1] at arbitrary probe times.
		for _, e := range plan.Events {
			for _, at := range []time.Duration{0, e.At, e.At + e.Ramp,
				e.At + e.Ramp + e.Hold, e.At + e.Ramp + e.Hold + e.Heal, 1 << 40} {
				if s := e.scale(at); s < 0 || s > 1 {
					t.Fatalf("scale(%v) = %v out of [0,1] for %+v", at, s, e)
				}
			}
		}
	})
}
