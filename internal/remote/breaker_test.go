package remote

import (
	"testing"
	"time"

	"punica/internal/core"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	b := NewBreaker(cfg)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerLifecycle(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second, HalfOpenSuccesses: 2})
	if b.State() != BreakerClosed || !b.PlacementAllowed() {
		t.Fatal("new breaker must be closed")
	}
	// Interleaved success resets the consecutive count.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures must not open")
	}
	b.Failure()
	if b.State() != BreakerOpen || b.PlacementAllowed() {
		t.Fatalf("3 consecutive failures: state=%v", b.State())
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}
	// Cooldown elapses: half-open, still no placements.
	clk.advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("after cooldown: state=%v, want half-open", b.State())
	}
	if b.PlacementAllowed() {
		t.Fatal("half-open must not admit placements")
	}
	// Two probe successes re-close.
	b.Success()
	if b.State() != BreakerHalfOpen {
		t.Fatal("one success must not close")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.PlacementAllowed() {
		t.Fatalf("after 2 successes: state=%v, want closed", b.State())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second})
	b.Failure()
	b.Failure()
	clk.advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("half-open failure: state=%v, want open", b.State())
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
	// A straggling success while open is ignored.
	b.Success()
	if b.State() != BreakerOpen {
		t.Fatal("open breaker must ignore stray successes")
	}
}

func TestBreakerDisabledNeverOpens(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 100; i++ {
		b.Failure()
	}
	if b.State() != BreakerClosed || !b.PlacementAllowed() {
		t.Fatal("zero-threshold breaker must never open")
	}
}

// TestBreakerQuarantinesSnapshot: an open breaker zeroes the client's
// scheduler-facing snapshot, so placement is refused without a wire
// call; probes walking it back to closed restore the snapshot.
func TestBreakerQuarantinesSnapshot(t *testing.T) {
	_, srv := startRunner(t, "rBrk", 4)
	c := NewClient(srv.URL)
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Millisecond, HalfOpenSuccesses: 1})
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	c.SetBreaker(b)

	small := &core.Request{PromptLen: 16, OutputLen: 16}
	if snap := c.Snapshot(); !snap.CanAdmit(small) {
		t.Fatalf("healthy runner snapshot: %+v", snap)
	}
	b.Failure() // threshold 1: opens
	if snap := c.Snapshot(); snap.CanAdmit(small) || snap.MaxBatch != 0 {
		t.Fatalf("open breaker must zero the snapshot, got %+v", snap)
	}
	clk.advance(time.Millisecond) // half-open: probes may pass, placements not
	if snap := c.Snapshot(); snap.CanAdmit(small) {
		t.Fatal("half-open breaker must still refuse placement")
	}
	if err := c.Probe(time.Second); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("probe success must close, state=%v", b.State())
	}
	if snap := c.Snapshot(); !snap.CanAdmit(small) {
		t.Fatal("closed breaker must restore the snapshot")
	}
}
