package remote

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"punica/internal/core"
	"punica/internal/lora"
	"punica/internal/serve"
)

// TestRunnerDrainSalvagesWorkingSet: POST /runner/drain (Client.Crash)
// returns every resident request with Generated intact and leaves the
// runner empty with zero pinned bytes.
func TestRunnerDrainSalvagesWorkingSet(t *testing.T) {
	_, srv := startRunner(t, "rD", 8)
	client := NewClient(srv.URL)
	for i := int64(1); i <= 2; i++ {
		if err := client.Enqueue(&core.Request{
			ID: i, Model: lora.ModelID(i), PromptLen: 32, OutputLen: 100000,
			Arrival: time.Duration(i) * time.Millisecond,
		}, 0); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let generation start
	lost, _ := client.Crash(0)
	if len(lost) != 2 {
		t.Fatalf("drain salvaged %d requests, want 2", len(lost))
	}
	if lost[0].ID != 1 || lost[1].ID != 2 {
		t.Fatalf("drain order wrong: %+v", lost)
	}
	st, err := client.FetchState()
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkingSet != 0 || st.StorePinnedBytes != 0 {
		t.Fatalf("drained runner not empty: ws=%d pinned=%d", st.WorkingSet, st.StorePinnedBytes)
	}
	// Crash against a dead machine salvages nothing, quickly.
	deadClient := NewClient("http://127.0.0.1:1")
	if got, kv := deadClient.Crash(0); got != nil || kv != 0 {
		t.Fatalf("dead runner drain returned (%v, %d)", got, kv)
	}
}

// TestClientProbe: a live runner answers inside the deadline; a dead
// address fails.
func TestClientProbe(t *testing.T) {
	_, srv := startRunner(t, "rP", 0)
	client := NewClient(srv.URL)
	if err := client.Probe(500 * time.Millisecond); err != nil {
		t.Fatalf("probe of live runner: %v", err)
	}
	dead := NewClient("http://127.0.0.1:1")
	if dead.Probe(200*time.Millisecond) == nil {
		t.Fatal("probe of dead address must fail")
	}
}

// TestFrontendSurvivesRunnerDeath is the remote acceptance scenario: a
// runner is killed mid-generation; the health monitor declares it
// failed, requeues its work onto the survivor, and the user's token
// stream re-attaches and completes — every index exactly once, EOS
// delivered — instead of erroring the run.
func TestFrontendSurvivesRunnerDeath(t *testing.T) {
	// Slow enough (low speedup) that generation is running when the
	// runner dies.
	cfgA := runnerConfig()
	rA := NewRunner("rA", cfgA, 50)
	srvA := httptest.NewServer(rA.Handler())
	t.Cleanup(func() { srvA.Close(); rA.Close() })
	cfgB := runnerConfig()
	rB := NewRunner("rB", cfgB, 50)
	srvB := httptest.NewServer(rB.Handler())
	// srvB is killed mid-test; Close is idempotent.
	t.Cleanup(srvB.Close)
	t.Cleanup(rB.Close)

	f := NewFrontendWithOptions([]string{srvA.URL, srvB.URL}, FrontendOptions{
		DrainInterval:   10 * time.Millisecond,
		HealthInterval:  20 * time.Millisecond,
		HealthTimeout:   150 * time.Millisecond,
		HealthThreshold: 2,
		RecoverWait:     10 * time.Second,
	})
	defer f.Close()
	front := httptest.NewServer(f.Handler())
	defer front.Close()

	// §5.1 routing sends the first request to the highest-UUID runner:
	// runner-01 (srvB) — the one we kill.
	const maxTokens = 160
	body, _ := json.Marshal(serve.GenerateRequest{Model: 3, PromptLen: 64, MaxTokens: maxTokens})
	resp, err := http.Post(front.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate -> %d", resp.StatusCode)
	}

	// Kill the owning runner once a few tokens have streamed.
	killed := make(chan struct{})
	go func() {
		time.Sleep(80 * time.Millisecond)
		srvB.Close()
		close(killed)
	}()

	var events []TokenEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev TokenEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	<-killed
	if err := sc.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if len(events) != maxTokens {
		t.Fatalf("streamed %d events, want %d", len(events), maxTokens)
	}
	for i, ev := range events {
		if ev.Index != i {
			t.Fatalf("event %d has index %d: duplicates or gaps across recovery", i, ev.Index)
		}
	}
	if !events[len(events)-1].EOS {
		t.Fatal("stream ended without EOS")
	}

	// The frontend accounted the failure and the recovery.
	statsResp, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats struct {
		GPUFailures   int64    `json:"gpu_failures"`
		Recovered     int64    `json:"recovered_requests"`
		FailedRunners []string `json:"failed_runners"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.GPUFailures != 1 || stats.Recovered < 1 || len(stats.FailedRunners) != 1 {
		t.Fatalf("stats = %+v, want 1 failure and >=1 recovery", stats)
	}
}

// TestFrontendFailsRunnerWithoutStream: a runner death with no open
// user stream still requeues the placed work (Submit-level recovery).
func TestFrontendFailsRunnerWithoutStream(t *testing.T) {
	rA := NewRunner("sA", runnerConfig(), 50)
	srvA := httptest.NewServer(rA.Handler())
	t.Cleanup(func() { srvA.Close(); rA.Close() })
	rB := NewRunner("sB", runnerConfig(), 50)
	srvB := httptest.NewServer(rB.Handler())
	t.Cleanup(srvB.Close)
	t.Cleanup(rB.Close)

	f := NewFrontendWithOptions([]string{srvA.URL, srvB.URL}, FrontendOptions{
		DrainInterval:   10 * time.Millisecond,
		HealthInterval:  20 * time.Millisecond,
		HealthTimeout:   150 * time.Millisecond,
		HealthThreshold: 2,
	})
	defer f.Close()

	// Lands on the highest-UUID runner (srvB).
	id, _, err := f.Submit(1, 32, 400, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srvB.Close()

	// Wait for the health monitor to fail srvB and requeue onto srvA.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, gpu, ok := f.owner(id)
		if ok && f.clients[gpu].base == srvA.URL {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request was not re-placed on the surviving runner")
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, err := NewClient(srvA.URL).FetchState()
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkingSet != 1 {
		t.Fatalf("survivor working set = %d, want the recovered request", st.WorkingSet)
	}
}
