package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"punica/internal/sched"
	"punica/internal/serve"
)

// TestStreamReattachAcrossPartitionHeal is the net-chaos acceptance
// scenario: an injected partition (not a process kill) cuts the link to
// the runner that owns a mid-flight generation. The health prober —
// whose probes ride the same faulted transport — declares it failed,
// the request requeues onto the survivor, and the user's stream
// re-attaches there: every token index exactly once, EOS delivered.
// After the window heals, the injected-fault counters prove the
// partition (and nothing else) was the failure.
func TestStreamReattachAcrossPartitionHeal(t *testing.T) {
	rA := NewRunner("nfA", runnerConfig(), 50)
	srvA := httptest.NewServer(rA.Handler())
	t.Cleanup(func() { srvA.Close(); rA.Close() })
	rB := NewRunner("nfB", runnerConfig(), 50)
	srvB := httptest.NewServer(rB.Handler())
	t.Cleanup(func() { srvB.Close(); rB.Close() })

	// §5.1 routing sends the first request to the highest-UUID runner:
	// runner-01 (srvB, link 1) — the link we partition. Window: clean
	// for 100ms, hard partition for 5s, 1s heal ramp.
	plan, err := ParseNetFaultPlan("seed=1; part=at:100ms,hold:5s,heal:1s,link:1")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewNetFaultInjector(plan)

	f := NewFrontendWithOptions([]string{srvA.URL, srvB.URL}, FrontendOptions{
		DrainInterval:   10 * time.Millisecond,
		HealthInterval:  20 * time.Millisecond,
		HealthTimeout:   150 * time.Millisecond,
		HealthThreshold: 2,
		RecoverWait:     10 * time.Second,
		NetFaults:       inj,
	})
	defer f.Close()
	front := httptest.NewServer(f.Handler())
	defer front.Close()

	const maxTokens = 160
	body, _ := json.Marshal(serve.GenerateRequest{Model: 3, PromptLen: 64, MaxTokens: maxTokens})
	resp, err := http.Post(front.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate -> %d", resp.StatusCode)
	}

	var events []TokenEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev TokenEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if len(events) != maxTokens {
		t.Fatalf("streamed %d events, want %d", len(events), maxTokens)
	}
	for i, ev := range events {
		if ev.Index != i {
			t.Fatalf("event %d has index %d: duplicates or gaps across the partition", i, ev.Index)
		}
	}
	if !events[len(events)-1].EOS {
		t.Fatal("stream ended without EOS")
	}

	// The partition — visible in the injector's counters — is what the
	// frontend survived.
	if st := inj.Stats(); st.PartitionRefusals == 0 {
		t.Fatalf("injector stats = %+v, want partition refusals", st)
	}
	statsResp, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats struct {
		GPUFailures int64          `json:"gpu_failures"`
		Recovered   int64          `json:"recovered_requests"`
		NetFaults   *NetFaultStats `json:"net_faults"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.GPUFailures != 1 || stats.Recovered < 1 {
		t.Fatalf("stats = %+v, want 1 failure and >=1 recovery", stats)
	}
	if stats.NetFaults == nil || stats.NetFaults.PartitionRefusals == 0 {
		t.Fatalf("stats must expose injected-fault counters, got %+v", stats.NetFaults)
	}
}

// TestFrontendAdmission429 wires the admission layer through the remote
// frontend: once the runner and the bounded queue are full, /v1/generate
// answers 429 with the backpressure envelope and Retry-After.
func TestFrontendAdmission429(t *testing.T) {
	cfg := runnerConfig()
	cfg.System.MaxBatch = 1
	rn := NewRunner("nfQ", cfg, 50)
	srv := httptest.NewServer(rn.Handler())
	t.Cleanup(func() { srv.Close(); rn.Close() })

	f := NewFrontendWithOptions([]string{srv.URL}, FrontendOptions{
		DrainInterval: 10 * time.Millisecond,
		Admission:     sched.AdmissionConfig{MaxQueue: 1},
	})
	defer f.Close()
	front := httptest.NewServer(f.Handler())
	defer front.Close()
	// Cancelling the context first (defers run LIFO) tears the filler
	// streams down so Close does not wait out their generations.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	post := func() (*http.Response, error) {
		body, _ := json.Marshal(serve.GenerateRequest{Model: 1, PromptLen: 32, MaxTokens: 4096})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			front.URL+"/v1/generate", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return http.DefaultClient.Do(req)
	}

	// Fill the single batch slot and the single queue slot with
	// streaming requests.
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := post()
			if err == nil {
				defer resp.Body.Close()
				sc := bufio.NewScanner(resp.Body)
				for sc.Scan() {
				}
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		f.mu.Lock()
		qn := f.sch.QueueLen()
		f.mu.Unlock()
		if qn >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	var resp *http.Response
	var err error
	for {
		resp, err = post()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("never saw 429, last status %d", resp.StatusCode)
		}
	}
	defer resp.Body.Close()
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var bp serve.Backpressure
	if err := json.NewDecoder(resp.Body).Decode(&bp); err != nil {
		t.Fatal(err)
	}
	if bp.Code != serve.CodeQueueFull {
		t.Fatalf("envelope code = %q, want %q", bp.Code, serve.CodeQueueFull)
	}
}
