package remote

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"punica/internal/core"
	"punica/internal/lora"
	"punica/internal/sched"
	"punica/internal/serve"
)

// FrontendOptions configures a frontend beyond the runner URLs.
type FrontendOptions struct {
	// DrainInterval governs how often the FCFS queue is re-offered to
	// runners (capacity opens asynchronously on remote machines); 50 ms
	// by default.
	DrainInterval time.Duration
	// Policy is the placement policy (nil means the paper's §5.1 rule).
	Policy sched.Policy

	// HealthInterval, when > 0, enables runner health checking: every
	// interval each runner is probed with GET /runner/state under
	// HealthTimeout. After HealthThreshold consecutive probe failures
	// the runner is declared failed: it is force-removed from the
	// scheduler (sched.FailGPU), whatever working set is still
	// reachable is drained, and every request placed on it is requeued
	// FCFS onto the survivors instead of erroring the run.
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 1 s).
	HealthTimeout time.Duration
	// HealthThreshold is the consecutive-failure count that declares
	// death (default 3).
	HealthThreshold int
	// RecoverWait bounds how long a broken token stream waits for its
	// request to be re-placed before giving up (default 15 s). Only
	// meaningful with health checking enabled.
	RecoverWait time.Duration

	// Admission bounds the frontend's FCFS queue (zero = unbounded,
	// byte-identical legacy behavior). Rejections and sheds surface as
	// 429 with the backpressure envelope.
	Admission sched.AdmissionConfig
	// Retry, when Enabled, retries transient per-runner call failures
	// with exponential backoff; mutating calls carry idempotency keys.
	Retry RetryPolicy
	// Breaker, when Threshold > 0, gives every runner link a circuit
	// breaker: consecutive transport failures quarantine the runner
	// (zero Snapshot → no placements) until probes re-close it.
	Breaker BreakerConfig
	// NetFaults, when non-nil, injects the plan's link faults into every
	// frontend↔runner transport (including probes and token streams).
	NetFaults *NetFaultInjector
}

func (o FrontendOptions) withDefaults() FrontendOptions {
	if o.DrainInterval <= 0 {
		o.DrainInterval = 50 * time.Millisecond
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = time.Second
	}
	if o.HealthThreshold <= 0 {
		o.HealthThreshold = 3
	}
	if o.RecoverWait <= 0 {
		o.RecoverWait = 15 * time.Second
	}
	return o
}

// placement records where a request currently lives, with enough state
// to re-dispatch it when that runner dies.
type placement struct {
	req *core.Request
	gpu *sched.GPU
}

// Frontend terminates user connections and routes requests across remote
// runners through the Punica scheduler (Fig. 2: "frontend servers ...
// forward users' serving requests to the Punica scheduler"). Token
// streams are proxied from the owning runner back to the user; when
// health checking is enabled, a stream cut by a runner crash re-attaches
// to the request's new owner and resumes exactly where it left off
// (token indices dedupe the recomputed prefix).
type Frontend struct {
	sch     *sched.Scheduler
	clients map[*sched.GPU]*Client
	opts    FrontendOptions

	mu        sync.Mutex
	nextID    int64
	placed    map[int64]placement
	waiters   map[int64]chan *sched.GPU
	shed      map[int64]bool // queued requests dropped by the admission layer
	rejects   int64          // 429s answered by /v1/generate
	failed    []string       // UUIDs of runners declared dead
	failures  int64
	recovered int64
	start     time.Time
	stop      chan struct{}
	wg        sync.WaitGroup
	// roleKnown marks runners whose disaggregation role has been
	// discovered from their state endpoint (runners may come up after
	// the frontend; discovery retries until each answers).
	roleKnown map[*sched.GPU]bool
}

// NewFrontend builds a frontend over runner base URLs with the paper's
// §5.1 placement policy and health checking disabled.
func NewFrontend(runnerURLs []string, drainInterval time.Duration) *Frontend {
	return NewFrontendWithOptions(runnerURLs, FrontendOptions{DrainInterval: drainInterval})
}

// NewFrontendWithPolicy is NewFrontend with an explicit placement
// policy (nil means the paper's). Policies rank runners on the batched
// snapshot each one serves over GET /runner/state.
func NewFrontendWithPolicy(runnerURLs []string, drainInterval time.Duration, p sched.Policy) *Frontend {
	return NewFrontendWithOptions(runnerURLs, FrontendOptions{DrainInterval: drainInterval, Policy: p})
}

// NewFrontendWithOptions builds a frontend with full control, including
// the health-checking fault-tolerance loop.
func NewFrontendWithOptions(runnerURLs []string, opts FrontendOptions) *Frontend {
	opts = opts.withDefaults()
	f := &Frontend{
		opts:      opts,
		clients:   make(map[*sched.GPU]*Client),
		placed:    make(map[int64]placement),
		waiters:   make(map[int64]chan *sched.GPU),
		shed:      make(map[int64]bool),
		start:     time.Now(),
		stop:      make(chan struct{}),
		roleKnown: make(map[*sched.GPU]bool),
	}
	var gpus []*sched.GPU
	for i, url := range runnerURLs {
		var rt http.RoundTripper
		if opts.NetFaults != nil {
			rt = opts.NetFaults.Transport(i, nil)
		}
		client := NewClientWithTransport(url, rt)
		if opts.Retry.Enabled() {
			client.SetRetry(opts.Retry)
		}
		if opts.Breaker.Threshold > 0 {
			client.SetBreaker(NewBreaker(opts.Breaker))
		}
		g := &sched.GPU{UUID: fmt.Sprintf("runner-%02d@%s", i, url), Engine: client}
		f.clients[g] = client
		gpus = append(gpus, g)
	}
	f.sch = sched.NewWithPolicy(gpus, opts.Policy)
	f.sch.SetAdmission(opts.Admission)
	f.sch.OnShed = f.onShed
	f.wg.Add(1)
	go f.drainLoop(opts.DrainInterval)
	if opts.HealthInterval > 0 {
		f.wg.Add(1)
		go f.healthLoop()
	}
	return f
}

// Close stops the background loops.
func (f *Frontend) Close() {
	close(f.stop)
	f.wg.Wait()
}

func (f *Frontend) now() time.Duration { return time.Since(f.start) }

// drainLoop periodically re-offers queued requests; remote capacity
// frees without notification.
func (f *Frontend) drainLoop(interval time.Duration) {
	defer f.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
			f.mu.Lock()
			placed, err := f.sch.DrainQueue(f.now())
			if err == nil {
				for _, p := range placed {
					f.notePlacement(p.Request, p.GPU)
				}
			}
			f.migrateTick()
			f.mu.Unlock()
		}
	}
}

// migrateTick disaggregates the HTTP stack: it discovers runner roles,
// then hands every prefill-complete request off the prefill runners to
// a policy-chosen decode runner — KvCache moved over POST /runner/kv,
// not recomputed — and re-points the frontend's placement record so the
// user's token stream re-attaches to the new owner (index dedup bridges
// the handoff). Unified deployments pay one state fetch per runner for
// discovery and nothing after. Callers hold f.mu.
func (f *Frontend) migrateTick() {
	for _, g := range f.sch.GPUs() {
		if f.roleKnown[g] {
			continue
		}
		st, err := f.clients[g].FetchState()
		if err != nil {
			continue
		}
		if role, rerr := core.ParseRole(st.Role); rerr == nil {
			g.Role = role
			f.roleKnown[g] = true
		}
	}
	slackChecked := false
	for _, g := range f.sch.GPUs() {
		if g.Role != core.RolePrefill {
			continue
		}
		if !slackChecked {
			// One slack probe per tick: a saturated decode pool must not
			// cost an export/bounce cycle (and a stream channel swap) per
			// migratable request per tick.
			if !f.sch.DecodePoolHasSlack() {
				return
			}
			slackChecked = true
		}
		for _, id := range f.clients[g].Migratable() {
			dst, err := f.sch.MigrateToDecode(g, id, f.now())
			if err != nil || dst == nil {
				continue
			}
			if p, ok := f.placed[id]; ok {
				p.gpu = dst
				f.placed[id] = p
			}
		}
	}
}

// Probe outcome classes for the health loop's suspicion score.
const (
	probeOK   = iota // answered 200 in time
	probeSlow        // deadline exceeded: possibly just slow
	probeDead        // refused / reset / error status: hard evidence
)

// classifyProbe separates "didn't answer in time" from "actively
// refused": a timeout might be a long batch or GC pause, a connection
// refusal is a dead process.
func classifyProbe(err error) int {
	if err == nil {
		return probeOK
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return probeSlow
	}
	return probeDead
}

// healthLoop probes every managed runner and fails the ones that stop
// answering. Each runner carries a suspicion score with hysteresis:
// refusals add 2, timeouts add 1, and a success decays the score by 1
// instead of resetting it — so one slow probe cannot fail a healthy
// runner, a cleanly dead one still fails after HealthThreshold probes,
// and a flapping runner (alternating probe outcomes) accumulates
// suspicion rather than being forgiven every other tick.
func (f *Frontend) healthLoop() {
	defer f.wg.Done()
	ticker := time.NewTicker(f.opts.HealthInterval)
	defer ticker.Stop()
	scores := make(map[*sched.GPU]int)
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
			f.mu.Lock()
			gpus := append([]*sched.GPU(nil), f.sch.GPUs()...)
			f.mu.Unlock()
			for _, g := range gpus {
				switch classifyProbe(f.clients[g].Probe(f.opts.HealthTimeout)) {
				case probeOK:
					if scores[g] > 0 {
						scores[g]--
					}
				case probeSlow:
					scores[g]++
				case probeDead:
					scores[g] += 2
				}
				if scores[g] >= 2*f.opts.HealthThreshold {
					delete(scores, g)
					f.failRunner(g)
				}
			}
		}
	}
}

// failRunner declares a runner dead: forced scheduler removal, salvage
// of whatever working set is still reachable, and FCFS requeue of every
// request the frontend knows was placed there. Requests restart with
// prefill recomputation on their new owner; their user streams
// re-attach through waitNewOwner.
func (f *Frontend) failRunner(g *sched.GPU) {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.now()
	_, salvaged, _, ok := f.sch.FailGPU(g.UUID, now)
	if !ok {
		return // already removed (planned drain or a concurrent failure)
	}
	f.failures++
	f.failed = append(f.failed, g.UUID)
	seen := make(map[int64]bool, len(salvaged))
	lost := make([]*core.Request, 0, len(salvaged))
	for _, r := range salvaged {
		if !seen[r.ID] {
			seen[r.ID] = true
			lost = append(lost, r)
		}
	}
	// Union with our own placement records: a dead runner salvages
	// nothing, but the frontend knows what it sent there.
	for id, p := range f.placed {
		if p.gpu == g && !seen[id] {
			seen[id] = true
			lost = append(lost, p.req)
		}
	}
	sort.Slice(lost, func(i, j int) bool {
		if lost[i].Arrival != lost[j].Arrival {
			return lost[i].Arrival < lost[j].Arrival
		}
		return lost[i].ID < lost[j].ID
	})
	for _, r := range lost {
		delete(f.placed, r.ID)
		// Restart generation from token zero. A drain of a
		// half-responsive runner can salvage Generated beyond what the
		// user's (now broken) stream delivered — tokens stranded in the
		// dead stream's buffer. Regenerating from scratch is the only
		// state that guarantees the re-attached stream replays them;
		// token ids are deterministic, and the per-token Index dedup
		// drops whatever prefix the user already has.
		r.Generated = 0
		dst, err := f.sch.Requeue(r, now)
		if err != nil {
			continue
		}
		f.recovered++
		if dst != nil {
			f.notePlacement(r, dst)
		}
		// Queued requests land via the drain loop, which re-records the
		// placement and wakes any waiter.
	}
}

// ErrShed reports that a queued request was dropped by the admission
// layer's best-effort shedding to make room for a higher-priority
// arrival. The generate endpoint answers it with 429.
var ErrShed = errors.New("remote: request shed under overload")

// onShed marks a queued request dropped by the admission layer and
// wakes its Submit waiter with a closed channel. Runs with f.mu held
// (inside Dispatch inside Submit).
func (f *Frontend) onShed(r *core.Request) {
	f.shed[r.ID] = true
	if ch, ok := f.waiters[r.ID]; ok {
		close(ch)
		delete(f.waiters, r.ID)
	}
}

// Submit dispatches a request and returns the runner that owns it,
// blocking while the request waits in the FCFS queue.
func (f *Frontend) Submit(model int64, promptLen, outputLen int, timeout time.Duration) (int64, *Client, error) {
	return f.SubmitTenant(model, 0, promptLen, outputLen, timeout)
}

// SubmitTenant is Submit with a tenant tag for the per-tenant admission
// cap and the fairness layer.
func (f *Frontend) SubmitTenant(model, tenant int64, promptLen, outputLen int, timeout time.Duration) (int64, *Client, error) {
	f.mu.Lock()
	f.nextID++
	id := f.nextID
	r := &core.Request{
		ID:        id,
		Model:     lora.ModelID(model),
		PromptLen: promptLen,
		OutputLen: outputLen,
		Arrival:   f.now(),
		Tenant:    tenant,
	}
	g, err := f.sch.Dispatch(r, f.now())
	if err != nil {
		f.mu.Unlock()
		return 0, nil, err
	}
	if g != nil {
		f.placed[id] = placement{req: r, gpu: g}
		client := f.clients[g]
		f.mu.Unlock()
		return id, client, nil
	}
	// Queued: remember the request so a later runner failure can
	// re-dispatch it, and wait for the drain loop to place it.
	ch := make(chan *sched.GPU, 1)
	f.waiters[id] = ch
	f.mu.Unlock()

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case g, ok := <-ch:
			if !ok || g == nil {
				// Channel closed without a placement: the admission
				// layer shed this request while it waited.
				return 0, nil, ErrShed
			}
			f.mu.Lock()
			client := f.clients[g]
			f.mu.Unlock()
			return id, client, nil
		case <-deadline.C:
			f.mu.Lock()
			delete(f.waiters, id)
			f.mu.Unlock()
			// Best effort: pull it back off the queue via cancel.
			f.CancelEverywhere(id)
			return 0, nil, fmt.Errorf("remote: request %d timed out in queue", id)
		case <-f.stop:
			return 0, nil, fmt.Errorf("remote: frontend closed")
		}
	}
}

// notePlacement records where a request landed. Callers hold f.mu.
func (f *Frontend) notePlacement(r *core.Request, g *sched.GPU) {
	f.placed[r.ID] = placement{req: r, gpu: g}
	if ch, ok := f.waiters[r.ID]; ok {
		ch <- g
		delete(f.waiters, r.ID)
	}
}

// owner returns the client and GPU currently holding a request.
func (f *Frontend) owner(id int64) (*Client, *sched.GPU, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.placed[id]
	if !ok {
		return nil, nil, false
	}
	return f.clients[p.gpu], p.gpu, true
}

// waitNewOwner blocks until the request has a placement to re-attach
// to, the deadline passes, or the user's request context ends. It polls
// (pause first, so the migration/recovery loops get a tick to act): the
// re-placement is driven by the health and drain loops. The owner may
// be the same GPU the stream just broke on — a KV migration that found
// no decode room bounces back to its source with a fresh stream
// channel, and a dead runner's placement simply never answers, so the
// reconnect attempt fails and the poll continues until the health loop
// re-places the request elsewhere.
func (f *Frontend) waitNewOwner(req *http.Request, id int64, deadline time.Time) (*Client, *sched.GPU, bool) {
	for {
		select {
		case <-f.stop:
			return nil, nil, false
		case <-req.Context().Done():
			return nil, nil, false
		case <-time.After(10 * time.Millisecond):
		}
		f.mu.Lock()
		if p, ok := f.placed[id]; ok {
			c := f.clients[p.gpu]
			f.mu.Unlock()
			return c, p.gpu, true
		}
		f.mu.Unlock()
		if time.Now().After(deadline) {
			return nil, nil, false
		}
	}
}

// recoveryEnabled reports whether a broken stream should wait for
// re-attachment rather than fail: always with health checking on, and
// always on a disaggregated deployment — a KV migration handing the
// request to the decode pool is a planned stream break, independent of
// the fault-tolerance knob.
func (f *Frontend) recoveryEnabled() bool {
	if f.opts.HealthInterval > 0 {
		return true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sch.HasDecodePool()
}

// forget drops a request's placement record (it finished or was
// cancelled).
func (f *Frontend) forget(id int64) {
	f.mu.Lock()
	delete(f.placed, id)
	f.mu.Unlock()
}

// CancelEverywhere cancels a request wherever it lives.
func (f *Frontend) CancelEverywhere(id int64) bool {
	f.mu.Lock()
	clients := make([]*Client, 0, len(f.clients))
	for _, c := range f.clients {
		clients = append(clients, c)
	}
	delete(f.placed, id)
	f.mu.Unlock()
	found := false
	for _, c := range clients {
		if c.Cancel(id, 0) != nil {
			found = true
		}
	}
	return found
}

// Handler returns the user-facing REST API (same shape as the in-process
// serve package): POST /v1/generate streaming NDJSON, GET /v1/stats.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", f.handleGenerate)
	mux.HandleFunc("GET /v1/stats", f.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (f *Frontend) handleGenerate(w http.ResponseWriter, req *http.Request) {
	var gr serve.GenerateRequest
	if err := json.NewDecoder(req.Body).Decode(&gr); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	promptLen := gr.PromptLen
	if promptLen == 0 {
		promptLen = serve.EstimateTokens(gr.Prompt)
	}
	if promptLen <= 0 {
		http.Error(w, "empty prompt", http.StatusBadRequest)
		return
	}
	if gr.MaxTokens <= 0 {
		gr.MaxTokens = 128
	}
	id, client, err := f.SubmitTenant(gr.Model, gr.Tenant, promptLen, gr.MaxTokens, 2*time.Minute)
	if err != nil {
		// The same backpressure envelope as the in-process server:
		// admission refusals and sheds answer 429 with a drain-rate
		// Retry-After; everything else stays a retryable 503.
		switch {
		case errors.Is(err, sched.ErrQueueFull):
			f.note429()
			serve.WriteBackpressure(w, http.StatusTooManyRequests, serve.CodeQueueFull, err.Error(), f.retryAfter())
		case errors.Is(err, sched.ErrTenantQueueFull):
			f.note429()
			serve.WriteBackpressure(w, http.StatusTooManyRequests, serve.CodeTenantQueueFull, err.Error(), f.retryAfter())
		case errors.Is(err, ErrShed):
			f.note429()
			serve.WriteBackpressure(w, http.StatusTooManyRequests, serve.CodeShed, err.Error(), f.retryAfter())
		default:
			serve.WriteBackpressure(w, http.StatusServiceUnavailable, serve.CodeUnavailable, err.Error(), f.retryAfter())
		}
		return
	}
	f.streamToUser(w, req, id, client)
}

// note429 counts one 429 answered by the generate endpoint.
func (f *Frontend) note429() {
	f.mu.Lock()
	f.rejects++
	f.mu.Unlock()
}

// retryAfter derives the advertised wait from the scheduler's drain
// rate, clamped to [1s, 120s] (frontend time runs at wall speed).
func (f *Frontend) retryAfter() time.Duration {
	f.mu.Lock()
	d := f.sch.RetryAfterHint(1)
	f.mu.Unlock()
	if d < time.Second {
		d = time.Second
	}
	if d > 120*time.Second {
		d = 120 * time.Second
	}
	return d
}

// streamToUser proxies the runner's NDJSON token stream to the user.
// With health checking enabled, a stream cut mid-generation (runner
// died) waits for the request's re-placement and re-attaches to the new
// owner: the recovering runner regenerates from scratch (deterministic
// token ids), and the per-token Index dedupes the already-delivered
// prefix so the user sees each token exactly once.
func (f *Frontend) streamToUser(w http.ResponseWriter, req *http.Request, id int64, client *Client) {
	next := 0 // next token index the user has not yet received
	wroteHeader := false
	flusher, _ := w.(http.Flusher)

	fail := func(msg string, code int) {
		f.CancelEverywhere(id)
		if !wroteHeader {
			http.Error(w, msg, code)
		}
	}

	// recoverBy bounds the total time spent without forward progress:
	// it is armed when a stream breaks, cleared by every delivered
	// token, and NOT re-armed by retries — a permanently dead owner
	// (health checking off, so no re-placement ever happens) fails with
	// 502 after RecoverWait instead of retrying forever.
	var recoverBy time.Time
	for {
		streamReq, err := http.NewRequestWithContext(req.Context(), "GET", client.StreamURL(id), nil)
		if err != nil {
			fail(err.Error(), http.StatusInternalServerError)
			return
		}
		// The stream rides the link's own transport (StreamDo), so an
		// injected partition severs it exactly like a real one.
		resp, err := client.StreamDo(streamReq)
		if err != nil || resp.StatusCode != http.StatusOK {
			if resp != nil {
				resp.Body.Close()
			}
		} else {
			if !wroteHeader {
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.Header().Set("X-Request-ID", fmt.Sprint(id))
				w.WriteHeader(http.StatusOK)
				wroteHeader = true
			}
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 4096), 1<<20)
			done := false
			for sc.Scan() {
				line := sc.Bytes()
				var ev TokenEvent
				if json.Unmarshal(line, &ev) != nil {
					continue
				}
				if ev.Index < next {
					continue // recomputed prefix after a recovery
				}
				if _, werr := w.Write(append(line, '\n')); werr != nil {
					resp.Body.Close()
					f.CancelEverywhere(id)
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
				next = ev.Index + 1
				recoverBy = time.Time{} // forward progress: disarm
				if ev.EOS {
					done = true
					break
				}
			}
			resp.Body.Close()
			if done {
				f.forget(id)
				return
			}
			// EOF without EOS: the owning runner died mid-stream (or
			// drained the request away). Fall through to recovery.
		}
		if !f.recoveryEnabled() || req.Context().Err() != nil {
			// No fault tolerance configured and no migration possible,
			// or it was the *user* who went away (their context is done)
			// — cancel now instead of holding the request through a
			// pointless recovery wait.
			fail("runner stream unavailable", http.StatusBadGateway)
			return
		}
		if recoverBy.IsZero() {
			recoverBy = time.Now().Add(f.opts.RecoverWait)
		} else if time.Now().After(recoverBy) {
			fail("request lost: runner died and recovery timed out", http.StatusBadGateway)
			return
		}
		newClient, _, ok := f.waitNewOwner(req, id, recoverBy)
		if !ok {
			fail("request lost: runner died and recovery timed out", http.StatusBadGateway)
			return
		}
		client = newClient
	}
}

func (f *Frontend) handleStats(w http.ResponseWriter, _ *http.Request) {
	f.mu.Lock()
	clients := make([]*Client, 0, len(f.clients))
	breakers := make(map[string]string)
	var retries int64
	for g, c := range f.clients {
		clients = append(clients, c)
		retries += c.Retries()
		if b := c.Breaker(); b != nil {
			breakers[g.UUID] = b.State().String()
		}
	}
	queueLen := f.sch.QueueLen()
	queuePeak := f.sch.QueuePeak()
	admStats := f.sch.AdmissionStats()
	rejects := f.rejects
	failed := append([]string(nil), f.failed...)
	failures := f.failures
	recovered := f.recovered
	schedStats := f.sch.Stats()
	f.mu.Unlock()
	var states []State
	for _, c := range clients {
		st, err := c.FetchState()
		if err != nil {
			st = State{UUID: "unreachable"}
		}
		states = append(states, st)
	}
	var faults *NetFaultStats
	if f.opts.NetFaults != nil {
		s := f.opts.NetFaults.Stats()
		faults = &s
	}
	writeJSON(w, struct {
		Runners        []State           `json:"runners"`
		QueueLen       int               `json:"queue_len"`
		QueuePeak      int               `json:"queue_peak"`
		FailedRunners  []string          `json:"failed_runners,omitempty"`
		GPUFailures    int64             `json:"gpu_failures"`
		Recovered      int64             `json:"recovered_requests"`
		KVMigrations   int64             `json:"kv_migrations"`
		KVPrefetches   int64             `json:"adapter_prefetches"`
		Rejected       int64             `json:"admission_rejected,omitempty"`
		TenantRejected int64             `json:"admission_tenant_rejected,omitempty"`
		Shed           int64             `json:"admission_shed,omitempty"`
		HTTP429        int64             `json:"http_429,omitempty"`
		Retries        int64             `json:"retries,omitempty"`
		Breakers       map[string]string `json:"breakers,omitempty"`
		NetFaults      *NetFaultStats    `json:"net_faults,omitempty"`
	}{Runners: states, QueueLen: queueLen, QueuePeak: queuePeak, FailedRunners: failed,
		GPUFailures: failures, Recovered: recovered,
		KVMigrations: schedStats.KVMigrations, KVPrefetches: schedStats.AdapterPrefetches,
		Rejected: admStats.Rejected, TenantRejected: admStats.TenantRejected,
		Shed: admStats.Shed, HTTP429: rejects, Retries: retries,
		Breakers: breakers, NetFaults: faults})
}
