package remote

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"punica/internal/core"
	"punica/internal/lora"
	"punica/internal/sched"
	"punica/internal/serve"
)

// Frontend terminates user connections and routes requests across remote
// runners through the Punica scheduler (Fig. 2: "frontend servers ...
// forward users' serving requests to the Punica scheduler"). Token
// streams are proxied from the owning runner back to the user.
type Frontend struct {
	sch     *sched.Scheduler
	clients map[*sched.GPU]*Client

	mu      sync.Mutex
	nextID  int64
	placed  map[int64]*sched.GPU
	waiters map[int64]chan *sched.GPU
	start   time.Time
	stop    chan struct{}
	wg      sync.WaitGroup
}

// NewFrontend builds a frontend over runner base URLs with the paper's
// §5.1 placement policy. DrainInterval governs how often the queue is
// re-offered to runners (capacity opens asynchronously on remote
// machines); 50 ms by default.
func NewFrontend(runnerURLs []string, drainInterval time.Duration) *Frontend {
	return NewFrontendWithPolicy(runnerURLs, drainInterval, nil)
}

// NewFrontendWithPolicy is NewFrontend with an explicit placement
// policy (nil means the paper's). Policies rank runners on the batched
// snapshot each one serves over GET /runner/state.
func NewFrontendWithPolicy(runnerURLs []string, drainInterval time.Duration, p sched.Policy) *Frontend {
	if drainInterval <= 0 {
		drainInterval = 50 * time.Millisecond
	}
	f := &Frontend{
		clients: make(map[*sched.GPU]*Client),
		placed:  make(map[int64]*sched.GPU),
		waiters: make(map[int64]chan *sched.GPU),
		start:   time.Now(),
		stop:    make(chan struct{}),
	}
	var gpus []*sched.GPU
	for i, url := range runnerURLs {
		client := NewClient(url)
		g := &sched.GPU{UUID: fmt.Sprintf("runner-%02d@%s", i, url), Engine: client}
		f.clients[g] = client
		gpus = append(gpus, g)
	}
	f.sch = sched.NewWithPolicy(gpus, p)
	f.wg.Add(1)
	go f.drainLoop(drainInterval)
	return f
}

// Close stops the background drain loop.
func (f *Frontend) Close() {
	close(f.stop)
	f.wg.Wait()
}

func (f *Frontend) now() time.Duration { return time.Since(f.start) }

// drainLoop periodically re-offers queued requests; remote capacity
// frees without notification.
func (f *Frontend) drainLoop(interval time.Duration) {
	defer f.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
			f.mu.Lock()
			placed, err := f.sch.DrainQueue(f.now())
			if err == nil {
				for _, p := range placed {
					f.notePlacement(p.Request.ID, p.GPU)
				}
			}
			f.mu.Unlock()
		}
	}
}

// Submit dispatches a request and returns the runner that owns it,
// blocking while the request waits in the FCFS queue.
func (f *Frontend) Submit(model int64, promptLen, outputLen int, timeout time.Duration) (int64, *Client, error) {
	f.mu.Lock()
	f.nextID++
	id := f.nextID
	r := &core.Request{
		ID:        id,
		Model:     lora.ModelID(model),
		PromptLen: promptLen,
		OutputLen: outputLen,
		Arrival:   f.now(),
	}
	g, err := f.sch.Dispatch(r, f.now())
	if err != nil {
		f.mu.Unlock()
		return 0, nil, err
	}
	if g != nil {
		f.placed[id] = g
		client := f.clients[g]
		f.mu.Unlock()
		return id, client, nil
	}
	// Queued: wait for the drain loop to place it. The scheduler mutates
	// the queue; we watch for our request to land by polling runner
	// ownership through DrainQueue results.
	ch := make(chan *sched.GPU, 1)
	f.waiters[id] = ch
	f.mu.Unlock()

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case g := <-ch:
			f.mu.Lock()
			client := f.clients[g]
			f.mu.Unlock()
			return id, client, nil
		case <-deadline.C:
			f.mu.Lock()
			delete(f.waiters, id)
			f.mu.Unlock()
			// Best effort: pull it back off the queue via cancel.
			f.CancelEverywhere(id)
			return 0, nil, fmt.Errorf("remote: request %d timed out in queue", id)
		case <-f.stop:
			return 0, nil, fmt.Errorf("remote: frontend closed")
		}
	}
}

// notePlacement records where a drained request landed. Called by the
// scheduler drain path below.
func (f *Frontend) notePlacement(id int64, g *sched.GPU) {
	f.placed[id] = g
	if ch, ok := f.waiters[id]; ok {
		ch <- g
		delete(f.waiters, id)
	}
}

// CancelEverywhere cancels a request wherever it lives.
func (f *Frontend) CancelEverywhere(id int64) bool {
	f.mu.Lock()
	clients := make([]*Client, 0, len(f.clients))
	for _, c := range f.clients {
		clients = append(clients, c)
	}
	delete(f.placed, id)
	f.mu.Unlock()
	found := false
	for _, c := range clients {
		if c.Cancel(id, 0) != nil {
			found = true
		}
	}
	return found
}

// Handler returns the user-facing REST API (same shape as the in-process
// serve package): POST /v1/generate streaming NDJSON, GET /v1/stats.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", f.handleGenerate)
	mux.HandleFunc("GET /v1/stats", f.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (f *Frontend) handleGenerate(w http.ResponseWriter, req *http.Request) {
	var gr serve.GenerateRequest
	if err := json.NewDecoder(req.Body).Decode(&gr); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	promptLen := gr.PromptLen
	if promptLen == 0 {
		promptLen = serve.EstimateTokens(gr.Prompt)
	}
	if promptLen <= 0 {
		http.Error(w, "empty prompt", http.StatusBadRequest)
		return
	}
	if gr.MaxTokens <= 0 {
		gr.MaxTokens = 128
	}
	id, client, err := f.Submit(gr.Model, promptLen, gr.MaxTokens, 2*time.Minute)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	// Proxy the runner's NDJSON stream through to the user.
	streamReq, err := http.NewRequestWithContext(req.Context(), "GET", client.StreamURL(id), nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp, err := http.DefaultClient.Do(streamReq)
	if err != nil {
		f.CancelEverywhere(id)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		f.CancelEverywhere(id)
		http.Error(w, "runner stream unavailable", http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Request-ID", fmt.Sprint(id))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				f.CancelEverywhere(id)
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err == io.EOF {
			return
		}
		if err != nil {
			f.CancelEverywhere(id)
			return
		}
	}
}

func (f *Frontend) handleStats(w http.ResponseWriter, _ *http.Request) {
	f.mu.Lock()
	clients := make([]*Client, 0, len(f.clients))
	for _, c := range f.clients {
		clients = append(clients, c)
	}
	queueLen := f.sch.QueueLen()
	f.mu.Unlock()
	var states []State
	for _, c := range clients {
		st, err := c.FetchState()
		if err != nil {
			st = State{UUID: "unreachable"}
		}
		states = append(states, st)
	}
	writeJSON(w, struct {
		Runners  []State `json:"runners"`
		QueueLen int     `json:"queue_len"`
	}{Runners: states, QueueLen: queueLen})
}
