package remote

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"punica/internal/core"
	"punica/internal/lora"
)

// quietClient disables retry sleeping and records the waits.
func quietClient(base string, p RetryPolicy) (*Client, *[]time.Duration) {
	c := NewClient(base)
	c.SetRetry(p)
	var waits []time.Duration
	c.sleep = func(d time.Duration) { waits = append(waits, d) }
	return c, &waits
}

func TestClientRetriesTransientHonoringRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(srv.Close)

	c, waits := quietClient(srv.URL, RetryPolicy{MaxAttempts: 4})
	if err := c.postJSON("/x", struct{}{}, nil); err != nil {
		t.Fatalf("call with retries: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if c.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", c.Retries())
	}
	// Both backoffs honored the server's Retry-After: 1s.
	if len(*waits) != 2 || (*waits)[0] != time.Second || (*waits)[1] != time.Second {
		t.Fatalf("waits = %v, want [1s 1s]", *waits)
	}
}

func TestClientRetryDisabledByDefault(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "busy", http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL)
	if err := c.postJSON("/x", struct{}{}, nil); err == nil {
		t.Fatal("503 must surface without a retry policy")
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want exactly 1", calls.Load())
	}
}

func TestClientNeverRetriesStoreFull(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, lora.ErrStoreFull.Error(), http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)

	c, _ := quietClient(srv.URL, RetryPolicy{MaxAttempts: 5})
	err := c.postJSON("/x", struct{}{}, nil)
	if !errors.Is(err, lora.ErrStoreFull) {
		t.Fatalf("err = %v, want ErrStoreFull", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls: store-full must never be blind-retried", calls.Load())
	}
}

func TestClientBackoffExponentialAndCapped(t *testing.T) {
	c := NewClient("http://127.0.0.1:1")
	c.SetRetry(RetryPolicy{MaxAttempts: 8, BaseDelay: 100 * time.Millisecond,
		MaxDelay: 400 * time.Millisecond, Jitter: 0.2})
	// Jitter is ±10% around the nominal delay, so bounds are 0.9x–1.1x.
	for i, nominal := range map[int]time.Duration{
		1: 100 * time.Millisecond, // base
		2: 200 * time.Millisecond, // doubled
		3: 400 * time.Millisecond, // capped
		6: 400 * time.Millisecond, // stays capped
	} {
		d := c.backoff(i, 0)
		lo := nominal - nominal/10 - time.Millisecond
		hi := nominal + nominal/10 + time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("backoff(%d) = %v, want within [%v, %v]", i, d, lo, hi)
		}
	}
	// A server hint always wins.
	if got := c.backoff(3, 7*time.Second); got != 7*time.Second {
		t.Fatalf("hinted backoff = %v, want 7s", got)
	}
}

// TestEnqueueIdempotentAcrossDroppedResponse is the exactly-once
// resubmission proof: the first enqueue executes on the runner but its
// response is dropped; the retry carries the same idempotency key, so
// the runner replays the recorded answer instead of double-admitting.
func TestEnqueueIdempotentAcrossDroppedResponse(t *testing.T) {
	_, srv := startRunner(t, "rIdem", 8)

	plan, err := ParseNetFaultPlan("rsp-drop=at:0s,hold:1s")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewNetFaultInjector(plan)
	// First transport call happens inside the drop window, all later
	// ones after it healed.
	var callN atomic.Int64
	inj.now = func() time.Duration {
		if callN.Add(1) == 1 {
			return 500 * time.Millisecond
		}
		return 2 * time.Second
	}
	c := NewClientWithTransport(srv.URL, inj.Transport(0, nil))
	c.SetRetry(RetryPolicy{MaxAttempts: 3})
	c.sleep = func(time.Duration) {}

	// Long output keeps the request resident while we check state.
	req := &core.Request{ID: 77, Model: lora.ModelID(2), PromptLen: 32, OutputLen: 100000}
	if err := c.Enqueue(req, 0); err != nil {
		t.Fatalf("enqueue with dropped response: %v", err)
	}
	if got := inj.Stats().DroppedResponses; got != 1 {
		t.Fatalf("dropped responses = %d, want 1", got)
	}
	if c.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", c.Retries())
	}
	st, err := c.FetchState()
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkingSet != 1 {
		t.Fatalf("working set = %d, want exactly 1: the retry must not double-admit", st.WorkingSet)
	}
}

// TestIdemTableReplaysAndEvicts covers the dedup table directly.
func TestIdemTableReplaysAndEvicts(t *testing.T) {
	var execs atomic.Int64
	tbl := newIdemTable(2)
	h := tbl.wrap(func(w http.ResponseWriter, _ *http.Request) {
		n := execs.Add(1)
		w.Header().Set("X-N", "set")
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte{'n', byte('0' + n)})
	})
	do := func(key string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/x", nil)
		if key != "" {
			req.Header.Set(idemHeader, key)
		}
		rr := httptest.NewRecorder()
		h(rr, req)
		return rr
	}
	first := do("k1")
	replay := do("k1")
	if execs.Load() != 1 {
		t.Fatalf("handler executed %d times for one key, want 1", execs.Load())
	}
	if replay.Code != first.Code || replay.Body.String() != first.Body.String() ||
		replay.Header().Get("X-N") != "set" {
		t.Fatalf("replay differs: %d %q vs %d %q", replay.Code, replay.Body.String(),
			first.Code, first.Body.String())
	}
	// No key: always executes.
	do("")
	do("")
	if execs.Load() != 3 {
		t.Fatalf("keyless calls must always execute, execs = %d", execs.Load())
	}
	// Eviction: capacity 2, so k1 falls out after k2 and k3; a late k1
	// retry re-executes (narrow-window semantics, not an error).
	do("k2")
	do("k3")
	do("k1")
	if execs.Load() != 6 {
		t.Fatalf("evicted key must re-execute, execs = %d", execs.Load())
	}
}

// TestRetryCountersDeterministicForSeed: with a pinned fault clock and a
// serial call sequence, the same plan seed yields byte-identical retry
// and fault counters run-to-run; that is what makes net-chaos runs
// reproducible.
func TestRetryCountersDeterministicForSeed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(srv.Close)

	run := func() (int64, NetFaultStats, []bool) {
		plan, err := ParseNetFaultPlan("seed=99; drop=at:0s,hold:1h,p:0.5")
		if err != nil {
			t.Fatal(err)
		}
		inj := NewNetFaultInjector(plan)
		inj.now = func() time.Duration { return time.Minute }
		c := NewClientWithTransport(srv.URL, inj.Transport(0, nil))
		c.SetRetry(RetryPolicy{MaxAttempts: 3})
		c.sleep = func(time.Duration) {}
		var outcomes []bool
		for i := 0; i < 40; i++ {
			outcomes = append(outcomes, c.postJSON("/x", struct{}{}, nil) == nil)
		}
		return c.Retries(), inj.Stats(), outcomes
	}
	r1, s1, o1 := run()
	r2, s2, o2 := run()
	if r1 != r2 || s1 != s2 {
		t.Fatalf("same seed diverged: retries %d vs %d, stats %+v vs %+v", r1, r2, s1, s2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("call %d outcome diverged", i)
		}
	}
	if r1 == 0 {
		t.Fatal("plan never triggered a retry")
	}
}
