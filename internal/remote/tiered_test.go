package remote

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"punica/internal/core"
	"punica/internal/hw"
	"punica/internal/lora"
)

// TestRunnerStateReportsTiers: a tiered runner's /runner/state carries
// the staging-tier counters; a flat runner's omits them.
func TestRunnerStateReportsTiers(t *testing.T) {
	cfg := runnerConfig()
	bytes := cfg.Model.LoRABytes(cfg.Rank)
	cfg.Tiers = []lora.TierSpec{
		{Name: "ssd", CapacityBytes: 64 * bytes,
			Link: hw.Link{Name: "ssd", Bandwidth: 2e9, Latency: time.Millisecond}},
		{Name: "ram", CapacityBytes: 16 * bytes,
			Link: hw.Link{Name: "ram", Bandwidth: 8e9, Latency: 100 * time.Microsecond}},
	}
	r := NewRunner("tiered-0", cfg, 5000)
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		srv.Close()
		r.Close()
	})

	client := NewClient(srv.URL)
	if err := client.Enqueue(&core.Request{ID: 1, Model: 5, PromptLen: 32, OutputLen: 4}, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(client.StreamURL(1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var st State
	stateResp, err := http.Get(srv.URL + "/runner/state")
	if err != nil {
		t.Fatal(err)
	}
	defer stateResp.Body.Close()
	if err := json.NewDecoder(stateResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Tiers) != 3 {
		t.Fatalf("tier rows = %d, want ssd/ram/hbm: %+v", len(st.Tiers), st.Tiers)
	}
	if st.Tiers[0].Tier != "ssd" || st.Tiers[2].Tier != "hbm" {
		t.Fatalf("tier order: %+v", st.Tiers)
	}
	if st.Tiers[0].BytesIn == 0 || st.ColdStarts == 0 {
		t.Fatalf("cold load not recorded: %+v coldstarts=%d", st.Tiers[0], st.ColdStarts)
	}

	// Flat runner: no tier rows on the wire.
	_, flatSrv := startRunner(t, "flat-0", 0)
	flatResp, err := http.Get(flatSrv.URL + "/runner/state")
	if err != nil {
		t.Fatal(err)
	}
	defer flatResp.Body.Close()
	var flat State
	if err := json.NewDecoder(flatResp.Body).Decode(&flat); err != nil {
		t.Fatal(err)
	}
	if len(flat.Tiers) != 0 || flat.ColdStarts != 0 {
		t.Fatalf("flat runner reported tiers: %+v", flat.Tiers)
	}
}
