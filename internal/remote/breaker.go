package remote

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state circuit breaker.
type BreakerState int

const (
	// BreakerClosed passes traffic; consecutive failures count up.
	BreakerClosed BreakerState = iota
	// BreakerOpen quarantines the link: placement is refused until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets probe traffic through; enough successes close
	// the breaker, one failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a per-runner circuit breaker. The zero value
// disables breaking (Threshold 0).
type BreakerConfig struct {
	// Threshold is the consecutive transport-failure count that opens
	// the breaker. 0 disables the breaker entirely.
	Threshold int
	// Cooldown is how long an open breaker quarantines the runner before
	// letting probe traffic test it (default 3s).
	Cooldown time.Duration
	// HalfOpenSuccesses is how many consecutive successes in half-open
	// close the breaker again (default 2).
	HalfOpenSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Cooldown <= 0 {
		c.Cooldown = 3 * time.Second
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 2
	}
	return c
}

// Breaker quarantines a flapping runner instead of letting the
// scheduler fail and re-attach it over and over: consecutive transport
// failures open it, placement is refused while open, and the health
// prober's continuing traffic walks it through half-open back to closed
// once the link genuinely recovers. Only transport-level outcomes feed
// it — an HTTP error status proves the link works.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    BreakerState
	fails    int
	succs    int
	openedAt time.Time
	opens    int64
}

// NewBreaker builds a breaker; cfg.Threshold must be > 0 for it to ever
// open.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// Failure records one transport-level failure.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case BreakerClosed:
		b.fails++
		if b.cfg.Threshold > 0 && b.fails >= b.cfg.Threshold {
			b.openLocked()
		}
	case BreakerHalfOpen:
		// The probe failed: the runner is still sick.
		b.openLocked()
	}
}

// Success records one transport-level success.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		b.succs++
		if b.succs >= b.cfg.HalfOpenSuccesses {
			b.state = BreakerClosed
			b.fails = 0
		}
	}
	// Open: a straggling in-flight success says nothing about the link
	// now — ignored; the half-open probes decide.
}

func (b *Breaker) openLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.opens++
	b.fails = 0
	b.succs = 0
}

// stateLocked applies the lazy open→half-open transition. Callers hold
// b.mu.
func (b *Breaker) stateLocked() BreakerState {
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = BreakerHalfOpen
		b.succs = 0
	}
	return b.state
}

// State returns the current state (applying cooldown expiry).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

// PlacementAllowed reports whether the scheduler may place new work on
// this runner: only when closed. Half-open admits probe traffic, not
// placements.
func (b *Breaker) PlacementAllowed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked() == BreakerClosed
}

// Opens counts closed/half-open → open transitions.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
