package remote

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"punica/internal/core"
)

// startRoleRunner boots a runner at a moderate speedup: fast enough for
// tests, slow enough that a request's decode phase spans many wall-clock
// milliseconds — the window mid-generation migration needs.
func startRoleRunner(t *testing.T, uuid string, role core.Role, speedup float64) (*Runner, *httptest.Server) {
	t.Helper()
	cfg := runnerConfig()
	cfg.Role = role
	r := NewRunner(uuid, cfg, speedup)
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		srv.Close()
		r.Close()
	})
	return r, srv
}

// TestRunnerKVWireRoundTrip drives an export → import over the HTTP API
// directly: the handle crosses the wire page-exactly and the decode
// runner finishes the request without recomputation.
func TestRunnerKVWireRoundTrip(t *testing.T) {
	_, psrv := startRoleRunner(t, "prefill-0", core.RolePrefill, 100)
	_, dsrv := startRoleRunner(t, "decode-0", core.RoleDecode, 5000)
	pc, dc := NewClient(psrv.URL), NewClient(dsrv.URL)

	req := &core.Request{ID: 1, Model: 3, PromptLen: 128, OutputLen: 512}
	if err := pc.Enqueue(req, 0); err != nil {
		t.Fatal(err)
	}
	// Decode runners reject raw enqueues over the wire.
	if err := dc.Enqueue(&core.Request{ID: 2, Model: 3, PromptLen: 16, OutputLen: 4}, 0); err == nil {
		t.Fatal("decode runner accepted a raw enqueue")
	}

	// Wait until the prefill runner reports the request migratable.
	var ids []int64
	deadline := time.Now().Add(5 * time.Second)
	for len(ids) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became migratable on the prefill runner")
		}
		ids = pc.Migratable()
		time.Sleep(5 * time.Millisecond)
	}

	h, err := pc.ExportKV(ids[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.KV.Bytes == 0 || h.KV.Tokens < req.PromptLen {
		t.Fatalf("wire handle = %+v, want sized payload", h.KV)
	}
	if err := dc.ImportKV(h, 0); err != nil {
		t.Fatal(err)
	}

	// The decode runner streams the remaining tokens; indices continue
	// from the prefill-side first token.
	resp, err := http.Get(dc.StreamURL(1))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []TokenEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev TokenEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) == 0 || !events[len(events)-1].EOS {
		t.Fatalf("decode stream ended without EOS (%d events)", len(events))
	}
	// The import seeds the stream with the deterministic prefix the
	// prefill runner already emitted, so a reader that attaches only
	// after the migration still sees every index from zero — exactly
	// once, in order (proxies that already delivered the prefix dedup
	// by index).
	if len(events) != req.OutputLen {
		t.Fatalf("decode stream carried %d events, want %d (prefix + remainder)",
			len(events), req.OutputLen)
	}
	for i, ev := range events {
		if ev.Index != i {
			t.Fatalf("event %d has index %d — gap or duplicate across the handoff", i, ev.Index)
		}
	}
	if events[h.Request.Generated-1].TokenID != core.TokenIDFor(1, h.Request.Generated-1, runnerConfig().Model.VocabSize) {
		t.Fatal("replayed prefix token id does not match the deterministic derivation")
	}
	st, err := dc.FetchState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "decode" {
		t.Fatalf("decode runner reports role %q", st.Role)
	}
}

// TestFrontendDisaggregatedStream is the whole-stack test: a frontend
// over one prefill and one decode runner serves a user request whose
// tokens arrive exactly once, in order, across the mid-generation KV
// migration between runners.
func TestFrontendDisaggregatedStream(t *testing.T) {
	_, psrv := startRoleRunner(t, "prefill-0", core.RolePrefill, 20)
	_, dsrv := startRoleRunner(t, "decode-0", core.RoleDecode, 20)

	f := NewFrontendWithOptions([]string{psrv.URL, dsrv.URL}, FrontendOptions{
		DrainInterval:  5 * time.Millisecond,
		HealthInterval: 20 * time.Millisecond,
	})
	defer f.Close()
	fs := httptest.NewServer(f.Handler())
	defer fs.Close()

	body := `{"model": 4, "prompt_len": 96, "max_tokens": 48}`
	resp, err := http.Post(fs.URL+"/v1/generate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate -> %d", resp.StatusCode)
	}
	var events []TokenEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev TokenEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) != 48 {
		t.Fatalf("user received %d tokens, want 48 exactly once", len(events))
	}
	for i, ev := range events {
		if ev.Index != i {
			t.Fatalf("token %d has index %d — duplicate or gap across the migration", i, ev.Index)
		}
	}
	if !events[47].EOS {
		t.Fatal("final token not EOS")
	}

	// The migration actually happened: the frontend's scheduler counted
	// it and the decode runner generated tokens.
	var stats struct {
		KVMigrations int64 `json:"kv_migrations"`
		Runners      []State
	}
	sresp, err := http.Get(fs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.KVMigrations == 0 {
		t.Fatal("frontend performed no KV migrations")
	}
}
