package remote

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Network fault injection for the frontend↔runner links. A NetFaultPlan
// describes a deterministic schedule of link faults — latency spikes,
// request drops, response drops, and full partitions, each with a
// ramp/hold/heal envelope — and NetFaultInjector applies it as an
// http.RoundTripper wrapper, so neither the frontend nor the runner code
// knows faults exist. All randomness is a pure hash of (seed, link,
// event, per-link call sequence): the same plan replays the same faults.

// NetFaultKind enumerates the injectable link faults.
type NetFaultKind int

const (
	// FaultLatency adds wall latency to each call on the link.
	FaultLatency NetFaultKind = iota
	// FaultDropRequest drops the call before it reaches the runner.
	FaultDropRequest
	// FaultDropResponse delivers the call but drops the response on the
	// way back — the runner-side effect happened, the caller sees a
	// transport error. This is the fault idempotency keys exist for.
	FaultDropResponse
	// FaultPartition refuses everything on the link.
	FaultPartition
)

// String returns the plan-grammar keyword for the kind.
func (k NetFaultKind) String() string {
	switch k {
	case FaultLatency:
		return "lat"
	case FaultDropRequest:
		return "drop"
	case FaultDropResponse:
		return "rsp-drop"
	case FaultPartition:
		return "part"
	default:
		return fmt.Sprintf("NetFaultKind(%d)", int(k))
	}
}

// NetFaultEvent is one fault window with a trapezoid intensity envelope:
// zero before At, ramping to full over Ramp, full for Hold, healing back
// to zero over Heal.
type NetFaultEvent struct {
	Kind NetFaultKind
	// At is the window start, measured from injector creation.
	At time.Duration
	// Ramp is the 0→full onset width (0 = instant).
	Ramp time.Duration
	// Hold is how long the fault stays at full intensity.
	Hold time.Duration
	// Heal is the full→0 recovery width (0 = instant).
	Heal time.Duration
	// P is the peak fault probability for drop/rsp-drop/part (default 1).
	P float64
	// Add is the peak added latency for lat events.
	Add time.Duration
	// Link targets one link index; -1 (the default) hits every link.
	Link int
}

// scale returns the trapezoid intensity in [0, 1] at time t.
func (e NetFaultEvent) scale(t time.Duration) float64 {
	t -= e.At
	if t < 0 {
		return 0
	}
	if t < e.Ramp {
		return float64(t) / float64(e.Ramp)
	}
	t -= e.Ramp
	if t < e.Hold {
		return 1
	}
	t -= e.Hold
	if t < e.Heal {
		return 1 - float64(t)/float64(e.Heal)
	}
	return 0
}

func (e NetFaultEvent) appliesTo(link int) bool {
	return e.Link < 0 || e.Link == link
}

// clause renders the event in the plan grammar (String's inverse is
// ParseNetFaultPlan).
func (e NetFaultEvent) clause() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	b.WriteString("=at:")
	b.WriteString(e.At.String())
	if e.Ramp > 0 {
		b.WriteString(",ramp:" + e.Ramp.String())
	}
	if e.Hold > 0 {
		b.WriteString(",hold:" + e.Hold.String())
	}
	if e.Heal > 0 {
		b.WriteString(",heal:" + e.Heal.String())
	}
	if e.Kind == FaultLatency {
		b.WriteString(",add:" + e.Add.String())
	} else if e.P != 1 {
		b.WriteString(",p:" + strconv.FormatFloat(e.P, 'g', -1, 64))
	}
	if e.Link >= 0 {
		b.WriteString(",link:" + strconv.Itoa(e.Link))
	}
	return b.String()
}

// NetFaultPlan is a seeded schedule of link faults.
type NetFaultPlan struct {
	Seed   int64
	Events []NetFaultEvent
}

// Empty reports whether the plan injects nothing.
func (p NetFaultPlan) Empty() bool { return len(p.Events) == 0 }

// String renders the plan in the grammar ParseNetFaultPlan accepts.
func (p NetFaultPlan) String() string {
	parts := make([]string, 0, len(p.Events)+1)
	if p.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(p.Seed, 10))
	}
	for _, e := range p.Events {
		parts = append(parts, e.clause())
	}
	return strings.Join(parts, "; ")
}

// ParseNetFaultPlan parses the fault-plan mini-language: `;`-separated
// `key=value` clauses in the same style as the traffic-spec grammar.
//
//	seed=42                                — hash seed for fault draws
//	lat=at:10s,ramp:2s,hold:5s,heal:2s,add:200ms
//	drop=at:0s,hold:5s,p:0.3               — drop 30% of requests
//	rsp-drop=at:0s,hold:5s,p:0.2,link:1    — drop 20% of responses, link 1
//	part=at:20s,hold:10s,link:0            — full partition of link 0
//
// Sub-fields: at (window start), ramp/hold/heal (trapezoid widths, at
// least one > 0), p (peak probability, drop kinds only, default 1), add
// (peak added latency, lat only, required), link (target link index,
// default all links). The lat/drop/rsp-drop/part clauses repeat freely;
// overlapping windows compose (latencies add, drop draws are
// independent).
func ParseNetFaultPlan(s string) (NetFaultPlan, error) {
	plan := NetFaultPlan{}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return plan, fmt.Errorf("net-fault plan: clause %q is not key=value", clause)
		}
		key = strings.TrimSpace(key)
		var err error
		switch key {
		case "seed":
			plan.Seed, err = strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		case "lat", "drop", "rsp-drop", "part":
			var ev NetFaultEvent
			ev, err = parseNetFaultEvent(key, val)
			if err == nil {
				plan.Events = append(plan.Events, ev)
			}
		default:
			return plan, fmt.Errorf("net-fault plan: unknown key %q", key)
		}
		if err != nil {
			return plan, fmt.Errorf("net-fault plan: %s=%s: %w", key, val, err)
		}
	}
	return plan, nil
}

func parseNetFaultEvent(key, val string) (NetFaultEvent, error) {
	kinds := map[string]NetFaultKind{
		"lat":      FaultLatency,
		"drop":     FaultDropRequest,
		"rsp-drop": FaultDropResponse,
		"part":     FaultPartition,
	}
	ev := NetFaultEvent{Kind: kinds[key], P: 1, Link: -1}
	for _, field := range strings.Split(val, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, ":")
		if !ok {
			return ev, fmt.Errorf("field %q is not k:v", field)
		}
		var err error
		switch k {
		case "at":
			ev.At, err = parseFaultDuration(v)
		case "ramp":
			ev.Ramp, err = parseFaultDuration(v)
		case "hold":
			ev.Hold, err = parseFaultDuration(v)
		case "heal":
			ev.Heal, err = parseFaultDuration(v)
		case "p":
			if ev.Kind == FaultLatency {
				return ev, fmt.Errorf("p applies to drop/rsp-drop/part, not lat")
			}
			ev.P, err = strconv.ParseFloat(v, 64)
			if err == nil && (ev.P < 0 || ev.P > 1) {
				err = fmt.Errorf("probability %v outside [0, 1]", ev.P)
			}
		case "add":
			if ev.Kind != FaultLatency {
				return ev, fmt.Errorf("add applies to lat only")
			}
			ev.Add, err = parseFaultDuration(v)
			if err == nil && ev.Add <= 0 {
				err = fmt.Errorf("added latency must be positive")
			}
		case "link":
			ev.Link, err = strconv.Atoi(v)
			if err == nil && ev.Link < 0 {
				err = fmt.Errorf("link index must be >= 0")
			}
		default:
			return ev, fmt.Errorf("unknown field %q", k)
		}
		if err != nil {
			return ev, fmt.Errorf("%s: %w", k, err)
		}
	}
	if ev.Ramp+ev.Hold+ev.Heal <= 0 {
		return ev, fmt.Errorf("zero-width window: set ramp, hold or heal")
	}
	if ev.Kind == FaultLatency && ev.Add <= 0 {
		return ev, fmt.Errorf("lat requires add")
	}
	return ev, nil
}

func parseFaultDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("duration %v is negative", d)
	}
	return d, nil
}

// NetFaultError is the transport error surfaced for an injected fault.
// Timeout() is false: an injected drop looks like a hard connection
// failure, not a slow peer — probe classification treats it as refusal.
type NetFaultError struct {
	Kind NetFaultKind
	Link int
}

func (e *NetFaultError) Error() string {
	return fmt.Sprintf("netfault: injected %s on link %d", e.Kind, e.Link)
}

// Timeout implements net.Error.
func (e *NetFaultError) Timeout() bool { return false }

// Temporary implements net.Error (deprecated in net, but cheap to honor).
func (e *NetFaultError) Temporary() bool { return true }

// NetFaultStats counts injected faults.
type NetFaultStats struct {
	Delays            int64 `json:"delays"`
	DroppedRequests   int64 `json:"dropped_requests"`
	DroppedResponses  int64 `json:"dropped_responses"`
	PartitionRefusals int64 `json:"partition_refusals"`
}

// NetFaultInjector applies a NetFaultPlan to HTTP links. One injector
// covers a fleet: Transport(link, base) wraps the transport for one
// frontend↔runner link, and fault draws are a pure hash of (plan seed,
// link, event index, per-link call sequence) so a fixed plan replays the
// same faults call-for-call.
type NetFaultInjector struct {
	plan  NetFaultPlan
	start time.Time
	// now returns elapsed plan time; tests override for determinism.
	now func() time.Duration

	mu  sync.Mutex
	seq map[int]uint64

	delays     atomic.Int64
	droppedReq atomic.Int64
	droppedRsp atomic.Int64
	partitions atomic.Int64
}

// NewNetFaultInjector starts a plan's clock at call time.
func NewNetFaultInjector(plan NetFaultPlan) *NetFaultInjector {
	n := &NetFaultInjector{
		plan:  plan,
		start: time.Now(),
		seq:   make(map[int]uint64),
	}
	n.now = func() time.Duration { return time.Since(n.start) }
	return n
}

// Stats snapshots the injected-fault counters.
func (n *NetFaultInjector) Stats() NetFaultStats {
	return NetFaultStats{
		Delays:            n.delays.Load(),
		DroppedRequests:   n.droppedReq.Load(),
		DroppedResponses:  n.droppedRsp.Load(),
		PartitionRefusals: n.partitions.Load(),
	}
}

// Plan returns the injector's schedule.
func (n *NetFaultInjector) Plan() NetFaultPlan { return n.plan }

// Transport wraps base (nil = http.DefaultTransport) with the plan's
// faults for one link.
func (n *NetFaultInjector) Transport(link int, base http.RoundTripper) http.RoundTripper {
	return &faultTransport{inj: n, link: link, base: base}
}

func (n *NetFaultInjector) nextSeq(link int) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq[link]++
	return n.seq[link]
}

// faultMix64 is the splitmix64 finalizer: every fault draw is one of
// these chains, never mutable PRNG state.
func faultMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// draw returns a uniform [0, 1) decided purely by (seed, link, event,
// seq).
func (n *NetFaultInjector) draw(link, event int, seq uint64) float64 {
	h := faultMix64(uint64(n.plan.Seed) ^ 0xd1b54a32d192ed03)
	h = faultMix64(h ^ uint64(link)*0x9e3779b97f4a7c15)
	h = faultMix64(h ^ uint64(event)*0xbf58476d1ce4e5b9)
	h = faultMix64(h ^ seq)
	return float64(h>>11) / (1 << 53)
}

type faultTransport struct {
	inj  *NetFaultInjector
	link int
	base http.RoundTripper
}

func (ft *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	inj := ft.inj
	t := inj.now()
	seq := inj.nextSeq(ft.link)
	var delay time.Duration
	dropResponse := false
	for i, e := range inj.plan.Events {
		if !e.appliesTo(ft.link) {
			continue
		}
		s := e.scale(t)
		if s <= 0 {
			continue
		}
		switch e.Kind {
		case FaultLatency:
			delay += time.Duration(float64(e.Add) * s)
		case FaultDropRequest:
			if p := e.P * s; p >= 1 || inj.draw(ft.link, i, seq) < p {
				inj.droppedReq.Add(1)
				closeRequestBody(req)
				return nil, &NetFaultError{Kind: e.Kind, Link: ft.link}
			}
		case FaultPartition:
			if p := e.P * s; p >= 1 || inj.draw(ft.link, i, seq) < p {
				inj.partitions.Add(1)
				closeRequestBody(req)
				return nil, &NetFaultError{Kind: e.Kind, Link: ft.link}
			}
		case FaultDropResponse:
			if p := e.P * s; p >= 1 || inj.draw(ft.link, i, seq) < p {
				dropResponse = true
			}
		}
	}
	if delay > 0 {
		inj.delays.Add(1)
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			closeRequestBody(req)
			return nil, req.Context().Err()
		}
	}
	base := ft.base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if inj.hasPartitionFor(ft.link) {
		// A real partition kills established connections too: wrap the
		// body so reads fail while a full partition is active — this is
		// what severs a long-lived token stream mid-flight.
		resp.Body = &faultBody{body: resp.Body, inj: inj, link: ft.link}
	}
	if dropResponse {
		// The call executed on the runner; only its answer is lost. The
		// caller must treat this like any transport failure — and must
		// not blindly resubmit non-idempotent work.
		resp.Body.Close()
		inj.droppedRsp.Add(1)
		return nil, &NetFaultError{Kind: FaultDropResponse, Link: ft.link}
	}
	return resp, nil
}

// closeRequestBody honors the RoundTripper contract: even on error the
// transport owns and must close the request body.
func closeRequestBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// hasPartitionFor reports whether any partition event targets the link
// (at any time) — the cheap gate for body wrapping.
func (n *NetFaultInjector) hasPartitionFor(link int) bool {
	for _, e := range n.plan.Events {
		if e.Kind == FaultPartition && e.appliesTo(link) {
			return true
		}
	}
	return false
}

// partitionActive reports whether a full (p·scale >= 1) partition
// covers the link right now. Partial drop probabilities affect new
// calls only; severing established connections is a full partition's
// behavior.
func (n *NetFaultInjector) partitionActive(link int) bool {
	t := n.now()
	for _, e := range n.plan.Events {
		if e.Kind == FaultPartition && e.appliesTo(link) && e.P*e.scale(t) >= 1 {
			return true
		}
	}
	return false
}

// faultBody fails reads while a full partition covers the link.
type faultBody struct {
	body io.ReadCloser
	inj  *NetFaultInjector
	link int
}

func (b *faultBody) Read(p []byte) (int, error) {
	if b.inj.partitionActive(b.link) {
		b.body.Close()
		b.inj.partitions.Add(1)
		return 0, &NetFaultError{Kind: FaultPartition, Link: b.link}
	}
	return b.body.Read(p)
}

func (b *faultBody) Close() error { return b.body.Close() }
