package remote

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"punica/internal/core"
	"punica/internal/hw"
	"punica/internal/lora"
	"punica/internal/models"
	"punica/internal/serve"
)

func runnerConfig() core.Config {
	return core.Config{
		System: core.PunicaSystem(),
		GPU:    hw.A100(),
		Model:  models.Llama2_7B(),
		Rank:   models.DefaultLoRARank,
	}
}

func startRunner(t *testing.T, uuid string, maxBatch int) (*Runner, *httptest.Server) {
	t.Helper()
	cfg := runnerConfig()
	if maxBatch > 0 {
		cfg.System.MaxBatch = maxBatch
	}
	r := NewRunner(uuid, cfg, 5000)
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		srv.Close()
		r.Close()
	})
	return r, srv
}

func TestRunnerEnqueueAndStream(t *testing.T) {
	_, srv := startRunner(t, "r0", 0)
	client := NewClient(srv.URL)

	req := &core.Request{ID: 1, Model: 7, PromptLen: 64, OutputLen: 6}
	if !client.CanAdmit(req) {
		t.Fatal("fresh runner should admit")
	}
	if err := client.Enqueue(req, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(client.StreamURL(1))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []TokenEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev TokenEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) != 6 || !events[5].EOS {
		t.Fatalf("streamed %d events (EOS=%v), want 6 with EOS", len(events), events[len(events)-1].EOS)
	}
}

func TestRunnerStateAndWorker(t *testing.T) {
	_, srv := startRunner(t, "r1", 8)
	client := NewClient(srv.URL)
	st, err := client.FetchState()
	if err != nil {
		t.Fatal(err)
	}
	if st.UUID != "r1" || st.MaxBatch != 8 || st.TotalPages == 0 {
		t.Fatalf("state malformed: %+v", st)
	}
	if client.MaxBatch() != 8 {
		t.Fatalf("MaxBatch = %d", client.MaxBatch())
	}
	if client.WorkingSet() != 0 {
		t.Fatal("fresh runner should be empty")
	}
	if err := client.Enqueue(&core.Request{ID: 5, Model: 1, PromptLen: 32, OutputLen: 1000000}, 0); err != nil {
		t.Fatal(err)
	}
	if client.WorkingSet() != 1 {
		t.Fatal("working set should reflect the enqueue")
	}
	// Cancel returns migration state.
	time.Sleep(50 * time.Millisecond) // let some tokens generate
	got := client.Cancel(5, 0)
	if got == nil || got.ID != 5 {
		t.Fatalf("cancel returned %+v", got)
	}
	if client.WorkingSet() != 0 {
		t.Fatal("cancel should empty the runner")
	}
}

// TestClientSnapshotRoundTrip pins the policy framework's remote
// contract: one GET /runner/state carries the whole scheduling view —
// admission constraints plus resident adapters with pin state — so a
// scheduling decision costs one round-trip instead of a CanAdmit +
// WorkingSet pair per GPU.
func TestClientSnapshotRoundTrip(t *testing.T) {
	_, srv := startRunner(t, "r5", 8)
	client := NewClient(srv.URL)

	snap := client.Snapshot()
	if snap.MaxBatch != 8 || snap.TotalKVPages == 0 || snap.PageSize == 0 || !snap.PagedKV {
		t.Fatalf("fresh snapshot malformed: %+v", snap)
	}
	if !snap.CanAdmit(&core.Request{PromptLen: 32, OutputLen: 8}) {
		t.Fatal("fresh runner snapshot should admit")
	}
	if err := client.Enqueue(&core.Request{ID: 9, Model: 42, PromptLen: 32, OutputLen: 100000}, 0); err != nil {
		t.Fatal(err)
	}
	snap = client.Snapshot()
	if snap.WorkingSet != 1 {
		t.Fatalf("working set = %d after enqueue", snap.WorkingSet)
	}
	a, ok := snap.Adapter(42)
	if !ok || !a.Pinned || a.Rank != models.DefaultLoRARank || a.Bytes <= 0 {
		t.Fatalf("adapter state did not cross the wire: %+v (ok=%v)", a, ok)
	}
	if snap.StorePinnedBytes != a.Bytes || snap.StoreCapacityBytes <= 0 {
		t.Fatalf("store accounting malformed: pinned=%d capacity=%d want pinned=%d",
			snap.StorePinnedBytes, snap.StoreCapacityBytes, a.Bytes)
	}
}

func TestRunnerEvictForMigration(t *testing.T) {
	_, srv := startRunner(t, "r2", 8)
	client := NewClient(srv.URL)
	for i := int64(1); i <= 2; i++ {
		if err := client.Enqueue(&core.Request{
			ID: i, Model: lora.ModelID(i), PromptLen: 32, OutputLen: 100000,
			Arrival: time.Duration(i) * time.Millisecond,
		}, 0); err != nil {
			t.Fatal(err)
		}
	}
	victim := client.EvictNewest(0)
	if victim == nil || victim.ID != 2 {
		t.Fatalf("evicted %+v, want newest (id 2)", victim)
	}
	if client.EvictNewest(0) == nil {
		t.Fatal("second evict should return the remaining request")
	}
	if client.EvictNewest(0) != nil {
		t.Fatal("empty runner should evict nothing")
	}
}

func TestClientDegradesSafely(t *testing.T) {
	client := NewClient("http://127.0.0.1:1") // nothing listens here
	if client.CanAdmit(&core.Request{PromptLen: 1, OutputLen: 1}) {
		t.Fatal("unreachable runner must refuse admission")
	}
	if snap := client.Snapshot(); snap.CanAdmit(&core.Request{PromptLen: 1, OutputLen: 1}) {
		t.Fatal("unreachable runner's zero snapshot must refuse admission")
	}
	if client.WorkingSet() != 0 {
		t.Fatal("unreachable runner working set should read 0")
	}
	if client.LastErr() == nil {
		t.Fatal("transport error should be recorded")
	}
	if client.Cancel(1, 0) != nil || client.EvictNewest(0) != nil {
		t.Fatal("unreachable runner should return nil state")
	}
}

func TestFrontendEndToEnd(t *testing.T) {
	_, srvA := startRunner(t, "rA", 0)
	_, srvB := startRunner(t, "rB", 0)
	f := NewFrontend([]string{srvA.URL, srvB.URL}, 10*time.Millisecond)
	defer f.Close()
	front := httptest.NewServer(f.Handler())
	defer front.Close()

	// Three tenants through the frontend, concurrently.
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(model int64) {
			defer wg.Done()
			body, _ := json.Marshal(serve.GenerateRequest{
				Model: model, PromptLen: 48, MaxTokens: 5,
			})
			resp, err := http.Post(front.URL+"/v1/generate", "application/json",
				bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			count := 0
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				count++
			}
			if count != 5 {
				errs <- bufio.ErrTooLong // placeholder sentinel
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Stats aggregates both runners.
	resp, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Runners  []State `json:"runners"`
		QueueLen int     `json:"queue_len"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Runners) != 2 {
		t.Fatalf("stats has %d runners", len(stats.Runners))
	}
	total := stats.Runners[0].Tokens + stats.Runners[1].Tokens
	if total != 15 {
		t.Fatalf("runners generated %d tokens, want 15", total)
	}
}

func TestFrontendQueuesWhenSaturated(t *testing.T) {
	_, srv := startRunner(t, "rQ", 1) // batch cap 1
	f := NewFrontend([]string{srv.URL}, 5*time.Millisecond)
	defer f.Close()

	// Two long-ish requests: the second must queue and then complete.
	done := make(chan error, 2)
	for i := 1; i <= 2; i++ {
		go func(model int64) {
			id, client, err := f.Submit(model, 32, 4, 30*time.Second)
			if err != nil {
				done <- err
				return
			}
			resp, err := http.Get(client.StreamURL(id))
			if err != nil {
				done <- err
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			n := 0
			for sc.Scan() {
				n++
			}
			if n != 4 {
				done <- bufio.ErrTooLong
				return
			}
			done <- nil
		}(int64(i))
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestWireRoundtrip(t *testing.T) {
	r := &core.Request{
		ID: 9, Model: 4, PromptLen: 100, OutputLen: 50,
		Arrival: 123 * time.Millisecond, Generated: 7,
	}
	back := fromCore(r).toCore()
	if back.ID != r.ID || back.Model != r.Model || back.PromptLen != r.PromptLen ||
		back.OutputLen != r.OutputLen || back.Arrival != r.Arrival ||
		back.Generated != r.Generated {
		t.Fatalf("wire roundtrip lost state: %+v vs %+v", back, r)
	}
}

func TestRunnerBadRequests(t *testing.T) {
	_, srv := startRunner(t, "rX", 0)
	// Malformed JSON on every POST endpoint.
	for _, path := range []string{"/runner/enqueue", "/runner/can_admit", "/runner/cancel"} {
		resp, err := http.Post(srv.URL+path, "application/json",
			bytes.NewReader([]byte("{broken")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
	// Bad stream id.
	resp, err := http.Get(srv.URL + "/runner/stream?id=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad stream id: status %d", resp.StatusCode)
	}
	// Unknown stream id.
	resp, err = http.Get(srv.URL + "/runner/stream?id=424242")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown stream: status %d", resp.StatusCode)
	}
	// Health endpoint.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp.StatusCode)
	}
	resp.Body.Close()
}

func TestRunnerLateStreamDrain(t *testing.T) {
	// A stream opened after generation completed must still deliver all
	// buffered tokens, exactly once.
	_, srv := startRunner(t, "rL", 0)
	client := NewClient(srv.URL)
	if err := client.Enqueue(&core.Request{ID: 3, Model: 2, PromptLen: 16, OutputLen: 5}, 0); err != nil {
		t.Fatal(err)
	}
	// Wait for completion.
	deadline := time.Now().Add(10 * time.Second)
	for client.WorkingSet() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("generation did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(client.StreamURL(3))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		n++
	}
	if n != 5 {
		t.Fatalf("late drain got %d tokens, want 5", n)
	}
	// The stream is removed after serving: second read is a 404.
	resp2, err := http.Get(client.StreamURL(3))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("re-read served twice: status %d", resp2.StatusCode)
	}
}

func TestFrontendStatsWithUnreachableRunner(t *testing.T) {
	_, srv := startRunner(t, "rOK", 0)
	f := NewFrontend([]string{srv.URL, "http://127.0.0.1:1"}, 10*time.Millisecond)
	defer f.Close()
	front := httptest.NewServer(f.Handler())
	defer front.Close()
	resp, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Runners []State `json:"runners"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Runners) != 2 {
		t.Fatalf("%d runners in stats", len(stats.Runners))
	}
	unreachable := 0
	for _, st := range stats.Runners {
		if st.UUID == "unreachable" {
			unreachable++
		}
	}
	if unreachable != 1 {
		t.Fatalf("%d unreachable runners reported, want 1", unreachable)
	}
	// Generation still works through the healthy runner.
	body, _ := json.Marshal(serve.GenerateRequest{Model: 1, PromptLen: 16, MaxTokens: 3})
	gen, err := http.Post(front.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Body.Close()
	n := 0
	sc := bufio.NewScanner(gen.Body)
	for sc.Scan() {
		n++
	}
	if n != 3 {
		t.Fatalf("degraded frontend streamed %d tokens, want 3", n)
	}
}

func TestFrontendBadRequests(t *testing.T) {
	_, srv := startRunner(t, "rB2", 0)
	f := NewFrontend([]string{srv.URL}, 10*time.Millisecond)
	defer f.Close()
	front := httptest.NewServer(f.Handler())
	defer front.Close()
	resp, err := http.Post(front.URL+"/v1/generate", "application/json",
		bytes.NewReader([]byte("{broken")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	body, _ := json.Marshal(serve.GenerateRequest{Model: 1, MaxTokens: 3})
	resp, err = http.Post(front.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty prompt: status %d", resp.StatusCode)
	}
}
