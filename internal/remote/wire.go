// Package remote implements Fig. 2's distributed deployment: GPU runners
// on their own servers expose an HTTP API, the scheduler drives them
// through a client that satisfies sched.Worker, and a frontend process
// terminates user connections and proxies token streams.
//
// Substitution note (DESIGN.md): the paper uses Rust processes with
// WebSocket unary RPC and streaming; here both are HTTP/1.1 — JSON for
// unary calls, chunked NDJSON for token streams. The scheduling logic is
// byte-for-byte the same code as the in-process path (internal/sched).
package remote

import (
	"time"

	"punica/internal/core"
	"punica/internal/kvcache"
	"punica/internal/lora"
)

// RequestState is the wire form of a request, carrying exactly the state
// migration needs (§5.3: the destination re-prefills the prompt plus all
// previously generated tokens).
type RequestState struct {
	ID        int64 `json:"id"`
	Model     int64 `json:"model"`
	PromptLen int   `json:"prompt_len"`
	OutputLen int   `json:"output_len"`
	ArrivalNS int64 `json:"arrival_ns"`
	Generated int   `json:"generated"`
}

// toCore converts wire state to an engine request.
func (w RequestState) toCore() *core.Request {
	return &core.Request{
		ID:        w.ID,
		Model:     lora.ModelID(w.Model),
		PromptLen: w.PromptLen,
		OutputLen: w.OutputLen,
		Arrival:   time.Duration(w.ArrivalNS),
		Generated: w.Generated,
	}
}

// fromCore converts an engine request to wire state.
func fromCore(r *core.Request) RequestState {
	return RequestState{
		ID:        r.ID,
		Model:     int64(r.Model),
		PromptLen: r.PromptLen,
		OutputLen: r.OutputLen,
		ArrivalNS: int64(r.Arrival),
		Generated: r.Generated,
	}
}

// AdmitQuery asks whether a runner can take a request right now.
type AdmitQuery struct {
	PromptLen int `json:"prompt_len"`
	OutputLen int `json:"output_len"`
	Generated int `json:"generated"`
}

// AdmitReply answers an AdmitQuery.
type AdmitReply struct {
	CanAdmit bool `json:"can_admit"`
}

// CancelRequest identifies a request to cancel or evict.
type CancelRequest struct {
	ID int64 `json:"id"`
}

// CancelReply returns the removed request's state for re-scheduling.
type CancelReply struct {
	Found   bool          `json:"found"`
	Request *RequestState `json:"request,omitempty"`
}

// DrainReply returns a runner's entire working set after a forced drain
// (POST /runner/drain): the wire form of core.Engine.Crash. Requests
// carry Generated so the recovering scheduler re-prefills prompt +
// generated on the new owner; LostKVTokens is the KvCache context the
// drain destroyed.
type DrainReply struct {
	Requests     []RequestState `json:"requests"`
	LostKVTokens int            `json:"lost_kv_tokens"`
}

// KVHandleWire is the wire form of a KV migration handle (POST
// /runner/kv): the request state plus the page-exact KvCache accounting
// whose Bytes sizes the transfer latency the importing runner charges.
type KVHandleWire struct {
	Request RequestState `json:"request"`
	Tokens  int          `json:"tokens"`
	Pages   int          `json:"pages"`
	Bytes   int64        `json:"bytes"`
}

// toCore reconstructs the engine-side handle.
func (w KVHandleWire) toCore() core.KVHandle {
	return core.KVHandle{
		Request: w.Request.toCore(),
		KV: kvcache.Handle{
			Seq:    kvcache.SeqID(w.Request.ID),
			Tokens: w.Tokens,
			Pages:  w.Pages,
			Bytes:  w.Bytes,
		},
	}
}

// handleFromCore converts an exported handle to wire form.
func handleFromCore(h core.KVHandle) KVHandleWire {
	return KVHandleWire{
		Request: fromCore(h.Request),
		Tokens:  h.KV.Tokens,
		Pages:   h.KV.Pages,
		Bytes:   h.KV.Bytes,
	}
}

// ExportRequest names the request whose KV should be exported (POST
// /runner/kv/export).
type ExportRequest struct {
	ID int64 `json:"id"`
}

// PrefetchRequest asks a runner to warm an adapter without pinning it
// (POST /runner/prefetch) — the disaggregation router's decode-target
// hint.
type PrefetchRequest struct {
	Model int64 `json:"model"`
}

// PrefetchReply reports whether the hint was accepted.
type PrefetchReply struct {
	Accepted bool `json:"accepted"`
}

// State is a runner's scheduling snapshot: the wire form of
// core.Snapshot plus runner identity and progress counters. One GET
// /runner/state carries everything a scheduling decision needs, so the
// scheduler never issues per-decision CanAdmit/WorkingSet round-trips.
type State struct {
	UUID string `json:"uuid"`
	// Version is the engine's mutation counter (core.Snapshot.Version).
	// It also feeds the endpoint's ETag ("<boot-nonce>-v<version>"; the
	// nonce distinguishes runner restarts, whose engines recount from
	// zero): GET /runner/state with If-None-Match answers 304 Not
	// Modified when nothing changed, so a polling scheduler pays a
	// header exchange instead of re-serialising the adapter list on
	// every decision.
	Version uint64 `json:"version"`
	// Role is the runner's disaggregation role ("unified", "prefill",
	// "decode"); Migratable lists the resident requests whose prefill
	// finished and which await handoff to the decode pool.
	Role       string  `json:"role,omitempty"`
	Migratable []int64 `json:"migratable,omitempty"`

	WorkingSet  int `json:"working_set"`
	ActiveBatch int `json:"active_batch"`
	MaxBatch    int `json:"max_batch"`
	// FreePages is the uncommitted KvCache headroom (pool free pages
	// minus reservations for pending requests).
	FreePages  int  `json:"free_kv_pages"`
	TotalPages int  `json:"total_kv_pages"`
	PageSize   int  `json:"kv_page_size"`
	PagedKV    bool `json:"paged_kv"`

	// Adapter-store state (§5.2): resident adapters with ranks and pin
	// flags, plus byte accounting. Empty for backbone-only runners.
	Adapters           []lora.AdapterState `json:"adapters,omitempty"`
	StoreCapacityBytes int64               `json:"store_capacity_bytes,omitempty"`
	StoreUsedBytes     int64               `json:"store_used_bytes,omitempty"`
	StorePinnedBytes   int64               `json:"store_pinned_bytes,omitempty"`

	// Tiers carries the staging-hierarchy counters when the runner's
	// engine is backed by a tiered adapter store (core.Config.Tiers),
	// bottom tier first with the HBM row last; ColdStarts counts the
	// staged HBM misses. Both empty on flat-store runners.
	Tiers      []lora.TierStats `json:"tiers,omitempty"`
	ColdStarts int              `json:"cold_starts,omitempty"`

	Steps  int64 `json:"steps"`
	Tokens int64 `json:"tokens_generated"`
}

// stateOf captures a runner's engine as wire state. Snapshot.Adapters
// aliases the store's reusable view (valid only until the next store
// mutation), and the runner serialises State outside its lock — so the
// adapter list is copied here. This is the wire path: one copy per 200
// response, none on the 304 revalidation path.
func stateOf(uuid string, snap core.Snapshot, stats core.Stats, migratable []int64, tiers *lora.TieredStore) State {
	var adapters []lora.AdapterState
	if len(snap.Adapters) > 0 {
		adapters = append(adapters, snap.Adapters...)
	}
	snap.Adapters = adapters
	var tierStats []lora.TierStats
	coldStarts := 0
	if tiers != nil {
		// Stats() builds a fresh slice, so serialising outside the
		// runner's lock is safe.
		tierStats = tiers.Stats()
		coldStarts = tiers.ColdStarts().Count()
	}
	return State{
		UUID:               uuid,
		Version:            snap.Version,
		Role:               snap.Role.String(),
		Migratable:         migratable,
		WorkingSet:         snap.WorkingSet,
		ActiveBatch:        snap.ActiveBatch,
		MaxBatch:           snap.MaxBatch,
		FreePages:          snap.FreeKVPages,
		TotalPages:         snap.TotalKVPages,
		PageSize:           snap.PageSize,
		PagedKV:            snap.PagedKV,
		Adapters:           snap.Adapters,
		StoreCapacityBytes: snap.StoreCapacityBytes,
		StoreUsedBytes:     snap.StoreUsedBytes,
		StorePinnedBytes:   snap.StorePinnedBytes,
		Tiers:              tierStats,
		ColdStarts:         coldStarts,
		Steps:              stats.Steps,
		Tokens:             stats.TokensGenerated,
	}
}

// toSnapshot converts wire state back to the scheduler's view.
func (st State) toSnapshot() core.Snapshot {
	role, err := core.ParseRole(st.Role)
	if err != nil {
		role = core.RoleUnified
	}
	return core.Snapshot{
		Version:            st.Version,
		Role:               role,
		WorkingSet:         st.WorkingSet,
		ActiveBatch:        st.ActiveBatch,
		MaxBatch:           st.MaxBatch,
		FreeKVPages:        st.FreePages,
		TotalKVPages:       st.TotalPages,
		PageSize:           st.PageSize,
		PagedKV:            st.PagedKV,
		Adapters:           st.Adapters,
		StoreCapacityBytes: st.StoreCapacityBytes,
		StoreUsedBytes:     st.StoreUsedBytes,
		StorePinnedBytes:   st.StorePinnedBytes,
	}
}

// TokenEvent is one NDJSON line of a runner token stream.
type TokenEvent struct {
	RequestID int64 `json:"request_id"`
	Index     int   `json:"index"`
	TokenID   int   `json:"token_id"`
	EOS       bool  `json:"eos"`
}
