package remote

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"punica/internal/core"
	"punica/internal/hw"
	"punica/internal/models"
)

func conditionalTestRunner(t *testing.T) (*Runner, *httptest.Server) {
	t.Helper()
	r := NewRunner("gpu-cond", core.Config{
		System: core.PunicaSystem(),
		GPU:    hw.A100(),
		Model:  models.Llama2_7B(),
		Rank:   models.DefaultLoRARank,
	}, 1000)
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		srv.Close()
		r.Close()
	})
	return r, srv
}

// TestStateConditionalGet pins the wire protocol: /runner/state carries
// an ETag derived from the engine's state version, and presenting it via
// If-None-Match yields 304 Not Modified with no body until the runner's
// state actually changes.
func TestStateConditionalGet(t *testing.T) {
	_, srv := conditionalTestRunner(t)

	resp, err := http.Get(srv.URL + "/runner/state")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("state response carries no ETag")
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/runner/state", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation with current ETag answered %d, want 304", resp2.StatusCode)
	}

	// Mutate the runner: the same ETag must now miss.
	c := NewClient(srv.URL)
	if err := c.Enqueue(&core.Request{ID: 1, Model: 3, PromptLen: 8, OutputLen: 4}, 0); err != nil {
		t.Fatal(err)
	}
	resp3, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("stale ETag after mutation answered %d, want 200", resp3.StatusCode)
	}
	if resp3.Header.Get("ETag") == etag {
		t.Fatal("ETag did not change after an enqueue")
	}
}

// TestStateETagDistinguishesRestarts pins the boot nonce: a restarted
// runner's engine recounts versions from zero, so the same version
// number on a fresh process must yield a different ETag — otherwise a
// client that cached state from the previous incarnation would get a
// false 304 and schedule against pre-restart state.
func TestStateETagDistinguishesRestarts(t *testing.T) {
	_, srv1 := conditionalTestRunner(t)
	_, srv2 := conditionalTestRunner(t)
	etagOf := func(url string) string {
		resp, err := http.Get(url + "/runner/state")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("ETag")
	}
	e1, e2 := etagOf(srv1.URL), etagOf(srv2.URL)
	if e1 == "" || e1 == e2 {
		t.Fatalf("two runner incarnations at the same version share ETag %q", e1)
	}

	// The old incarnation's tag must not validate against the new one.
	req, _ := http.NewRequest(http.MethodGet, srv2.URL+"/runner/state", nil)
	req.Header.Set("If-None-Match", e1)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale-incarnation ETag answered %d, want 200", resp.StatusCode)
	}
}

// TestBootNonceInjectable pins the entropy seam: with BootEntropy
// swapped for a deterministic source, the boot nonce — and therefore
// the full /runner/state ETag — is exactly predictable, which is what
// lets restart-semantics tests assert tag values instead of mere
// inequality.
func TestBootNonceInjectable(t *testing.T) {
	orig := BootEntropy
	t.Cleanup(func() { BootEntropy = orig })
	BootEntropy = func(b []byte) {
		for i := range b {
			b[i] = byte(i + 1) // nonce 0102030405060708
		}
	}
	_, srv := conditionalTestRunner(t)

	resp, err := http.Get(srv.URL + "/runner/state")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got, want := resp.Header.Get("ETag"), `"0102030405060708-v0"`; got != want {
		t.Fatalf("pinned-nonce ETag = %s, want %s", got, want)
	}

	// A "restarted" runner under the same pinned entropy reproduces the
	// tag bit-for-bit: nonce injection is the only source of variation.
	_, srv2 := conditionalTestRunner(t)
	resp2, err := http.Get(srv2.URL + "/runner/state")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("ETag"); got != `"0102030405060708-v0"` {
		t.Fatalf("second incarnation under pinned entropy: ETag = %s", got)
	}
}

// TestClientFetchStateRevalidates pins the client side: repeated
// FetchState calls against an idle runner are served from the
// conditional-GET cache, and a mutation is observed on the next fetch.
func TestClientFetchStateRevalidates(t *testing.T) {
	_, srv := conditionalTestRunner(t)
	c := NewClient(srv.URL)

	st1, err := c.FetchState()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.FetchState() // idle runner: served via 304
	if err != nil {
		t.Fatal(err)
	}
	if st2.Version != st1.Version || st2.WorkingSet != st1.WorkingSet {
		t.Fatalf("revalidated state diverged: %+v vs %+v", st1, st2)
	}

	if err := c.Enqueue(&core.Request{ID: 7, Model: 2, PromptLen: 8, OutputLen: 256}, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st3, err := c.FetchState()
		if err != nil {
			t.Fatal(err)
		}
		if st3.Version > st1.Version && st3.WorkingSet == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("state never reflected the enqueue: %+v", st3)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
