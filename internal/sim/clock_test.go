package sim

import (
	"testing"
	"time"
)

func TestVirtualClockOrdering(t *testing.T) {
	c := NewVirtualClock()
	var got []int
	c.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	c.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	c.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	n := c.RunAll()
	if n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if c.Now() != 30*time.Millisecond {
		t.Fatalf("clock at %v, want 30ms", c.Now())
	}
}

func TestVirtualClockFIFOAtSameInstant(t *testing.T) {
	c := NewVirtualClock()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	c.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestVirtualClockRunUntil(t *testing.T) {
	c := NewVirtualClock()
	ran := 0
	for i := 1; i <= 5; i++ {
		c.Schedule(time.Duration(i)*time.Second, func() { ran++ })
	}
	n := c.Run(3 * time.Second)
	if n != 3 || ran != 3 {
		t.Fatalf("Run(3s) executed %d events (callback saw %d), want 3", n, ran)
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("clock at %v, want 3s", c.Now())
	}
	if c.Pending() != 2 {
		t.Fatalf("%d pending, want 2", c.Pending())
	}
}

func TestVirtualClockCascade(t *testing.T) {
	c := NewVirtualClock()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			c.ScheduleAfter(time.Second, recurse)
		}
	}
	c.ScheduleAfter(time.Second, recurse)
	c.RunAll()
	if depth != 5 {
		t.Fatalf("cascade depth %d, want 5", depth)
	}
	if c.Now() != 5*time.Second {
		t.Fatalf("clock at %v, want 5s", c.Now())
	}
}

func TestSchedulePastClamps(t *testing.T) {
	c := NewVirtualClock()
	c.Schedule(10*time.Second, func() {})
	c.Step()
	fired := time.Duration(-1)
	c.Schedule(time.Second, func() { fired = c.Now() })
	c.Step()
	if fired != 10*time.Second {
		t.Fatalf("past event fired at %v, want clamped to 10s", fired)
	}
}

func TestWallClockMonotonic(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
}
