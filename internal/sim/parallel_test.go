package sim

import (
	"fmt"
	"testing"
	"time"
)

// shardLoad schedules a deterministic self-rescheduling workload on c:
// n chains of events, each appending to log and rescheduling itself a
// few times. Returns the expected final event count.
func shardLoad(c *VirtualClock, n int, log *[]string, tag string) {
	for i := 0; i < n; i++ {
		i := i
		hops := 0
		var step func()
		step = func() {
			*log = append(*log, fmt.Sprintf("%s-%d@%v", tag, i, c.Now()))
			hops++
			if hops < 4 {
				c.ScheduleAfter(time.Duration(1+i%7)*time.Millisecond, step)
			}
		}
		c.Schedule(time.Duration(i)*time.Millisecond, step)
	}
}

// runShards executes nShards independent workloads under the executor
// and returns the per-shard logs plus the executor for stat inspection.
func runShards(workers int, scramble bool) ([][]string, *ParallelExecutor) {
	const nShards = 4
	clocks := make([]*VirtualClock, nShards)
	logs := make([][]string, nShards)
	for s := range clocks {
		clocks[s] = NewVirtualClock()
		shardLoad(clocks[s], 20+s*5, &logs[s], fmt.Sprintf("s%d", s))
	}
	e := NewParallelExecutor(clocks, workers, 5*time.Millisecond)
	e.ScrambleOrder = scramble
	e.Run(nil)
	return logs, e
}

// TestParallelExecutorDeterministic: worker count and dispatch order
// change nothing observable — per-shard event sequences and executed
// counts are byte-identical to the sequential reference.
func TestParallelExecutorDeterministic(t *testing.T) {
	ref, refExec := runShards(1, false)
	for _, workers := range []int{2, 4, 8} {
		for _, scramble := range []bool{false, true} {
			got, gotExec := runShards(workers, scramble)
			if gotExec.Executed() != refExec.Executed() {
				t.Fatalf("workers=%d scramble=%v executed %d events, reference %d",
					workers, scramble, gotExec.Executed(), refExec.Executed())
			}
			for s := range ref {
				if len(got[s]) != len(ref[s]) {
					t.Fatalf("workers=%d shard %d ran %d events, reference %d",
						workers, s, len(got[s]), len(ref[s]))
				}
				for i := range ref[s] {
					if got[s][i] != ref[s][i] {
						t.Fatalf("workers=%d scramble=%v shard %d event %d = %q, reference %q",
							workers, scramble, s, i, got[s][i], ref[s][i])
					}
				}
			}
		}
	}
}

// TestParallelExecutorExchange: barrier exchanges move work between
// shards deterministically — a token hops shard to shard at each
// barrier, and the hop log is identical for any worker count.
func TestParallelExecutorExchange(t *testing.T) {
	run := func(workers int) ([]string, int64) {
		const nShards = 3
		clocks := make([]*VirtualClock, nShards)
		counts := make([]int, nShards)
		for s := range clocks {
			clocks[s] = NewVirtualClock()
		}
		// Seed shard 0 with one event; each barrier forwards a new event
		// to the next shard until 9 hops have happened.
		var hops []string
		clocks[0].Schedule(0, func() { counts[0]++ })
		next := 1
		e := NewParallelExecutor(clocks, workers, 2*time.Millisecond)
		e.Run(func(barrier time.Duration) bool {
			if next > 9 {
				return false
			}
			s := next % nShards
			hop := next
			hops = append(hops, fmt.Sprintf("hop%d->s%d@%v", hop, s, barrier))
			clocks[s].Schedule(barrier, func() { counts[s]++ })
			next++
			return true
		})
		var total int64
		for s, c := range clocks {
			if int64(counts[s]) != c.Executed() {
				return nil, -1
			}
			total += c.Executed()
		}
		return hops, total
	}
	refHops, refTotal := run(1)
	if refTotal != 10 {
		t.Fatalf("reference executed %d events, want 10", refTotal)
	}
	for _, workers := range []int{2, 4} {
		hops, total := run(workers)
		if total != refTotal {
			t.Fatalf("workers=%d executed %d, reference %d", workers, total, refTotal)
		}
		if fmt.Sprint(hops) != fmt.Sprint(refHops) {
			t.Fatalf("workers=%d hop log diverged:\n got %v\nwant %v", workers, hops, refHops)
		}
	}
}

// TestParallelExecutorStalls: a shard with no work accumulates barrier
// stalls while the loaded shard never does.
func TestParallelExecutorStalls(t *testing.T) {
	busy, idle := NewVirtualClock(), NewVirtualClock()
	var log []string
	shardLoad(busy, 10, &log, "busy")
	e := NewParallelExecutor([]*VirtualClock{busy, idle}, 2, 3*time.Millisecond)
	e.Run(nil)
	if e.Epochs() == 0 {
		t.Fatal("no epochs ran")
	}
	st := e.Stalls()
	if st[0] != 0 {
		t.Fatalf("busy shard stalled %d times", st[0])
	}
	if st[1] != e.Epochs() {
		t.Fatalf("idle shard stalled %d of %d epochs", st[1], e.Epochs())
	}
	if e.Executed() != busy.Executed() {
		t.Fatalf("Executed() = %d, want %d", e.Executed(), busy.Executed())
	}
}

// TestFreeListCapped: a one-off spike of pending events must not pin a
// peak-sized free list after it drains.
func TestFreeListCapped(t *testing.T) {
	c := NewVirtualClock()
	const spike = 3 * maxFreeEvents
	for i := 0; i < spike; i++ {
		c.Schedule(time.Duration(i)*time.Microsecond, func() {})
	}
	if n := c.RunAll(); n != spike {
		t.Fatalf("ran %d events, want %d", n, spike)
	}
	if got := c.freeListLen(); got > maxFreeEvents {
		t.Fatalf("free list holds %d events after spike, cap is %d", got, maxFreeEvents)
	}
	// The surviving pool still recycles: steady-state scheduling after the
	// spike reuses pooled events (no growth past the cap).
	for i := 0; i < 10*maxFreeEvents; i++ {
		c.Schedule(c.Now(), func() {})
		c.Step()
	}
	if got := c.freeListLen(); got > maxFreeEvents {
		t.Fatalf("free list regrew to %d past cap %d", got, maxFreeEvents)
	}
}

// TestNextAt pins the fast-forward accessor.
func TestNextAt(t *testing.T) {
	c := NewVirtualClock()
	if _, ok := c.NextAt(); ok {
		t.Fatal("empty clock reports a pending event")
	}
	c.Schedule(7*time.Millisecond, func() {})
	c.Schedule(3*time.Millisecond, func() {})
	at, ok := c.NextAt()
	if !ok || at != 3*time.Millisecond {
		t.Fatalf("NextAt = %v,%v; want 3ms,true", at, ok)
	}
}
