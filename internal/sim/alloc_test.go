package sim

import (
	"testing"
	"time"
)

// TestScheduleZeroAlloc guards the typed-heap/free-list event queue: a
// steady-state Schedule/Step cycle must not allocate. The historical
// container/heap implementation boxed every event through `any` and
// allocated a fresh event per Schedule; regaining either fails this.
func TestScheduleZeroAlloc(t *testing.T) {
	c := NewVirtualClock()
	fn := func() {}
	// Warm up: grow the heap slice and populate the free list.
	for i := 0; i < 64; i++ {
		c.Schedule(time.Duration(i), fn)
	}
	c.RunAll()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Schedule(c.Now()+time.Microsecond, fn)
		c.Step()
	})
	if allocs != 0 {
		t.Fatalf("VirtualClock.Schedule+Step allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestEventOrderAfterRecycle pins that free-list recycling does not
// corrupt ordering: interleaved schedules at equal and distinct times
// still run in (time, FIFO) order.
func TestEventOrderAfterRecycle(t *testing.T) {
	c := NewVirtualClock()
	var got []int
	note := func(i int) func() { return func() { got = append(got, i) } }
	c.Schedule(3*time.Millisecond, note(3))
	c.Schedule(1*time.Millisecond, note(1))
	c.Step() // runs note(1); its event returns to the free list
	c.Schedule(2*time.Millisecond, note(2))
	c.Schedule(2*time.Millisecond, note(22))
	c.RunAll()
	want := []int{1, 2, 22, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ran %v, want %v", got, want)
		}
	}
}

// BenchmarkSchedule measures the event queue's steady-state cost.
func BenchmarkSchedule(b *testing.B) {
	c := NewVirtualClock()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Schedule(c.Now()+time.Microsecond, fn)
		c.Step()
	}
}
