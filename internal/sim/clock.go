package sim

import (
	"time"
)

// Clock abstracts time for the serving stack so the same engine code runs
// under a discrete-event virtual clock (hour-long cluster experiments in
// milliseconds of wall time) and under wall-clock pacing (the HTTP demo).
type Clock interface {
	// Now returns the current simulation time as an offset from the
	// simulation epoch.
	Now() time.Duration
}

// VirtualClock is a discrete-event simulation clock. Events are scheduled
// at absolute times and executed in order; Run advances time to each event
// in sequence. The zero value is ready to use.
//
// The event queue is a typed binary heap over a free-listed event pool:
// steady-state Schedule/Step cycles allocate nothing (the historical
// container/heap implementation boxed every event through `any` and
// allocated one event per Schedule), which matters when a million-request
// trace schedules millions of events.
type VirtualClock struct {
	now      time.Duration
	events   []*event
	free     []*event
	seq      int64
	executed int64
}

// NewVirtualClock returns a clock positioned at t=0 with no pending events.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{}
}

// Now returns the current simulation time.
func (c *VirtualClock) Now() time.Duration { return c.now }

// Schedule enqueues fn to run at absolute time at. Events scheduled for the
// same instant run in scheduling order (FIFO), which keeps simulations
// deterministic. Scheduling in the past is clamped to now.
//
//punica:zeroalloc event scheduling recycles pooled events in steady state
func (c *VirtualClock) Schedule(at time.Duration, fn func()) {
	if at < c.now {
		at = c.now
	}
	c.seq++
	var ev *event
	if n := len(c.free); n > 0 {
		ev = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	} else {
		ev = new(event) //punica:alloc-ok pool miss: grows the event pool once, recycled thereafter
	}
	ev.at, ev.seq, ev.fn = at, c.seq, fn
	c.push(ev)
}

// ScheduleAfter enqueues fn to run delay after the current time.
func (c *VirtualClock) ScheduleAfter(delay time.Duration, fn func()) {
	c.Schedule(c.now+delay, fn)
}

// maxFreeEvents caps the event free list. Uncapped, a requeue spike that
// momentarily schedules hundreds of thousands of events would pin a
// peak-sized pool for the rest of the run; past the cap, retired events
// fall to the garbage collector and the pool shrinks back to steady
// state.
const maxFreeEvents = 4096

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event ran.
func (c *VirtualClock) Step() bool {
	if len(c.events) == 0 {
		return false
	}
	ev := c.pop()
	c.now = ev.at
	c.executed++
	fn := ev.fn
	ev.fn = nil // release the closure before recycling
	if len(c.free) < maxFreeEvents {
		c.free = append(c.free, ev)
	}
	fn()
	return true
}

// Run executes events until none remain or the clock passes until. Events
// scheduled exactly at until still run. It returns the number of events
// executed.
func (c *VirtualClock) Run(until time.Duration) int {
	n := 0
	for len(c.events) > 0 {
		if c.events[0].at > until {
			break
		}
		c.Step()
		n++
	}
	if c.now < until {
		c.now = until
	}
	return n
}

// RunAll executes all pending events (including ones scheduled by other
// events) and returns the count. Use with care: a self-rescheduling event
// makes this loop forever.
func (c *VirtualClock) RunAll() int {
	n := 0
	for c.Step() {
		n++
	}
	return n
}

// Pending returns the number of events waiting to run.
func (c *VirtualClock) Pending() int { return len(c.events) }

// NextAt returns the timestamp of the earliest pending event. ok is
// false when no events are pending. The epoch-barrier executor uses it
// to fast-forward past empty stretches of simulated time without
// spinning through idle barriers.
func (c *VirtualClock) NextAt() (at time.Duration, ok bool) {
	if len(c.events) == 0 {
		return 0, false
	}
	return c.events[0].at, true
}

// freeListLen exposes the recycled-event pool size to the cap test.
func (c *VirtualClock) freeListLen() int { return len(c.free) }

// Executed returns the total number of events run since creation — the
// denominator for events/sec and allocs/event in the scale harness.
func (c *VirtualClock) Executed() int64 { return c.executed }

type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

// less orders events by time, ties broken by scheduling order (FIFO).
func (c *VirtualClock) less(i, j int) bool {
	a, b := c.events[i], c.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev into the heap (sift-up).
func (c *VirtualClock) push(ev *event) {
	c.events = append(c.events, ev)
	i := len(c.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			break
		}
		c.events[i], c.events[parent] = c.events[parent], c.events[i]
		i = parent
	}
}

// pop removes and returns the earliest event (sift-down).
func (c *VirtualClock) pop() *event {
	h := c.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	c.events = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && c.less(l, smallest) {
			smallest = l
		}
		if r < n && c.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		c.events[i], c.events[smallest] = c.events[smallest], c.events[i]
		i = smallest
	}
	return top
}

// WallClock is a Clock backed by real time, for the interactive serving
// demo. Time is measured from the moment the clock is created.
type WallClock struct {
	epoch time.Time
}

// NewWallClock returns a wall clock whose epoch is the current instant.
func NewWallClock() *WallClock {
	return &WallClock{epoch: time.Now()} //punica:nondet-ok WallClock IS the real-time bridge for the serving demo
}

// Now returns the elapsed real time since the clock was created.
func (c *WallClock) Now() time.Duration {
	return time.Since(c.epoch) //punica:nondet-ok WallClock IS the real-time bridge for the serving demo
}
