package sim

import (
	"container/heap"
	"time"
)

// Clock abstracts time for the serving stack so the same engine code runs
// under a discrete-event virtual clock (hour-long cluster experiments in
// milliseconds of wall time) and under wall-clock pacing (the HTTP demo).
type Clock interface {
	// Now returns the current simulation time as an offset from the
	// simulation epoch.
	Now() time.Duration
}

// VirtualClock is a discrete-event simulation clock. Events are scheduled
// at absolute times and executed in order; Run advances time to each event
// in sequence. The zero value is ready to use.
type VirtualClock struct {
	now    time.Duration
	events eventHeap
	seq    int64
}

// NewVirtualClock returns a clock positioned at t=0 with no pending events.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{}
}

// Now returns the current simulation time.
func (c *VirtualClock) Now() time.Duration { return c.now }

// Schedule enqueues fn to run at absolute time at. Events scheduled for the
// same instant run in scheduling order (FIFO), which keeps simulations
// deterministic. Scheduling in the past is clamped to now.
func (c *VirtualClock) Schedule(at time.Duration, fn func()) {
	if at < c.now {
		at = c.now
	}
	c.seq++
	heap.Push(&c.events, &event{at: at, seq: c.seq, fn: fn})
}

// ScheduleAfter enqueues fn to run delay after the current time.
func (c *VirtualClock) ScheduleAfter(delay time.Duration, fn func()) {
	c.Schedule(c.now+delay, fn)
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event ran.
func (c *VirtualClock) Step() bool {
	if c.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&c.events).(*event)
	c.now = ev.at
	ev.fn()
	return true
}

// Run executes events until none remain or the clock passes until. Events
// scheduled exactly at until still run. It returns the number of events
// executed.
func (c *VirtualClock) Run(until time.Duration) int {
	n := 0
	for c.events.Len() > 0 {
		if c.events[0].at > until {
			break
		}
		c.Step()
		n++
	}
	if c.now < until {
		c.now = until
	}
	return n
}

// RunAll executes all pending events (including ones scheduled by other
// events) and returns the count. Use with care: a self-rescheduling event
// makes this loop forever.
func (c *VirtualClock) RunAll() int {
	n := 0
	for c.Step() {
		n++
	}
	return n
}

// Pending returns the number of events waiting to run.
func (c *VirtualClock) Pending() int { return c.events.Len() }

type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// WallClock is a Clock backed by real time, for the interactive serving
// demo. Time is measured from the moment the clock is created.
type WallClock struct {
	epoch time.Time
}

// NewWallClock returns a wall clock whose epoch is the current instant.
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

// Now returns the elapsed real time since the clock was created.
func (c *WallClock) Now() time.Duration { return time.Since(c.epoch) }
