// Package sim provides deterministic building blocks for Punica's
// simulations: a seedable random number generator with the distribution
// samplers the evaluation needs (exponential, log-normal, Zipf) and a
// virtual clock for discrete-event simulation.
//
// Everything in this package is deterministic given a seed so that every
// experiment in the paper reproduction can be replayed bit-for-bit.
package sim

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source used by all workload generators and
// simulations. It wraps math/rand with the samplers the Punica evaluation
// needs. It is not safe for concurrent use; create one per goroutine.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// NormFloat64 returns a standard normal sample.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Exponential returns a sample from an exponential distribution with the
// given mean. This drives Poisson arrival processes: inter-arrival gaps of
// a Poisson process with rate λ are exponential with mean 1/λ (§7.3).
func (r *RNG) Exponential(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// LogNormal returns a sample from a log-normal distribution parameterised
// by the underlying normal's mu and sigma. ShareGPT-like prompt and
// response length distributions are heavy-tailed; log-normal is the
// standard synthetic stand-in.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Zipf samples ranks from a Zipf distribution matching the paper's Skewed
// workload: "the number of requests to the i-th most popular model is α
// times that of the i+1-th's" (§7). That is a geometric popularity law:
// P(rank=i) ∝ α^{-i}. The paper calls it Zipf-α with α = 1.5.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a sampler over n ranks with decay factor alpha > 1.
// Rank 0 is the most popular model.
func NewZipf(rng *RNG, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf needs n > 0")
	}
	if alpha <= 1 {
		panic("sim: Zipf needs alpha > 1")
	}
	cdf := make([]float64, n)
	sum := 0.0
	w := 1.0
	for i := 0; i < n; i++ {
		sum += w
		cdf[i] = sum
		w /= alpha
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Rank returns a sampled rank in [0, n), rank 0 most popular.
func (z *Zipf) Rank() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }
