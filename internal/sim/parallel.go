package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultEpoch is the default barrier interval Δ for ParallelExecutor:
// wide enough that a million-event run crosses only thousands of
// barriers (synchronization cost stays far below 1% of the epoch work),
// narrow enough that cross-shard exchanges — spill routing, fleet
// gauges — react within tenths of a simulated second.
const DefaultEpoch = 100 * time.Millisecond

// ParallelExecutor advances a set of independent VirtualClocks — shards
// of one simulation — in deterministic time epochs. Every epoch, each
// shard runs freely up to the shared barrier time T; shards touch no
// state outside their own, so the epoch's work can run on any number of
// goroutines in any order with byte-identical results. Cross-shard
// effects happen only in the exchange callback, which the executor
// invokes single-threaded at each barrier after every shard has reached
// it (the epoch's WaitGroup establishes the happens-before edge).
//
// The protocol makes the interleaving deterministic by construction:
//   - within an epoch a shard sees only its own events, in its own
//     clock's (time, seq) order;
//   - exchanges observe all shards at the identical barrier instant and
//     must themselves iterate shards deterministically (index order);
//   - events an exchange injects are scheduled at the barrier time and
//     run at the start of the next epoch, in injection order.
//
// Workers therefore changes wall-clock time and nothing else: results
// are identical to running every shard sequentially in index order,
// regardless of GOMAXPROCS or scheduling jitter.
type ParallelExecutor struct {
	clocks  []*VirtualClock
	workers int
	delta   time.Duration

	// ScrambleOrder deterministically rotates the shard dispatch order
	// every epoch. The determinism tests set it to prove results are
	// independent of which worker picks up which shard when.
	ScrambleOrder bool

	epochs       int64
	stalls       []int64
	prevExecuted []int64
}

// NewParallelExecutor builds an executor over the shard clocks.
// workers <= 1 runs shards sequentially (the reference interleaving);
// delta <= 0 uses DefaultEpoch.
func NewParallelExecutor(clocks []*VirtualClock, workers int, delta time.Duration) *ParallelExecutor {
	if workers < 1 {
		workers = 1
	}
	if delta <= 0 {
		delta = DefaultEpoch
	}
	return &ParallelExecutor{
		clocks:       clocks,
		workers:      workers,
		delta:        delta,
		stalls:       make([]int64, len(clocks)),
		prevExecuted: make([]int64, len(clocks)),
	}
}

// Run drives epochs until no shard has pending events and a final
// exchange injects nothing. exchange (may be nil) is called at every
// barrier with the barrier time; it returns whether it injected events
// into any shard. It must iterate shards in a deterministic order and
// is the only place cross-shard state may move.
func (e *ParallelExecutor) Run(exchange func(barrier time.Duration) bool) {
	barrier := time.Duration(0)
	for {
		earliest, any := e.earliestPending()
		if !any {
			// Quiescent: give the exchange one chance to inject (e.g. a
			// final spill of queued work); otherwise the run is done.
			if exchange == nil || !exchange(barrier) {
				return
			}
			continue
		}
		// The epoch covers (prev, earliest+Δ]: anchoring on the earliest
		// pending event guarantees progress every epoch and fast-forwards
		// over empty stretches instead of spinning through idle barriers.
		if earliest > barrier {
			barrier = earliest
		}
		barrier += e.delta
		e.runEpoch(barrier)
		e.epochs++
		for i, c := range e.clocks {
			ex := c.Executed()
			if ex == e.prevExecuted[i] {
				e.stalls[i]++
			}
			e.prevExecuted[i] = ex
		}
		if exchange != nil {
			exchange(barrier)
		}
	}
}

// runEpoch advances every shard to the barrier, using up to
// e.workers goroutines.
func (e *ParallelExecutor) runEpoch(barrier time.Duration) {
	n := len(e.clocks)
	order := make([]int, n)
	for i := range order {
		if e.ScrambleOrder {
			order[i] = (i + int(e.epochs)) % n
		} else {
			order[i] = i
		}
	}
	if e.workers == 1 || n == 1 {
		for _, i := range order {
			e.clocks[i].Run(barrier)
		}
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//punica:barrier-ok epoch workers own disjoint shards; wg.Wait is the barrier that publishes their effects
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				e.clocks[order[i]].Run(barrier)
			}
		}()
	}
	wg.Wait()
}

// earliestPending returns the earliest pending event time across all
// shards; ok is false when every shard is drained.
func (e *ParallelExecutor) earliestPending() (at time.Duration, ok bool) {
	for _, c := range e.clocks {
		if t, has := c.NextAt(); has && (!ok || t < at) {
			at, ok = t, true
		}
	}
	return at, ok
}

// Epochs returns the number of barriers crossed.
func (e *ParallelExecutor) Epochs() int64 { return e.epochs }

// Stalls returns, per shard, how many epochs that shard executed zero
// events while the fleet still had work — the barrier-stall count that
// surfaces load imbalance between shards.
func (e *ParallelExecutor) Stalls() []int64 { return e.stalls }

// Executed sums executed-event counts across all shard clocks — the
// fleet-wide denominator for events/sec.
func (e *ParallelExecutor) Executed() int64 {
	var total int64
	for _, c := range e.clocks {
		total += c.Executed()
	}
	return total
}
