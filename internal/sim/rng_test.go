package sim

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(1)
	const n = 200000
	const mean = 2.5
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(mean)
	}
	got := sum / n
	if math.Abs(got-mean) > 0.05*mean {
		t.Fatalf("exponential mean = %.4f, want ~%.4f", got, mean)
	}
}

func TestLogNormalMean(t *testing.T) {
	r := NewRNG(2)
	const n = 200000
	mu, sigma := 4.0, 0.5
	want := math.Exp(mu + sigma*sigma/2)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.LogNormal(mu, sigma)
	}
	got := sum / n
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("lognormal mean = %.2f, want ~%.2f", got, want)
	}
}

func TestZipfRatios(t *testing.T) {
	r := NewRNG(3)
	z := NewZipf(r, 8, 1.5)
	counts := make([]int, 8)
	const n = 300000
	for i := 0; i < n; i++ {
		counts[z.Rank()]++
	}
	// The i-th most popular model should receive ~1.5x the (i+1)-th's.
	for i := 0; i+1 < 4; i++ { // tail ranks are too sparse to test tightly
		ratio := float64(counts[i]) / float64(counts[i+1])
		if math.Abs(ratio-1.5) > 0.15 {
			t.Errorf("rank %d/%d ratio = %.3f, want ~1.5", i, i+1, ratio)
		}
	}
	if counts[0] <= counts[7] {
		t.Error("rank 0 should dominate rank 7")
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRNG(4)
	mustPanic(t, func() { NewZipf(r, 0, 1.5) })
	mustPanic(t, func() { NewZipf(r, 4, 1.0) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}
