package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"punica/internal/core"
	"punica/internal/hw"
	"punica/internal/models"
	"punica/internal/sched"
)

// admissionServer is testServer with caps: one single-slot GPU so the
// queue fills immediately, and a tiny admission queue.
func admissionServer(t *testing.T, adm sched.AdmissionConfig, fairness bool) *Server {
	t.Helper()
	sys := core.PunicaSystem()
	sys.MaxBatch = 1
	s := New(Config{
		NumGPUs: 1,
		Engine: core.Config{
			System: sys,
			GPU:    hw.A100(),
			Model:  models.Llama2_7B(),
			Rank:   models.DefaultLoRARank,
		},
		Speedup:   5000,
		Fairness:  fairness,
		Admission: adm,
	})
	t.Cleanup(s.Close)
	return s
}

func TestSubmitRejectsOverCap(t *testing.T) {
	s := admissionServer(t, sched.AdmissionConfig{MaxQueue: 2}, false)
	// Long outputs keep the slot busy while we overfill the queue.
	if _, _, err := s.Submit(1, 64, 4096); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	queued := 0
	var rejected error
	for i := 0; i < 10 && rejected == nil; i++ {
		_, _, err := s.Submit(1, 64, 4096)
		if err != nil {
			rejected = err
			break
		}
		queued++
	}
	if !errors.Is(rejected, sched.ErrQueueFull) {
		t.Fatalf("never hit ErrQueueFull (queued %d): %v", queued, rejected)
	}
	st := s.Snapshot()
	if st.Rejected == 0 {
		t.Fatalf("stats show no rejections: %+v", st)
	}
	if st.QueueLen > 2 {
		t.Fatalf("queue len %d exceeds cap 2", st.QueueLen)
	}
	if st.QueuePeak > 2 {
		t.Fatalf("queue peak %d exceeds cap 2", st.QueuePeak)
	}
}

func TestHTTPGenerate429WithRetryAfter(t *testing.T) {
	s := admissionServer(t, sched.AdmissionConfig{MaxQueue: 1}, false)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	post := func() *http.Response {
		t.Helper()
		body, _ := json.Marshal(GenerateRequest{Model: 1, PromptLen: 64, MaxTokens: 4096})
		resp, err := http.Post(srv.URL+"/v1/generate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		return resp
	}

	// Saturate: the single batch slot plus the one queue slot. The first
	// requests stream (their handlers hold the connection), so fire them
	// in goroutines and only read the rejection synchronously.
	var wg sync.WaitGroup
	cancels := make(chan *http.Response, 8)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := post()
			cancels <- resp
		}()
	}
	defer func() {
		go func() { wg.Wait(); close(cancels) }()
		for resp := range cancels {
			resp.Body.Close()
		}
	}()

	// Wait until both in-flight requests occupy slot+queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Snapshot()
		if st.QueueLen >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	var resp *http.Response
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp = post()
		if resp.StatusCode == http.StatusTooManyRequests {
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("never saw 429, last status %d", resp.StatusCode)
		}
	}
	defer resp.Body.Close()

	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", ra)
	}
	var bp Backpressure
	if err := json.NewDecoder(resp.Body).Decode(&bp); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if bp.Code != CodeQueueFull {
		t.Fatalf("envelope code = %q, want %q", bp.Code, CodeQueueFull)
	}
	if bp.RetryAfterSeconds <= 0 {
		t.Fatalf("envelope retry_after_seconds = %v, want > 0", bp.RetryAfterSeconds)
	}
	if st := s.Snapshot(); st.HTTP429 == 0 {
		t.Fatalf("stats show no 429s: %+v", st)
	}
}

func TestHTTPShedVictimGets429(t *testing.T) {
	s := admissionServer(t, sched.AdmissionConfig{
		MaxQueue: 1,
		Policy:   sched.ShedBestEffort,
	}, false)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	post := func(tenant int64) (*http.Response, error) {
		body, _ := json.Marshal(GenerateRequest{Model: 1, PromptLen: 64, MaxTokens: 4096, Tenant: tenant})
		return http.Post(srv.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	}

	// Occupy the batch slot (tenant 1) and the queue slot (tenant 2);
	// the queued tenant-2 request is the shed victim when tenant 3
	// arrives: tenant 2 holds the most queued work and is not the
	// arriving tenant.
	type result struct {
		tenant int64
		status int
		code   string
	}
	results := make(chan result, 3)
	var wg sync.WaitGroup
	launch := func(tenant int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := post(tenant)
			if err != nil {
				results <- result{tenant, 0, fmt.Sprint(err)}
				return
			}
			defer resp.Body.Close()
			var bp Backpressure
			if resp.StatusCode != http.StatusOK {
				_ = json.NewDecoder(resp.Body).Decode(&bp)
			} else {
				_, _ = io.Copy(io.Discard, resp.Body)
			}
			results <- result{tenant, resp.StatusCode, bp.Code}
		}()
	}

	launch(1)
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Streams < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	launch(2)
	for s.Snapshot().QueueLen < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	launch(3)

	wg.Wait()
	close(results)
	byTenant := map[int64]result{}
	for r := range results {
		byTenant[r.tenant] = r
	}
	if r := byTenant[2]; r.status != http.StatusTooManyRequests || r.code != CodeShed {
		t.Fatalf("shed victim: status=%d code=%q, want 429/%q (all: %+v)", r.status, r.code, CodeShed, byTenant)
	}
	st := s.Snapshot()
	if st.Shed != 1 {
		t.Fatalf("stats shed = %d, want 1", st.Shed)
	}
}

func TestRetryAfterClampedToWallSeconds(t *testing.T) {
	s := admissionServer(t, sched.AdmissionConfig{MaxQueue: 1}, false)
	got := s.RetryAfter()
	if got < time.Second || got > 120*time.Second {
		t.Fatalf("RetryAfter = %v, want within [1s, 120s]", got)
	}
}
