package serve

import (
	"testing"
	"time"

	"punica/internal/core"
	"punica/internal/hw"
	"punica/internal/models"
)

// TestServerSurvivesGPUFailure kills one of two in-process GPUs while a
// request is generating on it. The request is requeued onto the
// survivor with prefill recomputation; because the same request object
// recovers, Generated carries over and the open token stream resumes
// seamlessly — the user sees every index exactly once.
func TestServerSurvivesGPUFailure(t *testing.T) {
	s := New(Config{
		NumGPUs: 2,
		Engine: core.Config{
			System: core.PunicaSystem(),
			GPU:    hw.A100(),
			Model:  models.Llama2_7B(),
			Rank:   models.DefaultLoRARank,
		},
		Speedup: 2000,
	})
	defer s.Close()

	const outputLen = 300
	id, ch, err := s.Submit(4, 64, outputLen)
	if err != nil {
		t.Fatal(err)
	}
	// §5.1 tie-break places the first request on the highest UUID.
	time.Sleep(30 * time.Millisecond) // let generation start
	if !s.FailGPU("gpu-01") {
		t.Fatal("FailGPU did not find gpu-01")
	}
	if s.FailGPU("gpu-01") {
		t.Fatal("second FailGPU of the same UUID must report not found")
	}

	var indices []int
	deadline := time.After(30 * time.Second)
	for {
		select {
		case tok, open := <-ch:
			if !open {
				if len(indices) != outputLen {
					t.Fatalf("stream closed after %d tokens, want %d", len(indices), outputLen)
				}
				for i, idx := range indices {
					if idx != i {
						t.Fatalf("token %d has index %d: recovery duplicated or dropped tokens", i, idx)
					}
				}
				st := s.Snapshot()
				if st.GPUFailures != 1 || st.Recovered < 1 {
					t.Fatalf("stats = %+v, want 1 failure and >=1 recovery", st)
				}
				if len(st.GPUs) != 1 {
					t.Fatalf("%d GPUs remain in stats, want 1", len(st.GPUs))
				}
				return
			}
			if tok.RequestID != id {
				t.Fatalf("stray token for request %d", tok.RequestID)
			}
			indices = append(indices, tok.Index)
		case <-deadline:
			t.Fatalf("request did not finish after failover; got %d tokens", len(indices))
		}
	}
}
