package serve

import (
	"testing"
	"time"

	"punica/internal/core"
	"punica/internal/hw"
	"punica/internal/lora"
	"punica/internal/models"
)

// TestTieredSnapshotReportsStats drives a tiered server through cold
// adapter loads and checks the stats endpoint's merged tier view.
func TestTieredSnapshotReportsStats(t *testing.T) {
	model := models.Llama2_7B()
	bytes := model.LoRABytes(models.DefaultLoRARank)
	s := New(Config{
		NumGPUs: 2,
		Engine: core.Config{
			System: core.PunicaSystem(),
			GPU:    hw.A100(),
			Model:  model,
			Rank:   models.DefaultLoRARank,
		},
		Speedup: 5000,
		Tiers: []lora.TierSpec{
			{Name: "ssd", CapacityBytes: 64 * bytes,
				Link: hw.Link{Name: "ssd", Bandwidth: 2e9, Latency: time.Millisecond}},
			{Name: "ram", CapacityBytes: 16 * bytes,
				Link: hw.Link{Name: "ram", Bandwidth: 8e9, Latency: 100 * time.Microsecond}},
		},
	})
	t.Cleanup(s.Close)

	for m := int64(1); m <= 3; m++ {
		_, stream, err := s.Submit(m, 32, 4)
		if err != nil {
			t.Fatal(err)
		}
		timeout := time.After(10 * time.Second)
		for open := true; open; {
			select {
			case _, ok := <-stream:
				open = ok
			case <-timeout:
				t.Fatal("stream stalled")
			}
		}
	}

	st := s.Snapshot()
	if len(st.Tiers) != 3 {
		t.Fatalf("tier rows = %d, want ssd/ram/hbm", len(st.Tiers))
	}
	if st.Tiers[0].Tier != "ssd" || st.Tiers[1].Tier != "ram" || st.Tiers[2].Tier != "hbm" {
		t.Fatalf("tier order: %s,%s,%s", st.Tiers[0].Tier, st.Tiers[1].Tier, st.Tiers[2].Tier)
	}
	if st.Tiers[0].BytesIn == 0 {
		t.Fatalf("no registry pulls recorded: %+v", st.Tiers[0])
	}
	if st.ColdStarts == 0 || st.ColdStartP99 <= 0 {
		t.Fatalf("cold starts = %d p99 = %g on a cold fleet", st.ColdStarts, st.ColdStartP99)
	}
}
