// Package serve is the online serving stack of Fig. 2: frontends accept
// user requests over HTTP, the scheduler dispatches them to GPU runners,
// and generated tokens stream back to the client as they are produced.
//
// Substitution note (DESIGN.md): the paper implements the scheduler,
// frontend and runner in Rust with WebSockets; here they are Go
// goroutines around the same engine and scheduler logic, with chunked
// NDJSON streaming. GPU time is simulated: each invocation's modelled
// latency is converted to wall time through a configurable speedup
// factor, so the demo serves tokens at a realistic (or accelerated)
// cadence without hardware.
package serve

import (
	"fmt"
	"sync"
	"time"

	"punica/internal/core"
	"punica/internal/lora"
	"punica/internal/metrics"
	"punica/internal/sched"
)

// Config assembles a serving deployment.
type Config struct {
	// NumGPUs is the number of simulated GPU runners.
	NumGPUs int
	// Engine is the per-GPU engine template.
	Engine core.Config
	// Speedup divides simulated latencies to produce wall-clock pacing:
	// 1 serves in real time, 100 (default) runs 100x faster.
	Speedup float64
	// Policy selects the placement policy by name ("" or "paper",
	// "affinity", "rank" — see internal/sched).
	Policy string
	// Fairness enables the scheduler's per-tenant VTC admission layer:
	// under contention, queued requests dispatch weighted-round-robin
	// across tenants instead of globally FCFS (see internal/sched
	// fair.go). Requests without a tenant tag share one bucket.
	Fairness bool

	// Admission bounds the scheduler's wait queue (overload protection):
	// arrivals over the caps are refused — HTTP 429 with a Retry-After
	// derived from the measured drain rate — or, under
	// sched.ShedBestEffort, admitted by shedding the lowest-priority
	// queued request. The zero config (the default) disables every cap
	// and keeps the legacy unbounded-queue behaviour byte-identical.
	Admission sched.AdmissionConfig

	// Tiers, when non-empty, backs every GPU's adapter store with the
	// staged node-SSD → host-RAM hierarchy (lora.TieredStore): HBM
	// misses cascade down the tiers instead of always paying a full
	// registry pull, and HBM evictions demote to host RAM. Parse CLI
	// syntax with lora.ParseTierSpec.
	Tiers []lora.TierSpec

	// PrefillGPUs/DecodeGPUs, when both > 0, disaggregate the server:
	// the fleet splits into a prefill pool (admits new requests) and a
	// decode pool (receives finished prefills by KV migration), and
	// NumGPUs is derived as their sum. Zero values keep the unified
	// paper deployment.
	PrefillGPUs int
	DecodeGPUs  int
}

// Server runs the scheduler and GPU drivers and routes token streams.
type Server struct {
	mu      sync.Mutex
	cond    *sync.Cond
	sch     *sched.Scheduler
	gpus    []*sched.GPU
	engines map[*sched.GPU]*core.Engine
	streams map[int64]chan core.Token
	nextID  int64
	start   time.Time
	speedup float64
	closed  bool
	wg      sync.WaitGroup

	// Fault accounting (FailGPU).
	failures  int64
	recovered int64

	// shed marks request ids dropped by the ShedBestEffort admission
	// policy between the scheduler callback and the HTTP handler
	// observing the closed stream, so the handler can answer 429 rather
	// than a generic failure. Entries are consumed by WasShed.
	shed map[int64]bool
	// rejected429 counts HTTP 429 responses sent by the generate
	// endpoint (both queue-full rejections and shed victims).
	rejected429 int64
}

// New builds and starts a server: one driver goroutine per GPU. With
// PrefillGPUs/DecodeGPUs set, the first engines form the prefill pool
// and the rest the decode pool; finished prefills migrate between them
// at step boundaries by moving their KvCache.
func New(cfg Config) *Server {
	disagg := cfg.PrefillGPUs > 0 && cfg.DecodeGPUs > 0
	if disagg {
		cfg.NumGPUs = cfg.PrefillGPUs + cfg.DecodeGPUs
	}
	if cfg.NumGPUs <= 0 {
		cfg.NumGPUs = 1
	}
	if cfg.Speedup <= 0 {
		cfg.Speedup = 100
	}
	s := &Server{
		engines: make(map[*sched.GPU]*core.Engine),
		streams: make(map[int64]chan core.Token),
		shed:    make(map[int64]bool),
		start:   time.Now(),
		speedup: cfg.Speedup,
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.NumGPUs; i++ {
		ec := cfg.Engine
		ec.OnToken = s.onToken
		ec.OnFinish = s.onFinish
		ec.Tiers = cfg.Tiers
		if disagg {
			if i < cfg.PrefillGPUs {
				ec.Role = core.RolePrefill
			} else {
				ec.Role = core.RoleDecode
			}
		}
		eng := core.NewEngine(ec)
		g := &sched.GPU{UUID: fmt.Sprintf("gpu-%02d", i), Engine: eng, Role: ec.Role}
		s.engines[g] = eng
		s.gpus = append(s.gpus, g)
	}
	policy, err := sched.PolicyByName(cfg.Policy, sched.PolicyConfig{
		Base:        cfg.Engine.Model,
		DefaultRank: cfg.Engine.Rank,
		RankOf:      cfg.Engine.AdapterRank,
	})
	if err != nil {
		panic("serve: " + err.Error())
	}
	s.sch = sched.NewWithPolicy(s.gpus, policy)
	s.sch.SetFairness(cfg.Fairness)
	s.sch.SetAdmission(cfg.Admission)
	s.sch.OnShed = s.onShed
	for _, g := range s.gpus {
		s.wg.Add(1)
		go s.drive(g)
	}
	return s
}

// simNow converts elapsed wall time into simulation time.
func (s *Server) simNow() time.Duration {
	return time.Duration(float64(time.Since(s.start)) * s.speedup)
}

// wallDelay converts a simulated duration into wall time.
func (s *Server) wallDelay(d time.Duration) time.Duration {
	w := time.Duration(float64(d) / s.speedup)
	if w < 0 {
		return 0
	}
	return w
}

// onToken runs inside Engine.Step with s.mu held.
func (s *Server) onToken(tok core.Token) {
	if ch, ok := s.streams[tok.RequestID]; ok {
		select {
		case ch <- tok:
		default: // stream buffer full: client abandoned; drop.
		}
	}
}

// onFinish runs inside Engine.Step with s.mu held.
func (s *Server) onFinish(r *core.Request) {
	if ch, ok := s.streams[r.ID]; ok {
		close(ch)
		delete(s.streams, r.ID)
	}
}

// onShed runs inside Scheduler.Dispatch with s.mu held: the admission
// layer dropped a queued request to admit a higher-priority arrival.
// Closing the victim's stream wakes its HTTP handler, which consults
// WasShed to answer 429 instead of a truncated 200.
func (s *Server) onShed(r *core.Request) {
	s.shed[r.ID] = true
	if ch, ok := s.streams[r.ID]; ok {
		close(ch)
		delete(s.streams, r.ID)
	}
}

// WasShed reports (and consumes) whether request id was dropped by the
// admission layer's shed policy.
func (s *Server) WasShed(id int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	was := s.shed[id]
	delete(s.shed, id)
	return was
}

// RetryAfter estimates, in wall time, when a rejected client should
// retry: the simulated time the current drain rate needs to free one
// queue slot, converted through the speedup factor and clamped to
// [1s, 120s] — HTTP Retry-After has whole-second resolution and callers
// should not be parked forever on a transient spike.
func (s *Server) RetryAfter() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retryAfterLocked()
}

func (s *Server) retryAfterLocked() time.Duration {
	w := s.wallDelay(s.sch.RetryAfterHint(1))
	if w < time.Second {
		w = time.Second
	}
	if w > 120*time.Second {
		w = 120 * time.Second
	}
	return w
}

// Submit enqueues a generation request and returns its id and token
// stream. The stream is closed when generation completes or the request
// is cancelled.
func (s *Server) Submit(model int64, promptLen, outputLen int) (int64, <-chan core.Token, error) {
	return s.SubmitTenant(model, 0, promptLen, outputLen)
}

// SubmitTenant is Submit with a tenant tag: under Config.Fairness the
// scheduler's VTC layer keys admission fairness on it. Tenant 0 is
// untagged (all untagged requests share one fairness bucket).
func (s *Server) SubmitTenant(model, tenant int64, promptLen, outputLen int) (int64, <-chan core.Token, error) {
	if promptLen <= 0 || outputLen <= 0 {
		return 0, nil, fmt.Errorf("serve: prompt and output lengths must be positive")
	}
	if tenant < 0 {
		return 0, nil, fmt.Errorf("serve: tenant id must be non-negative")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, nil, fmt.Errorf("serve: server closed")
	}
	s.nextID++
	id := s.nextID
	ch := make(chan core.Token, outputLen+1)
	s.streams[id] = ch
	now := s.simNow()
	r := &core.Request{
		ID:        id,
		Model:     lora.ModelID(model),
		PromptLen: promptLen,
		OutputLen: outputLen,
		Arrival:   now,
		Tenant:    tenant,
	}
	if _, err := s.sch.Dispatch(r, now); err != nil {
		delete(s.streams, id)
		return 0, nil, err
	}
	s.cond.Broadcast()
	return id, ch, nil
}

// FailGPU kills one in-process GPU by UUID: its engine drops all
// resident state (KvCache, adapter pins) and every lost request is
// requeued FCFS onto the survivors with prefill recomputation. Because
// the same *core.Request objects recover in-process, Generated carries
// over and open token streams resume seamlessly where they left off.
// It reports whether the GPU existed and was alive.
func (s *Server) FailGPU(uuid string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.simNow()
	g, lost, _, ok := s.sch.FailGPU(uuid, now)
	if !ok {
		return false
	}
	s.failures++
	for i, got := range s.gpus {
		if got == g {
			s.gpus = append(s.gpus[:i], s.gpus[i+1:]...)
			break
		}
	}
	for _, r := range lost {
		s.recovered++
		if _, err := s.sch.Requeue(r, now); err != nil {
			s.dropRequest(r.ID)
		}
	}
	s.cond.Broadcast()
	return true
}

// Cancel aborts a request (e.g. the client disconnected, §5.3) and closes
// its stream. It reports whether the request was found.
func (s *Server) Cancel(id int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.simNow()
	found := false
	for _, g := range s.gpus {
		if g.Engine.Cancel(id, now) != nil {
			found = true
			break
		}
	}
	if ch, ok := s.streams[id]; ok {
		close(ch)
		delete(s.streams, id)
		found = true
	}
	if found {
		// The cancel freed batch/KvCache room: give it to the queue now.
		// Without this, a fleet whose drivers are all parked in cond.Wait
		// (engines idle) strands queued requests until the next finish.
		if _, err := s.sch.DrainQueue(now); err == nil {
			s.cond.Broadcast()
		}
	}
	return found
}

// GPUState is one runner's snapshot for the stats endpoint.
type GPUState struct {
	UUID         string `json:"uuid"`
	Role         string `json:"role"`
	WorkingSet   int    `json:"working_set"`
	ActiveBatch  int    `json:"active_batch"`
	FreeKVPages  int    `json:"free_kv_pages"`
	TotalKVPages int    `json:"total_kv_pages"`
	Adapters     int    `json:"resident_adapters"`
	Steps        int64  `json:"steps"`
	Tokens       int64  `json:"tokens_generated"`
}

// Stats is the cluster snapshot.
type Stats struct {
	GPUs       []GPUState `json:"gpus"`
	QueueLen   int        `json:"queue_len"`
	Streams    int        `json:"open_streams"`
	SimTime    float64    `json:"sim_time_seconds"`
	NeedMore   bool       `json:"need_more_gpus"`
	Releasable int        `json:"releasable_gpus"`
	// GPUFailures counts FailGPU kills; Recovered the requests requeued
	// off dead GPUs.
	GPUFailures int64 `json:"gpu_failures"`
	Recovered   int64 `json:"recovered_requests"`
	// KVMigrations counts prefill→decode KvCache handoffs;
	// AdapterPrefetches the decode-target warm-ups overlapped with
	// prefill (both zero in unified mode).
	KVMigrations      int64 `json:"kv_migrations"`
	AdapterPrefetches int64 `json:"adapter_prefetches"`
	// Tiers merges the per-GPU staging-tier counters (Config.Tiers);
	// ColdStarts/ColdStartP99 summarise the staged HBM-miss latency they
	// explain. All empty/zero on flat-store deployments.
	Tiers        []lora.TierStats `json:"tiers,omitempty"`
	ColdStarts   int              `json:"cold_starts,omitempty"`
	ColdStartP99 float64          `json:"cold_start_p99_seconds,omitempty"`
	// Overload-protection state (Config.Admission): the deepest the wait
	// queue has been, the measured drain rate feeding Retry-After, and
	// the admission outcome counters.
	QueuePeak      int     `json:"queue_peak"`
	DrainRate      float64 `json:"drain_rate_per_sec,omitempty"`
	Rejected       int64   `json:"admission_rejected,omitempty"`
	TenantRejected int64   `json:"admission_tenant_rejected,omitempty"`
	Shed           int64   `json:"admission_shed,omitempty"`
	HTTP429        int64   `json:"http_429,omitempty"`
}

// Snapshot returns the current cluster state.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var cold metrics.Histogram
	st := Stats{
		QueueLen:          s.sch.QueueLen(),
		Streams:           len(s.streams),
		SimTime:           s.simNow().Seconds(),
		NeedMore:          s.sch.NeedMoreGPUs(),
		Releasable:        len(s.sch.ReleasableGPUs()),
		GPUFailures:       s.failures,
		Recovered:         s.recovered,
		KVMigrations:      s.sch.Stats().KVMigrations,
		AdapterPrefetches: s.sch.Stats().AdapterPrefetches,
		QueuePeak:         s.sch.QueuePeak(),
		DrainRate:         s.sch.DrainRate(),
		Rejected:          s.sch.AdmissionStats().Rejected,
		TenantRejected:    s.sch.AdmissionStats().TenantRejected,
		Shed:              s.sch.AdmissionStats().Shed,
		HTTP429:           s.rejected429,
	}
	for _, g := range s.gpus {
		eng := s.engines[g]
		es := eng.Stats()
		gs := GPUState{
			UUID:         g.UUID,
			Role:         g.Role.String(),
			WorkingSet:   eng.WorkingSet(),
			ActiveBatch:  eng.ActiveBatch(),
			FreeKVPages:  eng.KV().FreePages(),
			TotalKVPages: eng.KV().TotalPages(),
			Steps:        es.Steps,
			Tokens:       es.TokensGenerated,
		}
		if store := eng.Store(); store != nil {
			gs.Adapters = store.Len()
		}
		if tiers := eng.Tiers(); tiers != nil {
			st.Tiers = lora.MergeTierStats(st.Tiers, tiers.Stats())
			cold.Merge(tiers.ColdStarts())
		}
		st.GPUs = append(st.GPUs, gs)
	}
	st.ColdStarts = cold.Count()
	st.ColdStartP99 = cold.Percentile(99)
	return st
}

// Close stops the drivers and closes all open streams.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for id, ch := range s.streams {
		close(ch)
		delete(s.streams, id)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// drive is the per-GPU runner loop: run invocations back-to-back, pace
// them in wall time, and hand scheduler work back after each step.
func (s *Server) drive(g *sched.GPU) {
	defer s.wg.Done()
	eng := s.engines[g]
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed {
		if !eng.Busy() {
			s.cond.Wait()
			continue
		}
		now := s.simNow()
		res := eng.Step(now)
		for _, ev := range res.Evicted {
			if _, err := s.sch.Reschedule(ev, g, now); err != nil {
				s.dropRequest(ev.ID)
			}
		}
		if res.Idle {
			wake, ok := eng.EarliestPendingReady()
			if !ok {
				// Nothing loadable; wait for scheduler activity.
				s.cond.Wait()
				continue
			}
			s.sleepLocked(s.wallDelay(wake - now))
			continue
		}
		if g.Role == core.RolePrefill {
			// Step boundary on the prefill pool: hand finished prefills
			// to the decode pool (KvCache moved, not recomputed). The
			// in-process token streams carry over untouched — indices
			// simply continue on the new engine.
			if dsts, err := s.sch.MigratePrefilled(g, s.simNow()); err == nil && len(dsts) > 0 {
				s.cond.Broadcast()
			}
		}
		if len(res.Finished) > 0 || len(res.Evicted) > 0 {
			if _, err := s.sch.DrainQueue(s.simNow()); err == nil {
				s.cond.Broadcast()
			}
		}
		s.sleepLocked(s.wallDelay(res.Latency))
	}
}

// sleepLocked releases the lock for a wall-clock sleep. Closing the
// server does not interrupt an in-flight sleep; Close waits for it.
func (s *Server) sleepLocked(d time.Duration) {
	s.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	s.mu.Lock()
}

func (s *Server) dropRequest(id int64) {
	if ch, ok := s.streams[id]; ok {
		close(ch)
		delete(s.streams, id)
	}
}
