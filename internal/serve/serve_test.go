package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"punica/internal/core"
	"punica/internal/hw"
	"punica/internal/models"
)

func testServer(t *testing.T, gpus int) *Server {
	t.Helper()
	s := New(Config{
		NumGPUs: gpus,
		Engine: core.Config{
			System: core.PunicaSystem(),
			GPU:    hw.A100(),
			Model:  models.Llama2_7B(),
			Rank:   models.DefaultLoRARank,
		},
		Speedup: 5000, // keep wall time tiny in tests
	})
	t.Cleanup(s.Close)
	return s
}

func TestSubmitAndStream(t *testing.T) {
	s := testServer(t, 1)
	id, stream, err := s.Submit(7, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero request id")
	}
	var tokens []core.Token
	timeout := time.After(10 * time.Second)
	for {
		select {
		case tok, ok := <-stream:
			if !ok {
				if len(tokens) != 10 {
					t.Fatalf("streamed %d tokens, want 10", len(tokens))
				}
				if !tokens[9].EOS {
					t.Fatal("last token should be EOS")
				}
				return
			}
			tokens = append(tokens, tok)
		case <-timeout:
			t.Fatalf("stream stalled after %d tokens", len(tokens))
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	s := testServer(t, 2)
	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(model int64) {
			defer wg.Done()
			_, stream, err := s.Submit(model, 32, 6)
			if err != nil {
				errs <- err
				return
			}
			count := 0
			deadline := time.After(15 * time.Second)
			for {
				select {
				case _, ok := <-stream:
					if !ok {
						if count != 6 {
							errs <- fmt.Errorf("model %d got %d tokens", model, count)
						}
						return
					}
					count++
				case <-deadline:
					errs <- fmt.Errorf("model %d stalled", model)
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCancelMidStream(t *testing.T) {
	s := testServer(t, 1)
	id, stream, err := s.Submit(1, 64, 100000) // effectively endless
	if err != nil {
		t.Fatal(err)
	}
	// Read a couple of tokens, then cancel.
	for i := 0; i < 2; i++ {
		select {
		case <-stream:
		case <-time.After(10 * time.Second):
			t.Fatal("no tokens before cancel")
		}
	}
	if !s.Cancel(id) {
		t.Fatal("cancel did not find the request")
	}
	// Stream must close promptly.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-stream:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("stream not closed after cancel")
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	s := testServer(t, 1)
	if _, _, err := s.Submit(1, 0, 5); err == nil {
		t.Fatal("zero prompt should fail")
	}
	if _, _, err := s.Submit(1, 5, 0); err == nil {
		t.Fatal("zero output should fail")
	}
}

func TestHTTPGenerateStreams(t *testing.T) {
	s := testServer(t, 1)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(GenerateRequest{
		Model:     3,
		Prompt:    "translate this sentence into french please and thank you",
		MaxTokens: 5,
	})
	resp, err := http.Post(srv.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("content type %q", got)
	}
	var events []TokenEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev TokenEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	for i, ev := range events {
		if ev.Index != i {
			t.Fatalf("event %d has index %d", i, ev.Index)
		}
	}
	if !events[4].EOS {
		t.Fatal("final event should be EOS")
	}
}

func TestHTTPClientDisconnectCancels(t *testing.T) {
	s := testServer(t, 1)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(GenerateRequest{Model: 1, PromptLen: 64, MaxTokens: 1000000})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", srv.URL+"/v1/generate", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one line then disconnect.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first token")
	}
	cancel()
	resp.Body.Close()

	// The engine must drain: working set returns to 0.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Snapshot()
		if st.GPUs[0].WorkingSet == 0 && st.Streams == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("request not cancelled after client disconnect")
}

func TestHTTPStatsAndHealth(t *testing.T) {
	s := testServer(t, 2)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.GPUs) != 2 {
		t.Fatalf("stats has %d GPUs, want 2", len(st.GPUs))
	}
	if st.GPUs[0].TotalKVPages == 0 {
		t.Fatal("KV pool missing from stats")
	}
	if st.Releasable != 2 {
		t.Fatalf("idle cluster should report 2 releasable GPUs, got %d", st.Releasable)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	s := testServer(t, 1)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/generate", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}

	body, _ := json.Marshal(GenerateRequest{Model: 1, MaxTokens: 5}) // no prompt
	resp, err = http.Post(srv.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty prompt: status %d", resp.StatusCode)
	}
}

func TestEstimateTokens(t *testing.T) {
	if EstimateTokens("") != 0 {
		t.Fatal("empty text should be 0 tokens")
	}
	// 3 words ≈ 4 tokens (¾ word per token).
	if got := EstimateTokens("one two three"); got != 4 {
		t.Fatalf("EstimateTokens = %d, want 4", got)
	}
}

func TestServerCloseIsClean(t *testing.T) {
	s := New(Config{
		NumGPUs: 1,
		Engine: core.Config{
			System: core.PunicaSystem(),
			GPU:    hw.A100(),
			Model:  models.Llama2_7B(),
			Rank:   models.DefaultLoRARank,
		},
		Speedup: 5000,
	})
	_, stream, err := s.Submit(1, 32, 1000)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Stream must be closed; further submits must fail.
	for range stream {
	}
	if _, _, err := s.Submit(1, 32, 10); err == nil {
		t.Fatal("submit after close should fail")
	}
}
