package serve

import (
	"testing"
	"time"

	"punica/internal/core"
	"punica/internal/hw"
	"punica/internal/models"
)

// TestDisaggregatedServerStreams serves a request through a split
// in-process fleet: prefill on the prefill pool, mid-generation KV
// migration, decode completion on the decode pool — with the user's
// token stream delivering every index exactly once.
func TestDisaggregatedServerStreams(t *testing.T) {
	s := New(Config{
		PrefillGPUs: 1,
		DecodeGPUs:  1,
		Engine: core.Config{
			System: core.PunicaSystem(),
			GPU:    hw.A100(),
			Model:  models.Llama2_7B(),
			Rank:   models.DefaultLoRARank,
		},
		Speedup: 2000,
	})
	defer s.Close()

	id, ch, err := s.Submit(5, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	var got []core.Token
	timeout := time.After(10 * time.Second)
	for {
		select {
		case tok, open := <-ch:
			if !open {
				if len(got) != 32 {
					t.Fatalf("stream closed after %d/32 tokens", len(got))
				}
				for i, tk := range got {
					if tk.Index != i {
						t.Fatalf("token %d has index %d — duplicate or gap across migration", i, tk.Index)
					}
				}
				st := s.Snapshot()
				if st.KVMigrations != 1 {
					t.Fatalf("kv migrations = %d, want 1", st.KVMigrations)
				}
				if len(st.GPUs) != 2 || st.GPUs[0].Role != "prefill" || st.GPUs[1].Role != "decode" {
					t.Fatalf("roles = %v / %v", st.GPUs[0].Role, st.GPUs[1].Role)
				}
				return
			}
			got = append(got, tok)
		case <-timeout:
			t.Fatalf("timed out with %d tokens (request %d)", len(got), id)
		}
	}
}

// TestDisaggregatedServerSurvivesDecodeFailure kills the only decode
// GPU mid-run: the lost request re-enters through the prefill pool's
// recompute path and the stream still completes.
func TestDisaggregatedServerSurvivesDecodeFailure(t *testing.T) {
	s := New(Config{
		PrefillGPUs: 1,
		DecodeGPUs:  1,
		Engine: core.Config{
			System: core.PunicaSystem(),
			GPU:    hw.A100(),
			Model:  models.Llama2_7B(),
			Rank:   models.DefaultLoRARank,
		},
		Speedup: 500,
	})
	defer s.Close()

	_, ch, err := s.Submit(2, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Let the prefill hand off, then kill the decode GPU.
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().KVMigrations == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no migration happened")
		}
		time.Sleep(time.Millisecond)
	}
	if !s.FailGPU("gpu-01") {
		t.Fatal("FailGPU found no decode GPU")
	}
	var got []core.Token
	timeout := time.After(15 * time.Second)
	for {
		select {
		case tok, open := <-ch:
			if !open {
				if len(got) == 0 || !got[len(got)-1].EOS {
					t.Fatalf("stream ended without EOS after %d tokens", len(got))
				}
				return
			}
			got = append(got, tok)
		case <-timeout:
			t.Fatalf("timed out with %d tokens after decode failure", len(got))
		}
	}
}
