package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// GenerateRequest is the POST /v1/generate body. Either Prompt (token
// count inferred) or PromptLen must be set.
type GenerateRequest struct {
	// Model is the LoRA adapter id ("the identifier of the LoRA model
	// and a prompt", §3).
	Model int64 `json:"model"`
	// Prompt is free text; its token count is estimated at ~¾ word per
	// token (§2.1).
	Prompt string `json:"prompt,omitempty"`
	// PromptLen overrides the estimated prompt token count.
	PromptLen int `json:"prompt_len,omitempty"`
	// MaxTokens is the response length limit (the stopping condition).
	MaxTokens int `json:"max_tokens"`
	// Tenant tags the request's owning user for the Config.Fairness
	// admission layer. 0 (or omitted) is untagged.
	Tenant int64 `json:"tenant,omitempty"`
}

// TokenEvent is one NDJSON line of the streamed response.
type TokenEvent struct {
	RequestID int64   `json:"request_id"`
	Index     int     `json:"index"`
	TokenID   int     `json:"token_id"`
	SimTime   float64 `json:"sim_time_seconds"`
	EOS       bool    `json:"eos"`
}

// EstimateTokens converts text to an approximate token count ("a token is
// roughly ¾ of an English word", §2.1 — i.e. ~4/3 tokens per word).
func EstimateTokens(text string) int {
	words := len(strings.Fields(text))
	if words == 0 {
		return 0
	}
	return (words*4 + 2) / 3
}

// Handler returns the REST API:
//
//	POST /v1/generate  — stream generated tokens as NDJSON
//	GET  /v1/stats     — cluster snapshot
//	GET  /healthz      — liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	promptLen := req.PromptLen
	if promptLen == 0 {
		promptLen = EstimateTokens(req.Prompt)
	}
	if promptLen <= 0 {
		http.Error(w, "empty prompt", http.StatusBadRequest)
		return
	}
	if req.MaxTokens <= 0 {
		req.MaxTokens = 128
	}
	id, stream, err := s.SubmitTenant(req.Model, req.Tenant, promptLen, req.MaxTokens)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Request-ID", fmt.Sprint(id))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		select {
		case tok, ok := <-stream:
			if !ok {
				return // generation complete (or cancelled)
			}
			ev := TokenEvent{
				RequestID: tok.RequestID,
				Index:     tok.Index,
				TokenID:   tok.TokenID,
				SimTime:   tok.At.Seconds(),
				EOS:       tok.EOS,
			}
			if err := enc.Encode(&ev); err != nil {
				s.Cancel(id)
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-ctx.Done():
			// Client disconnected: cancel and free the GPU state
			// ("A typical scenario for cancellation is user
			// disconnection", §5.3).
			s.Cancel(id)
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
