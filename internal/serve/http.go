package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"punica/internal/sched"
)

// GenerateRequest is the POST /v1/generate body. Either Prompt (token
// count inferred) or PromptLen must be set.
type GenerateRequest struct {
	// Model is the LoRA adapter id ("the identifier of the LoRA model
	// and a prompt", §3).
	Model int64 `json:"model"`
	// Prompt is free text; its token count is estimated at ~¾ word per
	// token (§2.1).
	Prompt string `json:"prompt,omitempty"`
	// PromptLen overrides the estimated prompt token count.
	PromptLen int `json:"prompt_len,omitempty"`
	// MaxTokens is the response length limit (the stopping condition).
	MaxTokens int `json:"max_tokens"`
	// Tenant tags the request's owning user for the Config.Fairness
	// admission layer. 0 (or omitted) is untagged.
	Tenant int64 `json:"tenant,omitempty"`
}

// TokenEvent is one NDJSON line of the streamed response.
type TokenEvent struct {
	RequestID int64   `json:"request_id"`
	Index     int     `json:"index"`
	TokenID   int     `json:"token_id"`
	SimTime   float64 `json:"sim_time_seconds"`
	EOS       bool    `json:"eos"`
}

// Backpressure is the unified JSON envelope for every overload-shaped
// refusal on the serving path: admission rejections and sheds (429) and
// capacity refusals like a saturated adapter store (503). Clients key
// off Code; RetryAfterSeconds mirrors the Retry-After header for
// clients that prefer the body.
type Backpressure struct {
	Error             string  `json:"error"`
	Code              string  `json:"code"`
	RetryAfterSeconds float64 `json:"retry_after_seconds"`
}

// Backpressure codes.
const (
	CodeQueueFull       = "queue_full"        // server admission queue at cap
	CodeTenantQueueFull = "tenant_queue_full" // per-tenant cap reached
	CodeShed            = "shed"              // queued request shed for a higher-priority arrival
	CodeStoreFull       = "store_full"        // adapter store saturated (ErrStoreFull)
	CodeUnavailable     = "unavailable"       // other transient capacity failure
)

// WriteBackpressure sends one backpressure refusal: the Retry-After
// header (whole seconds, rounded up, at least 1 — the HTTP resolution
// floor) plus the JSON envelope.
func WriteBackpressure(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", fmt.Sprint(secs))
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(Backpressure{
		Error:             msg,
		Code:              code,
		RetryAfterSeconds: retryAfter.Seconds(),
	})
}

// EstimateTokens converts text to an approximate token count ("a token is
// roughly ¾ of an English word", §2.1 — i.e. ~4/3 tokens per word).
func EstimateTokens(text string) int {
	words := len(strings.Fields(text))
	if words == 0 {
		return 0
	}
	return (words*4 + 2) / 3
}

// Handler returns the REST API:
//
//	POST /v1/generate  — stream generated tokens as NDJSON
//	GET  /v1/stats     — cluster snapshot
//	GET  /healthz      — liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	promptLen := req.PromptLen
	if promptLen == 0 {
		promptLen = EstimateTokens(req.Prompt)
	}
	if promptLen <= 0 {
		http.Error(w, "empty prompt", http.StatusBadRequest)
		return
	}
	if req.MaxTokens <= 0 {
		req.MaxTokens = 128
	}
	id, stream, err := s.SubmitTenant(req.Model, req.Tenant, promptLen, req.MaxTokens)
	if err != nil {
		// Every refusal wears the same backpressure envelope: admission
		// rejections answer 429 with a drain-rate-derived Retry-After,
		// anything else a retryable 503.
		switch {
		case errors.Is(err, sched.ErrQueueFull):
			s.note429()
			WriteBackpressure(w, http.StatusTooManyRequests, CodeQueueFull, err.Error(), s.RetryAfter())
		case errors.Is(err, sched.ErrTenantQueueFull):
			s.note429()
			WriteBackpressure(w, http.StatusTooManyRequests, CodeTenantQueueFull, err.Error(), s.RetryAfter())
		default:
			WriteBackpressure(w, http.StatusServiceUnavailable, CodeUnavailable, err.Error(), s.RetryAfter())
		}
		return
	}

	// The 200 header is written lazily at the first token: a request the
	// admission layer sheds while still queued has produced nothing yet,
	// so its handler can still answer 429 on the closed stream.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Request-ID", fmt.Sprint(id))
	flusher, _ := w.(http.Flusher)
	started := false

	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		select {
		case tok, ok := <-stream:
			if !ok {
				if !started {
					if s.WasShed(id) {
						s.note429()
						WriteBackpressure(w, http.StatusTooManyRequests, CodeShed,
							"request shed under overload before first token", s.RetryAfter())
					} else {
						// Closed with no output and not shed: the request
						// was dropped (recovery failure or server close).
						WriteBackpressure(w, http.StatusServiceUnavailable, CodeUnavailable,
							"request dropped before first token", s.RetryAfter())
					}
				}
				return // generation complete (or cancelled)
			}
			if !started {
				w.WriteHeader(http.StatusOK)
				started = true
			}
			ev := TokenEvent{
				RequestID: tok.RequestID,
				Index:     tok.Index,
				TokenID:   tok.TokenID,
				SimTime:   tok.At.Seconds(),
				EOS:       tok.EOS,
			}
			if err := enc.Encode(&ev); err != nil {
				s.Cancel(id)
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-ctx.Done():
			// Client disconnected: cancel and free the GPU state
			// ("A typical scenario for cancellation is user
			// disconnection", §5.3).
			s.Cancel(id)
			return
		}
	}
}

// note429 counts one 429 answered by the generate endpoint.
func (s *Server) note429() {
	s.mu.Lock()
	s.rejected429++
	s.mu.Unlock()
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
