package dist

import (
	"time"

	"punica/internal/sim"
)

// Phase is one interval of a time-varying popularity Mix: a distribution
// over a model-id range that holds for Length of simulated time.
type Phase struct {
	// Length is the phase duration. The final phase also covers every
	// later instant, so a Mix never runs out of schedule.
	Length time.Duration
	// Kind selects the phase's distribution.
	Kind Kind
	// Alpha overrides DefaultZipfAlpha for Skewed/Zipf phases when > 1.
	Alpha float64
	// NumModels is the phase's population size.
	NumModels int
	// Offset shifts the phase's model ids, so consecutive phases can
	// rotate the hot set (disjoint offsets) or share it (equal offsets).
	Offset int
}

// Mix is a schedule of popularity phases — the time-varying extension
// the Fig. 13 / autoscale experiments use to model popularity drift
// (a hot set that rotates over the day). The zero Mix is invalid; build
// one with at least one Phase.
type Mix struct {
	Phases []Phase
}

// NumModels returns the total model-id space the mix can assign:
// the maximum Offset+NumModels over all phases.
func (m Mix) NumModels() int {
	max := 0
	for _, p := range m.Phases {
		n := p.NumModels
		if n < 1 {
			n = 1
		}
		if p.Offset+n > max {
			max = p.Offset + n
		}
	}
	return max
}

// MixAssigner draws model ids under a Mix's schedule. Like Assigner it
// is deterministic given its RNG.
type MixAssigner struct {
	mix       Mix
	ends      []time.Duration
	assigners []*Assigner
}

// NewMixAssigner builds the runtime for a mix. It panics on an empty
// schedule.
func NewMixAssigner(m Mix, rng *sim.RNG) *MixAssigner {
	if len(m.Phases) == 0 {
		panic("dist: mix needs at least one phase")
	}
	ma := &MixAssigner{mix: m}
	var at time.Duration
	for _, p := range m.Phases {
		at += p.Length
		ma.ends = append(ma.ends, at)
		if (p.Kind == Skewed || p.Kind == Zipf) && p.Alpha > 1 {
			ma.assigners = append(ma.assigners, NewZipfAssigner(p.NumModels, p.Alpha, rng))
		} else {
			ma.assigners = append(ma.assigners, NewAssigner(p.Kind, p.NumModels, rng))
		}
	}
	return ma
}

// AssignAt returns a model id for a request arriving at simulated time
// t: the phase containing t assigns, shifted by its Offset. Times past
// the schedule fall into the final phase.
func (ma *MixAssigner) AssignAt(t time.Duration) int {
	i := len(ma.ends) - 1
	for j, end := range ma.ends {
		if t < end {
			i = j
			break
		}
	}
	return ma.mix.Phases[i].Offset + ma.assigners[i].Assign()
}

// PhaseAt returns the phase covering simulated time t. Times past the
// schedule fall into the final phase, mirroring AssignAt; ok is false
// only for an empty (invalid) mix.
func (m Mix) PhaseAt(t time.Duration) (Phase, bool) {
	if len(m.Phases) == 0 {
		return Phase{}, false
	}
	var at time.Duration
	for i, p := range m.Phases {
		at += p.Length
		if t < at || i == len(m.Phases)-1 {
			return p, true
		}
	}
	return m.Phases[len(m.Phases)-1], true
}
