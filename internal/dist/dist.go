// Package dist models LoRA adapter popularity: how the requests of a
// multi-tenant workload distribute over fine-tuned models. The paper's
// evaluation (§7, Fig. 7–12) sweeps four distributions:
//
//   - Distinct: every request uses a different LoRA model — the
//     worst case for weight sharing.
//   - Uniform: requests spread evenly over a small population of
//     models (⌈√n⌉ for n requests), so batches share adapters.
//   - Skewed: a Zipf-like popularity law ("the number of requests to
//     the i-th most popular model is α times that of the i+1-th's",
//     §7, with α = 1.5) — a hot head plus a long tail.
//   - Identical: every request uses the same model — equivalent to
//     single-tenant serving.
//
// The package provides three views of a distribution, all deterministic:
//
//   - NumModels sizes the model population backing n requests.
//   - SegmentSizes lays out a batch as SGMV segments (the Fig. 7–9
//     microbenchmark shapes, matching the paper's workload table).
//   - Assigner draws per-request model ids from a sim.RNG, the
//     stochastic counterpart used by the workload generators.
//
// Beyond the paper's four, the package carries two extensions: the Zipf
// kind with a caller-chosen decay α (NewZipfAssigner, ZipfSegmentSizes),
// and a time-varying popularity Mix (mix.go) that rotates the hot set
// over a run — the drift scenario the Fig. 13 / autoscale experiments
// exercise.
package dist

import (
	"fmt"
	"math"
)

// Kind selects a LoRA popularity distribution.
type Kind int

const (
	// Distinct assigns every request its own model.
	Distinct Kind = iota
	// Uniform spreads requests evenly over a ⌈√n⌉-model population.
	Uniform
	// Skewed follows the paper's Zipf-1.5 popularity law.
	Skewed
	// Identical assigns every request the same model.
	Identical
	// Zipf is the parameterized extension of Skewed: the same geometric
	// popularity law with a caller-chosen decay α (DefaultZipfAlpha when
	// used through the plain Kind APIs). It is not part of Kinds, which
	// lists only the paper's four distributions.
	Zipf
)

// Kinds lists the paper's four distributions in plotting order.
var Kinds = []Kind{Distinct, Uniform, Skewed, Identical}

// DefaultZipfAlpha is the paper's Skewed decay: each model receives α
// times the requests of the next most popular one (§7).
const DefaultZipfAlpha = 1.5

// String names the distribution as the figures label it.
func (k Kind) String() string {
	switch k {
	case Distinct:
		return "Distinct"
	case Uniform:
		return "Uniform"
	case Skewed:
		return "Skewed"
	case Identical:
		return "Identical"
	case Zipf:
		return "Zipf"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a distribution from its name (case-sensitive, as
// printed by String).
func ParseKind(name string) (Kind, error) {
	for _, k := range append(Kinds, Zipf) {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("dist: unknown distribution %q", name)
}

// NumModels returns the model population backing n requests under the
// distribution: n for Distinct, 1 for Identical, and ⌈√n⌉ for the
// sharing distributions (Uniform, Skewed, Zipf) — small enough that
// batches concentrate into few segments, large enough to stress the
// adapter store. Always at least 1.
func NumModels(k Kind, n int) int {
	if n < 1 {
		n = 1
	}
	switch k {
	case Distinct:
		return n
	case Identical:
		return 1
	case Uniform, Skewed, Zipf:
		return int(math.Ceil(math.Sqrt(float64(n))))
	default:
		panic(fmt.Sprintf("dist: unknown kind %d", int(k)))
	}
}

// SegmentSizes lays out a batch of the given size as SGMV segment row
// counts under the distribution — the deterministic microbenchmark
// shapes of Fig. 7–9. Invariants: the sizes sum to batch, every size is
// positive, Distinct yields batch segments, Identical yields one, and
// the sharing distributions yield NumModels(k, batch) segments.
func SegmentSizes(k Kind, batch int) []int {
	if batch <= 0 {
		return nil
	}
	switch k {
	case Distinct:
		sizes := make([]int, batch)
		for i := range sizes {
			sizes[i] = 1
		}
		return sizes
	case Identical:
		return []int{batch}
	case Uniform:
		return evenSizes(batch, NumModels(Uniform, batch))
	case Skewed, Zipf:
		return ZipfSegmentSizes(batch, NumModels(Skewed, batch), DefaultZipfAlpha)
	default:
		panic(fmt.Sprintf("dist: unknown kind %d", int(k)))
	}
}

// evenSizes splits batch rows into segments of near-equal size.
func evenSizes(batch, segments int) []int {
	if segments > batch {
		segments = batch
	}
	base, extra := batch/segments, batch%segments
	sizes := make([]int, segments)
	for i := range sizes {
		sizes[i] = base
		if i < extra {
			sizes[i]++
		}
	}
	return sizes
}

// ZipfSegmentSizes apportions batch rows over segments models whose
// popularity decays geometrically by alpha (> 1): segment i's share is
// proportional to alpha^-i. Every segment receives at least one row
// (the microbenchmark populates all models), the head absorbs rounding,
// and sizes are non-increasing.
func ZipfSegmentSizes(batch, segments int, alpha float64) []int {
	if batch <= 0 {
		return nil
	}
	if alpha <= 1 {
		panic("dist: Zipf needs alpha > 1")
	}
	if segments > batch {
		segments = batch
	}
	if segments < 1 {
		segments = 1
	}
	weights := make([]float64, segments)
	total := 0.0
	w := 1.0
	for i := range weights {
		weights[i] = w
		total += w
		w /= alpha
	}
	// Give every segment its floor share (at least one row), then hand
	// the remainder out head-first, preserving the non-increasing order.
	sizes := make([]int, segments)
	left := batch - segments
	for i := range sizes {
		sizes[i] = 1
		extra := int(float64(batch) * weights[i] / total)
		if extra > 0 {
			extra-- // the guaranteed row counts toward the share
		}
		if extra > left {
			extra = left
		}
		sizes[i] += extra
		left -= extra
	}
	for i := 0; left > 0; i++ {
		sizes[i%segments]++
		left--
	}
	return sizes
}
