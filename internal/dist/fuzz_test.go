package dist

import (
	"testing"

	"punica/internal/sim"
)

// FuzzAssigner drives every distribution kind with arbitrary population
// sizes and seeds, checking the invariants workload generation relies
// on: assignments stay within [0, NumModels()) and the draw sequence is
// a pure function of (kind, population, seed).
func FuzzAssigner(f *testing.F) {
	f.Add(uint8(0), uint16(1), int64(1), uint8(10))
	f.Add(uint8(2), uint16(100), int64(42), uint8(50))
	f.Add(uint8(4), uint16(7), int64(-3), uint8(200))
	f.Fuzz(func(t *testing.T, kindRaw uint8, nRaw uint16, seed int64, drawsRaw uint8) {
		kinds := []Kind{Distinct, Uniform, Skewed, Identical, Zipf}
		kind := kinds[int(kindRaw)%len(kinds)]
		numModels := int(nRaw)%2048 + 1
		draws := int(drawsRaw) + 1

		a := NewAssigner(kind, numModels, sim.NewRNG(seed))
		b := NewAssigner(kind, numModels, sim.NewRNG(seed))
		if a.NumModels() < 1 {
			t.Fatalf("NumModels = %d", a.NumModels())
		}
		for i := 0; i < draws; i++ {
			got := a.Assign()
			if got < 0 || got >= a.NumModels() {
				t.Fatalf("draw %d: %d outside [0,%d)", i, got, a.NumModels())
			}
			if again := b.Assign(); again != got {
				t.Fatalf("draw %d not deterministic: %d vs %d", i, got, again)
			}
		}
		if kind == Identical {
			c := NewAssigner(kind, numModels, sim.NewRNG(seed))
			for i := 0; i < draws; i++ {
				if c.Assign() != 0 {
					t.Fatal("Identical must always assign model 0")
				}
			}
		}
	})
}

// FuzzZipfAssigner covers the parameterized extension: arbitrary decay
// alphas stay in range and deterministic.
func FuzzZipfAssigner(f *testing.F) {
	f.Add(uint16(10), int64(7), uint8(20), uint8(15))
	f.Fuzz(func(t *testing.T, nRaw uint16, seed int64, alphaRaw uint8, drawsRaw uint8) {
		numModels := int(nRaw)%512 + 1
		alpha := 1.0 + float64(alphaRaw%40)/10 + 0.1 // (1.1, 5.1)
		draws := int(drawsRaw) + 1
		a := NewZipfAssigner(numModels, alpha, sim.NewRNG(seed))
		b := NewZipfAssigner(numModels, alpha, sim.NewRNG(seed))
		for i := 0; i < draws; i++ {
			got := a.Assign()
			if got < 0 || got >= numModels {
				t.Fatalf("draw %d: %d outside [0,%d)", i, got, numModels)
			}
			if b.Assign() != got {
				t.Fatal("Zipf assigner not deterministic")
			}
		}
	})
}
