package dist

import (
	"testing"
	"time"

	"punica/internal/sim"
)

func TestKindStringsAndParse(t *testing.T) {
	want := map[Kind]string{
		Distinct: "Distinct", Uniform: "Uniform", Skewed: "Skewed",
		Identical: "Identical", Zipf: "Zipf",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("String(%d) = %q, want %q", int(k), k.String(), s)
		}
		got, err := ParseKind(s)
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind should reject unknown names")
	}
	if len(Kinds) != 4 {
		t.Fatalf("Kinds lists %d distributions, want the paper's 4", len(Kinds))
	}
}

func TestNumModelsBoundaries(t *testing.T) {
	cases := []struct {
		k    Kind
		n    int
		want int
	}{
		{Distinct, 100, 100},
		{Distinct, 1, 1},
		{Distinct, 0, 1},  // degenerate inputs clamp to one model
		{Distinct, -5, 1}, // never a zero or negative population
		{Identical, 100, 1},
		{Identical, 0, 1},
		{Uniform, 100, 10},
		{Uniform, 101, 11},
		{Uniform, 1, 1},
		{Skewed, 100, 10},
		{Skewed, 0, 1},
		{Zipf, 64, 8},
	}
	for _, c := range cases {
		if got := NumModels(c.k, c.n); got != c.want {
			t.Errorf("NumModels(%v, %d) = %d, want %d", c.k, c.n, got, c.want)
		}
	}
}

func TestSegmentSizeInvariants(t *testing.T) {
	for _, k := range append(Kinds, Zipf) {
		for b := 1; b <= 64; b++ {
			sizes := SegmentSizes(k, b)
			sum := 0
			for i, sz := range sizes {
				if sz <= 0 {
					t.Fatalf("%v batch %d: segment %d has size %d", k, b, i, sz)
				}
				sum += sz
			}
			if sum != b {
				t.Fatalf("%v batch %d: sizes sum to %d", k, b, sum)
			}
			switch k {
			case Distinct:
				if len(sizes) != b {
					t.Fatalf("Distinct batch %d: %d segments, want %d", b, len(sizes), b)
				}
			case Identical:
				if len(sizes) != 1 {
					t.Fatalf("Identical batch %d: %d segments, want 1", b, len(sizes))
				}
			default:
				if len(sizes) != NumModels(k, b) {
					t.Fatalf("%v batch %d: %d segments, want %d",
						k, b, len(sizes), NumModels(k, b))
				}
			}
		}
	}
	if SegmentSizes(Skewed, 0) != nil {
		t.Error("zero batch should produce no segments")
	}
}

func TestSkewedSegmentsNonIncreasing(t *testing.T) {
	for _, b := range []int{2, 8, 16, 32, 64} {
		sizes := SegmentSizes(Skewed, b)
		for i := 1; i < len(sizes); i++ {
			if sizes[i] > sizes[i-1] {
				t.Fatalf("batch %d: Skewed sizes not non-increasing: %v", b, sizes)
			}
		}
		// The hot head must dominate: top-1 share well above even split
		// (meaningless below a few rows per segment).
		if b >= 8 && float64(sizes[0])*float64(len(sizes)) < 1.5*float64(b) {
			t.Errorf("batch %d: head segment %d of %d is not hot: %v",
				b, sizes[0], b, sizes)
		}
	}
}

func TestZipfSegmentSizesAlphaConcentrates(t *testing.T) {
	// Larger decay → a hotter head.
	mild := ZipfSegmentSizes(64, 8, 1.1)
	steep := ZipfSegmentSizes(64, 8, 3.0)
	if steep[0] <= mild[0] {
		t.Errorf("alpha 3.0 head %d should beat alpha 1.1 head %d", steep[0], mild[0])
	}
	defer func() {
		if recover() == nil {
			t.Error("alpha <= 1 should panic")
		}
	}()
	ZipfSegmentSizes(10, 4, 1.0)
}

func TestAssignerDeterministicUnderSeed(t *testing.T) {
	for _, k := range append(Kinds, Zipf) {
		a := NewAssigner(k, NumModels(k, 200), sim.NewRNG(42))
		b := NewAssigner(k, NumModels(k, 200), sim.NewRNG(42))
		for i := 0; i < 200; i++ {
			if x, y := a.Assign(), b.Assign(); x != y {
				t.Fatalf("%v: same-seed assigners diverged at draw %d: %d vs %d", k, i, x, y)
			}
		}
	}
}

func TestAssignerPopulations(t *testing.T) {
	for _, k := range Kinds {
		n := NumModels(k, 100)
		a := NewAssigner(k, n, sim.NewRNG(7))
		seen := map[int]bool{}
		for i := 0; i < 100; i++ {
			id := a.Assign()
			if id < 0 || id >= n {
				t.Fatalf("%v: id %d outside [0,%d)", k, id, n)
			}
			seen[id] = true
		}
		switch k {
		case Distinct:
			if len(seen) != 100 {
				t.Errorf("Distinct: %d distinct ids over 100 draws, want 100", len(seen))
			}
		case Identical:
			if len(seen) != 1 {
				t.Errorf("Identical: %d distinct ids, want 1", len(seen))
			}
		}
	}
}

func TestSkewedAssignerTopShare(t *testing.T) {
	// Zipf-1.5 over 10 models: rank 0 holds ≈ (1-1/1.5) ≈ 1/3 of the
	// mass; with 5000 draws the sample share must land near it.
	a := NewAssigner(Skewed, 10, sim.NewRNG(3))
	counts := make([]int, 10)
	const draws = 5000
	for i := 0; i < draws; i++ {
		counts[a.Assign()]++
	}
	top := float64(counts[0]) / draws
	if top < 0.28 || top > 0.40 {
		t.Errorf("Skewed top-1 share = %.3f, want ~0.33", top)
	}
	// Monotone head: the first three ranks must be ordered.
	if !(counts[0] > counts[1] && counts[1] > counts[2]) {
		t.Errorf("Skewed head not ordered: %v", counts[:4])
	}
}

func TestZipfAssignerCustomAlpha(t *testing.T) {
	// α = 4: rank 0 holds ≈ 3/4 of the mass.
	a := NewZipfAssigner(10, 4.0, sim.NewRNG(5))
	counts := make([]int, 10)
	const draws = 4000
	for i := 0; i < draws; i++ {
		counts[a.Assign()]++
	}
	if top := float64(counts[0]) / draws; top < 0.65 {
		t.Errorf("Zipf(4) top-1 share = %.3f, want ~0.75", top)
	}
}

func TestMixRotatesHotSet(t *testing.T) {
	mix := Mix{Phases: []Phase{
		{Length: time.Minute, Kind: Skewed, NumModels: 8, Offset: 0},
		{Length: time.Minute, Kind: Skewed, NumModels: 8, Offset: 8},
		{Length: time.Minute, Kind: Zipf, Alpha: 2.5, NumModels: 8, Offset: 16},
	}}
	if mix.NumModels() != 24 {
		t.Fatalf("mix population = %d, want 24", mix.NumModels())
	}
	ma := NewMixAssigner(mix, sim.NewRNG(9))
	phaseOf := func(t time.Duration) (lo, hi int) {
		switch {
		case t < time.Minute:
			return 0, 8
		case t < 2*time.Minute:
			return 8, 16
		default:
			return 16, 24
		}
	}
	for _, at := range []time.Duration{
		0, 30 * time.Second, 90 * time.Second, 150 * time.Second,
		10 * time.Minute, // past the schedule: final phase applies
	} {
		lo, hi := phaseOf(at)
		for i := 0; i < 50; i++ {
			id := ma.AssignAt(at)
			if id < lo || id >= hi {
				t.Fatalf("t=%v: id %d outside hot set [%d,%d)", at, id, lo, hi)
			}
		}
	}
}

func TestMixDeterministic(t *testing.T) {
	mix := Mix{Phases: []Phase{
		{Length: time.Minute, Kind: Uniform, NumModels: 4},
		{Length: time.Minute, Kind: Skewed, NumModels: 4, Offset: 4},
	}}
	a := NewMixAssigner(mix, sim.NewRNG(11))
	b := NewMixAssigner(mix, sim.NewRNG(11))
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * time.Second
		if x, y := a.AssignAt(at), b.AssignAt(at); x != y {
			t.Fatalf("same-seed mixes diverged at %v: %d vs %d", at, x, y)
		}
	}
}
