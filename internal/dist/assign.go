package dist

import (
	"fmt"

	"punica/internal/sim"
)

// Assigner draws per-request model ids (in [0, NumModels)) under a
// popularity distribution. It is deterministic given its RNG: workload
// generators built from the same seed reproduce identical assignments.
type Assigner struct {
	kind  Kind
	n     int
	rng   *sim.RNG
	zipf  *sim.Zipf
	next  int
	alpha float64
}

// NewAssigner builds an assigner over a population of numModels ids.
// Skewed and Zipf kinds use DefaultZipfAlpha; use NewZipfAssigner for a
// custom decay.
func NewAssigner(kind Kind, numModels int, rng *sim.RNG) *Assigner {
	if kind == Skewed || kind == Zipf {
		return NewZipfAssigner(numModels, DefaultZipfAlpha, rng)
	}
	if numModels < 1 {
		numModels = 1
	}
	switch kind {
	case Distinct, Uniform, Identical:
		return &Assigner{kind: kind, n: numModels, rng: rng}
	default:
		panic(fmt.Sprintf("dist: unknown kind %d", int(kind)))
	}
}

// NewZipfAssigner builds the parameterized extension: a geometric
// popularity law with decay alpha (> 1) over numModels ids, id 0 most
// popular.
func NewZipfAssigner(numModels int, alpha float64, rng *sim.RNG) *Assigner {
	if numModels < 1 {
		numModels = 1
	}
	return &Assigner{
		kind:  Zipf,
		n:     numModels,
		rng:   rng,
		alpha: alpha,
		zipf:  sim.NewZipf(rng, numModels, alpha),
	}
}

// NumModels returns the assigner's population size.
func (a *Assigner) NumModels() int { return a.n }

// Assign returns the next request's model id. Distinct cycles through
// the population so n requests over a population of n receive n distinct
// models; Uniform samples uniformly; Skewed/Zipf sample the geometric
// law; Identical always returns 0.
func (a *Assigner) Assign() int {
	switch a.kind {
	case Distinct:
		id := a.next
		a.next = (a.next + 1) % a.n
		return id
	case Uniform:
		return a.rng.Intn(a.n)
	case Identical:
		return 0
	default: // Skewed, Zipf
		return a.zipf.Rank()
	}
}
