package core

import (
	"fmt"
	"time"

	"punica/internal/hw"
	"punica/internal/kvcache"
)

// KVHandle is the unit of deliberate KV migration: one request plus the
// page-exact accounting of the KvCache it computed, detached from any
// engine. It generalises the Crash path from drop-everything-and-
// recompute to move-one-request-without-recomputing — the primitive
// prefill/decode disaggregation schedules on purpose.
type KVHandle struct {
	Request *Request
	KV      kvcache.Handle
}

// TransferTime returns how long the handle's KvCache payload takes to
// cross link — the migration cost the destination engine charges before
// the request may join a batch.
func (h KVHandle) TransferTime(link hw.Link) time.Duration {
	return link.TransferTime(h.KV.Bytes)
}

// ExportKV detaches a prefilled resident request from the engine as a
// migration handle: its KvCache pages are freed page-exactly (the handle
// remembers tokens, pages and payload bytes) and its adapter pin is
// released, but unlike Cancel the request keeps its prefilled state — the
// importing engine resumes decoding without recomputation. Only
// prefilled, unfinished requests export; exporting anything else is an
// error and changes nothing.
func (e *Engine) ExportKV(id int64, now time.Duration) (KVHandle, error) {
	e.version++
	seq := kvcache.SeqID(id)
	detach := func(r *Request) (KVHandle, error) {
		if !r.prefilled || r.done {
			return KVHandle{}, fmt.Errorf("core: request %d is not in a migratable state", id)
		}
		h, err := e.kv.Export(seq)
		if err != nil {
			return KVHandle{}, err
		}
		e.releaseAdapter(r)
		e.stats.KVExports++
		return KVHandle{Request: r, KV: h}, nil
	}
	for i, r := range e.active {
		if r.ID != id {
			continue
		}
		h, err := detach(r)
		if err != nil {
			return KVHandle{}, err
		}
		e.active = append(e.active[:i], e.active[i+1:]...)
		return h, nil
	}
	for i, r := range e.pending {
		if r.ID != id {
			continue
		}
		if !e.kv.Has(seq) {
			return KVHandle{}, fmt.Errorf("core: request %d holds no KvCache to export", id)
		}
		h, err := detach(r)
		if err != nil {
			return KVHandle{}, err
		}
		e.pending = append(e.pending[:i], e.pending[i+1:]...)
		return h, nil
	}
	return KVHandle{}, fmt.Errorf("core: request %d not resident", id)
}

// ImportKV lands a migration handle on this engine: the adapter is
// pinned (ErrStoreFull propagates as the usual §5.2 backpressure), the
// KvCache pages are allocated page-exactly under this pool's geometry,
// and the request joins the pending queue already prefilled. It becomes
// batch-eligible once both the adapter copy and the KV link transfer
// complete — the sized migration cost Config.KVLink models. A failed
// import leaves the engine untouched so the caller can try another
// destination or fall back to the recompute path. Any role accepts
// imports; role restrictions apply to the Enqueue path only.
func (e *Engine) ImportKV(h KVHandle, now time.Duration) error {
	e.version++
	r := h.Request
	if r == nil {
		return fmt.Errorf("core: import of empty KV handle")
	}
	if kvcache.SeqID(r.ID) != h.KV.Seq {
		return fmt.Errorf("core: KV handle sequence %d does not match request %d", h.KV.Seq, r.ID)
	}
	if e.WorkingSet() >= e.cfg.System.MaxBatch {
		return fmt.Errorf("core: import rejected, batch full (%d/%d)",
			e.WorkingSet(), e.cfg.System.MaxBatch)
	}
	var loraReady time.Duration
	if e.cfg.System.LoRA != LoRANone && !r.hasLoRA {
		ready, err := e.acquireAdapter(r.Model, now)
		if err != nil {
			return fmt.Errorf("core: adapter %d: %w", r.Model, err)
		}
		loraReady = ready
		r.hasLoRA = true
	}
	if err := e.kv.Import(h.KV); err != nil {
		e.releaseAdapter(r)
		return err
	}
	if r.AdmittedAt == 0 {
		r.AdmittedAt = now
	}
	r.loraReady = loraReady
	r.kvReady = now + h.TransferTime(e.cfg.kvLink())
	r.prefilled = true
	r.done = false
	e.insertPending(r)
	e.stats.KVImports++
	// Transfer bytes are charged where the transfer lands; a zero-byte
	// handle (a bounce back to its source) moves nothing.
	e.stats.KVMovedBytes += h.KV.Bytes
	return nil
}

// Migratable returns the ids of resident requests whose prefill is done
// but whose decode is not — on a prefill-role engine these are the
// handoffs the two-pool router should move to the decode pool at the
// next opportunity. Other roles return nil: unified engines decode in
// place, decode engines are already the destination.
func (e *Engine) Migratable() []int64 {
	if e.cfg.Role != RolePrefill {
		return nil
	}
	var ids []int64
	for _, r := range e.active {
		if r.prefilled && !r.done {
			ids = append(ids, r.ID)
		}
	}
	for _, r := range e.pending {
		// Re-imported fallback landings also wait here for a second try.
		if r.prefilled && !r.done && e.kv.Has(kvcache.SeqID(r.ID)) {
			ids = append(ids, r.ID)
		}
	}
	return ids
}
