package core

import (
	"testing"
	"testing/quick"
	"time"

	"punica/internal/hw"
	"punica/internal/kvcache"
	"punica/internal/models"
)

// TestEngineInvariantsUnderRandomOps drives the engine with arbitrary
// interleavings of enqueue / step / cancel / evict and checks the
// structural invariants after every operation:
//
//   - KvCache pages in use equal exactly the pages needed by resident
//     (admitted) requests.
//   - No request is lost: enqueued = resident + finished + removed.
//   - Generated token counts never exceed OutputLen.
func TestEngineInvariantsUnderRandomOps(t *testing.T) {
	type op struct {
		Kind   uint8
		Prompt uint8
		Out    uint8
		Target uint8
	}
	f := func(ops []op) bool {
		cfg := Config{
			System: PunicaSystem(),
			GPU:    hw.A100(),
			Model:  models.Llama2_7B(),
			Rank:   16,
			// Small pool so evictions actually occur.
			KVCapacityBytes: 64 * 16 * models.Llama2_7B().KVBytesPerToken(),
		}
		cfg.System.MaxBatch = 8
		e := NewEngine(cfg)

		now := time.Duration(0)
		nextID := int64(0)
		resident := map[int64]*Request{}
		finished := map[int64]bool{}
		removed := map[int64]bool{}

		check := func() bool {
			// Page accounting: every resident admitted request holds
			// pages for its current context; pending ones hold none
			// until admission, so used <= sum(needs) and never negative.
			if e.kv.FreePages() < 0 {
				return false
			}
			total := 0
			for _, r := range e.active {
				total += e.kv.PagesFor(e.kv.Tokens(kvcache.SeqID(r.ID)))
			}
			if total != e.kv.UsedPages() {
				return false
			}
			for _, r := range resident {
				if r.Generated > r.OutputLen {
					return false
				}
			}
			return true
		}

		for _, o := range ops {
			switch o.Kind % 4 {
			case 0: // enqueue
				nextID++
				r := &Request{
					ID:        nextID,
					Model:     lmID(nextID % 5),
					PromptLen: int(o.Prompt%64) + 1,
					OutputLen: int(o.Out%16) + 1,
					Arrival:   now,
				}
				if err := e.Enqueue(r, now); err == nil {
					resident[r.ID] = r
				}
			case 1: // step
				res := e.Step(now)
				if !res.Idle {
					now = res.EndsAt
				} else if at, ok := e.EarliestPendingReady(); ok && at > now {
					now = at
				}
				for _, fr := range res.Finished {
					finished[fr.ID] = true
					delete(resident, fr.ID)
				}
				for _, ev := range res.Evicted {
					// Re-enqueue (single-GPU §5.3 behaviour).
					if err := e.Enqueue(ev, now); err != nil {
						delete(resident, ev.ID)
						removed[ev.ID] = true
					}
				}
			case 2: // cancel a random resident request
				if nextID == 0 {
					continue
				}
				id := int64(o.Target)%nextID + 1
				if r := e.Cancel(id, now); r != nil {
					delete(resident, r.ID)
					removed[r.ID] = true
				}
			case 3: // evict newest
				if r := e.EvictNewest(now); r != nil {
					delete(resident, r.ID)
					removed[r.ID] = true
				}
			}
			if !check() {
				return false
			}
		}
		// Conservation: every id is accounted for exactly once.
		accounted := len(resident) + len(finished) + len(removed)
		return int64(accounted) == nextID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineDrainsAnyWorkload: for arbitrary request mixes, the engine
// always terminates with all tokens generated and no leaked KvCache.
func TestEngineDrainsAnyWorkload(t *testing.T) {
	f := func(prompts []uint8) bool {
		if len(prompts) > 24 {
			prompts = prompts[:24]
		}
		e := NewEngine(Config{
			System: PunicaSystem(),
			GPU:    hw.A100(),
			Model:  models.Llama2_7B(),
			Rank:   16,
		})
		var want int64
		for i, p := range prompts {
			r := &Request{
				ID:        int64(i + 1),
				Model:     lmID(int64(p % 6)),
				PromptLen: int(p)%128 + 1,
				OutputLen: int(p)%20 + 1,
			}
			want += int64(r.OutputLen)
			if err := e.Enqueue(r, 0); err != nil {
				return false
			}
		}
		now := time.Duration(0)
		for i := 0; e.Busy(); i++ {
			if i > 50000 {
				return false
			}
			res := e.Step(now)
			if res.Idle {
				at, ok := e.EarliestPendingReady()
				if !ok {
					return false
				}
				now = at
				continue
			}
			now = res.EndsAt
		}
		return e.Stats().TokensGenerated == want && e.kv.UsedPages() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
