// Package core implements Punica's single-GPU serving engine (§5, §6):
// continuous batching of prefill and decode requests across different
// LoRA models, SGMV segment construction, paged KvCache admission and
// eviction, on-demand adapter loading, cancellation, and token streaming.
//
// The same engine, parameterised by SystemConfig feature flags, also
// models the paper's baseline systems (HuggingFace Transformers,
// DeepSpeed, FasterTransformer, vLLM) — see internal/baselines.
package core

import (
	"time"

	"punica/internal/lora"
)

// Request is one text-generation request resident on (or queued for) a
// GPU. OutputLen predetermines the stopping condition, standing in for
// the end-of-sequence token exactly as the paper's length-replay does.
type Request struct {
	ID        int64
	Model     lora.ModelID
	PromptLen int
	OutputLen int
	Arrival   time.Duration

	// Tenant is the owning user (0 = untagged legacy traces). The
	// scheduler's fairness layer keys virtual-token accounting and
	// per-tenant stall attribution on it; the engine itself ignores it.
	Tenant int64

	// Generated counts tokens produced so far (survives migration; the
	// destination GPU re-prefills prompt + generated, §5.3).
	Generated int

	// Timing observed by the engine.
	AdmittedAt   time.Duration
	FirstTokenAt time.Duration
	FinishedAt   time.Duration

	prefilled bool
	done      bool // finished but still occupying a static batch slot
	loraReady time.Duration
	// kvReady gates batch entry after a KV migration: the imported
	// KvCache is usable once its link transfer completes.
	kvReady time.Duration
	hasLoRA bool // adapter acquired from the store (needs release)
}

// ContextLen returns the tokens this request currently needs in KvCache:
// the original prompt plus everything generated.
func (r *Request) ContextLen() int { return r.PromptLen + r.Generated }

// Remaining returns how many tokens are still to be generated.
func (r *Request) Remaining() int {
	rem := r.OutputLen - r.Generated
	if rem < 0 {
		return 0
	}
	return rem
}

// Finished reports whether the request has produced all its tokens.
func (r *Request) Finished() bool { return r.Generated >= r.OutputLen }

// Token is one streamed generation event.
type Token struct {
	RequestID int64
	Index     int // 0-based position in the response
	TokenID   int // deterministic pseudo-token
	At        time.Duration
	EOS       bool
}

// TokenIDFor exposes the deterministic pseudo-token derivation: any
// engine generating token index for request reqID produces this id, so
// a runner importing a migrated request can reconstruct the tokens its
// predecessor already emitted (for stream re-attachment) without
// carrying them over the wire.
func TokenIDFor(reqID int64, index, vocab int) int { return tokenID(reqID, index, vocab) }

// tokenID derives a deterministic pseudo-token: the simulation does not
// model language, only serving behaviour ("we use random weights for LoRA
// models as the weight does not affect latency performance", §7).
func tokenID(reqID int64, index, vocab int) int {
	h := uint64(reqID)*0x9E3779B97F4A7C15 + uint64(index)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	if vocab <= 0 {
		vocab = 32000
	}
	return int(h % uint64(vocab))
}
