package core

import (
	"errors"
	"testing"
	"time"
)

func prefillEngine() *Engine {
	cfg := punicaConfig()
	cfg.Role = RolePrefill
	return NewEngine(cfg)
}

func decodeEngine() *Engine {
	cfg := punicaConfig()
	cfg.Role = RoleDecode
	return NewEngine(cfg)
}

// stepUntilPrefilled drives the engine until request id shows up as
// migratable, returning the current simulated time.
func stepUntilPrefilled(t *testing.T, e *Engine, id int64, now time.Duration) time.Duration {
	t.Helper()
	for i := 0; i < 1000; i++ {
		for _, m := range e.Migratable() {
			if m == id {
				return now
			}
		}
		res := e.Step(now)
		if res.Idle {
			at, ok := e.EarliestPendingReady()
			if !ok {
				t.Fatal("engine idle with no wake-up while awaiting prefill")
			}
			now = at
			continue
		}
		now = res.EndsAt
	}
	t.Fatalf("request %d never became migratable", id)
	return 0
}

func TestDecodeRoleRejectsEnqueue(t *testing.T) {
	e := decodeEngine()
	err := e.Enqueue(req(1, 0, 64, 8, 0), 0)
	if !errors.Is(err, ErrRoleMismatch) {
		t.Fatalf("decode-role Enqueue err = %v, want ErrRoleMismatch", err)
	}
	if e.CanAdmit(req(2, 0, 64, 8, 0)) {
		t.Fatal("decode-role CanAdmit said true")
	}
	snap := e.Snapshot()
	if snap.Role != RoleDecode {
		t.Fatalf("snapshot role = %v, want decode", snap.Role)
	}
	if snap.CanAdmit(req(3, 0, 64, 8, 0)) {
		t.Fatal("decode-role snapshot CanAdmit said true")
	}
	if !snap.CanImport(req(3, 0, 64, 8, 0)) {
		t.Fatal("decode-role snapshot CanImport said false on an empty engine")
	}
}

// TestExportImportMigration moves a request mid-generation from a
// prefill engine to a decode engine and checks every invariant: no
// recomputation, exact token continuity, KV page and adapter pin
// accounting on both ends.
func TestExportImportMigration(t *testing.T) {
	src := prefillEngine()
	dst := decodeEngine()
	r := req(1, 3, 200, 16, 0)
	if err := src.Enqueue(r, 0); err != nil {
		t.Fatal(err)
	}
	now := stepUntilPrefilled(t, src, 1, 0)
	if r.Generated == 0 {
		t.Fatal("prefill step should have produced the first token")
	}
	genAtExport := r.Generated

	h, err := src.ExportKV(1, now)
	if err != nil {
		t.Fatal(err)
	}
	if h.KV.Tokens != r.ContextLen() {
		t.Fatalf("handle tokens = %d, want context %d", h.KV.Tokens, r.ContextLen())
	}
	if src.KV().UsedPages() != 0 {
		t.Fatalf("source leaked %d KV pages after export", src.KV().UsedPages())
	}
	if src.Store().PinnedBytes() != 0 {
		t.Fatalf("source leaked %d pinned adapter bytes after export", src.Store().PinnedBytes())
	}
	if src.Busy() {
		t.Fatal("source still busy after exporting its only request")
	}

	if err := dst.ImportKV(h, now); err != nil {
		t.Fatal(err)
	}
	if dst.KV().UsedPages() != dst.KV().PagesFor(r.ContextLen()) {
		t.Fatalf("destination pages = %d, want page-exact %d",
			dst.KV().UsedPages(), dst.KV().PagesFor(r.ContextLen()))
	}
	if dst.Store().PinnedBytes() == 0 {
		t.Fatal("destination did not pin the adapter on import")
	}

	end, steps := drain(t, dst, now)
	if !r.Finished() {
		t.Fatalf("request did not finish on the destination (generated %d/%d)",
			r.Generated, r.OutputLen)
	}
	for _, s := range steps {
		if s.PrefillRequests != 0 || s.PrefillTokens != 0 {
			t.Fatal("destination recomputed prefill after a KV import")
		}
	}
	wantSteps := r.OutputLen - genAtExport
	if len(steps) != wantSteps {
		t.Fatalf("destination ran %d decode steps, want %d (no token replay)", len(steps), wantSteps)
	}
	if dst.KV().UsedPages() != 0 || dst.Store().PinnedBytes() != 0 {
		t.Fatalf("destination leaked after completion: pages=%d pinned=%d",
			dst.KV().UsedPages(), dst.Store().PinnedBytes())
	}
	if end <= now {
		t.Fatal("decode made no progress")
	}
	if src.Stats().KVExports != 1 || dst.Stats().KVImports != 1 {
		t.Fatalf("stats exports=%d imports=%d, want 1/1",
			src.Stats().KVExports, dst.Stats().KVImports)
	}
	if dst.Stats().KVMovedBytes != h.KV.Bytes {
		t.Fatalf("moved bytes = %d, want %d", dst.Stats().KVMovedBytes, h.KV.Bytes)
	}
}

// TestImportChargesLinkTransfer pins the migration cost model: the
// imported request may not join a batch before the KV payload has
// crossed the configured link.
func TestImportChargesLinkTransfer(t *testing.T) {
	src := prefillEngine()
	dst := decodeEngine()
	r := req(1, 0, 512, 8, 0)
	if err := src.Enqueue(r, 0); err != nil {
		t.Fatal(err)
	}
	now := stepUntilPrefilled(t, src, 1, 0)
	h, err := src.ExportKV(1, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportKV(h, now); err != nil {
		t.Fatal(err)
	}
	transfer := h.TransferTime(dst.Config().kvLink())
	if transfer <= 0 {
		t.Fatal("expected a positive KV transfer time")
	}
	res := dst.Step(now)
	if !res.Idle {
		t.Fatal("destination stepped the import before the KV transfer completed")
	}
	wake, ok := dst.EarliestPendingReady()
	if !ok || wake < now+transfer {
		t.Fatalf("wake = %v (ok=%v), want >= %v", wake, ok, now+transfer)
	}
	res = dst.Step(wake)
	if res.Idle || res.BatchSize != 1 {
		t.Fatalf("post-transfer step = %+v, want one-request batch", res)
	}
}

// TestExportRejectsUnprefilled covers the error paths: unknown ids,
// requests still waiting on prefill, and double exports.
func TestExportRejectsUnprefilled(t *testing.T) {
	e := prefillEngine()
	r := req(1, 0, 64, 8, 0)
	if err := e.Enqueue(r, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExportKV(1, 0); err == nil {
		t.Fatal("exported a request that has not prefilled")
	}
	if _, err := e.ExportKV(99, 0); err == nil {
		t.Fatal("exported an unknown request")
	}
	now := stepUntilPrefilled(t, e, 1, 0)
	if _, err := e.ExportKV(1, now); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExportKV(1, now); err == nil {
		t.Fatal("double export succeeded")
	}
}

// TestCrashReleasesImportedPending asserts the crash path accounts for
// requests that were imported but had not yet joined a batch: their KV
// pages release exactly and their context counts toward the
// recomputation bill.
func TestCrashReleasesImportedPending(t *testing.T) {
	src := prefillEngine()
	dst := decodeEngine()
	r := req(1, 0, 300, 8, 0)
	if err := src.Enqueue(r, 0); err != nil {
		t.Fatal(err)
	}
	now := stepUntilPrefilled(t, src, 1, 0)
	h, err := src.ExportKV(1, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportKV(h, now); err != nil {
		t.Fatal(err)
	}
	// Crash before the transfer completes: the request is pending with
	// KV allocated.
	lost, lostKV := dst.Crash(now)
	if len(lost) != 1 || lost[0].ID != 1 {
		t.Fatalf("crash salvaged %v, want request 1", lost)
	}
	if lostKV != r.ContextLen() {
		t.Fatalf("lost KV tokens = %d, want %d", lostKV, r.ContextLen())
	}
	if dst.KV().UsedPages() != 0 || dst.Store().PinnedBytes() != 0 {
		t.Fatalf("crash leaked: pages=%d pinned=%d", dst.KV().UsedPages(), dst.Store().PinnedBytes())
	}
	// The recovered request re-enters through a prefill-capable engine
	// and recomputes (prompt + generated), per the recompute path.
	if err := src.Enqueue(r, now); err != nil {
		t.Fatal(err)
	}
	_, steps := drain(t, src, now)
	if !r.Finished() {
		t.Fatal("recovered request did not finish")
	}
	if len(steps) == 0 || steps[0].PrefillTokens == 0 {
		t.Fatal("recovery did not recompute prefill")
	}
}

// TestCancelImportedPending asserts Cancel releases import-allocated
// pages rather than touching the reservation accounting.
func TestCancelImportedPending(t *testing.T) {
	src := prefillEngine()
	dst := decodeEngine()
	r := req(1, 0, 150, 8, 0)
	if err := src.Enqueue(r, 0); err != nil {
		t.Fatal(err)
	}
	now := stepUntilPrefilled(t, src, 1, 0)
	h, err := src.ExportKV(1, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportKV(h, now); err != nil {
		t.Fatal(err)
	}
	if got := dst.Cancel(1, now); got == nil {
		t.Fatal("cancel of imported pending request found nothing")
	}
	if dst.KV().UsedPages() != 0 || dst.Store().PinnedBytes() != 0 {
		t.Fatalf("cancel leaked: pages=%d pinned=%d", dst.KV().UsedPages(), dst.Store().PinnedBytes())
	}
	snap := dst.Snapshot()
	if snap.FreeKVPages != snap.TotalKVPages {
		t.Fatalf("reservation accounting skewed: free %d != total %d",
			snap.FreeKVPages, snap.TotalKVPages)
	}
}

func TestParseRole(t *testing.T) {
	for s, want := range map[string]Role{
		"": RoleUnified, "unified": RoleUnified,
		"prefill": RolePrefill, "decode": RoleDecode,
	} {
		got, err := ParseRole(s)
		if err != nil || got != want {
			t.Fatalf("ParseRole(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseRole("bogus"); err == nil {
		t.Fatal("ParseRole accepted bogus")
	}
	if RoleDecode.AcceptsNew() || !RolePrefill.AcceptsNew() || !RoleUnified.AcceptsNew() {
		t.Fatal("AcceptsNew role table wrong")
	}
}

// TestUnifiedEngineUnaffectedByMigrationPlumbing guards the bit-identical
// contract: a unified engine reports nothing migratable and its snapshot
// role is the zero value.
func TestUnifiedEngineUnaffectedByMigrationPlumbing(t *testing.T) {
	e := NewEngine(punicaConfig())
	r := req(1, 0, 64, 8, 0)
	if err := e.Enqueue(r, 0); err != nil {
		t.Fatal(err)
	}
	e.Step(0)
	if ids := e.Migratable(); ids != nil {
		t.Fatalf("unified engine reported migratable %v", ids)
	}
	if e.Snapshot().Role != RoleUnified {
		t.Fatal("unified snapshot role not zero")
	}
}
