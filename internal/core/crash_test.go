package core

import (
	"testing"
	"time"

	"punica/internal/hw"
	"punica/internal/models"
)

// TestEngineCrashReleasesEverything: a crash drops the whole working
// set — active rows release their KvCache pages, pending rows their
// reservations, and every adapter pin returns to the store — and the
// lost requests come back in arrival order with Generated intact so the
// caller can re-dispatch with prefill recomputation.
func TestEngineCrashReleasesEverything(t *testing.T) {
	e := NewEngine(Config{
		System: PunicaSystem(),
		GPU:    hw.A100(),
		Model:  models.Llama2_7B(),
		Rank:   16,
	})
	reqs := []*Request{
		{ID: 2, Model: 1, PromptLen: 64, OutputLen: 20, Arrival: 2 * time.Millisecond},
		{ID: 1, Model: 2, PromptLen: 32, OutputLen: 10, Arrival: time.Millisecond},
		{ID: 3, Model: 1, PromptLen: 16, OutputLen: 5, Arrival: 3 * time.Millisecond},
	}
	for _, r := range reqs {
		if err := e.Enqueue(r, 0); err != nil {
			t.Fatal(err)
		}
	}
	// A few steps: wait out adapter loads, then let requests prefill and
	// hold KvCache.
	now := time.Duration(0)
	for i := 0; i < 10 && e.KV().UsedPages() == 0; i++ {
		res := e.Step(now)
		if res.Idle {
			wake, ok := e.EarliestPendingReady()
			if !ok {
				break
			}
			now = wake
			continue
		}
		now = res.EndsAt
	}
	if e.KV().UsedPages() == 0 {
		t.Fatal("setup: no KvCache in use before crash")
	}
	gen := map[int64]int{}
	for _, r := range reqs {
		gen[r.ID] = r.Generated
	}

	lost, lostKV := e.Crash(now)
	if len(lost) != 3 {
		t.Fatalf("crash returned %d requests, want 3", len(lost))
	}
	for i := 1; i < len(lost); i++ {
		if lost[i-1].Arrival > lost[i].Arrival {
			t.Fatal("lost requests not in arrival order")
		}
	}
	if lostKV == 0 {
		t.Fatal("active rows held context; lostKVTokens must be positive")
	}
	for _, r := range lost {
		if r.Generated != gen[r.ID] {
			t.Fatalf("r%d Generated changed across crash: %d -> %d", r.ID, gen[r.ID], r.Generated)
		}
	}
	if e.Busy() {
		t.Fatal("engine still busy after crash")
	}
	if e.KV().UsedPages() != 0 {
		t.Fatal("crash leaked KvCache pages")
	}
	if e.Store().PinnedBytes() != 0 {
		t.Fatal("crash leaked pinned adapter bytes")
	}
	if e.Stats().Crashes != 1 {
		t.Fatalf("Crashes = %d", e.Stats().Crashes)
	}
	// The crashed working set can be re-enqueued elsewhere (here: the
	// same engine object, standing in for a healthy GPU) and completes.
	for _, r := range lost {
		if err := e.Enqueue(r, now); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200 && e.Busy(); i++ {
		res := e.Step(now)
		if res.Idle {
			if wake, ok := e.EarliestPendingReady(); ok {
				now = wake
				continue
			}
			break
		}
		now = res.EndsAt
	}
	if e.Stats().Finished != 3 {
		t.Fatalf("recovered requests finished %d/3", e.Stats().Finished)
	}
	if e.Store().PinnedBytes() != 0 {
		t.Fatal("pins leaked after recovery")
	}
}

// TestEngineCrashEmpty: crashing an idle engine is a no-op that still
// counts the crash.
func TestEngineCrashEmpty(t *testing.T) {
	e := NewEngine(Config{
		System: PunicaSystem(),
		GPU:    hw.A100(),
		Model:  models.Llama2_7B(),
		Rank:   16,
	})
	lost, lostKV := e.Crash(0)
	if lost != nil || lostKV != 0 {
		t.Fatalf("empty crash returned (%v, %d)", lost, lostKV)
	}
}
