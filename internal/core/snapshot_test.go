package core

import (
	"testing"
	"time"

	"punica/internal/lora"
)

// TestSnapshotMirrorsAdmission pins the policy-framework contract:
// Snapshot.CanAdmit must answer exactly as Engine.CanAdmit for the same
// request at the same moment, and NoteEnqueued/NoteRemoved must keep
// the mirrored view in lockstep with the engine through enqueues and
// evictions.
func TestSnapshotMirrorsAdmission(t *testing.T) {
	cfg := punicaConfig()
	cfg.System.MaxBatch = 4
	cfg.KVCapacityBytes = 1 << 30
	e := NewEngine(cfg)

	check := func(r *Request, when string) {
		t.Helper()
		snap := e.Snapshot()
		if got, want := snap.CanAdmit(r), e.CanAdmit(r); got != want {
			t.Fatalf("%s: snapshot CanAdmit=%v, engine=%v (snap %+v)", when, got, want, snap)
		}
	}
	probe := req(99, 1, 300, 50, 0)
	check(probe, "fresh")

	mirror := e.Snapshot()
	var resident []*Request
	for i := int64(1); i <= 4; i++ {
		r := req(i, i, 200+int(i)*10, 30, time.Duration(i)*time.Millisecond)
		if err := e.Enqueue(r, 0); err != nil {
			t.Fatal(err)
		}
		mirror.NoteEnqueued(r)
		resident = append(resident, r)
		check(probe, "after enqueue")
	}
	if mirror.WorkingSet != e.WorkingSet() {
		t.Fatalf("mirror ws=%d engine ws=%d", mirror.WorkingSet, e.WorkingSet())
	}
	if got := e.Snapshot(); mirror.FreeKVPages != got.FreeKVPages {
		t.Fatalf("mirror free pages=%d engine=%d", mirror.FreeKVPages, got.FreeKVPages)
	}
	// Batch full: both views must refuse.
	if e.CanAdmit(probe) || mirror.CanAdmit(probe) {
		t.Fatal("full batch must refuse admission in both views")
	}
	for range resident {
		v := e.EvictNewest(0)
		if v == nil {
			t.Fatal("evict returned nil")
		}
		mirror.NoteRemoved(v)
		if got := e.Snapshot(); mirror.WorkingSet != got.WorkingSet || mirror.FreeKVPages != got.FreeKVPages {
			t.Fatalf("mirror (ws=%d free=%d) diverged from engine (ws=%d free=%d)",
				mirror.WorkingSet, mirror.FreeKVPages, got.WorkingSet, got.FreeKVPages)
		}
	}
}

// TestSnapshotReportsAdapters checks the §5.2 half of the snapshot:
// resident adapters appear with rank, bytes and pin state, and the
// byte accounting matches the store.
func TestSnapshotReportsAdapters(t *testing.T) {
	cfg := punicaConfig()
	e := NewEngine(cfg)
	if err := e.Enqueue(req(1, 7, 64, 8, 0), 0); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	a, ok := snap.Adapter(7)
	if !ok || !a.Pinned || a.Rank != cfg.Rank || a.Bytes != cfg.Model.LoRABytes(cfg.Rank) {
		t.Fatalf("adapter state %+v (ok=%v)", a, ok)
	}
	if snap.StorePinnedBytes != a.Bytes {
		t.Fatalf("pinned bytes %d, want %d", snap.StorePinnedBytes, a.Bytes)
	}
	if snap.StoreReclaimableBytes() != snap.StoreCapacityBytes-a.Bytes {
		t.Fatal("reclaimable bytes must exclude pinned adapters")
	}
	e.Cancel(1, 0)
	snap = e.Snapshot()
	if a, _ := snap.Adapter(7); a.Pinned {
		t.Fatal("cancelled request's adapter must unpin (stays warm)")
	}
}

// TestHeterogeneousRanksPadToBatchMax pins the mixed-rank cost model:
// batching a small-rank adapter with a large-rank one makes the SGMV
// invocation pad to the larger rank, so the mixed batch runs slower
// than same-rank batches — the overhead rank-aware placement avoids.
func TestHeterogeneousRanksPadToBatchMax(t *testing.T) {
	ranks := map[lora.ModelID]int{1: 8, 2: 64}
	mixed := punicaConfig()
	mixed.AdapterRank = func(id lora.ModelID) int { return ranks[id] }
	e := NewEngine(mixed)
	if err := e.Enqueue(req(1, 1, 64, 4, 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(req(2, 2, 64, 4, 0), 0); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	a1, _ := snap.Adapter(1)
	a2, _ := snap.Adapter(2)
	if a1.Rank != 8 || a2.Rank != 64 {
		t.Fatalf("per-adapter ranks not applied: %+v %+v", a1, a2)
	}
	if a1.Bytes >= a2.Bytes {
		t.Fatal("rank-8 adapter must be smaller than rank-64")
	}

	inv := e.buildInvocation(nil, []*Request{
		{ID: 1, Model: 1, PromptLen: 64},
		{ID: 2, Model: 2, PromptLen: 64},
	})
	if inv.LoRARank != 64 {
		t.Fatalf("mixed batch rank = %d, want padding to 64", inv.LoRARank)
	}
	inv = e.buildInvocation(nil, []*Request{
		{ID: 1, Model: 1, PromptLen: 64},
	})
	if inv.LoRARank != 8 {
		t.Fatalf("rank-8-only batch rank = %d, want 8", inv.LoRARank)
	}

	// Uniform fleets are untouched: the invocation rank stays cfg.Rank.
	uniform := NewEngine(punicaConfig())
	inv = uniform.buildInvocation(nil, []*Request{{ID: 3, Model: 3, PromptLen: 64}})
	if inv.LoRARank != punicaConfig().Rank {
		t.Fatalf("uniform batch rank = %d, want %d", inv.LoRARank, punicaConfig().Rank)
	}
}
