package core

import (
	"time"

	"punica/internal/hw"
	"punica/internal/kvcache"
	"punica/internal/layer"
	"punica/internal/lora"
	"punica/internal/models"
)

// LoRAMode selects how a system computes the LoRA addon.
type LoRAMode int

const (
	// LoRANone serves the backbone only (FasterTransformer and vLLM in
	// §7: "we run backbone-only ... since these two systems do not
	// support LoRA models").
	LoRANone LoRAMode = iota
	// LoRASGMV is Punica's batched kernel.
	LoRASGMV
	// LoRALoop is the eager PEFT-style per-model loop.
	LoRALoop
)

// SystemConfig encodes the capabilities that distinguish the serving
// systems the paper compares. Each §7 baseline is a point in this space;
// the comparison is causal because only these flags differ.
type SystemConfig struct {
	Name string

	// ContinuousBatching lets requests join and leave the batch at step
	// granularity (Punica, vLLM). Without it the batch is static:
	// "requests that enter the batch together need to remain together
	// during all decode steps until all requests meet their own
	// stopping condition" (§5.4, Fig. 6).
	ContinuousBatching bool

	// CrossLoRABatching batches requests for different LoRA models in
	// one invocation — the SGMV capability. Baselines "can only batch
	// requests for the same LoRA models" (§7.2).
	CrossLoRABatching bool

	LoRA LoRAMode

	// Layer-cost feature flags (see layer.Costs).
	FlashAttention bool
	FusedNorm      bool
	KVConcat       bool

	// PagedKV allocates KvCache page-by-page as sequences grow; without
	// it the engine reserves prompt+output contiguously up front.
	PagedKV bool

	// MaxBatch caps the LLM invocation batch size. The paper profiles
	// A100s and sets 32 (§5.1).
	MaxBatch int

	// MaxPrefillPerStep limits how many prefill requests one invocation
	// carries. Punica uses 1 "to minimize latency penalty" (§5).
	MaxPrefillPerStep int
}

// DefaultMaxBatch is the §5.1 A100 sweet spot.
const DefaultMaxBatch = 32

// PunicaSystem returns Punica's capability set.
func PunicaSystem() SystemConfig {
	return SystemConfig{
		Name:               "Punica",
		ContinuousBatching: true,
		CrossLoRABatching:  true,
		LoRA:               LoRASGMV,
		FlashAttention:     true,
		FusedNorm:          true,
		PagedKV:            true,
		MaxBatch:           DefaultMaxBatch,
		MaxPrefillPerStep:  1,
	}
}

// Config assembles one engine instance: the system's capabilities, the
// hardware, and the model being served.
type Config struct {
	System SystemConfig
	GPU    hw.GPUSpec
	Model  models.Config
	Rank   int

	// TP is the tensor-parallel group size; the engine then represents
	// the whole group (weights, KvCache and LoRA weights sharded TP
	// ways, two all-reduces per layer).
	TP int

	// Role places the engine in a disaggregated deployment: RoleUnified
	// (the zero value) is the paper's run-everything engine, RolePrefill
	// and RoleDecode split prompt processing from token generation, with
	// finished prefills handed over via ExportKV/ImportKV.
	Role Role

	// KVLink models the channel migrated KvCache rides between engines
	// (ExportKV → ImportKV). The zero value means PCIe Gen4 x16 — the
	// paper's deployment has runners on separate servers, so KV moves
	// device → host → device; deployments with NVLink or RDMA paths
	// override it.
	KVLink hw.Link

	// WeightPrecision quantizes the backbone (§8 extension): smaller
	// weights stream faster and leave more HBM for KvCache. FP16 (the
	// zero value) reproduces the paper's setup.
	WeightPrecision hw.Precision
	// KVPrecision quantizes the KvCache: more resident tokens and less
	// attention traffic.
	KVPrecision hw.Precision

	// KVCapacityBytes overrides the derived KvCache budget when > 0.
	KVCapacityBytes int64
	// PageSize overrides the KvCache page size when > 0.
	PageSize int
	// LoRAStoreBytes overrides the adapter cache size when > 0.
	LoRAStoreBytes int64
	// Tiers, when non-empty, places the staging hierarchy (node SSD,
	// host RAM, …) between the adapter registry and the HBM store:
	// cold adapters cascade down the tiers at each tier's link cost and
	// HBM evictions demote into the top tier instead of discarding.
	// Empty keeps the flat single-link store, byte-identical to before
	// tiers existed.
	Tiers []lora.TierSpec
	// HostOverhead overrides the per-invocation host cost when > 0.
	HostOverhead time.Duration

	// AdapterRank optionally assigns per-adapter LoRA ranks (id → rank);
	// nil serves every adapter at Rank, the paper's setup. With
	// heterogeneous ranks an invocation's SGMV pads to the largest rank
	// in the batch, so mixed-rank batches pay the widest adapter's cost
	// — the overhead rank-aware placement avoids.
	AdapterRank func(lora.ModelID) int

	// OnToken, if set, receives every generated token (streaming).
	OnToken func(Token)
	// OnFinish, if set, receives every completed request.
	OnFinish func(*Request)
}

// reservePerGPU is the activation/workspace memory held out per GPU
// before sizing the KvCache pool ("a large fraction of GPU memory is
// reserved for KvCache", §3 — large, not all).
const reservePerGPU = 4 << 30

// defaultLoRAStoreBytes is the per-GPU adapter cache budget. It must hold
// at least MaxBatch distinct resident adapters (the Distinct workload pins
// one per running request): 32 × ~125 MB for a 13B rank-16 adapter needs
// ~4 GiB; 6 GiB leaves warm headroom.
const defaultLoRAStoreBytes = 6 << 30

func (c Config) tp() int {
	if c.TP < 1 {
		return 1
	}
	return c.TP
}

// kvCapacity derives the KvCache budget: group memory minus backbone
// weights minus per-GPU reserves (and the adapter cache when serving
// LoRA).
func (c Config) kvCapacity() int64 {
	if c.KVCapacityBytes > 0 {
		return c.KVCapacityBytes
	}
	tp := int64(c.tp())
	weights := int64(float64(c.Model.Params()) * c.WeightPrecision.BytesPerParam())
	capacity := tp*c.GPU.MemBytes - weights - tp*reservePerGPU
	if c.System.LoRA != LoRANone {
		capacity -= tp * c.loraStoreBytes()
	}
	if capacity < 0 {
		capacity = 0
	}
	return capacity
}

// kvBytesPerToken is the pool accounting granularity at the configured
// cache precision.
func (c Config) kvBytesPerToken() int64 {
	b := int64(float64(c.Model.KVBytesPerToken()) * c.KVPrecision.BytesPerParam() / hw.FP16Bytes)
	if b < 1 {
		b = 1
	}
	return b
}

// kvLink is the KV-migration channel (PCIe Gen4 x16 unless overridden).
func (c Config) kvLink() hw.Link {
	if c.KVLink.Bandwidth > 0 {
		return c.KVLink
	}
	return hw.PCIeGen4x16()
}

func (c Config) pageSize() int {
	if c.PageSize > 0 {
		return c.PageSize
	}
	return kvcache.DefaultPageSize
}

func (c Config) loraStoreBytes() int64 {
	if c.LoRAStoreBytes > 0 {
		return c.LoRAStoreBytes
	}
	return defaultLoRAStoreBytes
}

// costs assembles the layer cost model matching the system flags.
func (c Config) costs() layer.Costs {
	costs := layer.New(c.GPU, c.Model).WithTP(c.tp())
	costs.FlashAttention = c.System.FlashAttention
	costs.FusedNorm = c.System.FusedNorm
	costs.KVConcat = c.System.KVConcat
	if c.System.LoRA == LoRALoop {
		costs.LoRAImpl = layer.LoRALoop
	}
	costs.WeightPrecision = c.WeightPrecision
	costs.KVPrecision = c.KVPrecision
	if c.HostOverhead > 0 {
		costs.HostOverhead = c.HostOverhead
	}
	return costs
}
