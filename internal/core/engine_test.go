package core

import (
	"testing"
	"time"

	"punica/internal/hw"
	"punica/internal/lora"
	"punica/internal/models"
)

func punicaConfig() Config {
	return Config{
		System: PunicaSystem(),
		GPU:    hw.A100(),
		Model:  models.Llama2_7B(),
		Rank:   models.DefaultLoRARank,
	}
}

func req(id int64, model int64, prompt, out int, arrival time.Duration) *Request {
	return &Request{ID: id, Model: lmID(model), PromptLen: prompt, OutputLen: out, Arrival: arrival}
}

// drain steps the engine until all work completes, advancing simulated
// time; evicted requests are re-enqueued (single-GPU §5.3 behaviour).
// It returns the completion time and the executed steps.
func drain(t *testing.T, e *Engine, now time.Duration) (time.Duration, []StepResult) {
	t.Helper()
	var steps []StepResult
	for e.Busy() {
		res := e.Step(now)
		for _, ev := range res.Evicted {
			if err := e.Enqueue(ev, now); err != nil {
				t.Fatalf("re-enqueue evicted: %v", err)
			}
		}
		if res.Idle {
			at, ok := e.EarliestPendingReady()
			if !ok || at <= now {
				t.Fatalf("engine idle but busy with no wake-up (pending=%d active=%d)",
					len(e.pending), len(e.active))
			}
			now = at
			continue
		}
		steps = append(steps, res)
		now = res.EndsAt
		if len(steps) > 100000 {
			t.Fatal("drain did not terminate")
		}
	}
	return now, steps
}

func TestSingleRequestLifecycle(t *testing.T) {
	cfg := punicaConfig()
	var tokens []Token
	cfg.OnToken = func(tok Token) { tokens = append(tokens, tok) }
	e := NewEngine(cfg)

	r := req(1, 5, 100, 10, 0)
	if err := e.Enqueue(r, 0); err != nil {
		t.Fatal(err)
	}
	end, steps := drain(t, e, 0)

	if !r.Finished() || r.Generated != 10 {
		t.Fatalf("generated %d, want 10", r.Generated)
	}
	if len(tokens) != 10 {
		t.Fatalf("streamed %d tokens, want 10", len(tokens))
	}
	for i, tok := range tokens {
		if tok.Index != i || tok.RequestID != 1 {
			t.Fatalf("token %d malformed: %+v", i, tok)
		}
		if tok.EOS != (i == 9) {
			t.Fatalf("EOS on token %d wrong", i)
		}
	}
	// 1 prefill step + 9 decode steps.
	if len(steps) != 10 {
		t.Fatalf("%d steps, want 10", len(steps))
	}
	if steps[0].PrefillRequests != 1 || steps[0].PrefillTokens != 100 {
		t.Fatalf("first step should prefill 100 tokens: %+v", steps[0])
	}
	if r.FirstTokenAt <= 0 || r.FinishedAt != end || r.FirstTokenAt > r.FinishedAt {
		t.Fatalf("timing wrong: first=%v finished=%v end=%v", r.FirstTokenAt, r.FinishedAt, end)
	}
	if e.KV().UsedPages() != 0 {
		t.Fatal("KvCache leaked after completion")
	}
	if e.Stats().Finished != 1 {
		t.Fatalf("stats.Finished = %d", e.Stats().Finished)
	}
}

func TestTokenIDsDeterministic(t *testing.T) {
	a := tokenID(42, 3, 32000)
	b := tokenID(42, 3, 32000)
	c := tokenID(42, 4, 32000)
	if a != b {
		t.Fatal("tokenID not deterministic")
	}
	if a == c {
		t.Fatal("tokenID should vary by index")
	}
	if a < 0 || a >= 32000 {
		t.Fatalf("tokenID %d out of vocab", a)
	}
}

func TestOnePrefillPerStep(t *testing.T) {
	// §5: "we limit the prefill batch size to 1 for each batch."
	e := NewEngine(punicaConfig())
	for i := int64(1); i <= 4; i++ {
		if err := e.Enqueue(req(i, i, 50, 5, 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Adapters load first; jump past the load latency.
	at, _ := e.EarliestPendingReady()
	res := e.Step(at)
	if res.PrefillRequests != 1 {
		t.Fatalf("step carried %d prefills, want 1", res.PrefillRequests)
	}
	res = e.Step(res.EndsAt)
	if res.PrefillRequests != 1 {
		t.Fatalf("second step carried %d prefills, want 1", res.PrefillRequests)
	}
	// The already-prefilled request decodes alongside.
	if res.BatchSize != 2 {
		t.Fatalf("second step batch = %d, want 2 (1 prefill + 1 decode)", res.BatchSize)
	}
}

func TestCrossLoRABatchingDistinctModels(t *testing.T) {
	// Punica batches 8 different adapters in one invocation.
	e := NewEngine(punicaConfig())
	for i := int64(1); i <= 8; i++ {
		if err := e.Enqueue(req(i, 100+i, 20, 20, 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	_, steps := drain(t, e, 0)
	max := 0
	for _, s := range steps {
		if s.BatchSize > max {
			max = s.BatchSize
		}
	}
	if max != 8 {
		t.Fatalf("max batch = %d, want 8 (cross-LoRA batching)", max)
	}
}

func TestSameLoRAOnlyBlocksAtModelBoundary(t *testing.T) {
	// A same-model-only system (vLLM-style flags) with queue A,A,B,A
	// must run the leading A,A together, then B alone, then the final A:
	// strict FCFS consecutive runs (§7.2: batch sizes 1-3).
	cfg := punicaConfig()
	cfg.System.CrossLoRABatching = false
	cfg.System.LoRA = LoRANone
	cfg.System.MaxPrefillPerStep = cfg.System.MaxBatch
	e := NewEngine(cfg)
	order := []int64{7, 7, 8, 7}
	for i, m := range order {
		r := req(int64(i+1), m, 20, 3, time.Duration(i)*time.Microsecond)
		if err := e.Enqueue(r, 0); err != nil {
			t.Fatal(err)
		}
	}
	_, steps := drain(t, e, 0)
	var batchSizes []int
	for _, s := range steps {
		if s.PrefillRequests > 0 {
			batchSizes = append(batchSizes, s.PrefillRequests)
		}
	}
	want := []int{2, 1, 1}
	if len(batchSizes) != len(want) {
		t.Fatalf("prefill groups = %v, want %v", batchSizes, want)
	}
	for i := range want {
		if batchSizes[i] != want[i] {
			t.Fatalf("prefill groups = %v, want %v", batchSizes, want)
		}
	}
}

func TestContinuousBatchingJoinAndLeave(t *testing.T) {
	// A short request finishes and leaves while a long one continues;
	// a late request joins mid-flight.
	e := NewEngine(punicaConfig())
	long := req(1, 1, 20, 30, 0)
	short := req(2, 2, 20, 3, 0)
	if err := e.Enqueue(long, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(short, 0); err != nil {
		t.Fatal(err)
	}
	now, _ := e.EarliestPendingReady()
	sawShortLeave := false
	var late *Request
	for e.Busy() {
		res := e.Step(now)
		if res.Idle {
			at, ok := e.EarliestPendingReady()
			if !ok {
				t.Fatal("stuck")
			}
			now = at
			continue
		}
		now = res.EndsAt
		for _, f := range res.Finished {
			if f.ID == 2 {
				sawShortLeave = true
				if !long.Finished() {
					// Inject a late request after the short one left.
					late = req(3, 3, 20, 2, now)
					if err := e.Enqueue(late, now); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	if !sawShortLeave {
		t.Fatal("short request never finished")
	}
	if late == nil || !late.Finished() {
		t.Fatal("late request did not complete")
	}
	if !long.Finished() {
		t.Fatal("long request did not complete")
	}
}

func TestStaticBatchingWaste(t *testing.T) {
	// Fig. 6: in a static batch, the short request's finished slot burns
	// decode steps until the longest request completes, and no new
	// request is admitted meanwhile.
	cfg := punicaConfig()
	cfg.System = SystemConfig{
		Name:               "static",
		ContinuousBatching: false,
		CrossLoRABatching:  true,
		LoRA:               LoRASGMV,
		FlashAttention:     true,
		FusedNorm:          true,
		PagedKV:            false,
		MaxBatch:           4,
		MaxPrefillPerStep:  4,
	}
	e := NewEngine(cfg)
	short := req(1, 1, 20, 2, 0)
	long := req(2, 1, 20, 10, 0)
	if err := e.Enqueue(short, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(long, 0); err != nil {
		t.Fatal(err)
	}
	now, _ := e.EarliestPendingReady()
	late := req(3, 1, 20, 2, now)

	injected := false
	for e.Busy() {
		res := e.Step(now)
		if res.Idle {
			at, ok := e.EarliestPendingReady()
			if !ok {
				t.Fatal("stuck")
			}
			now = at
			continue
		}
		now = res.EndsAt
		if short.Finished() && !injected {
			if err := e.Enqueue(late, now); err != nil {
				t.Fatal(err)
			}
			injected = true
		}
		if injected && !long.Finished() && late.Generated > 0 {
			t.Fatal("static batch admitted a request mid-flight")
		}
	}
	// short finished after 2 tokens; long needed 10 → 8 wasted slots.
	if e.Stats().WastedDecodes != 8 {
		t.Fatalf("wasted decodes = %d, want 8", e.Stats().WastedDecodes)
	}
	if !late.Finished() {
		t.Fatal("late request never completed")
	}
}

func TestLoRALoadDelaysJoin(t *testing.T) {
	// A request whose adapter is cold cannot enter the batch at t=0; it
	// joins after the ~2-4ms PCIe load (§5.2).
	e := NewEngine(punicaConfig())
	if err := e.Enqueue(req(1, 1, 20, 5, 0), 0); err != nil {
		t.Fatal(err)
	}
	res := e.Step(0)
	if !res.Idle {
		t.Fatal("step at t=0 should be idle: adapter still loading")
	}
	at, ok := e.EarliestPendingReady()
	if !ok || at < 2*time.Millisecond || at > 5*time.Millisecond {
		t.Fatalf("adapter ready at %v, want ~2-4ms", at)
	}
	res = e.Step(at)
	if res.Idle || res.PrefillRequests != 1 {
		t.Fatalf("step after load should prefill: %+v", res)
	}
	// A second request for the same (warm) adapter joins immediately.
	if err := e.Enqueue(req(2, 1, 20, 5, res.EndsAt), res.EndsAt); err != nil {
		t.Fatal(err)
	}
	res2 := e.Step(res.EndsAt)
	if res2.PrefillRequests != 1 {
		t.Fatal("warm-adapter request should join without delay")
	}
}

func TestKVExhaustionEvictsNewest(t *testing.T) {
	cfg := punicaConfig()
	// Tiny pool: 16 pages of 16 tokens = 256 tokens.
	cfg.KVCapacityBytes = 16 * 16 * cfg.Model.KVBytesPerToken()
	e := NewEngine(cfg)
	// Two requests whose contexts will grow past the pool together.
	a := req(1, 1, 100, 100, 0)
	b := req(2, 2, 100, 100, time.Millisecond)
	if err := e.Enqueue(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(b, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	now, _ := e.EarliestPendingReady()
	var evicted *Request
	for i := 0; i < 1000 && evicted == nil; i++ {
		res := e.Step(now)
		if res.Idle {
			at, ok := e.EarliestPendingReady()
			if !ok {
				t.Fatal("stuck without eviction")
			}
			now = at
			continue
		}
		now = res.EndsAt
		if len(res.Evicted) > 0 {
			evicted = res.Evicted[0]
		}
	}
	if evicted == nil {
		t.Fatal("pool exhaustion never evicted")
	}
	if evicted.ID != b.ID {
		t.Fatalf("evicted request %d, want newest (%d)", evicted.ID, b.ID)
	}
	if evicted.Generated == 0 {
		t.Fatal("victim should have generated some tokens before eviction")
	}
	if e.Stats().Evictions != 1 {
		t.Fatalf("stats.Evictions = %d", e.Stats().Evictions)
	}
}

func TestEvictedRequestResumesWithRecomputation(t *testing.T) {
	// §5.3: the destination re-prefills prompt + generated tokens; the
	// request finishes with exactly OutputLen tokens in total.
	cfg := punicaConfig()
	cfg.KVCapacityBytes = 16 * 16 * cfg.Model.KVBytesPerToken()
	var tokens int
	cfg.OnToken = func(Token) { tokens++ }
	e := NewEngine(cfg)
	a := req(1, 1, 100, 60, 0)
	b := req(2, 2, 100, 60, time.Millisecond)
	if err := e.Enqueue(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(b, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, steps := drain(t, e, 0)
	if !a.Finished() || !b.Finished() {
		t.Fatal("requests did not finish")
	}
	// The evicted request re-prefilled: some step must carry a prefill
	// of more than its original 100-token prompt.
	sawRePrefill := false
	for _, s := range steps {
		if s.PrefillRequests > 0 && s.PrefillTokens > 100 {
			sawRePrefill = true
		}
	}
	if !sawRePrefill {
		t.Fatal("no re-prefill of prompt+generated observed")
	}
	if tokens < 120 {
		t.Fatalf("token stream lost tokens: %d < 120", tokens)
	}
}

func TestCancelReleasesEverything(t *testing.T) {
	e := NewEngine(punicaConfig())
	r := req(1, 1, 50, 50, 0)
	if err := e.Enqueue(r, 0); err != nil {
		t.Fatal(err)
	}
	now, _ := e.EarliestPendingReady()
	res := e.Step(now)
	res = e.Step(res.EndsAt)
	if r.Generated != 2 {
		t.Fatalf("generated = %d, want 2", r.Generated)
	}
	got := e.Cancel(1, res.EndsAt)
	if got != r {
		t.Fatal("Cancel should return the request")
	}
	if e.KV().UsedPages() != 0 {
		t.Fatal("cancel leaked KvCache")
	}
	if e.Busy() {
		t.Fatal("engine should be empty after cancel")
	}
	if got.Generated != 2 {
		t.Fatal("cancel must preserve generation progress for migration")
	}
	if e.Cancel(1, res.EndsAt) != nil {
		t.Fatal("double cancel should return nil")
	}
}

func TestCanAdmitConstraints(t *testing.T) {
	cfg := punicaConfig()
	cfg.System.MaxBatch = 2
	e := NewEngine(cfg)
	if !e.CanAdmit(req(1, 1, 10, 10, 0)) {
		t.Fatal("empty engine should admit")
	}
	if err := e.Enqueue(req(1, 1, 10, 10, 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(req(2, 2, 10, 10, 0), 0); err != nil {
		t.Fatal(err)
	}
	if e.CanAdmit(req(3, 3, 10, 10, 0)) {
		t.Fatal("max batch reached; must refuse")
	}
	// Memory constraint: a tiny pool refuses big prompts even with free
	// batch slots.
	cfg2 := punicaConfig()
	cfg2.KVCapacityBytes = 4 * 16 * cfg2.Model.KVBytesPerToken() // 64 tokens
	e2 := NewEngine(cfg2)
	if e2.CanAdmit(req(1, 1, 1000, 10, 0)) {
		t.Fatal("must refuse request larger than free KvCache")
	}
	if !e2.CanAdmit(req(1, 1, 30, 10, 0)) {
		t.Fatal("small request should fit")
	}
}

func TestEnqueueRejectsImpossibleRequest(t *testing.T) {
	cfg := punicaConfig()
	cfg.KVCapacityBytes = 4 * 16 * cfg.Model.KVBytesPerToken()
	e := NewEngine(cfg)
	if err := e.Enqueue(req(1, 1, 10000, 10, 0), 0); err == nil {
		t.Fatal("request larger than the whole pool must be rejected")
	}
}

func TestFCFSOrderPreserved(t *testing.T) {
	// With a batch cap of 1, completion order must equal arrival order.
	cfg := punicaConfig()
	cfg.System.MaxBatch = 1
	var finished []int64
	cfg.OnFinish = func(r *Request) { finished = append(finished, r.ID) }
	e := NewEngine(cfg)
	for i := int64(1); i <= 4; i++ {
		r := req(i, 1, 10, 2, time.Duration(i)*time.Millisecond)
		if err := e.Enqueue(r, r.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, e, 0)
	for i, id := range finished {
		if id != int64(i+1) {
			t.Fatalf("completion order %v violates FCFS", finished)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	e := NewEngine(punicaConfig())
	if err := e.Enqueue(req(1, 1, 40, 5, 0), 0); err != nil {
		t.Fatal(err)
	}
	end, steps := drain(t, e, 0)
	st := e.Stats()
	if st.Steps != int64(len(steps)) {
		t.Fatalf("steps = %d, want %d", st.Steps, len(steps))
	}
	if st.TokensGenerated != 5 || st.PrefillTokens != 40 {
		t.Fatalf("tokens=%d prefill=%d", st.TokensGenerated, st.PrefillTokens)
	}
	if st.BusyTime <= 0 || st.BusyTime > end {
		t.Fatalf("busy time %v out of range (end %v)", st.BusyTime, end)
	}
}

func TestBackboneOnlySkipsAdapterStore(t *testing.T) {
	cfg := punicaConfig()
	cfg.System.LoRA = LoRANone
	e := NewEngine(cfg)
	if e.Store() != nil {
		t.Fatal("backbone-only engine should not build a store")
	}
	if err := e.Enqueue(req(1, 1, 10, 2, 0), 0); err != nil {
		t.Fatal(err)
	}
	res := e.Step(0)
	if res.Idle {
		t.Fatal("backbone-only request needs no adapter load")
	}
}

func lmID(m int64) lora.ModelID { return lora.ModelID(m) }
