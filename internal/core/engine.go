package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"punica/internal/hw"
	"punica/internal/invariant"
	"punica/internal/kvcache"
	"punica/internal/layer"
	"punica/internal/lora"
	"punica/internal/sgmv"
)

// ErrRoleMismatch reports a request offered to an engine whose role does
// not serve that path: enqueueing prefill work on a decode-role engine.
// Schedulers avoid it by filtering candidates on Snapshot.Role; the
// error guards direct misuse.
var ErrRoleMismatch = errors.New("core: decode-role engine accepts only KV imports")

// Engine is one serving instance: a GPU (or tensor-parallel GPU group)
// running continuous batches of an LLM with LoRA adapters. It owns the
// device's KvCache pool, adapter store, and FCFS request queue; a driver
// (the cluster simulator, the HTTP runner, or a benchmark harness) calls
// Step repeatedly, advancing simulated time by each returned latency —
// "GPU runs the Prefill steps and Decode steps continuously" (§5).
type Engine struct {
	cfg   Config
	costs layer.Costs
	kv    *kvcache.Pool
	store *lora.Store
	tiers *lora.TieredStore // nil unless cfg.Tiers configured
	reg   *lora.Registry

	pending []*Request // FCFS queue (sorted by arrival, then id)
	active  []*Request // the working set: the LLM invocation batch

	reservedPages int // pages promised to pending requests

	// version counts every externally visible mutation (admission, KV,
	// adapter store, stepping). Schedulers cache a Snapshot per engine
	// and revalidate it against StateVersion instead of rebuilding per
	// decision; the counter therefore bumps conservatively — any call
	// that could change snapshot-visible state increments it, even on
	// failure paths (a failed Enqueue may still have evicted adapters
	// while making room). Over-bumping costs a cache refresh;
	// under-bumping would serve stale scheduling state.
	version uint64

	// Step scratch, reused across calls so steady-state stepping is
	// allocation-free. StepResult.Finished/Evicted alias finishedScratch/
	// evictedScratch and are valid until the next Step on this engine.
	prefillScratch  []*Request
	decodeScratch   []*Request
	finishedScratch []*Request
	evictedScratch  []*Request
	prefillLens     []int
	decodeCtxs      []int
	segModels       []lora.ModelID
	segCounts       []int
	segBounds       []int

	stats Stats
}

// Stats aggregates engine activity since creation.
type Stats struct {
	Steps           int64
	TokensGenerated int64
	PrefillTokens   int64
	WastedDecodes   int64 // Fig. 6: decode slots burned for finished requests
	Evictions       int64
	Cancellations   int64
	Finished        int64
	// Crashes counts injected GPU failures survived by this engine object
	// (each drops all resident requests for recovery elsewhere).
	Crashes  int64
	BusyTime time.Duration
	// KVExports/KVImports count deliberate KV migrations through
	// ExportKV/ImportKV (disaggregation handoffs, not crash recoveries);
	// KVMovedBytes totals the KvCache payload received by imports —
	// charged where the transfer lands, so zero-byte bounces back to a
	// request's own source count nothing.
	KVExports    int64
	KVImports    int64
	KVMovedBytes int64
}

// Utilization returns the fraction of span the engine spent inside
// invocations — the per-GPU utilization signal pool-imbalance analysis
// reads. Zero when span is not positive.
func (s Stats) Utilization(span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return s.BusyTime.Seconds() / span.Seconds()
}

// StepResult reports one model invocation.
type StepResult struct {
	// Idle is set when there was nothing to run; all other fields are
	// zero.
	Idle bool

	Latency time.Duration
	EndsAt  time.Duration

	BatchSize       int // requests in the invocation
	PrefillRequests int
	PrefillTokens   int
	TokensGenerated int // tokens emitted this step
	WastedDecodes   int

	Finished []*Request
	// Evicted requests were pushed out mid-generation to free KvCache
	// (§5.3); the caller re-schedules them (possibly on another GPU).
	Evicted []*Request
}

// NewEngine builds an engine from the config. The KvCache pool and
// adapter store are sized from the GPU spec unless overridden.
func NewEngine(cfg Config) *Engine {
	if cfg.Rank <= 0 {
		cfg.Rank = 16
	}
	if cfg.System.MaxBatch <= 0 {
		cfg.System.MaxBatch = DefaultMaxBatch
	}
	if cfg.System.MaxPrefillPerStep <= 0 {
		cfg.System.MaxPrefillPerStep = 1
	}
	e := &Engine{
		cfg:   cfg,
		costs: cfg.costs(),
		kv:    kvcache.NewPool(cfg.kvCapacity(), cfg.kvBytesPerToken(), cfg.pageSize()),
	}
	if cfg.System.LoRA != LoRANone {
		e.reg = lora.NewRegistry(cfg.Model, cfg.Rank)
		e.reg.RankFor = cfg.AdapterRank
		e.store = lora.NewStore(e.reg, hw.PCIeGen4x16(), int64(cfg.tp())*cfg.loraStoreBytes())
		if len(cfg.Tiers) > 0 {
			e.tiers = lora.NewTieredStore(e.store, cfg.Tiers)
		}
	}
	return e
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Role returns the engine's disaggregation role (RoleUnified unless
// configured otherwise).
func (e *Engine) Role() Role { return e.cfg.Role }

// KV exposes the KvCache pool (read-only use by schedulers and tests).
func (e *Engine) KV() *kvcache.Pool { return e.kv }

// Store exposes the adapter store (nil for backbone-only systems).
func (e *Engine) Store() *lora.Store { return e.store }

// Tiers exposes the tiered staging hierarchy wrapping the store, or nil
// when the engine runs the flat single-link adapter path.
func (e *Engine) Tiers() *lora.TieredStore { return e.tiers }

// acquireAdapter pins an adapter through the tiered hierarchy when one
// is configured, or straight from the flat store otherwise. The
// returned time includes every staging hop a cold adapter crossed.
func (e *Engine) acquireAdapter(id lora.ModelID, now time.Duration) (time.Duration, error) {
	if e.tiers != nil {
		return e.tiers.Acquire(id, now)
	}
	return e.store.Acquire(id, now)
}

// Stats returns a snapshot of accumulated counters.
func (e *Engine) Stats() Stats { return e.stats }

// StateVersion returns the engine's monotonic mutation counter. Equal
// versions guarantee an identical Snapshot; schedulers use it to
// revalidate cached snapshots without rebuilding them.
func (e *Engine) StateVersion() uint64 { return e.version }

// PrefetchAdapter starts loading an adapter without pinning it — the
// disaggregation router's warm-up hint for a request's intended decode
// target while its prefill runs elsewhere. Best-effort: false when the
// engine serves no LoRA or the store refused the hint.
func (e *Engine) PrefetchAdapter(id lora.ModelID, now time.Duration) bool {
	if e.store == nil {
		return false
	}
	e.version++
	if e.tiers != nil {
		_, ok := e.tiers.Prefetch(id, now)
		return ok
	}
	_, ok := e.store.Prefetch(id, now)
	return ok
}

// AdapterResident reports whether the adapter is already in (or loading
// into) this engine's HBM store. Read-only — no version bump — so
// schedulers can probe warmth without invalidating cached snapshots.
func (e *Engine) AdapterResident(id lora.ModelID) bool {
	return e.store != nil && e.store.Resident(id)
}

// PrewarmAdapter stages an adapter into host RAM without touching HBM —
// the pre-distribution daemon's hook. It returns the bytes moved across
// tiers (the daemon's budget currency); 0 when the engine has no tiers
// or the adapter is already warm.
func (e *Engine) PrewarmAdapter(id lora.ModelID, now time.Duration) int64 {
	if e.tiers == nil {
		return 0
	}
	moved, ok := e.tiers.Prewarm(id, now)
	if !ok {
		return 0
	}
	return moved
}

// WorkingSet returns the number of requests assigned to this engine
// (running or queued locally) — the scheduler's routing signal (§5.1).
func (e *Engine) WorkingSet() int { return len(e.active) + len(e.pending) }

// ActiveBatch returns the current invocation batch size.
func (e *Engine) ActiveBatch() int { return len(e.active) }

// MaxBatch returns the invocation batch cap (the §5.1 limit).
func (e *Engine) MaxBatch() int { return e.cfg.System.MaxBatch }

// Snapshot returns the engine's scheduling state as one batched view:
// the §5.1 admission constraints plus the §5.2 adapter-store contents.
// The scheduler takes one snapshot per placement decision instead of
// issuing per-GPU WorkingSet/CanAdmit call pairs.
func (e *Engine) Snapshot() Snapshot {
	s := Snapshot{
		Version:      e.version,
		Role:         e.cfg.Role,
		WorkingSet:   e.WorkingSet(),
		ActiveBatch:  len(e.active),
		MaxBatch:     e.cfg.System.MaxBatch,
		FreeKVPages:  e.kv.FreePages() - e.reservedPages,
		TotalKVPages: e.kv.TotalPages(),
		PageSize:     e.kv.PageSize(),
		PagedKV:      e.cfg.System.PagedKV,
	}
	if e.store != nil {
		// The snapshot carries the store's reused adapter view; the
		// whole Snapshot is version-stamped and consumers (sched's
		// snapshot cache) revalidate against Version before reuse, so
		// the view can never be read after the store mutates.
		s.Adapters = e.store.Adapters() //punica:retains-copy snapshot is version-stamped; stale copies are revalidated away
		s.StoreCapacityBytes = e.store.CapacityBytes()
		s.StoreUsedBytes = e.store.UsedBytes()
		s.StorePinnedBytes = e.store.PinnedBytes()
	}
	return s
}

// Busy reports whether the engine has any work.
func (e *Engine) Busy() bool { return len(e.active) > 0 || len(e.pending) > 0 }

// EarliestPendingReady returns the soonest time a queued request's
// adapter finishes loading, for drivers that saw an Idle step and need to
// know when to try again. ok is false when nothing is pending on a load.
func (e *Engine) EarliestPendingReady() (at time.Duration, ok bool) {
	for _, r := range e.pending {
		ready := r.loraReady
		if r.kvReady > ready {
			ready = r.kvReady // KV migration still in flight over the link
		}
		if !ok || ready < at {
			at, ok = ready, true
		}
	}
	return at, ok
}

// kvNeed returns the token reservation a request requires on this system:
// paged systems reserve the current context (growing page by page);
// non-paged systems reserve the whole worst case up front.
func (e *Engine) kvNeed(r *Request) int {
	if e.cfg.System.PagedKV {
		return r.ContextLen()
	}
	return r.PromptLen + r.OutputLen
}

// CanAdmit reports whether the engine could take this request now:
// below the max batch size and with enough uncommitted KvCache (§5.1's
// two scheduling constraints).
func (e *Engine) CanAdmit(r *Request) bool {
	if !e.cfg.Role.AcceptsNew() {
		return false // decode pool: work arrives only via ImportKV
	}
	if e.WorkingSet() >= e.cfg.System.MaxBatch {
		return false
	}
	need := e.kv.PagesFor(e.kvNeed(r))
	return e.kv.FreePages()-e.reservedPages >= need
}

// Enqueue assigns a request to this engine. Adapter loading starts
// immediately ("issue an asynchronous memory copy ... let the GPU
// continue running other inputs", §5.2); the request joins the batch at
// the first step boundary where its weights are resident and capacity
// allows.
func (e *Engine) Enqueue(r *Request, now time.Duration) error {
	if !e.cfg.Role.AcceptsNew() {
		return ErrRoleMismatch
	}
	e.version++
	if e.kv.PagesFor(e.kvNeed(r)) > e.kv.TotalPages() {
		return fmt.Errorf("core: request %d needs %d tokens of KvCache, exceeding pool capacity",
			r.ID, e.kvNeed(r))
	}
	if r.AdmittedAt == 0 {
		r.AdmittedAt = now
	}
	if e.cfg.System.LoRA != LoRANone && !r.hasLoRA {
		ready, err := e.acquireAdapter(r.Model, now)
		if err != nil {
			return fmt.Errorf("core: adapter %d: %w", r.Model, err)
		}
		r.loraReady = ready
		r.hasLoRA = true
	}
	r.prefilled = false
	r.done = false
	r.kvReady = 0
	e.reservedPages += e.kv.PagesFor(e.kvNeed(r))
	e.insertPending(r)
	return nil
}

func (e *Engine) insertPending(r *Request) {
	i := sort.Search(len(e.pending), func(i int) bool {
		p := e.pending[i]
		if p.Arrival != r.Arrival {
			return p.Arrival > r.Arrival
		}
		return p.ID > r.ID
	})
	e.pending = append(e.pending, nil)
	copy(e.pending[i+1:], e.pending[i:])
	e.pending[i] = r
}

// Cancel removes a request wherever it is (queue or batch), releasing
// its KvCache and adapter pin, and returns it for re-scheduling. It
// returns nil if the request is not resident. Cancellation is the
// migration primitive (§5.3).
func (e *Engine) Cancel(id int64, now time.Duration) *Request {
	e.version++
	for i, r := range e.pending {
		if r.ID == id {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			if e.kv.Has(kvcache.SeqID(r.ID)) {
				// Imported via KV migration: pages were allocated at
				// import, not reserved at enqueue.
				e.kv.Release(kvcache.SeqID(r.ID))
			} else {
				e.reservedPages -= e.kv.PagesFor(e.kvNeed(r))
			}
			e.releaseRequest(r)
			e.stats.Cancellations++
			return r
		}
	}
	for i, r := range e.active {
		if r.ID == id {
			e.active = append(e.active[:i], e.active[i+1:]...)
			e.kv.Release(kvcache.SeqID(r.ID))
			e.releaseRequest(r)
			e.stats.Cancellations++
			return r
		}
	}
	return nil
}

func (e *Engine) releaseRequest(r *Request) {
	e.releaseAdapter(r)
	r.prefilled = false
	r.done = false
	r.kvReady = 0
}

// releaseAdapter unpins the request's adapter without touching its
// generation state — ExportKV uses it so a migrating request keeps its
// prefilled status while its pin moves from source to destination.
func (e *Engine) releaseAdapter(r *Request) {
	if r.hasLoRA && e.store != nil {
		e.store.Release(r.Model)
		r.hasLoRA = false
	}
}

// Crash models the engine's GPU dying: every resident request loses its
// KvCache state and adapter pin (with exact store accounting — pinned
// bytes return to zero for the requests dropped) and is returned for
// re-dispatch elsewhere. Requests keep Generated, so a recovering
// scheduler re-prefills prompt + generated exactly like the §5.3
// migration path. lostKVTokens is the KvCache context the active batch
// held at the instant of the crash — the prefill work that must be
// recomputed. Finished rows of a static batch are not returned: their
// users already have every token.
//
// After Crash the engine is empty (Busy reports false) and could in
// principle serve again, but a crashed GPU's driver normally abandons
// it; replacements start from a fresh engine with a cold adapter store.
func (e *Engine) Crash(now time.Duration) (lost []*Request, lostKVTokens int) {
	e.version++
	for _, r := range e.pending {
		if e.kv.Has(kvcache.SeqID(r.ID)) {
			// Imported mid-migration: the KvCache it carried is lost and
			// must be recomputed like any crashed context.
			lostKVTokens += r.ContextLen()
			e.kv.Release(kvcache.SeqID(r.ID))
		} else {
			e.reservedPages -= e.kv.PagesFor(e.kvNeed(r))
		}
		e.releaseRequest(r)
		lost = append(lost, r)
	}
	e.pending = nil
	for _, r := range e.active {
		e.kv.Release(kvcache.SeqID(r.ID))
		if r.done {
			// Finished static-batch row: nothing to recover.
			e.releaseRequest(r)
			continue
		}
		lostKVTokens += r.ContextLen()
		e.releaseRequest(r)
		lost = append(lost, r)
	}
	e.active = e.active[:0]
	e.stats.Crashes++
	// Oldest-first so the caller's FCFS requeue observes arrival order.
	sort.Slice(lost, func(i, j int) bool {
		if lost[i].Arrival != lost[j].Arrival {
			return lost[i].Arrival < lost[j].Arrival
		}
		return lost[i].ID < lost[j].ID
	})
	return lost, lostKVTokens
}

// EvictNewest removes the most recently arrived request (active or
// pending) to free memory: "The scheduler evicts the newest request from
// the GPU. This preserves the FCFS semantics" (§5.3). Returns nil when
// empty.
func (e *Engine) EvictNewest(now time.Duration) *Request {
	victim := e.newestRequest()
	if victim == nil {
		return nil
	}
	r := e.Cancel(victim.ID, now)
	e.stats.Evictions++
	e.stats.Cancellations-- // bookkeeping: eviction, not user cancel
	return r
}

func (e *Engine) newestRequest() *Request {
	var newest *Request
	consider := func(r *Request) {
		if newest == nil || r.Arrival > newest.Arrival ||
			(r.Arrival == newest.Arrival && r.ID > newest.ID) {
			newest = r
		}
	}
	for _, r := range e.active {
		if !r.done { // finished static-batch rows hold no useful memory
			consider(r)
		}
	}
	for _, r := range e.pending {
		consider(r)
	}
	return newest
}

// admit moves eligible pending requests into the active batch.
func (e *Engine) admit(now time.Duration) {
	sys := e.cfg.System
	if !sys.ContinuousBatching && len(e.active) > 0 {
		return // static batch runs to completion
	}
	kept := e.pending[:0]
	blocked := false
	for _, r := range e.pending {
		if blocked {
			kept = append(kept, r)
			continue
		}
		if len(e.active) >= sys.MaxBatch {
			blocked = true
			kept = append(kept, r)
			continue
		}
		if !sys.CrossLoRABatching && len(e.active) > 0 && r.Model != e.active[0].Model {
			// Same-model-only systems batch the consecutive FCFS run
			// at the queue head; a different model blocks admission.
			blocked = true
			kept = append(kept, r)
			continue
		}
		if r.loraReady > now || r.kvReady > now {
			// Adapter still in flight over PCIe (§5.2) or migrated
			// KvCache still crossing the link; it joins the batch
			// naturally next step. Others may pass.
			kept = append(kept, r)
			continue
		}
		if e.kv.Has(kvcache.SeqID(r.ID)) {
			// Imported via KV migration: pages were allocated at import
			// and the prefill already happened on the source GPU.
			e.active = append(e.active, r)
			continue
		}
		need := e.kvNeed(r)
		if err := e.kv.Allocate(kvcache.SeqID(r.ID), need); err != nil {
			blocked = true // FCFS: wait for memory, don't skip ahead
			kept = append(kept, r)
			continue
		}
		e.reservedPages -= e.kv.PagesFor(need)
		e.active = append(e.active, r)
	}
	e.pending = kept
}

// ensureDecodeCapacity evicts newest requests until every row of the
// upcoming invocation can append its new token to the KvCache: decode
// rows and the prefill rows selected this step each grow by one slot,
// which takes a fresh page at page boundaries. Returns the evicted
// requests.
func (e *Engine) ensureDecodeCapacity(now time.Duration) []*Request {
	evicted := e.evictedScratch[:0]
	if !e.cfg.System.PagedKV {
		return evicted // contiguous systems reserved the worst case up front
	}
	for {
		need := 0
		prefills := 0
		for _, r := range e.active {
			if !r.prefilled {
				if prefills < e.cfg.System.MaxPrefillPerStep {
					prefills++
					ctx := r.ContextLen()
					need += e.kv.PagesFor(ctx+1) - e.kv.PagesFor(ctx)
				}
				continue
			}
			if r.done {
				continue
			}
			ctx := r.ContextLen()
			need += e.kv.PagesFor(ctx+1) - e.kv.PagesFor(ctx)
		}
		if need <= e.kv.FreePages() {
			return evicted
		}
		v := e.EvictNewest(now)
		if v == nil {
			return evicted
		}
		evicted = append(evicted, v)
	}
}

// Step runs one batched model invocation starting at simulated time now.
// It admits eligible queued requests, assembles the mixed prefill/decode
// batch with SGMV segment grouping, charges the invocation latency, and
// applies all effects (token emission, KvCache growth, completion).
//
// The returned StepResult's Finished and Evicted slices alias buffers
// the engine reuses: they are valid until the next call to Step. Every
// existing driver (cluster runner, HTTP runner, serve loop) consumes
// them before stepping the same engine again.
//
//punica:zeroalloc steady-state stepping must not allocate (see BenchmarkStepAllocs)
func (e *Engine) Step(now time.Duration) StepResult {
	e.version++
	e.admit(now)
	evicted := e.ensureDecodeCapacity(now)
	e.evictedScratch = evicted

	prefills, decodes := e.prefillScratch[:0], e.decodeScratch[:0]
	for _, r := range e.active {
		switch {
		case !r.prefilled:
			if len(prefills) < e.cfg.System.MaxPrefillPerStep {
				prefills = append(prefills, r)
			}
		case !r.done:
			decodes = append(decodes, r)
		default:
			decodes = append(decodes, r) // wasted slot in a static batch
		}
	}
	e.prefillScratch, e.decodeScratch = prefills, decodes
	if len(prefills) == 0 && len(decodes) == 0 {
		if invariant.Enabled {
			e.checkQuiescence()
		}
		return StepResult{Idle: true, Evicted: evicted}
	}

	inv := e.buildInvocation(prefills, decodes)
	latency := e.costs.InvokeTime(inv)
	end := now + latency

	res := StepResult{
		Latency:         latency,
		EndsAt:          end,
		BatchSize:       len(prefills) + len(decodes),
		PrefillRequests: len(prefills),
		Evicted:         evicted,
		Finished:        e.finishedScratch[:0],
	}

	for _, r := range prefills {
		res.PrefillTokens += r.ContextLen()
		r.prefilled = true
		e.produceToken(r, end, &res)
	}
	for _, r := range decodes {
		if r.done {
			res.WastedDecodes++
			continue
		}
		e.produceToken(r, end, &res)
	}
	e.finishStep(end, &res)
	e.finishedScratch = res.Finished // adopt any growth for reuse

	e.stats.Steps++
	e.stats.BusyTime += latency
	e.stats.TokensGenerated += int64(res.TokensGenerated)
	e.stats.PrefillTokens += int64(res.PrefillTokens)
	e.stats.WastedDecodes += int64(res.WastedDecodes)
	return res
}

// checkQuiescence asserts, under the punica_invariants build, that a
// fully idle engine (no active batch, no pending queue, no outstanding
// migration reservations) holds no resources: pinned adapter bytes and
// resident KV sequences must both be zero, or a request's teardown path
// leaked a reference. Called from Step's idle return; cluster.Run makes
// the same check once at end-of-run, but the panic here points at the
// step where the leak first became observable.
func (e *Engine) checkQuiescence() {
	if len(e.active) > 0 || len(e.pending) > 0 || e.reservedPages > 0 {
		return
	}
	if e.reservedPages < 0 {
		invariant.Failf("core: negative page reservations (%d)", e.reservedPages)
	}
	if e.store != nil {
		if pb := e.store.PinnedBytes(); pb != 0 {
			invariant.Failf("core: idle engine holds %d pinned adapter bytes (pin leak)", pb)
		}
	}
	if n := e.kv.Sequences(); n != 0 || e.kv.UsedPages() != 0 {
		invariant.Failf("core: idle engine holds %d KV sequences over %d pages (page leak)",
			n, e.kv.UsedPages())
	}
}

// buildInvocation assembles the layer-model view of the batch: prefill
// requests first, then decodes, with tokens grouped by LoRA model into
// SGMV segments ("The tail of Prefill requests and the head of Decode
// requests can share a LoRA model if possible", §6). Every intermediate
// lives in engine-owned scratch (segment accumulation is a linear scan —
// a batch holds at most MaxBatch distinct models), so assembling an
// invocation allocates nothing in steady state; the invocation is
// consumed by the cost model within Step and never retained.
func (e *Engine) buildInvocation(prefills, decodes []*Request) layer.Invocation {
	inv := layer.Invocation{LoRARank: e.cfg.Rank}
	prefillLens, decodeCtxs := e.prefillLens[:0], e.decodeCtxs[:0]
	for _, r := range prefills {
		prefillLens = append(prefillLens, r.ContextLen())
	}
	for _, r := range decodes {
		decodeCtxs = append(decodeCtxs, r.ContextLen())
	}
	e.prefillLens, e.decodeCtxs = prefillLens, decodeCtxs
	inv.PrefillLens, inv.DecodeContexts = prefillLens, decodeCtxs
	if e.cfg.System.LoRA == LoRANone {
		return inv
	}
	segModels, segCounts := e.segModels[:0], e.segCounts[:0]
	addTokens := func(m lora.ModelID, n int) {
		for i, id := range segModels {
			if id == m {
				segCounts[i] += n
				return
			}
		}
		segModels = append(segModels, m)
		segCounts = append(segCounts, n)
	}
	for _, r := range prefills {
		addTokens(r.Model, r.ContextLen())
	}
	for _, r := range decodes {
		addTokens(r.Model, 1)
	}
	e.segModels, e.segCounts = segModels, segCounts
	maxRank := 0
	for _, m := range segModels {
		if r := e.reg.Ensure(m).Rank; r > maxRank {
			maxRank = r
		}
	}
	// SGMV pads every segment to the widest rank in the batch, so a
	// mixed-rank invocation runs at the largest adapter's cost. Uniform
	// fleets (the paper's setup) see exactly cfg.Rank here.
	if maxRank > 0 {
		inv.LoRARank = maxRank
	}
	bounds := append(e.segBounds[:0], 0)
	for _, n := range segCounts {
		bounds = append(bounds, bounds[len(bounds)-1]+n)
	}
	e.segBounds = bounds
	// The invocation is consumed synchronously inside this step; the
	// layer model reads the segment view before Step returns, so the
	// zero-copy wrapper over the reused bounds buffer is safe.
	inv.LoRASegments = sgmv.SegmentsOver(bounds) //punica:retains-copy consumed within this Step before segBounds is reused
	return inv
}

func (e *Engine) produceToken(r *Request, at time.Duration, res *StepResult) {
	// Grow the paged cache by the token just generated. Non-paged
	// systems reserved everything up front.
	if e.cfg.System.PagedKV {
		if err := e.kv.Extend(kvcache.SeqID(r.ID), 1); err != nil {
			// ensureDecodeCapacity ran before the step; prefill rows
			// were allocated their full context at admission, so a
			// failure here is an engine invariant violation.
			panic(fmt.Sprintf("core: KvCache extend failed after capacity check: %v", err))
		}
	}
	r.Generated++
	if r.FirstTokenAt == 0 {
		r.FirstTokenAt = at
	}
	res.TokensGenerated++
	if e.cfg.OnToken != nil {
		e.cfg.OnToken(Token{
			RequestID: r.ID,
			Index:     r.Generated - 1,
			TokenID:   tokenID(r.ID, r.Generated-1, e.cfg.Model.VocabSize),
			At:        at,
			EOS:       r.Finished(),
		})
	}
}

// finishStep retires completed requests. Continuous systems release them
// immediately; static systems keep slots occupied until the whole batch
// completes (the Fig. 6 waste).
func (e *Engine) finishStep(end time.Duration, res *StepResult) {
	if e.cfg.System.ContinuousBatching {
		remaining := e.active[:0]
		for _, r := range e.active {
			if r.prefilled && r.Finished() {
				e.retire(r, end, res)
			} else {
				remaining = append(remaining, r)
			}
		}
		e.active = remaining
		return
	}
	allDone := true
	for _, r := range e.active {
		if r.prefilled && r.Finished() && !r.done {
			r.done = true
			r.FinishedAt = end
			e.stats.Finished++
			res.Finished = append(res.Finished, r)
			if e.cfg.OnFinish != nil {
				e.cfg.OnFinish(r)
			}
		}
		if !r.done {
			allDone = false
		}
	}
	if allDone {
		for _, r := range e.active {
			e.kv.Release(kvcache.SeqID(r.ID))
			e.releaseRequest(r)
		}
		e.active = e.active[:0]
	}
}

func (e *Engine) retire(r *Request, end time.Duration, res *StepResult) {
	r.FinishedAt = end
	e.kv.Release(kvcache.SeqID(r.ID))
	e.releaseRequest(r)
	e.stats.Finished++
	res.Finished = append(res.Finished, r)
	if e.cfg.OnFinish != nil {
		e.cfg.OnFinish(r)
	}
}
