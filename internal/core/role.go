package core

import "fmt"

// Role assigns an engine its place in a disaggregated deployment. The
// paper's engines run "Prefill steps and Decode steps continuously" on
// every GPU (§5) — RoleUnified, the zero value, preserves that exactly.
// Splitting the fleet into RolePrefill and RoleDecode pools removes the
// head-of-line blocking where one tenant's long prefill stalls every
// other tenant's decode on that GPU: prefill engines absorb prompt
// processing, then hand the finished KvCache to a decode engine through
// Engine.ExportKV/ImportKV instead of recomputing it.
type Role int

const (
	// RoleUnified runs prefill and decode on the same GPU (the paper's
	// §5 engine, and the default).
	RoleUnified Role = iota
	// RolePrefill admits new requests and runs their prefill; completed
	// prefills are exported to the decode pool at step boundaries.
	RolePrefill
	// RoleDecode never admits raw requests — work arrives only as KV
	// imports whose prefill already happened elsewhere.
	RoleDecode
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleUnified:
		return "unified"
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// ParseRole maps a config string to a Role ("" means unified).
func ParseRole(s string) (Role, error) {
	switch s {
	case "", "unified":
		return RoleUnified, nil
	case "prefill":
		return RolePrefill, nil
	case "decode":
		return RoleDecode, nil
	default:
		return RoleUnified, fmt.Errorf("core: unknown engine role %q (want unified, prefill or decode)", s)
	}
}

// AcceptsNew reports whether engines of this role take requests that
// still need prefill — the Enqueue path used by dispatch, queue drains,
// eviction reschedules and crash recovery. Decode engines do not: their
// work arrives pre-filled via ImportKV, and a request that lost its
// KvCache must re-enter through a prefill-capable GPU's recompute path.
func (r Role) AcceptsNew() bool { return r != RoleDecode }
