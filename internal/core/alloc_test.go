package core

import (
	"testing"
	"time"

	"punica/internal/hw"
	"punica/internal/lora"
	"punica/internal/models"
)

// steadyEngine returns an engine running a full 32-request decode batch
// (8 distinct adapters) whose requests never finish within the test, so
// every Step is a pure continuous-batching decode invocation.
func steadyEngine(t testing.TB) (*Engine, time.Duration) {
	t.Helper()
	eng := NewEngine(Config{
		System: PunicaSystem(),
		GPU:    hw.A100(),
		Model:  models.Llama2_7B(),
		Rank:   models.DefaultLoRARank,
	})
	now := time.Duration(0)
	for i := int64(1); i <= 32; i++ {
		if err := eng.Enqueue(&Request{
			ID:        i,
			Model:     lora.ModelID(i % 8),
			PromptLen: 64,
			OutputLen: 1 << 20, // never finishes during the measurement
			Arrival:   0,
		}, now); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	// Warm up: let adapter loads complete, prefill every request, and
	// grow the step scratch buffers to steady-state capacity.
	for i := 0; i < 64; i++ {
		res := eng.Step(now)
		if res.Idle {
			at, ok := eng.EarliestPendingReady()
			if !ok {
				t.Fatal("engine idle with no wake time")
			}
			now = at
			continue
		}
		now = res.EndsAt
	}
	return eng, now
}

// TestStepZeroAlloc guards the zero-alloc stepping work: a steady-state
// continuous-batching decode step — batch assembly, SGMV segment
// grouping, cost-model invocation, KvCache growth — must not allocate.
// Invocation buffers, segment bounds and StepResult slices all live in
// engine-owned scratch; regaining a per-step allocation fails this.
func TestStepZeroAlloc(t *testing.T) {
	eng, now := steadyEngine(t)
	allocs := testing.AllocsPerRun(200, func() {
		res := eng.Step(now)
		if res.Idle {
			t.Fatal("unexpected idle step")
		}
		now = res.EndsAt
	})
	if allocs != 0 {
		t.Fatalf("Engine.Step allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestStepResultBufferContract pins the documented aliasing contract:
// StepResult.Finished remains intact until the next Step, and retired
// requests appear there exactly once.
func TestStepResultBufferContract(t *testing.T) {
	eng := NewEngine(Config{
		System: PunicaSystem(),
		GPU:    hw.A100(),
		Model:  models.Llama2_7B(),
		Rank:   models.DefaultLoRARank,
	})
	now := time.Duration(0)
	for i := int64(1); i <= 4; i++ {
		if err := eng.Enqueue(&Request{
			ID: i, Model: lora.ModelID(i), PromptLen: 8, OutputLen: 2, Arrival: 0,
		}, now); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	var finished []int64
	for eng.Busy() {
		res := eng.Step(now)
		if res.Idle {
			at, ok := eng.EarliestPendingReady()
			if !ok {
				t.Fatal("stuck")
			}
			now = at
			continue
		}
		for _, f := range res.Finished {
			finished = append(finished, f.ID)
		}
		now = res.EndsAt
	}
	if len(finished) != 4 {
		t.Fatalf("finished %v, want all 4 requests exactly once", finished)
	}
	seen := map[int64]bool{}
	for _, id := range finished {
		if seen[id] {
			t.Fatalf("request %d finished twice: %v", id, finished)
		}
		seen[id] = true
	}
}

// BenchmarkSteadyDecodeStep measures the steady-state decode step.
func BenchmarkSteadyDecodeStep(b *testing.B) {
	eng, now := steadyEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eng.Step(now)
		now = res.EndsAt
	}
}
