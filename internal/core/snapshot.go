package core

import "punica/internal/lora"

// Snapshot is a worker's complete scheduling state batched into one
// view: the §5.1 admission constraints (working set, batch cap, KvCache
// headroom) plus the §5.2 adapter-store state (resident adapters with
// ranks, pin accounting) that placement policies rank on.
//
// One Snapshot fetch per scheduling decision replaces the per-GPU
// WorkingSet/CanAdmit call pairs the scheduler used to issue — for
// remote workers each of those was a separate HTTP round-trip.
type Snapshot struct {
	// Version is the worker's mutation counter at snapshot time (see
	// Engine.StateVersion): equal versions guarantee an identical
	// snapshot, which is what makes scheduler-side caching sound.
	Version uint64

	// Role is the worker's disaggregation role; schedulers route new
	// (prefill-needing) requests only to workers whose role accepts
	// them, and KV migrations only to the decode pool.
	Role Role

	WorkingSet  int
	ActiveBatch int
	MaxBatch    int

	// FreeKVPages is the uncommitted KvCache headroom: the pool's free
	// pages minus pages already reserved for pending requests.
	FreeKVPages  int
	TotalKVPages int
	// PageSize is the pool's token slots per page, so admission page
	// math can run scheduler-side without a round-trip.
	PageSize int
	// PagedKV selects the reservation model: paged workers reserve the
	// current context, contiguous workers the whole worst case.
	PagedKV bool

	// Adapters lists the resident LoRA adapters, most recently used
	// first (nil for backbone-only workers).
	Adapters           []lora.AdapterState
	StoreCapacityBytes int64
	StoreUsedBytes     int64
	StorePinnedBytes   int64
}

// PagesFor returns how many pages n tokens occupy under the worker's
// page size (zero when the snapshot carries no page geometry).
func (s *Snapshot) PagesFor(n int) int {
	if n <= 0 || s.PageSize <= 0 {
		return 0
	}
	return (n + s.PageSize - 1) / s.PageSize
}

// KVNeed returns the token reservation r requires under the worker's
// memory model, mirroring the engine's admission accounting.
func (s *Snapshot) KVNeed(r *Request) int {
	if s.PagedKV {
		return r.ContextLen()
	}
	return r.PromptLen + r.OutputLen
}

// CanAdmit evaluates the §5.1 admission constraints — batch-slot and
// KvCache room — from snapshot state alone, decision-for-decision
// equivalent to Engine.CanAdmit at the time the snapshot was taken.
// Decode-role workers never admit on this path; they receive work only
// through KV imports (see CanImport).
func (s *Snapshot) CanAdmit(r *Request) bool {
	if !s.Role.AcceptsNew() {
		return false
	}
	if s.WorkingSet >= s.MaxBatch {
		return false
	}
	return s.PagesFor(s.KVNeed(r)) <= s.FreeKVPages
}

// CanImport reports whether the worker could land a KV migration of r
// right now: a batch slot plus page-exact room for the request's
// current context. Any role can physically import; the router chooses
// decode-pool targets.
func (s *Snapshot) CanImport(r *Request) bool {
	if s.WorkingSet >= s.MaxBatch {
		return false
	}
	return s.PagesFor(r.ContextLen()) <= s.FreeKVPages
}

// Adapter returns the resident state of adapter id, if any.
func (s *Snapshot) Adapter(id lora.ModelID) (lora.AdapterState, bool) {
	for _, a := range s.Adapters {
		if a.ID == id {
			return a, true
		}
	}
	return lora.AdapterState{}, false
}

// HasAdapter reports whether adapter id is warm on the worker.
func (s *Snapshot) HasAdapter(id lora.ModelID) bool {
	_, ok := s.Adapter(id)
	return ok
}

// NoteEnqueued updates the snapshot to reflect r landing on the worker,
// so a multi-step scheduling pass (consolidation) keeps its one-shot
// view exact across its own mutations without re-polling workers. Only
// the §5.1 admission state is mirrored; adapter-store contents are left
// as fetched (warm residency outlives request churn anyway).
func (s *Snapshot) NoteEnqueued(r *Request) {
	s.WorkingSet++
	s.FreeKVPages -= s.PagesFor(s.KVNeed(r))
}

// NoteRemoved is NoteEnqueued's inverse: r left the worker via cancel
// or eviction, releasing its batch slot and KvCache reservation.
func (s *Snapshot) NoteRemoved(r *Request) {
	s.WorkingSet--
	s.FreeKVPages += s.PagesFor(s.KVNeed(r))
}

// StoreFreeBytes returns the adapter-store bytes not holding any
// adapter; a cold load that fits here evicts nothing.
func (s *Snapshot) StoreFreeBytes() int64 { return s.StoreCapacityBytes - s.StoreUsedBytes }

// StoreReclaimableBytes returns the bytes a cold load could obtain at
// most: free space plus unpinned (evictable) residents. A load larger
// than this stalls with ErrStoreFull.
func (s *Snapshot) StoreReclaimableBytes() int64 { return s.StoreCapacityBytes - s.StorePinnedBytes }
