// Package kvcache implements Punica's paged KvCache layout (§5.4). The
// paper stores the cache as [Σᵢ ⌈Sᵢ/P⌉, L, 2, N, P, D]: the batch
// dimension is outermost and each sequence owns whole pages of P token
// slots, so requests can enter and leave a batch independently
// (continuous batching) and fragmentation is bounded by one partial page
// per sequence.
//
// The Pool tracks pages, bytes and per-sequence occupancy; the serving
// engine consults it for admission ("has enough memory for the new
// request's KvCache") and eviction decisions.
package kvcache

import (
	"fmt"
	"sort"

	"punica/internal/invariant"
)

// DefaultPageSize is the number of token slots per KvCache page. vLLM and
// FlashInfer both default to 16.
const DefaultPageSize = 16

// SeqID identifies one sequence (request) in the pool.
type SeqID int64

// Pool is a paged KvCache allocator. It is not safe for concurrent use;
// the engine serialises access per GPU.
type Pool struct {
	pageSize      int
	bytesPerToken int64
	totalPages    int
	freePages     int
	seqs          map[SeqID]*seqState
}

type seqState struct {
	tokens int // token slots in use
	pages  int // pages allocated (= ceil(tokens/pageSize))
}

// NewPool builds a pool over capacityBytes of GPU memory for a model
// whose KvCache costs bytesPerToken per token. The page count is
// ⌊capacity / (pageSize × bytesPerToken)⌋.
func NewPool(capacityBytes, bytesPerToken int64, pageSize int) *Pool {
	if pageSize <= 0 {
		panic("kvcache: page size must be positive")
	}
	if bytesPerToken <= 0 {
		panic("kvcache: bytes per token must be positive")
	}
	pageBytes := int64(pageSize) * bytesPerToken
	total := int(capacityBytes / pageBytes)
	if total < 0 {
		total = 0
	}
	return &Pool{
		pageSize:      pageSize,
		bytesPerToken: bytesPerToken,
		totalPages:    total,
		freePages:     total,
		seqs:          make(map[SeqID]*seqState),
	}
}

// PageSize returns the token slots per page.
func (p *Pool) PageSize() int { return p.pageSize }

// TotalPages returns the pool capacity in pages.
func (p *Pool) TotalPages() int { return p.totalPages }

// FreePages returns the currently unallocated pages.
func (p *Pool) FreePages() int { return p.freePages }

// UsedPages returns the allocated pages.
func (p *Pool) UsedPages() int { return p.totalPages - p.freePages }

// UsedBytes returns the bytes held by allocated pages.
func (p *Pool) UsedBytes() int64 {
	return int64(p.UsedPages()) * int64(p.pageSize) * p.bytesPerToken
}

// Sequences returns the number of resident sequences.
func (p *Pool) Sequences() int { return len(p.seqs) }

// PagesFor returns how many pages a sequence of n tokens needs.
func (p *Pool) PagesFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + p.pageSize - 1) / p.pageSize
}

// CanFit reports whether a new sequence of n tokens would fit right now.
func (p *Pool) CanFit(n int) bool { return p.PagesFor(n) <= p.freePages }

// Allocate reserves pages for a new sequence holding n tokens (the
// prefill allocation). It fails if the id exists or memory is exhausted.
func (p *Pool) Allocate(id SeqID, n int) error {
	if _, ok := p.seqs[id]; ok {
		return fmt.Errorf("kvcache: sequence %d already allocated", id)
	}
	if n < 0 {
		return fmt.Errorf("kvcache: negative token count %d", n)
	}
	need := p.PagesFor(n)
	if need > p.freePages {
		return ErrOutOfMemory
	}
	p.freePages -= need
	p.seqs[id] = &seqState{tokens: n, pages: need}
	p.checkAccounting("Allocate")
	return nil
}

// Extend grows sequence id by n token slots (each decode step appends
// one). A new page is taken only when the partial page fills. It fails
// with ErrOutOfMemory if a required page is unavailable; the sequence is
// left unchanged in that case.
func (p *Pool) Extend(id SeqID, n int) error {
	s, ok := p.seqs[id]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", id)
	}
	if n < 0 {
		return fmt.Errorf("kvcache: negative extension %d", n)
	}
	newPages := p.PagesFor(s.tokens + n)
	delta := newPages - s.pages
	if delta > p.freePages {
		return ErrOutOfMemory
	}
	p.freePages -= delta
	s.pages = newPages
	s.tokens += n
	p.checkAccounting("Extend")
	return nil
}

// Release frees all pages of sequence id. Releasing an unknown sequence
// is a no-op so that cancellation races are harmless.
func (p *Pool) Release(id SeqID) {
	s, ok := p.seqs[id]
	if !ok {
		return
	}
	p.freePages += s.pages
	delete(p.seqs, id)
	p.checkAccounting("Release")
}

// Handle is the page-exact accounting record of one sequence's KvCache,
// detached from any pool: the currency of deliberate KV migration
// (prefill/decode disaggregation) as opposed to the drop-and-recompute
// crash path. Export produces one, Import redeems it on another pool.
// Bytes is the token payload that actually crosses the link — partial
// pages transfer their occupied slots only, so the transfer-cost model
// charges data moved, not pages reserved.
type Handle struct {
	Seq    SeqID
	Tokens int
	// Pages is the page count the sequence held at export under the
	// source pool's geometry; Import re-derives it for the destination's
	// page size, so handles move between heterogeneous pools.
	Pages int
	Bytes int64
}

// Export removes sequence id from the pool and returns its page-exact
// handle, freeing the pages. It is Release that remembers what it freed:
// the caller owns the handle until a destination pool Imports it (or the
// handle is dropped, modelling a migration abandoned mid-flight — the
// source pages are already free either way, so no state leaks).
func (p *Pool) Export(id SeqID) (Handle, error) {
	s, ok := p.seqs[id]
	if !ok {
		return Handle{}, fmt.Errorf("kvcache: export of unknown sequence %d", id)
	}
	h := Handle{
		Seq:    id,
		Tokens: s.tokens,
		Pages:  s.pages,
		Bytes:  int64(s.tokens) * p.bytesPerToken,
	}
	p.freePages += s.pages
	delete(p.seqs, id)
	p.checkAccounting("Export")
	return h, nil
}

// Import redeems a handle on this pool: the sequence is allocated
// page-exactly for its token count under this pool's geometry. It fails
// if the sequence already exists or memory is exhausted, leaving the
// pool unchanged — the caller may retry elsewhere or fall back to the
// recompute path.
func (p *Pool) Import(h Handle) error {
	if h.Tokens < 0 {
		return fmt.Errorf("kvcache: import with negative token count %d", h.Tokens)
	}
	return p.Allocate(h.Seq, h.Tokens)
}

// checkAccounting verifies the page ledger under the punica_invariants
// build: every page is either free or held by exactly one sequence.
// Compiled out otherwise (invariant.Enabled is a false constant).
func (p *Pool) checkAccounting(op string) {
	if !invariant.Enabled {
		return
	}
	if p.freePages < 0 {
		invariant.Failf("kvcache: negative free pages (%d) after %s", p.freePages, op)
	}
	held := 0
	for _, s := range p.seqs {
		held += s.pages
	}
	if held+p.freePages != p.totalPages {
		invariant.Failf("kvcache: page leak after %s: %d held + %d free != %d total",
			op, held, p.freePages, p.totalPages)
	}
}

// Tokens returns the token count held by sequence id (0 if unknown).
func (p *Pool) Tokens(id SeqID) int {
	if s, ok := p.seqs[id]; ok {
		return s.tokens
	}
	return 0
}

// Has reports whether sequence id is resident.
func (p *Pool) Has(id SeqID) bool {
	_, ok := p.seqs[id]
	return ok
}

// WastedSlots returns the internal fragmentation: allocated token slots
// not holding a token. Paging bounds this at (pageSize-1) per sequence,
// which is the property §5.4 is after.
func (p *Pool) WastedSlots() int {
	waste := 0
	for _, s := range p.seqs {
		waste += s.pages*p.pageSize - s.tokens
	}
	return waste
}

// IDs returns the resident sequence ids in ascending order.
func (p *Pool) IDs() []SeqID {
	ids := make([]SeqID, 0, len(p.seqs))
	for id := range p.seqs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ErrOutOfMemory reports that the pool cannot satisfy an allocation; the
// scheduler reacts by queueing new requests or migrating old ones (§5.3).
var ErrOutOfMemory = fmt.Errorf("kvcache: out of memory")
