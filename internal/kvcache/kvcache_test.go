package kvcache

import (
	"errors"
	"testing"
	"testing/quick"
)

func newTestPool(pages int) *Pool {
	// 1 byte per token, page size 16 → capacity = pages*16 bytes.
	return NewPool(int64(pages)*16, 1, 16)
}

func TestAllocateReleaseRoundtrip(t *testing.T) {
	p := newTestPool(10)
	if err := p.Allocate(1, 33); err != nil { // 3 pages
		t.Fatal(err)
	}
	if p.UsedPages() != 3 || p.FreePages() != 7 {
		t.Fatalf("used=%d free=%d, want 3/7", p.UsedPages(), p.FreePages())
	}
	if p.Tokens(1) != 33 {
		t.Fatalf("tokens = %d", p.Tokens(1))
	}
	p.Release(1)
	if p.UsedPages() != 0 || p.Sequences() != 0 {
		t.Fatal("release did not return pages")
	}
}

func TestAllocateDuplicateFails(t *testing.T) {
	p := newTestPool(10)
	if err := p.Allocate(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.Allocate(1, 5); err == nil {
		t.Fatal("duplicate allocation should fail")
	}
}

func TestOutOfMemory(t *testing.T) {
	p := newTestPool(2)
	if err := p.Allocate(1, 40); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	if p.UsedPages() != 0 {
		t.Fatal("failed allocation must not leak pages")
	}
}

func TestExtendTakesPageOnlyAtBoundary(t *testing.T) {
	p := newTestPool(10)
	if err := p.Allocate(1, 16); err != nil { // exactly 1 page
		t.Fatal(err)
	}
	used := p.UsedPages()
	if err := p.Extend(1, 1); err != nil { // crosses into page 2
		t.Fatal(err)
	}
	if p.UsedPages() != used+1 {
		t.Fatal("boundary extension should take one page")
	}
	for i := 0; i < 15; i++ { // fill page 2, no new pages
		if err := p.Extend(1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if p.UsedPages() != used+1 {
		t.Fatal("mid-page extensions must not take pages")
	}
}

func TestExtendOOMLeavesStateUnchanged(t *testing.T) {
	p := newTestPool(1)
	if err := p.Allocate(1, 16); err != nil {
		t.Fatal(err)
	}
	if err := p.Extend(1, 1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want OOM, got %v", err)
	}
	if p.Tokens(1) != 16 || p.UsedPages() != 1 {
		t.Fatal("failed extend must not change state")
	}
}

func TestExtendUnknownSequence(t *testing.T) {
	p := newTestPool(4)
	if err := p.Extend(9, 1); err == nil {
		t.Fatal("extending unknown sequence should fail")
	}
}

func TestReleaseUnknownIsNoop(t *testing.T) {
	p := newTestPool(4)
	p.Release(42) // must not panic
	if p.FreePages() != 4 {
		t.Fatal("no-op release changed free pages")
	}
}

func TestWastedSlotsBoundedByPageSize(t *testing.T) {
	p := newTestPool(100)
	sizes := []int{1, 15, 16, 17, 31, 33}
	for i, n := range sizes {
		if err := p.Allocate(SeqID(i), n); err != nil {
			t.Fatal(err)
		}
	}
	waste := p.WastedSlots()
	max := len(sizes) * (p.PageSize() - 1)
	if waste > max {
		t.Fatalf("waste %d exceeds bound %d", waste, max)
	}
	// Exact: 15+1+0+15+1+15 = 47.
	if waste != 47 {
		t.Fatalf("waste = %d, want 47", waste)
	}
}

func TestCanFit(t *testing.T) {
	p := newTestPool(2)
	if !p.CanFit(32) || p.CanFit(33) {
		t.Fatal("CanFit boundary wrong")
	}
}

func TestIDsSorted(t *testing.T) {
	p := newTestPool(10)
	for _, id := range []SeqID{5, 1, 3} {
		if err := p.Allocate(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	ids := p.IDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestZeroTokenAllocate(t *testing.T) {
	p := newTestPool(2)
	if err := p.Allocate(1, 0); err != nil {
		t.Fatal(err)
	}
	if p.UsedPages() != 0 {
		t.Fatal("zero tokens should take zero pages")
	}
	if err := p.Extend(1, 5); err != nil {
		t.Fatal(err)
	}
	if p.UsedPages() != 1 {
		t.Fatal("extension from zero should take a page")
	}
}

// TestPageConservation is the core safety property: under any sequence of
// operations, used + free == total, per-sequence pages == ceil(tokens/P),
// and no free-page count ever goes negative.
func TestPageConservation(t *testing.T) {
	type op struct {
		Kind   uint8
		ID     uint8
		Tokens uint8
	}
	f := func(ops []op) bool {
		p := newTestPool(64)
		for _, o := range ops {
			id := SeqID(o.ID % 8)
			switch o.Kind % 3 {
			case 0:
				_ = p.Allocate(id, int(o.Tokens))
			case 1:
				_ = p.Extend(id, int(o.Tokens%24))
			case 2:
				p.Release(id)
			}
			if p.FreePages() < 0 || p.UsedPages() < 0 {
				return false
			}
			sum := 0
			for _, id := range p.IDs() {
				sum += p.PagesFor(p.Tokens(id))
			}
			if sum != p.UsedPages() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPoolValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPool(100, 1, 0) },
		func() { NewPool(100, 0, 16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid pool config should panic")
				}
			}()
			fn()
		}()
	}
}

func TestUsedBytes(t *testing.T) {
	p := NewPool(1<<20, 256, 16)              // page = 4096 bytes, 256 pages
	if err := p.Allocate(1, 20); err != nil { // 2 pages
		t.Fatal(err)
	}
	if got := p.UsedBytes(); got != 2*16*256 {
		t.Fatalf("UsedBytes = %d", got)
	}
}
