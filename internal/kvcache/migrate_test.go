package kvcache

import (
	"testing"

	"punica/internal/sim"
)

// checkInvariants asserts the pool's page/byte accounting is internally
// consistent: free+held == total, every sequence holds exactly
// PagesFor(tokens) pages, and no counter went negative.
func checkInvariants(t *testing.T, p *Pool) {
	t.Helper()
	held := 0
	for _, id := range p.IDs() {
		tokens := p.Tokens(id)
		if tokens < 0 {
			t.Fatalf("sequence %d holds negative tokens %d", id, tokens)
		}
		held += p.PagesFor(tokens)
	}
	if p.FreePages() < 0 {
		t.Fatalf("free pages went negative: %d", p.FreePages())
	}
	if p.FreePages()+held != p.TotalPages() {
		t.Fatalf("page leak: free %d + held %d != total %d",
			p.FreePages(), held, p.TotalPages())
	}
	if p.UsedPages() != held {
		t.Fatalf("used pages %d != held %d", p.UsedPages(), held)
	}
}

// applyMigrationOp drives one pseudo-random operation against a pair of
// pools standing in for a prefill source and decode destination. Exported
// handles sit in flight until imported, dropped (mid-migration crash of
// the importer), or bounced back to the source.
type migrationState struct {
	src, dst *Pool
	inFlight []Handle
	nextSeq  SeqID
}

func (m *migrationState) step(t *testing.T, op, a, b int) {
	t.Helper()
	pools := [2]*Pool{m.src, m.dst}
	p := pools[a%2]
	q := pools[(a+1)%2]
	switch op % 7 {
	case 0: // allocate a fresh sequence (prefill admission)
		m.nextSeq++
		tokens := b % (3 * p.PageSize())
		_ = p.Allocate(m.nextSeq, tokens)
	case 1: // extend a resident sequence (decode growth)
		ids := p.IDs()
		if len(ids) > 0 {
			_ = p.Extend(ids[b%len(ids)], 1+b%5)
		}
	case 2: // release (completion / cancel)
		ids := p.IDs()
		if len(ids) > 0 {
			p.Release(ids[b%len(ids)])
		}
	case 3: // export into the in-flight set (migration start)
		ids := p.IDs()
		if len(ids) > 0 {
			h, err := p.Export(ids[b%len(ids)])
			if err != nil {
				t.Fatalf("export of resident sequence failed: %v", err)
			}
			m.inFlight = append(m.inFlight, h)
		}
	case 4: // import an in-flight handle (migration landing)
		if len(m.inFlight) > 0 {
			i := b % len(m.inFlight)
			h := m.inFlight[i]
			if q.Import(h) == nil || p.Import(h) == nil {
				m.inFlight = append(m.inFlight[:i], m.inFlight[i+1:]...)
			}
		}
	case 5: // drop an in-flight handle (importer crashed mid-migration)
		if len(m.inFlight) > 0 {
			i := b % len(m.inFlight)
			m.inFlight = append(m.inFlight[:i], m.inFlight[i+1:]...)
		}
	case 6: // exporter crashes: every resident sequence on p is lost
		for _, id := range p.IDs() {
			p.Release(id)
		}
	}
}

// TestMigrationPropertyRandomSequences drives long random Export/Import
// interleavings — including mid-migration crashes of either endpoint —
// and asserts the page/byte invariants after every operation.
func TestMigrationPropertyRandomSequences(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := sim.NewRNG(seed)
		m := &migrationState{
			src: NewPool(int64(64*16*128), 128, 16),
			dst: NewPool(int64(32*8*128), 128, 8), // heterogeneous geometry
		}
		for i := 0; i < 2000; i++ {
			m.step(t, rng.Intn(1<<20), rng.Intn(1<<20), rng.Intn(1<<20))
			checkInvariants(t, m.src)
			checkInvariants(t, m.dst)
		}
	}
}

// TestExportImportRoundTrip pins the contract: export frees the source
// page-exactly, import allocates the destination page-exactly for the
// same token count, and the byte payload is tokens x bytesPerToken.
func TestExportImportRoundTrip(t *testing.T) {
	src := NewPool(64*16*128, 128, 16)
	dst := NewPool(64*16*128, 128, 16)
	if err := src.Allocate(7, 33); err != nil {
		t.Fatal(err)
	}
	freeBefore := src.FreePages()
	h, err := src.Export(7)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tokens != 33 || h.Pages != src.PagesFor(33) || h.Bytes != 33*128 {
		t.Fatalf("handle = %+v, want 33 tokens / %d pages / %d bytes",
			h, src.PagesFor(33), 33*128)
	}
	if src.FreePages() != freeBefore+h.Pages {
		t.Fatalf("export freed %d pages, want %d", src.FreePages()-freeBefore, h.Pages)
	}
	if src.Has(7) {
		t.Fatal("sequence still resident after export")
	}
	if err := dst.Import(h); err != nil {
		t.Fatal(err)
	}
	if dst.Tokens(7) != 33 || dst.UsedPages() != dst.PagesFor(33) {
		t.Fatalf("import landed %d tokens / %d pages, want 33 / %d",
			dst.Tokens(7), dst.UsedPages(), dst.PagesFor(33))
	}
	if err := dst.Import(h); err == nil {
		t.Fatal("double import succeeded")
	}
	if _, err := src.Export(99); err == nil {
		t.Fatal("export of unknown sequence succeeded")
	}
}

// TestImportOOMLeavesPoolUnchanged asserts a failed import cannot leak.
func TestImportOOMLeavesPoolUnchanged(t *testing.T) {
	src := NewPool(64*16*128, 128, 16)
	dst := NewPool(2*16*128, 128, 16) // two pages only
	if err := src.Allocate(1, 100); err != nil {
		t.Fatal(err)
	}
	h, err := src.Export(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Import(h); err == nil {
		t.Fatal("import into too-small pool succeeded")
	}
	if dst.UsedPages() != 0 || dst.Sequences() != 0 {
		t.Fatalf("failed import mutated pool: used=%d seqs=%d", dst.UsedPages(), dst.Sequences())
	}
}

// FuzzKVMigration fuzzes the same operation alphabet as the property
// test: each triple of fuzz bytes selects (op, pool, argument) and the
// page invariants must hold after every step.
func FuzzKVMigration(f *testing.F) {
	f.Add([]byte{0, 0, 0, 3, 0, 1, 4, 1, 0})
	f.Add([]byte{0, 0, 9, 1, 0, 2, 3, 0, 0, 5, 0, 0, 6, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := &migrationState{
			src: NewPool(32*16*64, 64, 16),
			dst: NewPool(16*4*64, 64, 4),
		}
		for i := 0; i+2 < len(data); i += 3 {
			m.step(t, int(data[i]), int(data[i+1]), int(data[i+2]))
			checkInvariants(t, m.src)
			checkInvariants(t, m.dst)
		}
	})
}
