package models

import (
	"math"
	"testing"
)

func TestParamCountsNearNominal(t *testing.T) {
	cases := []struct {
		cfg  Config
		want float64 // nominal parameter count
		tol  float64 // relative tolerance
	}{
		{Llama2_7B(), 6.74e9, 0.05},
		{Llama2_13B(), 13.0e9, 0.05},
		{Llama2_70B(), 69.0e9, 0.05},
	}
	for _, c := range cases {
		got := float64(c.cfg.Params())
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Errorf("%s params = %.3g, want ~%.3g", c.cfg.Name, got, c.want)
		}
	}
}

func TestKVBytesPerToken(t *testing.T) {
	// Llama-2 7B fp16 KvCache is the well-known 512 KiB per token.
	if got := Llama2_7B().KVBytesPerToken(); got != 512<<10 {
		t.Errorf("7B KV bytes/token = %d, want %d", got, 512<<10)
	}
	// 70B GQA shrinks KV by Heads/KVHeads = 8x relative to MHA.
	c70 := Llama2_70B()
	mha := 2 * int64(c70.Layers) * int64(c70.HiddenSize) * 2
	if got := c70.KVBytesPerToken(); got != mha/8 {
		t.Errorf("70B KV bytes/token = %d, want %d (GQA/8)", got, mha/8)
	}
}

func TestLoRAFractionOfBackbone(t *testing.T) {
	// §2.2: each LoRA model adds 0.1% to 1% of the model weight.
	for _, cfg := range []Config{Llama2_7B(), Llama2_13B(), Llama2_70B()} {
		frac := float64(cfg.LoRAParams(DefaultLoRARank)) / float64(cfg.Params())
		if frac < 0.001 || frac > 0.01 {
			t.Errorf("%s LoRA fraction = %.4f, want in [0.001, 0.01]", cfg.Name, frac)
		}
	}
}

func TestDimsCoverAllProjections(t *testing.T) {
	cfg := Llama2_7B()
	for _, p := range Projections {
		in, out := cfg.Dims(p)
		if in <= 0 || out <= 0 {
			t.Errorf("%v has non-positive dims %d,%d", p, in, out)
		}
	}
	// 7B is MHA: K/V project to full hidden.
	if in, out := cfg.Dims(ProjK); in != 4096 || out != 4096 {
		t.Errorf("7B k_proj dims = %d,%d", in, out)
	}
	// 70B is GQA: K/V project to KVHeads*HeadDim = 8*128 = 1024.
	if _, out := Llama2_70B().Dims(ProjV); out != 1024 {
		t.Errorf("70B v_proj out = %d, want 1024", out)
	}
	if in, out := cfg.Dims(ProjDown); in != 11008 || out != 4096 {
		t.Errorf("down_proj dims = %d,%d", in, out)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"7b", "13b", "70b", "llama-2-7b"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("gpt-5"); err == nil {
		t.Error("ByName should reject unknown models")
	}
}

func TestHeadDims(t *testing.T) {
	for _, cfg := range []Config{Llama2_7B(), Llama2_13B(), Llama2_70B()} {
		if cfg.HeadDim() != 128 {
			t.Errorf("%s head dim = %d, want 128", cfg.Name, cfg.HeadDim())
		}
	}
}

func TestLoRALayerBytesNearPCIeTarget(t *testing.T) {
	// §5.2 calibration: one 7B rank-16 LoRA layer is ~2.4 MB, the whole
	// model ~77 MB — small enough to load in ~2 ms over PCIe Gen4.
	cfg := Llama2_7B()
	layerBytes := cfg.LoRALayerParams(16) * 2
	if layerBytes < 2_000_000 || layerBytes > 3_000_000 {
		t.Errorf("7B rank-16 LoRA layer = %d bytes, want ~2.4MB", layerBytes)
	}
}

func TestProjectionString(t *testing.T) {
	if ProjGate.String() != "gate_proj" || ProjDown.String() != "down_proj" {
		t.Error("projection names wrong")
	}
}
