// Package models describes the transformer architectures the Punica
// evaluation serves: Llama-2 at 7B, 13B and 70B parameters (§7). The
// configs carry the exact published dimensions; everything downstream
// (parameter counts, KvCache bytes per token, FLOP per token) is derived
// arithmetic, which is what the latency models consume.
package models

import (
	"fmt"

	"punica/internal/hw"
)

// Config is a decoder-only transformer architecture.
type Config struct {
	Name string

	// HiddenSize is the model dimension h.
	HiddenSize int
	// Intermediate is the MLP inner dimension (SwiGLU: gate/up project
	// h → Intermediate, down projects back).
	Intermediate int
	// Layers is the number of transformer blocks L.
	Layers int
	// Heads is the number of attention query heads.
	Heads int
	// KVHeads is the number of key/value heads. Equal to Heads for
	// multi-head attention; smaller for grouped-query attention
	// (Llama-2 70B uses 8).
	KVHeads int
	// VocabSize is the embedding/output vocabulary.
	VocabSize int
	// MaxSeqLen is the maximum context length.
	MaxSeqLen int
}

// Llama2_7B returns the Llama-2 7B architecture.
func Llama2_7B() Config {
	return Config{
		Name:         "llama-2-7b",
		HiddenSize:   4096,
		Intermediate: 11008,
		Layers:       32,
		Heads:        32,
		KVHeads:      32,
		VocabSize:    32000,
		MaxSeqLen:    4096,
	}
}

// Llama2_13B returns the Llama-2 13B architecture.
func Llama2_13B() Config {
	return Config{
		Name:         "llama-2-13b",
		HiddenSize:   5120,
		Intermediate: 13824,
		Layers:       40,
		Heads:        40,
		KVHeads:      40,
		VocabSize:    32000,
		MaxSeqLen:    4096,
	}
}

// Llama2_70B returns the Llama-2 70B architecture (grouped-query
// attention with 8 KV heads).
func Llama2_70B() Config {
	return Config{
		Name:         "llama-2-70b",
		HiddenSize:   8192,
		Intermediate: 28672,
		Layers:       80,
		Heads:        64,
		KVHeads:      8,
		VocabSize:    32000,
		MaxSeqLen:    4096,
	}
}

// ByName resolves a model config from its name.
func ByName(name string) (Config, error) {
	switch name {
	case "llama-2-7b", "7b":
		return Llama2_7B(), nil
	case "llama-2-13b", "13b":
		return Llama2_13B(), nil
	case "llama-2-70b", "70b":
		return Llama2_70B(), nil
	}
	return Config{}, fmt.Errorf("models: unknown model %q", name)
}

// HeadDim returns the per-head dimension d = h / Heads.
func (c Config) HeadDim() int { return c.HiddenSize / c.Heads }

// KVDim returns the key/value projection width: KVHeads × HeadDim.
func (c Config) KVDim() int { return c.KVHeads * c.HeadDim() }

// Projection identifies one of the seven dense projections in a
// transformer block. LoRA is applied to all of them (§7: "LoRA is applied
// to all dense projections"; §6: segment indices are computed "7L times").
type Projection int

const (
	ProjQ Projection = iota
	ProjK
	ProjV
	ProjO
	ProjGate
	ProjUp
	ProjDown
)

// Projections lists all seven dense projections of a block.
var Projections = []Projection{ProjQ, ProjK, ProjV, ProjO, ProjGate, ProjUp, ProjDown}

// String names the projection.
func (p Projection) String() string {
	switch p {
	case ProjQ:
		return "q_proj"
	case ProjK:
		return "k_proj"
	case ProjV:
		return "v_proj"
	case ProjO:
		return "o_proj"
	case ProjGate:
		return "gate_proj"
	case ProjUp:
		return "up_proj"
	case ProjDown:
		return "down_proj"
	default:
		return fmt.Sprintf("Projection(%d)", int(p))
	}
}

// Dims returns the (input, output) feature dimensions of the projection.
func (c Config) Dims(p Projection) (in, out int) {
	h := c.HiddenSize
	switch p {
	case ProjQ:
		return h, h
	case ProjK, ProjV:
		return h, c.KVDim()
	case ProjO:
		return h, h
	case ProjGate, ProjUp:
		return h, c.Intermediate
	case ProjDown:
		return c.Intermediate, h
	default:
		panic("models: unknown projection")
	}
}

// LayerParams returns the dense-projection parameter count of one block.
func (c Config) LayerParams() int64 {
	var total int64
	for _, p := range Projections {
		in, out := c.Dims(p)
		total += int64(in) * int64(out)
	}
	return total
}

// Params returns the total parameter count: all blocks plus the token
// embedding and the output head.
func (c Config) Params() int64 {
	embed := int64(c.VocabSize) * int64(c.HiddenSize)
	return c.LayerParams()*int64(c.Layers) + 2*embed
}

// WeightBytes returns the fp16 footprint of the full model on one GPU.
func (c Config) WeightBytes() int64 { return c.Params() * hw.FP16Bytes }

// KVBytesPerToken returns the fp16 KvCache bytes one token appends across
// all layers: 2 (K and V) × Layers × KVDim × 2 bytes. For Llama-2 7B this
// is the well-known 512 KiB/token.
func (c Config) KVBytesPerToken() int64 {
	return 2 * int64(c.Layers) * int64(c.KVDim()) * hw.FP16Bytes
}

// LoRALayerParams returns the parameter count of one LoRA layer (A and B
// for all seven projections) at the given rank.
func (c Config) LoRALayerParams(rank int) int64 {
	var total int64
	for _, p := range Projections {
		in, out := c.Dims(p)
		total += int64(rank) * int64(in+out)
	}
	return total
}

// LoRAParams returns the parameter count of a whole LoRA model at the
// given rank. §2.2: "Each fine-tuned model only adds 0.1% to 1% of the
// model weight."
func (c Config) LoRAParams(rank int) int64 {
	return c.LoRALayerParams(rank) * int64(c.Layers)
}

// LoRABytes returns the fp16 footprint of one LoRA model.
func (c Config) LoRABytes(rank int) int64 { return c.LoRAParams(rank) * hw.FP16Bytes }

// DefaultLoRARank is the rank used throughout the evaluation ("For all
// experiments, we use 16 as the LoRA rank", §7).
const DefaultLoRARank = 16
