// Package tensor is a minimal dense float32 matrix library used to give
// the SGMV operator and its baselines real, checkable numeric semantics.
// Punica's CUDA kernels compute Y[s[i]:s[i+1]] += X[s[i]:s[i+1]] @ W[i]
// (Fig. 3); the packages built on top of this one verify that all operator
// implementations (Loop, Gather-BMM, SGMV) agree bit-for-bit on that
// contract.
//
// Only the operations the reproduction needs are implemented: row-major
// matrices, matmul with accumulate, row slicing, and elementwise helpers.
package tensor

import (
	"fmt"
	"math"

	"punica/internal/sim"
)

// Matrix is a dense row-major float32 matrix. The zero value is an empty
// matrix. Row slices share the parent's backing array, matching the
// "segments of one batch tensor" view the SGMV kernel operates on.
type Matrix struct {
	Rows, Cols int
	// Data holds Rows*Cols values in row-major order.
	Data []float32
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("tensor: ragged rows")
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Random fills a new Rows×Cols matrix with values uniform in [-scale, scale).
// LoRA evaluation uses random weights because "the weight does not affect
// latency performance" (§7); random values still exercise the numerics.
func Random(rng *sim.RNG, rows, cols int, scale float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32((rng.Float64()*2 - 1) * scale)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// RowSlice returns the sub-matrix of rows [lo, hi) sharing storage with m.
// This is the "segment" view SGMV indexes with s[i]:s[i+1].
func (m *Matrix) RowSlice(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("tensor: row slice [%d,%d) out of %d", lo, hi, m.Rows))
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatmulAcc computes dst += a @ b. Shapes must satisfy a:(m×k), b:(k×n),
// dst:(m×n). The inner loop is ordered (i,k,j) for cache-friendly row-major
// access.
func MatmulAcc(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)@(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Matmul returns a @ b as a new matrix.
func Matmul(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Cols)
	MatmulAcc(dst, a, b)
	return dst
}

// AddInPlace computes m += other elementwise.
func (m *Matrix) AddInPlace(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: add shape mismatch")
	}
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// MaxAbsDiff returns the largest elementwise |a-b|, used by tests to
// compare operator implementations.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: diff shape mismatch")
	}
	max := 0.0
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

// Equal reports whether a and b have the same shape and all elements are
// within tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}
