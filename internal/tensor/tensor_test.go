package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"punica/internal/sim"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	if m.Row(1)[2] != 7 {
		t.Fatal("Row aliasing failed")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows wrong: %+v", m)
	}
	if FromRows(nil).Rows != 0 {
		t.Fatal("empty FromRows should be 0x0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows should panic")
		}
	}()
	FromRows([][]float32{{1}, {2, 3}})
}

func TestMatmulKnownValues(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	c := Matmul(a, b)
	want := FromRows([][]float32{{19, 22}, {43, 50}})
	if !Equal(c, want, 0) {
		t.Fatalf("matmul = %v, want %v", c.Data, want.Data)
	}
}

func TestMatmulAccAccumulates(t *testing.T) {
	a := FromRows([][]float32{{1, 0}, {0, 1}})
	b := FromRows([][]float32{{2, 0}, {0, 2}})
	dst := FromRows([][]float32{{1, 1}, {1, 1}})
	MatmulAcc(dst, a, b)
	want := FromRows([][]float32{{3, 1}, {1, 3}})
	if !Equal(dst, want, 0) {
		t.Fatalf("accumulate failed: %v", dst.Data)
	}
}

func TestMatmulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	Matmul(New(2, 3), New(4, 2))
}

func TestRowSliceSharesStorage(t *testing.T) {
	m := New(4, 2)
	s := m.RowSlice(1, 3)
	s.Set(0, 0, 9)
	if m.At(1, 0) != 9 {
		t.Fatal("RowSlice must alias parent storage")
	}
	if s.Rows != 2 || s.Cols != 2 {
		t.Fatalf("bad slice shape %dx%d", s.Rows, s.Cols)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float32{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestIdentityProperty(t *testing.T) {
	// A @ I == A for random matrices.
	rng := sim.NewRNG(7)
	f := func(rs, cs uint8) bool {
		rows, cols := int(rs%8)+1, int(cs%8)+1
		a := Random(rng, rows, cols, 1)
		id := New(cols, cols)
		for i := 0; i < cols; i++ {
			id.Set(i, i, 1)
		}
		return Equal(Matmul(a, id), a, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatmulMatchesNaive(t *testing.T) {
	rng := sim.NewRNG(8)
	f := func(ms, ks, ns uint8) bool {
		m, k, n := int(ms%6)+1, int(ks%6)+1, int(ns%6)+1
		a := Random(rng, m, k, 1)
		b := Random(rng, k, n, 1)
		got := Matmul(a, b)
		want := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var sum float64
				for kk := 0; kk < k; kk++ {
					sum += float64(a.At(i, kk)) * float64(b.At(kk, j))
				}
				want.Set(i, j, float32(sum))
			}
		}
		return Equal(got, want, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributivityProperty(t *testing.T) {
	// (A+B)@C ≈ A@C + B@C within float tolerance.
	rng := sim.NewRNG(9)
	a := Random(rng, 5, 4, 1)
	b := Random(rng, 5, 4, 1)
	c := Random(rng, 4, 3, 1)
	sum := a.Clone()
	sum.AddInPlace(b)
	left := Matmul(sum, c)
	right := Matmul(a, c)
	right.AddInPlace(Matmul(b, c))
	if !Equal(left, right, 1e-4) {
		t.Fatalf("distributivity violated: max diff %g", MaxAbsDiff(left, right))
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := FromRows([][]float32{{1, 2.5}})
	if d := MaxAbsDiff(a, b); math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("MaxAbsDiff = %g, want 0.5", d)
	}
}

func TestZero(t *testing.T) {
	rng := sim.NewRNG(10)
	m := Random(rng, 3, 3, 1)
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left non-zero element")
		}
	}
}
