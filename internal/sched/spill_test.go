package sched

import (
	"testing"
	"time"
)

// fillQueue saturates a 1-GPU scheduler so every further dispatch
// queues, then returns the scheduler with nQueued requests waiting.
func fillQueue(t *testing.T, nQueued int) *Scheduler {
	t.Helper()
	gpus := testGPUs(t, 1, 2)
	s := New(gpus)
	id := int64(1)
	// Fill the GPU (batch cap 2), then overflow the queue.
	for placed := 0; placed < 2; placed++ {
		g, err := s.Dispatch(mkReq(id, 10, 5), 0)
		if err != nil || g == nil {
			t.Fatalf("warm-up dispatch %d: g=%v err=%v", id, g, err)
		}
		id++
	}
	for q := 0; q < nQueued; q++ {
		g, err := s.Dispatch(mkReq(id, 10, 5), 0)
		if err != nil {
			t.Fatal(err)
		}
		if g != nil {
			t.Fatalf("request %d placed with a full batch", id)
		}
		id++
	}
	if s.QueueLen() != nQueued {
		t.Fatalf("queue length %d, want %d", s.QueueLen(), nQueued)
	}
	return s
}

// TestStealNewestTakesTailInArrivalOrder: the steal removes the
// youngest queued requests, returns them oldest-first, and leaves the
// head of the queue (FCFS survivors) untouched.
func TestStealNewestTakesTailInArrivalOrder(t *testing.T) {
	s := fillQueue(t, 5) // queued IDs 3..7
	stolen := s.StealNewest(3)
	if len(stolen) != 3 {
		t.Fatalf("stole %d, want 3", len(stolen))
	}
	for i, want := range []int64{5, 6, 7} {
		if stolen[i].ID != want {
			t.Fatalf("stolen[%d].ID = %d, want %d (arrival order)", i, stolen[i].ID, want)
		}
	}
	if s.QueueLen() != 2 {
		t.Fatalf("queue kept %d, want 2", s.QueueLen())
	}
	if got := s.Stats().SpillsOut; got != 3 {
		t.Fatalf("SpillsOut = %d, want 3", got)
	}
	// Over-asking drains the queue but no more.
	rest := s.StealNewest(10)
	if len(rest) != 2 || rest[0].ID != 3 || rest[1].ID != 4 {
		t.Fatalf("drain steal returned %v", rest)
	}
	if s.StealNewest(1) != nil {
		t.Fatal("steal from empty queue returned requests")
	}
}

// TestAdmitSpillPlacesOrQueuesFCFS: a spilled request with capacity
// available is placed immediately; with a backlog it takes its
// arrival-ordered place in the queue, not the tail.
func TestAdmitSpillPlacesOrQueuesFCFS(t *testing.T) {
	// Capacity available: immediate placement.
	free := New(testGPUs(t, 1, 4))
	g, err := free.AdmitSpill(mkReq(42, 10, 5), 0)
	if err != nil || g == nil {
		t.Fatalf("spill into free cell: g=%v err=%v", g, err)
	}
	if free.Stats().SpillsIn != 1 {
		t.Fatalf("SpillsIn = %d, want 1", free.Stats().SpillsIn)
	}

	// Backlogged: the spilled request (old arrival, ID 0) must insert at
	// the queue head, ahead of younger queued requests.
	s := fillQueue(t, 3) // queued IDs 3..5
	old := mkReq(0, 10, 5)
	old.Arrival = 0
	g, err = s.AdmitSpill(old, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if g != nil {
		t.Fatal("spill placed despite full batch")
	}
	if s.QueueLen() != 4 {
		t.Fatalf("queue length %d, want 4", s.QueueLen())
	}
	// Steal everything: arrival order must now start with the spill.
	all := s.StealNewest(4)
	if all[0].ID != 0 {
		t.Fatalf("queue head after spill is ID %d, want 0 (FCFS by arrival)", all[0].ID)
	}
}
