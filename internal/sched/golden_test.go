package sched

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"punica/internal/core"
	"punica/internal/hw"
	"punica/internal/lora"
	"punica/internal/models"
)

// goldenFleet builds the fixed deployment the golden trace runs on: four
// GPUs with small batch caps, a KvCache pool tight enough that page math
// matters, and adapter stores holding only two rank-16 adapters so §5.2
// backpressure fires.
func goldenFleet(t *testing.T) ([]*GPU, []*core.Engine) {
	t.Helper()
	adapterBytes := models.Llama2_7B().LoRABytes(16)
	var gpus []*GPU
	var engines []*core.Engine
	for i := 0; i < 4; i++ {
		sys := core.PunicaSystem()
		sys.MaxBatch = 4
		e := core.NewEngine(core.Config{
			System:          sys,
			GPU:             hw.A100(),
			Model:           models.Llama2_7B(),
			Rank:            16,
			KVCapacityBytes: 2 << 30,
			LoRAStoreBytes:  2 * adapterBytes,
		})
		gpus = append(gpus, &GPU{UUID: fmt.Sprintf("gpu-%02d", i), Engine: e})
		engines = append(engines, e)
	}
	return gpus, engines
}

// goldenTrace drives a deterministic scripted scenario through the
// scheduler — dispatches, evictions + reschedules, consolidations,
// cancellations + queue drains — and records every placement decision.
// The script touches every scheduler entry point so the recorded log
// pins the §5.1 semantics decision-for-decision.
func goldenTrace(t *testing.T) []string {
	t.Helper()
	gpus, engines := goldenFleet(t)
	s := New(gpus)
	// Raise the light-load threshold so consolidation actually migrates
	// (at MaxBatch 4 the default threshold of 1 only drains idle GPUs).
	s.LightlyLoadedBelow = 3
	var log []string
	record := func(format string, args ...any) {
		log = append(log, fmt.Sprintf(format, args...))
	}
	place := func(g *GPU) string {
		if g == nil {
			return "queued"
		}
		return g.UUID
	}
	wsVector := func() string {
		parts := make([]string, len(engines))
		for i, e := range engines {
			parts[i] = fmt.Sprint(e.WorkingSet())
		}
		return strings.Join(parts, ",")
	}
	busiest := func() int {
		best := 0
		for i, e := range engines {
			if e.WorkingSet() > engines[best].WorkingSet() {
				best = i
			}
		}
		return best
	}

	for id := int64(1); id <= 48; id++ {
		now := time.Duration(id) * time.Millisecond
		r := &core.Request{
			ID:        id,
			Model:     lora.ModelID(id % 4),
			PromptLen: 64 + int(id*37)%512,
			OutputLen: 16 + int(id*13)%96,
			Arrival:   now,
		}
		g, err := s.Dispatch(r, now)
		if err != nil {
			t.Fatalf("dispatch %d: %v", id, err)
		}
		record("dispatch r%d(m%d) -> %s", id, r.Model, place(g))

		if id%5 == 0 {
			src := busiest()
			if victim := engines[src].EvictNewest(now); victim != nil {
				g, err := s.Reschedule(victim, gpus[src], now)
				if err != nil {
					t.Fatalf("reschedule %d: %v", victim.ID, err)
				}
				record("evict r%d from %s, reschedule -> %s", victim.ID, gpus[src].UUID, place(g))
			}
		}
		if id%7 == 0 {
			moved := s.Consolidate(now)
			record("consolidate moved=%d ws=[%s]", moved, wsVector())
		}
		if id%9 == 0 {
			cancelID := id / 2
			for i, e := range engines {
				if e.Cancel(cancelID, now) != nil {
					record("cancel r%d on %s", cancelID, gpus[i].UUID)
					break
				}
			}
			placed, err := s.DrainQueue(now)
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
			for _, p := range placed {
				record("drain r%d -> %s", p.Request.ID, p.GPU.UUID)
			}
		}
	}

	// Tail: free capacity step by step and watch the FCFS queue drain.
	now := 60 * time.Millisecond
	for round := 0; round < 8 && s.QueueLen() > 0; round++ {
		now += time.Millisecond
		src := busiest()
		if victim := engines[src].EvictNewest(now); victim != nil {
			record("tail-evict r%d from %s", victim.ID, gpus[src].UUID)
		}
		placed, err := s.DrainQueue(now)
		if err != nil {
			t.Fatalf("tail drain: %v", err)
		}
		for _, p := range placed {
			record("drain r%d -> %s", p.Request.ID, p.GPU.UUID)
		}
		record("tail round=%d queue=%d ws=[%s]", round, s.QueueLen(), wsVector())
	}

	st := s.Stats()
	record("stats dispatched=%d queued=%d migrations=%d stalls=%d queue=%d ws=[%s]",
		st.Dispatched, st.Queued, st.Migrations, st.AdapterStalls, s.QueueLen(), wsVector())
	return log
}

// TestPaperPolicyGoldenTrace asserts that the default policy reproduces
// the pre-refactor scheduler's placements, migrations and stall counts
// exactly. The golden file was recorded from the hard-coded §5.1
// scheduler before the policy framework existed; regenerate only when a
// deliberate semantic change is intended: UPDATE_SCHED_GOLDEN=1 go test.
func TestPaperPolicyGoldenTrace(t *testing.T) {
	got := strings.Join(goldenTrace(t), "\n") + "\n"
	golden := filepath.Join("testdata", "paper_policy_golden.txt")
	if os.Getenv("UPDATE_SCHED_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_SCHED_GOLDEN=1 to record): %v", err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("golden divergence at line %d:\n  got:  %s\n  want: %s",
					i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("golden length mismatch: got %d lines, want %d", len(gotLines), len(wantLines))
	}
}
