package sched

import (
	"testing"
	"time"

	"punica/internal/core"
	"punica/internal/lora"
	"punica/internal/models"
)

// fakeWorker serves a canned snapshot, so ranking can be tested against
// exact store/rank states without driving a real engine into them.
type fakeWorker struct{ snap core.Snapshot }

func (f *fakeWorker) Snapshot() core.Snapshot                    { return f.snap }
func (f *fakeWorker) Enqueue(*core.Request, time.Duration) error { return nil }
func (f *fakeWorker) Cancel(int64, time.Duration) *core.Request  { return nil }
func (f *fakeWorker) EvictNewest(time.Duration) *core.Request    { return nil }

// fakeCand builds a candidate with the given load and adapter state.
func fakeCand(uuid string, ws int, adapters ...lora.AdapterState) Candidate {
	snap := core.Snapshot{
		WorkingSet:   ws,
		MaxBatch:     32,
		FreeKVPages:  1 << 20,
		TotalKVPages: 1 << 20,
		PageSize:     16,
		PagedKV:      true,
		Adapters:     adapters,
	}
	for _, a := range adapters {
		snap.StoreUsedBytes += a.Bytes
		if a.Pinned {
			snap.StorePinnedBytes += a.Bytes
		}
	}
	return Candidate{
		GPU:  &GPU{UUID: uuid, Engine: &fakeWorker{snap: snap}},
		Snap: &snap,
	}
}

func uuids(cands []Candidate) []string {
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.GPU.UUID
	}
	return out
}

func affinityForTest() *AdapterAffinity {
	p, err := PolicyByName(PolicyAdapterAffinity, PolicyConfig{
		Base:        models.Llama2_7B(),
		DefaultRank: 16,
	})
	if err != nil {
		panic(err)
	}
	return p.(*AdapterAffinity)
}

func TestPolicyAffinityPrefersWarmGPU(t *testing.T) {
	bytes := models.Llama2_7B().LoRABytes(16)
	warm := fakeCand("gpu-00", 2, lora.AdapterState{ID: 7, Rank: 16, Bytes: bytes})
	cold := fakeCand("gpu-01", 5)
	// Plenty of store room on both.
	warm.Snap.StoreCapacityBytes = 8 * bytes
	cold.Snap.StoreCapacityBytes = 8 * bytes

	cands := []Candidate{cold, warm}
	r := &core.Request{ID: 1, Model: 7, PromptLen: 10, OutputLen: 5}
	affinityForTest().RankPlacement(r, cands)
	if got := uuids(cands); got[0] != "gpu-00" {
		t.Fatalf("affinity ranked %v; want warm gpu-00 first despite smaller working set", got)
	}
	// The paper policy would prefer the busier cold GPU.
	cands = []Candidate{cold, warm}
	PaperPolicy{}.RankPlacement(r, cands)
	if got := uuids(cands); got[0] != "gpu-01" {
		t.Fatalf("paper ranked %v; want busiest gpu-01 first", got)
	}
}

func TestPolicyAffinityRanksStallingStoreLast(t *testing.T) {
	bytes := models.Llama2_7B().LoRABytes(16)
	// Busiest GPU's store is pinned full with other adapters: placing
	// here would hit §5.2 backpressure and stall the request.
	full := fakeCand("gpu-02", 9,
		lora.AdapterState{ID: 1, Rank: 16, Bytes: bytes, Pinned: true},
		lora.AdapterState{ID: 2, Rank: 16, Bytes: bytes, Pinned: true})
	full.Snap.StoreCapacityBytes = 2 * bytes
	// A colder GPU with free room costs one PCIe transfer.
	room := fakeCand("gpu-01", 3)
	room.Snap.StoreCapacityBytes = 2 * bytes
	// A GPU that must evict a warm (unpinned) adapter costs two.
	evict := fakeCand("gpu-00", 6,
		lora.AdapterState{ID: 3, Rank: 16, Bytes: bytes},
		lora.AdapterState{ID: 4, Rank: 16, Bytes: bytes})
	evict.Snap.StoreCapacityBytes = 2 * bytes

	cands := []Candidate{full, room, evict}
	r := &core.Request{ID: 1, Model: 9, PromptLen: 10, OutputLen: 5}
	affinityForTest().RankPlacement(r, cands)
	want := []string{"gpu-01", "gpu-00", "gpu-02"}
	got := uuids(cands)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("affinity order %v, want %v (free room, then evict, then stall)", got, want)
		}
	}
}

func TestPolicyAffinityTieFallsBackToPaperOrder(t *testing.T) {
	bytes := models.Llama2_7B().LoRABytes(16)
	a := fakeCand("gpu-00", 4)
	b := fakeCand("gpu-01", 4)
	c := fakeCand("gpu-02", 6)
	for _, cand := range []Candidate{a, b, c} {
		cand.Snap.StoreCapacityBytes = 8 * bytes
	}
	cands := []Candidate{a, b, c}
	r := &core.Request{ID: 1, Model: 5, PromptLen: 10, OutputLen: 5}
	affinityForTest().RankPlacement(r, cands)
	want := []string{"gpu-02", "gpu-01", "gpu-00"}
	for i, u := range uuids(cands) {
		if u != want[i] {
			t.Fatalf("all-cold tie order %v, want paper order %v", uuids(cands), want)
		}
	}
}

func TestPolicyRankAwareGroupsSameRank(t *testing.T) {
	ranks := map[lora.ModelID]int{1: 8, 2: 64, 9: 8}
	p := &RankAware{RankOf: func(id lora.ModelID) int { return ranks[id] }}

	low := fakeCand("gpu-00", 2, lora.AdapterState{ID: 1, Rank: 8, Pinned: true})
	high := fakeCand("gpu-01", 5, lora.AdapterState{ID: 2, Rank: 64, Pinned: true})
	r := &core.Request{ID: 1, Model: 9, PromptLen: 10, OutputLen: 5} // rank 8

	cands := []Candidate{high, low}
	p.RankPlacement(r, cands)
	if got := uuids(cands); got[0] != "gpu-00" {
		t.Fatalf("rank-aware ranked %v; want same-rank gpu-00 first (batching rank 8 with "+
			"rank 64 pads every token to rank 64)", got)
	}
	if dst := p.PickTarget(r, []Candidate{high, low}); dst.UUID != "gpu-00" {
		t.Fatalf("rank-aware target %s, want same-rank gpu-00", dst.UUID)
	}
}

func TestPolicyRankAwareUniformRanksDegradeToPaper(t *testing.T) {
	p := &RankAware{RankOf: func(lora.ModelID) int { return 16 }}
	a := fakeCand("gpu-00", 2, lora.AdapterState{ID: 1, Rank: 16, Pinned: true})
	b := fakeCand("gpu-01", 5, lora.AdapterState{ID: 2, Rank: 16, Pinned: true})
	r := &core.Request{ID: 1, Model: 3, PromptLen: 10, OutputLen: 5}

	cands := []Candidate{a, b}
	p.RankPlacement(r, cands)
	if got := uuids(cands); got[0] != "gpu-01" {
		t.Fatalf("uniform ranks ranked %v; want the paper's busiest-first order", got)
	}
}

func TestPolicyByNameUnknown(t *testing.T) {
	if _, err := PolicyByName("bogus", PolicyConfig{}); err == nil {
		t.Fatal("unknown policy name must error")
	}
	for _, name := range append([]string{""}, PolicyNames...) {
		p, err := PolicyByName(name, PolicyConfig{Base: models.Llama2_7B(), DefaultRank: 16})
		if err != nil || p == nil {
			t.Fatalf("policy %q: %v", name, err)
		}
	}
}

// TestPolicyHeterogeneousFleetThresholds pins the mixed-capacity fix:
// light-load classification derives from each GPU's own batch cap, not
// gpus[0]'s. A big GPU at a quarter of its capacity is lightly loaded
// even when a small first GPU would call the same working set heavy.
func TestPolicyHeterogeneousFleetThresholds(t *testing.T) {
	small := testGPUs(t, 1, 8)[0] // threshold 8/4 = 2
	big := testGPUs(t, 1, 32)[0]  // threshold 32/4 = 8
	big.UUID = "gpu-big"
	s := New([]*GPU{small, big})

	// small at 3 (≥ its threshold 2, heavy), big at 4 (< 8, light).
	for i := int64(0); i < 3; i++ {
		if err := small.Engine.Enqueue(mkReq(100+i, 10, 5), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 4; i++ {
		if err := big.Engine.Enqueue(mkReq(200+i, 10, 5), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-refactor, the fleet threshold came from gpus[0].MaxBatch()/4 =
	// 2, misclassifying the quarter-loaded big GPU as heavy and asking
	// the cloud for more GPUs while capacity sat idle.
	if s.NeedMoreGPUs() {
		t.Fatal("big GPU is at 4/32 — the fleet has a lightly-loaded GPU")
	}
	// The fleet-wide override still wins when set.
	s.LightlyLoadedBelow = 3
	if !s.NeedMoreGPUs() {
		t.Fatal("with override 3, both GPUs (3 and 4) are at/above the threshold")
	}
}
