package sched

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"punica/internal/core"
	"punica/internal/hw"
	"punica/internal/lora"
	"punica/internal/models"
)

// disaggFleet builds a two-pool deployment: nPrefill prefill engines
// followed by nDecode decode engines, on the golden fleet's tight
// geometry.
func disaggFleet(t *testing.T, nPrefill, nDecode int) ([]*GPU, []*core.Engine) {
	t.Helper()
	adapterBytes := models.Llama2_7B().LoRABytes(16)
	var gpus []*GPU
	var engines []*core.Engine
	for i := 0; i < nPrefill+nDecode; i++ {
		role := core.RolePrefill
		if i >= nPrefill {
			role = core.RoleDecode
		}
		sys := core.PunicaSystem()
		sys.MaxBatch = 4
		e := core.NewEngine(core.Config{
			System:          sys,
			GPU:             hw.A100(),
			Model:           models.Llama2_7B(),
			Rank:            16,
			Role:            role,
			KVCapacityBytes: 2 << 30,
			LoRAStoreBytes:  4 * adapterBytes,
		})
		gpus = append(gpus, &GPU{UUID: fmt.Sprintf("gpu-%02d", i), Engine: e, Role: role})
		engines = append(engines, e)
	}
	return gpus, engines
}

// stepPrefill drives engine e until request id is migratable.
func stepPrefill(t *testing.T, e *core.Engine, id int64, now time.Duration) time.Duration {
	t.Helper()
	for i := 0; i < 1000; i++ {
		for _, m := range e.Migratable() {
			if m == id {
				return now
			}
		}
		res := e.Step(now)
		if res.Idle {
			at, ok := e.EarliestPendingReady()
			if !ok {
				t.Fatal("prefill engine idle with no wake-up")
			}
			now = at
			continue
		}
		now = res.EndsAt
	}
	t.Fatalf("request %d never prefilled", id)
	return 0
}

// TestDispatchAvoidsDecodePool asserts the §5.1 dispatch path never
// places raw requests on decode GPUs, even when they are the emptiest.
func TestDispatchAvoidsDecodePool(t *testing.T) {
	gpus, engines := disaggFleet(t, 1, 3)
	s := New(gpus)
	for id := int64(1); id <= 4; id++ {
		r := mkReq(id, 64, 8)
		g, err := s.Dispatch(r, time.Duration(id)*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if g == nil {
			t.Fatalf("request %d queued with a free prefill GPU", id)
		}
		if g.Role != core.RolePrefill {
			t.Fatalf("request %d landed on %s (%v)", id, g.UUID, g.Role)
		}
	}
	if ws := engines[0].WorkingSet(); ws != 4 {
		t.Fatalf("prefill GPU working set = %d, want 4", ws)
	}
	if !s.HasDecodePool() {
		t.Fatal("HasDecodePool false on a disaggregated fleet")
	}
	if len(s.PoolGPUs(core.RoleDecode)) != 3 || len(s.PoolGPUs(core.RolePrefill)) != 1 {
		t.Fatal("PoolGPUs miscounts the pools")
	}
}

// TestMigrateToDecodeMovesKV drives a full handoff through the router:
// prefill on the prefill pool, migration to a decode GPU, decode
// completion there — with exact pin/page accounting at every hop.
func TestMigrateToDecodeMovesKV(t *testing.T) {
	gpus, engines := disaggFleet(t, 1, 2)
	s := New(gpus)
	r := mkReq(1, 200, 12)
	r.Model = lora.ModelID(7)
	g, err := s.Dispatch(r, 0)
	if err != nil || g != gpus[0] {
		t.Fatalf("dispatch = %v, %v", g, err)
	}
	now := stepPrefill(t, engines[0], 1, 0)

	dsts, err := s.MigratePrefilled(gpus[0], now)
	if err != nil {
		t.Fatal(err)
	}
	if len(dsts) != 1 || dsts[0].Role != core.RoleDecode {
		t.Fatalf("migration destinations = %v", dsts)
	}
	if engines[0].KV().UsedPages() != 0 || engines[0].Store().PinnedBytes() != 0 {
		t.Fatal("source leaked after migration")
	}
	st := s.Stats()
	if st.KVMigrations != 1 || st.KVMigratedBytes == 0 {
		t.Fatalf("stats = %+v, want one sized migration", st)
	}

	// Finish decode on the destination.
	dst := dsts[0]
	var de *core.Engine
	for i, g := range gpus {
		if g == dst {
			de = engines[i]
		}
	}
	for de.Busy() {
		res := de.Step(now)
		if res.Idle {
			at, ok := de.EarliestPendingReady()
			if !ok {
				t.Fatal("decode engine stuck")
			}
			now = at
			continue
		}
		if res.PrefillTokens != 0 {
			t.Fatal("decode GPU recomputed prefill after KV migration")
		}
		now = res.EndsAt
	}
	if !r.Finished() {
		t.Fatalf("request did not finish (generated %d/%d)", r.Generated, r.OutputLen)
	}
	if de.KV().UsedPages() != 0 || de.Store().PinnedBytes() != 0 {
		t.Fatal("destination leaked after completion")
	}
}

// TestMigrateSkipsSaturatedDecodePool pins the slack pre-check: with
// every decode batch slot taken, MigratePrefilled performs no export at
// all — no per-boundary export/re-import churn, no phantom stats.
func TestMigrateSkipsSaturatedDecodePool(t *testing.T) {
	gpus, engines := disaggFleet(t, 1, 1)
	s := New(gpus)
	// Fill the decode GPU's batch slots via direct imports.
	decode := engines[1]
	_, feederEng := disaggFleet(t, 1, 0)
	now := time.Duration(0)
	for id := int64(10); id < 14; id++ {
		r := mkReq(id, 64, 64)
		if err := feederEng[0].Enqueue(r, now); err != nil {
			t.Fatal(err)
		}
		now = stepPrefill(t, feederEng[0], id, now)
		h, err := feederEng[0].ExportKV(id, now)
		if err != nil {
			t.Fatal(err)
		}
		if err := decode.ImportKV(h, now); err != nil {
			t.Fatal(err)
		}
	}

	r := mkReq(1, 100, 12)
	if _, err := s.Dispatch(r, now); err != nil {
		t.Fatal(err)
	}
	now = stepPrefill(t, engines[0], 1, now)
	dsts, err := s.MigratePrefilled(gpus[0], now)
	if err != nil {
		t.Fatal(err)
	}
	if len(dsts) != 0 {
		t.Fatalf("migration landed on a full decode pool: %v", dsts)
	}
	if st := engines[0].Stats(); st.KVExports != 0 {
		t.Fatalf("saturated pool still caused %d exports", st.KVExports)
	}
	if s.Stats().KVMigrationFallbacks != 0 {
		t.Fatalf("fallbacks = %d, want 0 (skipped before export)", s.Stats().KVMigrationFallbacks)
	}
	finishOnSource(t, engines[0], r, now)
}

// TestMigrateFallsBackToSource pins the true bounce: the decode pool
// has batch slack but no KvCache room, so the export happens, no import
// lands, and the handle bounces back to the source with zero transfer
// bytes — the request keeps decoding there without a phantom link
// charge between its tokens.
func TestMigrateFallsBackToSource(t *testing.T) {
	adapterBytes := models.Llama2_7B().LoRABytes(16)
	sys := core.PunicaSystem()
	sys.MaxBatch = 4
	mk := func(role core.Role, kvBytes int64) *core.Engine {
		return core.NewEngine(core.Config{
			System:          sys,
			GPU:             hw.A100(),
			Model:           models.Llama2_7B(),
			Rank:            16,
			Role:            role,
			KVCapacityBytes: kvBytes,
			LoRAStoreBytes:  4 * adapterBytes,
		})
	}
	prefill := mk(core.RolePrefill, 2<<30)
	// Decode pool: batch slots free, but a KvCache pool too small for
	// any real context.
	decode := mk(core.RoleDecode, 1<<18)
	gpus := []*GPU{
		{UUID: "gpu-00", Engine: prefill, Role: core.RolePrefill},
		{UUID: "gpu-01", Engine: decode, Role: core.RoleDecode},
	}
	s := New(gpus)

	r := mkReq(1, 100, 12)
	if _, err := s.Dispatch(r, 0); err != nil {
		t.Fatal(err)
	}
	now := stepPrefill(t, prefill, 1, 0)
	dsts, err := s.MigratePrefilled(gpus[0], now)
	if err != nil {
		t.Fatal(err)
	}
	if len(dsts) != 0 {
		t.Fatalf("migration landed despite no decode KV room: %v", dsts)
	}
	if s.Stats().KVMigrationFallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", s.Stats().KVMigrationFallbacks)
	}
	if moved := prefill.Stats().KVMovedBytes; moved != 0 {
		t.Fatalf("bounce charged %d transfer bytes for KV that never left the GPU", moved)
	}
	// The bounced request is immediately steppable: no link-transfer
	// gate was inserted (only the link's fixed latency, well under a
	// step).
	finishOnSource(t, prefill, r, now)
}

// finishOnSource drives the source engine to completion and asserts the
// request finished there with exact page/pin accounting.
func finishOnSource(t *testing.T, e *core.Engine, r *core.Request, now time.Duration) {
	t.Helper()
	if !e.Busy() {
		t.Fatal("request lost on the source")
	}
	for e.Busy() {
		res := e.Step(now)
		if res.Idle {
			at, ok := e.EarliestPendingReady()
			if !ok {
				t.Fatal("source stuck")
			}
			now = at
			continue
		}
		now = res.EndsAt
	}
	if !r.Finished() {
		t.Fatal("request did not finish on the source")
	}
	if e.KV().UsedPages() != 0 || e.Store().PinnedBytes() != 0 {
		t.Fatal("source leaked after decoding in place")
	}
}

// TestDispatchPrefetchesDecodeAdapter asserts the CaraServe-style
// overlap: placing a request on the prefill pool warms its adapter on
// the policy's intended decode target, unpinned.
func TestDispatchPrefetchesDecodeAdapter(t *testing.T) {
	gpus, engines := disaggFleet(t, 1, 2)
	s := New(gpus)
	r := mkReq(1, 128, 8)
	r.Model = lora.ModelID(3)
	if _, err := s.Dispatch(r, 0); err != nil {
		t.Fatal(err)
	}
	if s.Stats().AdapterPrefetches != 1 {
		t.Fatalf("prefetches = %d, want 1", s.Stats().AdapterPrefetches)
	}
	warm := 0
	for _, e := range engines[1:] {
		if e.Store().Resident(lora.ModelID(3)) {
			warm++
			if e.Store().PinnedBytes() != 0 {
				t.Fatal("prefetch pinned the adapter")
			}
		}
	}
	if warm != 1 {
		t.Fatalf("adapter warm on %d decode GPUs, want exactly 1", warm)
	}
	// Unified fleets must not prefetch (golden-trace guard).
	ugpus, _ := goldenFleet(t)
	us := New(ugpus)
	if _, err := us.Dispatch(mkReq(2, 128, 8), 0); err != nil {
		t.Fatal(err)
	}
	if us.Stats().AdapterPrefetches != 0 {
		t.Fatal("unified fleet prefetched")
	}
}

// TestRequeueAfterDecodeCrashUsesPrefillPool asserts the fault path: a
// crashed decode GPU's requests re-enter through the prefill pool's
// recompute path, never onto another decode GPU.
func TestRequeueAfterDecodeCrashUsesPrefillPool(t *testing.T) {
	gpus, engines := disaggFleet(t, 1, 2)
	s := New(gpus)
	r := mkReq(1, 150, 24)
	if _, err := s.Dispatch(r, 0); err != nil {
		t.Fatal(err)
	}
	now := stepPrefill(t, engines[0], 1, 0)
	dsts, err := s.MigratePrefilled(gpus[0], now)
	if err != nil || len(dsts) != 1 {
		t.Fatalf("migration = %v, %v", dsts, err)
	}
	_, lost, lostKV, ok := s.FailGPU(dsts[0].UUID, now)
	if !ok || len(lost) != 1 || lostKV == 0 {
		t.Fatalf("FailGPU salvaged %v (kv=%d, ok=%v)", lost, lostKV, ok)
	}
	g, err := s.Requeue(lost[0], now)
	if err != nil {
		t.Fatal(err)
	}
	if g == nil || g.Role != core.RolePrefill {
		t.Fatalf("recovered request placed on %v, want the prefill pool", g)
	}
}

// TestConsolidateGoldenTraceWithExplicitUnifiedRoles is the refactor
// guard: the same consolidation script, run through a scheduler whose
// GPUs carry explicit RoleUnified tags (the disaggregation machinery
// present but off), must reproduce the pre-refactor golden trace
// byte-identically.
func TestConsolidateGoldenTraceWithExplicitUnifiedRoles(t *testing.T) {
	got := strings.Join(consolidateTraceWithRoles(t), "\n") + "\n"
	want, err := os.ReadFile(filepath.Join("testdata", "consolidate_golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("unified-role divergence from pre-refactor golden at line %d:\n  got:  %s\n  want: %s",
					i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("golden length mismatch: got %d lines, want %d", len(gotLines), len(wantLines))
	}
}
