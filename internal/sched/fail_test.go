package sched

import (
	"testing"
	"time"

	"punica/internal/core"
)

// TestFailGPUForcedRemoval: RemoveGPU refuses a busy GPU (§5.1 planned
// drain), FailGPU does not — it force-removes and salvages the live
// working set through the Crasher extension.
func TestFailGPUForcedRemoval(t *testing.T) {
	gpus := testGPUs(t, 2, 8)
	s := New(gpus)
	for i := int64(1); i <= 3; i++ {
		if _, err := s.Dispatch(mkReq(i, 10, 5), 0); err != nil {
			t.Fatal(err)
		}
	}
	// §5.1 routing put all three on the highest-UUID GPU.
	busy := gpus[1]
	if busy.Engine.Snapshot().WorkingSet != 3 {
		t.Fatalf("setup: expected all requests on %s", busy.UUID)
	}
	if _, ok := s.RemoveGPU(busy.UUID); ok {
		t.Fatal("RemoveGPU must refuse a busy GPU")
	}
	g, lost, lostKV, ok := s.FailGPU(busy.UUID, time.Millisecond)
	if !ok || g != busy {
		t.Fatalf("FailGPU returned (%v, ok=%v)", g, ok)
	}
	if len(lost) != 3 {
		t.Fatalf("salvaged %d requests, want 3", len(lost))
	}
	if lostKV < 0 {
		t.Fatalf("lostKVTokens = %d", lostKV)
	}
	for i := 1; i < len(lost); i++ {
		if lost[i-1].Arrival > lost[i].Arrival {
			t.Fatal("salvaged working set not in arrival order")
		}
	}
	if len(s.GPUs()) != 1 {
		t.Fatalf("%d GPUs remain, want 1", len(s.GPUs()))
	}
	if s.Stats().GPUFailures != 1 {
		t.Fatalf("GPUFailures = %d", s.Stats().GPUFailures)
	}
	// The engine is empty and its pins are released.
	eng := busy.Engine.(*core.Engine)
	if eng.Busy() || eng.Store().PinnedBytes() != 0 {
		t.Fatal("failed GPU still holds work or pinned adapter bytes")
	}
	if _, _, _, ok := s.FailGPU("no-such-gpu", 0); ok {
		t.Fatal("FailGPU of unknown UUID must report not found")
	}
}

// TestRequeuePreservesFCFS: recovered requests merge into the wait queue
// in arrival order and do not overtake queued work; with capacity free
// and an empty queue they place immediately.
func TestRequeuePreservesFCFS(t *testing.T) {
	gpus := testGPUs(t, 1, 2)
	s := New(gpus)
	// Fill the only GPU and queue two more.
	for i := int64(1); i <= 4; i++ {
		if _, err := s.Dispatch(mkReq(i, 10, 5), 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.QueueLen() != 2 {
		t.Fatalf("queue = %d, want 2", s.QueueLen())
	}
	// A recovered request older than the queued ones must land at the
	// queue head, not behind them.
	old := mkReq(0, 10, 5) // Arrival 0: older than everything queued
	g, err := s.Requeue(old, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g != nil {
		t.Fatal("no capacity exists; requeue must queue, not place")
	}
	if s.QueueLen() != 3 {
		t.Fatalf("queue = %d, want 3", s.QueueLen())
	}
	if s.Stats().Recovered != 1 {
		t.Fatalf("Recovered = %d", s.Stats().Recovered)
	}
	// Free the GPU entirely; the drain must deliver the recovered
	// request first.
	eng := gpus[0].Engine.(*core.Engine)
	eng.Crash(0)
	placed, err := s.DrainQueue(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) == 0 || placed[0].Request.ID != 0 {
		t.Fatalf("drain order wrong: %+v", placed)
	}

	// Immediate placement when idle capacity exists and the queue is
	// empty.
	s2 := New(testGPUs(t, 1, 4))
	g2, err := s2.Requeue(mkReq(9, 10, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g2 == nil {
		t.Fatal("requeue with free capacity must place immediately")
	}
}
