// Serve-layer admission control: bounded admission queues with a
// load-shedding policy, so an open-loop arrival process (the traffic
// engine at 4x capacity, a flash crowd, a retry storm) cannot grow the
// FCFS queue without bound and take the frontend down with it.
//
// Two caps apply at Dispatch time, both off by default so every legacy
// code path — golden traces, bench gates, the FCFS zero-alloc contract —
// is byte-identical with admission disabled:
//
//   - MaxQueue bounds the whole admission queue. An arrival that would
//     exceed it is rejected (ShedReject → the serve layer answers HTTP
//     429 with a Retry-After derived from the measured drain rate) or
//     admitted by shedding the lowest-priority queued request
//     (ShedBestEffort).
//   - MaxPerTenant bounds one tenant's queued requests, so a single
//     whale cannot own the whole bounded queue. Over-cap tenants are
//     always rejected, never traded against other tenants' work.
//
// "Lowest priority" under ShedBestEffort is VTC priority when the
// fairness layer is on: the active tenant with the highest virtual
// token counter (the most-served tenant) loses its newest queued
// request first. With fairness off there are no counters, so the proxy
// is the tenant with the most queued requests (ties to the higher id),
// again shedding its newest request — both rules are deterministic and
// FCFS-preserving for everything that stays.
//
// Recovery paths (Requeue after a GPU failure, Reschedule after an
// eviction, AdmitSpill at a cell barrier) bypass the caps: work the
// fleet already accepted is never dropped by admission control, so the
// queue may transiently exceed MaxQueue during fault recovery.
package sched

import (
	"errors"
	"time"

	"punica/internal/core"
)

// ShedPolicy selects what happens to an arrival that would overflow a
// full admission queue.
type ShedPolicy int

const (
	// ShedReject refuses the new arrival (HTTP 429 at the serve layer).
	ShedReject ShedPolicy = iota
	// ShedBestEffort admits the new arrival by dropping the lowest
	// VTC-priority queued request instead (best-effort tenants lose
	// work first); the arrival is still rejected when it is itself the
	// lowest-priority request.
	ShedBestEffort
)

// String returns the CLI name of the policy.
func (p ShedPolicy) String() string {
	if p == ShedBestEffort {
		return "shed-best-effort"
	}
	return "reject"
}

// ParseShedPolicy maps a config string to a ShedPolicy ("" and
// "reject" → ShedReject, "shed-best-effort" → ShedBestEffort).
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "", "reject":
		return ShedReject, nil
	case "shed-best-effort":
		return ShedBestEffort, nil
	}
	return ShedReject, errors.New("sched: unknown shed policy " + s + " (want reject or shed-best-effort)")
}

// AdmissionConfig bounds the scheduler's admission queue. The zero
// value disables admission control entirely.
type AdmissionConfig struct {
	// MaxQueue caps the total queued requests (0 = unbounded).
	MaxQueue int
	// MaxPerTenant caps one tenant's queued requests (0 = unbounded).
	MaxPerTenant int
	// Policy selects rejection vs best-effort shedding at MaxQueue.
	Policy ShedPolicy
}

// Enabled reports whether any cap is active.
func (c AdmissionConfig) Enabled() bool { return c.MaxQueue > 0 || c.MaxPerTenant > 0 }

// Backpressure sentinels: the serve layer maps both onto HTTP 429 with
// a Retry-After header inside the unified backpressure envelope.
var (
	// ErrQueueFull rejects an arrival because the admission queue is at
	// MaxQueue (and the shed policy found nothing lower-priority to
	// drop).
	ErrQueueFull = errors.New("sched: admission queue full")
	// ErrTenantQueueFull rejects an arrival because its tenant already
	// has MaxPerTenant requests queued.
	ErrTenantQueueFull = errors.New("sched: tenant admission queue full")
)

// AdmissionStats counts overload-protection outcomes.
type AdmissionStats struct {
	// Rejected counts arrivals refused at the MaxQueue cap.
	Rejected int64
	// TenantRejected counts arrivals refused at the MaxPerTenant cap.
	TenantRejected int64
	// Shed counts queued requests dropped by ShedBestEffort to admit a
	// higher-priority arrival.
	Shed int64
}

// SetAdmission installs (or, with the zero config, removes) the
// admission caps. Safe to call at any time; an over-cap queue is not
// trimmed retroactively — the caps gate new arrivals only.
func (s *Scheduler) SetAdmission(cfg AdmissionConfig) { s.admission = cfg }

// Admission returns the active admission config.
func (s *Scheduler) Admission() AdmissionConfig { return s.admission }

// AdmissionStats returns the overload-protection counters.
func (s *Scheduler) AdmissionStats() AdmissionStats { return s.admStats }

// queuedOfTenant counts tenant's queued requests. The scan is bounded
// by MaxQueue whenever the cap that needs it is active.
func (s *Scheduler) queuedOfTenant(tenant int64) int {
	if s.fair != nil {
		if tq := s.fair.byTenant[tenant]; tq != nil {
			return len(tq.reqs)
		}
		return 0
	}
	n := 0
	for _, q := range s.queue {
		if q.Tenant == tenant {
			n++
		}
	}
	return n
}

// admitQueued gates r's entry onto the admission queue, shedding a
// lower-priority victim when the policy allows. It returns nil when r
// may queue and a backpressure sentinel when it may not. Callers hold
// the scheduler (it runs inside Dispatch).
func (s *Scheduler) admitQueued(r *core.Request) error {
	if !s.admission.Enabled() {
		return nil
	}
	if s.admission.MaxPerTenant > 0 && s.queuedOfTenant(r.Tenant) >= s.admission.MaxPerTenant {
		s.admStats.TenantRejected++
		return ErrTenantQueueFull
	}
	if s.admission.MaxQueue <= 0 || s.queuedLen() < s.admission.MaxQueue {
		return nil
	}
	if s.admission.Policy != ShedBestEffort {
		s.admStats.Rejected++
		return ErrQueueFull
	}
	victim := s.shedVictim(r)
	if victim == nil {
		// r itself is the lowest-priority request: shedding another
		// tenant's work to admit it would invert the priority order.
		s.admStats.Rejected++
		return ErrQueueFull
	}
	s.removeQueued(victim)
	s.admStats.Shed++
	if s.OnShed != nil {
		s.OnShed(victim)
	}
	return nil
}

// shedVictim picks the queued request ShedBestEffort drops to make room
// for r, or nil when r's own tenant is the lowest-priority one (then r
// is rejected instead). The victim is always its tenant's newest queued
// request, so per-tenant FCFS order is preserved for what remains.
func (s *Scheduler) shedVictim(r *core.Request) *core.Request {
	if s.fair != nil {
		// VTC priority: the active tenant with the highest virtual token
		// counter has been served the most and sheds first. Ties break to
		// the higher tenant id — the same determinism rule as the heap,
		// inverted.
		var worst *tenantQueue
		for _, tq := range s.fair.heap {
			if len(tq.reqs) == 0 {
				continue
			}
			if worst == nil || tq.vt > worst.vt || (tq.vt == worst.vt && tq.tenant > worst.tenant) {
				worst = tq
			}
		}
		if worst == nil || worst.tenant == r.Tenant {
			return nil
		}
		return worst.reqs[len(worst.reqs)-1]
	}
	// FCFS mode has no counters: the proxy for lowest priority is the
	// tenant holding the most queued requests (it degrades the least
	// per shed), ties to the higher tenant id.
	counts := make(map[int64]int, 8)
	for _, q := range s.queue {
		counts[q.Tenant]++
	}
	var worstTenant int64
	worstCount := -1
	for _, q := range s.queue {
		c := counts[q.Tenant]
		if c > worstCount || (c == worstCount && q.Tenant > worstTenant) {
			worstTenant, worstCount = q.Tenant, c
		}
	}
	if worstCount < 0 || worstTenant == r.Tenant {
		return nil
	}
	for i := len(s.queue) - 1; i >= 0; i-- {
		if s.queue[i].Tenant == worstTenant {
			return s.queue[i]
		}
	}
	return nil
}

// removeQueued drops one queued request from whichever admission queue
// is active (the shed path; the request never reaches a GPU).
func (s *Scheduler) removeQueued(victim *core.Request) {
	if s.fair != nil {
		tq := s.fair.byTenant[victim.Tenant]
		if tq == nil {
			return
		}
		for i := len(tq.reqs) - 1; i >= 0; i-- {
			if tq.reqs[i] == victim {
				copy(tq.reqs[i:], tq.reqs[i+1:])
				tq.reqs[len(tq.reqs)-1] = nil
				tq.reqs = tq.reqs[:len(tq.reqs)-1]
				s.fair.count--
				if len(tq.reqs) == 0 && tq.pos >= 0 {
					s.fair.heapRemove(tq)
				}
				return
			}
		}
		return
	}
	for i := range s.queue {
		if s.queue[i] == victim {
			copy(s.queue[i:], s.queue[i+1:])
			s.queue[len(s.queue)-1] = nil
			s.queue = s.queue[:len(s.queue)-1]
			return
		}
	}
}

// noteDrain feeds the drain-rate estimator with one successful
// placement at simulated time now. The EWMA over inter-placement gaps
// tracks the current service rate through load swings without storing a
// window.
func (s *Scheduler) noteDrain(now time.Duration) {
	if s.lastPlaced > 0 && now > s.lastPlaced {
		sample := float64(time.Second) / float64(now-s.lastPlaced)
		if s.drainRate <= 0 {
			s.drainRate = sample
		} else {
			const alpha = 0.2
			s.drainRate += alpha * (sample - s.drainRate)
		}
	}
	if now > s.lastPlaced {
		s.lastPlaced = now
	}
}

// DrainRate returns the estimated service rate in placements per
// simulated second (0 until two placements have been observed).
func (s *Scheduler) DrainRate() float64 { return s.drainRate }

// RetryAfterHint estimates how long (in simulated time) a rejected
// client should wait before retrying: the time the measured drain rate
// needs to free n queue slots, clamped to [100ms, 5m]. With no drain
// observed yet it answers one second — the queue may simply never have
// been contended.
func (s *Scheduler) RetryAfterHint(n int) time.Duration {
	if n < 1 {
		n = 1
	}
	if s.drainRate <= 0 {
		return time.Second
	}
	d := time.Duration(float64(n) / s.drainRate * float64(time.Second))
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}
